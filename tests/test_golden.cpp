// Golden-value suite: every committed tests/data/golden/*.json pins a
// reference SCF/PBE0 energy for an example molecule. Refactors that
// drift the physics fail here at ctest time instead of surfacing weeks
// later in application results. Regenerate deliberately with the
// generate_golden tool (see tests/support/generate_golden.cpp).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "support/golden_cases.hpp"

namespace golden = mthfx::golden;
using mthfx::obs::Json;

namespace {

Json load_golden(const std::string& name) {
  const std::string path =
      std::string(MTHFX_GOLDEN_DIR) + "/" + name + ".json";
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing golden file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

double member(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (!v) throw std::runtime_error(std::string("golden missing key ") + key);
  return v->as_double();
}

}  // namespace

class Golden : public ::testing::TestWithParam<golden::GoldenCase> {};

TEST_P(Golden, EnergyMatchesCommittedReference) {
  const golden::GoldenCase& c = GetParam();
  const Json ref = load_golden(c.name);

  // The committed file must describe the same case the code defines —
  // a renamed molecule or basis would otherwise silently compare apples
  // to oranges.
  ASSERT_EQ(ref.find("molecule")->as_string(), c.molecule);
  ASSERT_EQ(ref.find("basis")->as_string(), c.basis);
  ASSERT_EQ(ref.find("method")->as_string(), c.method);

  const auto got = golden::run_golden_case(c);
  ASSERT_TRUE(got.converged) << c.name << ": SCF did not converge";

  EXPECT_NEAR(got.energy, member(ref, "energy"), c.tolerance) << c.name;

  // Components get 10x the total-energy tolerance: they are larger in
  // magnitude and cancel in the total, so equal-tolerance checks would
  // be the flakiest part of the suite while adding little signal.
  const Json* comp = ref.find("components");
  ASSERT_NE(comp, nullptr);
  const double ctol = 10 * c.tolerance;
  EXPECT_NEAR(got.nuclear_repulsion, member(*comp, "nuclear_repulsion"), ctol);
  EXPECT_NEAR(got.one_electron, member(*comp, "one_electron"), ctol);
  EXPECT_NEAR(got.coulomb, member(*comp, "coulomb"), ctol);
  EXPECT_NEAR(got.exchange, member(*comp, "exchange"), ctol);
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenCases, Golden, ::testing::ValuesIn(golden::golden_cases()),
    [](const ::testing::TestParamInfo<golden::GoldenCase>& info) {
      return info.param.name;
    });

class GoldenGradient
    : public ::testing::TestWithParam<golden::GoldenGradientCase> {};

TEST_P(GoldenGradient, GradientMatchesCommittedReference) {
  const golden::GoldenGradientCase& c = GetParam();
  const Json ref = load_golden(c.name);

  ASSERT_EQ(ref.find("molecule")->as_string(), c.molecule);
  ASSERT_EQ(ref.find("basis")->as_string(), c.basis);
  ASSERT_EQ(ref.find("method")->as_string(), c.method);

  const auto got = golden::run_golden_gradient_case(c);
  ASSERT_TRUE(got.converged) << c.name << ": SCF did not converge";

  const Json* rows = ref.find("gradient");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), got.gradient.size()) << c.name;
  for (std::size_t a = 0; a < got.gradient.size(); ++a) {
    const Json& row = rows->items()[a];
    ASSERT_EQ(row.size(), 3u) << c.name << " atom " << a;
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_NEAR(got.gradient[a][d], row.items()[d].as_double(), c.tolerance)
          << c.name << " atom " << a << " dir " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenGradientCases, GoldenGradient,
    ::testing::ValuesIn(golden::golden_gradient_cases()),
    [](const ::testing::TestParamInfo<golden::GoldenGradientCase>& info) {
      return info.param.name;
    });
