// Property-based tests for the analytic RKS/PBE0 nuclear gradients on
// seeded, jittered geometries across every ScfPotential functional (hf,
// lda, pbe, pbe0):
//   - agreement with a central finite difference of the converged energy,
//     to a bound derived from the step size and the convergence noise;
//   - metamorphic invariants: rigid translation leaves forces unchanged
//     (to tight tolerance — floating-point shifted-geometry integrals are
//     not bit-identical), the net force and net torque vanish, and a
//     rigid rotation maps forces covariantly.
// Failing molecules are fed through the shrinker so the one-line repro
// starts from the smallest witness.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "scf/gradient.hpp"
#include "scf/rks.hpp"
#include "support/property_gtest.hpp"
#include "testing/generators.hpp"
#include "testing/property.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace la = mthfx::linalg;
namespace scf = mthfx::scf;
namespace mt = mthfx::testing;
namespace wl = mthfx::workload;

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

chem::Vec3 cross(const chem::Vec3& a, const chem::Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

// Random proper rotation from the octahedral group (signed axis
// permutation with det +1). The shipped Lebedev grids are unions of
// octahedral orbits, so these rotations map the atom-centered angular
// grids exactly onto themselves: the semilocal XC energy is *exactly*
// invariant under them, where a generic SO(3) rotation changes it by the
// grid's orientation-dependent quadrature error.
la::Matrix random_octahedral_rotation(mt::Rng& rng) {
  std::size_t perm[3] = {0, 1, 2};
  for (std::size_t i = 2; i > 0; --i) std::swap(perm[i], perm[rng.index(i + 1)]);
  double sign[3];
  for (double& s : sign) s = rng.index(2) == 0 ? 1.0 : -1.0;
  // Determinant of a signed permutation = parity(perm) * prod(sign).
  const bool odd_perm = (perm[0] == 0 && perm[1] == 2) ||
                        (perm[0] == 1 && perm[1] == 0) ||
                        (perm[0] == 2 && perm[1] == 1);
  double det = (odd_perm ? -1.0 : 1.0) * sign[0] * sign[1] * sign[2];
  if (det < 0.0) sign[rng.index(3)] *= -1.0;
  la::Matrix rot(3, 3);
  for (std::size_t r = 0; r < 3; ++r) rot(r, perm[r]) = sign[r];
  return rot;
}

// Copy of `mol` rotated about the z axis by `theta`.
chem::Molecule rotated_z(const chem::Molecule& mol, double theta) {
  chem::Molecule out = mol;
  const double c = std::cos(theta), s = std::sin(theta);
  for (std::size_t i = 0; i < mol.size(); ++i) {
    const chem::Vec3 p = mol.atom(i).pos;
    out.set_position(i, {c * p[0] - s * p[1], s * p[0] + c * p[1], p[2]});
  }
  return out;
}

// Small closed-shell templates jittered per case (same pool as the SCF
// property suite, weighted toward the cheap species).
chem::Molecule random_template(mt::Rng& rng) {
  switch (rng.index(6)) {
    case 0:
    case 1:
      return wl::h2();
    case 2: {
      chem::Molecule lih;
      lih.add_atom(3, {0, 0, 0});
      lih.add_atom(1, {0, 0, 3.0});
      return lih;
    }
    case 3:
      return wl::hydroxide();
    default:
      return wl::water();
  }
}

const std::vector<std::string>& functionals() {
  static const std::vector<std::string> kFns = {"hf", "lda", "pbe", "pbe0"};
  return kFns;
}

// Tight-but-convergable options per functional. The semilocal XC matrix
// is assembled with finite-difference vrho/vsigma on the grid, which
// floors the reachable DIIS error; GGA needs the loosest setting.
scf::KsOptions tight_options(const std::string& functional) {
  scf::KsOptions opt;
  opt.functional = functional;
  opt.scf.max_iterations = 200;
  opt.scf.energy_tolerance = 1e-10;
  opt.scf.diis_tolerance =
      functional == "hf" ? 1e-9 : (functional == "lda" ? 1e-8 : 1e-7);
  opt.scf.hfx.eps_schwarz = 1e-12;
  opt.scf.hfx.num_threads = 1;  // fixed reduction order: deterministic
  return opt;
}

// Forces tolerance for the metamorphic checks: the gradient is exact
// only at a fully variational solution, so the error scale is set by the
// residual DIIS error of the converged state (with a safety factor).
double force_tolerance(const scf::KsOptions& opt) {
  return 50.0 * opt.scf.diis_tolerance + 1e-8;
}

struct Solved {
  scf::KsResult result;
  std::vector<chem::Vec3> grad;
  bool converged = false;
};

Solved solve_with_gradient(const chem::Molecule& mol,
                           const scf::KsOptions& opt) {
  Solved s;
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  s.result = scf::rks(mol, basis, opt);
  s.converged = s.result.scf.converged;
  if (s.converged) s.grad = scf::ks_gradient(mol, basis, opt, s.result);
  return s;
}

}  // namespace

// Central finite differences of the converged energy are the oracle for
// the analytic gradient. One random (atom, direction) per case keeps the
// cost at three SCF solves; the random walk covers all components over
// the suite. The acceptance bound combines the O(h^2) truncation of the
// central difference (|E'''| <= kThirdDeriv on these geometries) with
// the convergence noise of the two displaced energies amplified by 1/2h.
TEST(PropertyGrad, AnalyticMatchesCentralDifference) {
  MTHFX_PROPERTY(
      "PropertyGrad.AnalyticMatchesCentralDifference",
      ([](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto& fn = functionals()[rng.index(functionals().size())];
        const auto opt = tight_options(fn);

        const auto s = solve_with_gradient(mol, opt);
        if (!s.converged) return "SCF did not converge (" + fn + ")";

        const std::size_t atom = rng.index(mol.size());
        const std::size_t dir = rng.index(3);
        const double h = 1e-4;

        chem::Molecule mp = mol, mm = mol;
        chem::Vec3 p = mol.atom(atom).pos;
        p[dir] += h;
        mp.set_position(atom, p);
        p[dir] -= 2.0 * h;
        mm.set_position(atom, p);
        const auto rp = scf::rks(mp, chem::BasisSet::build(mp, "sto-3g"), opt);
        const auto rm = scf::rks(mm, chem::BasisSet::build(mm, "sto-3g"), opt);
        if (!rp.scf.converged || !rm.scf.converged)
          return "displaced SCF did not converge (" + fn + ")";

        const double fd = (rp.scf.energy - rm.scf.energy) / (2.0 * h);
        const double ana = s.grad[atom][dir];

        constexpr double kThirdDeriv = 60.0;  // |E'''| bound, Hartree/Bohr^3
        const double noise = 10.0 * opt.scf.energy_tolerance;
        const double bound = (kThirdDeriv / 6.0) * h * h + noise / h;
        if (std::abs(fd - ana) > bound)
          return fn + " gradient disagrees with central difference at atom " +
                 std::to_string(atom) + " dir " + std::to_string(dir) +
                 ": analytic " + fmt(ana) + " fd " + fmt(fd) + " bound " +
                 fmt(bound);
        return "";
      }));
}

// Rigid translation leaves the forces unchanged. Not bit-identical —
// shifted Gaussian centers change every floating-point intermediate —
// but well inside the convergence-noise tolerance.
TEST(PropertyGrad, ForcesAreTranslationInvariant) {
  MTHFX_PROPERTY(
      "PropertyGrad.ForcesAreTranslationInvariant",
      ([](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto moved = mt::randomly_translated(rng, mol, 6.0);
        const auto& fn = functionals()[rng.index(functionals().size())];
        const auto opt = tight_options(fn);

        const auto a = solve_with_gradient(mol, opt);
        const auto b = solve_with_gradient(moved, opt);
        if (!a.converged || !b.converged)
          return "SCF did not converge (" + fn + ")";

        const double tol = force_tolerance(opt);
        for (std::size_t i = 0; i < mol.size(); ++i)
          for (std::size_t d = 0; d < 3; ++d)
            if (std::abs(a.grad[i][d] - b.grad[i][d]) > tol)
              return fn + " translation changed the force on atom " +
                     std::to_string(i) + ": " + fmt(a.grad[i][d]) + " vs " +
                     fmt(b.grad[i][d]);
        return "";
      }));
}

// Sum rule: the total force on a rigid molecule vanishes (the gradient
// machinery builds the fourth ERI center and the grid-weight terms from
// translational invariance, so violations flag bookkeeping bugs).
TEST(PropertyGrad, NetForceVanishes) {
  MTHFX_PROPERTY(
      "PropertyGrad.NetForceVanishes",
      ([](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto& fn = functionals()[rng.index(functionals().size())];
        const auto opt = tight_options(fn);

        const auto s = solve_with_gradient(mol, opt);
        if (!s.converged) return "SCF did not converge (" + fn + ")";

        chem::Vec3 net{0, 0, 0};
        for (const auto& g : s.grad) net = net + g;
        const double tol = force_tolerance(opt);
        if (chem::norm(net) > tol) {
          const auto fails = [&](const chem::Molecule& m,
                                 const std::string& basis_name) {
            scf::KsOptions o = opt;
            const auto b = chem::BasisSet::build(m, basis_name);
            const auto r = scf::rks(m, b, o);
            if (!r.scf.converged) return false;
            const auto g = scf::ks_gradient(m, b, o, r);
            chem::Vec3 n{0, 0, 0};
            for (const auto& gi : g) n = n + gi;
            return chem::norm(n) > tol;
          };
          return mt::with_shrunk_case(
              fn + " net force does not vanish: |sum| = " + fmt(chem::norm(net)),
              mol, "sto-3g", fails);
        }
        return "";
      }));
}

// Rotational sum rule. For "hf" the energy is exactly rotation
// invariant, so the net torque sum_a R_a x F_a vanishes (to convergence
// noise, widened by the coordinate length scale). For semilocal
// functionals the orientation-fixed Lebedev grids make the implemented
// energy orientation-dependent by the angular quadrature error, so the
// honest invariant is the exact identity torque_z = dE/dtheta along a
// rigid rotation: the analytic torque must match a central finite
// difference of the energy over rotation angle to the same
// step-size-derived bound used for Cartesian displacements.
TEST(PropertyGrad, TorqueMatchesRotationalEnergyDerivative) {
  MTHFX_PROPERTY(
      "PropertyGrad.TorqueMatchesRotationalEnergyDerivative",
      ([](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto& fn = functionals()[rng.index(functionals().size())];
        const auto opt = tight_options(fn);

        const auto s = solve_with_gradient(mol, opt);
        if (!s.converged) return "SCF did not converge (" + fn + ")";

        chem::Vec3 torque{0, 0, 0};
        for (std::size_t i = 0; i < mol.size(); ++i)
          torque = torque + cross(mol.atom(i).pos, s.grad[i]);

        if (fn == "hf") {
          const double tol = 10.0 * force_tolerance(opt);
          if (chem::norm(torque) > tol)
            return fn + " net torque does not vanish: |sum R x F| = " +
                   fmt(chem::norm(torque));
          return "";
        }

        const double h = 1e-3;  // radians
        const auto rp = rotated_z(mol, h);
        const auto rm = rotated_z(mol, -h);
        const auto ep = scf::rks(rp, chem::BasisSet::build(rp, "sto-3g"), opt);
        const auto em = scf::rks(rm, chem::BasisSet::build(rm, "sto-3g"), opt);
        if (!ep.scf.converged || !em.scf.converged)
          return "rotated SCF did not converge (" + fn + ")";
        const double fd = (ep.scf.energy - em.scf.energy) / (2.0 * h);

        constexpr double kThirdDeriv = 60.0;  // |d^3E/dtheta^3| bound
        const double noise = 10.0 * opt.scf.energy_tolerance;
        const double bound = (kThirdDeriv / 6.0) * h * h + noise / h +
                             10.0 * force_tolerance(opt);
        if (std::abs(torque[2] - fd) > bound)
          return fn + " torque_z disagrees with dE/dtheta: analytic " +
                 fmt(torque[2]) + " fd " + fmt(fd) + " bound " + fmt(bound);
        return "";
      }));
}

// Covariance: rotating the molecule rotates the forces, F(Rx) = R F(x).
// "hf" holds for any SO(3) rotation; semilocal functionals hold exactly
// only for rotations in the Lebedev grids' octahedral symmetry group
// (see random_octahedral_rotation) — a generic rotation reorients the
// molecule against the space-fixed angular grid and shifts the forces by
// the quadrature error.
TEST(PropertyGrad, ForcesRotateCovariantly) {
  MTHFX_PROPERTY(
      "PropertyGrad.ForcesRotateCovariantly",
      ([](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto& fn0 = functionals()[rng.index(functionals().size())];
        const auto rot = fn0 == "hf" ? mt::random_rotation(rng)
                                     : random_octahedral_rotation(rng);
        const auto turned = mt::rotated(mol, rot);
        const auto& fn = fn0;
        const auto opt = tight_options(fn);

        const auto a = solve_with_gradient(mol, opt);
        const auto b = solve_with_gradient(turned, opt);
        if (!a.converged || !b.converged)
          return "SCF did not converge (" + fn + ")";

        const double tol = force_tolerance(opt);
        for (std::size_t i = 0; i < mol.size(); ++i) {
          chem::Vec3 expected{0, 0, 0};
          for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 3; ++c)
              expected[r] += rot(r, c) * a.grad[i][c];
          for (std::size_t d = 0; d < 3; ++d)
            if (std::abs(expected[d] - b.grad[i][d]) > tol)
              return fn + " rotation broke force covariance at atom " +
                     std::to_string(i) + " dir " + std::to_string(d) + ": " +
                     fmt(expected[d]) + " vs " + fmt(b.grad[i][d]);
        }
        return "";
      }));
}
