#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "parallel/reduce.hpp"
#include "parallel/team.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace obs = mthfx::obs;
namespace par = mthfx::parallel;

TEST(ResolveThreadCount, ExplicitRequestIsHonored) {
  EXPECT_EQ(par::resolve_thread_count(1), 1u);
  EXPECT_EQ(par::resolve_thread_count(7), 7u);
}

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  const std::size_t resolved = par::resolve_thread_count(0);
  EXPECT_GE(resolved, 1u);
  if (std::thread::hardware_concurrency() > 0)
    EXPECT_EQ(resolved, std::thread::hardware_concurrency());
}

TEST(ResolveThreadCount, PoolCtorUsesSamePolicy) {
  par::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), par::resolve_thread_count(0));
}

TEST(ThreadPool, SingleThreadExecutesAll) {
  par::ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i, std::size_t) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

class PoolSchedules
    : public ::testing::TestWithParam<std::tuple<par::Schedule, std::size_t>> {
};

TEST_P(PoolSchedules, EveryIndexExecutedExactlyOnce) {
  const auto [schedule, nthreads] = GetParam();
  par::ThreadPool pool(nthreads);
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(
      0, n, [&](std::size_t i, std::size_t) { hits[i].fetch_add(1); },
      schedule, 7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoolSchedules,
    ::testing::Combine(::testing::Values(par::Schedule::kDynamic,
                                         par::Schedule::kStatic,
                                         par::Schedule::kStaticCyclic),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(ThreadPool, ThreadIdsAreInRange) {
  par::ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.parallel_for(0, 1000, [&](std::size_t, std::size_t tid) {
    if (tid >= pool.num_threads()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  par::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelRegionRunsOncePerThread) {
  par::ThreadPool pool(6);
  std::vector<std::atomic<int>> counts(6);
  pool.parallel_region([&](std::size_t tid) { counts[tid].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  par::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(0, 100,
                      [&](std::size_t, std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5000u);
}

TEST(ThreadPool, ParallelRegionReusableAcrossManyInvocations) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  for (int round = 0; round < 50; ++round)
    pool.parallel_region([&](std::size_t tid) { counts[tid].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 50);
}

TEST(ThreadPool, RegistryInstrumentsRegions) {
  par::ThreadPool pool(3);
  obs::Registry reg(3);
  pool.set_registry(&reg);
  pool.parallel_region([](std::size_t) {});
  pool.parallel_region([](std::size_t) {});
  EXPECT_EQ(reg.counter_total("pool.regions"), 2u);
  // Every thread (including the calling thread as tid 0) is timed once
  // per region.
  EXPECT_EQ(reg.timer_count("pool.thread_seconds"), 6u);
  const auto per_thread = reg.timer_per_thread("pool.thread_seconds");
  ASSERT_EQ(per_thread.size(), 3u);
  for (double s : per_thread) EXPECT_GE(s, 0.0);

  // Detaching must stop recording without crashing later regions.
  pool.set_registry(nullptr);
  pool.parallel_region([](std::size_t) {});
  EXPECT_EQ(reg.counter_total("pool.regions"), 2u);
}

TEST(WorkStealing, AllTasksExecutedOnce) {
  constexpr std::size_t nthreads = 4, ntasks = 10000;
  par::WorkStealingScheduler ws(nthreads);
  ws.seed(ntasks);
  std::vector<std::atomic<int>> hits(ntasks);
  par::ThreadPool pool(nthreads);
  pool.parallel_region([&](std::size_t tid) {
    while (auto t = ws.next(tid)) hits[*t].fetch_add(1);
  });
  for (std::size_t i = 0; i < ntasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealing, StealsHappenUnderImbalance) {
  // All work seeded into deque 0; other threads must steal to finish.
  par::WorkStealingScheduler ws(4);
  for (int i = 0; i < 1000; ++i) {
    // seed() round-robins, so seed manually through a single-owner pattern:
  }
  ws.seed(4000);
  par::ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  pool.parallel_region([&](std::size_t tid) {
    while (auto t = ws.next(tid)) {
      // Thread 0 is made slow so others drain its share via steals.
      if (tid == 0)
        for (volatile int spin = 0; spin < 3000; ++spin) {
        }
      done.fetch_add(1);
    }
  });
  EXPECT_EQ(done.load(), 4000u);
  EXPECT_GT(ws.stats().steals_successful, 0u);
}

// Counter invariants must hold on BOTH steal paths (random victims and
// the deterministic fallback sweep): a successful steal is always also an
// attempted one, and tasks can only migrate through a successful steal.
// The regression here was the sweep path bumping tasks_migrated without
// counting its attempt.
TEST(WorkStealing, StealStatsAreConsistentUnderContention) {
  constexpr std::size_t nthreads = 4, ntasks = 8000;
  par::WorkStealingScheduler ws(nthreads);
  ws.seed(ntasks);
  par::ThreadPool pool(nthreads);
  std::atomic<std::size_t> done{0};
  pool.parallel_region([&](std::size_t tid) {
    while (auto t = ws.next(tid)) {
      // Uneven task costs force repeated stealing near the end of the
      // run, where the fallback sweep is most likely to serve steals.
      if (*t % nthreads == 0)
        for (volatile int spin = 0; spin < 500; ++spin) {
        }
      done.fetch_add(1);
    }
  });
  EXPECT_EQ(done.load(), ntasks);

  const auto total = ws.stats();
  EXPECT_LE(total.steals_successful, total.steals_attempted);
  if (total.tasks_migrated > 0) EXPECT_GT(total.steals_successful, 0u);
  EXPECT_GE(total.tasks_migrated, total.steals_successful);

  // The same invariants per thread, and the aggregate must equal the sum.
  par::StealStats sum;
  for (std::size_t t = 0; t < nthreads; ++t) {
    const auto& s = ws.stats(t);
    EXPECT_LE(s.steals_successful, s.steals_attempted) << "thread " << t;
    if (s.tasks_migrated > 0)
      EXPECT_GT(s.steals_successful, 0u) << "thread " << t;
    sum.steals_attempted += s.steals_attempted;
    sum.steals_successful += s.steals_successful;
    sum.tasks_migrated += s.tasks_migrated;
  }
  EXPECT_EQ(sum.steals_attempted, total.steals_attempted);
  EXPECT_EQ(sum.steals_successful, total.steals_successful);
  EXPECT_EQ(sum.tasks_migrated, total.tasks_migrated);
}

// The fallback sweep alone (single consumer pulling from deques it never
// owns work in) must count its attempts.
TEST(WorkStealing, FallbackSweepCountsAttempts) {
  par::WorkStealingScheduler ws(3);
  ws.seed(9);  // round-robin: every deque holds three tasks
  // Thread 2 drains everything serially; after its own three tasks every
  // further task arrives via a steal, and exhausting the system requires
  // sweep attempts that must all be counted.
  std::size_t got = 0;
  while (ws.next(2)) ++got;
  EXPECT_EQ(got, 9u);
  const auto& s = ws.stats(2);
  EXPECT_GT(s.steals_attempted, 0u);
  EXPECT_GT(s.steals_successful, 0u);
  EXPECT_EQ(s.tasks_migrated, 6u);  // three from each victim deque
  EXPECT_LE(s.steals_successful, s.steals_attempted);
}

TEST(WorkStealing, RecordExportsAggregateCounters) {
  par::WorkStealingScheduler ws(2);
  ws.seed(20);
  std::size_t got = 0;
  while (ws.next(0)) ++got;
  EXPECT_EQ(got, 20u);
  obs::Registry reg(2);
  ws.record(reg);
  const auto total = ws.stats();
  EXPECT_EQ(reg.counter_total("ws.steals_attempted"),
            total.steals_attempted);
  EXPECT_EQ(reg.counter_total("ws.steals_successful"),
            total.steals_successful);
  EXPECT_EQ(reg.counter_total("ws.tasks_migrated"), total.tasks_migrated);
}

TEST(TaskDeque, LifoOwnerFifoThief) {
  par::TaskDeque d;
  for (std::uint64_t i = 0; i < 10; ++i) d.push(i);
  EXPECT_EQ(d.pop().value(), 9u);          // owner pops newest
  const auto stolen = d.steal_half();      // thief takes oldest half
  ASSERT_FALSE(stolen.empty());
  EXPECT_EQ(stolen.front(), 0u);
  EXPECT_EQ(d.size(), 9u - stolen.size());
}

TEST(Team, BarrierOrdersPhases) {
  par::Team team(8);
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  team.run([&](par::RankContext& ctx) {
    phase1.fetch_add(1);
    ctx.barrier();
    if (phase1.load() != 8) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Team, AllreduceSumScalar) {
  par::Team team(5);
  std::vector<double> results(5, 0.0);
  team.run([&](par::RankContext& ctx) {
    results[ctx.rank()] =
        ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 15.0);  // 1+2+3+4+5
}

TEST(Team, AllreduceSumVector) {
  par::Team team(4);
  std::vector<std::vector<double>> buffers(4, std::vector<double>(3));
  team.run([&](par::RankContext& ctx) {
    auto& b = buffers[ctx.rank()];
    for (std::size_t i = 0; i < 3; ++i)
      b[i] = static_cast<double>(ctx.rank()) + static_cast<double>(i) * 10.0;
    ctx.allreduce_sum(std::span<double>(b));
  });
  // Sum over ranks r of (r + 10 i) = 6 + 40 i.
  for (const auto& b : buffers)
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_DOUBLE_EQ(b[i], 6.0 + 40.0 * static_cast<double>(i));
}

TEST(Team, AllreduceMax) {
  par::Team team(6);
  std::vector<double> results(6);
  team.run([&](par::RankContext& ctx) {
    const double mine = ctx.rank() == 3 ? 99.0 : static_cast<double>(ctx.rank());
    results[ctx.rank()] = ctx.allreduce_max(mine);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 99.0);
}

TEST(Team, BroadcastFromNonzeroRoot) {
  par::Team team(4);
  std::vector<std::vector<double>> buffers(4, std::vector<double>(2, -1.0));
  team.run([&](par::RankContext& ctx) {
    auto& b = buffers[ctx.rank()];
    if (ctx.rank() == 2) b = {3.5, -7.25};
    ctx.broadcast(std::span<double>(b), 2);
  });
  for (const auto& b : buffers) {
    EXPECT_DOUBLE_EQ(b[0], 3.5);
    EXPECT_DOUBLE_EQ(b[1], -7.25);
  }
}

TEST(Team, PropagatesExceptions) {
  par::Team team(3);
  EXPECT_THROW(team.run([&](par::RankContext& ctx) {
                 if (ctx.rank() == 1) throw std::runtime_error("rank fail");
               }),
               std::runtime_error);
}

TEST(Team, ZeroRanksRejected) {
  EXPECT_THROW(par::Team team(0), std::invalid_argument);
}

// --- Row-blocked tree reduction (parallel/reduce.hpp) -----------------

namespace {

// Integer-valued buffers: every partial sum is exactly representable, so
// any tree shape must reproduce the serial sum bit for bit.
std::vector<std::vector<double>> integer_parts(std::size_t nparts,
                                               std::size_t len) {
  std::vector<std::vector<double>> parts(nparts, std::vector<double>(len));
  for (std::size_t t = 0; t < nparts; ++t)
    for (std::size_t i = 0; i < len; ++i)
      parts[t][i] = static_cast<double>((t + 1) * 31 + i * 7 % 113);
  return parts;
}

std::vector<double> serial_sum(const std::vector<std::vector<double>>& parts) {
  std::vector<double> total(parts.front().size(), 0.0);
  for (const auto& p : parts)
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += p[i];
  return total;
}

}  // namespace

TEST(TreeReduce, MatchesSerialSumForAllPartCounts) {
  par::ThreadPool pool(4);
  for (std::size_t nparts : {1u, 2u, 3u, 5u, 8u, 13u}) {
    auto parts = integer_parts(nparts, 257);
    const auto expected = serial_sum(parts);
    std::vector<double*> ptrs;
    for (auto& p : parts) ptrs.push_back(p.data());
    par::tree_reduce(pool, ptrs, 257);
    EXPECT_EQ(parts.front(), expected) << "nparts=" << nparts;
  }
}

TEST(TreeReduce, DeterministicAcrossPoolSizes) {
  // The combination tree is fixed by the number of partials, so the
  // pool's thread count must be invisible — bit for bit — even for
  // non-representable fractional values.
  std::vector<std::vector<double>> reference;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    std::vector<std::vector<double>> parts(
        6, std::vector<double>(101));
    for (std::size_t t = 0; t < parts.size(); ++t)
      for (std::size_t i = 0; i < parts[t].size(); ++i)
        parts[t][i] = 0.1 * static_cast<double>(t + 1) +
                      1e-3 * static_cast<double>(i) / 3.0;
    std::vector<double*> ptrs;
    for (auto& p : parts) ptrs.push_back(p.data());
    par::tree_reduce(pool, ptrs, 101);
    if (reference.empty())
      reference.push_back(parts.front());
    else
      EXPECT_EQ(parts.front(), reference.front()) << "threads=" << threads;
  }
}

TEST(TreeReduce, EmptyAndSinglePartAreNoops) {
  par::ThreadPool pool(2);
  std::vector<double> only{1.0, 2.0, 3.0};
  std::vector<double*> one{only.data()};
  par::tree_reduce(pool, one, only.size());
  EXPECT_EQ(only, (std::vector<double>{1.0, 2.0, 3.0}));
  std::vector<double*> none;
  par::tree_reduce(pool, none, 0);  // must not touch anything
}

TEST(TreeReduce, LengthShorterThanBlockCount) {
  // len < nthreads: trailing blocks are empty ranges and must be safe.
  par::ThreadPool pool(8);
  auto parts = integer_parts(4, 3);
  const auto expected = serial_sum(parts);
  std::vector<double*> ptrs;
  for (auto& p : parts) ptrs.push_back(p.data());
  par::tree_reduce(pool, ptrs, 3);
  EXPECT_EQ(parts.front(), expected);
}
