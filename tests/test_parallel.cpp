#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "parallel/team.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace par = mthfx::parallel;

TEST(ThreadPool, SingleThreadExecutesAll) {
  par::ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i, std::size_t) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

class PoolSchedules
    : public ::testing::TestWithParam<std::tuple<par::Schedule, std::size_t>> {
};

TEST_P(PoolSchedules, EveryIndexExecutedExactlyOnce) {
  const auto [schedule, nthreads] = GetParam();
  par::ThreadPool pool(nthreads);
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(
      0, n, [&](std::size_t i, std::size_t) { hits[i].fetch_add(1); },
      schedule, 7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoolSchedules,
    ::testing::Combine(::testing::Values(par::Schedule::kDynamic,
                                         par::Schedule::kStatic,
                                         par::Schedule::kStaticCyclic),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(ThreadPool, ThreadIdsAreInRange) {
  par::ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.parallel_for(0, 1000, [&](std::size_t, std::size_t tid) {
    if (tid >= pool.num_threads()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  par::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelRegionRunsOncePerThread) {
  par::ThreadPool pool(6);
  std::vector<std::atomic<int>> counts(6);
  pool.parallel_region([&](std::size_t tid) { counts[tid].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  par::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(0, 100,
                      [&](std::size_t, std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5000u);
}

TEST(WorkStealing, AllTasksExecutedOnce) {
  constexpr std::size_t nthreads = 4, ntasks = 10000;
  par::WorkStealingScheduler ws(nthreads);
  ws.seed(ntasks);
  std::vector<std::atomic<int>> hits(ntasks);
  par::ThreadPool pool(nthreads);
  pool.parallel_region([&](std::size_t tid) {
    while (auto t = ws.next(tid)) hits[*t].fetch_add(1);
  });
  for (std::size_t i = 0; i < ntasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealing, StealsHappenUnderImbalance) {
  // All work seeded into deque 0; other threads must steal to finish.
  par::WorkStealingScheduler ws(4);
  for (int i = 0; i < 1000; ++i) {
    // seed() round-robins, so seed manually through a single-owner pattern:
  }
  ws.seed(4000);
  par::ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  pool.parallel_region([&](std::size_t tid) {
    while (auto t = ws.next(tid)) {
      // Thread 0 is made slow so others drain its share via steals.
      if (tid == 0)
        for (volatile int spin = 0; spin < 3000; ++spin) {
        }
      done.fetch_add(1);
    }
  });
  EXPECT_EQ(done.load(), 4000u);
  EXPECT_GT(ws.stats().steals_successful, 0u);
}

TEST(TaskDeque, LifoOwnerFifoThief) {
  par::TaskDeque d;
  for (std::uint64_t i = 0; i < 10; ++i) d.push(i);
  EXPECT_EQ(d.pop().value(), 9u);          // owner pops newest
  const auto stolen = d.steal_half();      // thief takes oldest half
  ASSERT_FALSE(stolen.empty());
  EXPECT_EQ(stolen.front(), 0u);
  EXPECT_EQ(d.size(), 9u - stolen.size());
}

TEST(Team, BarrierOrdersPhases) {
  par::Team team(8);
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  team.run([&](par::RankContext& ctx) {
    phase1.fetch_add(1);
    ctx.barrier();
    if (phase1.load() != 8) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Team, AllreduceSumScalar) {
  par::Team team(5);
  std::vector<double> results(5, 0.0);
  team.run([&](par::RankContext& ctx) {
    results[ctx.rank()] =
        ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 15.0);  // 1+2+3+4+5
}

TEST(Team, AllreduceSumVector) {
  par::Team team(4);
  std::vector<std::vector<double>> buffers(4, std::vector<double>(3));
  team.run([&](par::RankContext& ctx) {
    auto& b = buffers[ctx.rank()];
    for (std::size_t i = 0; i < 3; ++i)
      b[i] = static_cast<double>(ctx.rank()) + static_cast<double>(i) * 10.0;
    ctx.allreduce_sum(std::span<double>(b));
  });
  // Sum over ranks r of (r + 10 i) = 6 + 40 i.
  for (const auto& b : buffers)
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_DOUBLE_EQ(b[i], 6.0 + 40.0 * static_cast<double>(i));
}

TEST(Team, AllreduceMax) {
  par::Team team(6);
  std::vector<double> results(6);
  team.run([&](par::RankContext& ctx) {
    const double mine = ctx.rank() == 3 ? 99.0 : static_cast<double>(ctx.rank());
    results[ctx.rank()] = ctx.allreduce_max(mine);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 99.0);
}

TEST(Team, BroadcastFromNonzeroRoot) {
  par::Team team(4);
  std::vector<std::vector<double>> buffers(4, std::vector<double>(2, -1.0));
  team.run([&](par::RankContext& ctx) {
    auto& b = buffers[ctx.rank()];
    if (ctx.rank() == 2) b = {3.5, -7.25};
    ctx.broadcast(std::span<double>(b), 2);
  });
  for (const auto& b : buffers) {
    EXPECT_DOUBLE_EQ(b[0], 3.5);
    EXPECT_DOUBLE_EQ(b[1], -7.25);
  }
}

TEST(Team, PropagatesExceptions) {
  par::Team team(3);
  EXPECT_THROW(team.run([&](par::RankContext& ctx) {
                 if (ctx.rank() == 1) throw std::runtime_error("rank fail");
               }),
               std::runtime_error);
}

TEST(Team, ZeroRanksRejected) {
  EXPECT_THROW(par::Team team(0), std::invalid_argument);
}
