#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "ints/one_electron.hpp"

namespace chem = mthfx::chem;
namespace ints = mthfx::ints;
namespace la = mthfx::linalg;

namespace {

chem::Molecule h2_molecule(double r_bohr = 1.4) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, r_bohr});
  return m;
}

chem::Molecule water_sz() {
  // Szabo–Ostlund-style water geometry (Å), close to experiment.
  return chem::Molecule::from_xyz(
      "3\nwater\nO 0.000000 0.000000 0.117300\n"
      "H 0.000000 0.757200 -0.469200\n"
      "H 0.000000 -0.757200 -0.469200\n");
}

}  // namespace

// Reference values from Szabo & Ostlund, "Modern Quantum Chemistry",
// H2/STO-3G at R = 1.4 a0 (Sec. 3.5.2).
TEST(OneElectron, H2Sto3gOverlap) {
  const auto m = h2_molecule();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix s = ints::overlap(basis);
  EXPECT_NEAR(s(0, 0), 1.0, 1e-10);
  EXPECT_NEAR(s(1, 1), 1.0, 1e-10);
  EXPECT_NEAR(s(0, 1), 0.6593, 2e-4);
  EXPECT_TRUE(la::is_symmetric(s, 1e-12));
}

TEST(OneElectron, H2Sto3gKinetic) {
  const auto m = h2_molecule();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix t = ints::kinetic(basis);
  EXPECT_NEAR(t(0, 0), 0.7600, 2e-4);
  EXPECT_NEAR(t(0, 1), 0.2365, 2e-4);
}

TEST(OneElectron, H2Sto3gNuclearAttraction) {
  const auto m = h2_molecule();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix v = ints::nuclear_attraction(basis, m);
  // V_11 = -1.2266 (own nucleus) + -0.6538 (other nucleus) = -1.8804.
  EXPECT_NEAR(v(0, 0), -1.8804, 5e-4);
  // V_12 = 2 * (-0.5974) = -1.1948.
  EXPECT_NEAR(v(0, 1), -1.1948, 5e-4);
}

TEST(OneElectron, OverlapDiagonalIsOneForAllBases) {
  for (const char* name : {"sto-3g", "6-31g", "6-31g*"}) {
    const auto m = water_sz();
    const auto basis = chem::BasisSet::build(m, name);
    const la::Matrix s = ints::overlap(basis);
    for (std::size_t i = 0; i < s.rows(); ++i)
      EXPECT_NEAR(s(i, i), 1.0, 1e-9) << name << " AO " << i;
  }
}

TEST(OneElectron, KineticIsPositiveDefiniteDiagonal) {
  const auto m = water_sz();
  const auto basis = chem::BasisSet::build(m, "6-31g");
  const la::Matrix t = ints::kinetic(basis);
  EXPECT_TRUE(la::is_symmetric(t, 1e-10));
  for (std::size_t i = 0; i < t.rows(); ++i) EXPECT_GT(t(i, i), 0.0);
}

TEST(OneElectron, NuclearAttractionIsNegativeDiagonal) {
  const auto m = water_sz();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix v = ints::nuclear_attraction(basis, m);
  EXPECT_TRUE(la::is_symmetric(v, 1e-10));
  for (std::size_t i = 0; i < v.rows(); ++i) EXPECT_LT(v(i, i), 0.0);
}

TEST(OneElectron, KineticMatchesHermiteIdentityForPShells) {
  // Sanity on the d/p machinery: for a single p shell on one atom the
  // kinetic diagonal equals a^2<r^2 ...> closed form; we instead check
  // the virial-like identity T_ii > 0 and symmetry across components.
  chem::Molecule m;
  m.add_atom(8, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix t = ints::kinetic(basis);
  // px, py, pz diagonal kinetic energies identical by symmetry.
  const std::size_t p0 = 2;  // shells: 1s(0), 2s(1), 2p(2,3,4)
  EXPECT_NEAR(t(p0, p0), t(p0 + 1, p0 + 1), 1e-12);
  EXPECT_NEAR(t(p0, p0), t(p0 + 2, p0 + 2), 1e-12);
}

TEST(OneElectron, TranslationInvarianceOfOverlapAndKinetic) {
  auto m1 = water_sz();
  auto m2 = water_sz();
  m2.translate({3.0, -1.0, 2.5});
  const auto b1 = chem::BasisSet::build(m1, "sto-3g");
  const auto b2 = chem::BasisSet::build(m2, "sto-3g");
  EXPECT_LT(la::max_abs(ints::overlap(b1) - ints::overlap(b2)), 1e-11);
  EXPECT_LT(la::max_abs(ints::kinetic(b1) - ints::kinetic(b2)), 1e-11);
  EXPECT_LT(la::max_abs(ints::nuclear_attraction(b1, m1) -
                        ints::nuclear_attraction(b2, m2)),
            1e-10);
}

TEST(OneElectron, SeparatedAtomsHaveVanishingOverlap) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 40.0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix s = ints::overlap(basis);
  EXPECT_LT(std::abs(s(0, 1)), 1e-12);
}

TEST(OneElectron, CoreHamiltonianIsSum) {
  const auto m = water_sz();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix h = ints::core_hamiltonian(basis, m);
  const la::Matrix sum = ints::kinetic(basis) + ints::nuclear_attraction(basis, m);
  EXPECT_LT(la::max_abs(h - sum), 1e-14);
}

TEST(OneElectron, DShellOverlapBlockIsNormalized) {
  chem::Molecule m;
  m.add_atom(6, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "6-31g*");
  const la::Matrix s = ints::overlap(basis);
  // All 6 Cartesian d diagonal entries equal 1 after normalization.
  for (std::size_t i = s.rows() - 6; i < s.rows(); ++i)
    EXPECT_NEAR(s(i, i), 1.0, 1e-10);
}
