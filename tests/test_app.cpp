#include <gtest/gtest.h>

#include "app/driver.hpp"
#include "app/input.hpp"
#include "chem/elements.hpp"

namespace app = mthfx::app;
namespace chem = mthfx::chem;

namespace {

const char* kWaterInput = R"(
# water single point
method hf
basis sto-3g
task energy
geometry angstrom
O 0.0 0.0 0.1173
H 0.0 0.7572 -0.4692
H 0.0 -0.7572 -0.4692
end
)";

}  // namespace

TEST(Input, ParsesFullExample) {
  const auto in = app::parse_input(kWaterInput);
  EXPECT_EQ(in.method, "hf");
  EXPECT_EQ(in.basis, "sto-3g");
  EXPECT_EQ(in.task, app::Task::kEnergy);
  EXPECT_EQ(in.molecule.size(), 3u);
  EXPECT_EQ(in.molecule.atom(0).z, 8);
  EXPECT_NEAR(in.molecule.atom(1).pos.y, 0.7572 * chem::kBohrPerAngstrom,
              1e-10);
}

TEST(Input, BohrUnits) {
  const auto in = app::parse_input(
      "geometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n");
  EXPECT_NEAR(in.molecule.atom(1).pos.z, 1.4, 1e-14);
}

TEST(Input, DefaultsApplied) {
  const auto in = app::parse_input("geometry bohr\nHe 0 0 0\nend\n");
  EXPECT_EQ(in.method, "hf");
  EXPECT_EQ(in.charge, 0);
  EXPECT_EQ(in.multiplicity, 1);
  EXPECT_DOUBLE_EQ(in.eps_schwarz, 1e-10);
}

TEST(Input, ChargeAndMultiplicity) {
  const auto in = app::parse_input(
      "charge -1\nmultiplicity 1\ngeometry angstrom\nO 0 0 0\nH 0 0 0.96\n"
      "end\n");
  EXPECT_EQ(in.molecule.num_electrons(), 10);
}

TEST(Input, CommentsAndBlankLines) {
  const auto in = app::parse_input(
      "# leading comment\n\nmethod pbe0  # trailing\n\n"
      "geometry bohr\nH 0 0 0  # atom\nH 0 0 1.4\nend\n");
  EXPECT_EQ(in.method, "pbe0");
  EXPECT_EQ(in.molecule.size(), 2u);
}

TEST(Input, Errors) {
  EXPECT_THROW(app::parse_input("method\n"), std::runtime_error);
  EXPECT_THROW(app::parse_input("frobnicate yes\n"), std::runtime_error);
  EXPECT_THROW(app::parse_input("geometry parsec\nH 0 0 0\nend\n"),
               std::runtime_error);
  EXPECT_THROW(app::parse_input("geometry bohr\nXx 0 0 0\nend\n"),
               std::runtime_error);
  EXPECT_THROW(app::parse_input("geometry bohr\nH 0 0\nend\n"),
               std::runtime_error);
  EXPECT_THROW(app::parse_input("geometry bohr\nH 0 0 0\n"),  // no end
               std::runtime_error);
  EXPECT_THROW(app::parse_input("method hf\n"),  // no geometry
               std::runtime_error);
  EXPECT_THROW(app::parse_input(  // parity mismatch
                   "multiplicity 2\ngeometry bohr\nHe 0 0 0\nend\n"),
               std::runtime_error);
  EXPECT_THROW(app::parse_input("task optimize\ngeometry bohr\nH 0 0 0\nH 0 "
                                "0 1\nend\n"),
               std::runtime_error);
}

TEST(Input, RejectsTrailingTokens) {
  // Two values for one keyword.
  EXPECT_THROW(app::parse_input(
                   "method hf pbe0\ngeometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n"),
               std::runtime_error);
  // Junk after the geometry unit.
  EXPECT_THROW(
      app::parse_input("geometry bohr extra\nH 0 0 0\nH 0 0 1.4\nend\n"),
      std::runtime_error);
  // A fourth coordinate on an atom line.
  EXPECT_THROW(
      app::parse_input("geometry bohr\nH 0 0 0 0\nH 0 0 1.4\nend\n"),
      std::runtime_error);
  // Junk after 'end'.
  EXPECT_THROW(
      app::parse_input("geometry bohr\nH 0 0 0\nH 0 0 1.4\nend geometry\n"),
      std::runtime_error);
}

TEST(Input, TrailingTokenErrorsNameTheLine) {
  try {
    app::parse_input("method hf\ngeometry bohr\nH 0 0 0 junk\nend\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("junk"), std::string::npos) << msg;
  }
}

TEST(Input, TrailingCommentsStillAccepted) {
  // Comments are stripped before tokenization, so they are not trailing
  // junk.
  const auto in = app::parse_input(
      "method hf  # method comment\ngeometry bohr  # unit comment\n"
      "H 0 0 0  # atom comment\nH 0 0 1.4\nend  # end comment\n");
  EXPECT_EQ(in.method, "hf");
  EXPECT_EQ(in.molecule.size(), 2u);
}

TEST(Input, RejectsDuplicateKeywords) {
  // Repeating any keyword is a parse error naming the offending key.
  try {
    app::parse_input(
        "method hf\nmethod pbe0\ngeometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n");
    FAIL() << "expected duplicate-keyword rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate keyword 'method'"), std::string::npos)
        << msg;
  }
  EXPECT_THROW(app::parse_input("charge 0\ncharge -1\n"
                                "geometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n"),
               std::runtime_error);
  EXPECT_THROW(app::parse_input("geometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n"
                                "geometry bohr\nHe 0 0 0\nend\n"),
               std::runtime_error);
}

TEST(Input, ThreadsKeyword) {
  const auto in = app::parse_input(
      "threads 3\ngeometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n");
  EXPECT_EQ(in.num_threads, 3u);
  EXPECT_THROW(app::parse_input(
                   "threads -2\ngeometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n"),
               std::runtime_error);
}

TEST(Driver, WaterHfEnergy) {
  const auto in = app::parse_input(kWaterInput);
  const auto r = app::run(in);
  EXPECT_TRUE(r.ok);
  EXPECT_NEAR(r.energy, -74.963, 1e-2);
  EXPECT_NE(r.report.find("SCF(hf) energy"), std::string::npos);
  EXPECT_NE(r.report.find("dipole moment"), std::string::npos);
}

TEST(Driver, GradientTask) {
  const auto r = app::run(app::parse_input(
      "method hf\ntask gradient\ngeometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n"));
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.report.find("gradient (Ha/bohr)"), std::string::npos);
}

TEST(Driver, OpenShellAutoSelectsUks) {
  const auto r = app::run(app::parse_input(
      "method hf\nmultiplicity 2\ngeometry bohr\nLi 0 0 0\nend\n"));
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.report.find("UKS(hf)"), std::string::npos);
  EXPECT_NEAR(r.energy, -7.3155, 1e-2);
}

TEST(Driver, StructuredResultCarriesTypedFields) {
  const auto in = app::parse_input(kWaterInput);
  const auto s = app::run_structured(in);
  EXPECT_TRUE(s.ok);
  EXPECT_TRUE(s.converged);
  EXPECT_EQ(s.reference, "rks");
  EXPECT_GT(s.scf_iterations, 0u);
  EXPECT_GT(s.dipole_debye, 0.5);      // water has a real dipole
  EXPECT_GT(s.homo_lumo_gap_ev, 1.0);  // closed-shell gap
  // The thin run() wrapper reports the same numbers.
  EXPECT_EQ(app::run(in).energy, s.energy);
}

TEST(Driver, StructuredGradientTask) {
  const auto s = app::run_structured(app::parse_input(
      "method hf\ntask gradient\ngeometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n"));
  EXPECT_TRUE(s.ok);
  ASSERT_EQ(s.gradient.size(), 2u);
  // Translational invariance: forces cancel along the bond axis.
  EXPECT_NEAR(s.gradient[0][2] + s.gradient[1][2], 0.0, 1e-8);
}

TEST(Driver, Pbe0GradientTask) {
  // DFT methods route through ks_gradient (no finite-difference path).
  const auto s = app::run_structured(app::parse_input(
      "method pbe0\ntask gradient\ngeometry bohr\nH 0 0 0\nH 0 0 1.4\nend\n"));
  EXPECT_TRUE(s.ok);
  ASSERT_EQ(s.gradient.size(), 2u);
  // Grid-quadrature noise loosens the cancellation vs. the RHF case.
  EXPECT_NEAR(s.gradient[0][2] + s.gradient[1][2], 0.0, 1e-6);
  // Stretched past equilibrium: the bond pulls inward from both ends.
  EXPECT_LT(s.gradient[0][2], 0.0);
  EXPECT_GT(s.gradient[1][2], 0.0);
}

TEST(Driver, MdTask) {
  const auto r = app::run(app::parse_input(
      "method hf\ntask md\nmd_steps 3\nmd_timestep_fs 0.15\n"
      "geometry bohr\nH 0 0 0\nH 0 0 1.5\nend\n"));
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.report.find("BOMD"), std::string::npos);
  EXPECT_NE(r.report.find("energy drift"), std::string::npos);
}
