#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "ints/deriv.hpp"
#include "ints/eri.hpp"
#include "ints/one_electron.hpp"
#include "scf/gradient.hpp"
#include "scf/rhf.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace ints = mthfx::ints;
namespace la = mthfx::linalg;
namespace scf = mthfx::scf;
namespace wl = mthfx::workload;

namespace {

constexpr double kFdStep = 1e-5;

chem::Molecule lih(double r = 3.0) {
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  m.add_atom(1, {0.2, -0.1, r});  // slightly off-axis: all directions live
  return m;
}

// Finite-difference derivative of a matrix-valued basis functional with
// respect to coordinate d of atom `atom`.
template <typename F>
la::Matrix fd_matrix(const chem::Molecule& mol, std::size_t atom,
                     std::size_t d, F&& eval) {
  chem::Molecule mp = mol, mm = mol;
  chem::Vec3 p = mol.atom(atom).pos;
  p[d] += kFdStep;
  mp.set_position(atom, p);
  p[d] -= 2 * kFdStep;
  mm.set_position(atom, p);
  la::Matrix plus = eval(mp);
  la::Matrix minus = eval(mm);
  plus -= minus;
  plus *= 1.0 / (2 * kFdStep);
  return plus;
}

}  // namespace

TEST(DerivInts, OverlapGradientMatchesFd) {
  const auto mol = lih();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  // d/d(atom 0) of the (shell 0 = Li 1s, shell 3 = H 1s) block... take the
  // full overlap matrix derivative instead and compare shell blocks.
  for (std::size_t d = 0; d < 3; ++d) {
    const la::Matrix ref = fd_matrix(mol, 0, d, [](const chem::Molecule& m) {
      return ints::overlap(chem::BasisSet::build(m, "sto-3g"));
    });
    // Assemble analytic dS/d(atom0)_d.
    la::Matrix ana(basis.num_functions(), basis.num_functions());
    for (std::size_t sa = 0; sa < basis.num_shells(); ++sa)
      for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
        const auto& a = basis.shell(sa);
        const auto& b = basis.shell(sb);
        if (a.atom_index() != 0 && b.atom_index() != 0) continue;
        const auto g = ints::overlap_gradient_block(a, b);
        const auto gt = ints::overlap_gradient_block(b, a);
        const std::size_t oa = basis.first_function(sa);
        const std::size_t ob = basis.first_function(sb);
        for (std::size_t i = 0; i < g[d].rows(); ++i)
          for (std::size_t j = 0; j < g[d].cols(); ++j) {
            if (a.atom_index() == 0) ana(oa + i, ob + j) += g[d](i, j);
            // Ket derivative = bra derivative of the transposed block.
            if (b.atom_index() == 0) ana(oa + i, ob + j) += gt[d](j, i);
          }
      }
    EXPECT_LT(la::max_abs(ana - ref), 1e-8) << "dir " << d;
  }
}

TEST(DerivInts, KineticGradientMatchesFd) {
  const auto mol = lih();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  for (std::size_t d = 0; d < 3; ++d) {
    const la::Matrix ref = fd_matrix(mol, 1, d, [](const chem::Molecule& m) {
      return ints::kinetic(chem::BasisSet::build(m, "sto-3g"));
    });
    la::Matrix ana(basis.num_functions(), basis.num_functions());
    for (std::size_t sa = 0; sa < basis.num_shells(); ++sa)
      for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
        const auto& a = basis.shell(sa);
        const auto& b = basis.shell(sb);
        const auto g = ints::kinetic_gradient_block(a, b);
        const std::size_t oa = basis.first_function(sa);
        const std::size_t ob = basis.first_function(sb);
        for (std::size_t i = 0; i < g[d].rows(); ++i)
          for (std::size_t j = 0; j < g[d].cols(); ++j) {
            if (a.atom_index() == 1) ana(oa + i, ob + j) += g[d](i, j);
            if (b.atom_index() == 1 && a.atom_index() != b.atom_index())
              ana(oa + i, ob + j) -= g[d](i, j);
          }
      }
    EXPECT_LT(la::max_abs(ana - ref), 1e-7) << "dir " << d;
  }
}

TEST(DerivInts, NuclearGradientMatchesFd) {
  const auto mol = lih();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  for (std::size_t atom = 0; atom < 2; ++atom) {
    for (std::size_t d = 0; d < 3; ++d) {
      const la::Matrix ref =
          fd_matrix(mol, atom, d, [](const chem::Molecule& m) {
            return ints::nuclear_attraction(chem::BasisSet::build(m, "sto-3g"),
                                            m);
          });
      la::Matrix ana(basis.num_functions(), basis.num_functions());
      for (std::size_t sa = 0; sa < basis.num_shells(); ++sa)
        for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
          const auto& a = basis.shell(sa);
          const auto& b = basis.shell(sb);
          const auto g = ints::nuclear_gradient_blocks(a, b, mol);
          const std::size_t oa = basis.first_function(sa);
          const std::size_t ob = basis.first_function(sb);
          for (std::size_t i = 0; i < g[atom][d].rows(); ++i)
            for (std::size_t j = 0; j < g[atom][d].cols(); ++j)
              ana(oa + i, ob + j) += g[atom][d](i, j);
        }
      EXPECT_LT(la::max_abs(ana - ref), 1e-7) << "atom " << atom << " dir "
                                              << d;
    }
  }
}

TEST(DerivInts, NuclearBlocksObeyTranslationalInvariance) {
  const auto mol = lih();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto& a = basis.shell(0);
  const auto& b = basis.shell(3);
  const auto g = ints::nuclear_gradient_blocks(a, b, mol);
  for (std::size_t d = 0; d < 3; ++d) {
    la::Matrix sum(g[0][d].rows(), g[0][d].cols());
    for (std::size_t atom = 0; atom < mol.size(); ++atom) sum += g[atom][d];
    EXPECT_LT(la::max_abs(sum), 1e-10) << d;
  }
}

TEST(DerivInts, EriGradientMatchesFd) {
  const auto mol = lih();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  // Pick a quartet spanning both atoms: (Li 2p, H 1s | Li 1s, H 1s).
  const auto& a = basis.shell(2);  // Li 2p
  const auto& b = basis.shell(3);  // H 1s
  const auto& c = basis.shell(0);  // Li 1s
  const auto& d4 = basis.shell(3);

  // FD reference via rebuilt molecules: displace atom 0 (carries a, c).
  for (std::size_t d = 0; d < 3; ++d) {
    chem::Molecule mp = mol, mm = mol;
    chem::Vec3 pos = mol.atom(0).pos;
    pos[d] += kFdStep;
    mp.set_position(0, pos);
    pos[d] -= 2 * kFdStep;
    mm.set_position(0, pos);
    const auto bp = chem::BasisSet::build(mp, "sto-3g");
    const auto bm = chem::BasisSet::build(mm, "sto-3g");
    const auto blkp = ints::eri_shell_quartet(bp.shell(2), bp.shell(3),
                                              bp.shell(0), bp.shell(3));
    const auto blkm = ints::eri_shell_quartet(bm.shell(2), bm.shell(3),
                                              bm.shell(0), bm.shell(3));

    const auto ga = ints::eri_gradient_block(a, b, c, d4, 0);
    const auto gc = ints::eri_gradient_block(a, b, c, d4, 2);
    for (std::size_t idx = 0; idx < blkp.values.size(); ++idx) {
      const double fd =
          (blkp.values[idx] - blkm.values[idx]) / (2 * kFdStep);
      EXPECT_NEAR(ga[d][idx] + gc[d][idx], fd, 1e-7) << idx << " dir " << d;
    }
  }
}

TEST(Gradient, NuclearRepulsionMatchesFd) {
  const auto mol = lih();
  const auto g = scf::nuclear_repulsion_gradient(mol);
  for (std::size_t atom = 0; atom < mol.size(); ++atom)
    for (std::size_t d = 0; d < 3; ++d) {
      chem::Molecule mp = mol, mm = mol;
      chem::Vec3 p = mol.atom(atom).pos;
      p[d] += kFdStep;
      mp.set_position(atom, p);
      p[d] -= 2 * kFdStep;
      mm.set_position(atom, p);
      const double fd =
          (mp.nuclear_repulsion() - mm.nuclear_repulsion()) / (2 * kFdStep);
      EXPECT_NEAR(g[atom][d], fd, 1e-8);
    }
}

TEST(Gradient, RhfGradientMatchesFdEnergyH2) {
  chem::Molecule mol;
  mol.add_atom(1, {0, 0, 0});
  mol.add_atom(1, {0.3, 0.2, 1.3});
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  scf::ScfOptions opts;
  opts.energy_tolerance = 1e-11;
  opts.diis_tolerance = 1e-9;
  const auto r = scf::rhf(mol, basis, opts);
  ASSERT_TRUE(r.converged);
  const auto g = scf::rhf_gradient(mol, basis, r);

  auto energy_at = [&](const chem::Molecule& m) {
    const auto b = chem::BasisSet::build(m, "sto-3g");
    scf::ScfOptions o;
    o.energy_tolerance = 1e-11;
    o.diis_tolerance = 1e-9;
    return scf::rhf(m, b, o).energy;
  };

  for (std::size_t atom = 0; atom < 2; ++atom)
    for (std::size_t d = 0; d < 3; ++d) {
      chem::Molecule mp = mol, mm = mol;
      chem::Vec3 p = mol.atom(atom).pos;
      p[d] += kFdStep;
      mp.set_position(atom, p);
      p[d] -= 2 * kFdStep;
      mm.set_position(atom, p);
      const double fd = (energy_at(mp) - energy_at(mm)) / (2 * kFdStep);
      EXPECT_NEAR(g[atom][d], fd, 1e-6) << "atom " << atom << " dir " << d;
    }
}

TEST(Gradient, RhfGradientMatchesFdEnergyLiH) {
  const auto mol = lih();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  scf::ScfOptions opts;
  opts.energy_tolerance = 1e-11;
  opts.diis_tolerance = 1e-9;
  const auto r = scf::rhf(mol, basis, opts);
  ASSERT_TRUE(r.converged);
  const auto g = scf::rhf_gradient(mol, basis, r);

  auto energy_at = [&](const chem::Molecule& m) {
    const auto b = chem::BasisSet::build(m, "sto-3g");
    scf::ScfOptions o;
    o.energy_tolerance = 1e-11;
    o.diis_tolerance = 1e-9;
    return scf::rhf(m, b, o).energy;
  };

  for (std::size_t atom = 0; atom < 2; ++atom)
    for (std::size_t d = 0; d < 3; ++d) {
      chem::Molecule mp = mol, mm = mol;
      chem::Vec3 p = mol.atom(atom).pos;
      p[d] += kFdStep;
      mp.set_position(atom, p);
      p[d] -= 2 * kFdStep;
      mm.set_position(atom, p);
      const double fd = (energy_at(mp) - energy_at(mm)) / (2 * kFdStep);
      EXPECT_NEAR(g[atom][d], fd, 5e-6) << "atom " << atom << " dir " << d;
    }
}

TEST(Gradient, TotalForceVanishes) {
  // Translational invariance of the total gradient.
  const auto mol = wl::water();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto r = scf::rhf(mol, basis);
  ASSERT_TRUE(r.converged);
  const auto g = scf::rhf_gradient(mol, basis, r);
  for (std::size_t d = 0; d < 3; ++d) {
    double total = 0.0;
    for (const auto& gi : g) total += gi[d];
    EXPECT_NEAR(total, 0.0, 1e-9) << d;
  }
}
