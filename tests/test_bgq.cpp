#include <gtest/gtest.h>

#include <cmath>

#include "bgq/collectives.hpp"
#include "bgq/machine.hpp"
#include "bgq/simulator.hpp"
#include "bgq/torus.hpp"

namespace bgq = mthfx::bgq;

TEST(Machine, HeadlineScaleIs96Racks) {
  const auto m = bgq::machine_for_racks(96);
  EXPECT_EQ(m.num_nodes(), 98304);
  EXPECT_EQ(m.num_threads(), 6291456);  // the paper's headline number
}

class RackCounts : public ::testing::TestWithParam<int> {};

TEST_P(RackCounts, TorusVolumeMatchesNodeCount) {
  const auto m = bgq::machine_for_racks(GetParam());
  std::int64_t vol = 1;
  for (int d : m.torus) vol *= d;
  EXPECT_EQ(vol, m.num_nodes());
  EXPECT_EQ(m.num_nodes(),
            static_cast<std::int64_t>(GetParam()) * 1024);
}

INSTANTIATE_TEST_SUITE_P(All, RackCounts,
                         ::testing::ValuesIn(bgq::supported_rack_counts()));

TEST(Machine, RejectsUnsupportedRackCount) {
  EXPECT_THROW(bgq::machine_for_racks(3), std::invalid_argument);
  EXPECT_THROW(bgq::machine_for_racks(0), std::invalid_argument);
}

TEST(Torus, CoordIndexRoundTrip) {
  const bgq::TorusShape shape{4, 4, 4, 8, 2};
  for (std::int64_t i : {0L, 1L, 63L, 511L, 1023L}) {
    const auto c = bgq::torus_coord(shape, i);
    EXPECT_EQ(bgq::torus_index(shape, c), i);
  }
  EXPECT_THROW(bgq::torus_coord(shape, 1024), std::out_of_range);
  EXPECT_THROW(bgq::torus_coord(shape, -1), std::out_of_range);
}

TEST(Torus, HopMetricUsesWraparound) {
  const bgq::TorusShape shape{8, 4, 4, 4, 2};
  bgq::TorusCoord a{{0, 0, 0, 0, 0}};
  bgq::TorusCoord b{{7, 0, 0, 0, 0}};
  EXPECT_EQ(bgq::torus_hops(shape, a, b), 1);  // wraps: 0 -> 7 is one hop
  bgq::TorusCoord c{{4, 2, 2, 2, 1}};
  EXPECT_EQ(bgq::torus_hops(shape, a, c), 4 + 2 + 2 + 2 + 1);
}

TEST(Torus, MetricProperties) {
  const bgq::TorusShape shape{4, 4, 4, 8, 2};
  const auto a = bgq::torus_coord(shape, 17);
  const auto b = bgq::torus_coord(shape, 912);
  const auto c = bgq::torus_coord(shape, 311);
  EXPECT_EQ(bgq::torus_hops(shape, a, a), 0);
  EXPECT_EQ(bgq::torus_hops(shape, a, b), bgq::torus_hops(shape, b, a));
  EXPECT_LE(bgq::torus_hops(shape, a, c),
            bgq::torus_hops(shape, a, b) + bgq::torus_hops(shape, b, c));
  EXPECT_LE(bgq::torus_hops(shape, a, b), bgq::torus_diameter(shape));
}

TEST(Torus, BgqHasTenLinksPerNode) {
  EXPECT_EQ(bgq::links_per_node({4, 4, 4, 8, 2}), 10);
}

TEST(Collectives, DistributedAssemblyBeatsReplicatedAtScale) {
  const auto m = bgq::machine_for_racks(96);
  const std::int64_t bytes = 8LL * 8000 * 8000;  // an 8000x8000 K matrix
  const double dist = bgq::distributed_reduce_seconds(m, bytes);
  const double repl = bgq::replicated_allreduce_seconds(m, bytes);
  EXPECT_LT(dist, repl / 100.0);
}

TEST(Collectives, DistributedAssemblyShrinksWithMachine) {
  // Per-node traffic is overlap*bytes/P: more nodes, less per node.
  const std::int64_t bytes = 8LL * 4000 * 4000;
  const double d1 =
      bgq::distributed_reduce_seconds(bgq::machine_for_racks(1), bytes);
  const double d96 =
      bgq::distributed_reduce_seconds(bgq::machine_for_racks(96), bytes);
  EXPECT_LT(d96, d1);
}

TEST(Collectives, ReplicatedAllreduceIsBandwidthBound) {
  // Payload term dominates and is scale-independent; doubling bytes
  // roughly doubles the cost.
  const auto m = bgq::machine_for_racks(8);
  const double t1 = bgq::replicated_allreduce_seconds(m, 1 << 24);
  const double t2 = bgq::replicated_allreduce_seconds(m, 1 << 25);
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(Collectives, TreeCostGrowsSlowlyWithMachine) {
  const std::int64_t bytes = 8 * 500 * 500;
  const double t1 = bgq::tree_allreduce_seconds(bgq::machine_for_racks(1), bytes);
  const double t96 =
      bgq::tree_allreduce_seconds(bgq::machine_for_racks(96), bytes);
  EXPECT_LT(t96, 3.0 * t1);  // latency-only growth (diameter), not O(P)
}

TEST(Collectives, BroadcastCheaperThanAllreduce) {
  const auto m = bgq::machine_for_racks(8);
  EXPECT_LT(bgq::tree_broadcast_seconds(m, 1 << 20),
            bgq::tree_allreduce_seconds(m, 1 << 20));
}

TEST(Simulator, EmpiricalDistributionStats) {
  bgq::EmpiricalCostDistribution d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  std::uint64_t rng = 12345;
  for (int i = 0; i < 100; ++i) {
    const double s = d.sample(rng);
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 4.0);
  }
  EXPECT_THROW(bgq::EmpiricalCostDistribution({}), std::invalid_argument);
}

TEST(Simulator, FromRecordsFallsBackToEstimates) {
  std::vector<mthfx::hfx::TaskCostRecord> recs{
      {0, 100.0, 1e-4}, {1, 200.0, 0.0}, {2, 50.0, 5e-5}};
  const auto d = bgq::EmpiricalCostDistribution::from_records(recs);
  EXPECT_EQ(d.support_size(), 3u);
  EXPECT_GT(d.mean(), 0.0);
}

namespace {

bgq::EmpiricalCostDistribution uniform_costs() {
  std::vector<double> c;
  for (int i = 0; i < 1000; ++i) c.push_back(1e-4 * (1.0 + 0.2 * (i % 10)));
  return bgq::EmpiricalCostDistribution(std::move(c));
}

}  // namespace

TEST(Simulator, DynamicSchemeScalesNearLinearly) {
  const auto costs = uniform_costs();
  bgq::SimWorkload w;
  w.num_tasks = 40'000'000;  // plenty of tasks per thread at both scales
  w.reduction_bytes = 8 * 600 * 600;

  const auto r1 = bgq::simulate_step(bgq::machine_for_racks(1), w, costs);
  const auto r8 = bgq::simulate_step(bgq::machine_for_racks(8), w, costs);
  const double eff = bgq::parallel_efficiency(r1, r8);
  EXPECT_GT(eff, 0.85);
  EXPECT_LT(eff, 1.1);
}

TEST(Simulator, StaticSchemeSuffersUnderHeavyTail) {
  // Heavy-tailed task costs: dynamic bag absorbs them, static cannot.
  std::vector<double> c;
  for (int i = 0; i < 10000; ++i) c.push_back(i % 100 == 0 ? 5e-2 : 1e-4);
  const bgq::EmpiricalCostDistribution costs(std::move(c));

  bgq::SimWorkload w;
  w.num_tasks = 3'000'000;
  w.reduction_bytes = 8 * 600 * 600;
  const auto machine = bgq::machine_for_racks(4);

  bgq::SimOptions dyn;
  dyn.scheme = bgq::SimScheme::kDynamicHierarchical;
  bgq::SimOptions stat;
  stat.scheme = bgq::SimScheme::kStaticBlockCyclic;

  const auto rd = bgq::simulate_step(machine, w, costs, dyn);
  const auto rs = bgq::simulate_step(machine, w, costs, stat);
  EXPECT_LT(rd.makespan_seconds, rs.makespan_seconds);
  EXPECT_GT(rs.imbalance, rd.imbalance);
}

TEST(Simulator, MakespanBoundedBelowByMeanWork) {
  const auto costs = uniform_costs();
  bgq::SimWorkload w;
  w.num_tasks = 1'000'000;
  w.reduction_bytes = 8 * 300 * 300;
  const auto machine = bgq::machine_for_racks(2);
  const auto r = bgq::simulate_step(machine, w, costs);
  const double total_work =
      costs.mean() * static_cast<double>(w.num_tasks);
  const double lower =
      total_work / static_cast<double>(machine.num_threads());
  EXPECT_GE(r.makespan_seconds, lower * 0.99);
}

TEST(Simulator, FewTasksCapSpeedup) {
  // When tasks << threads, extra racks cannot help: makespan is bounded
  // by the per-task cost.
  const auto costs = uniform_costs();
  bgq::SimWorkload w;
  w.num_tasks = 1000;
  w.reduction_bytes = 8 * 100 * 100;
  const auto r16 = bgq::simulate_step(bgq::machine_for_racks(16), w, costs);
  const auto r96 = bgq::simulate_step(bgq::machine_for_racks(96), w, costs);
  EXPECT_LT(bgq::parallel_efficiency(r16, r96), 0.5);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const auto costs = uniform_costs();
  bgq::SimWorkload w;
  w.num_tasks = 100000;
  w.reduction_bytes = 1 << 20;
  const auto machine = bgq::machine_for_racks(1);
  const auto r1 = bgq::simulate_step(machine, w, costs);
  const auto r2 = bgq::simulate_step(machine, w, costs);
  EXPECT_DOUBLE_EQ(r1.makespan_seconds, r2.makespan_seconds);
}

TEST(Simulator, FromRecordsRejectsEmptyInput) {
  EXPECT_THROW(bgq::EmpiricalCostDistribution::from_records({}),
               std::invalid_argument);
}

TEST(SimulatorFaults, DeterministicForFixedSeed) {
  const auto costs = uniform_costs();
  bgq::SimWorkload w;
  w.num_tasks = 200000;
  w.reduction_bytes = 1 << 20;
  const auto machine = bgq::machine_for_racks(1);
  bgq::SimOptions opts;
  opts.node_failure_rate = 0.05;
  opts.straggler_rate = 0.05;
  const auto r1 = bgq::simulate_step(machine, w, costs, opts);
  const auto r2 = bgq::simulate_step(machine, w, costs, opts);
  EXPECT_DOUBLE_EQ(r1.makespan_seconds, r2.makespan_seconds);
  EXPECT_EQ(r1.failed_nodes, r2.failed_nodes);
  EXPECT_EQ(r1.straggler_nodes, r2.straggler_nodes);
}

TEST(SimulatorFaults, FailuresDegradeBothSchemes) {
  const auto costs = uniform_costs();
  bgq::SimWorkload w;
  w.num_tasks = 200000;
  w.reduction_bytes = 1 << 20;
  const auto machine = bgq::machine_for_racks(1);

  for (const auto scheme : {bgq::SimScheme::kDynamicHierarchical,
                            bgq::SimScheme::kStaticBlockCyclic}) {
    bgq::SimOptions clean;
    clean.scheme = scheme;
    bgq::SimOptions faulty = clean;
    faulty.node_failure_rate = 0.05;
    faulty.straggler_rate = 0.05;

    const auto rc = bgq::simulate_step(machine, w, costs, clean);
    const auto rf = bgq::simulate_step(machine, w, costs, faulty);
    EXPECT_EQ(rc.failed_nodes, 0);
    EXPECT_GT(rf.failed_nodes, 0);
    EXPECT_GT(rf.straggler_nodes, 0);
    EXPECT_GE(rf.makespan_seconds, rc.makespan_seconds);
  }
}

TEST(SimulatorFaults, DynamicDegradesLessThanStatic) {
  // Both schemes see the same per-node fault draws (pure function of
  // seed and node id), so the gap isolates the scheduling policy: the
  // dynamic bag redistributes a dead node's work while the static
  // assignment stalls behind it. The workload is large enough that
  // every node hosts work under both schemes (identical fate
  // populations) and per-node work dwarfs the detection latency.
  const auto costs = uniform_costs();
  bgq::SimWorkload w;
  w.num_tasks = 40'000'000;
  w.reduction_bytes = 1 << 20;
  const auto machine = bgq::machine_for_racks(1);

  bgq::SimOptions dyn;
  dyn.scheme = bgq::SimScheme::kDynamicHierarchical;
  bgq::SimOptions stat = dyn;
  stat.scheme = bgq::SimScheme::kStaticBlockCyclic;

  const auto rdc = bgq::simulate_step(machine, w, costs, dyn);
  const auto rsc = bgq::simulate_step(machine, w, costs, stat);

  dyn.node_failure_rate = stat.node_failure_rate = 0.02;
  dyn.straggler_rate = stat.straggler_rate = 0.02;
  const auto rdf = bgq::simulate_step(machine, w, costs, dyn);
  const auto rsf = bgq::simulate_step(machine, w, costs, stat);

  EXPECT_EQ(rdf.failed_nodes, rsf.failed_nodes);
  const double dyn_degradation =
      rdf.makespan_seconds / rdc.makespan_seconds - 1.0;
  const double stat_degradation =
      rsf.makespan_seconds / rsc.makespan_seconds - 1.0;
  EXPECT_LT(dyn_degradation, stat_degradation);
}
