// Property tests for the sparsity pipeline: on seeded random geometries
// and bases, the distance-culled cell-list pair formation must
// reproduce the dense O(ns²) Schwarz sweep exactly (both drop exactly
// the beyond-extent-range pairs; in-range pairs, Schwarz-floored or
// not, pass the same eps rule), and the blocked J/K build must replay
// the dense builder
// bit-for-bit on the shared pair list. Iteration count comes from
// MTHFX_PROPERTY_ITERS (default 50). Registered under the compound
// "property-scaling" label plus a nightly high-iteration run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "chem/basis.hpp"
#include "hfx/cell_list.hpp"
#include "hfx/fock_builder.hpp"
#include "hfx/shell_pairs.hpp"
#include "ints/schwarz.hpp"
#include "linalg/block_sparse.hpp"
#include "scf/sparse_scf.hpp"
#include "support/property_gtest.hpp"
#include "testing/generators.hpp"
#include "testing/property.hpp"
#include "testing/rng.hpp"

namespace chem = mthfx::chem;
namespace hfx = mthfx::hfx;
namespace ints = mthfx::ints;
namespace la = mthfx::linalg;
namespace mt = mthfx::testing;
namespace scf = mthfx::scf;

namespace {

// Spread-out geometries: wide placement cube so a good fraction of
// draws contain pairs beyond the shell extent radii (the regime the
// cell list exists for), while small atom counts keep the dense oracle
// cheap.
mt::MoleculeSpec spread_spec() {
  mt::MoleculeSpec spec;
  spec.min_atoms = 2;
  spec.max_atoms = 6;
  spec.box = 34.0;
  spec.min_separation = 2.0;
  return spec;
}

std::vector<hfx::ShellPair> by_index(std::vector<hfx::ShellPair> v) {
  std::sort(v.begin(), v.end(),
            [](const hfx::ShellPair& a, const hfx::ShellPair& b) {
              return std::tuple(a.sa, a.sb) < std::tuple(b.sa, b.sb);
            });
  return v;
}

}  // namespace

TEST(PropertyScaling, CulledPairListMatchesDenseSweep) {
  MTHFX_PROPERTY(
      "PropertyScaling.CulledPairListMatchesDenseSweep",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const chem::Molecule mol = mt::random_molecule(rng, spread_spec());
        const std::string bname = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, bname);
        // eps log-uniform over the useful screening range.
        const double eps = std::pow(10.0, -6.0 - 6.0 * rng.uniform());

        const hfx::ShellPairList dense(basis, ints::schwarz_bounds(basis),
                                       eps);
        hfx::PairCullStats st;
        const hfx::ShellPairList culled =
            hfx::ShellPairList::culled(basis, eps, &st);

        if (dense.size() != culled.size()) {
          std::ostringstream os;
          os << "pair count mismatch: dense " << dense.size() << " culled "
             << culled.size() << " (" << bname << ", eps " << eps
             << ", candidates " << st.candidates << ", floored "
             << st.floored << ")";
          return os.str();
        }
        const auto a = by_index(dense.pairs());
        const auto b = by_index(culled.pairs());
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i].sa != b[i].sa || a[i].sb != b[i].sb)
            return "pair identity mismatch at index " + std::to_string(i);
          if (a[i].q != b[i].q) {
            std::ostringstream os;
            os << "bound mismatch on pair (" << a[i].sa << "," << a[i].sb
               << "): dense " << a[i].q << " culled " << b[i].q;
            return os.str();
          }
        }
        if (dense.max_q() != culled.max_q()) return "max_q mismatch";
        return "";
      });
}

TEST(PropertyScaling, CellListCandidatesCoverSurvivingPairs) {
  // Stronger than list equality: every pair the dense sweep keeps must
  // have been proposed by the cell list (the no-false-negative
  // guarantee the culled build rests on), independently of the eps and
  // floor filters downstream.
  MTHFX_PROPERTY(
      "PropertyScaling.CellListCandidatesCoverSurvivingPairs",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const chem::Molecule mol = mt::random_molecule(rng, spread_spec());
        const std::string bname = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, bname);

        const hfx::CellList cells(basis, hfx::shell_extent_radii(basis));
        std::vector<std::vector<char>> proposed(basis.num_shells());
        std::vector<std::uint32_t> cand;
        for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
          proposed[sa].assign(sa + 1, 0);
          cells.candidates(sa, &cand);
          for (const std::uint32_t sb : cand) proposed[sa][sb] = 1;
          cand.clear();
        }
        const hfx::ShellPairList dense(basis, ints::schwarz_bounds(basis),
                                       1e-10);
        for (const auto& p : dense.pairs())
          if (!proposed[p.sa][p.sb]) {
            std::ostringstream os;
            os << "surviving pair (" << p.sa << "," << p.sb
               << ") q=" << p.q << " was never proposed (" << bname << ")";
            return os.str();
          }
        return "";
      });
}

TEST(PropertyScaling, BlockedJkReplaysDenseBuilder) {
  // O(N^4) oracle per case: quarter of the suite iteration budget.
  MTHFX_PROPERTY_N(
      "PropertyScaling.BlockedJkReplaysDenseBuilder",
      std::max<std::size_t>(1, mt::property_iterations() / 4),
      [](mt::Rng& rng, std::size_t) -> std::string {
        mt::MoleculeSpec spec = spread_spec();
        spec.max_atoms = 4;
        spec.box = 18.0;
        const chem::Molecule mol = mt::random_molecule(rng, spec);
        const auto basis = chem::BasisSet::build(mol, "sto-3g");

        hfx::HfxOptions dense_opts;
        dense_opts.num_threads = 1;
        const hfx::FockBuilder dense(basis, dense_opts);
        hfx::HfxOptions blocked_opts;
        blocked_opts.num_threads = 1;
        blocked_opts.sparsity.mode = hfx::SparsityMode::kBlocked;
        const hfx::FockBuilder blocked(basis, blocked_opts);

        const la::Matrix p =
            mt::random_symmetric_density(rng, basis.num_functions());
        const auto part = scf::shell_aligned_partition(basis, 32);
        const auto jk_d = dense.coulomb_exchange(p);
        const auto jk_b = blocked.coulomb_exchange_blocked(
            la::BlockSparseMatrix::from_dense(p, part, 0.0));

        double diff = 0.0;
        for (std::size_t i = 0; i < p.rows(); ++i)
          for (std::size_t j = 0; j < p.cols(); ++j)
            diff = std::max({diff, std::abs(jk_d.j(i, j) - jk_b.j(i, j)),
                             std::abs(jk_d.k(i, j) - jk_b.k(i, j))});
        if (diff > 1e-12) {
          std::ostringstream os;
          os << "blocked J/K deviates from dense by " << diff << " ("
             << mol.size() << " atoms, " << basis.num_functions() << " bf)";
          return os.str();
        }
        return "";
      });
}
