#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chem/elements.hpp"
#include "md/forces.hpp"
#include "md/integrator.hpp"
#include "md/optimize.hpp"
#include "md/trajectory.hpp"
#include "md/thermostat.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace md = mthfx::md;
namespace wl = mthfx::workload;

namespace {

// Two "argon-like" particles on a harmonic spring.
chem::Molecule diatomic(double r) {
  chem::Molecule m;
  m.add_atom(18, {0, 0, 0});
  m.add_atom(18, {0, 0, r});
  return m;
}

}  // namespace

TEST(Thermostat, KineticEnergyAndTemperature) {
  const auto m = diatomic(2.0);
  std::vector<chem::Vec3> v(2, chem::Vec3{0, 0, 0});
  EXPECT_DOUBLE_EQ(md::kinetic_energy(m, v), 0.0);
  EXPECT_DOUBLE_EQ(md::temperature(m, v), 0.0);

  v[0] = {1e-4, 0, 0};
  const double mass = chem::element(18).mass_amu * chem::kAmuToElectronMass;
  EXPECT_NEAR(md::kinetic_energy(m, v), 0.5 * mass * 1e-8, 1e-12);
  EXPECT_GT(md::temperature(m, v), 0.0);
}

TEST(Thermostat, BerendsenPullsTowardTarget) {
  // Too hot -> lambda < 1; too cold -> lambda > 1; on target -> 1.
  EXPECT_LT(md::berendsen_lambda(600.0, 300.0, 1.0, 10.0), 1.0);
  EXPECT_GT(md::berendsen_lambda(100.0, 300.0, 1.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(md::berendsen_lambda(300.0, 300.0, 1.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(md::berendsen_lambda(0.0, 300.0, 1.0, 10.0), 1.0);
}

TEST(Thermostat, MaxwellBoltzmannHitsTargetTemperature) {
  // Many particles -> sampled temperature within a few percent.
  chem::Molecule m;
  for (int i = 0; i < 400; ++i) m.add_atom(18, {0, 0, 2.0 * i});
  const auto v = md::maxwell_boltzmann_velocities(m, 300.0, 7);
  EXPECT_NEAR(md::temperature(m, v), 300.0, 25.0);
  // COM momentum removed.
  chem::Vec3 p{0, 0, 0};
  for (std::size_t i = 0; i < m.size(); ++i) p = p + v[i];
  EXPECT_NEAR(chem::norm(p), 0.0, 1e-10);
}

TEST(Forces, FiniteDifferenceMatchesAnalyticHarmonic) {
  md::HarmonicBondPotential pot({{0, 1, 0.3, 2.0}});
  const auto m = diatomic(2.5);
  const auto fa = pot.forces(m);

  // Rebuild via the base-class FD path.
  struct FdOnly : md::PotentialSurface {
    const md::HarmonicBondPotential* inner;
    double energy(const chem::Molecule& mol) const override {
      return inner->energy(mol);
    }
  } fd;
  fd.inner = &pot;
  const auto ff = fd.forces(m);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_NEAR(fa[i][d], ff[i][d], 1e-7);
}

TEST(Integrator, ConservesEnergyNve) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  const auto m = diatomic(2.3);  // displaced from r0 = 2.0
  md::MdOptions opts;
  opts.timestep_fs = 0.5;
  opts.num_steps = 400;
  const auto result = md::run_bomd(m, pot, opts);
  ASSERT_EQ(result.frames.size(), 401u);
  // Verlet drift scale is (omega dt)^2 * E_vib ~ 6e-5 at this timestep.
  EXPECT_LT(result.max_energy_drift(), 1e-4);
  // Energy actually exchanges between kinetic and potential.
  double max_ke = 0.0;
  for (const auto& f : result.frames) max_ke = std::max(max_ke, f.kinetic);
  EXPECT_GT(max_ke, 1e-4);
}

TEST(Integrator, SmallerTimestepReducesDrift) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  const auto m = diatomic(2.5);
  md::MdOptions coarse;
  coarse.timestep_fs = 2.0;
  coarse.num_steps = 100;
  md::MdOptions fine;
  fine.timestep_fs = 0.25;
  fine.num_steps = 800;  // same simulated time
  const double d_coarse = md::run_bomd(m, pot, coarse).max_energy_drift();
  const double d_fine = md::run_bomd(m, pot, fine).max_energy_drift();
  EXPECT_LT(d_fine, d_coarse);
}

TEST(Integrator, ThermostatRegulatesTemperature) {
  // Start cold with a stretched spring; Berendsen drives T toward target.
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  chem::Molecule m;
  for (int i = 0; i < 2; ++i) m.add_atom(18, {0, 0, 2.4 * i});
  md::MdOptions opts;
  opts.timestep_fs = 1.0;
  opts.num_steps = 500;
  opts.target_temperature_k = 200.0;
  opts.initial_temperature_k = 600.0;
  const auto result = md::run_bomd(m, pot, opts);
  // Late-trajectory temperature is pulled well below the hot start.
  double late_avg = 0.0;
  int count = 0;
  for (std::size_t i = result.frames.size() - 100; i < result.frames.size();
       ++i, ++count)
    late_avg += result.frames[i].temperature_k;
  late_avg /= count;
  EXPECT_LT(late_avg, 450.0);
  EXPECT_GT(late_avg, 30.0);
}

TEST(Integrator, CallbackSeesEveryFrame) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  int seen = 0;
  md::MdOptions opts;
  opts.num_steps = 25;
  md::run_bomd(diatomic(2.2), pot, opts,
               [&](const md::MdFrame&) { ++seen; });
  EXPECT_EQ(seen, 26);
}

TEST(Integrator, ScfSurfaceH2OscillatesAboutBondLength) {
  // Real BOMD on the RHF surface: H2 stretched to 1.6 a0 must pull back
  // toward ~1.4 a0 (restoring force), conserving energy reasonably.
  mthfx::scf::KsOptions ks;
  ks.functional = "hf";
  md::ScfPotential pot("sto-3g", ks);
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.6});

  md::MdOptions opts;
  opts.timestep_fs = 0.15;  // H2 stretch is fast: keep omega*dt small
  opts.num_steps = 12;
  const auto result = md::run_bomd(m, pot, opts);
  const double r_final = chem::distance(result.final_geometry.atom(0).pos,
                                        result.final_geometry.atom(1).pos);
  EXPECT_LT(r_final, 1.6);  // bond contracted toward equilibrium
  EXPECT_LT(result.max_energy_drift(), 2e-4);
}

TEST(Forces, AnalyticRhfForcesMatchFiniteDifference) {
  mthfx::scf::KsOptions ks;
  ks.functional = "hf";
  ks.scf.energy_tolerance = 1e-11;
  ks.scf.diis_tolerance = 1e-9;
  md::ScfPotential pot("sto-3g", ks);
  const auto m = wl::water();

  const auto analytic = pot.forces(m);  // analytic-gradient path

  // Force the finite-difference path through the base class.
  struct FdView : md::PotentialSurface {
    const md::ScfPotential* inner;
    double energy(const chem::Molecule& mol) const override {
      return inner->energy(mol);
    }
  } fd;
  fd.inner = &pot;
  fd.fd_step = 1e-4;
  const auto numeric = fd.forces(m);

  for (std::size_t i = 0; i < m.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_NEAR(analytic[i][d], numeric[i][d], 1e-5) << i << "," << d;
}

TEST(Forces, WavefunctionCacheMakesEnergyPlusForcesOneScf) {
  // The integrator asks for energy(mol) then forces(mol) at the same
  // geometry every step; the per-geometry cache must collapse that to
  // one SCF solve. Counters pin the contract.
  mthfx::scf::KsOptions ks;
  ks.functional = "hf";
  md::ScfPotential pot("sto-3g", ks);
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.5});

  pot.energy(m);
  pot.forces(m);
  EXPECT_EQ(pot.metrics().counter_total("md.scf_solves"), 1u);
  EXPECT_EQ(pot.metrics().counter_total("md.surface_cache_hits"), 1u);

  // A moved geometry is a genuine new solve, not a stale cache hit.
  chem::Molecule moved = m;
  moved.set_position(1, {0, 0, 1.6});
  pot.forces(moved);
  EXPECT_EQ(pot.metrics().counter_total("md.scf_solves"), 2u);
  EXPECT_EQ(pot.metrics().counter_total("md.surface_cache_hits"), 1u);
  // Only atom 1 moved, so the rebind carried atom 0's diagonal shell
  // pair (and its Hermite table) over from the previous geometry.
  EXPECT_GT(pot.metrics().counter_total("md.rebind_reused_pairs"), 0u);

  // ...and the original geometry re-solves too (history, not a map).
  pot.energy(m);
  EXPECT_EQ(pot.metrics().counter_total("md.scf_solves"), 3u);
}

TEST(Integrator, BomdRunsOneScfPerStep) {
  mthfx::scf::KsOptions ks;
  ks.functional = "hf";
  md::ScfPotential pot("sto-3g", ks);
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.5});

  md::MdOptions opts;
  opts.timestep_fs = 0.15;
  opts.num_steps = 4;
  md::run_bomd(m, pot, opts);
  // One solve per unique geometry (initial + one per step); every
  // energy()+forces() pair costs exactly one cache hit.
  EXPECT_EQ(pot.metrics().counter_total("md.scf_solves"), 5u);
  EXPECT_EQ(pot.metrics().counter_total("md.surface_cache_hits"), 5u);
}

TEST(Integrator, WarmStartReducesScfIterations) {
  // Mid-trajectory solves seeded with the extrapolated density must
  // converge in fewer total iterations than cold core-guess starts.
  mthfx::scf::KsOptions ks;
  ks.functional = "hf";
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  m.add_atom(1, {0, 0, 3.2});

  md::MdOptions opts;
  opts.timestep_fs = 0.25;
  opts.num_steps = 5;

  md::ScfPotential warm("sto-3g", ks);
  md::SurfaceAccel no_warm;
  no_warm.warm_start = false;
  md::ScfPotential cold("sto-3g", ks, no_warm);

  md::run_bomd(m, warm, opts);
  md::run_bomd(m, cold, opts);

  const auto& wm = warm.metrics();
  const auto& cm = cold.metrics();
  ASSERT_EQ(wm.counter_total("md.scf_solves"),
            cm.counter_total("md.scf_solves"));
  // Every solve after the first has history to extrapolate from.
  EXPECT_EQ(wm.counter_total("md.warm_starts"),
            wm.counter_total("md.scf_solves") - 1);
  EXPECT_EQ(cm.counter_total("md.warm_starts"), 0u);
  EXPECT_LT(wm.counter_total("md.scf_iterations"),
            cm.counter_total("md.scf_iterations"));
}

TEST(Integrator, Pbe0AnalyticNveConservesEnergy) {
  // NVE regression for the analytic PBE0 force path: drift stays inside
  // the pinned bound and is no worse than the finite-difference baseline
  // it replaced (modulo the FD path's own O(h^2) force error).
  mthfx::scf::KsOptions ks;
  ks.functional = "pbe0";
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.5});

  md::MdOptions opts;
  opts.timestep_fs = 0.15;
  opts.num_steps = 8;

  md::ScfPotential pot("sto-3g", ks);
  const double drift_analytic = md::run_bomd(m, pot, opts).max_energy_drift();
  EXPECT_LT(drift_analytic, 2e-4);  // pinned NVE bound for this setup

  md::ScfPotential pot_fd("sto-3g", ks);
  struct FdView : md::PotentialSurface {
    const md::ScfPotential* inner;
    double energy(const chem::Molecule& mol) const override {
      return inner->energy(mol);
    }
  } fd;
  fd.inner = &pot_fd;
  fd.fd_step = 1e-3;
  const double drift_fd = md::run_bomd(m, fd, opts).max_energy_drift();
  EXPECT_LT(drift_analytic, 2.0 * drift_fd + 1e-5);
}

TEST(Optimize, HarmonicDiatomicFindsMinimum) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  const auto r = md::optimize(diatomic(2.6), pot);
  ASSERT_TRUE(r.converged);
  const double dist = chem::distance(r.geometry.atom(0).pos,
                                     r.geometry.atom(1).pos);
  EXPECT_NEAR(dist, 2.0, 1e-3);
  EXPECT_NEAR(r.energy, 0.0, 1e-6);
}

TEST(Optimize, RhfH2BondLengthMatchesSto3gMinimum) {
  // RHF/STO-3G H2 equilibrium bond length is ~1.346 a0 (0.712 A),
  // located here with analytic gradients.
  mthfx::scf::KsOptions ks;
  ks.functional = "hf";
  ks.scf.energy_tolerance = 1e-11;
  ks.scf.diis_tolerance = 1e-9;
  md::ScfPotential pot("sto-3g", ks);
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.6});
  md::OptimizeOptions opts;
  opts.force_tolerance = 1e-5;
  const auto r = md::optimize(m, pot, opts);
  ASSERT_TRUE(r.converged);
  const double dist = chem::distance(r.geometry.atom(0).pos,
                                     r.geometry.atom(1).pos);
  EXPECT_NEAR(dist, 1.346, 5e-3);
  EXPECT_LT(r.energy, -1.117);  // below the R = 1.4 energy
}

TEST(Optimize, EnergyDecreasesMonotonicallyNearConvergence) {
  md::HarmonicBondPotential pot({{0, 1, 0.8, 2.2}});
  const auto r = md::optimize(diatomic(2.8), pot);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.energy_trace.size(), 2u);
  // Final steps strictly descend.
  const auto& tr = r.energy_trace;
  EXPECT_LT(tr.back(), tr.front());
}

TEST(Trajectory, RecordsFramesAndSerializes) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  md::TrajectoryWriter writer;
  md::MdOptions opts;
  opts.num_steps = 5;
  const auto result =
      md::run_bomd_recorded(diatomic(2.3), pot, opts, writer);
  EXPECT_EQ(writer.num_frames(), 6u);
  EXPECT_EQ(result.frames.size(), 6u);

  const std::string xyz = writer.xyz();
  // Six XYZ blocks, each starting with the atom count line "2".
  std::size_t blocks = 0, pos = 0;
  while ((pos = xyz.find("2\nt=", pos)) != std::string::npos) {
    ++blocks;
    pos += 4;
  }
  EXPECT_EQ(blocks, 6u);

  const std::string csv = writer.energy_csv();
  EXPECT_NE(csv.find("time_fs,potential_ha"), std::string::npos);
  // Header + 6 data rows.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            7u);
}

TEST(Trajectory, GeometriesEvolveAcrossFrames) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  md::TrajectoryWriter writer;
  md::MdOptions opts;
  opts.num_steps = 10;
  md::run_bomd_recorded(diatomic(2.5), pot, opts, writer);
  const std::string xyz = writer.xyz();
  // The stretched bond contracts: first and last frames differ.
  const auto first_end = xyz.find("\n", xyz.find("Ar"));
  EXPECT_NE(xyz.substr(0, 200), xyz.substr(xyz.size() - 200));
  (void)first_end;
}

TEST(Integrator, MaxEnergyDriftOfEmptyResultIsZero) {
  EXPECT_EQ(md::MdResult{}.max_energy_drift(), 0.0);
}
