#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "dft/functionals.hpp"
#include "dft/spin_functionals.hpp"
#include "scf/rks.hpp"
#include "scf/uhf.hpp"
#include "scf/uks.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace dft = mthfx::dft;
namespace scf = mthfx::scf;
namespace wl = mthfx::workload;

namespace {

dft::SpinDensity unpolarized(double rho, double sigma) {
  dft::SpinDensity d;
  d.rho_a = d.rho_b = 0.5 * rho;
  d.sigma_aa = d.sigma_bb = d.sigma_ab = 0.25 * sigma;
  return d;
}

}  // namespace

class SpinReduction
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SpinReduction, UnpolarizedLimitsMatchClosedShellForms) {
  const auto [rho, sigma] = GetParam();
  const auto d = unpolarized(rho, sigma);
  EXPECT_NEAR(dft::lsda_exchange_energy_density(d),
              dft::lda_exchange_energy_density(rho, sigma), 1e-12);
  EXPECT_NEAR(dft::pw92_correlation_energy_density_spin(d),
              dft::pw92_correlation_energy_density(rho, sigma), 1e-10);
  EXPECT_NEAR(dft::pbe_exchange_energy_density_spin(d),
              dft::pbe_exchange_energy_density(rho, sigma), 1e-12);
  EXPECT_NEAR(dft::pbe_correlation_energy_density_spin(d),
              dft::pbe_correlation_energy_density(rho, sigma), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, SpinReduction,
    ::testing::Combine(::testing::Values(0.01, 0.2, 1.0, 6.0),
                       ::testing::Values(0.0, 0.05, 1.0, 50.0)));

TEST(SpinFunctionals, FullyPolarizedExchangeScaling) {
  // e_x(rho, zeta=1) = 2^{1/3} e_x^unpol(rho) for LSDA.
  dft::SpinDensity d;
  d.rho_a = 0.7;
  d.rho_b = 0.0;
  EXPECT_NEAR(dft::lsda_exchange_energy_density(d),
              std::cbrt(2.0) * dft::lda_exchange_energy_density(0.7, 0.0),
              1e-12);
}

TEST(SpinFunctionals, PolarizedCorrelationWeakerThanUnpolarized) {
  // |e_c| decreases with polarization at fixed rs (parallel spins
  // avoid each other already via exchange).
  for (double rs : {0.5, 2.0, 10.0}) {
    const double e0 = dft::pw92_eps_c_spin(rs, 0.0);
    const double e1 = dft::pw92_eps_c_spin(rs, 1.0);
    EXPECT_LT(e0, e1);  // both negative; polarized is less negative
    EXPECT_LT(e1, 0.0);
  }
}

TEST(SpinFunctionals, Pw92KnownValues) {
  // PW92 parametrization values: eps_c(rs=2, zeta=0) = -0.04476 Ha,
  // eps_c(rs=2, zeta=1) = -0.02392 Ha.
  EXPECT_NEAR(dft::pw92_eps_c_spin(2.0, 0.0), -0.04476, 2e-4);
  EXPECT_NEAR(dft::pw92_eps_c_spin(2.0, 1.0), -0.02392, 2e-4);
}

TEST(SpinFunctionals, ZetaSymmetry) {
  // e(zeta) = e(-zeta).
  dft::SpinDensity d1, d2;
  d1.rho_a = 0.6;
  d1.rho_b = 0.2;
  d2.rho_a = 0.2;
  d2.rho_b = 0.6;
  EXPECT_NEAR(dft::lsda_exchange_energy_density(d1),
              dft::lsda_exchange_energy_density(d2), 1e-14);
  EXPECT_NEAR(dft::pw92_correlation_energy_density_spin(d1),
              dft::pw92_correlation_energy_density_spin(d2), 1e-12);
}

TEST(SpinFunctionals, RegistryMatchesClosedShellRegistry) {
  const auto up = dft::make_spin_functional("pbe0");
  EXPECT_DOUBLE_EQ(up.exact_exchange, 0.25);
  EXPECT_THROW(dft::make_spin_functional("scan"), std::invalid_argument);
}

TEST(Uks, ClosedShellSingletMatchesRks) {
  const auto m = wl::h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");

  scf::KsOptions rks_opts;
  rks_opts.functional = "pbe";
  rks_opts.grid.radial_points = 30;
  rks_opts.grid.angular_points = 26;
  const auto r = scf::rks(m, basis, rks_opts);

  scf::UksOptions uks_opts;
  uks_opts.functional = "pbe";
  uks_opts.grid.radial_points = 30;
  uks_opts.grid.angular_points = 26;
  const auto u = scf::uks(m, basis, 1, uks_opts);

  ASSERT_TRUE(r.scf.converged && u.scf.converged);
  EXPECT_NEAR(u.scf.energy, r.scf.energy, 1e-6);
}

TEST(Uks, HfFunctionalMatchesUhf) {
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto u1 = scf::uhf(m, basis, 2);
  scf::UksOptions opts;
  opts.functional = "hf";
  const auto u2 = scf::uks(m, basis, 2, opts);
  ASSERT_TRUE(u1.converged && u2.scf.converged);
  EXPECT_NEAR(u2.scf.energy, u1.energy, 1e-6);
}

TEST(Uks, HydrogenAtomLsdaEnergyReasonable) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::UksOptions opts;
  opts.functional = "lda";
  opts.grid.radial_points = 50;
  const auto r = scf::uks(m, basis, 2, opts);
  ASSERT_TRUE(r.scf.converged);
  // LSDA H atom (complete basis) is about -0.479 Ha; STO-3G sits higher.
  EXPECT_NEAR(r.scf.energy, -0.45, 0.05);
  EXPECT_NEAR(r.integrated_density, 1.0, 1e-4);
}

TEST(Uks, Pbe0DoubletLithiumConverges) {
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::UksOptions opts;
  opts.functional = "pbe0";
  opts.grid.radial_points = 35;
  const auto r = scf::uks(m, basis, 2, opts);
  ASSERT_TRUE(r.scf.converged);
  EXPECT_LT(r.exact_exchange_energy, 0.0);
  EXPECT_LT(r.xc_energy, 0.0);
  // Near the UHF value but with correlation pulling it below.
  const auto u = scf::uhf(m, basis, 2);
  EXPECT_LT(r.scf.energy, u.energy);
}

TEST(Uks, SpinDensityPositiveAtRadicalSite) {
  // Li doublet: alpha excess resides on the atom. PBE0 is used — pure
  // LSDA on this atom limit-cycles between degenerate 2p directions, a
  // known minimal-basis pathology the hybrid lifts.
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::UksOptions opts;
  opts.functional = "pbe0";
  opts.grid.radial_points = 35;
  const auto r = scf::uks(m, basis, 2, opts);
  ASSERT_TRUE(r.scf.converged);
  const auto spin = r.scf.spin_density();
  EXPECT_GT(mthfx::linalg::trace(spin), 0.0);
}

TEST(Uhf, LevelShiftPreservesFixedPoint) {
  // A level shift must not move the converged solution.
  const auto m = wl::h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::UhfOptions plain;
  scf::UhfOptions shifted;
  shifted.level_shift = 0.5;
  const auto r1 = scf::uhf(m, basis, 1, plain);
  const auto r2 = scf::uhf(m, basis, 1, shifted);
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_NEAR(r1.energy, r2.energy, 1e-7);
}
