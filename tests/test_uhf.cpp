#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "ints/one_electron.hpp"
#include "scf/rhf.hpp"
#include "scf/uhf.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace scf = mthfx::scf;
namespace wl = mthfx::workload;

TEST(Uhf, HydrogenAtomMatchesPublishedSto3g) {
  // H atom UHF/STO-3G: E = -0.46658 Ha (= RHF of one electron in the
  // contracted 1s: <1s|h|1s> with the STO-3G expansion).
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::uhf(m, basis, 2);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, -0.466582, 1e-5);
  EXPECT_NEAR(r.s_squared, 0.75, 1e-10);  // pure doublet
}

TEST(Uhf, ClosedShellReducesToRhf) {
  const auto m = wl::h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto u = scf::uhf(m, basis, 1);
  const auto r = scf::rhf(m, basis);
  ASSERT_TRUE(u.converged && r.converged);
  EXPECT_NEAR(u.energy, r.energy, 1e-7);
  EXPECT_NEAR(u.s_squared, 0.0, 1e-8);
}

TEST(Uhf, RejectsInconsistentMultiplicity) {
  const auto m = wl::h2();  // 2 electrons
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  EXPECT_THROW(scf::uhf(m, basis, 2), std::invalid_argument);  // S=1/2 w/ 2e
  EXPECT_THROW(scf::uhf(m, basis, 0), std::invalid_argument);
  EXPECT_THROW(scf::uhf(m, basis, 5), std::invalid_argument);
}

TEST(Uhf, StretchedH2BreaksSymmetryTowardAtomLimit) {
  // At R = 6 a0, spin-broken UHF lands near 2 E(H) = -0.93316 Ha while
  // spin-restricted solutions sit far above.
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 6.0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");

  scf::UhfOptions broken;
  broken.break_symmetry = true;
  const auto ub = scf::uhf(m, basis, 1, broken);
  ASSERT_TRUE(ub.converged);
  // Two neutral H atoms: the +1/R nuclear term is screened by the
  // electron-nuclear attraction, so E -> 2 E(H) = -0.93316.
  EXPECT_NEAR(ub.energy, 2.0 * -0.466582, 5e-3);
  // Strong spin contamination signals the broken-symmetry solution.
  EXPECT_GT(ub.s_squared, 0.5);

  const auto r = scf::rhf(m, basis);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.energy, ub.energy + 0.05);
}

TEST(Uhf, TripletH2HasTwoAlphaElectrons) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 2.0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::uhf(m, basis, 3);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.s_squared, 2.0, 0.05);  // S=1: S(S+1)=2
  // Triplet sigma_u^* occupation is repulsive: higher than singlet at
  // this distance.
  const auto s = scf::uhf(m, basis, 1);
  EXPECT_GT(r.energy, s.energy);
}

TEST(Uhf, LithiumAtomDoublet) {
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::uhf(m, basis, 2);
  ASSERT_TRUE(r.converged);
  // Li/STO-3G ROHF is about -7.3155 Ha; UHF within a few mHa.
  EXPECT_NEAR(r.energy, -7.3155, 5e-3);
  EXPECT_NEAR(r.s_squared, 0.75, 1e-3);
}

TEST(Uhf, NeutralLithiumSuperoxideDoubletConverges) {
  // The real open-shell species of the Li/air mechanism.
  auto m = wl::lithium_superoxide_anion();
  m.set_charge(0);  // neutral LiO2: 19 electrons, doublet
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::UhfOptions opts;
  opts.max_iterations = 300;
  const auto r = scf::uhf(m, basis, 2, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.energy, -150.0);
  EXPECT_GT(r.s_squared, 0.74);  // at least the pure-doublet value
}

TEST(Uhf, SpinDensityIntegratesToUnpairedCount) {
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::uhf(m, basis, 2);
  ASSERT_TRUE(r.converged);
  const auto s = mthfx::ints::overlap(basis);
  // tr(P_spin S) = N_a - N_b = 1.
  EXPECT_NEAR(mthfx::linalg::trace_product(r.spin_density(), s), 1.0, 1e-8);
  // tr(P_total S) = N_elec = 3.
  EXPECT_NEAR(mthfx::linalg::trace_product(r.total_density(), s), 3.0, 1e-8);
}
