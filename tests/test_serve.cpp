// Service suite (ctest label: serve): line-protocol codec, the
// multi-tenant TCP server end-to-end (hello/submit/status/result/
// cancel/stats/drain), quota rejection with the pinned reason format,
// weighted fair-share ratios under saturation, rude disconnects,
// concurrent clients, graceful SIGTERM drain, and the headline drill —
// SIGKILL a live server mid-campaign, restart it with resume, and
// demand that reconnecting clients get every result, ≥1 of them served
// straight from the journal, all bit-identical to a direct
// run_structured() of the same input.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/driver.hpp"
#include "engine/journal.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "workload/geometries.hpp"

namespace app = mthfx::app;
namespace chem = mthfx::chem;
namespace engine = mthfx::engine;
namespace obs = mthfx::obs;
namespace serve = mthfx::serve;
namespace wl = mthfx::workload;

namespace {

std::string make_temp_dir() {
  std::string tmpl = "/tmp/mthfx_serve_XXXXXX";
  char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "/tmp";
}

/// H2 at 1.4 + jitter bohr. The jitter (default 0) makes inputs unique
/// under the content-addressed cache — execution-policy fields like
/// fault seeds are excluded from the fingerprint, geometry is not.
app::Input h2_input(double jitter_bohr = 0.0) {
  app::Input input;
  input.method = "hf";
  input.basis = "sto-3g";
  input.eps_schwarz = 1e-8;
  input.num_threads = 1;
  chem::Molecule mol;
  mol.add_atom(1, {0.0, 0.0, 0.0});
  mol.add_atom(1, {0.0, 0.0, 1.4 + jitter_bohr});
  input.molecule = mol;
  return input;
}

/// Straggler variant: every HFX task sleeps, so one job holds a worker
/// for an observable window.
app::Input slow_h2_input(double jitter_bohr, double stall_seconds) {
  app::Input input = h2_input(jitter_bohr);
  input.fault.slow_rate = 1.0;
  input.fault.slow_factor = 1.0;
  input.fault.stall_seconds = stall_seconds;
  return input;
}

std::uint64_t energy_bits(double energy) {
  return std::bit_cast<std::uint64_t>(energy);
}

const obs::Json& member(const obs::Json& j, const char* key) {
  const obs::Json* m = j.find(key);
  EXPECT_NE(m, nullptr) << "missing member '" << key << "' in " << j.dump();
  static const obs::Json null_json;
  return m ? *m : null_json;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t count_committed(const std::string& journal_text) {
  std::size_t count = 0, pos = 0;
  const std::string needle = "\"type\":\"committed\"";
  while ((pos = journal_text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

serve::ServeOptions quick_options() {
  serve::ServeOptions options;
  options.engine.concurrency = 2;
  options.engine.queue_capacity = 32;
  options.engine.total_threads = 2;  // per-job cap 1: deterministic bits
  return options;
}

}  // namespace

// ------------------------------------------------------------- protocol

TEST(Protocol, RejectsMalformedFrames) {
  EXPECT_THROW(serve::parse_request("not json"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("[1,2,3]"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"no_op\":1}"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"op\":\"fly\"}"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"op\":\"hello\"}"),
               std::runtime_error);  // missing tenant
  EXPECT_THROW(serve::parse_request("{\"op\":\"hello\",\"tenant\":\"\"}"),
               std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"op\":\"submit\"}"),
               std::runtime_error);  // neither input nor text
  EXPECT_THROW(
      serve::parse_request(
          "{\"op\":\"submit\",\"text\":\"x\",\"input\":{}}"),
      std::runtime_error);  // both
  EXPECT_THROW(serve::parse_request("{\"op\":\"submit\",\"text\":\"bad "
                                    "keyword zap\"}"),
               std::runtime_error);  // unparseable input text
  EXPECT_THROW(serve::parse_request("{\"op\":\"status\"}"),
               std::runtime_error);  // missing id
  EXPECT_THROW(serve::parse_request("{\"op\":\"status\",\"id\":0}"),
               std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"op\":\"result\",\"id\":-3}"),
               std::runtime_error);
}

TEST(Protocol, ParsesSubmitFromTextAndJson) {
  const serve::Request text = serve::parse_request(
      "{\"op\":\"submit\",\"name\":\"t\",\"priority\":3,"
      "\"text\":\"method hf\\nbasis sto-3g\\ngeometry bohr\\n"
      "H 0 0 0\\nH 0 0 1.4\\nend\"}");
  EXPECT_EQ(text.op, serve::Op::kSubmit);
  EXPECT_EQ(text.name, "t");
  EXPECT_EQ(text.priority, 3);
  EXPECT_EQ(text.input.molecule.size(), 2u);

  obs::Json req = obs::Json::object();
  req["op"] = "submit";
  req["input"] = engine::input_to_json(h2_input());
  const serve::Request json = serve::parse_request(req.dump());
  EXPECT_EQ(json.input.method, "hf");
  EXPECT_EQ(json.input.molecule.size(), 2u);
}

TEST(Protocol, ResponsesAndFrames) {
  obs::Json ok = serve::ok_response(serve::Op::kSubmit);
  EXPECT_TRUE(member(ok, "ok").as_bool());
  EXPECT_EQ(member(ok, "op").as_string(), "submit");
  obs::Json err = serve::error_response("nope");
  EXPECT_FALSE(member(err, "ok").as_bool());
  EXPECT_EQ(member(err, "error").as_string(), "nope");
  const std::string frame = serve::encode_frame(ok);
  EXPECT_EQ(frame.back(), '\n');
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);  // one line exactly
}

// ---------------------------------------------------------- end to end

TEST(Serve, SubmitResultBitIdenticalToDirectRun) {
  serve::Server server(quick_options());
  server.start();
  ASSERT_GT(server.port(), 0);

  serve::Client client("127.0.0.1", server.port());
  obs::Json hello = client.hello("acme");
  ASSERT_TRUE(member(hello, "ok").as_bool());

  const app::Input input = h2_input();
  obs::Json submitted = client.submit("h2", input);
  ASSERT_TRUE(member(submitted, "ok").as_bool()) << submitted.dump();
  const auto id = static_cast<std::uint64_t>(member(submitted, "id").as_int());
  EXPECT_GT(id, 0u);

  obs::Json result = client.result(id, 30.0);
  ASSERT_TRUE(member(result, "ok").as_bool()) << result.dump();
  EXPECT_EQ(member(result, "state").as_string(), "done");
  const obs::Json& record = member(result, "record");
  EXPECT_EQ(member(record, "tenant").as_string(), "acme");

  // The served energy must be bit-identical to running the record's own
  // input directly through the driver.
  const app::Input as_executed =
      engine::input_from_json(member(record, "input"));
  const app::StructuredResult direct = app::run_structured(as_executed);
  const double served =
      member(member(record, "result"), "energy").as_double();
  EXPECT_EQ(energy_bits(served), energy_bits(direct.energy));

  // A duplicate submission is served from the cache.
  obs::Json dup = client.submit("h2-again", input);
  ASSERT_TRUE(member(dup, "ok").as_bool());
  const auto dup_id = static_cast<std::uint64_t>(member(dup, "id").as_int());
  obs::Json dup_result = client.result(dup_id, 30.0);
  ASSERT_TRUE(member(dup_result, "ok").as_bool());
  EXPECT_TRUE(member(member(dup_result, "record"), "cache_hit").as_bool());
  const double dup_energy =
      member(member(member(dup_result, "record"), "result"), "energy")
          .as_double();
  EXPECT_EQ(energy_bits(dup_energy), energy_bits(served));

  obs::Json status = client.status(id);
  EXPECT_EQ(member(status, "state").as_string(), "done");
  obs::Json stats = client.stats();
  ASSERT_TRUE(member(stats, "ok").as_bool());
  const obs::Json& acme =
      member(member(member(stats, "stats"), "tenants"), "acme");
  EXPECT_EQ(member(acme, "submitted").as_int(), 2);
  EXPECT_EQ(member(acme, "completed").as_int(), 2);

  server.stop();
}

TEST(Serve, RequiresHelloBeforeWork) {
  serve::Server server(quick_options());
  server.start();
  serve::Client client("127.0.0.1", server.port());
  obs::Json denied = client.submit("h2", h2_input());
  EXPECT_FALSE(member(denied, "ok").as_bool());
  EXPECT_NE(member(denied, "error").as_string().find("hello required"),
            std::string::npos);
  // stats is allowed pre-hello (monitoring doesn't need a tenant).
  EXPECT_TRUE(member(client.stats(), "ok").as_bool());
  server.stop();
}

TEST(Serve, MalformedFrameGetsErrorAndConnectionSurvives) {
  serve::Server server(quick_options());
  server.start();
  serve::Client client("127.0.0.1", server.port());
  obs::Json garbage = client.request(obs::Json("this is not a request"));
  EXPECT_FALSE(member(garbage, "ok").as_bool());
  // Same connection keeps working afterwards.
  EXPECT_TRUE(member(client.hello("acme"), "ok").as_bool());
  EXPECT_TRUE(member(client.stats(), "ok").as_bool());
  server.stop();
}

TEST(Serve, UnknownJobIdsAreErrors) {
  serve::Server server(quick_options());
  server.start();
  serve::Client client("127.0.0.1", server.port());
  client.hello("acme");
  EXPECT_FALSE(member(client.status(424242), "ok").as_bool());
  EXPECT_FALSE(member(client.result(424242, 0.5), "ok").as_bool());
  EXPECT_FALSE(member(client.cancel(424242), "ok").as_bool());
  server.stop();
}

// --------------------------------------------------- quotas and cancel

TEST(Serve, QuotaRejectReasonFormatIsPinned) {
  serve::ServeOptions options = quick_options();
  options.engine.concurrency = 1;
  options.engine.total_threads = 1;
  serve::TenantConfig acme;
  acme.id = "acme";
  acme.options.weight = 1.0;
  acme.options.max_queued = 2;
  acme.options.max_in_flight = 1;
  options.tenants.push_back(acme);
  serve::Server server(options);
  server.start();
  serve::Client client("127.0.0.1", server.port());
  client.hello("acme");

  // Job 1 occupies the single in-flight slot (held by a straggler); 2
  // and 3 fill the backlog; 4 must bounce with the structured reason.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    obs::Json r =
        client.submit("q" + std::to_string(i), slow_h2_input(i * 1e-9, 0.05));
    ASSERT_TRUE(member(r, "ok").as_bool()) << r.dump();
    ids.push_back(static_cast<std::uint64_t>(member(r, "id").as_int()));
  }
  obs::Json rejected = client.submit("q3", h2_input());
  ASSERT_FALSE(member(rejected, "ok").as_bool());
  EXPECT_EQ(member(rejected, "error").as_string(),
            "tenant quota: 'acme' queued 2/2 (in-flight 1/1)");

  // Canceling a pending job frees backlog; the canceled record is
  // terminal and visible through result.
  obs::Json canceled = client.cancel(ids[2], "changed my mind");
  ASSERT_TRUE(member(canceled, "ok").as_bool()) << canceled.dump();
  obs::Json r2 = client.result(ids[2], 10.0);
  ASSERT_TRUE(member(r2, "ok").as_bool());
  EXPECT_EQ(member(r2, "state").as_string(), "canceled");

  // The in-flight straggler is beyond cancellation.
  obs::Json too_late = client.cancel(ids[0]);
  EXPECT_FALSE(member(too_late, "ok").as_bool());
  EXPECT_NE(member(too_late, "error").as_string().find("already admitted"),
            std::string::npos);

  for (std::uint64_t id : {ids[0], ids[1]})
    EXPECT_TRUE(member(client.result(id, 60.0), "ok").as_bool());
  server.stop();
}

TEST(Serve, MidJobDisconnectDoesNotLoseTheJob) {
  serve::Server server(quick_options());
  server.start();
  std::uint64_t id = 0;
  {
    serve::Client client("127.0.0.1", server.port());
    client.hello("acme");
    obs::Json r = client.submit("goner", slow_h2_input(0.0, 0.02));
    ASSERT_TRUE(member(r, "ok").as_bool());
    id = static_cast<std::uint64_t>(member(r, "id").as_int());
    // Rude disconnect mid-run: no drain, no goodbye.
    client.close();
  }
  serve::Client again("127.0.0.1", server.port());
  again.hello("acme");
  obs::Json result = again.result(id, 60.0);
  ASSERT_TRUE(member(result, "ok").as_bool()) << result.dump();
  EXPECT_EQ(member(result, "state").as_string(), "done");
  server.stop();
}

// ------------------------------------------------------- fair sharing

TEST(Serve, WeightedFairShareRatioUnderSaturation) {
  serve::ServeOptions options = quick_options();
  options.engine.concurrency = 2;
  options.engine.total_threads = 2;
  options.engine.queue_capacity = 2;  // small core: DRR decides admission
  options.engine.cache = false;       // every job really runs
  serve::TenantConfig heavy, light;
  heavy.id = "heavy";
  heavy.options.weight = 2.0;
  heavy.options.max_queued = 256;
  light.id = "light";
  light.options.weight = 1.0;
  light.options.max_queued = 256;
  options.tenants = {heavy, light};
  serve::Server server(options);
  server.start();

  // Saturate: both tenants pre-load far more work than the core queue
  // admits, so every admission is a DRR decision.
  constexpr int kJobs = 45;
  serve::Client heavy_client("127.0.0.1", server.port());
  serve::Client light_client("127.0.0.1", server.port());
  heavy_client.hello("heavy");
  light_client.hello("light");
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(member(heavy_client.submit(
                           "h" + std::to_string(i),
                           slow_h2_input(i * 1e-9, 0.004)),
                       "ok")
                    .as_bool());
    ASSERT_TRUE(member(light_client.submit(
                           "l" + std::to_string(i),
                           slow_h2_input(1e-3 + i * 1e-9, 0.004)),
                       "ok")
                    .as_bool());
  }

  // Sample mid-saturation: once ~2/3 of the total work completed, the
  // 2:1 weights must show in per-tenant completions (within 20%).
  auto completed = [&](const obs::Json& stats, const char* tenant) {
    return member(member(member(member(stats, "stats"), "tenants"), tenant),
                  "completed")
        .as_int();
  };
  obs::Json sample;
  std::int64_t heavy_done = 0, light_done = 0;
  for (int poll = 0; poll < 2000; ++poll) {
    sample = heavy_client.stats();
    heavy_done = completed(sample, "heavy");
    light_done = completed(sample, "light");
    if (heavy_done + light_done >= kJobs) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(heavy_done + light_done, kJobs) << sample.dump();
  ASSERT_GT(light_done, 0);
  const double ratio =
      static_cast<double>(heavy_done) / static_cast<double>(light_done);
  EXPECT_GT(ratio, 2.0 * 0.8) << "heavy " << heavy_done << " light "
                              << light_done;
  EXPECT_LT(ratio, 2.0 * 1.2) << "heavy " << heavy_done << " light "
                              << light_done;

  const std::vector<engine::JobRecord> records = server.stop();
  std::size_t done = 0;
  for (const auto& r : records)
    if (r.state == engine::JobState::kDone) ++done;
  EXPECT_EQ(done, static_cast<std::size_t>(2 * kJobs));
}

TEST(Serve, ConcurrentClientsRaceCleanly) {
  serve::ServeOptions options = quick_options();
  options.engine.queue_capacity = 8;
  serve::Server server(options);
  server.start();
  constexpr int kThreads = 4, kPerThread = 8;
  std::atomic<int> ok_results{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      serve::Client client("127.0.0.1", server.port());
      client.hello(c % 2 == 0 ? "even" : "odd");
      std::vector<std::uint64_t> ids;
      for (int i = 0; i < kPerThread; ++i) {
        obs::Json r = client.submit(
            "c" + std::to_string(c) + "." + std::to_string(i),
            h2_input((c * kPerThread + i) * 1e-9));
        if (member(r, "ok").as_bool())
          ids.push_back(static_cast<std::uint64_t>(member(r, "id").as_int()));
      }
      for (std::uint64_t id : ids) {
        obs::Json r = client.result(id, 120.0);
        if (member(r, "ok").as_bool() &&
            member(r, "state").as_string() == "done")
          ok_results.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_results.load(), kThreads * kPerThread);
  server.stop();
}

// ----------------------------------------------------- drain and crash

TEST(Serve, DrainOpFinishesWorkAndJournalsCleanShutdown) {
  const std::string dir = make_temp_dir();
  const std::string journal = dir + "/serve.wal";
  serve::ServeOptions options = quick_options();
  options.engine.journal_path = journal;
  serve::Server server(options);
  server.start();
  serve::Client client("127.0.0.1", server.port());
  client.hello("acme");
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    obs::Json r =
        client.submit("d" + std::to_string(i), h2_input(i * 1e-9));
    ASSERT_TRUE(member(r, "ok").as_bool());
    ids.push_back(static_cast<std::uint64_t>(member(r, "id").as_int()));
  }
  obs::Json drained = client.drain("maintenance window");
  ASSERT_TRUE(member(drained, "ok").as_bool()) << drained.dump();
  EXPECT_TRUE(server.stop_requested());
  // Post-drain submissions bounce.
  obs::Json late = client.submit("late", h2_input());
  EXPECT_FALSE(member(late, "ok").as_bool());

  const std::vector<engine::JobRecord> records = server.stop();
  std::size_t done = 0;
  for (const auto& r : records)
    if (r.state == engine::JobState::kDone) ++done;
  EXPECT_EQ(done, ids.size());

  const engine::JournalReplay replay = engine::Journal::replay(journal);
  EXPECT_TRUE(replay.clean_shutdown);
  EXPECT_EQ(replay.shutdown_reason, "maintenance window");
  for (std::uint64_t id : ids) {
    const engine::ReplayedJob* job = replay.find(id);
    ASSERT_NE(job, nullptr);
    EXPECT_TRUE(job->committed);
  }
}

namespace {

volatile std::sig_atomic_t g_child_term = 0;
void child_term_handler(int) { g_child_term = 1; }

/// Fork a server process. The child reports its bound port through a
/// pipe, installs a SIGTERM handler (the same poll-the-flag pattern the
/// mthfx_serve binary uses), then parks until a drain request or the
/// signal stops it; exit code 0 unless a job actually failed. Forked
/// before the parent makes any threads, as in test_durability's crash
/// drills.
pid_t fork_server(const serve::ServeOptions& options, int* port_out) {
  int fds[2];
  EXPECT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    {
      std::signal(SIGTERM, child_term_handler);
      serve::Server server(options);
      server.start();
      const std::string port = std::to_string(server.port()) + "\n";
      (void)!::write(fds[1], port.data(), port.size());
      ::close(fds[1]);
      while (g_child_term == 0 && !server.stop_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      server.request_stop(g_child_term != 0 ? "sigterm" : "drain");
      const std::vector<engine::JobRecord> records = server.stop();
      for (const auto& r : records)
        if (r.state == engine::JobState::kFailed) _exit(1);
    }
    _exit(0);
  }
  ::close(fds[1]);
  std::string text;
  char c;
  while (::read(fds[0], &c, 1) == 1 && c != '\n') text.push_back(c);
  ::close(fds[0]);
  *port_out = std::atoi(text.c_str());
  return pid;
}

}  // namespace

TEST(ServeCrash, SigtermDrainsGracefully) {
  const std::string dir = make_temp_dir();
  serve::ServeOptions options = quick_options();
  options.engine.journal_path = dir + "/serve.wal";

  int port = 0;
  const pid_t pid = fork_server(options, &port);
  ASSERT_GT(port, 0);

  std::uint64_t id = 0;
  {
    serve::Client client("127.0.0.1", port);
    client.hello("acme");
    obs::Json r = client.submit("graceful", slow_h2_input(0.0, 0.01));
    ASSERT_TRUE(member(r, "ok").as_bool());
    id = static_cast<std::uint64_t>(member(r, "id").as_int());
    // Real SIGTERM while the job may still be running: the server must
    // finish it, journal a clean shutdown, and exit 0.
    ASSERT_EQ(kill(pid, SIGTERM), 0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const engine::JournalReplay replay =
      engine::Journal::replay(options.engine.journal_path);
  EXPECT_TRUE(replay.clean_shutdown);
  EXPECT_EQ(replay.shutdown_reason, "sigterm");
  const engine::ReplayedJob* job = replay.find(id);
  ASSERT_NE(job, nullptr);
  EXPECT_TRUE(job->committed);
}

TEST(ServeCrash, SigkillThenResumeServesEveryClient) {
  const std::string dir = make_temp_dir();
  serve::ServeOptions options = quick_options();
  options.engine.concurrency = 1;
  options.engine.total_threads = 1;
  options.engine.cache = false;  // force real work: kill lands mid-run
  options.engine.journal_path = dir + "/serve.wal";
  options.engine.checkpoint_dir = dir;

  int port = 0;
  const pid_t gen1 = fork_server(options, &port);
  ASSERT_GT(port, 0);

  // A quick job that commits, then stragglers that won't all finish
  // before the kill.
  std::vector<std::uint64_t> ids;
  {
    serve::Client client("127.0.0.1", port);
    client.hello("acme");
    obs::Json quick = client.submit("quick", h2_input());
    ASSERT_TRUE(member(quick, "ok").as_bool());
    ids.push_back(static_cast<std::uint64_t>(member(quick, "id").as_int()));
    for (int i = 0; i < 4; ++i) {
      obs::Json r = client.submit("straggler" + std::to_string(i),
                                  slow_h2_input((i + 1) * 1e-9, 0.05));
      ASSERT_TRUE(member(r, "ok").as_bool());
      ids.push_back(static_cast<std::uint64_t>(member(r, "id").as_int()));
    }
    // Wait for at least one committed record, then pull the plug.
    for (int poll = 0; poll < 2000; ++poll) {
      if (count_committed(read_file(options.engine.journal_path)) >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_GE(count_committed(read_file(options.engine.journal_path)), 1u);
  ASSERT_EQ(kill(gen1, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(gen1, &status, 0), gen1);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Generation 2: resume from the journal on a fresh port. Clients
  // reconnect and poll their original ids.
  serve::ServeOptions resumed = options;
  resumed.resume = true;
  int port2 = 0;
  const pid_t gen2 = fork_server(resumed, &port2);
  ASSERT_GT(port2, 0);
  {
    serve::Client client("127.0.0.1", port2);
    client.hello("acme");
    std::size_t replayed = 0;
    for (std::uint64_t id : ids) {
      obs::Json r = client.result(id, 120.0);
      ASSERT_TRUE(member(r, "ok").as_bool()) << r.dump();
      EXPECT_EQ(member(r, "state").as_string(), "done");
      const obs::Json& record = member(r, "record");
      if (member(record, "replayed").as_bool()) ++replayed;
      // Bit-identity: the served energy equals a direct driver run of
      // the record's own input.
      const app::Input as_executed =
          engine::input_from_json(member(record, "input"));
      const app::StructuredResult direct = app::run_structured(as_executed);
      const double served =
          member(member(record, "result"), "energy").as_double();
      EXPECT_EQ(energy_bits(served), energy_bits(direct.energy))
          << "job " << id;
    }
    EXPECT_GE(replayed, 1u) << "no job was served from the journal";
    client.drain("drill complete");
  }
  ASSERT_EQ(waitpid(gen2, &status, 0), gen2);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const engine::JournalReplay replay =
      engine::Journal::replay(options.engine.journal_path);
  EXPECT_TRUE(replay.clean_shutdown);
  for (std::uint64_t id : ids) {
    const engine::ReplayedJob* job = replay.find(id);
    ASSERT_NE(job, nullptr);
    EXPECT_TRUE(job->committed) << "job " << id;
  }
}
