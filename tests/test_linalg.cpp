#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "linalg/block_sparse.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/purify.hpp"
#include "obs/registry.hpp"

namespace la = mthfx::linalg;

namespace {

la::Matrix random_symmetric(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = dist(rng);
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

la::Matrix random_spd(std::size_t n, unsigned seed) {
  la::Matrix a = random_symmetric(n, seed);
  la::Matrix spd = la::matmul(la::transpose(a), a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

}  // namespace

TEST(Matrix, BasicArithmetic) {
  la::Matrix a(2, 2, {1, 2, 3, 4});
  la::Matrix b(2, 2, {5, 6, 7, 8});
  la::Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 6);
  EXPECT_DOUBLE_EQ(c(1, 1), 12);
  c -= a;
  EXPECT_EQ(c, b);
  c = 2.0 * a;
  EXPECT_DOUBLE_EQ(c(1, 0), 6);
}

TEST(Matrix, MatmulMatchesHandComputation) {
  la::Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  la::Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  la::Matrix c = la::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, MatmulAssociatesWithIdentity) {
  const la::Matrix a = random_symmetric(17, 3);
  const la::Matrix i = la::Matrix::identity(17);
  EXPECT_LT(la::max_abs(la::matmul(a, i) - a), 1e-14);
  EXPECT_LT(la::max_abs(la::matmul(i, a) - a), 1e-14);
}

TEST(Matrix, BlockedGemmMatchesNaiveOnLargerSizes) {
  // Exercise the kBlock tiling boundary (block size 64).
  const std::size_t m = 70, k = 65, n = 67;
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  la::Matrix a(m, k), b(k, n);
  for (double& v : a.flat()) v = dist(rng);
  for (double& v : b.flat()) v = dist(rng);
  const la::Matrix c = la::matmul(a, b);
  la::Matrix ref(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0;
      for (std::size_t p = 0; p < k; ++p) s += a(i, p) * b(p, j);
      ref(i, j) = s;
    }
  EXPECT_LT(la::max_abs(c - ref), 1e-12);
}

TEST(Matrix, TraceAndTraceProduct) {
  const la::Matrix a = random_symmetric(9, 5);
  const la::Matrix b = random_symmetric(9, 6);
  EXPECT_NEAR(la::trace_product(a, b), la::trace(la::matmul(a, b)), 1e-12);
}

TEST(Eigen, DiagonalMatrix) {
  la::Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const auto r = la::eigh(a);
  EXPECT_NEAR(r.values[0], -1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  la::Matrix a(2, 2, {2, 1, 1, 2});
  const auto r = la::eigh(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

TEST(Eigen, ReconstructsMatrix) {
  const la::Matrix a = random_symmetric(20, 42);
  const auto r = la::eigh(a);
  // A = V diag(w) V^T
  la::Matrix lam(20, 20);
  for (std::size_t i = 0; i < 20; ++i) lam(i, i) = r.values[i];
  const la::Matrix rec =
      la::matmul(la::matmul(r.vectors, lam), la::transpose(r.vectors));
  EXPECT_LT(la::max_abs(rec - a), 1e-9);
}

TEST(Eigen, VectorsAreOrthonormal) {
  const la::Matrix a = random_symmetric(15, 7);
  const auto r = la::eigh(a);
  const la::Matrix vtv = la::matmul(la::transpose(r.vectors), r.vectors);
  EXPECT_LT(la::max_abs(vtv - la::Matrix::identity(15)), 1e-10);
}

TEST(Eigen, ThrowsOnNonSquare) {
  la::Matrix a(2, 3);
  EXPECT_THROW(la::eigh(a), std::invalid_argument);
}

TEST(Eigen, InverseSqrtOrthogonalizes) {
  const la::Matrix s = random_spd(12, 9);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix xtsx = la::matmul(la::matmul(x, s), x);
  EXPECT_LT(la::max_abs(xtsx - la::Matrix::identity(12)), 1e-9);
}

TEST(Eigen, SqrtSymSquaresBack) {
  const la::Matrix s = random_spd(10, 13);
  const la::Matrix h = la::sqrt_sym(s);
  EXPECT_LT(la::max_abs(la::matmul(h, h) - s), 1e-9);
}

TEST(Cholesky, FactorizesSpd) {
  const la::Matrix a = random_spd(14, 21);
  const auto l = la::cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_LT(la::max_abs(la::matmul(*l, la::transpose(*l)) - a), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  la::Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_FALSE(la::cholesky(a).has_value());
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const la::Matrix a = random_spd(8, 2);
  la::Vector x_true(8);
  for (std::size_t i = 0; i < 8; ++i) x_true[i] = static_cast<double>(i) - 3.5;
  la::Vector b(8, 0.0);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) b[i] += a(i, j) * x_true[j];
  const auto x = la::cholesky_solve(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
}

TEST(LuSolve, SolvesIndefiniteSymmetricSystem) {
  la::Matrix a(3, 3, {0, 1, 2, 1, 0, 3, 2, 3, 0});
  la::Vector x_true{1, -2, 0.5};
  la::Vector b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) b[i] += a(i, j) * x_true[j];
  const auto x = la::lu_solve(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  la::Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_FALSE(la::lu_solve(a, {1, 1}).has_value());
}

TEST(Diis, PassthroughWithShortHistory) {
  la::Diis diis;
  la::Matrix f(2, 2, {1, 0, 0, 1});
  la::Matrix e(2, 2, {0.1, 0, 0, -0.1});
  const la::Matrix out = diis.extrapolate(f, e);
  EXPECT_EQ(out, f);
  EXPECT_NEAR(diis.last_error_norm(), 0.1, 1e-15);
}

TEST(Diis, ExactExtrapolationForLinearProblem) {
  // If errors are linear in the Focks, DIIS finds the zero-error mix.
  // e1 = +E, e2 = -E  =>  c = (1/2, 1/2) and mixed F = (F1+F2)/2.
  la::Diis diis;
  la::Matrix f1(2, 2, {1, 0, 0, 1});
  la::Matrix f2(2, 2, {3, 0, 0, 3});
  la::Matrix e1(2, 2, {0.2, 0, 0, 0.2});
  la::Matrix e2(2, 2, {-0.2, 0, 0, -0.2});
  diis.extrapolate(f1, e1);
  const la::Matrix out = diis.extrapolate(f2, e2);
  EXPECT_NEAR(out(0, 0), 2.0, 1e-10);
  EXPECT_NEAR(out(1, 1), 2.0, 1e-10);
}

TEST(Diis, HistoryIsBounded) {
  la::Diis diis(3);
  la::Matrix f(1, 1, {1.0});
  for (int i = 0; i < 10; ++i) {
    la::Matrix e(1, 1, {1.0 / (i + 1)});
    diis.extrapolate(f, e);
  }
  EXPECT_LE(diis.history_size(), 3u);
}

class SymmetrizeParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymmetrizeParam, SymmetrizeMakesSymmetric) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  la::Matrix a(GetParam(), GetParam());
  for (double& v : a.flat()) v = dist(rng);
  la::symmetrize(a);
  EXPECT_TRUE(la::is_symmetric(a));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymmetrizeParam,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Eigensolver pre-check and observability.

TEST(EighPrecheck, DiagonalMatrixUsesZeroSweeps) {
  la::Matrix a(5, 5);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) = 5.0 - static_cast<double>(i);
  const auto r = la::eigh(a);
  EXPECT_EQ(r.sweeps, 0);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(r.values[i], 1.0 + static_cast<double>(i));
}

TEST(EighPrecheck, BlockDiagonalMatchesFullSolve) {
  // Two decoupled 4x4 blocks on a 8x8 matrix: the component pre-check
  // must reproduce the fully-coupled solver's spectrum.
  la::Matrix a(8, 8);
  const la::Matrix b1 = random_symmetric(4, 11);
  const la::Matrix b2 = random_symmetric(4, 12);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = b1(i, j);
      a(4 + i, 4 + j) = b2(i, j);
    }
  const auto split = la::eigh(a);
  // Reference: solve the blocks independently and merge-sort the values.
  std::vector<double> ref;
  for (double v : la::eigh(b1).values) ref.push_back(v);
  for (double v : la::eigh(b2).values) ref.push_back(v);
  std::sort(ref.begin(), ref.end());
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(split.values[i], ref[i], 1e-10);
  // Eigenvectors must still diagonalize: A v = lambda v.
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t i = 0; i < 8; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < 8; ++j) av += a(i, j) * split.vectors(j, k);
      EXPECT_NEAR(av, split.values[k] * split.vectors(i, k), 1e-9);
    }
  }
}

TEST(EighPrecheck, SweepCounterAccumulates) {
  auto& reg = mthfx::obs::global_registry();
  const auto calls0 = reg.counter_total("linalg.eigh.calls");
  const auto sweeps0 = reg.counter_total("linalg.eigh.sweeps");
  la::eigh(random_symmetric(6, 21));
  EXPECT_EQ(reg.counter_total("linalg.eigh.calls"), calls0 + 1);
  EXPECT_GT(reg.counter_total("linalg.eigh.sweeps"), sweeps0);
  // A diagonal input records the call but zero sweeps.
  la::Matrix d(3, 3);
  d(0, 0) = 1; d(1, 1) = 2; d(2, 2) = 3;
  const auto sweeps1 = reg.counter_total("linalg.eigh.sweeps");
  la::eigh(d);
  EXPECT_EQ(reg.counter_total("linalg.eigh.sweeps"), sweeps1);
}

// ---------------------------------------------------------------------------
// Block-sparse matrices.

namespace {

la::Matrix banded_spd(std::size_t n, unsigned seed, std::size_t bandwidth) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-0.4, 0.4);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0 + 0.05 * static_cast<double>(i % 7);
    for (std::size_t j = i + 1; j < std::min(n, i + bandwidth); ++j) {
      const double v = dist(rng) / static_cast<double>(j - i);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

}  // namespace

TEST(BlockSparse, RoundTripAndNnz) {
  const la::Matrix a = banded_spd(20, 3, 4);
  const auto part = la::BlockPartition::uniform(20, 5);
  const auto blk = la::BlockSparseMatrix::from_dense(a, part, 0.0);
  const la::Matrix back = blk.to_dense();
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 20; ++j)
      EXPECT_DOUBLE_EQ(back(i, j), a(i, j));
  EXPECT_GT(blk.nnz_fraction(), 0.0);
  EXPECT_LT(blk.nnz_fraction(), 1.0);  // far-off-diagonal blocks absent
}

TEST(BlockSparse, MultiplyMatchesDense) {
  const la::Matrix a = banded_spd(18, 5, 5);
  const la::Matrix b = banded_spd(18, 6, 3);
  const auto part = la::BlockPartition::uniform(18, 4);
  const auto ab = la::multiply(la::BlockSparseMatrix::from_dense(a, part, 0.0),
                               la::BlockSparseMatrix::from_dense(b, part, 0.0),
                               0.0)
                      .to_dense();
  const la::Matrix ref = la::matmul(a, b);
  for (std::size_t i = 0; i < 18; ++i)
    for (std::size_t j = 0; j < 18; ++j)
      EXPECT_NEAR(ab(i, j), ref(i, j), 1e-12);
}

// ---------------------------------------------------------------------------
// Purification (eigensolver bypass).

TEST(Purify, NewtonSchulzMatchesEighInverseSqrt) {
  const std::size_t n = 24;
  const la::Matrix s = banded_spd(n, 9, 4);
  const auto part = la::BlockPartition::uniform(n, 6);
  const auto ns =
      la::inverse_sqrt_ns(la::BlockSparseMatrix::from_dense(s, part, 0.0), 0.0);
  ASSERT_TRUE(ns.converged);
  // X S X = I is the defining property.
  const la::Matrix x = ns.inverse_sqrt.to_dense();
  const la::Matrix xsx = la::matmul(la::matmul(x, s), x);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(xsx(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Purify, Tc2MatchesEighProjector) {
  const std::size_t n = 16, nocc = 5;
  const la::Matrix f = random_symmetric(n, 33);
  const auto part = la::BlockPartition::uniform(n, 4);
  la::PurifyStats stats;
  const la::Matrix p =
      la::tc2_density(la::BlockSparseMatrix::from_dense(f, part, 0.0), nocc,
                      0.0, &stats)
          .to_dense();
  ASSERT_TRUE(stats.converged);
  // Reference projector from the eigensolver.
  const auto e = la::eigh(f);
  la::Matrix ref(n, n);
  for (std::size_t k = 0; k < nocc; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ref(i, j) += e.vectors(i, k) * e.vectors(j, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(p(i, j), ref(i, j), 1e-8);
  EXPECT_LT(stats.trace_error, 1e-9);
  EXPECT_LT(stats.idempotency_error, 1e-8);
}
