// Resilience subsystem tests: fault-spec parsing, injector determinism,
// scheduler retry with exactly-once commit, FockBuilder output
// validation, the SCF recovery ladder, and checkpoint/restart.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <random>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "fault/atomic_file.hpp"
#include "fault/cancel.hpp"
#include "fault/checkpoint.hpp"
#include "fault/injector.hpp"
#include "hfx/fock_builder.hpp"
#include "hfx/schedulers.hpp"
#include "md/forces.hpp"
#include "md/integrator.hpp"
#include "obs/registry.hpp"
#include "scf/recovery.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"

namespace chem = mthfx::chem;
namespace fault = mthfx::fault;
namespace hfx = mthfx::hfx;
namespace la = mthfx::linalg;
namespace md = mthfx::md;
namespace obs = mthfx::obs;
namespace scf = mthfx::scf;

namespace {

chem::Molecule water() {
  return chem::Molecule::from_xyz(
      "3\nwater\nO 0.000000 0.000000 0.117300\n"
      "H 0.000000 0.757200 -0.469200\n"
      "H 0.000000 -0.757200 -0.469200\n");
}

la::Matrix random_density(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-0.5, 0.5);
  la::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = dist(rng);
      p(i, j) = v;
      p(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;
  return p;
}

constexpr auto kAllSchedules = {
    hfx::HfxSchedule::kDynamicBag, hfx::HfxSchedule::kStaticBlock,
    hfx::HfxSchedule::kStaticCyclic, hfx::HfxSchedule::kWorkStealing};

}  // namespace

TEST(FaultSpec, ParsesFullGrammar) {
  const auto o = fault::parse_fault_spec(
      "fail=0.01,corrupt=0.005,stall=0.001,stall_ms=2,seed=42,retries=4");
  EXPECT_DOUBLE_EQ(o.fail_rate, 0.01);
  EXPECT_DOUBLE_EQ(o.corrupt_rate, 0.005);
  EXPECT_DOUBLE_EQ(o.stall_rate, 0.001);
  EXPECT_DOUBLE_EQ(o.stall_seconds, 2e-3);
  EXPECT_EQ(o.seed, 42u);
  EXPECT_EQ(o.max_retries, 4u);
  EXPECT_TRUE(o.enabled());
}

TEST(FaultSpec, EmptySpecDisablesInjection) {
  const auto o = fault::parse_fault_spec("");
  EXPECT_FALSE(o.enabled());
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(fault::parse_fault_spec("bogus=1"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("fail"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("fail=abc"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("fail=1.5"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("fail=0.8,corrupt=0.8"),
               std::invalid_argument);
}

TEST(Injector, DecisionIsDeterministicAndPure) {
  fault::FaultOptions o;
  o.fail_rate = 0.1;
  o.corrupt_rate = 0.1;
  o.seed = 77;
  fault::Injector a(o), b(o);
  for (std::uint64_t site = 0; site < 2000; ++site)
    for (std::uint32_t attempt = 0; attempt < 3; ++attempt)
      ASSERT_EQ(a.decide(site, attempt), b.decide(site, attempt));
}

TEST(Injector, RetriesDrawIndependently) {
  // A site that fails on attempt 0 must not be doomed on every retry.
  fault::FaultOptions o;
  o.fail_rate = 0.25;
  fault::Injector inj(o);
  int failed_then_recovered = 0;
  for (std::uint64_t site = 0; site < 4000; ++site)
    if (inj.decide(site, 0) == fault::FaultKind::kFail &&
        inj.decide(site, 1) == fault::FaultKind::kNone)
      ++failed_then_recovered;
  EXPECT_GT(failed_then_recovered, 100);
}

TEST(Injector, RatesMatchFrequencies) {
  fault::FaultOptions o;
  o.fail_rate = 0.2;
  fault::Injector inj(o);
  int failures = 0;
  for (std::uint64_t site = 0; site < 10000; ++site)
    if (inj.decide(site, 0) == fault::FaultKind::kFail) ++failures;
  EXPECT_GT(failures, 1500);
  EXPECT_LT(failures, 2500);
}

TEST(Injector, ApplyThrowsOnFailAndCountsStats) {
  fault::FaultOptions o;
  o.fail_rate = 1.0;
  fault::Injector inj(o);
  try {
    inj.apply(123, 7);
    FAIL() << "expected InjectedFault";
  } catch (const fault::InjectedFault& e) {
    EXPECT_EQ(e.site, 123u);
    EXPECT_EQ(e.attempt, 7u);
  }
  EXPECT_EQ(inj.failures(), 1u);
  EXPECT_EQ(inj.injected(), 1u);
}

TEST(Injector, ValidateRejectsBadRates) {
  fault::FaultOptions o;
  o.fail_rate = -0.1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.fail_rate = 0.6;
  o.corrupt_rate = 0.6;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

class RetrySchedules : public ::testing::TestWithParam<hfx::HfxSchedule> {};

// Tasks that fail on their first attempt must be retried and commit
// exactly once; the retry counter must match the injected failures.
TEST_P(RetrySchedules, FailedTasksRetryAndCommitExactlyOnce) {
  constexpr std::size_t ntasks = 1000, nthreads = 4;
  std::vector<std::atomic<int>> commits(ntasks);
  std::vector<std::atomic<int>> attempts(ntasks);
  obs::Registry registry(nthreads);
  hfx::RetryOptions retry;
  retry.max_retries = 3;
  std::size_t expected_retries = 0;
  for (std::size_t i = 0; i < ntasks; i += 7) ++expected_retries;

  hfx::execute_tasks(
      ntasks, nthreads, GetParam(),
      [&](std::size_t i, std::size_t) {
        const int attempt = attempts[i].fetch_add(1);
        if (i % 7 == 0 && attempt == 0)
          throw std::runtime_error("injected first-attempt failure");
        commits[i].fetch_add(1, std::memory_order_relaxed);
      },
      &registry, retry);

  for (std::size_t i = 0; i < ntasks; ++i)
    ASSERT_EQ(commits[i].load(), 1) << "task " << i;
  EXPECT_EQ(registry.counter_total("sched.tasks_executed"), ntasks);
  EXPECT_EQ(registry.counter_total("fault.retries"), expected_retries);
  EXPECT_EQ(registry.counter_total("fault.permanent_failures"), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, RetrySchedules,
                         ::testing::ValuesIn(kAllSchedules));

class ExhaustedRetrySchedules
    : public ::testing::TestWithParam<hfx::HfxSchedule> {};

// A task that fails on every attempt exhausts its retry budget, raises
// a structured TaskFailure, and never commits; the rest of the bag still
// completes exactly once.
TEST_P(ExhaustedRetrySchedules, PermanentFailureRaisesTaskFailure) {
  constexpr std::size_t ntasks = 200, nthreads = 3, bad = 42;
  std::vector<std::atomic<int>> commits(ntasks);
  obs::Registry registry(nthreads);
  hfx::RetryOptions retry;
  retry.max_retries = 2;

  try {
    hfx::execute_tasks(
        ntasks, nthreads, GetParam(),
        [&](std::size_t i, std::size_t) {
          if (i == bad) throw std::runtime_error("always fails");
          commits[i].fetch_add(1, std::memory_order_relaxed);
        },
        &registry, retry);
    FAIL() << "expected TaskFailure";
  } catch (const hfx::TaskFailure& e) {
    ASSERT_EQ(e.failures.size(), 1u);
    EXPECT_EQ(e.failures[0].task, bad);
    EXPECT_EQ(e.failures[0].attempts, retry.max_retries + 1);
    EXPECT_NE(e.failures[0].error.find("always fails"), std::string::npos);
  }

  for (std::size_t i = 0; i < ntasks; ++i)
    ASSERT_EQ(commits[i].load(), i == bad ? 0 : 1) << "task " << i;
  EXPECT_EQ(registry.counter_total("sched.tasks_executed"), ntasks - 1);
  EXPECT_EQ(registry.counter_total("fault.retries"), retry.max_retries);
  EXPECT_EQ(registry.counter_total("fault.permanent_failures"), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ExhaustedRetrySchedules,
                         ::testing::ValuesIn(kAllSchedules));

TEST(Schedulers, WorkStealingCountersStayConsistentUnderRetries) {
  constexpr std::size_t ntasks = 2000, nthreads = 4;
  std::vector<std::atomic<int>> attempts(ntasks);
  obs::Registry registry(nthreads);
  hfx::RetryOptions retry;
  retry.max_retries = 4;
  hfx::execute_tasks(
      ntasks, nthreads, hfx::HfxSchedule::kWorkStealing,
      [&](std::size_t i, std::size_t) {
        if (i % 11 == 0 && attempts[i].fetch_add(1) < 2)
          throw std::runtime_error("fails twice");
      },
      &registry, retry);
  EXPECT_EQ(registry.counter_total("sched.tasks_executed"), ntasks);
  EXPECT_GE(registry.counter_total("ws.steals_attempted"),
            registry.counter_total("ws.steals_successful"));
}

// The acceptance invariant: with seeded fail + corrupt faults and the
// transactional/validating build, the exchange matrix matches a clean
// run and the stats record the injections and retries.
TEST(FockBuilder, FaultInjectedExchangeMatchesCleanRun) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto p = random_density(basis.num_functions(), 11);

  hfx::HfxOptions clean_opts;
  clean_opts.eps_schwarz = 1e-12;
  hfx::FockBuilder clean(basis, clean_opts);
  const auto ref = clean.exchange(p);

  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-12;
  opts.fault.fail_rate = 0.10;
  opts.fault.corrupt_rate = 0.05;
  opts.fault.seed = 2024;
  opts.fault.max_retries = 8;
  opts.validate_tasks = true;
  hfx::FockBuilder faulty(basis, opts);
  const auto r = faulty.exchange(p);

  EXPECT_GT(r.stats.fault.injected, 0u);
  EXPECT_GT(r.stats.fault.retries, 0u);
  EXPECT_EQ(r.stats.fault.permanent_failures, 0u);
  const auto n = basis.num_functions();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_NEAR(r.k(i, j), ref.k(i, j), 1e-10);
}

TEST(FockBuilder, CorruptionWithoutValidationPoisonsOutput) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto p = random_density(basis.num_functions(), 3);
  hfx::HfxOptions opts;
  opts.fault.corrupt_rate = 1.0;
  opts.validate_tasks = false;  // no transactional commit: NaN flows out
  hfx::FockBuilder builder(basis, opts);
  const auto r = builder.exchange(p);
  EXPECT_TRUE(std::isnan(r.k(0, 0)));
  EXPECT_GT(r.stats.fault.injected_corruptions, 0u);
}

TEST(RecoveryLadder, EscalatesOnSustainedOscillation) {
  scf::RecoveryOptions o;
  o.min_iterations = 2;
  o.patience = 2;
  o.oscillation_flips = 3;
  scf::RecoveryLadder ladder(o);
  double sign = 1.0;
  scf::RecoveryStage first = scf::RecoveryStage::kNone;
  for (std::size_t it = 0; it < 12; ++it) {
    sign = -sign;
    const auto s = ladder.observe(it, -1.0, sign * 0.5, 0.1);
    if (s != scf::RecoveryStage::kNone &&
        first == scf::RecoveryStage::kNone) {
      first = s;
      EXPECT_TRUE(ladder.consume_diis_reset());
      EXPECT_FALSE(ladder.consume_diis_reset());  // one-shot
    }
  }
  // Sustained oscillation escalates stage by stage, kDiisReset first.
  EXPECT_EQ(first, scf::RecoveryStage::kDiisReset);
  ASSERT_FALSE(ladder.events().empty());
  EXPECT_EQ(ladder.events().front().stage, scf::RecoveryStage::kDiisReset);
  EXPECT_GT(ladder.stage(), scf::RecoveryStage::kDiisReset);
}

TEST(RecoveryLadder, NonFiniteEscalatesImmediatelyThenExhausts) {
  scf::RecoveryLadder ladder;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ladder.observe(0, nan, nan, 0.1), scf::RecoveryStage::kDiisReset);
  EXPECT_EQ(ladder.observe(1, nan, nan, 0.1), scf::RecoveryStage::kDamping);
  EXPECT_EQ(ladder.observe(2, nan, nan, 0.1),
            scf::RecoveryStage::kLevelShift);
  EXPECT_FALSE(ladder.exhausted());
  EXPECT_EQ(ladder.observe(3, nan, nan, 0.1), scf::RecoveryStage::kNone);
  EXPECT_TRUE(ladder.exhausted());
  EXPECT_TRUE(ladder.saw_non_finite());
  EXPECT_EQ(ladder.events().size(), 3u);
}

TEST(RecoveryLadder, DiisBlowUpTriggersEscalation) {
  scf::RecoveryOptions o;
  o.min_iterations = 1;
  o.diis_growth = 10.0;
  scf::RecoveryLadder ladder(o);
  EXPECT_EQ(ladder.observe(0, -1.0, -1.0, 1e-4), scf::RecoveryStage::kNone);
  EXPECT_EQ(ladder.observe(1, -1.0, -1e-3, 1e-4), scf::RecoveryStage::kNone);
  EXPECT_EQ(ladder.observe(2, -1.0, -1e-3, 1e-2),
            scf::RecoveryStage::kDiisReset);
}

TEST(RecoveryLadder, DisabledLadderNeverEscalates) {
  scf::RecoveryOptions o;
  o.enabled = false;
  scf::RecoveryLadder ladder(o);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t it = 0; it < 8; ++it)
    EXPECT_EQ(ladder.observe(it, nan, nan, 0.1), scf::RecoveryStage::kNone);
  EXPECT_TRUE(ladder.events().empty());
}

// Poisoned J/K builds (corruption with no task validation) make whole
// SCF iterations go NaN; the ladder must absorb them — restoring the
// last good density and escalating — and the solve must still converge
// to the clean answer.
TEST(ScfRecovery, LadderRescuesPoisonedIterations) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");

  scf::ScfOptions clean;
  const auto ref = scf::rhf(m, basis, clean);
  ASSERT_TRUE(ref.converged);

  scf::ScfOptions opts;
  opts.hfx.fault.corrupt_rate = 0.002;
  opts.hfx.fault.seed = 1;  // poisons one early build, then stays clean
  opts.hfx.fault.max_retries = 0;  // retries can't fix silent corruption
  opts.hfx.validate_tasks = false;
  opts.max_iterations = 200;
  const auto r = scf::rhf(m, basis, opts);

  EXPECT_FALSE(r.diagnostics.finite);  // at least one iterate went NaN
  EXPECT_FALSE(r.diagnostics.recovery_events.empty());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, ref.energy, 1e-8);
}

TEST(Checkpoint, ScfRoundTripsThroughJsonText) {
  fault::ScfCheckpoint ckpt;
  ckpt.method = "rhf";
  ckpt.iteration = 7;
  ckpt.energy = -74.96316840724327;
  ckpt.density = random_density(5, 1);
  ckpt.density_prev = random_density(5, 2);
  ckpt.j = random_density(5, 3);
  ckpt.k = random_density(5, 4);
  ckpt.diis_focks = {random_density(5, 5), random_density(5, 6)};
  ckpt.diis_errors = {random_density(5, 7), random_density(5, 8)};

  const std::string text = to_json(ckpt).dump(2);
  const auto back =
      fault::scf_checkpoint_from_json(obs::Json::parse(text));
  EXPECT_EQ(back, ckpt);  // bit-exact, including every double
}

TEST(Checkpoint, MdRoundTripsThroughJsonText) {
  fault::MdCheckpoint ckpt;
  ckpt.frame_index = 12;
  ckpt.time_fs = 6.0000000000000009;
  ckpt.geometry = water();
  ckpt.velocities = {{1e-5, -2e-5, 3.3e-6},
                     {0.0, 1.7e-4, -9e-7},
                     {-1e-8, 0.0, 2e-4}};
  ckpt.initial_total_energy = -74.12345678901234;

  const std::string text = to_json(ckpt).dump();
  const auto back = fault::md_checkpoint_from_json(obs::Json::parse(text));
  EXPECT_EQ(back, ckpt);
}

TEST(Checkpoint, RejectsWrongKindAndSchema) {
  const auto md_json = to_json(fault::MdCheckpoint{});
  EXPECT_THROW(fault::scf_checkpoint_from_json(md_json),
               std::invalid_argument);
  obs::Json truncated = obs::Json::object();
  EXPECT_THROW(fault::md_checkpoint_from_json(truncated),
               std::invalid_argument);
}

TEST(Checkpoint, SaveAndLoadThroughFile) {
  fault::MdCheckpoint ckpt;
  ckpt.frame_index = 3;
  ckpt.geometry = water();
  ckpt.velocities.assign(3, {0, 0, 0});
  const std::string path = ::testing::TempDir() + "/mthfx_md.ckpt";
  fault::save_checkpoint(path, ckpt);
  const auto j = fault::load_checkpoint_json(path);
  EXPECT_EQ(fault::checkpoint_kind(j), "md");
  EXPECT_EQ(fault::md_checkpoint_from_json(j), ckpt);
  EXPECT_THROW(fault::load_checkpoint_json("/nonexistent/nope.ckpt"),
               std::runtime_error);
}

// Interrupt an RHF solve mid-flight and resume from the checkpoint: in
// deterministic mode (single thread) the resumed run must land on the
// uninterrupted energy bit-for-bit.
TEST(Checkpoint, RhfResumeReproducesUninterruptedRunExactly) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");

  scf::ScfOptions opts;
  opts.hfx.num_threads = 1;
  const auto full = scf::rhf(m, basis, opts);
  ASSERT_TRUE(full.converged);

  // "Crash" after 3 iterations, keeping the latest checkpoint.
  std::shared_ptr<fault::ScfCheckpoint> saved;
  scf::ScfOptions first;
  first.hfx.num_threads = 1;
  first.max_iterations = 3;
  first.checkpoint_sink = [&](const fault::ScfCheckpoint& c) {
    saved = std::make_shared<fault::ScfCheckpoint>(c);
  };
  const auto partial = scf::rhf(m, basis, first);
  ASSERT_FALSE(partial.converged);
  ASSERT_TRUE(saved);
  EXPECT_EQ(saved->iteration, 3u);
  EXPECT_EQ(saved->method, "rhf");

  // Round-trip the checkpoint through its JSON serialization, as a real
  // restart would.
  const auto restored = std::make_shared<fault::ScfCheckpoint>(
      fault::scf_checkpoint_from_json(obs::Json::parse(to_json(*saved).dump())));

  scf::ScfOptions second;
  second.hfx.num_threads = 1;
  second.resume = restored;
  const auto resumed = scf::rhf(m, basis, second);
  ASSERT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.energy, full.energy);  // bitwise
  EXPECT_EQ(resumed.iterations, full.iterations);
}

TEST(Checkpoint, RhfRejectsWrongMethodCheckpoint) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  auto ckpt = std::make_shared<fault::ScfCheckpoint>();
  ckpt->method = "uhf";
  scf::ScfOptions opts;
  opts.resume = ckpt;
  EXPECT_THROW(scf::rhf(m, basis, opts), std::invalid_argument);
}

TEST(Checkpoint, RksResumeReproducesUninterruptedRunExactly) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");

  scf::KsOptions opts;
  opts.functional = "pbe0";
  opts.scf.hfx.num_threads = 1;
  opts.grid.radial_points = 20;
  opts.grid.angular_points = 26;
  const auto full = scf::rks(m, basis, opts);
  ASSERT_TRUE(full.scf.converged);

  std::shared_ptr<fault::ScfCheckpoint> saved;
  auto first = opts;
  first.scf.max_iterations = 3;
  first.scf.checkpoint_sink = [&](const fault::ScfCheckpoint& c) {
    saved = std::make_shared<fault::ScfCheckpoint>(c);
  };
  ASSERT_FALSE(scf::rks(m, basis, first).scf.converged);
  ASSERT_TRUE(saved);

  auto second = opts;
  second.scf.resume = std::make_shared<fault::ScfCheckpoint>(
      fault::scf_checkpoint_from_json(obs::Json::parse(to_json(*saved).dump())));
  const auto resumed = scf::rks(m, basis, second);
  ASSERT_TRUE(resumed.scf.converged);
  EXPECT_EQ(resumed.scf.energy, full.scf.energy);
}

// MD restart: stop a harmonic-diatomic trajectory at step 5, resume to
// step 20, and require the final state to match the uninterrupted
// trajectory exactly (the integrator is deterministic).
TEST(Checkpoint, MdResumeReproducesTrajectoryExactly) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  chem::Molecule m;
  m.add_atom(18, {0, 0, 0});
  m.add_atom(18, {0, 0, 2.3});

  md::MdOptions opts;
  opts.timestep_fs = 0.5;
  opts.num_steps = 20;
  const auto full = md::run_bomd(m, pot, opts);
  ASSERT_EQ(full.frames.size(), 21u);

  std::shared_ptr<fault::MdCheckpoint> saved;
  md::MdOptions first = opts;
  first.num_steps = 5;
  first.checkpoint_sink = [&](const fault::MdCheckpoint& c) {
    saved = std::make_shared<fault::MdCheckpoint>(c);
  };
  const auto partial = md::run_bomd(m, pot, first);
  ASSERT_TRUE(saved);
  EXPECT_EQ(saved->frame_index, 5u);

  md::MdOptions second = opts;  // num_steps = 20: total trajectory length
  second.resume = std::make_shared<fault::MdCheckpoint>(
      fault::md_checkpoint_from_json(obs::Json::parse(to_json(*saved).dump())));
  const auto resumed = md::run_bomd(m, pot, second);

  // Resumed run covers steps [5, 20]: 16 frames including the restart.
  ASSERT_EQ(resumed.frames.size(), 16u);
  EXPECT_EQ(resumed.frames.front().time_fs, full.frames[5].time_fs);
  EXPECT_EQ(resumed.frames.back().total, full.frames.back().total);
  EXPECT_EQ(resumed.final_geometry, full.final_geometry);
  ASSERT_EQ(resumed.final_velocities.size(), full.final_velocities.size());
  for (std::size_t i = 0; i < full.final_velocities.size(); ++i)
    EXPECT_EQ(resumed.final_velocities[i], full.final_velocities[i]);
}

TEST(Checkpoint, MdRejectsMismatchedAtomCount) {
  md::HarmonicBondPotential pot({{0, 1, 0.5, 2.0}});
  chem::Molecule m;
  m.add_atom(18, {0, 0, 0});
  m.add_atom(18, {0, 0, 2.3});
  auto ckpt = std::make_shared<fault::MdCheckpoint>();
  ckpt->geometry.add_atom(18, {0, 0, 0});  // one atom, system has two
  ckpt->velocities.assign(1, {0, 0, 0});
  md::MdOptions opts;
  opts.resume = ckpt;
  EXPECT_THROW(md::run_bomd(m, pot, opts), std::invalid_argument);
}

// End-to-end acceptance: a fault-injected RHF run (fail + corrupt, fixed
// seed) converges to the clean energy within 1e-10 Ha.
TEST(ScfFault, FaultInjectedRhfMatchesCleanEnergy) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");

  scf::ScfOptions clean;
  const auto ref = scf::rhf(m, basis, clean);
  ASSERT_TRUE(ref.converged);

  scf::ScfOptions opts;
  opts.hfx.fault.fail_rate = 0.05;
  opts.hfx.fault.corrupt_rate = 0.02;
  opts.hfx.fault.seed = 99;
  opts.hfx.fault.max_retries = 8;
  opts.hfx.validate_tasks = true;
  const auto r = scf::rhf(m, basis, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, ref.energy, 1e-10);
}

TEST(ScfFault, FaultInjectedPbe0MatchesCleanEnergy) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");

  scf::KsOptions clean;
  clean.functional = "pbe0";
  clean.grid.radial_points = 20;
  clean.grid.angular_points = 26;
  const auto ref = scf::rks(m, basis, clean);
  ASSERT_TRUE(ref.scf.converged);

  auto opts = clean;
  opts.scf.hfx.fault.fail_rate = 0.05;
  opts.scf.hfx.fault.corrupt_rate = 0.02;
  opts.scf.hfx.fault.seed = 99;
  opts.scf.hfx.fault.max_retries = 8;
  opts.scf.hfx.validate_tasks = true;
  const auto r = scf::rks(m, basis, opts);
  ASSERT_TRUE(r.scf.converged);
  EXPECT_NEAR(r.scf.energy, ref.scf.energy, 1e-10);
}

// ---------------------------------------------------------------------
// New fault kinds (hang/slow), cooperative cancellation, and the
// atomic-write primitive the checkpoint/journal/store layers share.

TEST(FaultSpec, ParsesHangAndSlowKeys) {
  const auto o = fault::parse_fault_spec(
      "hang=0.25,hang_ms=200,slow=0.1,slow_factor=20,stall_ms=2");
  EXPECT_DOUBLE_EQ(o.hang_rate, 0.25);
  EXPECT_DOUBLE_EQ(o.hang_seconds, 0.2);
  EXPECT_DOUBLE_EQ(o.slow_rate, 0.1);
  EXPECT_DOUBLE_EQ(o.slow_factor, 20.0);
  EXPECT_DOUBLE_EQ(o.stall_seconds, 2e-3);
  EXPECT_TRUE(o.enabled());
}

TEST(FaultSpec, RejectsRateSumAboveOneWithHangAndSlow) {
  EXPECT_THROW(fault::parse_fault_spec("hang=0.6,slow=0.6"),
               std::invalid_argument);
}

TEST(Injector, HangAndSlowDecideAndCount) {
  fault::FaultOptions o;
  o.hang_rate = 1.0;
  o.hang_seconds = 1e-4;  // keep the injected sleeps negligible
  {
    fault::Injector inj(o);
    EXPECT_EQ(inj.decide(5, 0), fault::FaultKind::kHang);
    EXPECT_FALSE(inj.apply(5, 0));  // sleeps, never throws, no poison
    EXPECT_EQ(inj.hangs(), 1u);
    EXPECT_EQ(inj.injected(), 1u);
  }
  fault::FaultOptions s;
  s.slow_rate = 1.0;
  s.stall_seconds = 1e-5;
  s.slow_factor = 2.0;
  fault::Injector inj(s);
  EXPECT_EQ(inj.decide(5, 0), fault::FaultKind::kSlow);
  EXPECT_FALSE(inj.apply(5, 0));
  EXPECT_EQ(inj.slowdowns(), 1u);
}

TEST(CancelToken, FirstReasonWinsAndCheckThrows) {
  fault::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.check();  // unarmed: no throw
  token.cancel("deadline");
  token.cancel("second caller");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "deadline");
  try {
    token.check();
    FAIL() << "expected Cancelled";
  } catch (const fault::Cancelled& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(ScfFault, CancelTokenStopsScfAtIterationBoundary) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::ScfOptions opts;
  auto token = std::make_shared<fault::CancelToken>();
  token->cancel("unit test");
  opts.cancel = token;
  EXPECT_THROW(scf::rhf(m, basis, opts), fault::Cancelled);
}

TEST(AtomicFile, WriteIsAllOrNothing) {
  std::string tmpl = "/tmp/mthfx_atomic_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl.data()), nullptr);
  const std::string path = tmpl + "/state.json";
  fault::atomic_write_file(path, "first");
  fault::atomic_write_file(path, "second");
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "second");
  // No temporary litter left beside the target.
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(tmpl),
                          std::filesystem::directory_iterator{}),
            1);
}

TEST(AtomicFile, FailureLeavesOriginalUntouched) {
  std::string tmpl = "/tmp/mthfx_atomic_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl.data()), nullptr);
  const std::string path = tmpl + "/state.json";
  fault::atomic_write_file(path, "keep me");
  // Writing into a missing directory must throw and not touch `path`.
  EXPECT_THROW(
      fault::atomic_write_file(tmpl + "/no_such_dir/state.json", "x"),
      std::runtime_error);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "keep me");
}
