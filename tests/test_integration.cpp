// Cross-module integration tests: the full pipeline from workload
// geometry through basis construction, SCF, HFX statistics, and machine
// simulation — the paths the examples and benches exercise.

#include <gtest/gtest.h>

#include <cmath>

#include "bgq/simulator.hpp"
#include "chem/basis.hpp"
#include "hfx/fock_builder.hpp"
#include "ints/one_electron.hpp"
#include "linalg/eigen.hpp"
#include "scf/guess.hpp"
#include "scf/rhf.hpp"
#include "workload/geometries.hpp"
#include "workload/replicate.hpp"

namespace chem = mthfx::chem;
namespace hfx = mthfx::hfx;
namespace la = mthfx::linalg;
namespace scf = mthfx::scf;
namespace bgq = mthfx::bgq;
namespace wl = mthfx::workload;

TEST(Integration, ConvergedRhfDensityIsIdempotent) {
  // Closed-shell SCF density obeys P S P = 2 P.
  const auto mol = wl::water();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto r = scf::rhf(mol, basis);
  ASSERT_TRUE(r.converged);
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix psp =
      la::matmul(la::matmul(r.density, s), r.density);
  EXPECT_LT(la::max_abs(psp - 2.0 * r.density), 1e-5);
}

TEST(Integration, VirialRatioNearTwo) {
  // At (near-)equilibrium, -V/T ~ 2 for RHF.
  const auto mol = wl::water();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto r = scf::rhf(mol, basis);
  ASSERT_TRUE(r.converged);
  const la::Matrix t = mthfx::ints::kinetic(basis);
  const double kinetic = la::trace_product(r.density, t);
  const double potential = r.energy - kinetic;
  EXPECT_NEAR(-potential / kinetic, 2.0, 0.1);
}

TEST(Integration, RhfEnergyIndependentOfScheduler) {
  const auto mol = wl::water();
  const auto basis = chem::BasisSet::build(mol, "6-31g");
  double reference = 0.0;
  for (auto sched :
       {hfx::HfxSchedule::kDynamicBag, hfx::HfxSchedule::kStaticBlock,
        hfx::HfxSchedule::kWorkStealing}) {
    scf::ScfOptions opts;
    opts.hfx.schedule = sched;
    opts.hfx.num_threads = 3;
    const auto r = scf::rhf(mol, basis, opts);
    ASSERT_TRUE(r.converged);
    if (reference == 0.0)
      reference = r.energy;
    else
      EXPECT_NEAR(r.energy, reference, 1e-8);
  }
}

TEST(Integration, ScreeningStatsAreConserved) {
  const auto cluster = wl::cluster_of(wl::water(), 4, 8.0);
  const auto basis = chem::BasisSet::build(cluster, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix p = scf::core_guess_density(basis, cluster, x);

  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-7;
  const auto r = hfx::FockBuilder(basis, opts).exchange(p);
  const auto& sc = r.stats.screening;
  EXPECT_EQ(sc.quartets_considered,
            sc.quartets_computed + sc.quartets_schwarz_screened +
                sc.quartets_density_screened);
  // Considered = all canonical pair-quartets of the pruned pair list.
  const std::size_t np = r.stats.num_pairs;
  EXPECT_EQ(sc.quartets_considered, np * (np + 1) / 2);
}

TEST(Integration, ExchangeEnergyNegativeForPhysicalDensity) {
  const auto mol = wl::dmso();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix p = scf::core_guess_density(basis, mol, x);
  const auto r = hfx::FockBuilder(basis).coulomb_exchange(p);
  EXPECT_GT(la::trace_product(p, r.j), 0.0);   // Coulomb repulsive
  EXPECT_GT(la::trace_product(p, r.k), 0.0);   // K contraction positive
}

TEST(Integration, MeasuredTaskCostsFeedSimulator) {
  // The full quickstart path: host measurement -> distribution ->
  // machine projection, with sane outputs end to end.
  const auto mol = wl::water();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix p = scf::core_guess_density(basis, mol, x);

  hfx::HfxOptions opts;
  opts.record_task_costs = true;
  const auto r = hfx::FockBuilder(basis, opts).exchange(p);
  ASSERT_FALSE(r.stats.task_costs.empty());

  const auto dist =
      bgq::EmpiricalCostDistribution::from_records(r.stats.task_costs);
  EXPECT_GT(dist.mean(), 0.0);

  bgq::SimWorkload w;
  w.num_tasks = 5'000'000;
  w.reduction_bytes = 8 * 1000 * 1000;
  const auto sim = bgq::simulate_step(bgq::machine_for_racks(4), w, dist);
  EXPECT_GT(sim.makespan_seconds, 0.0);
  EXPECT_GE(sim.imbalance, 1.0);
  EXPECT_EQ(sim.threads, 4 * 1024 * 64);
}

TEST(Integration, ChargedSpeciesScfConverges) {
  // The Li/air workloads include anions; they must be SCF-stable.
  for (const char* name : {"oh-", "lio2-"}) {
    const auto mol = wl::by_name(name);
    const auto basis = chem::BasisSet::build(mol, "sto-3g");
    scf::ScfOptions opts;
    opts.max_iterations = 200;
    const auto r = scf::rhf(mol, basis, opts);
    EXPECT_TRUE(r.converged) << name;
    EXPECT_LT(r.energy, 0.0) << name;
  }
}

TEST(Integration, ClusterEnergyIsSizeExtensiveForSeparatedCopies) {
  // Two water molecules 20 bohr apart: E(dimer) ~ 2 E(monomer).
  const auto unit = wl::water();
  const auto dimer = wl::cluster_of(unit, 2, 20.0);
  const auto b1 = chem::BasisSet::build(unit, "sto-3g");
  const auto b2 = chem::BasisSet::build(dimer, "sto-3g");
  const auto r1 = scf::rhf(unit, b1);
  const auto r2 = scf::rhf(dimer, b2);
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_NEAR(r2.energy, 2.0 * r1.energy, 2e-4);
}

TEST(Integration, TaskGranularityDoesNotChangeExchange) {
  const auto mol = wl::propylene_carbonate();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix p = scf::core_guess_density(basis, mol, x);

  hfx::HfxOptions coarse;
  coarse.target_task_cost = 1e12;
  hfx::HfxOptions fine;
  fine.target_task_cost = 100.0;
  const auto kc = hfx::FockBuilder(basis, coarse).exchange(p);
  const auto kf = hfx::FockBuilder(basis, fine).exchange(p);
  EXPECT_LT(la::max_abs(kc.k - kf.k), 1e-12);
  EXPECT_GT(kf.stats.num_tasks, kc.stats.num_tasks);
}
