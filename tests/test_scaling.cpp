// Sparsity-aware near-linear SCF pipeline: distance-culled pair lists
// vs the dense sweep, blocked J/K vs the dense builder, the
// purification-based sparse_rhf vs the eigensolver path, and the
// screened XC basis cache. Registered under the compound
// "tier1-scaling" label (see tests/CMakeLists.txt for the regex-label
// convention): part of the PR gate and of `ctest -L scaling`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "chem/basis.hpp"
#include "dft/functionals.hpp"
#include "dft/grid.hpp"
#include "dft/xc_integrator.hpp"
#include "hfx/cell_list.hpp"
#include "hfx/fock_builder.hpp"
#include "hfx/shell_pairs.hpp"
#include "ints/schwarz.hpp"
#include "linalg/matrix.hpp"
#include "scf/rhf.hpp"
#include "scf/sparse_scf.hpp"
#include "workload/geometries.hpp"
#include "workload/replicate.hpp"

namespace chem = mthfx::chem;
namespace dft = mthfx::dft;
namespace hfx = mthfx::hfx;
namespace ints = mthfx::ints;
namespace la = mthfx::linalg;
namespace scf = mthfx::scf;
namespace wl = mthfx::workload;

namespace {

std::vector<hfx::ShellPair> sorted_by_index(
    const std::vector<hfx::ShellPair>& in) {
  std::vector<hfx::ShellPair> out = in;
  std::sort(out.begin(), out.end(),
            [](const hfx::ShellPair& a, const hfx::ShellPair& b) {
              return std::tuple(a.sa, a.sb) < std::tuple(b.sa, b.sb);
            });
  return out;
}

la::Matrix random_density_like(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-0.3, 0.3);
  la::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    p(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = dist(rng);
      p(i, j) = v;
      p(j, i) = v;
    }
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pair formation: the culled cell-list build must reproduce the dense
// O(ns²) sweep pair-for-pair (both drop exactly the beyond-extent-range
// pairs; in-range pairs pass through the same eps rule).

TEST(PairCulling, CulledListMatchesDenseOnSpreadBox) {
  const auto box = wl::box_of(wl::propylene_carbonate(), 4, 1.205, 3);
  const auto basis = chem::BasisSet::build(box, "sto-3g");
  const double eps = 1e-10;

  const hfx::ShellPairList dense(basis, ints::schwarz_bounds(basis), eps);
  hfx::PairCullStats st;
  const hfx::ShellPairList culled = hfx::ShellPairList::culled(basis, eps, &st);

  ASSERT_EQ(culled.size(), dense.size());
  EXPECT_DOUBLE_EQ(culled.max_q(), dense.max_q());
  const auto a = sorted_by_index(dense.pairs());
  const auto b = sorted_by_index(culled.pairs());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sa, b[i].sa);
    EXPECT_EQ(a[i].sb, b[i].sb);
    EXPECT_DOUBLE_EQ(a[i].q, b[i].q);  // exact same bound, same kernel
  }
  // The cell list must have proposed strictly fewer candidates than the
  // dense sweep touches on a spread box.
  EXPECT_LT(st.candidates, basis.num_shells() * (basis.num_shells() + 1) / 2);
  EXPECT_EQ(culled.unscreened_count(),
            basis.num_shells() * (basis.num_shells() + 1) / 2);
}

TEST(PairCulling, FlooredPairsAreDroppedByBothBuilds) {
  // Two PC molecules ~60 bohr apart: every cross pair underflows.
  auto far = wl::propylene_carbonate();
  auto other = wl::propylene_carbonate();
  other.translate({60.0, 0.0, 0.0});
  far.append(other);
  const auto basis = chem::BasisSet::build(far, "sto-3g");

  const hfx::ShellPairList dense(basis, ints::schwarz_bounds(basis), 1e-10);
  const hfx::ShellPairList culled = hfx::ShellPairList::culled(basis, 1e-10);
  ASSERT_EQ(dense.size(), culled.size());
  // No surviving pair may straddle the two far-apart copies.
  const std::size_t ns_half = basis.num_shells() / 2;
  for (const auto& p : dense.pairs())
    EXPECT_EQ(p.sa < ns_half, p.sb < ns_half)
        << "cross pair survived: " << p.sa << "," << p.sb << " q=" << p.q;
}

// ---------------------------------------------------------------------------
// Blocked J/K against the dense builder on the same pair list.

TEST(BlockedBuild, JkMatchesDenseBuilder) {
  const auto box = wl::box_of(wl::propylene_carbonate(), 2, 1.205, 1);
  const auto basis = chem::BasisSet::build(box, "sto-3g");

  hfx::HfxOptions dense_opts;
  dense_opts.num_threads = 1;
  const hfx::FockBuilder dense(basis, dense_opts);

  hfx::HfxOptions blocked_opts;
  blocked_opts.num_threads = 1;
  blocked_opts.sparsity.mode = hfx::SparsityMode::kBlocked;
  const hfx::FockBuilder blocked(basis, blocked_opts);
  EXPECT_TRUE(blocked.culled());

  const la::Matrix p = random_density_like(basis.num_functions(), 7);
  const auto part = scf::shell_aligned_partition(basis, 48);
  const auto p_blk = la::BlockSparseMatrix::from_dense(p, part, 1e-12);

  const auto ref = dense.coulomb_exchange(p);
  const auto got = blocked.coulomb_exchange_blocked(p_blk);

  double jdiff = 0.0, kdiff = 0.0;
  for (std::size_t i = 0; i < p.rows(); ++i)
    for (std::size_t j = 0; j < p.cols(); ++j) {
      jdiff = std::max(jdiff, std::abs(ref.j(i, j) - got.j(i, j)));
      kdiff = std::max(kdiff, std::abs(ref.k(i, j) - got.k(i, j)));
    }
  // Same pair list, same digestion order, single thread: the blocked
  // build replays the dense loop exactly.
  EXPECT_LT(jdiff, 1e-13);
  EXPECT_LT(kdiff, 1e-13);
  EXPECT_EQ(ref.stats.screening.quartets_computed,
            got.stats.screening.quartets_computed);
}

// ---------------------------------------------------------------------------
// Full sparse SCF against the dense eigensolver path.

TEST(SparseScf, MatchesDenseEnergyOnWaterBox) {
  const auto box = wl::box_of(wl::water(), 4, 1.0, 2);
  const auto basis = chem::BasisSet::build(box, "sto-3g");

  scf::ScfOptions dense_opts;
  dense_opts.hfx.num_threads = 1;
  dense_opts.hfx.sparsity.mode = hfx::SparsityMode::kDense;
  const auto ref = scf::rhf(box, basis, dense_opts);
  ASSERT_TRUE(ref.converged);

  scf::ScfOptions blocked_opts;
  blocked_opts.hfx.num_threads = 1;
  blocked_opts.hfx.sparsity.mode = hfx::SparsityMode::kBlocked;
  scf::SparseScfInfo info;
  const auto got = scf::sparse_rhf(box, basis, blocked_opts, &info);
  ASSERT_TRUE(got.converged);

  EXPECT_NEAR(got.energy, ref.energy, 1e-8);
  EXPECT_EQ(info.nbf, basis.num_functions());
  EXPECT_GT(info.num_pairs, 0u);
  EXPECT_GT(info.ns_iterations, 0);
  EXPECT_GT(info.last_tc2_iterations, 0);
  EXPECT_GT(info.density_nnz, 0.0);
  EXPECT_LE(info.density_nnz, 1.0);
}

TEST(SparseScf, MatchesDenseEnergyOnCompactMolecule) {
  // Compact system: no floored pairs, both paths see identical quartets.
  const auto pc = wl::propylene_carbonate();
  const auto basis = chem::BasisSet::build(pc, "sto-3g");

  scf::ScfOptions dense_opts;
  dense_opts.hfx.num_threads = 1;
  const auto ref = scf::rhf(pc, basis, dense_opts);
  ASSERT_TRUE(ref.converged);

  scf::ScfOptions blocked_opts;
  blocked_opts.hfx.num_threads = 1;
  blocked_opts.hfx.sparsity.mode = hfx::SparsityMode::kBlocked;
  const auto got = scf::sparse_rhf(pc, basis, blocked_opts);
  ASSERT_TRUE(got.converged);
  EXPECT_NEAR(got.energy, ref.energy, 1e-8);
}

TEST(SparseScf, RhfRoutesThroughSparsityMode) {
  // scf::rhf itself must dispatch to the sparse path when the options
  // say blocked — same energy, no orbital data on the sparse result.
  const auto box = wl::box_of(wl::water(), 2, 1.0, 4);
  const auto basis = chem::BasisSet::build(box, "sto-3g");
  scf::ScfOptions opts;
  opts.hfx.num_threads = 1;
  opts.hfx.sparsity.mode = hfx::SparsityMode::kBlocked;
  const auto routed = scf::rhf(box, basis, opts);
  opts.hfx.sparsity.mode = hfx::SparsityMode::kDense;
  const auto dense = scf::rhf(box, basis, opts);
  ASSERT_TRUE(routed.converged);
  ASSERT_TRUE(dense.converged);
  EXPECT_NEAR(routed.energy, dense.energy, 1e-8);
  EXPECT_TRUE(routed.coefficients.empty());
}

TEST(SparsityOptions, AutoThresholdRouting) {
  hfx::SparsityOptions s;
  EXPECT_FALSE(s.blocked(s.auto_nbf_threshold));
  EXPECT_TRUE(s.blocked(s.auto_nbf_threshold + 1));
  s.mode = hfx::SparsityMode::kDense;
  EXPECT_FALSE(s.blocked(1u << 20));
  s.mode = hfx::SparsityMode::kBlocked;
  EXPECT_TRUE(s.blocked(1));
}

// ---------------------------------------------------------------------------
// Screened XC basis evaluation.

TEST(XcScreening, ScreenedIntegratorMatchesDense) {
  const auto box = wl::box_of(wl::water(), 2, 1.0, 9);
  const auto basis = chem::BasisSet::build(box, "sto-3g");
  dft::GridOptions gopts;
  gopts.radial_points = 20;
  gopts.angular_points = 26;
  const dft::MolecularGrid grid(box, gopts);

  const dft::XcIntegrator dense(basis, grid, /*screen_basis=*/false);
  const dft::XcIntegrator screened(basis, grid, /*screen_basis=*/true);
  EXPECT_DOUBLE_EQ(dense.cached_fraction(), 1.0);
  EXPECT_LE(screened.cached_fraction(), 1.0);

  const la::Matrix p = random_density_like(basis.num_functions(), 13);
  const auto functional = dft::make_functional("pbe");
  const auto a = dense.integrate(functional, p);
  const auto b = screened.integrate(functional, p);
  EXPECT_NEAR(a.energy, b.energy, 1e-10);
  EXPECT_NEAR(a.integrated_density, b.integrated_density, 1e-10);
  double vdiff = 0.0;
  for (std::size_t i = 0; i < p.rows(); ++i)
    for (std::size_t j = 0; j < p.cols(); ++j)
      vdiff = std::max(vdiff, std::abs(a.v(i, j) - b.v(i, j)));
  EXPECT_LT(vdiff, 1e-10);
}
