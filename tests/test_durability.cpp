// Durability suite (ctest label: durability): write-ahead journal
// round-trips and tolerant replay, disk-backed ResultStore persistence /
// corruption-as-miss / LRU eviction, seeded backoff determinism, deadline
// watchdog cancellation, load shedding, and the headline crash test —
// SIGKILL a campaign mid-run, resume it, and demand bit-identical physics
// with zero duplicated SCF work.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/journal.hpp"
#include "engine/queue.hpp"
#include "engine/report.hpp"
#include "engine/result_store.hpp"
#include "engine/scheduler.hpp"
#include "fault/atomic_file.hpp"
#include "obs/json.hpp"
#include "workload/geometries.hpp"
#include "workload/replicate.hpp"

namespace app = mthfx::app;
namespace engine = mthfx::engine;
namespace fault = mthfx::fault;
namespace obs = mthfx::obs;
namespace wl = mthfx::workload;

namespace {

std::string make_temp_dir() {
  std::string tmpl = "/tmp/mthfx_durability_XXXXXX";
  char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "/tmp";
}

engine::Job h2_job(const std::string& name, const std::string& method = "hf",
                   int priority = 0) {
  engine::Job job;
  job.name = name;
  job.priority = priority;
  job.input.method = method;
  job.input.basis = "sto-3g";
  job.input.eps_schwarz = 1e-8;
  job.input.molecule = wl::h2();
  return job;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

app::StructuredResult fake_result(double energy) {
  app::StructuredResult result;
  result.ok = true;
  result.converged = true;
  result.reference = "rks";
  result.energy = energy;
  result.scf_iterations = 7;
  result.xc_energy = -0.25 * energy;
  result.report = "fake report for " + std::to_string(energy);
  return result;
}

}  // namespace

// -------------------------------------------------------------- backoff

TEST(Backoff, DeterministicUnderFixedSeed) {
  engine::BackoffOptions options;
  options.seed = 42;
  for (std::uint64_t job = 1; job <= 3; ++job)
    for (std::size_t attempt = 1; attempt <= 4; ++attempt)
      EXPECT_EQ(engine::backoff_delay_ms(options, job, attempt),
                engine::backoff_delay_ms(options, job, attempt));
  // Different seeds give different jitter (with overwhelming probability).
  engine::BackoffOptions other = options;
  other.seed = 43;
  EXPECT_NE(engine::backoff_delay_ms(options, 1, 1),
            engine::backoff_delay_ms(other, 1, 1));
}

TEST(Backoff, ExponentialGrowthWithCapAndJitterRange) {
  engine::BackoffOptions options;
  options.base_ms = 10.0;
  options.max_ms = 80.0;
  options.jitter = 0.5;
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    const double full =
        std::min(options.base_ms * std::pow(2.0, double(attempt - 1)),
                 options.max_ms);
    const double delay = engine::backoff_delay_ms(options, 7, attempt);
    EXPECT_GT(delay, full * (1.0 - options.jitter) - 1e-12);
    EXPECT_LE(delay, full);
  }
  // Zero jitter is exactly the exponential schedule.
  options.jitter = 0.0;
  EXPECT_DOUBLE_EQ(engine::backoff_delay_ms(options, 7, 1), 10.0);
  EXPECT_DOUBLE_EQ(engine::backoff_delay_ms(options, 7, 3), 40.0);
  EXPECT_DOUBLE_EQ(engine::backoff_delay_ms(options, 7, 5), 80.0);
}

// -------------------------------------------------------------- journal

TEST(Journal, InputRoundTripsBitExact) {
  app::Input input = h2_job("x", "pbe0").input;
  input.eps_schwarz = 0.1 + 0.2;  // not representable as a short decimal
  input.fault.fail_rate = 0.015625;
  input.fault.hang_rate = 1e-3;
  input.fault.seed = 0xDEADBEEFULL;
  input.checkpoint_path = "ck.json";

  const app::Input back =
      engine::input_from_json(engine::input_to_json(input));
  EXPECT_EQ(engine::canonical_fingerprint(back),
            engine::canonical_fingerprint(input));
  EXPECT_EQ(back.method, "pbe0");
  EXPECT_EQ(back.checkpoint_path, "ck.json");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.eps_schwarz),
            std::bit_cast<std::uint64_t>(input.eps_schwarz));
  EXPECT_EQ(back.fault.seed, input.fault.seed);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.fault.hang_rate),
            std::bit_cast<std::uint64_t>(input.fault.hang_rate));
}

TEST(Journal, JobRecordRoundTripsBitExact) {
  engine::JobRecord record;
  record.id = 17;
  record.name = "water.n1.sto-3g.pbe0";
  record.priority = 3;
  record.state = engine::JobState::kDone;
  record.attempts = 2;
  record.deadline_hits = 1;
  record.backoff_ms = 12.375;
  record.degraded = true;
  record.degrade_note = "grid 40x38 -> 20x26";
  record.input = h2_job("x", "pbe0").input;
  record.result = fake_result(-75.24587903265977);
  record.result.gradient.push_back({0.1, -0.2, 0.3});

  const engine::JobRecord back =
      engine::job_record_from_json(engine::job_record_to_json(record));
  EXPECT_EQ(back.id, 17u);
  EXPECT_EQ(back.state, engine::JobState::kDone);
  EXPECT_EQ(back.attempts, 2u);
  EXPECT_EQ(back.deadline_hits, 1u);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.degrade_note, record.degrade_note);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.result.energy),
            std::bit_cast<std::uint64_t>(record.result.energy));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.backoff_ms),
            std::bit_cast<std::uint64_t>(record.backoff_ms));
  ASSERT_EQ(back.result.gradient.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.result.gradient[0].y),
            std::bit_cast<std::uint64_t>(-0.2));
  EXPECT_EQ(back.result.report, record.result.report);
}

TEST(Journal, ReplayReconstructsLifecycle) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/run.wal";
  {
    engine::Journal journal;
    journal.open(path);
    engine::Job job = h2_job("a");
    job.id = 1;
    journal.record_submitted(job);
    engine::Job other = h2_job("b", "pbe0");
    other.id = 2;
    journal.record_submitted(other);
    journal.record_started(1, 1);
    journal.record_attempt_failed(1, 1, "deadline", "blew 0.05 s", 12.5);
    journal.record_started(1, 2);
    engine::JobRecord record;
    record.id = 1;
    record.name = "a";
    record.state = engine::JobState::kDone;
    record.attempts = 2;
    record.input = h2_job("a").input;
    record.result = fake_result(-1.117);
    journal.record_committed(record);
    EXPECT_EQ(journal.appended(), 6u);
  }
  const engine::JournalReplay replay = engine::Journal::replay(path);
  EXPECT_EQ(replay.records, 6u);
  EXPECT_EQ(replay.skipped, 0u);
  ASSERT_EQ(replay.jobs.size(), 2u);
  const engine::ReplayedJob* first = replay.find(1);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->committed);
  EXPECT_EQ(first->attempts_started, 2u);
  EXPECT_EQ(first->attempts_failed, 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first->record.result.energy),
            std::bit_cast<std::uint64_t>(-1.117));
  const engine::ReplayedJob* second = replay.find(2);
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(second->committed);
  EXPECT_EQ(second->job.input.method, "pbe0");
}

TEST(Journal, ShutdownRecordMarksCleanReplayWithReason) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/run.wal";
  {
    engine::Journal journal;
    journal.open(path);
    engine::Job job = h2_job("a");
    job.id = 1;
    journal.record_submitted(job);
    journal.record_shutdown("signal 15");
  }
  const engine::JournalReplay replay = engine::Journal::replay(path);
  EXPECT_TRUE(replay.clean_shutdown);
  EXPECT_EQ(replay.shutdown_reason, "signal 15");
  // A journal that simply stops (SIGKILL) is not a clean shutdown.
  const std::string crashed = dir + "/crashed.wal";
  {
    engine::Journal journal;
    journal.open(crashed);
    engine::Job job = h2_job("a");
    job.id = 1;
    journal.record_submitted(job);
  }
  EXPECT_FALSE(engine::Journal::replay(crashed).clean_shutdown);
}

TEST(Journal, MaxIdSpansSubmittedAndCommittedRecords) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/run.wal";
  {
    engine::Journal journal;
    journal.open(path);
    engine::Job job = h2_job("a");
    job.id = 3;
    journal.record_submitted(job);
    engine::JobRecord record;
    record.id = 9;
    record.name = "b";
    record.state = engine::JobState::kDone;
    record.input = h2_job("b").input;
    record.result = fake_result(-1.0);
    journal.record_committed(record);
  }
  // The service resumes id assignment above everything in the journal,
  // whether the high id came from a pending or a committed job.
  EXPECT_EQ(engine::Journal::replay(path).max_id(), 9u);
  EXPECT_EQ(engine::JournalReplay{}.max_id(), 0u);
}

TEST(Journal, TenantSurvivesTheRoundTrip) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/run.wal";
  {
    engine::Journal journal;
    journal.open(path);
    engine::Job job = h2_job("a");
    job.id = 1;
    job.tenant = "acme";
    journal.record_submitted(job);
    engine::JobRecord record;
    record.id = 2;
    record.name = "b";
    record.tenant = "beta";
    record.state = engine::JobState::kDone;
    record.input = h2_job("b").input;
    record.result = fake_result(-1.0);
    journal.record_committed(record);
  }
  const engine::JournalReplay replay = engine::Journal::replay(path);
  ASSERT_NE(replay.find(1), nullptr);
  EXPECT_EQ(replay.find(1)->job.tenant, "acme");
  ASSERT_NE(replay.find(2), nullptr);
  EXPECT_EQ(replay.find(2)->record.tenant, "beta");
}

TEST(Journal, ReplayMissingFileIsEmptyCampaign) {
  const engine::JournalReplay replay =
      engine::Journal::replay("/tmp/mthfx_no_such_journal.wal");
  EXPECT_TRUE(replay.jobs.empty());
  EXPECT_EQ(replay.records, 0u);
  EXPECT_TRUE(replay.warnings.empty());
}

TEST(Journal, ReplayToleratesTruncatedTail) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/run.wal";
  {
    engine::Journal journal;
    journal.open(path);
    engine::Job a = h2_job("a");
    a.id = 1;
    journal.record_submitted(a);
    engine::Job b = h2_job("b");
    b.id = 2;
    journal.record_submitted(b);
  }
  // Tear the last record mid-payload, as a crash mid-append would.
  std::string contents = read_file(path);
  contents.resize(contents.size() - 40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  const engine::JournalReplay replay = engine::Journal::replay(path);
  EXPECT_EQ(replay.skipped, 1u);
  ASSERT_EQ(replay.warnings.size(), 1u);
  EXPECT_NE(replay.warnings[0].find("checksum"), std::string::npos);
  ASSERT_EQ(replay.jobs.size(), 1u);
  EXPECT_EQ(replay.jobs[0].job.id, 1u);
}

TEST(Journal, ReplaySkipsCorruptRecordAndKeepsTheRest) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/run.wal";
  {
    engine::Journal journal;
    journal.open(path);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      engine::Job job = h2_job("j" + std::to_string(id));
      job.id = id;
      journal.record_submitted(job);
    }
  }
  // Flip a payload byte inside the *middle* record.
  std::string contents = read_file(path);
  const std::size_t second_line = contents.find('\n') + 1;
  const std::size_t flip = contents.find("\"name\"", second_line) + 8;
  contents[flip] = contents[flip] == 'Z' ? 'Y' : 'Z';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  const engine::JournalReplay replay = engine::Journal::replay(path);
  EXPECT_EQ(replay.skipped, 1u);
  EXPECT_EQ(replay.records, 2u);
  ASSERT_EQ(replay.jobs.size(), 2u);
  EXPECT_NE(replay.find(1), nullptr);
  EXPECT_EQ(replay.find(2), nullptr);  // the corrupt one
  EXPECT_NE(replay.find(3), nullptr);
}

TEST(Journal, ReplayAcceptsCommittedBeforeSubmitted) {
  // Workers journal concurrently with the submitter, so commit records
  // can precede their submitted record; replay must not care.
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/run.wal";
  {
    engine::Journal journal;
    journal.open(path);
    engine::JobRecord record;
    record.id = 5;
    record.name = "early";
    record.state = engine::JobState::kDone;
    record.attempts = 1;
    record.input = h2_job("early").input;
    record.result = fake_result(-1.0);
    journal.record_committed(record);
    engine::Job job = h2_job("early");
    job.id = 5;
    journal.record_submitted(job);
  }
  const engine::JournalReplay replay = engine::Journal::replay(path);
  EXPECT_EQ(replay.skipped, 0u);
  ASSERT_EQ(replay.jobs.size(), 1u);
  EXPECT_TRUE(replay.jobs[0].committed);
  EXPECT_EQ(replay.jobs[0].job.name, "early");
}

// ----------------------------------------------------------- disk store

TEST(DiskStore, PersistsAcrossInstances) {
  const std::string dir = make_temp_dir();
  const std::uint64_t key = 0xABCDEF0123456789ULL;
  {
    engine::ResultStore store;
    store.attach_disk(dir);
    store.insert(key, fake_result(-2.5));
    EXPECT_EQ(store.disk_entries(), 1u);
  }
  engine::ResultStore reopened;
  reopened.attach_disk(dir);
  EXPECT_EQ(reopened.disk_entries(), 1u);
  const auto cached = reopened.lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(cached->energy),
            std::bit_cast<std::uint64_t>(-2.5));
  EXPECT_EQ(reopened.disk_hits(), 1u);
  EXPECT_EQ(reopened.hits(), 1u);
  // Promoted into memory: the second lookup no longer touches disk.
  reopened.lookup(key);
  EXPECT_EQ(reopened.disk_hits(), 1u);
  EXPECT_EQ(reopened.hits(), 2u);
}

TEST(DiskStore, CorruptEntryIsAMissNeverACrash) {
  const std::string dir = make_temp_dir();
  const std::uint64_t key = 42;
  {
    engine::ResultStore store;
    store.attach_disk(dir);
    store.insert(key, fake_result(-3.25));
  }
  // Corrupt the single entry's payload (key 42 -> 16-hex filename).
  const std::string entry_path = dir + "/000000000000002a.entry";
  std::string contents = read_file(entry_path);
  ASSERT_FALSE(contents.empty());
  contents[contents.size() / 2] ^= 0x40;
  {
    std::ofstream out(entry_path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  engine::ResultStore store;
  store.attach_disk(dir);
  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_EQ(store.corrupt_misses(), 1u);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.disk_entries(), 0u);  // removed, not retried forever
  EXPECT_FALSE(std::ifstream(entry_path).good());
}

TEST(DiskStore, EvictsLeastRecentlyUsedAboveByteBudget) {
  const std::string dir = make_temp_dir();
  engine::ResultStore sizing;
  sizing.attach_disk(dir);
  sizing.insert(1, fake_result(-1.0));
  const std::uint64_t entry_bytes = sizing.disk_bytes();
  ASSERT_GT(entry_bytes, 0u);

  const std::string dir2 = make_temp_dir();
  engine::ResultStore store;
  store.attach_disk(dir2, /*max_bytes=*/entry_bytes * 2);
  store.insert(10, fake_result(-1.0));
  store.insert(11, fake_result(-1.0));
  EXPECT_EQ(store.evictions(), 0u);
  store.lookup(10);  // 10 is now the most recently used
  store.insert(12, fake_result(-1.0));
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_GT(store.evicted_bytes(), 0u);
  EXPECT_LE(store.disk_bytes(), entry_bytes * 2);
  EXPECT_EQ(store.disk_entries(), 2u);

  // The LRU victim was 11 (10 was touched); 10 and 12 survive on disk.
  engine::ResultStore reopened;
  reopened.attach_disk(dir2);
  EXPECT_TRUE(reopened.lookup(10).has_value());
  EXPECT_FALSE(reopened.lookup(11).has_value());
  EXPECT_TRUE(reopened.lookup(12).has_value());
}

// ------------------------------------------------- deadlines & shedding

TEST(Scheduler, DeadlineCancelsOverdueAttemptAndRetriesWithBackoff) {
  engine::EngineOptions options;
  options.concurrency = 1;
  options.cache = false;
  options.max_job_retries = 1;
  options.default_deadline_seconds = 0.05;
  options.watchdog_poll_ms = 2.0;
  options.backoff.base_ms = 5.0;
  options.backoff.seed = 9;

  engine::JobScheduler scheduler(options);
  engine::Job job = h2_job("hang");
  // Every HFX task sleeps 100 ms: the attempt cannot finish inside the
  // 50 ms deadline, so the watchdog cancels it at an iteration boundary.
  job.input.fault.hang_rate = 1.0;
  job.input.fault.hang_seconds = 0.1;
  ASSERT_TRUE(scheduler.submit(std::move(job)).accepted);
  const auto records = scheduler.drain();
  ASSERT_EQ(records.size(), 1u);
  const engine::JobRecord& record = records[0];
  EXPECT_EQ(record.state, engine::JobState::kFailed);
  EXPECT_EQ(record.attempts, 2u);
  EXPECT_GE(record.deadline_hits, 1u);
  EXPECT_NE(record.error.find("deadline"), std::string::npos);
  EXPECT_GT(record.backoff_ms, 0.0);
  EXPECT_GE(
      scheduler.registry().counter_total("engine.deadline.expired"), 1u);
  EXPECT_EQ(scheduler.registry().counter_total("engine.retry.backoff_ms"),
            static_cast<std::uint64_t>(std::llround(engine::backoff_delay_ms(
                options.backoff, record.id, 1))));
}

TEST(Scheduler, JobDeadlineOverridesEngineDefault) {
  engine::EngineOptions options;
  options.concurrency = 1;
  options.cache = false;
  options.max_job_retries = 0;
  options.default_deadline_seconds = 0.05;
  options.watchdog_poll_ms = 2.0;

  engine::JobScheduler scheduler(options);
  engine::Job job = h2_job("roomy");
  job.deadline_seconds = 30.0;  // generous per-job deadline wins
  ASSERT_TRUE(scheduler.submit(std::move(job)).accepted);
  const auto records = scheduler.drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].state, engine::JobState::kDone);
  EXPECT_EQ(records[0].deadline_hits, 0u);
}

TEST(Scheduler, ShedsLowestPriorityForHigherPriorityArrival) {
  engine::EngineOptions options;
  options.concurrency = 1;
  options.queue_capacity = 2;
  options.shed_lowest = true;
  engine::JobScheduler scheduler(options);  // not started: jobs stay queued

  ASSERT_TRUE(scheduler.submit(h2_job("low1", "hf", 0)).accepted);
  ASSERT_TRUE(scheduler.submit(h2_job("low2", "hf", 0)).accepted);
  // Equal priority still rejects — FIFO fairness within a level.
  EXPECT_FALSE(scheduler.submit(h2_job("low3", "hf", 0)).accepted);
  // Strictly higher priority displaces the youngest lowest-priority job.
  const engine::Admission hot = scheduler.submit(h2_job("hot", "hf", 5));
  EXPECT_TRUE(hot.accepted);
  ASSERT_TRUE(hot.displaced.has_value());
  EXPECT_EQ(hot.displaced->name, "low2");
  EXPECT_EQ(scheduler.queue().shed(), 1u);

  const auto records = scheduler.drain();
  std::map<std::string, const engine::JobRecord*> by_name;
  for (const auto& r : records) by_name[r.name] = &r;
  ASSERT_EQ(records.size(), 4u);  // low1, hot ran; low2 shed; low3 rejected
  EXPECT_EQ(by_name.at("hot")->state, engine::JobState::kDone);
  EXPECT_EQ(by_name.at("low1")->state, engine::JobState::kDone);
  EXPECT_EQ(by_name.at("low2")->state, engine::JobState::kRejected);
  EXPECT_NE(by_name.at("low2")->reject_reason.find("shed"),
            std::string::npos);
  EXPECT_EQ(by_name.at("low3")->state, engine::JobState::kRejected);
  EXPECT_EQ(
      scheduler.registry().counter_total("engine.jobs_shed"), 1u);
}

TEST(Scheduler, DegradesXcGridUnderSaturation) {
  engine::EngineOptions options;
  options.concurrency = 1;
  options.cache = false;
  options.degrade_depth = 1;  // any backlog at pickup degrades DFT jobs
  engine::JobScheduler scheduler(options);
  ASSERT_TRUE(scheduler.submit(h2_job("dft1", "lda")).accepted);
  ASSERT_TRUE(scheduler.submit(h2_job("dft2", "lda")).accepted);
  const auto records = scheduler.drain();
  ASSERT_EQ(records.size(), 2u);
  // The first pickup sees the second job still queued -> degraded.
  const engine::JobRecord& first = records[0];
  EXPECT_EQ(first.state, engine::JobState::kDone);
  EXPECT_TRUE(first.degraded);
  EXPECT_NE(first.degrade_note.find("grid"), std::string::npos);
  EXPECT_EQ(first.input.grid_radial, 20);
  EXPECT_EQ(first.input.grid_angular, 26);
  EXPECT_GE(
      scheduler.registry().counter_total("engine.jobs_degraded"), 1u);
}

// --------------------------------------------------------- crash & resume

namespace {

std::vector<engine::Job> crash_campaign_jobs() {
  // Three distinct methods plus their duplicates: the duplicates make a
  // resumed run hit the warm store. Deterministic ids = expansion order.
  // The pbe0 job is artificially slowed (every HFX task sleeps
  // slow_factor * stall_seconds) so the parent's SIGKILL reliably lands
  // while it is in flight; `slow` only sleeps, so physics is unchanged.
  std::vector<engine::Job> jobs;
  const char* methods[] = {"hf", "lda", "pbe0"};
  for (int rep = 0; rep < 2; ++rep)
    for (const char* method : methods) {
      engine::Job job = h2_job(
          std::string(method) + "#r" + std::to_string(rep + 1), method);
      if (std::string(method) == "pbe0") {
        job.input.fault.slow_rate = 1.0;
        job.input.fault.slow_factor = 30.0;
        job.input.fault.stall_seconds = 1e-3;
      }
      jobs.push_back(std::move(job));
    }
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = i + 1;
  return jobs;
}

engine::EngineOptions crash_options(const std::string& dir) {
  engine::EngineOptions options;
  options.concurrency = 1;
  options.journal_path = dir + "/run.wal";
  options.store_dir = dir + "/store";
  options.checkpoint_dir = dir + "/ckpts";
  return options;
}

std::size_t count_committed(const std::string& journal_path) {
  const std::string contents = read_file(journal_path);
  std::size_t count = 0, pos = 0;
  while ((pos = contents.find("\"type\":\"committed\"", pos)) !=
         std::string::npos) {
    ++count;
    pos += 1;
  }
  return count;
}

}  // namespace

TEST(CrashRecovery, SigkillMidCampaignResumesBitIdentical) {
  const std::string dir = make_temp_dir();
  ASSERT_EQ(::mkdir((dir + "/ckpts").c_str(), 0755), 0);

  // Reference: the same campaign, uninterrupted and undurable.
  std::map<std::uint64_t, std::uint64_t> reference_energy_bits;
  {
    engine::EngineOptions options;
    options.concurrency = 1;
    engine::JobScheduler reference(options);
    for (engine::Job& job : crash_campaign_jobs())
      ASSERT_TRUE(reference.submit(std::move(job)).accepted);
    for (const auto& record : reference.drain()) {
      ASSERT_EQ(record.state, engine::JobState::kDone) << record.name;
      reference_energy_bits[record.id] =
          std::bit_cast<std::uint64_t>(record.result.energy);
    }
  }

  // Child: run the durable campaign; parent SIGKILLs it after two jobs
  // have committed.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    engine::JobScheduler scheduler(crash_options(dir));
    scheduler.start();
    for (engine::Job& job : crash_campaign_jobs())
      scheduler.submit(std::move(job));
    scheduler.drain();
    _exit(0);  // only reached when the kill arrives too late
  }
  const auto poll_start = std::chrono::steady_clock::now();
  while (count_committed(dir + "/run.wal") < 2 &&
         std::chrono::steady_clock::now() - poll_start <
             std::chrono::seconds(60))
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  const std::size_t committed_before_kill =
      count_committed(dir + "/run.wal");
  ASSERT_GE(committed_before_kill, 2u);

  // Resume: committed jobs come from the journal, the rest re-run (from
  // their checkpoint when one exists).
  const engine::JournalReplay replay =
      engine::Journal::replay(dir + "/run.wal");
  engine::JobScheduler resumed(crash_options(dir));
  resumed.start();
  std::size_t adopted = 0;
  for (engine::Job& job : crash_campaign_jobs()) {
    const engine::ReplayedJob* prior = replay.find(job.id);
    if (prior && prior->committed) {
      resumed.adopt(prior->record);
      ++adopted;
      continue;
    }
    const std::string ckpt =
        dir + "/ckpts/job_" + std::to_string(job.id) + ".ckpt";
    if (std::ifstream(ckpt).good()) job.input.restore_path = ckpt;
    ASSERT_TRUE(resumed.submit(std::move(job)).accepted);
  }
  const auto records = resumed.drain();

  // Every job completed; committed work was served, not recomputed.
  ASSERT_EQ(records.size(), reference_energy_bits.size());
  EXPECT_GE(adopted, committed_before_kill);
  std::size_t replayed = 0;
  for (const auto& record : records) {
    EXPECT_EQ(record.state, engine::JobState::kDone) << record.name;
    if (record.replayed) ++replayed;
    ASSERT_TRUE(reference_energy_bits.count(record.id));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(record.result.energy),
              reference_energy_bits.at(record.id))
        << "energy drifted across crash+resume for " << record.name;
  }
  EXPECT_EQ(replayed, adopted);
  EXPECT_EQ(resumed.registry().counter_total("engine.jobs_replayed"),
            adopted);
  // The duplicates hit the warm (journal- and disk-fed) store: no
  // duplicated SCF work for anything already computed.
  EXPECT_GT(resumed.store().hits(), 0u);
  const std::uint64_t scf_runs =
      resumed.registry().counter_total("engine.cache_misses");
  EXPECT_LE(scf_runs, reference_energy_bits.size() - adopted);
}

TEST(CrashRecovery, ResumeOfCompletedCampaignRecomputesNothing) {
  const std::string dir = make_temp_dir();
  ASSERT_EQ(::mkdir((dir + "/ckpts").c_str(), 0755), 0);
  std::map<std::uint64_t, std::uint64_t> first_bits;
  {
    engine::JobScheduler scheduler(crash_options(dir));
    for (engine::Job& job : crash_campaign_jobs())
      ASSERT_TRUE(scheduler.submit(std::move(job)).accepted);
    for (const auto& record : scheduler.drain())
      first_bits[record.id] =
          std::bit_cast<std::uint64_t>(record.result.energy);
  }
  const engine::JournalReplay replay =
      engine::Journal::replay(dir + "/run.wal");
  engine::JobScheduler resumed(crash_options(dir));
  for (engine::Job& job : crash_campaign_jobs()) {
    const engine::ReplayedJob* prior = replay.find(job.id);
    ASSERT_NE(prior, nullptr);
    ASSERT_TRUE(prior->committed);
    resumed.adopt(prior->record);
  }
  const auto records = resumed.drain();
  ASSERT_EQ(records.size(), first_bits.size());
  for (const auto& record : records) {
    EXPECT_TRUE(record.replayed);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(record.result.energy),
              first_bits.at(record.id));
  }
  EXPECT_EQ(resumed.registry().counter_total("engine.cache_misses"), 0u);
}

// ------------------------------------------------------ campaign grammar

TEST(Campaign, ParsesDurabilityKeywords) {
  const engine::CampaignSpec spec = engine::parse_campaign(
      "journal run.wal\n"
      "store_dir store\n"
      "store_max_bytes 4096\n"
      "deadline 30\n"
      "degrade_depth 7\n"
      "shed off\n"
      "backoff_base_ms 5\n"
      "backoff_max_ms 500\n"
      "backoff_jitter 0.25\n"
      "backoff_seed 99\n"
      "sweep\n"
      "  molecules water\n"
      "  deadline 10\n"
      "end\n");
  EXPECT_EQ(spec.engine.journal_path, "run.wal");
  EXPECT_EQ(spec.engine.store_dir, "store");
  EXPECT_EQ(spec.engine.store_max_bytes, 4096u);
  EXPECT_DOUBLE_EQ(spec.engine.default_deadline_seconds, 30.0);
  EXPECT_EQ(spec.engine.degrade_depth, 7u);
  EXPECT_FALSE(spec.engine.shed_lowest);
  EXPECT_DOUBLE_EQ(spec.engine.backoff.base_ms, 5.0);
  EXPECT_DOUBLE_EQ(spec.engine.backoff.max_ms, 500.0);
  EXPECT_DOUBLE_EQ(spec.engine.backoff.jitter, 0.25);
  EXPECT_EQ(spec.engine.backoff.seed, 99u);
  const auto jobs = spec.expand();
  ASSERT_FALSE(jobs.empty());
  EXPECT_DOUBLE_EQ(jobs[0].deadline_seconds, 10.0);
}

TEST(Campaign, RejectsNegativeDeadline) {
  EXPECT_THROW(engine::parse_campaign("deadline -1\nsweep\nend\n"),
               std::runtime_error);
}
