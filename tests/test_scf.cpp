#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "ints/one_electron.hpp"
#include "linalg/eigen.hpp"
#include "scf/guess.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"

namespace chem = mthfx::chem;
namespace la = mthfx::linalg;
namespace scf = mthfx::scf;

namespace {

chem::Molecule h2(double r = 1.4) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, r});
  return m;
}

chem::Molecule water() {
  return chem::Molecule::from_xyz(
      "3\nwater\nO 0.000000 0.000000 0.117300\n"
      "H 0.000000 0.757200 -0.469200\n"
      "H 0.000000 -0.757200 -0.469200\n");
}

}  // namespace

TEST(Guess, DensityTracesToElectronCount) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix p = scf::core_guess_density(basis, m, x);
  // tr(P S) = N_electrons.
  EXPECT_NEAR(la::trace_product(p, s), 10.0, 1e-9);
}

TEST(Guess, RejectsOddElectronCount) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix x =
      la::inverse_sqrt(mthfx::ints::overlap(basis));
  EXPECT_THROW(scf::core_guess_density(basis, m, x), std::invalid_argument);
}

// RHF/STO-3G total energy for H2 at R = 1.4 a0 (Szabo-Ostlund report
// -1.1167; the value to 7 digits, -1.1167143, is confirmed here by an
// independent closed-form s-Gaussian derivation with EMSL exponents).
TEST(Rhf, H2Sto3gTotalEnergy) {
  const auto m = h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto result = scf::rhf(m, basis);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.energy, -1.1167143, 2e-6);
}

// Published RHF/STO-3G water energy -74.9420798986 Ha at the standard
// Crawford-project geometry (coordinates in bohr).
TEST(Rhf, WaterSto3gTotalEnergyCrawfordGeometry) {
  chem::Molecule m;
  m.add_atom(8, {0.000000000000, 0.000000000000, -0.143225816552});
  m.add_atom(1, {0.000000000000, 1.638036840407, 1.136548822547});
  m.add_atom(1, {0.000000000000, -1.638036840407, 1.136548822547});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto result = scf::rhf(m, basis);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.energy, -74.9420798986, 5e-5);
}

// At the near-experimental geometry STO-3G water sits near -74.963 Ha.
TEST(Rhf, WaterSto3gExperimentalGeometry) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto result = scf::rhf(m, basis);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.energy, -74.963, 2e-3);
}

TEST(Rhf, HeHPlusCation) {
  // HeH+ at 1.4632 a0, STO-3G: E ~ -2.841 Ha (Szabo-Ostlund ch. 3).
  chem::Molecule m;
  m.add_atom(2, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.4632});
  m.set_charge(1);
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto result = scf::rhf(m, basis);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.energy, -2.841, 5e-3);
}

TEST(Rhf, EnergyComponentsAreConsistent) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::rhf(m, basis);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.energy,
              r.one_electron_energy + r.coulomb_energy + r.exchange_energy +
                  r.nuclear_repulsion,
              1e-10);
  EXPECT_LT(r.one_electron_energy, 0.0);
  EXPECT_GT(r.coulomb_energy, 0.0);
  EXPECT_LT(r.exchange_energy, 0.0);
}

TEST(Rhf, NonConvergedResultStillPopulatesEnergyComponents) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::ScfOptions opts;
  opts.max_iterations = 1;  // force converged=false
  const auto r = scf::rhf(m, basis, opts);
  ASSERT_FALSE(r.converged);
  EXPECT_NEAR(r.energy,
              r.one_electron_energy + r.coulomb_energy + r.exchange_energy +
                  r.nuclear_repulsion,
              1e-10);
  EXPECT_LT(r.one_electron_energy, 0.0);
  EXPECT_GT(r.coulomb_energy, 0.0);
}

TEST(Rhf, SplitValenceLowersEnergyVariationally) {
  const auto m = water();
  const auto e_min = scf::rhf(m, chem::BasisSet::build(m, "sto-3g"));
  const auto e_dz = scf::rhf(m, chem::BasisSet::build(m, "6-31g"));
  const auto e_dzp = scf::rhf(m, chem::BasisSet::build(m, "6-31g*"));
  ASSERT_TRUE(e_min.converged && e_dz.converged && e_dzp.converged);
  EXPECT_LT(e_dz.energy, e_min.energy);
  EXPECT_LT(e_dzp.energy, e_dz.energy);
  // 6-31G water RHF is about -75.98 Ha.
  EXPECT_NEAR(e_dz.energy, -75.98, 0.05);
}

TEST(Rhf, IncrementalFockMatchesFullRebuild) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::ScfOptions inc;
  inc.incremental_fock = true;
  scf::ScfOptions full;
  full.incremental_fock = false;
  const auto r1 = scf::rhf(m, basis, inc);
  const auto r2 = scf::rhf(m, basis, full);
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_NEAR(r1.energy, r2.energy, 1e-8);
}

TEST(Rhf, IncrementalConvergenceIsDecidedOnFullBuilds) {
  // Accumulated DP screening error makes the incremental energy walk at
  // the eps_schwarz noise scale, far above a tight energy_tolerance.
  // Convergence must not depend on where that walk happens to land:
  // once the DIIS error is converged the driver switches to full
  // builds, so the verdict (and the reported energy) comes from
  // noise-free deltas. Before the switch existed this configuration
  // stalled for all 100 iterations with the energy drifted ~1e-7 off
  // the full-build answer.
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "6-31g");
  scf::ScfOptions inc;
  inc.incremental_fock = true;
  inc.full_rebuild_every = 1000;  // schedule never resets the drift
  inc.hfx.eps_schwarz = 1e-9;
  inc.energy_tolerance = 1e-12;
  scf::ScfOptions full = inc;
  full.incremental_fock = false;
  const auto r_inc = scf::rhf(m, basis, inc);
  const auto r_full = scf::rhf(m, basis, full);
  ASSERT_TRUE(r_inc.converged);
  ASSERT_TRUE(r_full.converged);
  EXPECT_NEAR(r_inc.energy, r_full.energy, 1e-10);
}

TEST(Rhf, IncrementalFockShrinksLateIterationWork) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "6-31g");
  scf::ScfOptions opts;
  opts.incremental_fock = true;
  opts.hfx.eps_schwarz = 1e-9;
  const auto r = scf::rhf(m, basis, opts);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.log.size(), 3u);
  // Quartet work in a late (incremental) iteration is below the first
  // full build: density screening bites on the small ΔP.
  EXPECT_LT(r.log[r.log.size() - 2].quartets_computed,
            r.log[0].quartets_computed);
}

TEST(Rhf, DiisAcceleratesConvergence) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "6-31g");
  scf::ScfOptions with;
  with.use_diis = true;
  scf::ScfOptions without;
  without.use_diis = false;
  without.max_iterations = 300;
  const auto r1 = scf::rhf(m, basis, with);
  const auto r2 = scf::rhf(m, basis, without);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r1.iterations, r2.iterations);
  EXPECT_NEAR(r1.energy, r2.energy, 1e-7);
}

TEST(Rhf, HomoLumoGapPositiveForClosedShell) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::rhf(m, basis);
  EXPECT_GT(scf::homo_lumo_gap(r, m), 0.1);
}

TEST(Rks, HfFunctionalReproducesRhf) {
  const auto m = h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto rhf_result = scf::rhf(m, basis);
  scf::KsOptions opts;
  opts.functional = "hf";
  const auto ks = scf::rks(m, basis, opts);
  ASSERT_TRUE(ks.scf.converged);
  EXPECT_NEAR(ks.scf.energy, rhf_result.energy, 1e-7);
}

TEST(Rks, LdaWaterEnergyInPhysicalRange) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::KsOptions opts;
  opts.functional = "lda";
  opts.grid.radial_points = 40;
  const auto ks = scf::rks(m, basis, opts);
  ASSERT_TRUE(ks.scf.converged);
  // LDA total energy near RHF but distinct; grid recovers N = 10.
  EXPECT_NEAR(ks.scf.energy, -74.7, 0.4);
  EXPECT_NEAR(ks.integrated_density, 10.0, 5e-3);
}

TEST(Rks, Pbe0MixesExactExchange) {
  const auto m = h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::KsOptions opts;
  opts.functional = "pbe0";
  const auto ks = scf::rks(m, basis, opts);
  ASSERT_TRUE(ks.scf.converged);
  EXPECT_LT(ks.exact_exchange_energy, 0.0);
  EXPECT_LT(ks.xc_energy, 0.0);
  // PBE0 H2 energy is within ~0.1 Ha of the HF value in this tiny basis.
  EXPECT_NEAR(ks.scf.energy, -1.15, 0.08);
}

TEST(Rks, PbeVsPbe0Differ) {
  const auto m = h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::KsOptions pbe;
  pbe.functional = "pbe";
  scf::KsOptions pbe0;
  pbe0.functional = "pbe0";
  const auto r1 = scf::rks(m, basis, pbe);
  const auto r2 = scf::rks(m, basis, pbe0);
  ASSERT_TRUE(r1.scf.converged && r2.scf.converged);
  EXPECT_GT(std::abs(r1.scf.energy - r2.scf.energy), 1e-4);
  // The hybrid opens the HOMO-LUMO gap relative to the pure GGA — the
  // physics the paper needs for electrolyte stability predictions.
  const auto m2 = h2();
  EXPECT_GT(scf::homo_lumo_gap(r2.scf, m2), scf::homo_lumo_gap(r1.scf, m2));
}

TEST(Rks, UnknownFunctionalThrows) {
  const auto m = h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::KsOptions opts;
  opts.functional = "m06-2x";
  EXPECT_THROW(scf::rks(m, basis, opts), std::invalid_argument);
}
