#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace obs = mthfx::obs;

// ---------------------------------------------------------------- Json --

TEST(Json, ScalarsRoundTrip) {
  obs::Json o = obs::Json::object();
  o["i"] = 42;
  o["d"] = 2.5;
  o["s"] = "hello";
  o["b"] = true;
  o["n"] = obs::Json();
  EXPECT_EQ(o.dump(),
            R"({"i":42,"d":2.5,"s":"hello","b":true,"n":null})");
}

TEST(Json, PreservesInsertionOrder) {
  obs::Json o = obs::Json::object();
  o["zebra"] = 1;
  o["alpha"] = 2;
  o["mid"] = 3;
  EXPECT_EQ(o.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, ArraysAndNesting) {
  obs::Json a = obs::Json::array();
  for (int i = 0; i < 3; ++i) {
    obs::Json row = obs::Json::object();
    row["i"] = i;
    a.push_back(std::move(row));
  }
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.dump(), R"([{"i":0},{"i":1},{"i":2}])");
}

TEST(Json, EscapesStrings) {
  obs::Json o = obs::Json::object();
  o["k"] = std::string("a\"b\\c\n\t");
  EXPECT_EQ(o.dump(), "{\"k\":\"a\\\"b\\\\c\\n\\t\"}");
}

TEST(Json, DoubleFormattingIsShortestRoundTrip) {
  obs::Json o = obs::Json::object();
  o["third"] = 1.0 / 3.0;
  o["whole"] = 3.0;
  o["tiny"] = 1e-300;
  const std::string s = o.dump();
  // Round-trip exactness: re-parse by hand through stod.
  EXPECT_NE(s.find("0.3333333333333333"), std::string::npos);
  EXPECT_NE(s.find("\"whole\":3"), std::string::npos);
  EXPECT_NE(s.find("1e-300"), std::string::npos);
}

TEST(Json, NonFiniteBecomesNull) {
  obs::Json o = obs::Json::object();
  o["inf"] = std::numeric_limits<double>::infinity();
  o["nan"] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(o.dump(), R"({"inf":null,"nan":null})");
}

TEST(Json, IndentedDumpIsStable) {
  obs::Json o = obs::Json::object();
  o["a"] = 1;
  obs::Json inner = obs::Json::array();
  inner.push_back(2);
  o["b"] = std::move(inner);
  EXPECT_EQ(o.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

// ------------------------------------------------------------ Registry --

TEST(Registry, CounterAndTimerBasics) {
  obs::Registry reg(2);
  auto c = reg.counter("events");
  auto t = reg.timer("busy");
  c.add(0);
  c.add(1, 5);
  t.add_seconds(0, 0.25);
  t.add_seconds(1, 0.75);
  EXPECT_EQ(reg.counter_total("events"), 6u);
  EXPECT_DOUBLE_EQ(reg.timer_seconds("busy"), 1.0);
  EXPECT_EQ(reg.timer_count("busy"), 2u);
  EXPECT_EQ(reg.counter_per_thread("events"),
            (std::vector<std::uint64_t>{1, 5}));
}

TEST(Registry, RegistrationIsIdempotent) {
  obs::Registry reg(1);
  reg.counter("x").add(0, 3);
  reg.counter("x").add(0, 4);  // same slot, looked up again
  EXPECT_EQ(reg.counter_total("x"), 7u);
}

TEST(Registry, UnknownNamesReadAsZero) {
  obs::Registry reg(1);
  EXPECT_EQ(reg.counter_total("nope"), 0u);
  EXPECT_DOUBLE_EQ(reg.timer_seconds("nope"), 0.0);
  EXPECT_EQ(reg.counter_per_thread("nope"),
            (std::vector<std::uint64_t>{0}));
}

TEST(Registry, DefaultHandlesDropUpdates) {
  obs::Counter c;
  obs::Timer t;
  c.add(0, 100);           // must not crash
  t.add_seconds(0, 1.0);   // must not crash
}

// Acceptance criterion: aggregation across >= 4 threads matches a serial
// reference computed from the same per-thread update plan.
TEST(Registry, ParallelAggregationMatchesSerialReference) {
  constexpr std::size_t nthreads = 4;
  constexpr int rounds = 20000;
  obs::Registry reg(nthreads);
  auto counter = reg.counter("work.items");
  auto timer = reg.timer("work.seconds");

  // Deterministic plan: thread t adds (t + 1) per round to the counter
  // and (t + 1) * 1e-6 "seconds" per round to the timer.
  std::uint64_t ref_count = 0;
  double ref_seconds = 0.0;
  std::vector<std::uint64_t> ref_per_thread(nthreads, 0);
  for (std::size_t t = 0; t < nthreads; ++t) {
    ref_per_thread[t] = static_cast<std::uint64_t>(rounds) * (t + 1);
    ref_count += ref_per_thread[t];
    ref_seconds += static_cast<double>(rounds) *
                   static_cast<double>(t + 1) * 1e-6;
  }

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < nthreads; ++t)
    threads.emplace_back([&, t] {
      for (int r = 0; r < rounds; ++r) {
        counter.add(t, t + 1);
        timer.add_seconds(t, static_cast<double>(t + 1) * 1e-6);
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter_total("work.items"), ref_count);
  EXPECT_EQ(reg.counter_per_thread("work.items"), ref_per_thread);
  // Each slot sums its own doubles in-order, so the per-thread values are
  // exact; the cross-thread total only varies by summation order.
  EXPECT_NEAR(reg.timer_seconds("work.seconds"), ref_seconds,
              1e-9 * ref_seconds);
  EXPECT_EQ(reg.timer_count("work.seconds"),
            static_cast<std::uint64_t>(rounds) * nthreads);
}

TEST(Registry, ScopedTimerAccumulates) {
  obs::Registry reg(1);
  auto t = reg.timer("scoped");
  {
    obs::ScopedTimer timer(t, 0);
  }
  {
    obs::ScopedTimer timer(t, 0);
  }
  EXPECT_EQ(reg.timer_count("scoped"), 2u);
  EXPECT_GE(reg.timer_seconds("scoped"), 0.0);
}

TEST(Registry, ToJsonShape) {
  obs::Registry reg(2);
  reg.counter("c").add(0, 7);
  reg.timer("t").add_seconds(1, 0.5);
  const obs::Json j = reg.to_json();
  const obs::Json* counters = j.find("counters");
  const obs::Json* timers = j.find("timers");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(timers, nullptr);
  ASSERT_NE(counters->find("c"), nullptr);
  EXPECT_EQ(counters->find("c")->as_int(), 7);
  const obs::Json* t = timers->find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_DOUBLE_EQ(t->find("seconds")->as_double(), 0.5);
  EXPECT_EQ(t->find("count")->as_int(), 1);
  EXPECT_EQ(t->find("per_thread_seconds")->size(), 2u);
}

// --------------------------------------------------------------- Trace --

TEST(Trace, RecordsNestedSpans) {
  obs::Trace trace;
  {
    obs::Trace::Scope outer(trace, "outer");
    {
      obs::Trace::Scope inner(trace, "inner");
    }
    {
      obs::Trace::Scope inner(trace, "inner");
    }
  }
  EXPECT_EQ(trace.count("outer"), 1u);
  EXPECT_EQ(trace.count("inner"), 2u);
  // Children record before the parent; depth reflects nesting.
  for (const auto& s : trace.spans()) {
    if (s.name == "outer") EXPECT_EQ(s.depth, 0u);
    if (s.name == "inner") EXPECT_EQ(s.depth, 1u);
  }
  EXPECT_GE(trace.total_seconds("outer"), trace.total_seconds("inner"));
}

TEST(Trace, DepthIsPerThread) {
  obs::Trace trace;
  obs::Trace::Scope outer(trace, "main-outer");
  std::thread worker([&] {
    obs::Trace::Scope span(trace, "worker-span");
  });
  worker.join();
  // The worker's span must be depth 0 on its own thread, not nested
  // under the main thread's open span.
  for (const auto& s : trace.spans())
    if (s.name == "worker-span") EXPECT_EQ(s.depth, 0u);
}

TEST(Trace, ClearResets) {
  obs::Trace trace;
  {
    obs::Trace::Scope s(trace, "x");
  }
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.count("x"), 0u);
}

TEST(Trace, ToJsonSortsByStart) {
  obs::Trace trace;
  {
    obs::Trace::Scope a(trace, "first");
    obs::Trace::Scope b(trace, "second");
  }
  const obs::Json j = trace.to_json();
  const obs::Json* spans = j.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 2u);
  // "first" starts earlier, so it sorts ahead of "second" even though
  // it records later (parent closes after child).
  double prev = -1.0;
  for (const auto& s : spans->items()) {
    const double start = s.find("start_seconds")->as_double();
    EXPECT_GE(start, prev);
    prev = start;
  }
  EXPECT_EQ(j.find("dropped")->as_int(), 0);
}

TEST(Trace, GlobalTraceIsSingleton) {
  EXPECT_EQ(&obs::global_trace(), &obs::global_trace());
}

TEST(Stopwatch, MeasuresNonNegativeAndResets) {
  obs::Stopwatch w;
  const double t1 = w.seconds();
  EXPECT_GE(t1, 0.0);
  w.reset();
  EXPECT_GE(w.seconds(), 0.0);
}

TEST(JsonParse, RoundTripsDumpedDocument) {
  obs::Json j = obs::Json::object();
  j["name"] = "scf";
  j["iteration"] = 17;
  j["converged"] = true;
  j["nothing"] = obs::Json();
  j["energy"] = -76.02676218742871;
  j["tiny"] = 4.9406564584124654e-324;  // denormal min
  j["big"] = 1.7976931348623157e308;
  obs::Json arr = obs::Json::array();
  arr.push_back(1);
  arr.push_back(0.1);
  arr.push_back("x\n\"y\"\t\\z");
  j["list"] = arr;

  const obs::Json back = obs::Json::parse(j.dump());
  EXPECT_EQ(back.find("name")->as_string(), "scf");
  EXPECT_EQ(back.find("iteration")->as_int(), 17);
  EXPECT_EQ(back.find("iteration")->kind(), obs::Json::Kind::kInt);
  EXPECT_TRUE(back.find("converged")->as_bool());
  EXPECT_TRUE(back.find("nothing")->is_null());
  // Bit-exact double round-trip (the checkpoint/restart contract).
  EXPECT_EQ(back.find("energy")->as_double(), -76.02676218742871);
  EXPECT_EQ(back.find("tiny")->as_double(), 4.9406564584124654e-324);
  EXPECT_EQ(back.find("big")->as_double(), 1.7976931348623157e308);
  EXPECT_EQ(back.find("energy")->kind(), obs::Json::Kind::kDouble);
  const auto& list = back.find("list")->items();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].as_int(), 1);
  EXPECT_EQ(list[1].as_double(), 0.1);
  EXPECT_EQ(list[2].as_string(), "x\n\"y\"\t\\z");

  // The indented form parses to the same document too.
  EXPECT_EQ(obs::Json::parse(j.dump(2)).dump(), j.dump());
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse(""), std::invalid_argument);
  EXPECT_THROW(obs::Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(obs::Json::parse("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW(obs::Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(obs::Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(obs::Json::parse("{} trailing"), std::invalid_argument);
}
