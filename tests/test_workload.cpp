#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "scf/rhf.hpp"
#include "workload/geometries.hpp"
#include "workload/reaction_path.hpp"
#include "workload/replicate.hpp"

namespace chem = mthfx::chem;
namespace wl = mthfx::workload;

TEST(Geometries, CompositionsAreCorrect) {
  EXPECT_EQ(wl::water().size(), 3u);
  EXPECT_EQ(wl::propylene_carbonate().size(), 13u);  // C4H6O3
  EXPECT_EQ(wl::dmso().size(), 10u);                 // C2H6OS
  EXPECT_EQ(wl::lithium_peroxide().size(), 4u);
  EXPECT_EQ(wl::lithium_superoxide_anion().charge(), -1);
  EXPECT_EQ(wl::hydroxide().num_electrons(), 10);
}

TEST(Geometries, AllSpeciesAreClosedShell) {
  for (const char* name : {"water", "pc", "dmso", "li2o2", "lio2-", "oh-",
                           "h2"})
    EXPECT_EQ(wl::by_name(name).num_electrons() % 2, 0) << name;
}

TEST(Geometries, ByNameRejectsUnknown) {
  EXPECT_THROW(wl::by_name("benzene"), std::invalid_argument);
}

TEST(Geometries, NoAtomClashes) {
  // Every interatomic distance above 0.8 A (sanity for hand-built
  // geometries).
  for (const char* name : {"water", "pc", "dmso", "li2o2", "lio2-"}) {
    const auto m = wl::by_name(name);
    for (std::size_t i = 0; i < m.size(); ++i)
      for (std::size_t j = i + 1; j < m.size(); ++j)
        EXPECT_GT(chem::distance(m.atom(i).pos, m.atom(j).pos),
                  0.8 * chem::kBohrPerAngstrom)
            << name << " atoms " << i << "," << j;
  }
}

TEST(Geometries, BondedNeighborsAreChemical) {
  // Each atom in PC has at least one neighbor within 1.8 A.
  const auto m = wl::propylene_carbonate();
  for (std::size_t i = 0; i < m.size(); ++i) {
    double nearest = 1e9;
    for (std::size_t j = 0; j < m.size(); ++j)
      if (i != j)
        nearest =
            std::min(nearest, chem::distance(m.atom(i).pos, m.atom(j).pos));
    EXPECT_LT(nearest, 1.8 * chem::kBohrPerAngstrom) << "atom " << i;
  }
}

TEST(Geometries, PcScfConverges) {
  // The central application molecule must be SCF-stable in STO-3G.
  const auto m = wl::propylene_carbonate();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  mthfx::scf::ScfOptions opts;
  opts.hfx.eps_schwarz = 1e-9;
  const auto r = mthfx::scf::rhf(m, basis, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.energy, -350.0);  // 54 electrons: deep total energy
  EXPECT_GT(r.energy, -400.0);
}

TEST(Replicate, CountsAndCharges) {
  const auto unit = wl::water();
  const auto cluster = wl::replicate(unit, {2, 2, 2, 12.0});
  EXPECT_EQ(cluster.size(), 8 * 3u);
  EXPECT_EQ(cluster.num_electrons(), 80);
}

TEST(Replicate, SpacingIsRespected) {
  const auto unit = wl::water();
  const auto cluster = wl::replicate(unit, {2, 1, 1, 15.0});
  // Same atom of the two copies is exactly one lattice vector apart.
  EXPECT_NEAR(chem::distance(cluster.atom(0).pos, cluster.atom(3).pos), 15.0,
              1e-12);
}

TEST(Replicate, LatticeForCountCoversRequest) {
  for (int count : {1, 2, 7, 8, 9, 27, 50, 100}) {
    const auto spec = wl::lattice_for_count(count);
    EXPECT_GE(spec.nx * spec.ny * spec.nz, count) << count;
    // Not absurdly oversized.
    EXPECT_LE(spec.nx * spec.ny * spec.nz, 2 * count + 8) << count;
  }
}

TEST(Replicate, LatticeForCountExactShapes) {
  // Perfect cubes get the exact cube.
  for (int n : {1, 2, 3, 4}) {
    const auto spec = wl::lattice_for_count(n * n * n);
    EXPECT_EQ(spec.nx, n);
    EXPECT_EQ(spec.ny, n);
    EXPECT_EQ(spec.nz, n);
  }
  // Non-cubes trim full z-layers off the covering cube.
  const auto five = wl::lattice_for_count(5);  // 2x2 base, two layers
  EXPECT_EQ(five.nx, 2);
  EXPECT_EQ(five.ny, 2);
  EXPECT_EQ(five.nz, 2);
  const auto nine = wl::lattice_for_count(9);  // 3x3 base, one layer
  EXPECT_EQ(nine.nx, 3);
  EXPECT_EQ(nine.ny, 3);
  EXPECT_EQ(nine.nz, 1);
}

TEST(Replicate, LatticeForCountLayerCountIsMinimal) {
  // Given the nx = ny = ceil(cbrt) base, one fewer z-layer would not
  // cover the request.
  for (int count = 1; count <= 80; ++count) {
    const auto spec = wl::lattice_for_count(count);
    EXPECT_GE(spec.nx * spec.ny * spec.nz, count) << count;
    EXPECT_LT(spec.nx * spec.ny * (spec.nz - 1), count) << count;
  }
}

TEST(Replicate, ClusterOfExactCounts) {
  const auto unit = wl::water();
  for (int count : {1, 2, 5, 9, 12}) {
    const auto cluster = wl::cluster_of(unit, count);
    EXPECT_EQ(cluster.size(), static_cast<std::size_t>(count) * unit.size());
    EXPECT_EQ(cluster.num_electrons(), 10 * count);
  }
  // Charged units accumulate charge per copy.
  EXPECT_EQ(wl::cluster_of(wl::lithium_superoxide_anion(), 3).charge(), -3);
}

TEST(Replicate, ClusterOfPlacesCopiesRowMajor) {
  // count=3 covers with a 2x2x1 lattice; the first three row-major sites
  // are (0,0,0), (0,1,0), (1,0,0).
  const auto unit = wl::h2();
  const double s = 10.0;
  const auto cluster = wl::cluster_of(unit, 3, s);
  ASSERT_EQ(cluster.size(), 6u);
  const auto base = unit.atom(0).pos;
  EXPECT_EQ(cluster.atom(0).pos, base);
  EXPECT_NEAR(cluster.atom(2).pos[1] - base[1], s, 1e-14);
  EXPECT_NEAR(cluster.atom(2).pos[0] - base[0], 0.0, 1e-14);
  EXPECT_NEAR(cluster.atom(4).pos[0] - base[0], s, 1e-14);
  EXPECT_NEAR(cluster.atom(4).pos[1] - base[1], 0.0, 1e-14);
}

TEST(ReactionPath, LinearEndpointsExact) {
  auto a = wl::h2();
  auto b = wl::h2();
  b.set_position(1, {0, 0, 2.8});
  const auto path = wl::linear_path(a, b, 5);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_NEAR(path.front().atom(1).pos[2], 1.4, 1e-14);
  EXPECT_NEAR(path.back().atom(1).pos[2], 2.8, 1e-14);
  EXPECT_NEAR(path[2].atom(1).pos[2], 2.1, 1e-14);  // midpoint
}

TEST(ReactionPath, RejectsMismatchedEndpoints) {
  EXPECT_THROW(wl::linear_path(wl::h2(), wl::water(), 4),
               std::invalid_argument);
  EXPECT_THROW(wl::linear_path(wl::h2(), wl::h2(), 1), std::invalid_argument);
}

TEST(ReactionPath, ApproachPathMovesAttackerOnly) {
  const auto sub = wl::water();
  const auto att = wl::hydroxide();
  const auto path =
      wl::approach_path(sub, att, {0, 0, 12.0}, {0, 0, 5.0}, 4);
  ASSERT_EQ(path.size(), 4u);
  for (const auto& img : path) {
    EXPECT_EQ(img.size(), sub.size() + att.size());
    EXPECT_EQ(img.charge(), -1);
    // Substrate atoms fixed.
    for (std::size_t i = 0; i < sub.size(); ++i)
      EXPECT_EQ(img.atom(i).pos, sub.atom(i).pos);
  }
  // Attacker O moves from +12 to +5 in z.
  EXPECT_NEAR(path.front().atom(sub.size()).pos[2], 12.0, 1e-12);
  EXPECT_NEAR(path.back().atom(sub.size()).pos[2], 5.0, 1e-12);
}
