#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "scf/rhf.hpp"
#include "workload/geometries.hpp"
#include "workload/reaction_path.hpp"
#include "workload/replicate.hpp"

namespace chem = mthfx::chem;
namespace wl = mthfx::workload;

TEST(Geometries, CompositionsAreCorrect) {
  EXPECT_EQ(wl::water().size(), 3u);
  EXPECT_EQ(wl::propylene_carbonate().size(), 13u);  // C4H6O3
  EXPECT_EQ(wl::dmso().size(), 10u);                 // C2H6OS
  EXPECT_EQ(wl::lithium_peroxide().size(), 4u);
  EXPECT_EQ(wl::lithium_superoxide_anion().charge(), -1);
  EXPECT_EQ(wl::hydroxide().num_electrons(), 10);
}

TEST(Geometries, AllSpeciesAreClosedShell) {
  for (const char* name : {"water", "pc", "dmso", "li2o2", "lio2-", "oh-",
                           "h2"})
    EXPECT_EQ(wl::by_name(name).num_electrons() % 2, 0) << name;
}

TEST(Geometries, ByNameRejectsUnknown) {
  EXPECT_THROW(wl::by_name("benzene"), std::invalid_argument);
}

TEST(Geometries, NoAtomClashes) {
  // Every interatomic distance above 0.8 A (sanity for hand-built
  // geometries).
  for (const char* name : {"water", "pc", "dmso", "li2o2", "lio2-"}) {
    const auto m = wl::by_name(name);
    for (std::size_t i = 0; i < m.size(); ++i)
      for (std::size_t j = i + 1; j < m.size(); ++j)
        EXPECT_GT(chem::distance(m.atom(i).pos, m.atom(j).pos),
                  0.8 * chem::kBohrPerAngstrom)
            << name << " atoms " << i << "," << j;
  }
}

TEST(Geometries, BondedNeighborsAreChemical) {
  // Each atom in PC has at least one neighbor within 1.8 A.
  const auto m = wl::propylene_carbonate();
  for (std::size_t i = 0; i < m.size(); ++i) {
    double nearest = 1e9;
    for (std::size_t j = 0; j < m.size(); ++j)
      if (i != j)
        nearest =
            std::min(nearest, chem::distance(m.atom(i).pos, m.atom(j).pos));
    EXPECT_LT(nearest, 1.8 * chem::kBohrPerAngstrom) << "atom " << i;
  }
}

TEST(Geometries, PcScfConverges) {
  // The central application molecule must be SCF-stable in STO-3G.
  const auto m = wl::propylene_carbonate();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  mthfx::scf::ScfOptions opts;
  opts.hfx.eps_schwarz = 1e-9;
  const auto r = mthfx::scf::rhf(m, basis, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.energy, -350.0);  // 54 electrons: deep total energy
  EXPECT_GT(r.energy, -400.0);
}

TEST(Replicate, CountsAndCharges) {
  const auto unit = wl::water();
  const auto cluster = wl::replicate(unit, {2, 2, 2, 12.0});
  EXPECT_EQ(cluster.size(), 8 * 3u);
  EXPECT_EQ(cluster.num_electrons(), 80);
}

TEST(Replicate, SpacingIsRespected) {
  const auto unit = wl::water();
  const auto cluster = wl::replicate(unit, {2, 1, 1, 15.0});
  // Same atom of the two copies is exactly one lattice vector apart.
  EXPECT_NEAR(chem::distance(cluster.atom(0).pos, cluster.atom(3).pos), 15.0,
              1e-12);
}

TEST(Replicate, LatticeForCountCoversRequest) {
  for (int count : {1, 2, 7, 8, 9, 27, 50, 100}) {
    const auto spec = wl::lattice_for_count(count);
    EXPECT_GE(spec.nx * spec.ny * spec.nz, count) << count;
    // Not absurdly oversized.
    EXPECT_LE(spec.nx * spec.ny * spec.nz, 2 * count + 8) << count;
  }
}

TEST(Replicate, LatticeForCountExactShapes) {
  // Perfect cubes get the exact cube.
  for (int n : {1, 2, 3, 4}) {
    const auto spec = wl::lattice_for_count(n * n * n);
    EXPECT_EQ(spec.nx, n);
    EXPECT_EQ(spec.ny, n);
    EXPECT_EQ(spec.nz, n);
  }
  // Non-cubes trim full z-layers off the covering cube.
  const auto five = wl::lattice_for_count(5);  // 2x2 base, two layers
  EXPECT_EQ(five.nx, 2);
  EXPECT_EQ(five.ny, 2);
  EXPECT_EQ(five.nz, 2);
  const auto nine = wl::lattice_for_count(9);  // 3x3 base, one layer
  EXPECT_EQ(nine.nx, 3);
  EXPECT_EQ(nine.ny, 3);
  EXPECT_EQ(nine.nz, 1);
}

TEST(Replicate, LatticeForCountLayerCountIsMinimal) {
  // Given the nx = ny = ceil(cbrt) base, one fewer z-layer would not
  // cover the request.
  for (int count = 1; count <= 80; ++count) {
    const auto spec = wl::lattice_for_count(count);
    EXPECT_GE(spec.nx * spec.ny * spec.nz, count) << count;
    EXPECT_LT(spec.nx * spec.ny * (spec.nz - 1), count) << count;
  }
}

TEST(Replicate, ClusterOfExactCounts) {
  const auto unit = wl::water();
  for (int count : {1, 2, 5, 9, 12}) {
    const auto cluster = wl::cluster_of(unit, count);
    EXPECT_EQ(cluster.size(), static_cast<std::size_t>(count) * unit.size());
    EXPECT_EQ(cluster.num_electrons(), 10 * count);
  }
  // Charged units accumulate charge per copy.
  EXPECT_EQ(wl::cluster_of(wl::lithium_superoxide_anion(), 3).charge(), -3);
}

TEST(Replicate, ClusterOfPlacesCopiesRowMajor) {
  // count=3 covers with a 2x2x1 lattice; the first three row-major sites
  // are (0,0,0), (0,1,0), (1,0,0).
  const auto unit = wl::h2();
  const double s = 10.0;
  const auto cluster = wl::cluster_of(unit, 3, s);
  ASSERT_EQ(cluster.size(), 6u);
  const auto base = unit.atom(0).pos;
  EXPECT_EQ(cluster.atom(0).pos, base);
  EXPECT_NEAR(cluster.atom(2).pos[1] - base[1], s, 1e-14);
  EXPECT_NEAR(cluster.atom(2).pos[0] - base[0], 0.0, 1e-14);
  EXPECT_NEAR(cluster.atom(4).pos[0] - base[0], s, 1e-14);
  EXPECT_NEAR(cluster.atom(4).pos[1] - base[1], 0.0, 1e-14);
}

TEST(ReactionPath, LinearEndpointsExact) {
  auto a = wl::h2();
  auto b = wl::h2();
  b.set_position(1, {0, 0, 2.8});
  const auto path = wl::linear_path(a, b, 5);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_NEAR(path.front().atom(1).pos[2], 1.4, 1e-14);
  EXPECT_NEAR(path.back().atom(1).pos[2], 2.8, 1e-14);
  EXPECT_NEAR(path[2].atom(1).pos[2], 2.1, 1e-14);  // midpoint
}

TEST(ReactionPath, RejectsMismatchedEndpoints) {
  EXPECT_THROW(wl::linear_path(wl::h2(), wl::water(), 4),
               std::invalid_argument);
  EXPECT_THROW(wl::linear_path(wl::h2(), wl::h2(), 1), std::invalid_argument);
}

TEST(ReactionPath, ApproachPathMovesAttackerOnly) {
  const auto sub = wl::water();
  const auto att = wl::hydroxide();
  const auto path =
      wl::approach_path(sub, att, {0, 0, 12.0}, {0, 0, 5.0}, 4);
  ASSERT_EQ(path.size(), 4u);
  for (const auto& img : path) {
    EXPECT_EQ(img.size(), sub.size() + att.size());
    EXPECT_EQ(img.charge(), -1);
    // Substrate atoms fixed.
    for (std::size_t i = 0; i < sub.size(); ++i)
      EXPECT_EQ(img.atom(i).pos, sub.atom(i).pos);
  }
  // Attacker O moves from +12 to +5 in z.
  EXPECT_NEAR(path.front().atom(sub.size()).pos[2], 12.0, 1e-12);
  EXPECT_NEAR(path.back().atom(sub.size()).pos[2], 5.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Liquid-like boxes (workload::box_of).

TEST(BoxOf, ExactAtomAndElectronCounts) {
  const auto pc = wl::propylene_carbonate();
  for (int count : {1, 7, 8, 27}) {
    const auto box = wl::box_of(pc, count, 1.205, 42);
    EXPECT_EQ(box.size(), pc.size() * static_cast<std::size_t>(count));
    EXPECT_EQ(box.num_electrons(),
              pc.num_electrons() * count);
  }
}

TEST(BoxOf, DeterministicInSeed) {
  const auto pc = wl::propylene_carbonate();
  const auto a = wl::box_of(pc, 8, 1.205, 7);
  const auto b = wl::box_of(pc, 8, 1.205, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.atom(i).pos.x, b.atom(i).pos.x);
    EXPECT_DOUBLE_EQ(a.atom(i).pos.y, b.atom(i).pos.y);
    EXPECT_DOUBLE_EQ(a.atom(i).pos.z, b.atom(i).pos.z);
  }
}

TEST(BoxOf, DifferentSeedsDiffer) {
  const auto pc = wl::propylene_carbonate();
  const auto a = wl::box_of(pc, 8, 1.205, 0);
  const auto b = wl::box_of(pc, 8, 1.205, 1);
  double max_dev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    max_dev = std::max(max_dev,
                       chem::distance(a.atom(i).pos, b.atom(i).pos));
  EXPECT_GT(max_dev, 0.1);
}

TEST(BoxOf, RespectsMinimumDistanceWithSlack) {
  // At a low density the lattice has room, so the floor must hold
  // exactly (inter-copy only; intra-molecular bonds are shorter by
  // construction).
  const auto pc = wl::propylene_carbonate();
  const double min_dist = 3.0;
  const auto box = wl::box_of(pc, 8, 0.4, 5, min_dist);
  const std::size_t per = pc.size();
  for (std::size_t i = 0; i < box.size(); ++i)
    for (std::size_t j = i + 1; j < box.size(); ++j) {
      if (i / per == j / per) continue;
      EXPECT_GE(chem::distance(box.atom(i).pos, box.atom(j).pos), min_dist)
          << "atoms " << i << "," << j;
    }
}

TEST(BoxOf, LiquidDensityKeepsBestEffortSeparation) {
  // At the true PC liquid density a rigid lattice cannot honor a 3-bohr
  // floor everywhere; the packer must keep the best draw, never a
  // physically absurd overlap.
  const auto pc = wl::propylene_carbonate();
  const auto box = wl::box_of(pc, 8, 1.205, 5);
  const std::size_t per = pc.size();
  double min_sep = 1e300;
  for (std::size_t i = 0; i < box.size(); ++i)
    for (std::size_t j = i + 1; j < box.size(); ++j) {
      if (i / per == j / per) continue;
      min_sep = std::min(min_sep,
                         chem::distance(box.atom(i).pos, box.atom(j).pos));
    }
  EXPECT_GT(min_sep, 1.2);  // worst contact still a bonded-scale distance
}

TEST(BoxOf, SpacingReproducesDensity) {
  // PC: C4H6O3, molar mass 102.089 g/mol; at 1.205 g/cm3 the volume per
  // molecule is m/rho -> spacing = cbrt(V). Cross-check the constant
  // chain against an independent hand evaluation: 102.089 amu =
  // 1.6952e-22 g, V = 1.4068e-22 cm3, cbrt = 5.2e-8 cm = 5.20 A.
  const auto pc = wl::propylene_carbonate();
  const double spacing = wl::box_spacing_bohr(pc, 1.205);
  EXPECT_NEAR(spacing * 0.529177210903, 5.20, 0.02);  // bohr -> angstrom
  // Halving the density must scale the spacing by 2^(1/3).
  EXPECT_NEAR(wl::box_spacing_bohr(pc, 1.205 / 2.0) / spacing,
              std::cbrt(2.0), 1e-12);
}
