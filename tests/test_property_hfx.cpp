// Property-based tests of the integral and HFX layers: seeded random
// molecules/densities/configs, checked against metamorphic invariants
// and the slow dense oracles. Iteration count comes from
// MTHFX_PROPERTY_ITERS (default 50); a failing case prints a one-line
// repro command plus a shrunk witness.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "hfx/fock_builder.hpp"
#include "linalg/matrix.hpp"
#include "support/property_gtest.hpp"
#include "testing/generators.hpp"
#include "testing/invariants.hpp"
#include "testing/oracles.hpp"
#include "testing/property.hpp"
#include "testing/rng.hpp"

namespace chem = mthfx::chem;
namespace hfx = mthfx::hfx;
namespace la = mthfx::linalg;
namespace mt = mthfx::testing;

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

// The harness itself must be deterministic: same seed, same stream.
TEST(PropertyHarness, SeedsAreDeterministic) {
  mt::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(mt::iteration_seed(7, 3), mt::iteration_seed(7, 3));
  EXPECT_NE(mt::iteration_seed(7, 3), mt::iteration_seed(7, 4));
  EXPECT_NE(mt::iteration_seed(7, 3), mt::iteration_seed(8, 3));

  // Generators are a pure function of the rng stream.
  mt::Rng g1(99), g2(99);
  const auto m1 = mt::random_molecule(g1);
  const auto m2 = mt::random_molecule(g2);
  ASSERT_EQ(m1.size(), m2.size());
  EXPECT_TRUE(m1 == m2);
}

TEST(PropertyHarness, ShrinkerMinimizesAndKeepsFailure) {
  // Synthetic predicate: fails iff the molecule still contains >= 2 O
  // atoms. The shrinker must strip everything else and land on exactly
  // the minimal 2-oxygen witness, downgraded to the smallest basis.
  mt::Rng rng(123);
  mt::MoleculeSpec spec;
  spec.min_atoms = 6;
  spec.max_atoms = 6;
  spec.elements = {8};  // all O so the witness surely exists
  const auto mol = mt::random_molecule(rng, spec);
  const auto fails = [](const chem::Molecule& m, const std::string&) {
    std::size_t oxygens = 0;
    for (const auto& a : m.atoms()) oxygens += (a.z == 8);
    return oxygens >= 2;
  };
  const auto shrunk = mt::shrink_failing_case(mol, "6-31g", fails);
  EXPECT_EQ(shrunk.molecule.size(), 2u);
  EXPECT_EQ(shrunk.basis, "sto-3g");
  EXPECT_TRUE(fails(shrunk.molecule, shrunk.basis));
  EXPECT_GE(shrunk.steps, 5u);
  EXPECT_FALSE(mt::describe_case(shrunk.molecule, shrunk.basis).empty());
}

// --- Metamorphic invariants on generated inputs ------------------------

TEST(PropertyHfx, EriPermutationSymmetry) {
  MTHFX_PROPERTY(
      "PropertyHfx.EriPermutationSymmetry",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        auto res = mt::check_eri_permutation_symmetry(basis, rng, 12);
        if (res.ok) return "";
        return mt::with_shrunk_case(
            res.detail, mol, name,
            [&rng](const chem::Molecule& m, const std::string& b) {
              const auto shrunk_basis = chem::BasisSet::build(m, b);
              mt::Rng local = rng.fork(0xe81);
              return !mt::check_eri_permutation_symmetry(shrunk_basis, local,
                                                         12)
                          .ok;
            });
      });
}

TEST(PropertyHfx, SchwarzBoundNeverViolated) {
  MTHFX_PROPERTY(
      "PropertyHfx.SchwarzBoundNeverViolated",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        auto res = mt::check_schwarz_bound(basis);
        if (res.ok) return "";
        return mt::with_shrunk_case(
            res.detail, mol, name,
            [](const chem::Molecule& m, const std::string& b) {
              return !mt::check_schwarz_bound(chem::BasisSet::build(m, b)).ok;
            });
      });
}

TEST(PropertyHfx, JkHermitianAndTraceIdentities) {
  MTHFX_PROPERTY(
      "PropertyHfx.JkHermitianAndTraceIdentities",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto p =
            mt::random_symmetric_density(rng, basis.num_functions());

        hfx::HfxOptions opts = mt::random_hfx_options(rng);
        hfx::FockBuilder builder(basis, opts);
        const auto jk = builder.coulomb_exchange(p);

        if (auto res = mt::check_hermitian(jk.k, 1e-12, "K"); !res.ok)
          return res.detail;
        if (auto res = mt::check_hermitian(jk.j, 1e-12, "J"); !res.ok)
          return res.detail;

        // Scalar anchors computed straight from the naive tensor, never
        // through a J/K matrix. Must match tr-based energies within the
        // screening error bound (scaled by ||P|| for the extra trace
        // contraction).
        const auto tensor = mt::naive_eri_tensor(basis);
        const double ej_ref =
            mt::coulomb_energy_from_tensor(basis, tensor, p);
        const double ek_ref =
            mt::exchange_energy_from_tensor(basis, tensor, p);
        const double ej = 0.5 * la::trace_product(p, jk.j);
        const double ek = 0.5 * la::trace_product(p, jk.k);
        const double pmax = la::max_abs(p);
        const double bound =
            mt::screening_error_bound(jk.stats, opts, pmax) *
                static_cast<double>(basis.num_functions() *
                                    basis.num_functions()) * pmax +
            1e-9 * std::max(1.0, std::abs(ej_ref));
        if (std::abs(ej - ej_ref) > bound)
          return "Coulomb trace identity violated: 0.5 tr(PJ) = " + fmt(ej) +
                 " vs tensor " + fmt(ej_ref) + " (bound " + fmt(bound) + ")";
        if (std::abs(ek - ek_ref) > bound)
          return "Exchange trace identity violated: 0.5 tr(PK) = " + fmt(ek) +
                 " vs tensor " + fmt(ek_ref) + " (bound " + fmt(bound) + ")";
        return "";
      });
}

TEST(PropertyHfx, TighteningEpsSchwarzShrinksKError) {
  MTHFX_PROPERTY(
      "PropertyHfx.TighteningEpsSchwarzShrinksKError",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto p =
            mt::random_symmetric_density(rng, basis.num_functions());
        const auto ref = mt::dense_jk_reference(basis, p);

        double last_err = std::numeric_limits<double>::infinity();
        for (const double eps : {1e-4, 1e-7, 1e-10, 1e-13}) {
          hfx::HfxOptions opts;
          opts.eps_schwarz = eps;
          opts.num_threads = 1;
          const auto k = hfx::FockBuilder(basis, opts).exchange(p).k;
          const double err = la::max_abs(k - ref.k);
          // Monotone within a sliver of slack for error cancellation.
          if (err > last_err * 1.05 + 1e-13)
            return "K error grew when tightening eps_schwarz to " + fmt(eps) +
                   ": " + fmt(err) + " > " + fmt(last_err);
          last_err = std::min(last_err, err);
        }
        if (last_err > 1e-9)
          return "K error did not vanish at tight eps_schwarz: " +
                 fmt(last_err);
        return "";
      });
}

TEST(PropertyHfx, ScreenedErrorWithinDerivedBound) {
  MTHFX_PROPERTY(
      "PropertyHfx.ScreenedErrorWithinDerivedBound",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto p =
            mt::random_symmetric_density(rng, basis.num_functions());
        const auto ref = mt::dense_jk_reference(basis, p);

        hfx::HfxOptions opts = mt::random_hfx_options(rng);
        const auto result = hfx::FockBuilder(basis, opts).exchange(p);
        const double err = la::max_abs(result.k - ref.k);
        const double bound = mt::screening_error_bound(
            result.stats, opts, la::max_abs(p));
        if (err > bound)
          return "screened K error " + fmt(err) +
                 " exceeds derived bound " + fmt(bound) + " at eps_schwarz " +
                 fmt(opts.eps_schwarz);
        return "";
      });
}

TEST(PropertyHfx, TaskGranularityDoesNotChangeK) {
  MTHFX_PROPERTY(
      "PropertyHfx.TaskGranularityDoesNotChangeK",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto p =
            mt::random_symmetric_density(rng, basis.num_functions());

        hfx::HfxOptions base;
        base.eps_schwarz = 1e-12;
        base.num_threads = 1;
        const auto k0 = hfx::FockBuilder(basis, base).exchange(p).k;

        hfx::HfxOptions alt = base;
        alt.target_task_cost = rng.uniform(1.0, 1e5);
        const auto k1 = hfx::FockBuilder(basis, alt).exchange(p).k;
        const double diff = la::max_abs(k1 - k0);
        // Same quartets, same serial digestion order within each bra
        // sweep — only task boundaries move, so agreement is tight.
        if (diff > 1e-12)
          return "task granularity changed K by " + fmt(diff) +
                 " (target_task_cost " + fmt(alt.target_task_cost) + ")";
        return "";
      });
}

// Serial reduction oracle: the sum of thread-private parts must not
// depend on part boundaries.
TEST(PropertyHfx, SerialReduceMatchesDirectSum) {
  MTHFX_PROPERTY(
      "PropertyHfx.SerialReduceMatchesDirectSum",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const std::size_t n = 3 + rng.index(6);
        const std::size_t parts = 1 + rng.index(8);
        std::vector<la::Matrix> ms;
        la::Matrix direct(n, n);
        for (std::size_t t = 0; t < parts; ++t) {
          la::Matrix m(n, n);
          for (double& v : m.flat()) v = rng.uniform(-1.0, 1.0);
          direct += m;
          ms.push_back(std::move(m));
        }
        const la::Matrix reduced = mt::serial_reduce(ms);
        if (la::max_abs(reduced - direct) > 0.0)
          return "serial_reduce disagrees with direct accumulation";
        return "";
      });
}
