#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "ints/eri.hpp"
#include "ints/eri_batch.hpp"
#include "ints/schwarz.hpp"

namespace chem = mthfx::chem;
namespace ints = mthfx::ints;

namespace {

chem::Molecule h2_molecule(double r_bohr = 1.4) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, r_bohr});
  return m;
}

}  // namespace

// Szabo–Ostlund H2/STO-3G ERI reference values (chemists' notation).
TEST(Eri, H2Sto3gReferenceValues) {
  const auto m = h2_molecule();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto t = ints::eri_tensor(basis);
  const std::size_t n = basis.num_functions();
  auto at = [&](std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    return t[((i * n + j) * n + k) * n + l];
  };
  EXPECT_NEAR(at(0, 0, 0, 0), 0.7746, 2e-4);
  EXPECT_NEAR(at(0, 0, 1, 1), 0.5697, 2e-4);
  EXPECT_NEAR(at(1, 0, 0, 0), 0.4441, 2e-4);
  EXPECT_NEAR(at(1, 0, 1, 0), 0.2970, 2e-4);
}

TEST(Eri, EightFoldPermutationalSymmetry) {
  const auto m = chem::Molecule::from_xyz(
      "3\nwater\nO 0.0 0.0 0.1173\nH 0.0 0.7572 -0.4692\nH 0.0 -0.7572 "
      "-0.4692\n");
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto t = ints::eri_tensor(basis);
  const std::size_t n = basis.num_functions();
  auto at = [&](std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    return t[((i * n + j) * n + k) * n + l];
  };
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l <= k; ++l) {
          const double v = at(i, j, k, l);
          EXPECT_NEAR(at(j, i, k, l), v, 1e-11);
          EXPECT_NEAR(at(i, j, l, k), v, 1e-11);
          EXPECT_NEAR(at(k, l, i, j), v, 1e-11);
          EXPECT_NEAR(at(l, k, j, i), v, 1e-11);
        }
}

TEST(Eri, DiagonalElementsArePositive) {
  // (ij|ij) >= 0: it is a Coulomb self-repulsion.
  const auto m = h2_molecule(1.2);
  const auto basis = chem::BasisSet::build(m, "6-31g");
  const auto t = ints::eri_tensor(basis);
  const std::size_t n = basis.num_functions();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_GE(t[((i * n + j) * n + i) * n + j], -1e-12);
}

TEST(Eri, SchwarzInequalityHolds) {
  const auto m = chem::Molecule::from_xyz(
      "3\nwater\nO 0.0 0.0 0.1173\nH 0.0 0.7572 -0.4692\nH 0.0 -0.7572 "
      "-0.4692\n");
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto q = ints::schwarz_bounds(basis);
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa)
    for (std::size_t sb = 0; sb < basis.num_shells(); ++sb)
      for (std::size_t sc = 0; sc < basis.num_shells(); ++sc)
        for (std::size_t sd = 0; sd < basis.num_shells(); ++sd) {
          const auto block =
              ints::eri_shell_quartet(basis.shell(sa), basis.shell(sb),
                                      basis.shell(sc), basis.shell(sd));
          double mx = 0.0;
          for (double v : block.values) mx = std::max(mx, std::abs(v));
          EXPECT_LE(mx, q(sa, sb) * q(sc, sd) + 1e-12)
              << sa << sb << sc << sd;
        }
}

// Regression (found by PropertyHfx.SchwarzBoundNeverViolated): for a
// distant pair the kernel's primitive cutoff makes the computed (ab|ab)
// exactly 0, but cross integrals against that pair still compute at
// ~1e-16. The bound table must floor sub-noise diagonals at the kernel's
// truncation scale so (a) the Schwarz inequality holds for *computed*
// integrals with no additive fudge — only a few-ulp relative slack for
// the sqrt/product rounding of the bound itself — and (b) no pair's
// bound is exactly 0: a zero bound drops the pair at any eps, so
// eps -> 0 would never recover the unscreened result.
TEST(Eri, SchwarzBoundsSurviveUnderflowingDiagonals) {
  // Shrunk witness from the property harness (coordinates in Angstrom).
  const auto m = chem::Molecule::from_xyz(
      "2\ndistant LiO\nLi 3.1867180343 0.0300792487 2.8296176852\n"
      "O 0.5649454403 2.3480062295 1.8925279138\n");
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto q = ints::schwarz_bounds(basis);
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa)
    for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
      EXPECT_GT(q(sa, sb), 0.0) << "zero Schwarz bound for pair " << sa
                                << "," << sb;
      for (std::size_t sc = 0; sc < basis.num_shells(); ++sc)
        for (std::size_t sd = 0; sd < basis.num_shells(); ++sd) {
          const auto block =
              ints::eri_shell_quartet(basis.shell(sa), basis.shell(sb),
                                      basis.shell(sc), basis.shell(sd));
          double mx = 0.0;
          for (double v : block.values) mx = std::max(mx, std::abs(v));
          // (1 + 1e-14): self-quartets saturate the bound exactly, and
          // q*q = sqrt(mx)^2 can round a few ulp below mx.
          EXPECT_LE(mx, q(sa, sb) * q(sc, sd) * (1.0 + 1e-14))
              << sa << sb << sc << sd;
        }
    }
}

TEST(Eri, LongRangeDecaysAsOneOverR) {
  // Two well-separated s functions: (aa|bb) -> 1/R (point charges).
  for (double r : {10.0, 15.0, 20.0}) {
    const auto m = h2_molecule(r);
    const auto basis = chem::BasisSet::build(m, "sto-3g");
    const auto block = ints::eri_shell_quartet(basis.shell(0), basis.shell(0),
                                               basis.shell(1), basis.shell(1));
    EXPECT_NEAR(block(0, 0, 0, 0), 1.0 / r, 2e-4) << "R=" << r;
  }
}

TEST(Eri, TranslationInvariance) {
  auto m1 = h2_molecule();
  auto m2 = h2_molecule();
  m2.translate({1.0, 2.0, -0.5});
  const auto b1 = chem::BasisSet::build(m1, "sto-3g");
  const auto b2 = chem::BasisSet::build(m2, "sto-3g");
  const auto t1 = ints::eri_tensor(b1);
  const auto t2 = ints::eri_tensor(b2);
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_NEAR(t1[i], t2[i], 1e-11);
}

TEST(Eri, PShellQuartetsSymmetricUnderAxisRelabeling) {
  // A single O atom: (px px|px px) = (py py|py py) = (pz pz|pz pz).
  chem::Molecule m;
  m.add_atom(8, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto& p = basis.shell(2);  // 2p shell
  const auto block = ints::eri_shell_quartet(p, p, p, p);
  EXPECT_NEAR(block(0, 0, 0, 0), block(1, 1, 1, 1), 1e-12);
  EXPECT_NEAR(block(0, 0, 0, 0), block(2, 2, 2, 2), 1e-12);
}

TEST(Eri, DShellBlockShape) {
  chem::Molecule m;
  m.add_atom(6, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "6-31g*");
  const auto& d = basis.shells().back();
  ASSERT_EQ(d.l(), 2);
  const auto& s = basis.shell(0);
  const auto block = ints::eri_shell_quartet(d, s, d, s);
  EXPECT_EQ(block.na, 6u);
  EXPECT_EQ(block.nc, 6u);
  EXPECT_EQ(block.values.size(), 36u);
  // (d_i s | d_i s) diagonal positive.
  for (std::size_t i = 0; i < 6; ++i) EXPECT_GT(block(i, 0, i, 0), 0.0);
}

// ---------------------------------------------------------------- batched

TEST(EriBatched, MatchesScalarOnRaggedMixedStreams) {
  // All shell-pair quartets of a C/O dimer in 6-31g* (s, p and d shells,
  // same-center and cross-center pairs), streamed at lengths that cover
  // a single-quartet batch, sub-width batches, exact-width batches and
  // ragged tails. Every block must match the scalar sparse kernel to
  // well inside the 1e-12 agreement budget.
  chem::Molecule m;
  m.add_atom(6, {0, 0, 0});
  m.add_atom(8, {0, 0, 2.1});
  const auto basis = chem::BasisSet::build(m, "6-31g*");
  const std::size_t ns = basis.num_shells();

  std::vector<ints::ShellPairHermite> pairs;
  pairs.reserve(ns * (ns + 1) / 2);
  for (std::size_t i = 0; i < ns; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      pairs.emplace_back(basis.shell(i), basis.shell(j),
                         ints::EriKernel::kBatched);

  std::vector<ints::QuartetRef> stream;
  for (const auto& bra : pairs)
    for (const auto& ket : pairs) stream.push_back({&bra, &ket});

  for (const std::size_t len :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{9},
        std::size_t{17}, stream.size()}) {
    ASSERT_LE(len, stream.size());
    std::vector<ints::EriBlock> out(len);
    ints::eri_shell_quartet_batched({stream.data(), len}, out.data());
    for (std::size_t q = 0; q < len; ++q) {
      ints::EriBlock ref;
      ints::eri_shell_quartet(*stream[q].bra, *stream[q].ket, ref);
      ASSERT_EQ(out[q].values.size(), ref.values.size()) << "quartet " << q;
      for (std::size_t v = 0; v < ref.values.size(); ++v)
        EXPECT_NEAR(out[q].values[v], ref.values[v], 1e-12)
            << "len=" << len << " quartet=" << q << " element=" << v;
    }
  }
}

TEST(EriBatched, RepeatedCallsAreDeterministic) {
  // Same stream twice -> bit-identical blocks (batch formation is a pure
  // function of the stream, and scratch reuse must not leak state).
  const auto m = h2_molecule();
  const auto basis = chem::BasisSet::build(m, "6-31g");
  const std::size_t ns = basis.num_shells();
  std::vector<ints::ShellPairHermite> pairs;
  pairs.reserve(ns * (ns + 1) / 2);
  for (std::size_t i = 0; i < ns; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      pairs.emplace_back(basis.shell(i), basis.shell(j),
                         ints::EriKernel::kBatched);
  std::vector<ints::QuartetRef> stream;
  for (const auto& bra : pairs)
    for (const auto& ket : pairs) stream.push_back({&bra, &ket});

  std::vector<ints::EriBlock> first(stream.size()), second(stream.size());
  ints::eri_shell_quartet_batched({stream.data(), stream.size()},
                                  first.data());
  ints::eri_shell_quartet_batched({stream.data(), stream.size()},
                                  second.data());
  for (std::size_t q = 0; q < stream.size(); ++q)
    for (std::size_t v = 0; v < first[q].values.size(); ++v)
      EXPECT_EQ(first[q].values[v], second[q].values[v])
          << "quartet=" << q << " element=" << v;
}
