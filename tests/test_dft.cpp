#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "dft/functionals.hpp"
#include "dft/grid.hpp"
#include "dft/lebedev.hpp"
#include "dft/xc_integrator.hpp"
#include "scf/guess.hpp"
#include "ints/one_electron.hpp"
#include "linalg/eigen.hpp"

namespace chem = mthfx::chem;
namespace dft = mthfx::dft;
namespace la = mthfx::linalg;

class LebedevOrders : public ::testing::TestWithParam<int> {};

TEST_P(LebedevOrders, WeightsSumToOne) {
  const auto g = dft::lebedev_grid(GetParam());
  EXPECT_EQ(static_cast<int>(g.size()), GetParam());
  double w = 0.0;
  for (const auto& p : g) w += p.weight;
  EXPECT_NEAR(w, 1.0, 1e-13);
}

TEST_P(LebedevOrders, PointsOnUnitSphere) {
  for (const auto& p : dft::lebedev_grid(GetParam()))
    EXPECT_NEAR(p.x * p.x + p.y * p.y + p.z * p.z, 1.0, 1e-13);
}

TEST_P(LebedevOrders, IntegratesLowHarmonicsExactly) {
  // ∫ Y dΩ / 4π: 1 -> 1, x -> 0, x^2 -> 1/3, xy -> 0, x^4+y^4+z^4 -> 3/5.
  const auto g = dft::lebedev_grid(GetParam());
  double one = 0, xm = 0, x2 = 0, xy = 0, quart = 0;
  for (const auto& p : g) {
    one += p.weight;
    xm += p.weight * p.x;
    x2 += p.weight * p.x * p.x;
    xy += p.weight * p.x * p.y;
    quart += p.weight * (std::pow(p.x, 4) + std::pow(p.y, 4) + std::pow(p.z, 4));
  }
  EXPECT_NEAR(one, 1.0, 1e-13);
  EXPECT_NEAR(xm, 0.0, 1e-13);
  EXPECT_NEAR(x2, 1.0 / 3.0, 1e-13);
  EXPECT_NEAR(xy, 0.0, 1e-13);
  if (GetParam() >= 14) EXPECT_NEAR(quart, 3.0 / 5.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(All, LebedevOrders,
                         ::testing::ValuesIn(dft::kLebedevOrders));

TEST(Lebedev, RejectsUnsupportedOrder) {
  EXPECT_THROW(dft::lebedev_grid(17), std::invalid_argument);
}

TEST(Lebedev, AtLeastSelectsNextOrder) {
  EXPECT_EQ(dft::lebedev_grid_at_least(7).size(), 14u);
  EXPECT_EQ(dft::lebedev_grid_at_least(999).size(), 50u);
}

TEST(Grid, BeckeWeightsPartitionUnity) {
  chem::Molecule m;
  m.add_atom(8, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.8});
  m.add_atom(3, {0, 2.5, 0});
  for (const chem::Vec3 p :
       {chem::Vec3{0.3, 0.3, 0.3}, chem::Vec3{0, 0, 1.0},
        chem::Vec3{-1, 2, 0.5}}) {
    double sum = 0.0;
    for (std::size_t a = 0; a < m.size(); ++a)
      sum += dft::becke_weight(m, a, p);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Grid, IntegratesSingleGaussian) {
  // ∫ exp(-a r^2) = (pi/a)^{3/2}.
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  dft::GridOptions opts;
  opts.radial_points = 60;
  dft::MolecularGrid grid(m, opts);
  const double a = 0.8;
  const double val = grid.integrate([&](const chem::Vec3& p) {
    return std::exp(-a * chem::dot(p, p));
  });
  EXPECT_NEAR(val, std::pow(std::numbers::pi / a, 1.5), 1e-6);
}

TEST(Grid, IntegratesOffCenterGaussianOnMultiAtomGrid) {
  chem::Molecule m;
  m.add_atom(8, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.8});
  dft::GridOptions opts;
  opts.radial_points = 60;
  opts.angular_points = 50;
  dft::MolecularGrid grid(m, opts);
  const chem::Vec3 c{0.0, 0.4, 0.9};
  const double a = 1.3;
  const double val = grid.integrate([&](const chem::Vec3& p) {
    const chem::Vec3 d = p - c;
    return std::exp(-a * chem::dot(d, d));
  });
  // Becke-grid relative accuracy at this resolution is ~1e-4.
  EXPECT_NEAR(val, std::pow(std::numbers::pi / a, 1.5), 1e-3);
}

TEST(Functionals, LdaExchangeClosedForm) {
  // e_x(rho) = -(3/4)(3/pi)^{1/3} rho^{4/3}.
  const double rho = 0.7;
  const double cx = 0.75 * std::cbrt(3.0 / std::numbers::pi);
  EXPECT_NEAR(dft::lda_exchange_energy_density(rho, 0.0),
              -cx * std::pow(rho, 4.0 / 3.0), 1e-14);
  EXPECT_DOUBLE_EQ(dft::lda_exchange_energy_density(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(dft::lda_exchange_energy_density(-1.0, 0.0), 0.0);
}

TEST(Functionals, PbeExchangeReducesToLdaAtZeroGradient) {
  for (double rho : {0.01, 0.3, 1.5, 10.0})
    EXPECT_NEAR(dft::pbe_exchange_energy_density(rho, 0.0),
                dft::lda_exchange_energy_density(rho, 0.0), 1e-13);
}

TEST(Functionals, PbeExchangeEnhancementBounded) {
  // Fx is bounded by 1 + kappa = 1.804 (the Lieb-Oxford-motivated bound).
  const double rho = 0.5;
  const double lda = dft::lda_exchange_energy_density(rho, 0.0);
  for (double sigma : {0.0, 0.1, 10.0, 1e4, 1e8}) {
    const double fx = dft::pbe_exchange_energy_density(rho, sigma) / lda;
    EXPECT_GE(fx, 1.0 - 1e-12);
    EXPECT_LE(fx, 1.804 + 1e-12);
  }
}

TEST(Functionals, PbeCorrelationReducesToPw92AtZeroGradient) {
  for (double rho : {0.05, 0.4, 2.0})
    EXPECT_NEAR(dft::pbe_correlation_energy_density(rho, 0.0),
                dft::pw92_correlation_energy_density(rho, 0.0), 1e-12);
}

TEST(Functionals, CorrelationIsNegative) {
  for (double rho : {0.01, 0.1, 1.0, 5.0}) {
    EXPECT_LT(dft::pw92_correlation_energy_density(rho, 0.0), 0.0);
    EXPECT_LT(dft::pbe_correlation_energy_density(rho, 0.5), 0.0);
  }
}

TEST(Functionals, LargeGradientSuppressesPbeCorrelation) {
  const double rho = 0.3;
  const double c0 = dft::pbe_correlation_energy_density(rho, 0.0);
  const double cbig = dft::pbe_correlation_energy_density(rho, 1e6);
  // H -> -eps_c as t -> inf, so rho(eps_c + H) -> 0^-.
  EXPECT_GT(cbig, c0);
  EXPECT_NEAR(cbig, 0.0, 1e-3);
}

TEST(Functionals, RegistryComposition) {
  const auto pbe0 = dft::make_functional("pbe0");
  EXPECT_DOUBLE_EQ(pbe0.exact_exchange, 0.25);
  EXPECT_TRUE(pbe0.needs_gradient);
  const double rho = 0.6, sigma = 0.2;
  EXPECT_NEAR(pbe0.energy_density(rho, sigma),
              0.75 * dft::pbe_exchange_energy_density(rho, sigma) +
                  dft::pbe_correlation_energy_density(rho, sigma),
              1e-14);
  EXPECT_DOUBLE_EQ(dft::make_functional("hf").energy_density(1.0, 1.0), 0.0);
  EXPECT_THROW(dft::make_functional("b3lyp?"), std::invalid_argument);
}

TEST(XcIntegrator, RecoversElectronCount) {
  const auto m = chem::Molecule::from_xyz(
      "3\nwater\nO 0.0 0.0 0.1173\nH 0.0 0.7572 -0.4692\nH 0.0 -0.7572 "
      "-0.4692\n");
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix p = mthfx::scf::core_guess_density(basis, m, x);

  dft::GridOptions gopts;
  gopts.radial_points = 50;
  gopts.angular_points = 50;
  dft::MolecularGrid grid(m, gopts);
  dft::XcIntegrator xc(basis, grid);
  EXPECT_NEAR(xc.integrate_density(p), 10.0, 5e-3);
}

TEST(XcIntegrator, LdaExchangeOfGaussianDensityClosedForm) {
  // A single normalized s-Gaussian phi, density P=2 |phi><phi| (2 e-):
  // rho = 2 phi^2 = 2 N^2 exp(-2 a r^2),
  // E_x = -Cx ∫ rho^{4/3} = -Cx (2 N^2)^{4/3} (pi / (8a/3))^{3/2}.
  chem::Molecule m;
  m.add_atom(2, {0, 0, 0});
  chem::BasisSet basis;
  const double a = 1.1;
  basis.add_shell(chem::Shell(0, 0, {0, 0, 0}, {a}, {1.0}));
  la::Matrix p(1, 1, {2.0});

  dft::GridOptions gopts;
  gopts.radial_points = 70;
  gopts.angular_points = 26;
  dft::MolecularGrid grid(m, gopts);
  dft::XcIntegrator xc(basis, grid);

  dft::Functional slater{"x", dft::lda_exchange_energy_density, 0.0, false};
  const auto res = xc.integrate(slater, p);

  const double n2 = std::pow(chem::primitive_norm(a, 0, 0, 0), 2);
  const double cx = 0.75 * std::cbrt(3.0 / std::numbers::pi);
  const double eref = -cx * std::pow(2.0 * n2, 4.0 / 3.0) *
                      std::pow(std::numbers::pi / (8.0 * a / 3.0), 1.5);
  EXPECT_NEAR(res.energy, eref, 1e-6);
  EXPECT_NEAR(res.integrated_density, 2.0, 1e-6);
}

TEST(XcIntegrator, PotentialMatchesEnergyDerivative) {
  // dE/dP_{mu nu} = V_{mu nu} (+ V_{nu mu} off-diagonal): check by finite
  // differences on a random symmetric perturbation of the density.
  const auto m = chem::Molecule::from_xyz(
      "3\nwater\nO 0.0 0.0 0.1173\nH 0.0 0.7572 -0.4692\nH 0.0 -0.7572 "
      "-0.4692\n");
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const la::Matrix x = la::inverse_sqrt(s);
  const la::Matrix p = mthfx::scf::core_guess_density(basis, m, x);

  dft::GridOptions gopts;
  gopts.radial_points = 30;
  gopts.angular_points = 26;
  dft::MolecularGrid grid(m, gopts);
  dft::XcIntegrator xc(basis, grid);
  const auto f = dft::make_functional("pbe");

  const auto base = xc.integrate(f, p);
  const double h = 1e-5;
  for (auto [mu, nu] : {std::pair<std::size_t, std::size_t>{0, 0},
                        {1, 3},
                        {2, 2}}) {
    la::Matrix pp = p;
    pp(mu, nu) += h;
    if (mu != nu) pp(nu, mu) += h;
    const auto plus = xc.integrate(f, pp);
    la::Matrix pm = p;
    pm(mu, nu) -= h;
    if (mu != nu) pm(nu, mu) -= h;
    const auto minus = xc.integrate(f, pm);
    const double fd = (plus.energy - minus.energy) / (2.0 * h);
    const double analytic =
        mu == nu ? base.v(mu, mu) : base.v(mu, nu) + base.v(nu, mu);
    EXPECT_NEAR(fd, analytic, 5e-6) << mu << "," << nu;
  }
}
