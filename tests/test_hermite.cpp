#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ints/boys.hpp"
#include "ints/hermite.hpp"

namespace ints = mthfx::ints;

namespace {

// Hermite Gaussian Lambda_t(x; p, P) = (d/dP)^t exp(-p (x-P)^2),
// evaluated by explicit differentiation up to t = 4.
double hermite_gaussian(int t, double x, double p, double pcen) {
  const double u = x - pcen;
  const double g = std::exp(-p * u * u);
  switch (t) {
    case 0: return g;
    case 1: return 2.0 * p * u * g;
    case 2: return (4.0 * p * p * u * u - 2.0 * p) * g;
    case 3: return (8.0 * p * p * p * u * u * u - 12.0 * p * p * u) * g;
    case 4:
      return (16.0 * std::pow(p, 4) * std::pow(u, 4) -
              48.0 * std::pow(p, 3) * u * u + 12.0 * p * p) *
             g;
    default: return 0.0;
  }
}

}  // namespace

class HermiteExpansion
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(HermiteExpansion, ReproducesGaussianProductPointwise) {
  // x_A^i x_B^j exp(-a x_A^2) exp(-b x_B^2) =
  //   sum_t E(i,j,t) Lambda_t(x; p, P)  — checked at sample points.
  const auto [i, j, abdist] = GetParam();
  const double a = 1.3, b = 0.7;
  const double ax = 0.0, bx = ax - abdist;
  const double p = a + b;
  const double pcen = (a * ax + b * bx) / p;

  const ints::HermiteE e(i, j, a, b, ax - bx);
  for (double x : {-1.5, -0.3, 0.0, 0.4, 1.1, 2.5}) {
    const double lhs = std::pow(x - ax, i) * std::pow(x - bx, j) *
                       std::exp(-a * (x - ax) * (x - ax)) *
                       std::exp(-b * (x - bx) * (x - bx));
    double rhs = 0.0;
    for (int t = 0; t <= i + j; ++t)
      rhs += e(i, j, t) * hermite_gaussian(t, x, p, pcen);
    EXPECT_NEAR(lhs, rhs, 1e-12) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Powers, HermiteExpansion,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2),
                       ::testing::Values(0.0, 0.8, 2.0)));

TEST(HermiteE, OutOfRangeIndicesAreZero) {
  const ints::HermiteE e(2, 2, 1.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(e(1, 1, 3), 0.0);   // t > i + j
  EXPECT_DOUBLE_EQ(e(2, 2, -1), 0.0);  // negative t (via guarded access)
}

TEST(HermiteE, SameCenterBaseCaseIsOne) {
  // E(0,0,0) = exp(-mu * 0) = 1 for coincident centers.
  const ints::HermiteE e(1, 1, 0.8, 1.9, 0.0);
  EXPECT_DOUBLE_EQ(e(0, 0, 0), 1.0);
}

TEST(HermiteR, BaseSliceMatchesBoysLadder) {
  // R(t,0,0) at PC = (x,0,0) relates to 1-D derivatives of F; check the
  // first two orders against analytic forms:
  // R(0,0,0) = F_0(p x^2); R(1,0,0) = dF_0/dx = -2 p x F_1(p x^2).
  const double p = 1.7, x = 0.65;
  const ints::HermiteR r(2, p, x, 0.0, 0.0);
  EXPECT_NEAR(r(0, 0, 0), ints::boys_single(0, p * x * x), 1e-13);
  EXPECT_NEAR(r(1, 0, 0), -2.0 * p * x * ints::boys_single(1, p * x * x),
              1e-12);
}

TEST(HermiteR, SecondDerivativeMatchesFiniteDifference) {
  // R(2,0,0) = d^2/dx^2 R(0,0,0) — finite-difference the base slice.
  const double p = 0.9, x = 0.8, h = 1e-4;
  const ints::HermiteR r(2, p, x, 0.0, 0.0);
  const ints::HermiteR rp(2, p, x + h, 0.0, 0.0);
  const ints::HermiteR rm(2, p, x - h, 0.0, 0.0);
  const double fd = (rp(0, 0, 0) - 2.0 * r(0, 0, 0) + rm(0, 0, 0)) / (h * h);
  EXPECT_NEAR(r(2, 0, 0), fd, 1e-5);
}

TEST(HermiteR, MixedDerivativeMatchesFiniteDifference) {
  // R(1,1,0) = d^2/dx dy R(0,0,0).
  const double p = 1.2, x = 0.5, y = -0.7, h = 1e-4;
  const ints::HermiteR r(2, p, x, y, 0.0);
  const ints::HermiteR rpp(2, p, x + h, y + h, 0.0);
  const ints::HermiteR rpm(2, p, x + h, y - h, 0.0);
  const ints::HermiteR rmp(2, p, x - h, y + h, 0.0);
  const ints::HermiteR rmm(2, p, x - h, y - h, 0.0);
  const double fd = (rpp(0, 0, 0) - rpm(0, 0, 0) - rmp(0, 0, 0) +
                     rmm(0, 0, 0)) /
                    (4.0 * h * h);
  EXPECT_NEAR(r(1, 1, 0), fd, 1e-5);
}

TEST(HermiteR, AxisPermutationSymmetry) {
  // Swapping PC components permutes the tensor indices.
  const double p = 1.1;
  const ints::HermiteR rxy(3, p, 0.4, 0.9, 0.0);
  const ints::HermiteR ryx(3, p, 0.9, 0.4, 0.0);
  EXPECT_NEAR(rxy(2, 1, 0), ryx(1, 2, 0), 1e-13);
  EXPECT_NEAR(rxy(0, 3, 0), ryx(3, 0, 0), 1e-13);
}

TEST(HermiteR, ZeroDistanceOddOrdersVanish) {
  const ints::HermiteR r(3, 2.0, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(r(1, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(0, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(1, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(r(3, 0, 0), 0.0);
  // Even orders finite.
  EXPECT_LT(r(2, 0, 0), 0.0);  // -2p F_1(0) < 0
}
