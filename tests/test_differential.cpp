// Differential tests: the production screened/threaded HFX paths versus
// the slow-but-obviously-correct oracles in src/testing, across every
// schedule policy and several thread counts, on seeded generated inputs.
// This is the layer that turns "the fast path looks right on water"
// into "the fast path agrees with brute force on anything we can draw".

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "hfx/fock_builder.hpp"
#include "ints/eri.hpp"
#include "ints/eri_batch.hpp"
#include "linalg/matrix.hpp"
#include "scf/rhf.hpp"
#include "support/property_gtest.hpp"
#include "testing/generators.hpp"
#include "testing/invariants.hpp"
#include "testing/oracles.hpp"
#include "testing/property.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace hfx = mthfx::hfx;
namespace la = mthfx::linalg;
namespace mt = mthfx::testing;
namespace scf = mthfx::scf;

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

const char* schedule_name(hfx::HfxSchedule s) {
  switch (s) {
    case hfx::HfxSchedule::kDynamicBag: return "dynamic-bag";
    case hfx::HfxSchedule::kStaticBlock: return "static-block";
    case hfx::HfxSchedule::kStaticCyclic: return "static-cyclic";
    case hfx::HfxSchedule::kWorkStealing: return "work-stealing";
  }
  return "?";
}

}  // namespace

// The production tensor builder (pair-data reuse) against the naive
// one-pass oracle, element by element.
TEST(Differential, EriTensorMatchesNaiveOnePass) {
  MTHFX_PROPERTY(
      "Differential.EriTensorMatchesNaiveOnePass",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto fast = mthfx::ints::eri_tensor(basis);
        const auto naive = mt::naive_eri_tensor(basis);
        if (fast.size() != naive.size())
          return "tensor size mismatch";
        for (std::size_t i = 0; i < fast.size(); ++i)
          if (std::abs(fast[i] - naive[i]) > 1e-12)
            return "tensor element " + std::to_string(i) + " differs: " +
                   fmt(fast[i]) + " vs naive " + fmt(naive[i]);
        return "";
      });
}

// The explicit-orbit-deduplication J/K against the dense contraction —
// two independent derivations of the same matrices from one tensor.
TEST(Differential, OrbitOracleMatchesDenseContraction) {
  MTHFX_PROPERTY(
      "Differential.OrbitOracleMatchesDenseContraction",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto p = mt::random_symmetric_density(rng, basis.num_functions());
        const auto tensor = mt::naive_eri_tensor(basis);
        const auto dense = mt::contract_jk(basis, tensor, p);
        const auto orbit = mt::orbit_jk_reference(basis, tensor, p);
        const double jdiff = la::max_abs(dense.j - orbit.j);
        const double kdiff = la::max_abs(dense.k - orbit.k);
        if (jdiff > 1e-11 || kdiff > 1e-11)
          return "orbit oracle disagrees with dense contraction: |dJ| " +
                 fmt(jdiff) + " |dK| " + fmt(kdiff);
        return "";
      });
}

// The paper's central claim, as a property: the screened, threaded,
// task-parallel build agrees with unscreened brute force within the
// eps_schwarz-derived bound — for every schedule policy.
TEST(Differential, ScreenedBuildMatchesBruteForceAcrossSchedules) {
  MTHFX_PROPERTY(
      "Differential.ScreenedBuildMatchesBruteForceAcrossSchedules",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto p = mt::random_symmetric_density(rng, basis.num_functions());
        const auto ref = mt::dense_jk_reference(basis, p);
        const double pmax = la::max_abs(p);

        hfx::HfxOptions opts = mt::random_hfx_options(rng);
        for (const auto schedule : mt::all_schedules()) {
          opts.schedule = schedule;
          hfx::FockBuilder builder(basis, opts);
          const auto jk = builder.coulomb_exchange(p);
          const double kerr = la::max_abs(jk.k - ref.k);
          const double jerr = la::max_abs(jk.j - ref.j);
          const double bound =
              mt::screening_error_bound(jk.stats, opts, pmax);
          if (kerr > bound || jerr > bound)
            return std::string("schedule ") + schedule_name(schedule) +
                   " (threads " + std::to_string(opts.num_threads) +
                   ", eps " + fmt(opts.eps_schwarz) + "): |dK| " + fmt(kerr) +
                   " |dJ| " + fmt(jerr) + " exceeds bound " + fmt(bound);
        }
        return "";
      });
}

// Thread count must be invisible in the result (to reduction-order
// rounding) for every schedule, on generated inputs.
TEST(Differential, ThreadCountIsInvisibleAcrossSchedules) {
  MTHFX_PROPERTY(
      "Differential.ThreadCountIsInvisibleAcrossSchedules",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::random_molecule(rng);
        const auto name = mt::random_basis_name(rng, mol);
        const auto basis = chem::BasisSet::build(mol, name);
        const auto p = mt::random_symmetric_density(rng, basis.num_functions());

        hfx::HfxOptions serial;
        serial.eps_schwarz = 1e-12;
        serial.num_threads = 1;
        const auto k0 = hfx::FockBuilder(basis, serial).exchange(p).k;

        // One random schedule and thread count per case; the sweep over
        // all combinations lives in test_hfx's fixed-seed regression.
        hfx::HfxOptions par = serial;
        par.schedule = mt::all_schedules()[rng.index(4)];
        par.num_threads = static_cast<std::size_t>(1) << (1 + rng.index(3));
        const auto kp = hfx::FockBuilder(basis, par).exchange(p).k;
        const double diff = la::max_abs(kp - k0);
        if (diff > 1e-12)
          return std::string("schedule ") + schedule_name(par.schedule) +
                 " at " + std::to_string(par.num_threads) +
                 " threads drifted from serial by " + fmt(diff);
        return "";
      });
}

// The sparse compacted-E-list kernel against the retained dense
// reference kernel, quartet by quartet, on a basis with s, p and d
// shells (6-31g* puts Cartesian d on O). The sparse kernel preserves
// the dense kernel's association order, so agreement is bitwise; we
// assert the acceptance bound of 1e-12.
TEST(Differential, SparseKernelMatchesDenseReferenceOnMixedShells) {
  MTHFX_PROPERTY_N(
      "Differential.SparseKernelMatchesDenseReferenceOnMixedShells", 6,
      [](mt::Rng& rng, std::size_t) -> std::string {
        namespace ints = mthfx::ints;
        const auto mol = mt::jittered(rng, mthfx::workload::water(), 0.08);
        const auto basis = chem::BasisSet::build(mol, "6-31g*");

        std::vector<ints::ShellPairHermite> sparse;
        std::vector<ints::ShellPairHermite> dense;
        for (std::size_t sa = 0; sa < basis.num_shells(); ++sa)
          for (std::size_t sb = 0; sb <= sa; ++sb) {
            sparse.emplace_back(basis.shell(sa), basis.shell(sb));
            dense.emplace_back(basis.shell(sa), basis.shell(sb),
                               ints::EriKernel::kDenseReference);
          }

        ints::EriBlock bs;
        ints::EriBlock bd;
        for (std::size_t bra = 0; bra < sparse.size(); ++bra)
          for (std::size_t ket = 0; ket <= bra; ++ket) {
            ints::eri_shell_quartet(sparse[bra], sparse[ket], bs);
            ints::eri_shell_quartet_dense_reference(dense[bra], dense[ket],
                                                    bd);
            for (std::size_t i = 0; i < bs.values.size(); ++i)
              if (std::abs(bs.values[i] - bd.values[i]) > 1e-12)
                return "quartet (" + std::to_string(bra) + "," +
                       std::to_string(ket) + ") element " +
                       std::to_string(i) + ": sparse " + fmt(bs.values[i]) +
                       " vs dense " + fmt(bd.values[i]);
          }
        return "";
      });
}

// Full builder on a d-shell basis, every schedule, at tight screening:
// the sparse kernel + ket-side intermediates + early-exit ket loop must
// reproduce the dense J/K oracle to 1e-12.
TEST(Differential, MixedShellBuildMatchesOracleAcrossSchedules) {
  MTHFX_PROPERTY_N(
      "Differential.MixedShellBuildMatchesOracleAcrossSchedules", 6,
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, mthfx::workload::water(), 0.08);
        const auto basis = chem::BasisSet::build(mol, "6-31g*");
        const auto p = mt::random_symmetric_density(rng, basis.num_functions());
        const auto ref = mt::dense_jk_reference(basis, p);

        hfx::HfxOptions opts;
        opts.eps_schwarz = 1e-12;
        opts.num_threads = 1 + rng.index(8);
        for (const auto schedule : mt::all_schedules()) {
          opts.schedule = schedule;
          hfx::FockBuilder builder(basis, opts);
          const auto jk = builder.coulomb_exchange(p);
          const double kerr = la::max_abs(jk.k - ref.k);
          const double jerr = la::max_abs(jk.j - ref.j);
          if (kerr > 1e-12 || jerr > 1e-12)
            return std::string("schedule ") + schedule_name(schedule) +
                   " (threads " + std::to_string(opts.num_threads) +
                   "): |dK| " + fmt(kerr) + " |dJ| " + fmt(jerr);
        }
        return "";
      });
}

// Pinned regression for the early-exit Schwarz break: the bulk tail
// accounting must keep both conservation laws intact —
//   considered = schwarz + density + computed, and
//   considered = sum over tasks of (ket_end - ket_begin)
// — at a screening threshold loose enough that tasks actually break
// mid-range, with and without density screening, on every schedule.
TEST(Differential, EarlyExitScreeningStatsStayConserved) {
  // Water is too compact for quartet-level Schwarz failures at any
  // threshold its pair list survives; propylene carbonate has enough
  // spatial spread that ket ranges genuinely break mid-task.
  const auto mol = mthfx::workload::propylene_carbonate();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  la::Matrix p(basis.num_functions(), basis.num_functions());
  for (std::size_t i = 0; i < p.rows(); ++i)
    for (std::size_t j = 0; j < p.cols(); ++j)
      p(i, j) = (i == j) ? 1.0 : 0.02 / (1.0 + static_cast<double>(i + j));

  for (const bool density : {false, true}) {
    for (const auto schedule : mt::all_schedules()) {
      hfx::HfxOptions opts;
      opts.eps_schwarz = 1e-6;  // loose: forces mid-range breaks
      opts.density_screening = density;
      opts.schedule = schedule;
      opts.num_threads = 4;
      hfx::FockBuilder builder(basis, opts);
      const auto r = builder.coulomb_exchange(p);
      const auto& s = r.stats.screening;

      std::uint64_t span = 0;
      for (const auto& task : builder.tasks())
        span += task.ket_end - task.ket_begin;

      EXPECT_GT(s.quartets_schwarz_screened, 0u)
          << "threshold not loose enough to exercise the break";
      EXPECT_EQ(s.quartets_considered,
                s.quartets_schwarz_screened + s.quartets_density_screened +
                    s.quartets_computed)
          << "schedule " << schedule_name(schedule) << " density " << density;
      EXPECT_EQ(s.quartets_considered, span)
          << "schedule " << schedule_name(schedule) << " density " << density;
      if (!density) EXPECT_EQ(s.quartets_density_screened, 0u);
    }
  }
}

// End-to-end differential: the converged SCF energy must not depend on
// the schedule policy. Fewer default iterations — each case is two full
// SCF solves.
TEST(Differential, ScfEnergyScheduleIndependent) {
  MTHFX_PROPERTY_N(
      "Differential.ScfEnergyScheduleIndependent", 10,
      [](mt::Rng& rng, std::size_t) -> std::string {
        auto mol = mt::jittered(rng, mthfx::workload::water(), 0.05);
        const auto basis = chem::BasisSet::build(mol, "sto-3g");

        scf::ScfOptions base;
        base.energy_tolerance = 1e-10;
        base.diis_tolerance = 1e-8;
        base.hfx.eps_schwarz = 1e-12;
        base.hfx.num_threads = 1;
        base.hfx.schedule = hfx::HfxSchedule::kStaticBlock;
        const auto ref = scf::rhf(mol, basis, base);

        scf::ScfOptions alt = base;
        alt.hfx.schedule = mt::all_schedules()[rng.index(4)];
        alt.hfx.num_threads = 1 + rng.index(8);
        const auto got = scf::rhf(mol, basis, alt);
        if (!ref.converged || !got.converged)
          return "SCF did not converge under one of the schedules";
        if (std::abs(ref.energy - got.energy) > 1e-9)
          return std::string("schedule ") + schedule_name(alt.hfx.schedule) +
                 " changed the SCF energy by " +
                 fmt(std::abs(ref.energy - got.energy));
        return "";
      });
}

// The batched SIMD kernel against both retained oracles — the scalar
// sparse kernel and the dense reference — quartet by quartet, on random
// stream slices. Slice lengths are drawn to cover single-quartet
// streams, sub-width batches and ragged tails (the stream length mod 8
// varies with the draw), and the stream is shuffled so batches mix
// structural classes in different lane orders each case.
TEST(Differential, BatchedKernelMatchesScalarAndDenseOnMixedShells) {
  MTHFX_PROPERTY_N(
      "Differential.BatchedKernelMatchesScalarAndDenseOnMixedShells", 6,
      [](mt::Rng& rng, std::size_t) -> std::string {
        namespace ints = mthfx::ints;
        const auto mol = mt::jittered(rng, mthfx::workload::water(), 0.08);
        const auto basis = chem::BasisSet::build(mol, "6-31g*");

        std::vector<ints::ShellPairHermite> batched;
        std::vector<ints::ShellPairHermite> dense;
        const std::size_t ns = basis.num_shells();
        batched.reserve(ns * (ns + 1) / 2);
        dense.reserve(ns * (ns + 1) / 2);
        for (std::size_t sa = 0; sa < ns; ++sa)
          for (std::size_t sb = 0; sb <= sa; ++sb) {
            batched.emplace_back(basis.shell(sa), basis.shell(sb),
                                 ints::EriKernel::kBatched);
            dense.emplace_back(basis.shell(sa), basis.shell(sb),
                               ints::EriKernel::kDenseReference);
          }

        // Shuffled full quartet stream: quartet (bra, ket) with
        // ket <= bra, encoded as bra * npairs + ket (a bare pair's
        // template comma would split the property macro's arguments).
        const std::size_t npairs = batched.size();
        std::vector<std::size_t> quartets;
        for (std::size_t bra = 0; bra < npairs; ++bra)
          for (std::size_t ket = 0; ket <= bra; ++ket)
            quartets.push_back(bra * npairs + ket);
        for (std::size_t i = quartets.size(); i > 1; --i)
          std::swap(quartets[i - 1], quartets[rng.index(i)]);

        // Random slice lengths, always including 1 and a ragged tail.
        std::vector<std::size_t> lens;
        lens.push_back(1);
        lens.push_back(1 + rng.index(8));
        lens.push_back(8 + 1 + rng.index(16));
        lens.push_back(quartets.size());
        for (const std::size_t len : lens) {
          std::vector<ints::QuartetRef> stream;
          for (std::size_t q = 0; q < len; ++q)
            stream.push_back({&batched[quartets[q] / npairs],
                              &batched[quartets[q] % npairs]});
          std::vector<ints::EriBlock> out(len);
          ints::eri_shell_quartet_batched({stream.data(), len}, out.data());

          ints::EriBlock ref_sparse;
          ints::EriBlock ref_dense;
          for (std::size_t q = 0; q < len; ++q) {
            ints::eri_shell_quartet(*stream[q].bra, *stream[q].ket,
                                    ref_sparse);
            ints::eri_shell_quartet_dense_reference(
                dense[quartets[q] / npairs], dense[quartets[q] % npairs],
                ref_dense);
            for (std::size_t i = 0; i < ref_sparse.values.size(); ++i) {
              const double b = out[q].values[i];
              if (std::abs(b - ref_sparse.values[i]) > 1e-12 ||
                  std::abs(b - ref_dense.values[i]) > 1e-12)
                return "len " + std::to_string(len) + " quartet " +
                       std::to_string(q) + " element " + std::to_string(i) +
                       ": batched " + fmt(b) + " vs sparse " +
                       fmt(ref_sparse.values[i]) + " vs dense " +
                       fmt(ref_dense.values[i]);
            }
          }
        }
        return "";
      });
}

// Builder-level kernel cross-check: the same build with each of the
// three quartet kernels must produce the same K to the kernels'
// agreement budget — across a random schedule and thread count, so the
// batched stream formation composes with every task partitioning.
TEST(Differential, BuildAgreesAcrossEriKernels) {
  MTHFX_PROPERTY_N(
      "Differential.BuildAgreesAcrossEriKernels", 6,
      [](mt::Rng& rng, std::size_t) -> std::string {
        namespace ints = mthfx::ints;
        const auto mol = mt::jittered(rng, mthfx::workload::water(), 0.08);
        const auto basis = chem::BasisSet::build(mol, "6-31g*");
        const auto p = mt::random_symmetric_density(rng, basis.num_functions());

        hfx::HfxOptions opts;
        opts.eps_schwarz = 1e-12;
        opts.schedule = mt::all_schedules()[rng.index(4)];
        opts.num_threads = 1 + rng.index(8);

        opts.eri_kernel = ints::EriKernel::kSparse;
        const auto k_sparse = hfx::FockBuilder(basis, opts).exchange(p).k;
        opts.eri_kernel = ints::EriKernel::kBatched;
        const auto k_batched = hfx::FockBuilder(basis, opts).exchange(p).k;
        opts.eri_kernel = ints::EriKernel::kDenseReference;
        const auto k_dense = hfx::FockBuilder(basis, opts).exchange(p).k;

        const double db = la::max_abs(k_batched - k_sparse);
        const double dd = la::max_abs(k_dense - k_sparse);
        if (db > 1e-12 || dd > 1e-12)
          return std::string("schedule ") + schedule_name(opts.schedule) +
                 " (threads " + std::to_string(opts.num_threads) +
                 "): |K_batched - K_sparse| " + fmt(db) +
                 ", |K_dense - K_sparse| " + fmt(dd);
        return "";
      });
}
