#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "chem/molecule.hpp"

namespace chem = mthfx::chem;

TEST(Elements, LookupBySymbolAndNumber) {
  EXPECT_EQ(chem::atomic_number("H"), 1);
  EXPECT_EQ(chem::atomic_number("Li"), 3);
  EXPECT_EQ(chem::atomic_number("O"), 8);
  EXPECT_EQ(chem::atomic_number("S"), 16);
  EXPECT_FALSE(chem::atomic_number("Xx").has_value());
  EXPECT_EQ(chem::element(6).symbol, "C");
  EXPECT_THROW(chem::element(0), std::out_of_range);
  EXPECT_THROW(chem::element(19), std::out_of_range);
}

TEST(Elements, MassesAreSane) {
  for (int z = 1; z <= chem::kMaxZ; ++z) {
    const auto& e = chem::element(z);
    EXPECT_GT(e.mass_amu, 0.9 * z);  // loose physical sanity
    EXPECT_GT(e.bragg_radius_a, 0.0);
  }
}

TEST(Molecule, ElectronCountAndCharge) {
  chem::Molecule m;
  m.add_atom(8, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.8});
  m.add_atom(1, {0, 1.8, 0});
  EXPECT_EQ(m.num_electrons(), 10);
  m.set_charge(1);
  EXPECT_EQ(m.num_electrons(), 9);
}

TEST(Molecule, NuclearRepulsionH2) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.4});
  EXPECT_NEAR(m.nuclear_repulsion(), 1.0 / 1.4, 1e-14);
}

TEST(Molecule, XyzRoundTrip) {
  const std::string xyz =
      "3\nwater\nO 0.0 0.0 0.1173\nH 0.0 0.7572 -0.4692\nH 0.0 -0.7572 "
      "-0.4692\n";
  const chem::Molecule m = chem::Molecule::from_xyz(xyz);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.atom(0).z, 8);
  EXPECT_NEAR(m.atom(1).pos[1], 0.7572 * chem::kBohrPerAngstrom, 1e-10);
  const chem::Molecule m2 = chem::Molecule::from_xyz(m.to_xyz("x"));
  for (std::size_t i = 0; i < 3; ++i)
    for (int k = 0; k < 3; ++k)
      EXPECT_NEAR(m2.atom(i).pos[static_cast<std::size_t>(k)],
                  m.atom(i).pos[static_cast<std::size_t>(k)], 1e-8);
}

TEST(Molecule, XyzRejectsMalformed) {
  EXPECT_THROW(chem::Molecule::from_xyz("abc"), std::runtime_error);
  EXPECT_THROW(chem::Molecule::from_xyz("2\nc\nH 0 0 0\n"), std::runtime_error);
  EXPECT_THROW(chem::Molecule::from_xyz("1\nc\nQq 0 0 0\n"),
               std::runtime_error);
}

TEST(Molecule, AppendMergesAtomsAndCharge) {
  chem::Molecule a;
  a.add_atom(3, {0, 0, 0});
  a.set_charge(1);
  chem::Molecule b;
  b.add_atom(8, {0, 0, 2.0});
  b.set_charge(-1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.charge(), 0);
}

TEST(Basis, CartesianCounts) {
  EXPECT_EQ(chem::num_cartesians(0), 1u);
  EXPECT_EQ(chem::num_cartesians(1), 3u);
  EXPECT_EQ(chem::num_cartesians(2), 6u);
  EXPECT_EQ(chem::cartesian_powers(1).size(), 3u);
  const auto d = chem::cartesian_powers(2);
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d[0].x, 2);  // canonical order starts with xx
  EXPECT_EQ(d[5].z, 2);  // and ends with zz
}

TEST(Basis, Sto3gHydrogenMatchesPublishedExponents) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  ASSERT_EQ(basis.num_shells(), 1u);
  const auto& sh = basis.shell(0);
  ASSERT_EQ(sh.num_primitives(), 3u);
  // EMSL STO-3G H exponents: 3.42525091, 0.62391373, 0.16885540.
  EXPECT_NEAR(sh.exponents()[0], 3.42525091, 1e-6);
  EXPECT_NEAR(sh.exponents()[1], 0.62391373, 1e-6);
  EXPECT_NEAR(sh.exponents()[2], 0.16885540, 1e-6);
}

TEST(Basis, Sto3gOxygenLayout) {
  chem::Molecule m;
  m.add_atom(8, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  // 1s, 2s, 2p  ->  1 + 1 + 3 = 5 AOs.
  EXPECT_EQ(basis.num_shells(), 3u);
  EXPECT_EQ(basis.num_functions(), 5u);
  // EMSL O 1s first exponent 130.70932.
  EXPECT_NEAR(basis.shell(0).exponents()[0], 130.70932, 1e-3);
  // EMSL O 2sp first exponent 5.0331513.
  EXPECT_NEAR(basis.shell(1).exponents()[0], 5.0331513, 1e-5);
}

TEST(Basis, SulfurHasThreeShellLayers) {
  chem::Molecule m;
  m.add_atom(16, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  // 1s, 2s, 2p, 3s, 3p -> 1+1+3+1+3 = 9 AOs.
  EXPECT_EQ(basis.num_functions(), 9u);
}

TEST(Basis, SixThreeOneGStarAddsPolarization) {
  chem::Molecule m;
  m.add_atom(6, {0, 0, 0});
  const auto plain = chem::BasisSet::build(m, "6-31g");
  const auto star = chem::BasisSet::build(m, "6-31g*");
  EXPECT_EQ(plain.num_functions(), 9u);      // 3s + 2p sets = 3 + 6
  EXPECT_EQ(star.num_functions(), 15u);      // + 6 Cartesian d
  EXPECT_EQ(star.shells().back().l(), 2);
}

TEST(Basis, UnknownBasisThrows) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  EXPECT_THROW(chem::BasisSet::build(m, "def2-qzvpp"), std::runtime_error);
}

TEST(Basis, EvaluateSFunctionAtCenter) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  std::vector<double> v;
  basis.evaluate({0, 0, 0}, v);
  ASSERT_EQ(v.size(), 1u);
  // Contracted STO-3G 1s at its center: approaches the STO value
  // sqrt(zeta^3/pi) ~ 0.78 from below (Gaussians have no cusp).
  EXPECT_GT(v[0], 0.4);
  EXPECT_LT(v[0], std::sqrt(std::pow(1.24, 3) / M_PI));
}

TEST(Basis, GradientMatchesFiniteDifference) {
  chem::Molecule m;
  m.add_atom(8, {0.1, -0.2, 0.3});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const chem::Vec3 pt{0.7, 0.4, -0.5};
  std::vector<double> val, dx, dy, dz;
  basis.evaluate_with_gradient(pt, val, dx, dy, dz);

  const double h = 1e-6;
  std::vector<double> plus, minus;
  for (int dim = 0; dim < 3; ++dim) {
    chem::Vec3 p = pt, q = pt;
    p[static_cast<std::size_t>(dim)] += h;
    q[static_cast<std::size_t>(dim)] -= h;
    basis.evaluate(p, plus);
    basis.evaluate(q, minus);
    const auto& grad = dim == 0 ? dx : (dim == 1 ? dy : dz);
    for (std::size_t i = 0; i < val.size(); ++i)
      EXPECT_NEAR(grad[i], (plus[i] - minus[i]) / (2 * h), 1e-6);
  }
}

class ShellNormalization
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(ShellNormalization, ContractedSelfOverlapIsOne) {
  // For every element/basis pair, numerically integrate the square of the
  // first component of each shell over a radial grid and expect 1.
  const auto [z, name] = GetParam();
  chem::Molecule m;
  m.add_atom(z, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, name);
  for (const auto& sh : basis.shells()) {
    // Self-overlap of the (l,0,0) component along x with Gauss-style
    // brute-force integration on a 3-D grid is expensive; instead use the
    // closed form the constructor normalizes against, rebuilt here
    // independently.
    double self = 0.0;
    const int l = sh.l();
    for (std::size_t p = 0; p < sh.num_primitives(); ++p)
      for (std::size_t q = 0; q < sh.num_primitives(); ++q) {
        const double g = sh.exponents()[p] + sh.exponents()[q];
        const double ovl = chem::odd_double_factorial(l) /
                           std::pow(2.0 * g, l) *
                           std::pow(M_PI / g, 1.5);
        self += sh.norm_coef(p, 0) * sh.norm_coef(q, 0) * ovl;
      }
    EXPECT_NEAR(self, 1.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ElementsBases, ShellNormalization,
    ::testing::Values(std::make_tuple(1, "sto-3g"), std::make_tuple(3, "sto-3g"),
                      std::make_tuple(6, "sto-3g"), std::make_tuple(8, "sto-3g"),
                      std::make_tuple(16, "sto-3g"), std::make_tuple(1, "6-31g"),
                      std::make_tuple(6, "6-31g"), std::make_tuple(8, "6-31g"),
                      std::make_tuple(6, "6-31g*"),
                      std::make_tuple(8, "6-31g*")));
