#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "ints/one_electron.hpp"
#include "scf/properties.hpp"
#include "scf/rhf.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace la = mthfx::linalg;
namespace scf = mthfx::scf;
namespace wl = mthfx::workload;

TEST(DipoleIntegrals, SingleGaussianCenteredAtOrigin) {
  // <s| x |s> = 0 by symmetry for an origin-centered s function.
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  for (std::size_t d = 0; d < 3; ++d)
    EXPECT_NEAR(mthfx::ints::dipole(basis, d)(0, 0), 0.0, 1e-14);
}

TEST(DipoleIntegrals, ShiftedCenterGivesCenterCoordinate) {
  // <s| x |s> = X_center for a normalized s function at X_center.
  chem::Molecule m;
  m.add_atom(1, {1.5, -0.7, 2.2});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  EXPECT_NEAR(mthfx::ints::dipole(basis, 0)(0, 0), 1.5, 1e-10);
  EXPECT_NEAR(mthfx::ints::dipole(basis, 1)(0, 0), -0.7, 1e-10);
  EXPECT_NEAR(mthfx::ints::dipole(basis, 2)(0, 0), 2.2, 1e-10);
}

TEST(DipoleIntegrals, OriginShiftIsOverlapTimesShift) {
  // D(origin O) = D(0) - O_d * S elementwise.
  const auto m = wl::water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix s = mthfx::ints::overlap(basis);
  const chem::Vec3 o{0.3, -1.1, 0.8};
  for (std::size_t d = 0; d < 3; ++d) {
    const la::Matrix d0 = mthfx::ints::dipole(basis, d);
    const la::Matrix dshift = mthfx::ints::dipole(basis, d, o);
    const la::Matrix expected = d0 - o[d] * s;
    EXPECT_LT(la::max_abs(dshift - expected), 1e-11) << d;
  }
}

TEST(DipoleIntegrals, SpBlockMatchesParity) {
  // <s| z |p_z> on one center is nonzero; <s| z |p_x> vanishes.
  chem::Molecule m;
  m.add_atom(8, {0, 0, 0});
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  // AO order: 1s, 2s, px, py, pz.
  const la::Matrix dz = mthfx::ints::dipole(basis, 2);
  EXPECT_GT(std::abs(dz(1, 4)), 0.05);   // 2s-pz coupling
  EXPECT_NEAR(dz(1, 2), 0.0, 1e-12);     // 2s-px
  EXPECT_NEAR(dz(1, 3), 0.0, 1e-12);     // 2s-py
}

TEST(Properties, WaterDipoleMatchesPublishedSto3gValue) {
  // RHF/STO-3G water dipole is ~1.7 D at the experimental geometry.
  const auto m = wl::water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::rhf(m, basis);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(scf::dipole_moment_debye(m, basis, r.density), 1.71, 0.1);
}

TEST(Properties, DipoleDirectionPointsFromNegativeToPositive) {
  // Water's dipole lies along the C2 axis (z here), toward the hydrogens
  // on the negative-z side... sign: O carries negative charge at +z, so
  // the dipole's z component is negative (physics convention: + -> -).
  const auto m = wl::water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::rhf(m, basis);
  const chem::Vec3 mu = scf::dipole_moment(m, basis, r.density);
  EXPECT_NEAR(mu[0], 0.0, 1e-6);
  EXPECT_NEAR(mu[1], 0.0, 1e-6);
  EXPECT_GT(std::abs(mu[2]), 0.3);
}

TEST(Properties, HomonuclearDiatomicHasNoDipole) {
  const auto m = wl::h2();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::rhf(m, basis);
  EXPECT_NEAR(scf::dipole_moment_debye(m, basis, r.density), 0.0, 1e-8);
}

TEST(Properties, PcIsMorePolarThanNonpolarReference) {
  // Propylene carbonate is a strongly polar solvent (exp. ~4.9 D); our
  // minimal-basis value must at least clearly exceed water's.
  const auto m = wl::propylene_carbonate();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  scf::ScfOptions opts;
  opts.hfx.eps_schwarz = 1e-9;
  const auto r = scf::rhf(m, basis, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(scf::dipole_moment_debye(m, basis, r.density), 2.0);
}

TEST(Properties, MullikenChargesSumToMolecularCharge) {
  for (const char* name : {"water", "pc", "oh-"}) {
    const auto m = wl::by_name(name);
    const auto basis = chem::BasisSet::build(m, "sto-3g");
    scf::ScfOptions opts;
    opts.hfx.eps_schwarz = 1e-9;
    const auto r = scf::rhf(m, basis, opts);
    ASSERT_TRUE(r.converged) << name;
    const auto q = scf::mulliken_charges(m, basis, r.density);
    const double total = std::accumulate(q.begin(), q.end(), 0.0);
    EXPECT_NEAR(total, m.charge(), 1e-8) << name;
  }
}

TEST(Properties, WaterMullikenSigns) {
  const auto m = wl::water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::rhf(m, basis);
  const auto q = scf::mulliken_charges(m, basis, r.density);
  EXPECT_LT(q[0], -0.1);  // O negative
  EXPECT_GT(q[1], 0.05);  // H positive
  EXPECT_NEAR(q[1], q[2], 1e-9);  // symmetric hydrogens
}
