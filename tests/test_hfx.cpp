#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <random>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "hfx/fock_builder.hpp"
#include "hfx/schedulers.hpp"
#include "hfx/screening.hpp"
#include "hfx/shell_pairs.hpp"
#include "hfx/tasks.hpp"
#include "ints/eri.hpp"
#include "ints/schwarz.hpp"

namespace chem = mthfx::chem;
namespace hfx = mthfx::hfx;
namespace ints = mthfx::ints;
namespace la = mthfx::linalg;

namespace {

chem::Molecule water() {
  return chem::Molecule::from_xyz(
      "3\nwater\nO 0.000000 0.000000 0.117300\n"
      "H 0.000000 0.757200 -0.469200\n"
      "H 0.000000 -0.757200 -0.469200\n");
}

la::Matrix random_density(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-0.5, 0.5);
  la::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = dist(rng);
      p(i, j) = v;
      p(j, i) = v;
    }
  // Make it density-like: add a diagonal shift.
  for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;
  return p;
}

// Dense O(N^4) reference J and K from the full ERI tensor.
std::pair<la::Matrix, la::Matrix> reference_jk(const chem::BasisSet& basis,
                                               const la::Matrix& p) {
  const std::size_t n = basis.num_functions();
  const auto t = ints::eri_tensor(basis);
  la::Matrix j(n, n), k(n, n);
  for (std::size_t mu = 0; mu < n; ++mu)
    for (std::size_t nu = 0; nu < n; ++nu)
      for (std::size_t lam = 0; lam < n; ++lam)
        for (std::size_t sig = 0; sig < n; ++sig) {
          j(mu, nu) += p(lam, sig) * t[((mu * n + nu) * n + lam) * n + sig];
          k(mu, nu) += p(lam, sig) * t[((mu * n + lam) * n + nu) * n + sig];
        }
  return {j, k};
}

}  // namespace

TEST(ShellPairs, KeepsAllPairsAtLooseThreshold) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto q = ints::schwarz_bounds(basis);
  hfx::ShellPairList pairs(basis, q, 1e-30);
  EXPECT_EQ(pairs.size(), pairs.unscreened_count());
  EXPECT_GT(pairs.max_q(), 0.0);
}

TEST(ShellPairs, TightThresholdPrunesDistantPairs) {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 30.0});  // far apart: cross pair negligible
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto q = ints::schwarz_bounds(basis);
  hfx::ShellPairList pairs(basis, q, 1e-8);
  EXPECT_EQ(pairs.unscreened_count(), 3u);
  EXPECT_EQ(pairs.size(), 2u);  // the two diagonal pairs survive
}

TEST(Tasks, CoverEveryKetRangeExactlyOnce) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto q = ints::schwarz_bounds(basis);
  hfx::ShellPairList pairs(basis, q, 1e-14);
  const auto tasks = hfx::make_tasks(basis, pairs, 0.0);
  // Union of [ket_begin, ket_end) per bra must equal [0, bra+1).
  std::vector<std::vector<bool>> covered(pairs.size());
  for (std::size_t b = 0; b < pairs.size(); ++b)
    covered[b].assign(b + 1, false);
  for (const auto& t : tasks) {
    for (std::uint32_t k = t.ket_begin; k < t.ket_end; ++k) {
      ASSERT_LE(k, t.bra);
      ASSERT_FALSE(covered[t.bra][k]);
      covered[t.bra][k] = true;
    }
  }
  for (const auto& row : covered)
    for (bool c : row) EXPECT_TRUE(c);
}

TEST(Tasks, GranularityRespondsToTargetCost) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "6-31g");
  const auto q = ints::schwarz_bounds(basis);
  hfx::ShellPairList pairs(basis, q, 1e-14);
  const auto coarse = hfx::make_tasks(basis, pairs, 1e12);
  const auto fine = hfx::make_tasks(basis, pairs, 1.0);
  EXPECT_GT(fine.size(), coarse.size());
  EXPECT_NEAR(hfx::total_cost(fine), hfx::total_cost(coarse),
              1e-6 * hfx::total_cost(fine));
}

TEST(Screening, BlockMaxDensityIsUpperBound) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 3);
  const la::Matrix bm = hfx::shell_block_max_density(basis, p);
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa)
    for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
      const std::size_t oa = basis.first_function(sa);
      const std::size_t ob = basis.first_function(sb);
      for (std::size_t i = 0; i < basis.shell(sa).num_functions(); ++i)
        for (std::size_t j = 0; j < basis.shell(sb).num_functions(); ++j)
          EXPECT_LE(std::abs(p(oa + i, ob + j)), bm(sa, sb) + 1e-15);
    }
}

TEST(FockBuilder, ExchangeMatchesDenseReference) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 7);
  const auto [jref, kref] = reference_jk(basis, p);

  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-14;
  hfx::FockBuilder builder(basis, opts);
  const auto result = builder.exchange(p);
  EXPECT_LT(la::max_abs(result.k - kref), 1e-10);
}

TEST(FockBuilder, CoulombExchangeMatchesDenseReference) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 11);
  const auto [jref, kref] = reference_jk(basis, p);

  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-14;
  hfx::FockBuilder builder(basis, opts);
  const auto result = builder.coulomb_exchange(p);
  EXPECT_LT(la::max_abs(result.j - jref), 1e-10);
  EXPECT_LT(la::max_abs(result.k - kref), 1e-10);
}

TEST(FockBuilder, SplitValenceBasisMatchesDenseReference) {
  // Different shell structure (sp splits, 6 shells per heavy atom).
  chem::Molecule m;
  m.add_atom(3, {0, 0, 0});
  m.add_atom(1, {0, 0, 3.0});
  const auto basis = chem::BasisSet::build(m, "6-31g");
  const la::Matrix p = random_density(basis.num_functions(), 13);
  const auto [jref, kref] = reference_jk(basis, p);

  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-14;
  hfx::FockBuilder builder(basis, opts);
  const auto result = builder.coulomb_exchange(p);
  EXPECT_LT(la::max_abs(result.j - jref), 1e-9);
  EXPECT_LT(la::max_abs(result.k - kref), 1e-9);
}

class FockSchedules : public ::testing::TestWithParam<hfx::HfxSchedule> {};

TEST_P(FockSchedules, AllSchedulesGiveIdenticalExchange) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 17);

  hfx::HfxOptions base;
  base.eps_schwarz = 1e-14;
  base.schedule = hfx::HfxSchedule::kDynamicBag;
  base.num_threads = 1;
  const auto kserial = hfx::FockBuilder(basis, base).exchange(p).k;

  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-14;
  opts.schedule = GetParam();
  opts.num_threads = 4;
  const auto kpar = hfx::FockBuilder(basis, opts).exchange(p).k;
  EXPECT_LT(la::max_abs(kpar - kserial), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, FockSchedules,
                         ::testing::Values(hfx::HfxSchedule::kDynamicBag,
                                           hfx::HfxSchedule::kStaticBlock,
                                           hfx::HfxSchedule::kStaticCyclic,
                                           hfx::HfxSchedule::kWorkStealing));

TEST(FockBuilder, ScreeningErrorIsControlledByEps) {
  // The abstract's "highly controllable accuracy": tightening eps must
  // reduce the exchange error monotonically (within noise) and reach
  // near-exactness at tight settings.
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "6-31g");
  const la::Matrix p = random_density(basis.num_functions(), 23);

  hfx::HfxOptions exact_opts;
  exact_opts.eps_schwarz = 1e-16;
  exact_opts.density_screening = false;
  const auto kexact = hfx::FockBuilder(basis, exact_opts).exchange(p).k;

  double last_err = 1e9;
  for (double eps : {1e-4, 1e-8, 1e-12}) {
    hfx::HfxOptions opts;
    opts.eps_schwarz = eps;
    const auto k = hfx::FockBuilder(basis, opts).exchange(p).k;
    const double err = la::max_abs(k - kexact);
    EXPECT_LE(err, last_err * 1.5 + 1e-15);
    last_err = err;
  }
  EXPECT_LT(last_err, 1e-10);
}

TEST(FockBuilder, ScreeningReducesComputedQuartets) {
  chem::Molecule m;
  // Linear chain of well-separated H2 units: most quartets negligible.
  for (int i = 0; i < 6; ++i) {
    m.add_atom(1, {0, 0, i * 12.0});
    m.add_atom(1, {0, 0, i * 12.0 + 1.4});
  }
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 29);

  hfx::HfxOptions loose;
  loose.eps_schwarz = 1e-6;
  const auto stats_loose =
      hfx::FockBuilder(basis, loose).exchange(p).stats;

  hfx::HfxOptions off;
  off.eps_schwarz = 1e-30;
  off.density_screening = false;
  const auto stats_off = hfx::FockBuilder(basis, off).exchange(p).stats;

  EXPECT_LT(stats_loose.screening.quartets_computed,
            stats_off.screening.quartets_computed / 2);
  EXPECT_LT(stats_loose.num_pairs, stats_off.num_pairs);
}

TEST(FockBuilder, StatsArePopulated) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 31);
  hfx::HfxOptions opts;
  opts.record_task_costs = true;
  opts.num_threads = 2;
  hfx::FockBuilder builder(basis, opts);
  const auto result = builder.exchange(p);
  EXPECT_EQ(result.stats.num_tasks, builder.tasks().size());
  EXPECT_EQ(result.stats.task_costs.size(), builder.tasks().size());
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_EQ(result.stats.thread_busy_seconds.size(), 2u);
  EXPECT_GT(result.stats.screening.quartets_computed, 0u);
}

TEST(Schedulers, ResolveThreadCount) {
  EXPECT_EQ(hfx::resolve_thread_count(5), 5u);
  EXPECT_GE(hfx::resolve_thread_count(0), 1u);
}

TEST(Schedulers, ExecuteTasksRunsAll) {
  std::vector<std::atomic<int>> hits(500);
  for (auto s :
       {hfx::HfxSchedule::kDynamicBag, hfx::HfxSchedule::kStaticBlock,
        hfx::HfxSchedule::kStaticCyclic, hfx::HfxSchedule::kWorkStealing}) {
    for (auto& h : hits) h.store(0);
    hfx::execute_tasks(500, 3, s,
                       [&](std::size_t i, std::size_t) { hits[i]++; });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

class SchedulerExactness
    : public ::testing::TestWithParam<hfx::HfxSchedule> {};

// Exactly-once execution under contention: wildly uneven task costs make
// threads race for the remaining work (and, for kWorkStealing, force both
// the random-victim and fallback steal paths). Every index must still be
// visited exactly once, and the instrumented task count must agree.
TEST_P(SchedulerExactness, EveryTaskExecutedExactlyOnceUnderContention) {
  constexpr std::size_t ntasks = 4000, nthreads = 4;
  std::vector<std::atomic<int>> hits(ntasks);
  mthfx::obs::Registry registry(nthreads);
  hfx::execute_tasks(
      ntasks, nthreads, GetParam(),
      [&](std::size_t i, std::size_t tid) {
        // 1-in-16 tasks is ~200x heavier; heavy tasks cluster in runs so
        // static partitions are imbalanced and dynamic ones contend.
        if ((i / 16) % 16 == 0)
          for (volatile int spin = 0; spin < 2000; ++spin) {
          }
        ASSERT_LT(tid, nthreads);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      &registry);
  for (std::size_t i = 0; i < ntasks; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
  EXPECT_EQ(registry.counter_total("sched.tasks_executed"), ntasks);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, SchedulerExactness,
    ::testing::Values(hfx::HfxSchedule::kDynamicBag,
                      hfx::HfxSchedule::kStaticBlock,
                      hfx::HfxSchedule::kStaticCyclic,
                      hfx::HfxSchedule::kWorkStealing));

// Differential regression: every schedule at 1, 2, 4 and 8 threads must
// reproduce the single-threaded K matrix to 1e-12 on a fixed seeded
// molecule. Guards the task partitioners, the bag/steal protocols and
// the thread-private reduction in one sweep.
TEST(FockBuilder, AllSchedulesAndThreadCountsAgreeTightly) {
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 41);

  hfx::HfxOptions base;
  base.eps_schwarz = 1e-12;
  base.num_threads = 1;
  base.schedule = hfx::HfxSchedule::kStaticBlock;
  const auto kref = hfx::FockBuilder(basis, base).exchange(p).k;

  for (auto schedule :
       {hfx::HfxSchedule::kDynamicBag, hfx::HfxSchedule::kStaticBlock,
        hfx::HfxSchedule::kStaticCyclic, hfx::HfxSchedule::kWorkStealing}) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      hfx::HfxOptions opts = base;
      opts.schedule = schedule;
      opts.num_threads = threads;
      const auto k = hfx::FockBuilder(basis, opts).exchange(p).k;
      EXPECT_LT(la::max_abs(k - kref), 1e-12)
          << "schedule " << static_cast<int>(schedule) << " threads "
          << threads;
    }
  }
}

TEST(HfxOptions, ContributionCutoffDerivesFromEpsSchwarz) {
  hfx::HfxOptions opts;
  // Default eps_schwarz = 1e-10 must reproduce the historical 1e-16
  // digestion cutoff.
  EXPECT_DOUBLE_EQ(opts.contribution_cutoff(), 1e-16);

  // The chain is monotone: tightening eps_schwarz tightens the cutoff.
  hfx::HfxOptions tight;
  tight.eps_schwarz = 1e-14;
  EXPECT_DOUBLE_EQ(tight.contribution_cutoff(), 1e-20);
  EXPECT_LT(tight.contribution_cutoff(), opts.contribution_cutoff());

  // An explicit eps_contribution overrides the derivation.
  hfx::HfxOptions manual;
  manual.eps_schwarz = 1e-4;
  manual.eps_contribution = 1e-30;
  EXPECT_DOUBLE_EQ(manual.contribution_cutoff(), 1e-30);
}

TEST(HfxOptions, ExplicitContributionCutoffReachesTheKernel) {
  // The derivation chain must actually steer the digestion kernel: an
  // absurdly large explicit cutoff throws away real contributions and
  // visibly degrades K, while the eps_schwarz-derived default stays
  // near-exact. Catches regressions where contribution_cutoff() is
  // computed but no longer plumbed into digest_quartet.
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 43);
  const auto [jref, kref] = reference_jk(basis, p);

  hfx::HfxOptions derived;
  derived.eps_schwarz = 1e-12;
  const double err_derived =
      la::max_abs(hfx::FockBuilder(basis, derived).exchange(p).k - kref);

  hfx::HfxOptions blunt = derived;
  blunt.eps_contribution = 1e-2;  // wipes out small but real integrals
  const double err_blunt =
      la::max_abs(hfx::FockBuilder(basis, blunt).exchange(p).k - kref);

  EXPECT_LT(err_derived, 1e-10);
  EXPECT_GT(err_blunt, 1e-6);
  EXPECT_GT(err_blunt, err_derived * 1e3);
}

TEST(FockBuilder, TighterEpsSchwarzMonotonicallyReducesExchangeError) {
  // Regression for the screening-threshold chain (Schwarz, density, and
  // the derived contribution cutoff all keyed off eps_schwarz): the
  // K-matrix error against the dense O(N^4) reference must not grow as
  // eps_schwarz tightens, and must become negligible at tight settings.
  const auto m = water();
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const la::Matrix p = random_density(basis.num_functions(), 37);
  const auto [jref, kref] = reference_jk(basis, p);

  double last_err = std::numeric_limits<double>::infinity();
  for (double eps : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12}) {
    hfx::HfxOptions opts;
    opts.eps_schwarz = eps;
    const auto k = hfx::FockBuilder(basis, opts).exchange(p).k;
    const double err = la::max_abs(k - kref);
    // Allow a sliver of slack for error cancellation between thresholds.
    EXPECT_LE(err, last_err * 1.05 + 1e-14) << "eps " << eps;
    last_err = std::min(last_err, err);
  }
  EXPECT_LT(last_err, 1e-10);
}
