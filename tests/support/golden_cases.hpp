#pragma once

// The golden-value case list, shared between test_golden.cpp (compares
// against committed JSON) and generate_golden.cpp (regenerates the
// JSON). One definition means the two can never drift apart.
//
// Cases run single-threaded with a static reduction order and tight
// screening, so the recorded energies are deterministic; tolerances are
// stated per case and absorb cross-platform libm/rounding differences
// (grid-based PBE0 gets a looser one than pure-RHF).

#include <string>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "scf/gradient.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"
#include "workload/geometries.hpp"

namespace mthfx::golden {

struct GoldenCase {
  std::string name;      ///< also the JSON file stem
  std::string molecule;  ///< workload::by_name key
  std::string basis;
  std::string method;    ///< "rhf" or "pbe0"
  double tolerance;      ///< |E - golden| allowed at ctest time
};

inline const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = {
      {"h2_rhf_sto3g", "h2", "sto-3g", "rhf", 1e-8},
      {"water_rhf_sto3g", "water", "sto-3g", "rhf", 1e-8},
      {"water_rhf_631g", "water", "6-31g", "rhf", 1e-8},
      {"hydroxide_rhf_sto3g", "oh-", "sto-3g", "rhf", 1e-8},
      {"li2o2_rhf_sto3g", "li2o2", "sto-3g", "rhf", 1e-7},
      {"water_pbe0_sto3g", "water", "sto-3g", "pbe0", 1e-6},
  };
  return cases;
}

struct GoldenEnergies {
  bool converged = false;
  double energy = 0.0;
  double nuclear_repulsion = 0.0;
  double one_electron = 0.0;
  double coulomb = 0.0;
  double exchange = 0.0;
};

/// Run one case deterministically and return its energy breakdown.
inline GoldenEnergies run_golden_case(const GoldenCase& c) {
  const chem::Molecule mol = workload::by_name(c.molecule);
  const chem::BasisSet basis = chem::BasisSet::build(mol, c.basis);

  scf::ScfOptions scf_opts;
  scf_opts.energy_tolerance = 1e-10;
  scf_opts.diis_tolerance = 1e-8;
  scf_opts.max_iterations = 200;
  scf_opts.hfx.eps_schwarz = 1e-12;
  scf_opts.hfx.num_threads = 1;
  scf_opts.hfx.schedule = hfx::HfxSchedule::kStaticBlock;

  GoldenEnergies out;
  if (c.method == "rhf") {
    const scf::ScfResult r = scf::rhf(mol, basis, scf_opts);
    out.converged = r.converged;
    out.energy = r.energy;
    out.nuclear_repulsion = r.nuclear_repulsion;
    out.one_electron = r.one_electron_energy;
    out.coulomb = r.coulomb_energy;
    out.exchange = r.exchange_energy;
  } else if (c.method == "pbe0") {
    scf::KsOptions ks;
    ks.scf = scf_opts;
    ks.functional = "pbe0";
    const scf::KsResult r = scf::rks(mol, basis, ks);
    out.converged = r.scf.converged;
    out.energy = r.scf.energy;
    out.nuclear_repulsion = r.scf.nuclear_repulsion;
    out.one_electron = r.scf.one_electron_energy;
    out.coulomb = r.scf.coulomb_energy;
    out.exchange = r.exact_exchange_energy;
  } else {
    throw std::runtime_error("golden: unknown method " + c.method);
  }
  return out;
}

/// A pinned analytic nuclear gradient (Hartree/Bohr per atom). `method`
/// is an scf functional name ("rhf" runs the RHF driver + rhf_gradient;
/// the rest run rks + ks_gradient), so the golden suite pins each
/// gradient entry point the MD surface uses.
struct GoldenGradientCase {
  std::string name;      ///< also the JSON file stem
  std::string molecule;  ///< workload::by_name key
  std::string basis;
  std::string method;    ///< "rhf", "pbe" or "pbe0"
  double tolerance;      ///< max |g - golden| per component at ctest time
};

inline const std::vector<GoldenGradientCase>& golden_gradient_cases() {
  static const std::vector<GoldenGradientCase> cases = {
      {"h2_grad_rhf_sto3g", "h2", "sto-3g", "rhf", 1e-7},
      {"li2o2_grad_rhf_sto3g", "li2o2", "sto-3g", "rhf", 1e-7},
      {"water_grad_pbe_sto3g", "water", "sto-3g", "pbe", 5e-6},
      {"water_grad_pbe0_sto3g", "water", "sto-3g", "pbe0", 5e-6},
      {"li2o2_grad_pbe0_sto3g", "li2o2", "sto-3g", "pbe0", 5e-6},
  };
  return cases;
}

struct GoldenGradient {
  bool converged = false;
  std::vector<chem::Vec3> gradient;
};

/// Run one gradient case deterministically (single thread, static
/// schedule, tight screening — the same recipe as run_golden_case).
inline GoldenGradient run_golden_gradient_case(const GoldenGradientCase& c) {
  const chem::Molecule mol = workload::by_name(c.molecule);
  const chem::BasisSet basis = chem::BasisSet::build(mol, c.basis);

  scf::ScfOptions scf_opts;
  scf_opts.energy_tolerance = 1e-10;
  // The grid-based functionals assemble V_xc with finite-difference
  // vrho/vsigma, which floors the reachable DIIS error above the pure-HFX
  // setting.
  scf_opts.diis_tolerance = c.method == "rhf" ? 1e-8 : 1e-7;
  scf_opts.max_iterations = 200;
  scf_opts.hfx.eps_schwarz = 1e-12;
  scf_opts.hfx.num_threads = 1;
  scf_opts.hfx.schedule = hfx::HfxSchedule::kStaticBlock;

  GoldenGradient out;
  if (c.method == "rhf") {
    const scf::ScfResult r = scf::rhf(mol, basis, scf_opts);
    out.converged = r.converged;
    if (r.converged) out.gradient = scf::rhf_gradient(mol, basis, r);
  } else {
    scf::KsOptions ks;
    ks.scf = scf_opts;
    ks.functional = c.method;
    const scf::KsResult r = scf::rks(mol, basis, ks);
    out.converged = r.scf.converged;
    if (r.scf.converged) out.gradient = scf::ks_gradient(mol, basis, ks, r);
  }
  return out;
}

}  // namespace mthfx::golden
