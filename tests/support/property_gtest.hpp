#pragma once

// gtest glue for the src/testing property harness. Keeps the library
// framework-agnostic while giving tests a one-macro entry point that
// prints the failing case's message and its one-line repro command.
//
// Typical use:
//
//   TEST(PropertyHfx, SchwarzBoundNeverViolated) {
//     MTHFX_PROPERTY("PropertyHfx.SchwarzBoundNeverViolated",
//                    [](mthfx::testing::Rng& rng, std::size_t) -> std::string {
//       ...
//       return ok ? "" : "what broke";
//     });
//   }

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "testing/property.hpp"
#include "testing/shrink.hpp"

/// Run `body` (a Property callable) property_iterations() times under
/// `name`. On failure, FAILs the gtest with message + repro line.
#define MTHFX_PROPERTY(name, body)                                          \
  do {                                                                      \
    const auto mthfx_failure_ = mthfx::testing::run_property(               \
        (name), mthfx::testing::property_iterations(), (body));             \
    if (mthfx_failure_)                                                     \
      FAIL() << "property failed at iteration " << mthfx_failure_->iteration \
             << " (seed " << mthfx_failure_->seed << "):\n  "               \
             << mthfx_failure_->message << "\nrepro: "                      \
             << mthfx_failure_->repro;                                      \
  } while (0)

/// As MTHFX_PROPERTY with an explicit iteration count (for properties
/// whose per-case cost warrants fewer/more runs than the suite default).
#define MTHFX_PROPERTY_N(name, iters, body)                                 \
  do {                                                                      \
    const auto mthfx_failure_ = mthfx::testing::run_property(               \
        (name), mthfx::testing::property_iterations(iters), (body));        \
    if (mthfx_failure_)                                                     \
      FAIL() << "property failed at iteration " << mthfx_failure_->iteration \
             << " (seed " << mthfx_failure_->seed << "):\n  "               \
             << mthfx_failure_->message << "\nrepro: "                      \
             << mthfx_failure_->repro;                                      \
  } while (0)

namespace mthfx::testing {

/// Shrink a failing (molecule, basis) case and append the minimized
/// witness to `message`. Helper for properties that generate molecules:
/// call when the check fails, return the result as the failure string.
inline std::string with_shrunk_case(std::string message,
                                    const chem::Molecule& molecule,
                                    const std::string& basis,
                                    const FailingPredicate& fails) {
  const ShrinkResult shrunk = shrink_failing_case(molecule, basis, fails);
  message += "\n  original: " + describe_case(molecule, basis);
  if (shrunk.steps > 0)
    message += "\n  shrunk (" + std::to_string(shrunk.steps) +
               " steps): " + describe_case(shrunk.molecule, shrunk.basis);
  return message;
}

}  // namespace mthfx::testing
