// Regenerates tests/data/golden/*.json from the current code. Run after
// an *intentional* physics change, eyeball the diff, and commit:
//
//   cmake --build build --target generate_golden
//   ./build/tests/generate_golden tests/data/golden
//
// test_golden.cpp then pins every future build to these numbers.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/json.hpp"
#include "support/golden_cases.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: generate_golden <output-dir>\n";
    return 2;
  }
  const std::string dir = argv[1];
  for (const auto& c : mthfx::golden::golden_cases()) {
    const auto e = mthfx::golden::run_golden_case(c);
    if (!e.converged) {
      std::cerr << c.name << ": SCF did not converge, refusing to write\n";
      return 1;
    }
    mthfx::obs::Json j = mthfx::obs::Json::object();
    j["name"] = c.name;
    j["molecule"] = c.molecule;
    j["basis"] = c.basis;
    j["method"] = c.method;
    j["tolerance"] = c.tolerance;
    j["energy"] = e.energy;
    mthfx::obs::Json comp = mthfx::obs::Json::object();
    comp["nuclear_repulsion"] = e.nuclear_repulsion;
    comp["one_electron"] = e.one_electron;
    comp["coulomb"] = e.coulomb;
    comp["exchange"] = e.exchange;
    j["components"] = std::move(comp);

    const std::string path = dir + "/" + c.name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    out << j.dump(2) << "\n";
    std::cout << c.name << ": E = " << e.energy << " -> " << path << "\n";
  }

  for (const auto& c : mthfx::golden::golden_gradient_cases()) {
    const auto g = mthfx::golden::run_golden_gradient_case(c);
    if (!g.converged) {
      std::cerr << c.name << ": SCF did not converge, refusing to write\n";
      return 1;
    }
    mthfx::obs::Json j = mthfx::obs::Json::object();
    j["name"] = c.name;
    j["molecule"] = c.molecule;
    j["basis"] = c.basis;
    j["method"] = c.method;
    j["tolerance"] = c.tolerance;
    mthfx::obs::Json rows = mthfx::obs::Json::array();
    for (const auto& atom : g.gradient) {
      mthfx::obs::Json row = mthfx::obs::Json::array();
      for (std::size_t d = 0; d < 3; ++d) row.push_back(atom[d]);
      rows.push_back(std::move(row));
    }
    j["gradient"] = std::move(rows);

    const std::string path = dir + "/" + c.name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    out << j.dump(2) << "\n";
    std::cout << c.name << ": " << g.gradient.size() << " atoms -> " << path
              << "\n";
  }
  return 0;
}
