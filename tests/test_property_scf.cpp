// Property-based SCF tests: metamorphic invariances of the converged
// energy (rotation, translation, redundant-config equivalence) on
// seeded, jittered geometries. Physical invariances hold for the whole
// pipeline — integrals, screening, HFX build, DIIS — so these catch
// frame-dependence bugs anywhere in the stack.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "scf/rhf.hpp"
#include "support/property_gtest.hpp"
#include "testing/generators.hpp"
#include "testing/property.hpp"
#include "workload/geometries.hpp"

namespace chem = mthfx::chem;
namespace scf = mthfx::scf;
namespace mt = mthfx::testing;
namespace wl = mthfx::workload;

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// Small closed-shell template drawn per case, then jittered so every
// iteration sees a fresh geometry that still converges. Cheap species
// are weighted up to keep the suite fast.
chem::Molecule random_template(mt::Rng& rng) {
  switch (rng.index(6)) {
    case 0:
    case 1:
      return wl::h2();
    case 2: {
      chem::Molecule lih;
      lih.add_atom(3, {0, 0, 0});
      lih.add_atom(1, {0, 0, 3.0});
      return lih;
    }
    case 3:
      return wl::hydroxide();
    default:
      return wl::water();
  }
}

scf::ScfOptions tight_options() {
  scf::ScfOptions opts;
  opts.energy_tolerance = 1e-10;
  opts.diis_tolerance = 1e-8;
  opts.max_iterations = 200;
  opts.hfx.eps_schwarz = 1e-12;
  opts.hfx.num_threads = 1;  // fixed reduction order: deterministic verdict
  return opts;
}

}  // namespace

TEST(PropertyScf, EnergyIsTranslationInvariant) {
  MTHFX_PROPERTY(
      "PropertyScf.EnergyIsTranslationInvariant",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto moved = mt::randomly_translated(rng, mol, 8.0);
        const auto basis = chem::BasisSet::build(mol, "sto-3g");
        const auto basis_moved = chem::BasisSet::build(moved, "sto-3g");

        const auto opts = tight_options();
        const auto a = scf::rhf(mol, basis, opts);
        const auto b = scf::rhf(moved, basis_moved, opts);
        if (!a.converged || !b.converged)
          return std::string("SCF did not converge (base ") +
                 (a.converged ? "ok" : "failed") + ", translated " +
                 (b.converged ? "ok" : "failed") + ")";
        if (std::abs(a.energy - b.energy) > 2e-8)
          return "translation changed the energy: " + fmt(a.energy) + " vs " +
                 fmt(b.energy);
        return "";
      });
}

TEST(PropertyScf, EnergyIsRotationInvariant) {
  MTHFX_PROPERTY(
      "PropertyScf.EnergyIsRotationInvariant",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto rot = mt::random_rotation(rng);
        const auto turned = mt::rotated(mol, rot);
        const auto basis = chem::BasisSet::build(mol, "sto-3g");
        const auto basis_turned = chem::BasisSet::build(turned, "sto-3g");

        const auto opts = tight_options();
        const auto a = scf::rhf(mol, basis, opts);
        const auto b = scf::rhf(turned, basis_turned, opts);
        if (!a.converged || !b.converged)
          return std::string("SCF did not converge (base ") +
                 (a.converged ? "ok" : "failed") + ", rotated " +
                 (b.converged ? "ok" : "failed") + ")";
        if (std::abs(a.energy - b.energy) > 2e-8)
          return "rotation changed the energy: " + fmt(a.energy) + " vs " +
                 fmt(b.energy);
        // Nuclear repulsion is rotation invariant on its own — isolating
        // it localizes a failure to the geometry layer vs the integrals.
        if (std::abs(a.nuclear_repulsion - b.nuclear_repulsion) > 1e-10)
          return "rotation changed nuclear repulsion: " +
                 fmt(a.nuclear_repulsion) + " vs " + fmt(b.nuclear_repulsion);
        return "";
      });
}

// Redundant configuration knobs (incremental vs full Fock builds,
// rebuild period, schedule, density screening) must not change the
// converged answer.
TEST(PropertyScf, EquivalentConfigsConvergeToSameEnergy) {
  MTHFX_PROPERTY(
      "PropertyScf.EquivalentConfigsConvergeToSameEnergy",
      [](mt::Rng& rng, std::size_t) -> std::string {
        const auto mol = mt::jittered(rng, random_template(rng));
        const auto basis = chem::BasisSet::build(mol, "sto-3g");

        const auto opts_a = mt::random_scf_options(rng);
        const auto opts_b = mt::random_scf_options(rng);
        const auto a = scf::rhf(mol, basis, opts_a);
        const auto b = scf::rhf(mol, basis, opts_b);
        if (!a.converged || !b.converged)
          return std::string("SCF did not converge (a ") +
                 (a.converged ? "ok" : "failed") + ", b " +
                 (b.converged ? "ok" : "failed") + ")";
        if (std::abs(a.energy - b.energy) > 1e-7)
          return "equivalent configs disagree: " + fmt(a.energy) + " vs " +
                 fmt(b.energy) +
                 " (incremental " + std::to_string(opts_a.incremental_fock) +
                 "/" + std::to_string(opts_b.incremental_fock) + ")";
        // Energy components must be consistent with the total in both.
        for (const auto* r : {&a, &b}) {
          const double sum = r->nuclear_repulsion + r->one_electron_energy +
                             r->coulomb_energy + r->exchange_energy;
          if (std::abs(sum - r->energy) > 1e-8)
            return "energy components do not sum to total: " + fmt(sum) +
                   " vs " + fmt(r->energy);
        }
        return "";
      });
}
