// Screening-engine suite (ctest label: engine): JobQueue admission and
// ordering, ResultStore canonical keys and hit accounting, JobScheduler
// concurrency/bit-identity/fault-domain behavior, campaign parsing and
// expansion, and the machine-readable report schemas.
//
// The concurrency tests double as the TSan target for the engine (see
// scripts/run_tsan.sh): workers, submitters, and the registry race here.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/queue.hpp"
#include "engine/report.hpp"
#include "engine/result_store.hpp"
#include "engine/scheduler.hpp"
#include "engine/tenant.hpp"
#include "obs/json.hpp"
#include "workload/geometries.hpp"
#include "workload/replicate.hpp"

namespace app = mthfx::app;
namespace engine = mthfx::engine;
namespace obs = mthfx::obs;
namespace wl = mthfx::workload;

namespace {

engine::Job h2_job(const std::string& name, int priority = 0,
                   int cluster_size = 1) {
  engine::Job job;
  job.name = name;
  job.priority = priority;
  job.input.method = "hf";
  job.input.basis = "sto-3g";
  job.input.eps_schwarz = 1e-8;
  job.input.molecule = wl::cluster_of(wl::h2(), cluster_size, 8.0);
  return job;
}

const obs::Json& member(const obs::Json& j, const std::string& key) {
  const obs::Json* found = j.find(key);
  EXPECT_NE(found, nullptr) << "missing member '" << key << "'";
  static const obs::Json null_json;
  return found ? *found : null_json;
}

}  // namespace

// ---------------------------------------------------------------- queue

TEST(JobQueue, PriorityFirstThenFifoWithinLevel) {
  engine::JobQueue queue(8);
  for (const auto& [name, prio] :
       {std::pair<const char*, int>{"a", 0}, {"b", 0}, {"hot1", 5},
        {"hot2", 5}, {"c", 0}}) {
    const auto verdict = queue.submit(h2_job(name, prio));
    ASSERT_TRUE(verdict.accepted) << verdict.reason;
  }
  queue.close();
  std::vector<std::string> order;
  while (auto popped = queue.pop()) order.push_back(popped->job.name);
  EXPECT_EQ(order, (std::vector<std::string>{"hot1", "hot2", "a", "b", "c"}));
}

TEST(JobQueue, AssignsIdsInSubmissionOrder) {
  engine::JobQueue queue(4);
  queue.submit(h2_job("first"));
  queue.submit(h2_job("second", /*priority=*/9));
  queue.close();
  // Ids record submission order even though priority reorders execution.
  auto popped = queue.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->job.name, "second");
  EXPECT_EQ(popped->job.id, 2u);
  popped = queue.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->job.id, 1u);
  EXPECT_GE(popped->wait_seconds, 0.0);
}

TEST(JobQueue, RejectsWhenFullWithReason) {
  engine::JobQueue queue(2);
  ASSERT_TRUE(queue.submit(h2_job("a")).accepted);
  ASSERT_TRUE(queue.submit(h2_job("b")).accepted);
  const auto verdict = queue.submit(h2_job("c"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_NE(verdict.reason.find("queue full"), std::string::npos)
      << verdict.reason;
  EXPECT_NE(verdict.reason.find("2"), std::string::npos) << verdict.reason;
  EXPECT_EQ(queue.accepted(), 2u);
  EXPECT_EQ(queue.rejected(), 1u);
  // Popping frees capacity: admission recovers.
  (void)queue.pop();
  EXPECT_TRUE(queue.submit(h2_job("c")).accepted);
}

TEST(JobQueue, RejectsJobWithoutGeometry) {
  engine::JobQueue queue(4);
  engine::Job empty;
  empty.name = "hollow";
  const auto verdict = queue.submit(empty);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_NE(verdict.reason.find("no geometry"), std::string::npos);
  EXPECT_NE(verdict.reason.find("hollow"), std::string::npos);
}

TEST(JobQueue, ClosedQueueDrainsThenSignalsEnd) {
  engine::JobQueue queue(4);
  ASSERT_TRUE(queue.submit(h2_job("last")).accepted);
  queue.close();
  EXPECT_TRUE(queue.closed());
  const auto verdict = queue.submit(h2_job("late"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_NE(verdict.reason.find("closed"), std::string::npos);
  EXPECT_TRUE(queue.pop().has_value());   // pending work still drains
  EXPECT_FALSE(queue.pop().has_value());  // then the end marker
}

TEST(JobQueue, CloseWakesBlockedConsumer) {
  engine::JobQueue queue(4);
  std::optional<engine::PoppedJob> got = engine::PoppedJob{};
  std::thread consumer([&] { got = queue.pop(); });
  queue.close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(JobQueue, TracksDepthAndHighWater) {
  engine::JobQueue queue(8);
  queue.submit(h2_job("a"));
  queue.submit(h2_job("b"));
  queue.submit(h2_job("c"));
  EXPECT_EQ(queue.depth(), 3u);
  (void)queue.pop();
  (void)queue.pop();
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.high_water(), 3u);
}

// ---------------------------------------------------------------- store

TEST(ResultStore, KeyIgnoresExecutionPolicyFields) {
  app::Input base = h2_job("x").input;
  app::Input tweaked = base;
  tweaked.num_threads = 7;
  tweaked.checkpoint_path = "run.ckpt";
  tweaked.restore_path = "run.ckpt";
  tweaked.fault.fail_rate = 0.25;
  tweaked.fault.seed = 99;
  EXPECT_EQ(engine::input_key(base), engine::input_key(tweaked));
  EXPECT_EQ(engine::canonical_fingerprint(base),
            engine::canonical_fingerprint(tweaked));
}

TEST(ResultStore, KeySensitiveToPhysicsFields) {
  const app::Input base = h2_job("x").input;
  const auto baseline = engine::input_key(base);

  app::Input other = base;
  other.method = "pbe0";
  EXPECT_NE(engine::input_key(other), baseline);

  other = base;
  other.eps_schwarz = 1e-9;
  EXPECT_NE(engine::input_key(other), baseline);

  other = base;  // a 1-ulp coordinate nudge must miss the cache
  auto pos = other.molecule.atom(1).pos;
  pos.z = std::nextafter(pos.z, 2.0 * pos.z + 1.0);
  other.molecule.set_position(1, pos);
  EXPECT_NE(engine::input_key(other), baseline);
}

TEST(ResultStore, KeyCanonicalizesSignedZeroCoordinates) {
  // -0.0 == +0.0 to every consumer of the geometry, but its sign bit
  // differs — raw bit-pattern hashing used to split these into two cache
  // entries, so reflected/axis-aligned geometries re-ran from scratch.
  app::Input pos_zero = h2_job("x").input;
  auto p = pos_zero.molecule.atom(0).pos;
  p.x = 0.0;
  pos_zero.molecule.set_position(0, p);

  app::Input neg_zero = pos_zero;
  p.x = -0.0;
  neg_zero.molecule.set_position(0, p);
  ASSERT_TRUE(std::signbit(neg_zero.molecule.atom(0).pos.x));

  EXPECT_EQ(engine::input_key(pos_zero), engine::input_key(neg_zero));
  EXPECT_EQ(engine::canonical_fingerprint(pos_zero),
            engine::canonical_fingerprint(neg_zero));

  // A cached result stored under +0.0 must be served to the -0.0 twin.
  engine::ResultStore store;
  app::StructuredResult result;
  result.ok = true;
  result.energy = -1.0;
  store.insert(engine::input_key(pos_zero), result);
  EXPECT_TRUE(store.lookup(engine::input_key(neg_zero)).has_value());

  // Canonicalization must not blur a genuinely nonzero coordinate.
  app::Input shifted = pos_zero;
  p.x = 1e-300;
  shifted.molecule.set_position(0, p);
  EXPECT_NE(engine::input_key(shifted), engine::input_key(pos_zero));
}

TEST(ResultStore, GridParticipatesOnlyWhenMethodHasXcGrid) {
  app::Input hf = h2_job("x").input;
  app::Input hf_grid = hf;
  hf_grid.grid_radial = 80;
  // Pure HF never touches the XC grid: same answer, same key.
  EXPECT_EQ(engine::input_key(hf), engine::input_key(hf_grid));

  app::Input dft = hf;
  dft.method = "pbe0";
  app::Input dft_grid = dft;
  dft_grid.grid_radial = 80;
  EXPECT_NE(engine::input_key(dft), engine::input_key(dft_grid));
}

TEST(ResultStore, CountsHitsAndMisses) {
  engine::ResultStore store;
  const auto key = engine::input_key(h2_job("x").input);
  EXPECT_FALSE(store.lookup(key).has_value());
  app::StructuredResult result;
  result.ok = true;
  result.energy = -1.0;
  store.insert(key, result);
  const auto cached = store.lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->energy, -1.0);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.size(), 1u);
  // First insert wins: a duplicate finishing later cannot flip numbers.
  result.energy = -2.0;
  store.insert(key, result);
  EXPECT_EQ(store.lookup(key)->energy, -1.0);
}

// ------------------------------------------------------------ scheduler

TEST(JobScheduler, ConcurrentCampaignBitIdenticalToSequential) {
  std::vector<engine::Job> jobs;
  for (int size = 1; size <= 4; ++size)
    jobs.push_back(h2_job("h2.n" + std::to_string(size), 0, size));
  engine::Job water = h2_job("water");
  water.input.molecule = wl::water();
  jobs.push_back(water);

  std::vector<double> sequential;
  for (const auto& job : jobs)
    sequential.push_back(app::run_structured(job.input).energy);

  engine::EngineOptions opts;
  opts.concurrency = 4;
  opts.cache = false;
  engine::JobScheduler scheduler(opts);
  scheduler.start();
  for (const auto& job : jobs)
    ASSERT_TRUE(scheduler.submit(job).accepted);
  const auto records = scheduler.drain();

  ASSERT_EQ(records.size(), jobs.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].state, engine::JobState::kDone) << records[i].name;
    // Exact double comparison on purpose: the acceptance criterion is
    // bit-identity with the single-shot driver, not closeness.
    EXPECT_EQ(records[i].result.energy, sequential[i]) << records[i].name;
  }
  EXPECT_EQ(scheduler.registry().counter_total("engine.jobs_completed"),
            jobs.size());
}

TEST(JobScheduler, DuplicateJobsServedFromCache) {
  engine::EngineOptions opts;
  opts.concurrency = 1;  // deterministic order: the duplicate runs second
  engine::JobScheduler scheduler(opts);
  ASSERT_TRUE(scheduler.submit(h2_job("orig")).accepted);
  ASSERT_TRUE(scheduler.submit(h2_job("dup")).accepted);
  ASSERT_TRUE(scheduler.submit(h2_job("other", 0, 2)).accepted);
  const auto records = scheduler.drain();

  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(records[0].cache_hit);
  EXPECT_TRUE(records[1].cache_hit);
  EXPECT_FALSE(records[2].cache_hit);
  EXPECT_EQ(records[1].result.energy, records[0].result.energy);
  EXPECT_EQ(scheduler.store().hits(), 1u);
  EXPECT_EQ(scheduler.registry().counter_total("engine.cache_hits"), 1u);
  EXPECT_GE(scheduler.registry().counter_total("engine.cache_misses"), 2u);
}

TEST(JobScheduler, CacheOffExecutesEveryJob) {
  engine::EngineOptions opts;
  opts.concurrency = 1;
  opts.cache = false;
  engine::JobScheduler scheduler(opts);
  scheduler.submit(h2_job("a"));
  scheduler.submit(h2_job("a-again"));
  const auto records = scheduler.drain();
  EXPECT_FALSE(records[0].cache_hit);
  EXPECT_FALSE(records[1].cache_hit);
  EXPECT_EQ(scheduler.store().hits(), 0u);
}

TEST(JobScheduler, SharesThreadBudgetAcrossConcurrentJobs) {
  engine::EngineOptions opts;
  opts.concurrency = 4;
  opts.total_threads = 8;
  engine::JobScheduler scheduler(opts);
  EXPECT_EQ(scheduler.total_threads(), 8u);
  EXPECT_EQ(scheduler.per_job_threads(), 2u);

  engine::Job wide = h2_job("wide");    // asks for everything -> capped
  engine::Job narrow = h2_job("narrow");
  narrow.input.num_threads = 1;         // asks below the cap -> honored
  scheduler.submit(wide);
  scheduler.submit(narrow);
  const auto records = scheduler.drain();
  EXPECT_EQ(records[0].threads, 2u);
  EXPECT_EQ(records[1].threads, 1u);
}

TEST(JobScheduler, RejectedJobsStillAppearInRecords) {
  engine::EngineOptions opts;
  opts.concurrency = 2;
  opts.queue_capacity = 1;
  engine::JobScheduler scheduler(opts);  // not started: queue stays full
  ASSERT_TRUE(scheduler.submit(h2_job("kept")).accepted);
  EXPECT_FALSE(scheduler.submit(h2_job("shed1")).accepted);
  EXPECT_FALSE(scheduler.submit(h2_job("shed2")).accepted);
  const auto records = scheduler.drain();

  ASSERT_EQ(records.size(), 3u);
  // Rejected jobs never get an id and sort first, in submission order.
  EXPECT_EQ(records[0].name, "shed1");
  EXPECT_EQ(records[0].state, engine::JobState::kRejected);
  EXPECT_NE(records[0].reject_reason.find("queue full"), std::string::npos);
  EXPECT_EQ(records[1].name, "shed2");
  EXPECT_EQ(records[2].name, "kept");
  EXPECT_EQ(records[2].state, engine::JobState::kDone);
  EXPECT_EQ(scheduler.registry().counter_total("engine.jobs_rejected"), 2u);
}

TEST(JobScheduler, FaultedJobRetriesAndRecovers) {
  // Seed 3 deterministically fails the first attempt and passes the
  // second (the scheduler re-seeds the injector per attempt): the
  // injector draws from hash(seed, site, attempt), so this is stable
  // across machines and thread counts.
  engine::Job job = h2_job("flaky");
  job.input.fault.fail_rate = 0.05;
  job.input.fault.max_retries = 0;  // task failures escape to the engine
  job.input.fault.seed = 3;

  engine::EngineOptions opts;
  opts.concurrency = 1;
  opts.max_job_retries = 3;
  opts.cache = false;
  engine::JobScheduler scheduler(opts);
  scheduler.submit(job);
  const auto records = scheduler.drain();

  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].state, engine::JobState::kDone);
  EXPECT_EQ(records[0].attempts, 2u);
  EXPECT_EQ(scheduler.registry().counter_total("engine.job_retries"), 1u);
  // Recovered faults cannot change the answer.
  EXPECT_EQ(records[0].result.energy,
            app::run_structured(h2_job("clean").input).energy);
}

TEST(JobScheduler, PermanentFailureIsIsolatedToItsJob) {
  engine::Job doomed = h2_job("doomed");
  doomed.input.fault.fail_rate = 1.0;  // every task, every attempt
  doomed.input.fault.max_retries = 0;

  engine::EngineOptions opts;
  opts.concurrency = 2;
  opts.max_job_retries = 2;
  opts.cache = false;
  engine::JobScheduler scheduler(opts);
  scheduler.submit(doomed);
  scheduler.submit(h2_job("fine1"));
  scheduler.submit(h2_job("fine2", 0, 2));
  const auto records = scheduler.drain();

  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].state, engine::JobState::kFailed);
  EXPECT_EQ(records[0].attempts, 3u);  // 1 + max_job_retries
  EXPECT_FALSE(records[0].error.empty());
  EXPECT_EQ(records[1].state, engine::JobState::kDone);
  EXPECT_EQ(records[2].state, engine::JobState::kDone);
  EXPECT_EQ(scheduler.registry().counter_total("engine.jobs_failed"), 1u);
  EXPECT_EQ(scheduler.registry().counter_total("engine.jobs_completed"), 2u);
}

// ------------------------------------------------------------- campaign

namespace {

const char* kCampaignText = R"(
# engine block
concurrency 3
queue_capacity 64
total_threads 8
job_retries 2
cache off

sweep
  molecules water h2
  sizes 1 2
  bases sto-3g
  methods hf pbe0
  spacing 9.0
  eps_schwarz 1e-8
  repeat 2
end

sweep
  molecules lio2-
  methods hf
  priority 10
  fault_spec fail=0.25,seed=7
end
)";

}  // namespace

TEST(Campaign, ParsesEngineSettings) {
  const auto spec = engine::parse_campaign(kCampaignText);
  EXPECT_EQ(spec.engine.concurrency, 3u);
  EXPECT_EQ(spec.engine.queue_capacity, 64u);
  EXPECT_EQ(spec.engine.total_threads, 8u);
  EXPECT_EQ(spec.engine.max_job_retries, 2u);
  EXPECT_FALSE(spec.engine.cache);
  ASSERT_EQ(spec.sweeps.size(), 2u);
  EXPECT_EQ(spec.sweeps[1].priority, 10);
  EXPECT_DOUBLE_EQ(spec.sweeps[1].fault.fail_rate, 0.25);
  EXPECT_EQ(spec.sweeps[1].fault.seed, 7u);
}

TEST(Campaign, ExpandsCrossProductTimesRepeat) {
  const auto jobs = engine::parse_campaign(kCampaignText).expand();
  // Sweep 1: 2 molecules x 2 sizes x 1 basis x 2 methods x repeat 2 = 16;
  // sweep 2: a single lio2- job.
  ASSERT_EQ(jobs.size(), 17u);
  EXPECT_EQ(jobs[0].name, "water.n1.sto-3g.hf#r1");
  EXPECT_EQ(jobs[1].name, "water.n1.sto-3g.pbe0#r1");
  EXPECT_EQ(jobs[8].name, "water.n1.sto-3g.hf#r2");  // repeats outermost
  EXPECT_EQ(jobs[16].name, "lio2-.n1.sto-3g.hf");
  EXPECT_EQ(jobs[16].priority, 10);
  // Cluster chemistry: n2 water = 6 atoms; the anion carries its charge.
  EXPECT_EQ(jobs[2].input.molecule.size(), 6u);
  EXPECT_EQ(jobs[16].input.charge, -1);
  EXPECT_EQ(jobs[16].input.multiplicity, 1);  // 20 electrons: singlet
}

TEST(Campaign, RepeatRunsShareTheCacheKey) {
  const auto jobs = engine::parse_campaign(kCampaignText).expand();
  EXPECT_EQ(engine::input_key(jobs[0].input),
            engine::input_key(jobs[8].input));
}

TEST(Campaign, RejectsDuplicateKeywordsPerScope) {
  try {
    engine::parse_campaign("concurrency 2\nconcurrency 4\n");
    FAIL() << "expected duplicate-keyword rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("concurrency"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      engine::parse_campaign("sweep\n  sizes 1\n  sizes 2\nend\n"),
      std::runtime_error);
  // Same keyword in two different sweeps is fine.
  EXPECT_NO_THROW(engine::parse_campaign(
      "sweep\n  sizes 1\nend\nsweep\n  sizes 2\nend\n"));
}

TEST(Campaign, RejectsMalformedFiles) {
  EXPECT_THROW(engine::parse_campaign("sweep\n  molecules water\n"),
               std::runtime_error);  // unterminated sweep
  EXPECT_THROW(engine::parse_campaign("warp_speed 9\n"),
               std::runtime_error);  // unknown keyword
  EXPECT_THROW(engine::parse_campaign("cache sometimes\n"),
               std::runtime_error);  // cache wants on|off
  EXPECT_THROW(engine::parse_campaign("concurrency 2\n"),
               std::runtime_error);  // engine settings alone: no sweep
  EXPECT_THROW(engine::parse_campaign("sweep\n  sizes 0\nend\n"),
               std::runtime_error);  // sizes must be >= 1
}

TEST(Campaign, UnknownMoleculeFailsAtExpansion) {
  const auto spec =
      engine::parse_campaign("sweep\n  molecules benzene\nend\n");
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

// -------------------------------------------------------------- reports

TEST(Report, ResultRecordRoundTripsThroughJson) {
  const engine::Job job = h2_job("probe");
  const auto result = app::run_structured(job.input);
  const auto record = engine::result_record(job.input, result);
  const auto parsed = obs::Json::parse(record.dump(2));

  EXPECT_EQ(member(parsed, "schema").as_string(), "mthfx.result.v1");
  const auto& input = member(parsed, "input");
  EXPECT_EQ(member(input, "method").as_string(), "hf");
  EXPECT_EQ(member(input, "num_atoms").as_int(), 2);
  EXPECT_FALSE(member(input, "fingerprint").as_string().empty());
  const auto& res = member(parsed, "result");
  EXPECT_TRUE(member(res, "converged").as_bool());
  // obs::Json doubles round-trip bit-exactly.
  EXPECT_EQ(member(res, "energy").as_double(), result.energy);
}

TEST(Report, CampaignReportCarriesQueueCacheAndJobAccounting) {
  engine::EngineOptions opts;
  opts.concurrency = 2;
  engine::JobScheduler scheduler(opts);
  scheduler.submit(h2_job("a"));
  scheduler.submit(h2_job("a-dup"));
  const auto records = scheduler.drain();
  const auto report = engine::campaign_report(scheduler, records);
  const auto parsed = obs::Json::parse(report.dump());

  EXPECT_EQ(member(parsed, "schema").as_string(), "mthfx.campaign.v1");
  EXPECT_EQ(member(member(parsed, "engine"), "concurrency").as_int(), 2);
  EXPECT_EQ(member(member(parsed, "queue"), "accepted").as_int(), 2);
  EXPECT_EQ(member(parsed, "jobs_done").as_int(), 2);
  EXPECT_EQ(member(parsed, "jobs").size(), 2u);
  const auto& metrics = member(parsed, "metrics");
  EXPECT_TRUE(metrics.is_object());
}

TEST(Report, RejectedJobRecordKeepsOnlyAdmissionFields) {
  engine::JobRecord record;
  record.name = "shed";
  record.state = engine::JobState::kRejected;
  record.reject_reason = "queue full (capacity 1, depth 1)";
  const auto parsed = obs::Json::parse(engine::job_record(record).dump());
  EXPECT_EQ(member(parsed, "state").as_string(), "rejected");
  EXPECT_NE(member(parsed, "reject_reason").as_string().find("queue full"),
            std::string::npos);
  EXPECT_EQ(parsed.find("result"), nullptr);
}

// ----------------------------------------------------- fair-share tenancy

namespace {
const engine::TenantStats& tenant_stats(const engine::FairShareQueue& fair,
                                        const std::string& id) {
  static engine::TenantStats none;
  for (const auto& [tenant, stats] : fair.stats())
    if (tenant == id) return stats;
  ADD_FAILURE() << "no stats for tenant '" << id << "'";
  return none;
}
}  // namespace

// The reject formats below are part of the service protocol surface
// (clients parse them out of error responses), so they are pinned
// exactly — see docs/engine.md (Service).
TEST(JobQueue, RejectReasonFormatIsPinned) {
  engine::JobQueue queue(2);
  ASSERT_TRUE(queue.submit(h2_job("a")).accepted);
  ASSERT_TRUE(queue.submit(h2_job("b")).accepted);
  EXPECT_EQ(queue.submit(h2_job("c")).reason,
            "queue full (capacity 2, depth 2)");
}

TEST(FairShare, TenantQuotaRejectReasonFormatIsPinned) {
  engine::EngineOptions opts;
  opts.concurrency = 1;
  opts.queue_capacity = 1;  // core holds one job; the rest stay pending
  engine::JobScheduler scheduler(opts);  // never started: nothing runs
  engine::FairShareQueue fair(scheduler);
  engine::TenantOptions acme;
  acme.max_queued = 2;
  fair.configure("acme", acme);
  ASSERT_TRUE(fair.submit("acme", h2_job("a")).accepted);  // -> core queue
  ASSERT_TRUE(fair.submit("acme", h2_job("b")).accepted);  // pending 1/2
  ASSERT_TRUE(fair.submit("acme", h2_job("c")).accepted);  // pending 2/2
  const auto verdict = fair.submit("acme", h2_job("d"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "tenant quota: 'acme' queued 2/2 (in-flight 1)");
  // With an in-flight cap the reason carries it as a /cap suffix.
  engine::JobScheduler scheduler2(opts);
  engine::FairShareQueue fair2(scheduler2);
  engine::TenantOptions capped;
  capped.max_queued = 1;
  capped.max_in_flight = 1;
  fair2.configure("beta", capped);
  ASSERT_TRUE(fair2.submit("beta", h2_job("x")).accepted);  // -> core queue
  ASSERT_TRUE(fair2.submit("beta", h2_job("y")).accepted);  // pending 1/1
  EXPECT_EQ(fair2.submit("beta", h2_job("z")).reason,
            "tenant quota: 'beta' queued 1/1 (in-flight 1/1)");
}

TEST(FairShare, DeficitRoundRobinHonoursWeights) {
  engine::EngineOptions opts;
  opts.concurrency = 1;
  opts.queue_capacity = 6;
  engine::JobScheduler scheduler(opts);  // never started: admissions are
  engine::FairShareQueue fair(scheduler);  // pure DRR decisions
  engine::TenantOptions heavy, light;
  heavy.weight = 2.0;
  light.weight = 1.0;
  fair.configure("heavy", heavy);
  fair.configure("light", light);
  // Plug the core queue first so heavy/light submissions all land in
  // their tenant backlogs — with free slots admission is FIFO-on-arrival
  // and no fair-share decision happens.
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(fair.submit("plug", h2_job("p" + std::to_string(i))).accepted);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        fair.submit("heavy", h2_job("h" + std::to_string(i))).accepted);
    ASSERT_TRUE(
        fair.submit("light", h2_job("l" + std::to_string(i))).accepted);
  }
  EXPECT_EQ(fair.backlog(), 20u);
  // Drain the plugs as a worker pool would, then pump: the six freed
  // slots must split 2:1 by weight — heavy 4, light 2.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(scheduler.queue().pop().has_value());
  fair.pump();
  EXPECT_EQ(tenant_stats(fair, "heavy").admitted, 4u);
  EXPECT_EQ(tenant_stats(fair, "light").admitted, 2u);
  EXPECT_EQ(fair.backlog(), 14u);
}

TEST(FairShare, InFlightCapHoldsJobsBackUntilCompletions) {
  engine::EngineOptions opts;
  opts.concurrency = 1;
  opts.queue_capacity = 8;
  engine::JobScheduler scheduler(opts);
  engine::FairShareQueue fair(scheduler);
  engine::TenantOptions capped;
  capped.max_in_flight = 2;
  fair.configure("capped", capped);
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(
        fair.submit("capped", h2_job("j" + std::to_string(i))).accepted);
  // Only two admitted despite six free core slots.
  EXPECT_EQ(tenant_stats(fair, "capped").admitted, 2u);
  EXPECT_EQ(fair.backlog(), 3u);
}

TEST(FairShare, ConfigureRejectsNonsenseOptions) {
  engine::EngineOptions opts;
  engine::JobScheduler scheduler(opts);
  engine::FairShareQueue fair(scheduler);
  engine::TenantOptions bad;
  bad.weight = 0.0;
  EXPECT_THROW(fair.configure("t", bad), std::invalid_argument);
  bad.weight = 1.0;
  bad.max_queued = 0;
  EXPECT_THROW(fair.configure("t", bad), std::invalid_argument);
}

TEST(FairShare, CancelRemovesPendingJobAndRecordsIt) {
  engine::EngineOptions opts;
  opts.concurrency = 1;
  opts.queue_capacity = 1;
  engine::JobScheduler scheduler(opts);
  engine::FairShareQueue fair(scheduler);
  ASSERT_TRUE(fair.submit("t", h2_job("runs")).accepted);  // fills core
  const auto pending = fair.submit("t", h2_job("waits"));
  ASSERT_TRUE(pending.accepted);
  std::string error;
  EXPECT_FALSE(fair.cancel(999, "", &error));
  EXPECT_EQ(error, "job 999 is not pending here");
  EXPECT_TRUE(fair.cancel(pending.id, "changed my mind", &error));
  EXPECT_EQ(fair.backlog(), 0u);
  EXPECT_EQ(tenant_stats(fair, "t").canceled, 1u);
  // Canceling an already-admitted job is the scheduler's problem, not
  // the sub-queue's: callers get a distinct error.
  const auto records = scheduler.drain();
  bool saw_cancel = false;
  for (const auto& r : records)
    if (r.state == engine::JobState::kCanceled) {
      saw_cancel = true;
      EXPECT_EQ(r.id, pending.id);
      EXPECT_EQ(r.error, "changed my mind");
    }
  EXPECT_TRUE(saw_cancel);
}
