#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ints/boys.hpp"

namespace ints = mthfx::ints;

namespace {

// Reference via adaptive Simpson on F_m(T) = ∫₀¹ t^{2m} e^{-T t²} dt.
double boys_quadrature(int m, double t) {
  const int n = 20000;  // fine uniform Simpson grid
  const double h = 1.0 / n;
  auto f = [&](double x) { return std::pow(x, 2 * m) * std::exp(-t * x * x); };
  double s = f(0.0) + f(1.0);
  for (int i = 1; i < n; ++i) s += (i % 2 ? 4.0 : 2.0) * f(i * h);
  return s * h / 3.0;
}

}  // namespace

TEST(Boys, ZeroArgumentClosedForm) {
  std::vector<double> out(6);
  ints::boys(5, 0.0, out);
  for (int m = 0; m <= 5; ++m)
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(m)], 1.0 / (2 * m + 1));
}

TEST(Boys, F0MatchesErfForm) {
  // F_0(T) = sqrt(pi/T)/2 * erf(sqrt(T)), valid at any T > 0.
  for (double t : {0.1, 0.5, 1.0, 5.0, 20.0, 40.0, 100.0}) {
    const double ref = 0.5 * std::sqrt(M_PI / t) * std::erf(std::sqrt(t));
    EXPECT_NEAR(ints::boys_single(0, t), ref, 1e-13) << "T=" << t;
  }
}

class BoysVsQuadrature
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BoysVsQuadrature, MatchesNumericalIntegral) {
  const auto [m, t] = GetParam();
  EXPECT_NEAR(ints::boys_single(m, t), boys_quadrature(m, t), 1e-11)
      << "m=" << m << " T=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoysVsQuadrature,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5, 8),
                       ::testing::Values(1e-8, 1e-3, 0.3, 1.0, 3.0, 10.0, 30.0,
                                         35.9, 36.1, 50.0, 200.0)));

TEST(Boys, DownwardRecursionConsistency) {
  // The defining recursion F_{m+1} = [(2m+1) F_m - e^{-T}] / (2T) must hold
  // across the small/large-T implementation switch.
  for (double t : {0.5, 5.0, 20.0, 35.0, 37.0, 80.0}) {
    std::vector<double> f(8);
    ints::boys(7, t, f);
    for (int m = 0; m < 7; ++m) {
      const double rhs =
          ((2 * m + 1) * f[static_cast<std::size_t>(m)] - std::exp(-t)) /
          (2.0 * t);
      EXPECT_NEAR(f[static_cast<std::size_t>(m + 1)], rhs, 1e-12 * f[0])
          << "m=" << m << " T=" << t;
    }
  }
}

TEST(Boys, MonotoneDecreasingInM) {
  for (double t : {0.0, 1.0, 10.0, 100.0}) {
    std::vector<double> f(10);
    ints::boys(9, t, f);
    for (int m = 0; m < 9; ++m)
      EXPECT_GT(f[static_cast<std::size_t>(m)],
                f[static_cast<std::size_t>(m + 1)]);
  }
}

TEST(Boys, AsymptoticLargeT) {
  // F_m(T) -> (2m-1)!! / (2T)^m * sqrt(pi/T)/2 as T -> inf.
  const double t = 500.0;
  double dfact = 1.0;
  for (int m = 0; m <= 4; ++m) {
    const double ref = dfact / std::pow(2.0 * t, m) * 0.5 * std::sqrt(M_PI / t);
    EXPECT_NEAR(ints::boys_single(m, t) / ref, 1.0, 1e-10);
    dfact *= (2 * m + 1);
  }
}

TEST(Boys, SeamContinuityAcrossBranchSwitch) {
  // The downward-series / upward-erf switch lives at max(18, 2 m_max):
  // T just below that threshold takes the series+downward branch, T at
  // or above it takes the erf+upward branch. F_m changes by ~1 ulp over
  // one ulp of T, so the straddle pair below must agree to the ~1e-15
  // evaluator noise floor; a branch mismatch (the historical fixed seam
  // at T = 36 stepped between two different noise floors) shows up as a
  // jump orders of magnitude larger.
  constexpr int kMaxM = 12;  // largest m_max the ERI kernel requests
  for (int m_max = 0; m_max <= kMaxM; ++m_max) {
    const double seam = std::max(18.0, 2.0 * m_max);
    const double below = std::nextafter(seam, 0.0);  // downward branch
    double lo[ints::kBoysMaxM + 1], hi[ints::kBoysMaxM + 1];
    ints::boys(m_max, below, {lo, static_cast<std::size_t>(m_max) + 1});
    ints::boys(m_max, seam, {hi, static_cast<std::size_t>(m_max) + 1});
    for (int m = 0; m <= m_max; ++m) {
      const std::size_t mi = static_cast<std::size_t>(m);
      EXPECT_NEAR(hi[mi], lo[mi], 1e-13 * lo[mi])
          << "m_max=" << m_max << " m=" << m << " seam=" << seam;
    }
  }
  // The old seam's window: both sides of T = 36 must also track the
  // integral itself, not merely each other.
  for (int m_max = 0; m_max <= kMaxM; m_max += 4) {
    for (double t = 35.9; t <= 36.1; t += 0.02) {
      const double got = ints::boys_single(m_max, t);
      EXPECT_NEAR(got / boys_quadrature(m_max, t), 1.0, 1e-10)
          << "m_max=" << m_max << " T=" << t;
    }
  }
}

TEST(Boys, SingleHandlesMaxSupportedOrder) {
  // boys_single runs on a fixed stack buffer sized by kBoysMaxM (it used
  // to heap-allocate per call); the top supported order must work and
  // agree with quadrature.
  const int m = ints::kBoysMaxM;
  for (double t : {1e-6, 0.5, 7.0, 42.0, 300.0})
    EXPECT_NEAR(ints::boys_single(m, t) / boys_quadrature(m, t), 1.0, 1e-10)
        << "T=" << t;
}

TEST(BoysBatch, MatchesScalarAcrossRegimes) {
  // One batch deliberately straddling every branch: tiny-T series,
  // mid-range tabulated-Taylor downward lanes, and upward erf lanes,
  // for every m_max the ERI kernel can request.
  const double ts[ints::kBoysBatchWidth] = {1e-14, 1e-3, 0.7,  5.0,
                                            17.9,  19.0, 36.0, 250.0};
  for (int m_max = 0; m_max <= ints::kBoysMaxM; ++m_max) {
    double batch[(ints::kBoysMaxM + 1) * ints::kBoysBatchWidth];
    ints::boys_batch(m_max, ts, batch);
    for (std::size_t w = 0; w < ints::kBoysBatchWidth; ++w) {
      double ref[ints::kBoysMaxM + 1];
      ints::boys(m_max, ts[w], {ref, static_cast<std::size_t>(m_max) + 1});
      for (int m = 0; m <= m_max; ++m) {
        const double b =
            batch[static_cast<std::size_t>(m) * ints::kBoysBatchWidth + w];
        const double r = ref[static_cast<std::size_t>(m)];
        EXPECT_NEAR(b, r, 1e-13 * r)
            << "m_max=" << m_max << " m=" << m << " T=" << ts[w];
      }
    }
  }
}

TEST(BoysBatch, UniformBranchLanesTakeFastPaths) {
  // All-downward and all-upward batches skip the per-lane blend; both
  // fast paths must agree with the scalar evaluator too.
  const double all_down[ints::kBoysBatchWidth] = {0.1, 0.5, 1.0, 2.0,
                                                  4.0, 8.0, 12.0, 17.0};
  const double all_up[ints::kBoysBatchWidth] = {40.0,  50.0,  60.0,  80.0,
                                                100.0, 150.0, 200.0, 400.0};
  for (const double* ts : {all_down, all_up}) {
    double batch[(ints::kBoysMaxM + 1) * ints::kBoysBatchWidth];
    ints::boys_batch(ints::kBoysMaxM, ts, batch);
    for (std::size_t w = 0; w < ints::kBoysBatchWidth; ++w) {
      const double r = ints::boys_single(ints::kBoysMaxM, ts[w]);
      const double b = batch[static_cast<std::size_t>(ints::kBoysMaxM) *
                                 ints::kBoysBatchWidth +
                             w];
      EXPECT_NEAR(b, r, 1e-13 * r) << "T=" << ts[w];
    }
  }
}
