#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ints/boys.hpp"

namespace ints = mthfx::ints;

namespace {

// Reference via adaptive Simpson on F_m(T) = ∫₀¹ t^{2m} e^{-T t²} dt.
double boys_quadrature(int m, double t) {
  const int n = 20000;  // fine uniform Simpson grid
  const double h = 1.0 / n;
  auto f = [&](double x) { return std::pow(x, 2 * m) * std::exp(-t * x * x); };
  double s = f(0.0) + f(1.0);
  for (int i = 1; i < n; ++i) s += (i % 2 ? 4.0 : 2.0) * f(i * h);
  return s * h / 3.0;
}

}  // namespace

TEST(Boys, ZeroArgumentClosedForm) {
  std::vector<double> out(6);
  ints::boys(5, 0.0, out);
  for (int m = 0; m <= 5; ++m)
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(m)], 1.0 / (2 * m + 1));
}

TEST(Boys, F0MatchesErfForm) {
  // F_0(T) = sqrt(pi/T)/2 * erf(sqrt(T)), valid at any T > 0.
  for (double t : {0.1, 0.5, 1.0, 5.0, 20.0, 40.0, 100.0}) {
    const double ref = 0.5 * std::sqrt(M_PI / t) * std::erf(std::sqrt(t));
    EXPECT_NEAR(ints::boys_single(0, t), ref, 1e-13) << "T=" << t;
  }
}

class BoysVsQuadrature
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BoysVsQuadrature, MatchesNumericalIntegral) {
  const auto [m, t] = GetParam();
  EXPECT_NEAR(ints::boys_single(m, t), boys_quadrature(m, t), 1e-11)
      << "m=" << m << " T=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoysVsQuadrature,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5, 8),
                       ::testing::Values(1e-8, 1e-3, 0.3, 1.0, 3.0, 10.0, 30.0,
                                         35.9, 36.1, 50.0, 200.0)));

TEST(Boys, DownwardRecursionConsistency) {
  // The defining recursion F_{m+1} = [(2m+1) F_m - e^{-T}] / (2T) must hold
  // across the small/large-T implementation switch.
  for (double t : {0.5, 5.0, 20.0, 35.0, 37.0, 80.0}) {
    std::vector<double> f(8);
    ints::boys(7, t, f);
    for (int m = 0; m < 7; ++m) {
      const double rhs =
          ((2 * m + 1) * f[static_cast<std::size_t>(m)] - std::exp(-t)) /
          (2.0 * t);
      EXPECT_NEAR(f[static_cast<std::size_t>(m + 1)], rhs, 1e-12 * f[0])
          << "m=" << m << " T=" << t;
    }
  }
}

TEST(Boys, MonotoneDecreasingInM) {
  for (double t : {0.0, 1.0, 10.0, 100.0}) {
    std::vector<double> f(10);
    ints::boys(9, t, f);
    for (int m = 0; m < 9; ++m)
      EXPECT_GT(f[static_cast<std::size_t>(m)],
                f[static_cast<std::size_t>(m + 1)]);
  }
}

TEST(Boys, AsymptoticLargeT) {
  // F_m(T) -> (2m-1)!! / (2T)^m * sqrt(pi/T)/2 as T -> inf.
  const double t = 500.0;
  double dfact = 1.0;
  for (int m = 0; m <= 4; ++m) {
    const double ref = dfact / std::pow(2.0 * t, m) * 0.5 * std::sqrt(M_PI / t);
    EXPECT_NEAR(ints::boys_single(m, t) / ref, 1.0, 1e-10);
    dfact *= (2 * m + 1);
  }
}
