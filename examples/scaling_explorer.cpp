// Scaling explorer — interactively sized version of the paper's scaling
// study. Measures the real HFX kernel on this host, then projects the
// measured task-cost distribution onto any BG/Q partition.
//
// Run:  ./build/examples/scaling_explorer [molecules] [target_molecules]
//   molecules         PC copies measured on the host (default 2)
//   target_molecules  condensed-phase system size to project (default 256)

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bgq/simulator.hpp"
#include "chem/basis.hpp"
#include "hfx/fock_builder.hpp"
#include "ints/one_electron.hpp"
#include "linalg/eigen.hpp"
#include "scf/guess.hpp"
#include "workload/geometries.hpp"
#include "workload/replicate.hpp"

int main(int argc, char** argv) {
  using namespace mthfx;
  const int molecules = argc > 1 ? std::atoi(argv[1]) : 2;
  const int target = argc > 2 ? std::atoi(argv[2]) : 256;

  // --- host measurement -------------------------------------------------
  const auto cluster =
      workload::cluster_of(workload::propylene_carbonate(), molecules, 9.0);
  const auto basis = chem::BasisSet::build(cluster, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, cluster, x);

  std::printf("host workload: %d PC molecules, %zu AOs, %zu shells\n",
              molecules, basis.num_functions(), basis.num_shells());

  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-8;
  opts.record_task_costs = true;
  hfx::FockBuilder builder(basis, opts);
  const auto result = builder.exchange(p);
  std::printf("host HFX build: %.3f s, %llu quartets over %zu tasks on %zu "
              "threads\n",
              result.stats.wall_seconds,
              static_cast<unsigned long long>(
                  result.stats.screening.quartets_computed),
              result.stats.num_tasks,
              result.stats.thread_busy_seconds.size());

  // --- machine projection ------------------------------------------------
  const auto dist =
      bgq::EmpiricalCostDistribution::from_records(result.stats.task_costs);
  const double growth = std::pow(
      static_cast<double>(target) / static_cast<double>(molecules), 1.7);
  bgq::SimWorkload w;
  w.num_tasks = static_cast<std::int64_t>(
      static_cast<double>(result.stats.num_tasks) * growth);
  const double nao_target =
      static_cast<double>(basis.num_functions()) * target / molecules;
  w.reduction_bytes = static_cast<std::int64_t>(8.0 * nao_target * nao_target);

  std::printf(
      "\nprojected system: %d molecules -> %lld tasks, %.0f AOs\n", target,
      static_cast<long long>(w.num_tasks), nao_target);
  std::printf("%-7s %-11s %-12s %-11s %-12s\n", "racks", "threads", "time/s",
              "speedup", "efficiency");
  bgq::SimResult base;
  for (int racks : bgq::supported_rack_counts()) {
    const auto machine = bgq::machine_for_racks(racks);
    const auto r = bgq::simulate_step(machine, w, dist);
    if (racks == 1) base = r;
    std::printf("%-7d %-11lld %-12.4f %-11.1f %-12.3f\n", racks,
                static_cast<long long>(machine.num_threads()),
                r.makespan_seconds,
                base.makespan_seconds / r.makespan_seconds,
                bgq::parallel_efficiency(base, r));
  }
  return 0;
}
