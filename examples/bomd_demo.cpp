// BOMD demo — a short hybrid-functional Born-Oppenheimer trajectory, the
// workload class the paper's HFX kernel was built to accelerate.
//
// Run:  ./build/examples/bomd_demo [functional] [steps]
//   functional  hf | lda | pbe | pbe0   (default pbe0)
//   steps       number of MD steps      (default 10)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "chem/molecule.hpp"
#include "md/integrator.hpp"

int main(int argc, char** argv) {
  using namespace mthfx;
  const std::string functional = argc > 1 ? argv[1] : "pbe0";
  const int steps = argc > 2 ? std::atoi(argv[2]) : 10;

  scf::KsOptions ks;
  ks.functional = functional;
  ks.grid.radial_points = 30;
  ks.grid.angular_points = 26;
  md::ScfPotential surface("sto-3g", ks);

  // A stretched H2: the cheapest molecule with real dynamics.
  chem::Molecule mol;
  mol.add_atom(1, {0, 0, 0});
  mol.add_atom(1, {0, 0, 1.55});

  md::MdOptions opts;
  opts.timestep_fs = 0.15;
  opts.num_steps = steps;

  std::printf("BOMD on the %s surface, dt = %.2f fs\n", functional.c_str(),
              opts.timestep_fs);
  std::printf("%-10s %-16s %-14s %-16s %-10s\n", "t/fs", "E_pot/Ha",
              "E_kin/Ha", "E_total/Ha", "T/K");
  const auto result = md::run_bomd(
      mol, surface, opts, [](const md::MdFrame& f) {
        std::printf("%-10.2f %-16.8f %-14.8f %-16.8f %-10.1f\n", f.time_fs,
                    f.potential, f.kinetic, f.total, f.temperature_k);
      });
  std::printf("\nmax |energy drift| over the trajectory: %.3e Ha\n",
              result.max_energy_drift());
  std::printf("final geometry:\n%s", result.final_geometry.to_xyz().c_str());
  return 0;
}
