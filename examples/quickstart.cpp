// Quickstart: the mthfx public API in one page.
//
//   1. build a molecule and a basis,
//   2. run RHF and hybrid-DFT (PBE0) SCF,
//   3. call the parallel HFX builder directly and inspect its statistics,
//   4. project the same build onto the full 96-rack BG/Q with the
//      machine simulator.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "bgq/simulator.hpp"
#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "hfx/fock_builder.hpp"
#include "ints/one_electron.hpp"
#include "linalg/eigen.hpp"
#include "scf/guess.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"
#include "workload/geometries.hpp"

int main() {
  using namespace mthfx;

  // 1. A molecule (water) and a basis set.
  const chem::Molecule mol = workload::water();
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  std::printf("water: %zu atoms, %d electrons, %zu AOs\n", mol.size(),
              mol.num_electrons(), basis.num_functions());

  // 2a. Hartree-Fock.
  const scf::ScfResult hf = scf::rhf(mol, basis);
  std::printf("RHF   energy: %.8f Ha  (%zu iterations, converged=%d)\n",
              hf.energy, hf.iterations, hf.converged);

  // 2b. PBE0 hybrid DFT — 25%% of the exchange runs through the same HFX
  // kernel the paper scales to millions of threads.
  scf::KsOptions ks;
  ks.functional = "pbe0";
  const scf::KsResult pbe0 = scf::rks(mol, basis, ks);
  std::printf("PBE0  energy: %.8f Ha  (E_xc = %.6f, exact-X = %.6f)\n",
              pbe0.scf.energy, pbe0.xc_energy, pbe0.exact_exchange_energy);
  std::printf("HOMO-LUMO gap: RHF %.2f eV, PBE0 %.2f eV\n",
              scf::homo_lumo_gap(hf, mol) * chem::kEvPerHartree,
              scf::homo_lumo_gap(pbe0.scf, mol) * chem::kEvPerHartree);

  // 3. The HFX kernel directly: screened, task-parallel exchange build.
  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-10;
  opts.record_task_costs = true;
  hfx::FockBuilder builder(basis, opts);
  const auto exchange = builder.exchange(hf.density);
  const auto& st = exchange.stats;
  std::printf("\nHFX build: %zu shell pairs (of %zu), %zu tasks\n",
              st.num_pairs, st.num_pairs_unscreened, st.num_tasks);
  std::printf("  quartets: %llu computed, %llu screened away\n",
              static_cast<unsigned long long>(st.screening.quartets_computed),
              static_cast<unsigned long long>(
                  st.screening.quartets_schwarz_screened +
                  st.screening.quartets_density_screened));
  std::printf("  wall time: %.4f s on %zu threads\n", st.wall_seconds,
              st.thread_busy_seconds.size());

  // 4. Project onto the Blue Gene/Q at the paper's headline scale.
  const auto dist =
      bgq::EmpiricalCostDistribution::from_records(st.task_costs);
  bgq::SimWorkload w;
  w.num_tasks = 200'000'000;  // a condensed-phase-sized task population
  w.reduction_bytes = 8LL * 20000 * 20000;
  const auto machine = bgq::machine_for_racks(96);
  const auto sim = bgq::simulate_step(machine, w, dist);
  std::printf(
      "\nsimulated on %d racks (%lld threads): %.3f s/HFX step, "
      "imbalance %.3f\n",
      machine.racks, static_cast<long long>(machine.num_threads()),
      sim.makespan_seconds, sim.imbalance);
  return 0;
}
