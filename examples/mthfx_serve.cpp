// mthfx_serve — long-lived multi-tenant screening service: a TCP
// front-end (NDJSON line protocol, docs/engine.md "Service") over the
// multi-job execution engine with per-tenant fair-share scheduling.
//
//   ./build/examples/mthfx_serve --port=7777
//   ./build/examples/mthfx_serve --port=0 --port-file=port.txt \
//       --journal=serve.wal --store=store --checkpoints=ckpt \
//       --tenant=acme:2:64:8 --tenant=beta:1
//   ./build/examples/mthfx_serve --journal=serve.wal --resume
//
// --tenant=id:weight[:max_queued[:max_in_flight]] configures one
// tenant's fair-share weight and quotas; unknown tenants that connect
// get --default-weight/--default-max-queued/--default-max-in-flight.
// --port=0 binds an ephemeral port; --port-file writes the bound port
// (single line) for whoever launched us.
//
// Shutdown: SIGINT/SIGTERM — or a client `drain` request — refuses new
// submissions, runs every accepted job to completion, appends a clean
// `shutdown` journal record, and exits 0 unless a job actually failed.
// A SIGKILLed server restarted with --resume serves committed jobs from
// the journal (bit-identical energies) and restarts the rest under
// their original ids.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void handle_signal(int sig) { g_signal = sig; }

// id:weight[:max_queued[:max_in_flight]]
bool parse_tenant_spec(const std::string& spec,
                       mthfx::serve::TenantConfig* out) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 4 || parts[0].empty()) return false;
  try {
    out->id = parts[0];
    out->options.weight = std::stod(parts[1]);
    if (parts.size() > 2)
      out->options.max_queued = static_cast<std::size_t>(std::stoul(parts[2]));
    if (parts.size() > 3)
      out->options.max_in_flight =
          static_cast<std::size_t>(std::stoul(parts[3]));
  } catch (const std::exception&) {
    return false;
  }
  return out->options.weight > 0.0 && out->options.max_queued > 0;
}

}  // namespace

int main(int argc, char** argv) {
  mthfx::serve::ServeOptions options;
  options.engine.queue_capacity = 64;
  options.engine.cache = true;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    const char* v;
    if ((v = value("--port="))) {
      options.port = std::atoi(v);
    } else if ((v = value("--host="))) {
      options.host = v;
    } else if ((v = value("--port-file="))) {
      port_file = v;
    } else if ((v = value("--concurrency="))) {
      options.engine.concurrency = static_cast<std::size_t>(std::atoi(v));
    } else if ((v = value("--queue-capacity="))) {
      options.engine.queue_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if ((v = value("--journal="))) {
      options.engine.journal_path = v;
    } else if ((v = value("--store="))) {
      options.engine.store_dir = v;
    } else if ((v = value("--checkpoints="))) {
      options.engine.checkpoint_dir = v;
    } else if ((v = value("--deadline="))) {
      options.engine.default_deadline_seconds = std::atof(v);
    } else if ((v = value("--default-weight="))) {
      options.tenant_defaults.weight = std::atof(v);
    } else if ((v = value("--default-max-queued="))) {
      options.tenant_defaults.max_queued =
          static_cast<std::size_t>(std::atoi(v));
    } else if ((v = value("--default-max-in-flight="))) {
      options.tenant_defaults.max_in_flight =
          static_cast<std::size_t>(std::atoi(v));
    } else if ((v = value("--tenant="))) {
      mthfx::serve::TenantConfig tenant;
      if (!parse_tenant_spec(v, &tenant)) {
        std::fprintf(stderr, "error: bad --tenant spec '%s'\n", v);
        return 2;
      }
      options.tenants.push_back(std::move(tenant));
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--no-hello") == 0) {
      options.require_hello = false;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--port=N] [--host=IP] [--port-file=path]\n"
          "  [--concurrency=N] [--queue-capacity=N] [--journal=file.wal]\n"
          "  [--resume] [--store=dir] [--checkpoints=dir] [--deadline=s]\n"
          "  [--tenant=id:weight[:max_queued[:max_in_flight]]]...\n"
          "  [--default-weight=W] [--default-max-queued=N]\n"
          "  [--default-max-in-flight=N] [--no-hello]\n"
          "protocol: see docs/engine.md (Service)\n",
          argv[0]);
      return 2;
    }
  }
  if (options.resume && options.engine.journal_path.empty()) {
    std::fprintf(stderr, "error: --resume needs --journal=\n");
    return 2;
  }

  try {
    using namespace mthfx;
    serve::Server server(options);
    server.start();
    std::printf("mthfx_serve: listening on %s:%d (concurrency %zu, queue %zu"
                "%s%s)\n",
                options.host.c_str(), server.port(),
                options.engine.concurrency, options.engine.queue_capacity,
                options.engine.journal_path.empty() ? "" : ", journaled",
                options.resume ? ", resumed" : "");
    if (server.replayed() > 0)
      std::printf("[resume] %zu job(s) served from the journal\n",
                  server.replayed());
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    // Park until a signal lands or a client asked to drain. Polling
    // (rather than a pure cv wait) keeps the signal path handler-only.
    while (g_signal == 0 && !server.stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::string reason =
        g_signal != 0 ? "signal " + std::to_string(g_signal) : "drain";
    server.request_stop(reason);
    std::printf("mthfx_serve: %s — draining\n", reason.c_str());

    const std::vector<engine::JobRecord> records = server.stop();
    std::size_t done = 0, failed = 0, rejected = 0, canceled = 0;
    for (const auto& r : records) {
      switch (r.state) {
        case engine::JobState::kDone: ++done; break;
        case engine::JobState::kFailed: ++failed; break;
        case engine::JobState::kRejected: ++rejected; break;
        case engine::JobState::kCanceled: ++canceled; break;
        default: break;
      }
    }
    std::printf(
        "mthfx_serve: drained — %zu done, %zu failed, %zu rejected, "
        "%zu canceled; cache %llu hits / %llu misses\n",
        done, failed, rejected, canceled,
        static_cast<unsigned long long>(server.scheduler().store().hits()),
        static_cast<unsigned long long>(server.scheduler().store().misses()));
    for (const auto& [tenant, stats] : server.fair_share().stats())
      std::printf(
          "  tenant %-12s weight %.2g: %llu submitted, %llu completed, "
          "%llu failed, %llu rejected, %llu shed, %llu canceled\n",
          tenant.c_str(), stats.options.weight,
          static_cast<unsigned long long>(stats.submitted),
          static_cast<unsigned long long>(stats.completed),
          static_cast<unsigned long long>(stats.failed),
          static_cast<unsigned long long>(stats.rejected),
          static_cast<unsigned long long>(stats.shed),
          static_cast<unsigned long long>(stats.canceled));
    // Rejections and client cancels are the admission system working as
    // designed; only a job that ran and failed is a service failure.
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
