// Electrolyte screening — the paper's application workflow in miniature:
// rank candidate Li/air-battery solvents by their electronic stability
// against the Li2O2 discharge product. Prints frontier-orbital gaps and
// peroxide-contact interaction energies for propylene carbonate (the
// known failure) and DMSO (the proposed alternative class).
//
// Run:  ./build/examples/electrolyte_screening [basis]

#include <cstdio>
#include <string>

#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"
#include "workload/geometries.hpp"

namespace {

using namespace mthfx;

scf::ScfOptions options() {
  scf::ScfOptions o;
  o.hfx.eps_schwarz = 1e-9;
  o.energy_tolerance = 1e-8;
  o.diis_tolerance = 1e-5;
  o.max_iterations = 200;
  return o;
}

struct SolventReport {
  std::string name;
  double rhf_energy = 0.0;
  double gap_ev = 0.0;
  double interaction_kcal = 0.0;
  bool ok = true;
};

SolventReport screen(const std::string& name, const std::string& basis_name,
                     double e_li2o2) {
  SolventReport rep;
  rep.name = name;
  const auto solvent = workload::by_name(name);
  const auto basis = chem::BasisSet::build(solvent, basis_name);
  const auto r = scf::rhf(solvent, basis, options());
  rep.ok = r.converged;
  rep.rhf_energy = r.energy;
  rep.gap_ev = scf::homo_lumo_gap(r, solvent) * chem::kEvPerHartree;

  chem::Molecule complex_mol = solvent;
  chem::Molecule adduct = workload::lithium_peroxide();
  adduct.translate({0.0, 4.5 * chem::kBohrPerAngstrom,
                    1.5 * chem::kBohrPerAngstrom});
  complex_mol.append(adduct);
  const auto cb = chem::BasisSet::build(complex_mol, basis_name);
  const auto rc = scf::rhf(complex_mol, cb, options());
  rep.ok = rep.ok && rc.converged;
  rep.interaction_kcal =
      (rc.energy - r.energy - e_li2o2) * chem::kKcalPerMolPerHartree;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string basis_name = argc > 1 ? argv[1] : "sto-3g";
  std::printf("electrolyte stability screening (RHF/%s)\n",
              basis_name.c_str());

  const auto li2o2 = workload::lithium_peroxide();
  const auto li_basis = chem::BasisSet::build(li2o2, basis_name);
  const auto li_result = scf::rhf(li2o2, li_basis, options());
  std::printf("Li2O2 reference energy: %.6f Ha (converged=%d)\n\n",
              li_result.energy, li_result.converged);

  std::printf("%-8s %-16s %-12s %-22s %-4s\n", "solvent", "E(RHF)/Ha",
              "gap/eV", "Li2O2 binding kcal/mol", "ok");
  for (const std::string name : {"pc", "dmso"}) {
    const auto rep = screen(name, basis_name, li_result.energy);
    std::printf("%-8s %-16.6f %-12.2f %-22.2f %-4d\n", rep.name.c_str(),
                rep.rhf_energy, rep.gap_ev, rep.interaction_kcal, rep.ok);
  }
  std::printf(
      "\ninterpretation: a wider gap and weaker peroxide binding indicate "
      "a solvent more robust against the degradation pathway that kills "
      "propylene-carbonate cells.\n");
  return 0;
}
