// mthfx command-line driver: run SCF / gradient / BOMD calculations from
// a simple input file (format documented in src/app/input.hpp).
//
//   ./build/examples/mthfx_cli water.in
//   ./build/examples/mthfx_cli --json water.in           # result record
//   ./build/examples/mthfx_cli --json=result.json water.in
//   ./build/examples/mthfx_cli --trace water.in          # phase table
//   ./build/examples/mthfx_cli --trace=run.json water.in # full span JSON
//   ./build/examples/mthfx_cli --checkpoint=run.ckpt water.in
//   ./build/examples/mthfx_cli --restore=run.ckpt water.in
//
// --json replaces the human report on stdout with the machine-readable
// result record (schema mthfx.result.v1 — the same record the screening
// engine emits per job); --json=<file> writes the record to <file> and
// keeps the human report on stdout.
//
// With --trace, a per-phase timing summary (scf.* / jk.* spans from the
// global trace) is printed after the report; --trace=<file> additionally
// writes the complete span tree as JSON (schema: docs/observability.md).
//
// --checkpoint=<file> saves SCF (or MD, for task md) state to <file>
// after every iteration/step; --restore=<file> resumes from such a file
// (format and determinism guarantees: docs/resilience.md). Fault
// injection is configured per input deck (`fault_spec`) or via the
// MTHFX_FAULT_SPEC environment variable.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "app/driver.hpp"
#include "engine/report.hpp"
#include "obs/trace.hpp"

namespace {

void print_phase_table(const mthfx::obs::Trace& trace) {
  struct Row {
    std::string name;
    double seconds = 0.0;
    double first_start = 0.0;
    std::uint64_t count = 0;
    std::uint32_t depth = 0;
  };
  // Aggregate by name; remember the shallowest depth (for indentation)
  // and the earliest start (so parents sort above their children).
  std::map<std::string, Row> by_name;
  for (const auto& span : trace.spans()) {
    auto& row = by_name[span.name];
    if (row.count == 0) {
      row.name = span.name;
      row.first_start = span.start_seconds;
      row.depth = span.depth;
    } else {
      row.first_start = std::min(row.first_start, span.start_seconds);
      row.depth = std::min(row.depth, span.depth);
    }
    row.seconds += span.duration_seconds;
    row.count += 1;
  }
  std::vector<Row> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.first_start < b.first_start;
  });
  std::printf("\nphase timings (wall seconds, aggregated over spans):\n");
  std::printf("%-24s %10s %8s %12s\n", "phase", "total/s", "count",
              "mean/ms");
  for (const auto& row : rows) {
    const std::string label = std::string(2 * row.depth, ' ') + row.name;
    std::printf("%-24s %10.4f %8llu %12.3f\n", label.c_str(), row.seconds,
                static_cast<unsigned long long>(row.count),
                1e3 * row.seconds / static_cast<double>(row.count));
  }
  if (trace.dropped() > 0)
    std::printf("[trace] %llu spans dropped (buffer full)\n",
                static_cast<unsigned long long>(trace.dropped()));
}

}  // namespace

int main(int argc, char** argv) {
  bool trace = false;
  bool json = false;
  std::string trace_file;
  std::string json_file;
  std::string checkpoint_file;
  std::string restore_file;
  const char* input_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace") == 0) {
      trace = true;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace = true;
      trace_file = arg + 8;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json = true;
      json_file = arg + 7;
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      checkpoint_file = arg + 13;
    } else if (std::strncmp(arg, "--restore=", 10) == 0) {
      restore_file = arg + 10;
    } else if (!input_path) {
      input_path = arg;
    } else {
      input_path = nullptr;
      break;
    }
  }
  if (!input_path) {
    std::fprintf(stderr,
                 "usage: %s [--json[=file.json]] [--trace[=file.json]]"
                 " [--checkpoint=file] [--restore=file] <input-file>\n"
                 "input format: see src/app/input.hpp\n",
                 argv[0]);
    return 2;
  }
  try {
    auto input = mthfx::app::parse_input_file(input_path);
    input.checkpoint_path = checkpoint_file;
    input.restore_path = restore_file;
    const auto result = mthfx::app::run_structured(input);
    if (json) {
      const auto record = mthfx::engine::result_record(input, result);
      if (json_file.empty()) {
        std::fputs((record.dump(2) + "\n").c_str(), stdout);
      } else {
        std::ofstream json_out(json_file);
        if (!json_out) {
          std::fprintf(stderr, "error: cannot write %s\n", json_file.c_str());
          return 2;
        }
        json_out << record.dump(2) << "\n";
        std::fputs(result.report.c_str(), stdout);
        std::printf("[json] wrote %s\n", json_file.c_str());
      }
    } else {
      std::fputs(result.report.c_str(), stdout);
    }
    if (trace) {
      const auto& tr = mthfx::obs::global_trace();
      print_phase_table(tr);
      if (!trace_file.empty()) {
        std::ofstream out(trace_file);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       trace_file.c_str());
          return 2;
        }
        out << tr.to_json().dump(2) << "\n";
        std::printf("[trace] wrote %s\n", trace_file.c_str());
      }
    }
    return result.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
