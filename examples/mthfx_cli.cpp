// mthfx command-line driver: run SCF / gradient / BOMD calculations from
// a simple input file (format documented in src/app/input.hpp).
//
//   ./build/examples/mthfx_cli water.in

#include <cstdio>

#include "app/driver.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <input-file>\n"
                 "input format: see src/app/input.hpp\n",
                 argv[0]);
    return 2;
  }
  try {
    const auto input = mthfx::app::parse_input_file(argv[1]);
    const auto result = mthfx::app::run(input);
    std::fputs(result.report.c_str(), stdout);
    return result.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
