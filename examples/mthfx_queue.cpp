// mthfx_queue — high-throughput screening front-end: run a campaign
// file (grammar: src/engine/campaign.hpp, docs/engine.md) through the
// multi-job execution engine.
//
//   ./build/examples/mthfx_queue examples/inputs/screening.campaign
//   ./build/examples/mthfx_queue --report=jobs.json screening.campaign
//   ./build/examples/mthfx_queue --concurrency=4 screening.campaign
//
// Prints a per-job table (state, attempts, cache hits, wait/run time,
// energy) plus queue/cache statistics, and with --report writes the full
// machine-readable campaign record (schema mthfx.campaign.v1). Exit code
// 0 when every admitted job finished ok, 1 when any failed or was
// rejected, 2 on usage/parse errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/report.hpp"
#include "engine/scheduler.hpp"

int main(int argc, char** argv) {
  std::string report_file;
  std::size_t concurrency_override = 0;
  const char* campaign_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--report=", 9) == 0) {
      report_file = arg + 9;
    } else if (std::strncmp(arg, "--concurrency=", 14) == 0) {
      concurrency_override = static_cast<std::size_t>(std::atoi(arg + 14));
    } else if (!campaign_path) {
      campaign_path = arg;
    } else {
      campaign_path = nullptr;
      break;
    }
  }
  if (!campaign_path) {
    std::fprintf(stderr,
                 "usage: %s [--report=file.json] [--concurrency=N]"
                 " <campaign-file>\n"
                 "campaign format: see src/engine/campaign.hpp\n",
                 argv[0]);
    return 2;
  }

  try {
    using namespace mthfx;
    engine::CampaignSpec spec = engine::parse_campaign_file(campaign_path);
    if (concurrency_override > 0)
      spec.engine.concurrency = concurrency_override;

    const std::vector<engine::Job> jobs = spec.expand();
    engine::JobScheduler scheduler(spec.engine);
    std::printf(
        "campaign: %zu jobs, concurrency %zu, %zu thread(s) total "
        "(%zu per job), queue capacity %zu\n",
        jobs.size(), spec.engine.concurrency, scheduler.total_threads(),
        scheduler.per_job_threads(), spec.engine.queue_capacity);

    scheduler.start();
    for (engine::Job job : jobs) {
      const engine::Admission admission = scheduler.submit(std::move(job));
      if (!admission.accepted)
        std::fprintf(stderr, "rejected: %s\n", admission.reason.c_str());
    }
    const std::vector<engine::JobRecord> records = scheduler.drain();

    std::printf("%-6s %-28s %-9s %-5s %-6s %9s %9s  %-18s\n", "id", "job",
                "state", "try", "cache", "wait/ms", "run/ms", "energy/Ha");
    std::size_t done = 0, failed = 0, rejected = 0;
    for (const auto& r : records) {
      if (r.state == engine::JobState::kRejected) {
        ++rejected;
        std::printf("%-6s %-28s %-9s %-5s %-6s %9s %9s  %s\n", "-",
                    r.name.c_str(), "rejected", "-", "-", "-", "-",
                    r.reject_reason.c_str());
        continue;
      }
      if (r.state == engine::JobState::kDone)
        ++done;
      else
        ++failed;
      const std::string note =
          r.error.empty() ? std::string() : "  [" + r.error + "]";
      std::printf("%-6llu %-28s %-9s %-5zu %-6s %9.2f %9.2f  %.10f%s\n",
                  static_cast<unsigned long long>(r.id), r.name.c_str(),
                  engine::to_string(r.state), r.attempts,
                  r.cache_hit ? "hit" : "-", 1e3 * r.wait_seconds,
                  1e3 * r.run_seconds, r.result.energy, note.c_str());
    }
    std::printf(
        "\n%zu done, %zu failed, %zu rejected; queue high-water %zu/%zu; "
        "cache %llu hits / %llu misses; %llu job retries\n",
        done, failed, rejected, scheduler.queue().high_water(),
        scheduler.queue().capacity(),
        static_cast<unsigned long long>(scheduler.store().hits()),
        static_cast<unsigned long long>(scheduler.store().misses()),
        static_cast<unsigned long long>(
            scheduler.registry().counter_total("engine.job_retries")));

    if (!report_file.empty()) {
      std::ofstream out(report_file);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", report_file.c_str());
        return 2;
      }
      out << engine::campaign_report(scheduler, records).dump(2) << "\n";
      std::printf("[report] wrote %s\n", report_file.c_str());
    }
    return (failed == 0 && rejected == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
