// mthfx_queue — high-throughput screening front-end: run a campaign
// file (grammar: src/engine/campaign.hpp, docs/engine.md) through the
// multi-job execution engine.
//
//   ./build/examples/mthfx_queue examples/inputs/screening.campaign
//   ./build/examples/mthfx_queue --report=jobs.json screening.campaign
//   ./build/examples/mthfx_queue --concurrency=4 screening.campaign
//   ./build/examples/mthfx_queue --journal=run.wal --store=store \
//       --resume screening.campaign
//
// Prints a per-job table (state, attempts, cache hits, wait/run time,
// energy) plus queue/cache statistics, and with --report writes the full
// machine-readable campaign record (schema mthfx.campaign.v1). Exit code
// 0 when every admitted job finished ok, 1 when any failed or was
// rejected, 2 on usage/parse errors.
//
// Durability: --journal writes every job transition ahead to a
// checksummed journal; --resume replays it — committed jobs are served
// from their journaled records (bit-identical physics, zero duplicated
// SCF work), in-flight jobs restart from their checkpoints. --store
// persists the result cache across runs; --deadline bounds each job's
// wall clock. See docs/engine.md (Durability).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/journal.hpp"
#include "engine/report.hpp"
#include "engine/scheduler.hpp"

namespace {

// Graceful shutdown: SIGINT/SIGTERM stop the submission loop; jobs
// already admitted drain normally and the journal gets a clean
// `shutdown` record, so a later --resume picks up exactly the
// unsubmitted tail. Async-signal-safe: the handler only sets the flag.
volatile std::sig_atomic_t g_signal = 0;
void handle_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  std::string report_file;
  std::size_t concurrency_override = 0;
  std::string journal_override, store_override, deadline_override;
  bool resume = false;
  const char* campaign_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--report=", 9) == 0) {
      report_file = arg + 9;
    } else if (std::strncmp(arg, "--concurrency=", 14) == 0) {
      concurrency_override = static_cast<std::size_t>(std::atoi(arg + 14));
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      journal_override = arg + 10;
    } else if (std::strncmp(arg, "--store=", 8) == 0) {
      store_override = arg + 8;
    } else if (std::strncmp(arg, "--deadline=", 11) == 0) {
      deadline_override = arg + 11;
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else if (!campaign_path) {
      campaign_path = arg;
    } else {
      campaign_path = nullptr;
      break;
    }
  }
  if (!campaign_path) {
    std::fprintf(stderr,
                 "usage: %s [--report=file.json] [--concurrency=N]"
                 " [--journal=file.wal] [--resume] [--store=dir]"
                 " [--deadline=seconds] <campaign-file>\n"
                 "campaign format: see src/engine/campaign.hpp\n",
                 argv[0]);
    return 2;
  }

  try {
    using namespace mthfx;
    engine::CampaignSpec spec = engine::parse_campaign_file(campaign_path);
    if (concurrency_override > 0)
      spec.engine.concurrency = concurrency_override;
    if (!journal_override.empty()) spec.engine.journal_path = journal_override;
    if (!store_override.empty()) spec.engine.store_dir = store_override;
    if (!deadline_override.empty())
      spec.engine.default_deadline_seconds = std::stod(deadline_override);
    if (resume && spec.engine.journal_path.empty()) {
      std::fprintf(stderr,
                   "error: --resume needs a journal (--journal= or the "
                   "campaign 'journal' keyword)\n");
      return 2;
    }

    std::vector<engine::Job> jobs = spec.expand();
    // Deterministic ids (expansion order, starting at 1): a resumed run
    // re-derives the same ids, so journal records line up with jobs.
    for (std::size_t i = 0; i < jobs.size(); ++i)
      jobs[i].id = static_cast<std::uint64_t>(i) + 1;

    engine::JournalReplay replay;
    if (resume) {
      replay = engine::Journal::replay(spec.engine.journal_path);
      for (const std::string& warning : replay.warnings)
        std::fprintf(stderr, "[resume] %s\n", warning.c_str());
    }

    engine::JobScheduler scheduler(spec.engine);
    std::printf(
        "campaign: %zu jobs, concurrency %zu, %zu thread(s) total "
        "(%zu per job), queue capacity %zu\n",
        jobs.size(), spec.engine.concurrency, scheduler.total_threads(),
        scheduler.per_job_threads(), spec.engine.queue_capacity);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    scheduler.start();
    std::size_t replayed = 0, resumed_ckpt = 0, unsubmitted = 0;
    for (engine::Job& job : jobs) {
      if (g_signal != 0) {
        ++unsubmitted;
        continue;
      }
      if (resume) {
        const engine::ReplayedJob* prior = replay.find(job.id);
        if (prior && prior->committed) {
          scheduler.adopt(prior->record);
          ++replayed;
          continue;
        }
        // The job was in flight (or never started) when the previous run
        // died; restart it from its checkpoint when one was written.
        if (!spec.engine.checkpoint_dir.empty()) {
          const std::string ckpt = spec.engine.checkpoint_dir + "/job_" +
                                   std::to_string(job.id) + ".ckpt";
          if (std::ifstream(ckpt).good()) {
            job.input.restore_path = ckpt;
            ++resumed_ckpt;
          }
        }
      }
      const engine::Admission admission = scheduler.submit(std::move(job));
      if (!admission.accepted)
        std::fprintf(stderr, "rejected: %s\n", admission.reason.c_str());
    }
    if (resume)
      std::printf(
          "[resume] %zu job(s) served from the journal, %zu restarting "
          "from checkpoints, %zu journal record(s) applied\n",
          replayed, resumed_ckpt, replay.records);
    const std::vector<engine::JobRecord> records = scheduler.drain();
    if (scheduler.journal().active())
      scheduler.journal().record_shutdown(
          g_signal != 0 ? "signal " + std::to_string(g_signal) : "complete");
    if (g_signal != 0)
      std::printf(
          "[shutdown] signal %d: drained admitted jobs, left %zu "
          "unsubmitted (resume with --resume)\n",
          static_cast<int>(g_signal), unsubmitted);

    std::printf("%-6s %-28s %-9s %-5s %-6s %9s %9s  %-18s\n", "id", "job",
                "state", "try", "cache", "wait/ms", "run/ms", "energy/Ha");
    std::size_t done = 0, failed = 0, rejected = 0;
    for (const auto& r : records) {
      if (r.state == engine::JobState::kRejected) {
        ++rejected;
        std::printf("%-6s %-28s %-9s %-5s %-6s %9s %9s  %s\n", "-",
                    r.name.c_str(), "rejected", "-", "-", "-", "-",
                    r.reject_reason.c_str());
        continue;
      }
      if (r.state == engine::JobState::kDone)
        ++done;
      else
        ++failed;
      const std::string note =
          r.error.empty() ? std::string() : "  [" + r.error + "]";
      std::printf("%-6llu %-28s %-9s %-5zu %-6s %9.2f %9.2f  %.10f%s\n",
                  static_cast<unsigned long long>(r.id), r.name.c_str(),
                  engine::to_string(r.state), r.attempts,
                  r.replayed ? "replay" : (r.cache_hit ? "hit" : "-"),
                  1e3 * r.wait_seconds,
                  1e3 * r.run_seconds, r.result.energy, note.c_str());
    }
    std::printf(
        "\n%zu done, %zu failed, %zu rejected; queue high-water %zu/%zu; "
        "cache %llu hits / %llu misses; %llu job retries\n",
        done, failed, rejected, scheduler.queue().high_water(),
        scheduler.queue().capacity(),
        static_cast<unsigned long long>(scheduler.store().hits()),
        static_cast<unsigned long long>(scheduler.store().misses()),
        static_cast<unsigned long long>(
            scheduler.registry().counter_total("engine.job_retries")));
    if (scheduler.store().disk_attached())
      std::printf(
          "store: %llu disk hit(s), %zu entries (%llu bytes), "
          "%llu corrupt miss(es), %llu eviction(s)\n",
          static_cast<unsigned long long>(scheduler.store().disk_hits()),
          scheduler.store().disk_entries(),
          static_cast<unsigned long long>(scheduler.store().disk_bytes()),
          static_cast<unsigned long long>(scheduler.store().corrupt_misses()),
          static_cast<unsigned long long>(scheduler.store().evictions()));
    const auto shed = scheduler.queue().shed();
    const auto deadline_hits =
        scheduler.registry().counter_total("engine.deadline.expired");
    if (shed > 0 || deadline_hits > 0)
      std::printf("shed %llu job(s); %llu deadline expiration(s)\n",
                  static_cast<unsigned long long>(shed),
                  static_cast<unsigned long long>(deadline_hits));
    if (scheduler.journal().active())
      std::printf("journal: %llu record(s) appended to %s\n",
                  static_cast<unsigned long long>(
                      scheduler.journal().appended()),
                  scheduler.journal().path().c_str());

    if (!report_file.empty()) {
      std::ofstream out(report_file);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", report_file.c_str());
        return 2;
      }
      out << engine::campaign_report(scheduler, records).dump(2) << "\n";
      std::printf("[report] wrote %s\n", report_file.c_str());
    }
    return (failed == 0 && rejected == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
