#!/usr/bin/env bash
# Build the memory-sensitive tests under AddressSanitizer and run them.
#
# Covers the surfaces that juggle raw buffers and exception-driven
# unwinding: the fault-injection/retry/checkpoint suite (tasks throw
# mid-kernel and must not leak or double-free scratch), the scheduler
# and thread-pool stack, and the JSON parser the checkpoint files go
# through. A heap error anywhere in that stack fails this script.
#
# Usage: scripts/run_asan.sh [build-dir]   (default: build-asan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DMTHFX_SANITIZE=address
cmake --build "$BUILD_DIR" -j --target test_fault test_parallel test_obs \
  test_hfx test_property_hfx test_durability test_property_grad test_serve \
  test_scaling test_property_scaling

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"

"$BUILD_DIR"/tests/test_fault
"$BUILD_DIR"/tests/test_parallel
"$BUILD_DIR"/tests/test_obs
# Scheduler-facing subset of test_hfx (the integral-heavy numerics are
# slow under ASan and exercised by the plain build anyway).
"$BUILD_DIR"/tests/test_hfx --gtest_filter='SchedulerExactness*:Schedulers.*:AllSchedules/*'
# Small-iteration property subset: random shapes drive allocation-heavy
# paths (tensor buffers, shrinker copies) through ASan without the full
# 50-case budget.
MTHFX_PROPERTY_ITERS=3 "$BUILD_DIR"/tests/test_property_hfx \
  --gtest_filter='PropertyHarness.*:PropertyHfx.JkHermitianAndTraceIdentities:PropertyHfx.SerialReduceMatchesDirectSum'
# Analytic-gradient surface: the ERI-derivative scratch blocks and XC
# grid-gradient buffers are the newest raw-buffer territory; a couple of
# random molecules walk all four functionals through them.
MTHFX_PROPERTY_ITERS=2 "$BUILD_DIR"/tests/test_property_grad \
  --gtest_filter='PropertyGrad.NetForceVanishes:PropertyGrad.ForcesAreTranslationInvariant'
# Durable-engine buffer surface: journal frame parsing/replay of corrupt
# and truncated records, and the disk store's entry read/validate/evict
# path — both chew raw file bytes and must not over-read on garbage.
"$BUILD_DIR"/tests/test_durability --gtest_filter='Journal.*:DiskStore.*'
# Service protocol codec: the line reader's frame buffering over raw
# recv bytes and the request parser on malformed/oversized input — the
# surface an untrusted client feeds directly.
"$BUILD_DIR"/tests/test_serve --gtest_filter='Protocol.*'
# Sparsity pipeline: the cell-list build (bin indexing, candidate
# gathers over raw offset arrays) and one blocked J/K build whose
# stamp-dedupe/link-walk buffers and CSR block scatters are the newest
# raw-index territory.
"$BUILD_DIR"/tests/test_scaling \
  --gtest_filter='PairCulling.*:BlockedBuild.*:SparsityOptions.*'
MTHFX_PROPERTY_ITERS=3 "$BUILD_DIR"/tests/test_property_scaling \
  --gtest_filter='PropertyScaling.CellListCandidatesCoverSurvivingPairs:PropertyScaling.CulledPairListMatchesDenseSweep'

echo "ASan pass clean."
