#!/usr/bin/env bash
# Build the threading/scheduler tests under ThreadSanitizer and run them.
#
# Covers the concurrency-sensitive surface: the thread pool, the
# work-stealing scheduler (both steal paths and their stats counters),
# the row-blocked tree reduction (TreeReduce.* rides inside the full
# test_parallel run), the obs registry's lock-free per-thread slots, the
# HFX scheduler exactness tests, and the screening engine's job queue +
# multi-job scheduler. A data race anywhere in that stack fails this
# script.
#
# Usage: scripts/run_tsan.sh [build-dir]   (default: build-tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DMTHFX_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target test_parallel test_obs test_hfx \
  test_fault test_engine test_durability test_serve test_differential \
  test_property_scaling

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

"$BUILD_DIR"/tests/test_parallel
"$BUILD_DIR"/tests/test_obs
# Scheduler-facing subset of test_hfx: exactly-once execution under
# contention plus steal-stat consistency, without the integral-heavy
# numerics (slow under TSan and thread-free anyway).
"$BUILD_DIR"/tests/test_hfx --gtest_filter='SchedulerExactness*:Schedulers.*:AllSchedules/*'
# Retry/exactly-once-commit paths of the fault suite: concurrent task
# failure, requeue, and attempt accounting across every schedule.
"$BUILD_DIR"/tests/test_fault --gtest_filter='AllSchedules/*:Schedulers.*'
# Screening-engine concurrency surface: blocking queue handoff, worker
# pool vs. submitter races, result-cache sharing, per-job fault domains.
"$BUILD_DIR"/tests/test_engine --gtest_filter='JobQueue.*:JobScheduler.*'
# Durable-engine concurrency surface: the watchdog thread cancelling
# in-flight attempts it races with workers registering/unregistering
# them, journal appends from submitter + workers at once, and the disk
# store's LRU under concurrent lookup/insert.
"$BUILD_DIR"/tests/test_durability \
  --gtest_filter='Scheduler.*:DiskStore.*:Backoff.*'
# Service concurrency surface: the fair-share sub-queue pumped from
# worker completions while client threads submit, the terminal-record
# hook re-entering the tenant layer, and many client connections racing
# one server (the crash drills fork and are exercised unsanitized).
"$BUILD_DIR"/tests/test_serve \
  --gtest_filter='Serve.WeightedFairShareRatioUnderSaturation:Serve.ConcurrentClientsRaceCleanly:Serve.SubmitResultBitIdenticalToDirectRun'
# Small-iteration differential subset: randomized schedule x thread-count
# builds race the bag/steal protocols on fresh task shapes each case,
# and every build ends in the shared-pool tree reduction of the
# thread-private K accumulators.
MTHFX_PROPERTY_ITERS=3 "$BUILD_DIR"/tests/test_differential \
  --gtest_filter='Differential.ThreadCountIsInvisibleAcrossSchedules:Differential.ScreenedBuildMatchesBruteForceAcrossSchedules'
# Sparsity pipeline: cell-list candidate enumeration and the blocked
# J/K replay share the obs registry's per-thread counter slots with the
# dense builder's pool; small-iteration cases keep the lock-free
# counter paths and any future threading of the blocked walk honest.
MTHFX_PROPERTY_ITERS=3 "$BUILD_DIR"/tests/test_property_scaling \
  --gtest_filter='PropertyScaling.CellListCandidatesCoverSurvivingPairs:PropertyScaling.BlockedJkReplaysDenseBuilder'

echo "TSan pass clean."
