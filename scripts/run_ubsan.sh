#!/usr/bin/env bash
# Build the arithmetic-heavy tests under UndefinedBehaviorSanitizer and
# run them.
#
# Covers the surfaces where the SIMD batched ERI path bends the rules
# hardest: vector-extension loads/stores through memcpy, exponent-bit
# manipulation in v8_exp, signed shift packing in the structure keys,
# and the pointer arithmetic of the sparse Hermite entry walks. Any
# UB diagnostic fails this script (halt_on_error below).
#
# Usage: scripts/run_ubsan.sh [build-dir]   (default: build-ubsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . -DMTHFX_SANITIZE=undefined
cmake --build "$BUILD_DIR" -j --target test_boys test_eri test_hfx \
  test_differential test_gradient test_property_grad bench_a7_eri_kernel

export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

"$BUILD_DIR"/tests/test_boys
"$BUILD_DIR"/tests/test_eri
# Kernel-facing subset of test_hfx (SCF convergence loops are slow under
# UBSan and add no new arithmetic surface).
"$BUILD_DIR"/tests/test_hfx --gtest_filter='Hfx.*:DigestQuartet*'
# Small-iteration differential subset: randomized quartet streams drive
# the batched kernel's ragged-tail and lane-masking paths.
MTHFX_PROPERTY_ITERS=3 "$BUILD_DIR"/tests/test_differential
# Derivative-ERI index arithmetic: the deterministic gradient unit
# suite plus a couple of random force-property cases run the dA/dB
# Hermite recursion and its packed index walks end to end.
"$BUILD_DIR"/tests/test_gradient
MTHFX_PROPERTY_ITERS=2 "$BUILD_DIR"/tests/test_property_grad \
  --gtest_filter='PropertyGrad.NetForceVanishes'
# The A7 smoke sweeps every shell class through batched + scalar + dense
# in one process — the densest UB net over the micro-kernel itself.
"$BUILD_DIR"/bench/bench_a7_eri_kernel --smoke

echo "UBSan pass clean."
