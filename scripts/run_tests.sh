#!/usr/bin/env bash
# Tiered test runner — one entry point for every ctest label.
#
#   scripts/run_tests.sh [tier]  [build-dir]
#
# Tiers:
#   tier1    (default) fast example-based suites — the PR gate
#   fault    fault-injection / recovery / checkpoint suite
#   engine   screening-engine suite (queue/cache/scheduler/campaign)
#   durability  journal / disk-store / deadline / crash-recovery suite
#            (forks and SIGKILLs a campaign — slower than tier1)
#   serve    screening-service suite: line protocol, multi-tenant TCP
#            server, fair-share ratios, SIGKILL/resume with live clients
#   property seeded property/differential suites at MTHFX_PROPERTY_ITERS
#            (default 50) iterations
#   gradient analytic-gradient suites: deterministic unit + golden
#            checks and the seeded force-property suite
#   scaling  sparsity-pipeline suites (culled pair lists, blocked J/K,
#            purification SCF) plus the A10 bench smoke
#   nightly  the property executables at high iteration count
#            (MTHFX_PROPERTY_NIGHTLY_ITERS, default 400)
#   all      everything except nightly (what a bare `ctest` runs)
#
# Reproducing a property failure: the failing test prints a line like
#   MTHFX_PROPERTY_SEED=<seed> ctest --test-dir build -R '<name>' ...
# which replays exactly that generated case (see docs/validation.md).

set -euo pipefail
cd "$(dirname "$0")/.."

TIER="${1:-tier1}"
BUILD_DIR="${2:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

case "$TIER" in
  tier1|fault|engine|durability|serve|property|gradient|scaling)
    ctest --test-dir "$BUILD_DIR" -L "$TIER" --output-on-failure -j "$(nproc)"
    if [ "$TIER" = scaling ]; then
      # A10 smoke: the two smallest PC boxes through the full sparsity
      # pipeline (culled pairs -> blocked J/K -> purification), checking
      # structural contracts only — the cost-exponent fit needs the full
      # sweep (`bench_a10_scaling` without --smoke).
      "$BUILD_DIR"/bench/bench_a10_scaling --smoke
    fi
    if [ "$TIER" = tier1 ]; then
      # Perf smoke: small-iteration A7 kernel sweep. Counts and
      # batched-vs-sparse-vs-dense cross-checks only — no timing
      # assertions, so it cannot flake on a loaded machine.
      "$BUILD_DIR"/bench/bench_a7_eri_kernel --smoke
      # A8 smoke: a 2-step PBE0 trajectory checking the accelerated
      # MD surface's one-solve-per-step counters — again counts only,
      # no timing assertions.
      "$BUILD_DIR"/bench/bench_a8_bomd --smoke
      # A9 smoke: a ~120-job service campaign over real TCP with one
      # SIGKILL + resume in the middle — completion/replay/bit-identity
      # accounting only, no timing assertions.
      "$BUILD_DIR"/bench/bench_a9_service --smoke
      # A10 smoke: the sparsity pipeline end-to-end on the two smallest
      # PC boxes — structural contracts (pairs survive, nnz in range,
      # finite energy), no timing assertions.
      "$BUILD_DIR"/bench/bench_a10_scaling --smoke
    fi
    ;;
  nightly)
    # Nightly tests are registered under the "nightly" ctest
    # configuration so they never run by accident.
    ctest --test-dir "$BUILD_DIR" -C nightly -L nightly --output-on-failure
    ;;
  all)
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
    ;;
  *)
    echo "unknown tier: $TIER (want tier1|fault|engine|durability|serve|property|gradient|scaling|nightly|all)" >&2
    exit 2
    ;;
esac

echo "run_tests.sh: tier '$TIER' clean."
