#include "hfx/fock_builder.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "hfx/schedulers.hpp"
#include "ints/eri.hpp"
#include "ints/schwarz.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace mthfx::hfx {

using chem::BasisSet;
using linalg::Matrix;

namespace {

// Digest one computed shell quartet into thread-private J/K accumulators.
//
// For a canonical AO quartet (i >= j, k >= l, pair(ij) >= pair(kl)) the
// 8-member permutational orbit collapses according to three coincidence
// flags: e1 = (i == j), e2 = (k == l), e3 = (ij == kl). The update lists
// below enumerate exactly the distinct orbit members for every flag
// combination (verified case-by-case against explicit orbit
// deduplication in the unit tests via the dense reference).
void digest_quartet(const BasisSet& basis, std::uint32_t sa, std::uint32_t sb,
                    std::uint32_t sc, std::uint32_t sd,
                    const ints::EriBlock& block, const Matrix& density,
                    Matrix* j_acc, Matrix& k_acc, bool braket_same,
                    double eps_contribution) {
  const std::size_t oa = basis.first_function(sa);
  const std::size_t ob = basis.first_function(sb);
  const std::size_t oc = basis.first_function(sc);
  const std::size_t od = basis.first_function(sd);
  const bool ab_same = (sa == sb);
  const bool cd_same = (sc == sd);

  for (std::size_t ia = 0; ia < block.na; ++ia) {
    const std::size_t i = oa + ia;
    for (std::size_t ib = 0; ib < block.nb; ++ib) {
      const std::size_t jj = ob + ib;
      if (ab_same && i < jj) continue;
      const std::size_t ij = i * (i + 1) / 2 + jj;
      for (std::size_t ic = 0; ic < block.nc; ++ic) {
        const std::size_t k = oc + ic;
        const std::size_t klbase = k * (k + 1) / 2;
        for (std::size_t id = 0; id < block.nd; ++id) {
          const std::size_t l = od + id;
          if (cd_same && k < l) continue;
          if (braket_same && ij < klbase + l) continue;
          const double v = block(ia, ib, ic, id);
          if (std::abs(v) < eps_contribution) continue;

          const bool e1 = (i == jj);
          const bool e2 = (k == l);
          const bool e3 = (i == k && jj == l);

          if (j_acc) {
            Matrix& j = *j_acc;
            const double jv1 = (e2 ? 1.0 : 2.0) * density(k, l) * v;
            j(i, jj) += jv1;
            if (!e1) j(jj, i) += jv1;
            if (!e3) {
              const double jv2 = (e1 ? 1.0 : 2.0) * density(i, jj) * v;
              j(k, l) += jv2;
              if (!e2) j(l, k) += jv2;
            }
          }

          k_acc(i, k) += density(jj, l) * v;
          if (!e1) k_acc(jj, k) += density(i, l) * v;
          if (!e2) k_acc(i, l) += density(jj, k) * v;
          if (!e1 && !e2) k_acc(jj, l) += density(i, k) * v;
          if (!e3) {
            k_acc(k, i) += density(l, jj) * v;
            if (!e2) k_acc(l, i) += density(k, jj) * v;
            if (!e1) k_acc(k, jj) += density(l, i) * v;
            if (!e1 && !e2) k_acc(l, jj) += density(k, i) * v;
          }
        }
      }
    }
  }
}

}  // namespace

double HfxStats::imbalance() const {
  double mx = 0.0, total = 0.0;
  for (const double s : thread_busy_seconds) {
    mx = std::max(mx, s);
    total += s;
  }
  if (total <= 0.0 || thread_busy_seconds.empty()) return 1.0;
  const double mean = total / static_cast<double>(thread_busy_seconds.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

obs::Json to_json(const HfxStats& stats) {
  obs::Json out = obs::Json::object();
  out["num_pairs"] = stats.num_pairs;
  out["num_pairs_unscreened"] = stats.num_pairs_unscreened;
  out["num_tasks"] = stats.num_tasks;
  out["wall_seconds"] = stats.wall_seconds;
  out["reduce_seconds"] = stats.reduce_seconds;
  out["imbalance"] = stats.imbalance();
  obs::Json screening = obs::Json::object();
  screening["considered"] = stats.screening.quartets_considered;
  screening["schwarz_screened"] = stats.screening.quartets_schwarz_screened;
  screening["density_screened"] = stats.screening.quartets_density_screened;
  screening["computed"] = stats.screening.quartets_computed;
  out["screening"] = std::move(screening);
  obs::Json busy = obs::Json::array();
  for (const double s : stats.thread_busy_seconds) busy.push_back(s);
  out["thread_busy_seconds"] = std::move(busy);
  out["metrics"] = stats.metrics;
  return out;
}

FockBuilder::FockBuilder(const BasisSet& basis, HfxOptions options)
    : basis_(basis),
      options_(options),
      pairs_(basis, ints::schwarz_bounds(basis), options.eps_schwarz),
      tasks_(make_tasks(basis, pairs_, options.target_task_cost)) {
  pair_hermites_.reserve(pairs_.size());
  for (const ShellPair& pr : pairs_.pairs())
    pair_hermites_.emplace_back(basis_.shell(pr.sa), basis_.shell(pr.sb));
}

ExchangeResult FockBuilder::exchange(const Matrix& density) const {
  JkResult jk = build(density, /*want_coulomb=*/false);
  return {std::move(jk.k), std::move(jk.stats)};
}

JkResult FockBuilder::coulomb_exchange(const Matrix& density) const {
  return build(density, /*want_coulomb=*/true);
}

JkResult FockBuilder::build(const Matrix& density, bool want_coulomb) const {
  obs::Trace::Scope build_span(obs::global_trace(), "jk.build");
  const std::size_t nao = basis_.num_functions();
  const std::size_t nthreads = resolve_thread_count(options_.num_threads);
  const double eps_contribution = options_.contribution_cutoff();

  obs::Registry registry(nthreads);
  const obs::Timer busy_timer = registry.timer("hfx.task_seconds");
  const obs::Counter c_considered = registry.counter("hfx.quartets_considered");
  const obs::Counter c_schwarz = registry.counter("hfx.quartets_schwarz_screened");
  const obs::Counter c_density = registry.counter("hfx.quartets_density_screened");
  const obs::Counter c_computed = registry.counter("hfx.quartets_computed");

  const Matrix block_max = options_.density_screening
                               ? shell_block_max_density(basis_, density)
                               : Matrix();

  std::vector<Matrix> k_private(nthreads, Matrix(nao, nao));
  std::vector<Matrix> j_private;
  if (want_coulomb) j_private.assign(nthreads, Matrix(nao, nao));

  JkResult result;
  result.stats.num_pairs = pairs_.size();
  result.stats.num_pairs_unscreened = pairs_.unscreened_count();
  result.stats.num_tasks = tasks_.size();
  if (options_.record_task_costs)
    result.stats.task_costs.assign(tasks_.size(), TaskCostRecord{});

  auto run_task = [&](std::size_t task_index, std::size_t tid) {
    const QuartetTask& task = tasks_[task_index];
    const ShellPair& bra = pairs_[task.bra];
    Matrix& k_acc = k_private[tid];
    Matrix* j_acc = want_coulomb ? &j_private[tid] : nullptr;

    // Screening tallies accumulate locally and flush once per task so
    // the inner quartet loop performs no atomic traffic.
    std::uint64_t considered = 0, schwarz = 0, density_scr = 0, computed = 0;
    const obs::Stopwatch watch;
    for (std::uint32_t kk = task.ket_begin; kk < task.ket_end; ++kk) {
      const ShellPair& ket = pairs_[kk];
      ++considered;
      const double qq = bra.q * ket.q;
      if (qq < options_.eps_schwarz) {
        ++schwarz;
        continue;
      }
      if (options_.density_screening) {
        const double pmax = want_coulomb
                                ? std::max(exchange_density_bound(
                                               block_max, bra.sa, bra.sb,
                                               ket.sa, ket.sb),
                                           std::max(block_max(bra.sa, bra.sb),
                                                    block_max(ket.sa, ket.sb)))
                                : exchange_density_bound(block_max, bra.sa,
                                                         bra.sb, ket.sa,
                                                         ket.sb);
        if (qq * pmax < options_.eps_schwarz) {
          ++density_scr;
          continue;
        }
      }
      ++computed;
      thread_local ints::EriBlock block;
      ints::eri_shell_quartet(pair_hermites_[task.bra], pair_hermites_[kk],
                              block);
      digest_quartet(basis_, bra.sa, bra.sb, ket.sa, ket.sb, block, density,
                     j_acc, k_acc, /*braket_same=*/kk == task.bra,
                     eps_contribution);
    }
    const double secs = watch.seconds();
    busy_timer.add_seconds(tid, secs);
    c_considered.add(tid, considered);
    c_schwarz.add(tid, schwarz);
    c_density.add(tid, density_scr);
    c_computed.add(tid, computed);
    if (options_.record_task_costs)
      result.stats.task_costs[task_index] = {
          static_cast<std::uint32_t>(task_index), task.est_cost, secs};
  };

  {
    obs::Trace::Scope task_span(obs::global_trace(), "jk.tasks");
    obs::ScopedTimer wall(registry.timer("hfx.wall_seconds"), 0);
    execute_tasks(tasks_.size(), nthreads, options_.schedule, run_task,
                  &registry);
  }

  // Reduce the thread-private accumulators (modeled as a torus tree
  // reduction by the bgq simulator at scale).
  {
    obs::Trace::Scope reduce_span(obs::global_trace(), "jk.reduce");
    obs::ScopedTimer reduce(registry.timer("hfx.reduce_seconds"), 0);
    result.k = Matrix(nao, nao);
    for (const Matrix& kp : k_private) result.k += kp;
    linalg::symmetrize(result.k);
    if (want_coulomb) {
      result.j = Matrix(nao, nao);
      for (const Matrix& jp : j_private) result.j += jp;
      linalg::symmetrize(result.j);
    }
  }

  result.stats.screening.quartets_considered =
      registry.counter_total("hfx.quartets_considered");
  result.stats.screening.quartets_schwarz_screened =
      registry.counter_total("hfx.quartets_schwarz_screened");
  result.stats.screening.quartets_density_screened =
      registry.counter_total("hfx.quartets_density_screened");
  result.stats.screening.quartets_computed =
      registry.counter_total("hfx.quartets_computed");
  result.stats.wall_seconds = registry.timer_seconds("hfx.wall_seconds");
  result.stats.reduce_seconds = registry.timer_seconds("hfx.reduce_seconds");
  result.stats.thread_busy_seconds =
      registry.timer_per_thread("hfx.task_seconds");
  result.stats.metrics = registry.to_json();
  return result;
}

}  // namespace mthfx::hfx
