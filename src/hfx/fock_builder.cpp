#include "hfx/fock_builder.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <stdexcept>

#include "hfx/quartet_digest.hpp"
#include "hfx/schedulers.hpp"
#include "ints/eri.hpp"
#include "ints/eri_batch.hpp"
#include "ints/schwarz.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "parallel/reduce.hpp"
#include "parallel/thread_pool.hpp"

namespace mthfx::hfx {

using chem::BasisSet;
using linalg::Matrix;

namespace detail {

// See quartet_digest.hpp — shared with the blocked build.
void digest_quartet(const BasisSet& basis, std::uint32_t sa, std::uint32_t sb,
                    std::uint32_t sc, std::uint32_t sd,
                    const ints::EriBlock& block, const Matrix& density,
                    Matrix* j_acc, Matrix& k_acc, bool braket_same,
                    double eps_contribution) {
  const std::size_t oa = basis.first_function(sa);
  const std::size_t ob = basis.first_function(sb);
  const std::size_t oc = basis.first_function(sc);
  const std::size_t od = basis.first_function(sd);
  const bool ab_same = (sa == sb);
  const bool cd_same = (sc == sd);

  for (std::size_t ia = 0; ia < block.na; ++ia) {
    const std::size_t i = oa + ia;
    for (std::size_t ib = 0; ib < block.nb; ++ib) {
      const std::size_t jj = ob + ib;
      if (ab_same && i < jj) continue;
      const std::size_t ij = i * (i + 1) / 2 + jj;
      for (std::size_t ic = 0; ic < block.nc; ++ic) {
        const std::size_t k = oc + ic;
        const std::size_t klbase = k * (k + 1) / 2;
        for (std::size_t id = 0; id < block.nd; ++id) {
          const std::size_t l = od + id;
          if (cd_same && k < l) continue;
          if (braket_same && ij < klbase + l) continue;
          const double v = block(ia, ib, ic, id);
          if (std::abs(v) < eps_contribution) continue;

          const bool e1 = (i == jj);
          const bool e2 = (k == l);
          const bool e3 = (i == k && jj == l);

          if (j_acc) {
            Matrix& j = *j_acc;
            const double jv1 = (e2 ? 1.0 : 2.0) * density(k, l) * v;
            j(i, jj) += jv1;
            if (!e1) j(jj, i) += jv1;
            if (!e3) {
              const double jv2 = (e1 ? 1.0 : 2.0) * density(i, jj) * v;
              j(k, l) += jv2;
              if (!e2) j(l, k) += jv2;
            }
          }

          k_acc(i, k) += density(jj, l) * v;
          if (!e1) k_acc(jj, k) += density(i, l) * v;
          if (!e2) k_acc(i, l) += density(jj, k) * v;
          if (!e1 && !e2) k_acc(jj, l) += density(i, k) * v;
          if (!e3) {
            k_acc(k, i) += density(l, jj) * v;
            if (!e2) k_acc(l, i) += density(k, jj) * v;
            if (!e1) k_acc(k, jj) += density(l, i) * v;
            if (!e1 && !e2) k_acc(l, jj) += density(k, i) * v;
          }
        }
      }
    }
  }
}

}  // namespace detail

namespace {

bool all_finite(const Matrix& m) {
  for (const double v : m.flat())
    if (!std::isfinite(v)) return false;
  return true;
}

// Pair formation for the constructor's member-init list: the culled
// branch never forms the O(ns²) Schwarz matrix (schwarz stays empty),
// the dense branch fills it and screens against it as before.
ShellPairList make_pairs(const BasisSet& basis, const HfxOptions& options,
                         Matrix* schwarz, bool* culled, PairCullStats* stats) {
  if (options.sparsity.blocked(basis.num_functions())) {
    *culled = true;
    return ShellPairList::culled(basis, options.eps_schwarz, stats);
  }
  *schwarz = ints::schwarz_bounds(basis);
  return ShellPairList(basis, *schwarz, options.eps_schwarz);
}

}  // namespace

double HfxStats::imbalance() const {
  double mx = 0.0, total = 0.0;
  for (const double s : thread_busy_seconds) {
    mx = std::max(mx, s);
    total += s;
  }
  if (total <= 0.0 || thread_busy_seconds.empty()) return 1.0;
  const double mean = total / static_cast<double>(thread_busy_seconds.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

obs::Json to_json(const HfxStats& stats) {
  obs::Json out = obs::Json::object();
  out["num_pairs"] = stats.num_pairs;
  out["num_pairs_unscreened"] = stats.num_pairs_unscreened;
  out["num_tasks"] = stats.num_tasks;
  out["wall_seconds"] = stats.wall_seconds;
  out["reduce_seconds"] = stats.reduce_seconds;
  out["imbalance"] = stats.imbalance();
  obs::Json screening = obs::Json::object();
  screening["considered"] = stats.screening.quartets_considered;
  screening["schwarz_screened"] = stats.screening.quartets_schwarz_screened;
  screening["density_screened"] = stats.screening.quartets_density_screened;
  screening["computed"] = stats.screening.quartets_computed;
  out["screening"] = std::move(screening);
  obs::Json fault = obs::Json::object();
  fault["injected"] = stats.fault.injected;
  fault["injected_failures"] = stats.fault.injected_failures;
  fault["injected_stalls"] = stats.fault.injected_stalls;
  fault["injected_corruptions"] = stats.fault.injected_corruptions;
  fault["retries"] = stats.fault.retries;
  fault["permanent_failures"] = stats.fault.permanent_failures;
  out["fault"] = std::move(fault);
  obs::Json busy = obs::Json::array();
  for (const double s : stats.thread_busy_seconds) busy.push_back(s);
  out["thread_busy_seconds"] = std::move(busy);
  out["metrics"] = stats.metrics;
  return out;
}

FockBuilder::FockBuilder(const BasisSet& basis, HfxOptions options)
    : basis_(&basis),
      options_(options),
      pairs_(make_pairs(basis, options_, &schwarz_, &culled_, &cull_stats_)),
      tasks_(make_tasks(basis, pairs_, options.target_task_cost,
                        options.eps_schwarz, options.eri_kernel)) {
  index_pairs_by_shell();
  pair_hermites_.reserve(pairs_.size());
  for (const ShellPair& pr : pairs_.pairs())
    pair_hermites_.emplace_back(basis_->shell(pr.sa), basis_->shell(pr.sb),
                                options_.eri_kernel);
  if (options_.fault.enabled()) injector_.emplace(options_.fault);
}

void FockBuilder::index_pairs_by_shell() {
  pairs_by_shell_.assign(basis_->num_shells(), {});
  // pairs_ is sorted by descending q, so appending in index order keeps
  // each shell's link list in descending q too — the sorted-break
  // invariant the blocked enumeration relies on.
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const ShellPair& pr = pairs_[i];
    pairs_by_shell_[pr.sa].push_back(static_cast<std::uint32_t>(i));
    if (pr.sb != pr.sa)
      pairs_by_shell_[pr.sb].push_back(static_cast<std::uint32_t>(i));
  }
}

void FockBuilder::rebind(const BasisSet& basis) {
  const BasisSet& old = *basis_;
  if (basis.num_shells() != old.num_shells() ||
      basis.num_functions() != old.num_functions())
    throw std::invalid_argument("FockBuilder::rebind: shell structure differs");
  const std::size_t ns = basis.num_shells();

  std::vector<char> moved(ns, 0);
  for (std::size_t s = 0; s < ns; ++s) {
    if (basis.shell(s).l() != old.shell(s).l() ||
        basis.shell(s).atom_index() != old.shell(s).atom_index())
      throw std::invalid_argument(
          "FockBuilder::rebind: shell structure differs");
    const chem::Vec3& c0 = old.shell(s).center();
    const chem::Vec3& c1 = basis.shell(s).center();
    moved[s] = (c0.x != c1.x || c0.y != c1.y || c0.z != c1.z) ? 1 : 0;
  }

  // Refresh Schwarz entries with a moved endpoint; bounds between two
  // unmoved shells are bitwise identical by construction. Culled mode
  // never formed the matrix — it re-culls below instead.
  if (!culled_) {
    for (std::size_t sa = 0; sa < ns; ++sa)
      for (std::size_t sb = sa; sb < ns; ++sb)
        if (moved[sa] || moved[sb]) {
          const double b =
              ints::schwarz_bound(basis.shell(sa), basis.shell(sb));
          schwarz_(sa, sb) = b;
          schwarz_(sb, sa) = b;
        }
  }

  // Index the old pair list so surviving unmoved pairs can hand their
  // Hermite tables over instead of re-expanding them.
  std::unordered_map<std::uint64_t, std::size_t> old_index;
  old_index.reserve(pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i)
    old_index.emplace(
        (static_cast<std::uint64_t>(pairs_[i].sa) << 32) | pairs_[i].sb, i);

  ShellPairList new_pairs =
      culled_ ? ShellPairList::culled(basis, options_.eps_schwarz, &cull_stats_)
              : ShellPairList(basis, schwarz_, options_.eps_schwarz);
  std::vector<ints::ShellPairHermite> new_hermites;
  new_hermites.reserve(new_pairs.size());
  std::size_t reused = 0;
  for (const ShellPair& pr : new_pairs.pairs()) {
    if (!moved[pr.sa] && !moved[pr.sb]) {
      const auto it = old_index.find(
          (static_cast<std::uint64_t>(pr.sa) << 32) | pr.sb);
      if (it != old_index.end()) {
        new_hermites.push_back(std::move(pair_hermites_[it->second]));
        ++reused;
        continue;
      }
    }
    new_hermites.emplace_back(basis.shell(pr.sa), basis.shell(pr.sb),
                              options_.eri_kernel);
  }

  pairs_ = std::move(new_pairs);
  pair_hermites_ = std::move(new_hermites);
  tasks_ = make_tasks(basis, pairs_, options_.target_task_cost,
                      options_.eps_schwarz, options_.eri_kernel);
  basis_ = &basis;
  index_pairs_by_shell();
  rebind_reused_ = reused;
}

ExchangeResult FockBuilder::exchange(const Matrix& density) const {
  JkResult jk = build(density, /*want_coulomb=*/false);
  return {std::move(jk.k), std::move(jk.stats)};
}

JkResult FockBuilder::coulomb_exchange(const Matrix& density) const {
  return build(density, /*want_coulomb=*/true);
}

JkResult FockBuilder::build(const Matrix& density, bool want_coulomb) const {
  obs::Trace::Scope build_span(obs::global_trace(), "jk.build");
  const std::size_t nao = basis_->num_functions();
  const std::size_t nthreads = resolve_thread_count(options_.num_threads);
  const double eps_contribution = options_.contribution_cutoff();

  obs::Registry registry(nthreads);
  const obs::Timer busy_timer = registry.timer("hfx.task_seconds");
  const obs::Counter c_considered = registry.counter("hfx.quartets_considered");
  const obs::Counter c_schwarz = registry.counter("hfx.quartets_schwarz_screened");
  const obs::Counter c_density = registry.counter("hfx.quartets_density_screened");
  const obs::Counter c_computed = registry.counter("hfx.quartets_computed");

  const Matrix block_max = options_.density_screening
                               ? shell_block_max_density(*basis_, density)
                               : Matrix();

  std::vector<Matrix> k_private(nthreads, Matrix(nao, nao));
  std::vector<Matrix> j_private;
  if (want_coulomb) j_private.assign(nthreads, Matrix(nao, nao));

  // Transactional commit: tasks digest into a scratch matrix that is
  // validated and added to the per-thread accumulator only on success, so
  // a retried (thrown or poisoned) task never double-commits or leaks a
  // partial/corrupt contribution.
  const bool transactional = options_.validate_tasks;
  std::vector<Matrix> k_scratch, j_scratch;
  if (transactional) {
    k_scratch.assign(nthreads, Matrix(nao, nao));
    if (want_coulomb) j_scratch.assign(nthreads, Matrix(nao, nao));
  }

  // Per-task attempt counters give each retry a fresh, independent fault
  // draw; the epoch salts sites so every build in an SCF sequence sees a
  // different (seed-reproducible) fault pattern.
  const std::uint64_t epoch =
      build_epoch_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<std::atomic<std::uint32_t>[]> attempt_counts;
  if (injector_)
    attempt_counts =
        std::make_unique<std::atomic<std::uint32_t>[]>(tasks_.size());

  JkResult result;
  result.stats.num_pairs = pairs_.size();
  result.stats.num_pairs_unscreened = pairs_.unscreened_count();
  result.stats.num_tasks = tasks_.size();
  if (options_.record_task_costs)
    result.stats.task_costs.assign(tasks_.size(), TaskCostRecord{});

  auto run_task = [&](std::size_t task_index, std::size_t tid) {
    bool poison = false;
    if (injector_) {
      const std::uint32_t attempt =
          attempt_counts[task_index].fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t site =
          (epoch << 40) | static_cast<std::uint64_t>(task_index);
      // Throws InjectedFault on kFail, sleeps on kStall, returns true on
      // kCorrupt (poison applied to the digested output below).
      poison = injector_->apply(site, attempt);
    }
    const QuartetTask& task = tasks_[task_index];
    const ShellPair& bra = pairs_[task.bra];
    Matrix& k_acc = transactional ? k_scratch[tid] : k_private[tid];
    Matrix* j_acc =
        want_coulomb ? (transactional ? &j_scratch[tid] : &j_private[tid])
                     : nullptr;
    if (transactional) {
      k_acc.fill(0.0);
      if (j_acc) j_acc->fill(0.0);
    }

    // Screening tallies accumulate locally and flush once per task so
    // the inner quartet loop performs no atomic traffic.
    std::uint64_t considered = 0, schwarz = 0, density_scr = 0, computed = 0;
    // Batched kernel: survivors of this task's screening loop accumulate
    // into a quartet stream and are evaluated in one micro-kernel call,
    // then digested in the same ascending-ket order the scalar path uses.
    // (All three buffers keep their capacity across tasks.)
    const bool batched = options_.eri_kernel == ints::EriKernel::kBatched;
    thread_local std::vector<std::uint32_t> survivors;
    thread_local std::vector<ints::QuartetRef> stream;
    thread_local std::vector<ints::EriBlock> blocks;
    survivors.clear();
    const obs::Stopwatch watch;
    for (std::uint32_t kk = task.ket_begin; kk < task.ket_end; ++kk) {
      const ShellPair& ket = pairs_[kk];
      const double qq = bra.q * ket.q;
      if (qq < options_.eps_schwarz) {
        // The pair list is sorted by descending q, so every remaining
        // ket in this task fails the same bound: account for the whole
        // tail and exit instead of testing it pair by pair.
        const std::uint64_t rest = task.ket_end - kk;
        considered += rest;
        schwarz += rest;
        break;
      }
      ++considered;
      if (options_.density_screening) {
        const double pmax = want_coulomb
                                ? std::max(exchange_density_bound(
                                               block_max, bra.sa, bra.sb,
                                               ket.sa, ket.sb),
                                           std::max(block_max(bra.sa, bra.sb),
                                                    block_max(ket.sa, ket.sb)))
                                : exchange_density_bound(block_max, bra.sa,
                                                         bra.sb, ket.sa,
                                                         ket.sb);
        if (qq * pmax < options_.eps_schwarz) {
          ++density_scr;
          continue;
        }
      }
      ++computed;
      if (batched) {
        survivors.push_back(kk);
        continue;
      }
      thread_local ints::EriBlock block;
      if (options_.eri_kernel == ints::EriKernel::kDenseReference)
        ints::eri_shell_quartet_dense_reference(pair_hermites_[task.bra],
                                                pair_hermites_[kk], block);
      else
        ints::eri_shell_quartet(pair_hermites_[task.bra], pair_hermites_[kk],
                                block);
      detail::digest_quartet(*basis_, bra.sa, bra.sb, ket.sa, ket.sb, block, density,
                     j_acc, k_acc, /*braket_same=*/kk == task.bra,
                     eps_contribution);
    }
    if (batched && !survivors.empty()) {
      stream.clear();
      stream.reserve(survivors.size());
      for (const std::uint32_t kk : survivors)
        stream.push_back({&pair_hermites_[task.bra], &pair_hermites_[kk]});
      if (blocks.size() < survivors.size()) blocks.resize(survivors.size());
      ints::eri_shell_quartet_batched({stream.data(), stream.size()},
                                      blocks.data());
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        const ShellPair& ket = pairs_[survivors[i]];
        detail::digest_quartet(*basis_, bra.sa, bra.sb, ket.sa, ket.sb, blocks[i],
                       density, j_acc, k_acc,
                       /*braket_same=*/survivors[i] == task.bra,
                       eps_contribution);
      }
    }
    // A kCorrupt fault models silent data corruption in the task's
    // output. With validation on, the isfinite sweep catches it and the
    // retry path heals it; with validation off it lands in K, which is
    // exactly the hazard validate_tasks exists to close.
    if (poison) k_acc(0, 0) = std::numeric_limits<double>::quiet_NaN();
    if (transactional) {
      if (!all_finite(k_acc) || (j_acc && !all_finite(*j_acc)))
        throw std::runtime_error("hfx: non-finite task output (task " +
                                 std::to_string(task_index) + ")");
      k_private[tid] += k_acc;
      if (j_acc) j_private[tid] += *j_acc;
    }
    // Tallies, timing, and cost records flush only on this success path;
    // a throw above leaves them untouched so retries never double-count.
    const double secs = watch.seconds();
    busy_timer.add_seconds(tid, secs);
    c_considered.add(tid, considered);
    c_schwarz.add(tid, schwarz);
    c_density.add(tid, density_scr);
    c_computed.add(tid, computed);
    if (options_.record_task_costs)
      result.stats.task_costs[task_index] = {
          static_cast<std::uint32_t>(task_index), task.est_cost, secs};
  };

  const std::uint64_t pre_failures = injector_ ? injector_->failures() : 0;
  const std::uint64_t pre_stalls = injector_ ? injector_->stalls() : 0;
  const std::uint64_t pre_corruptions =
      injector_ ? injector_->corruptions() : 0;
  // One pool serves both parallel phases of the build (task loop, then
  // accumulator reduction) so threads are spawned once per build.
  parallel::ThreadPool pool(nthreads);
  {
    obs::Trace::Scope task_span(obs::global_trace(), "jk.tasks");
    obs::ScopedTimer wall(registry.timer("hfx.wall_seconds"), 0);
    execute_tasks(pool, tasks_.size(), options_.schedule, run_task,
                  &registry,
                  RetryOptions{.max_retries = options_.fault.max_retries});
  }

  // Reduce the thread-private accumulators with a row-blocked pairwise
  // tree across the pool — the host analogue of the torus tree reduction
  // the bgq simulator models at scale. Serial summation here would be
  // O(nthreads * nao^2) on one thread, growing with exactly the thread
  // count that is supposed to shrink the build.
  {
    obs::Trace::Scope reduce_span(obs::global_trace(), "jk.reduce");
    obs::ScopedTimer reduce(registry.timer("hfx.reduce_seconds"), 0);
    std::vector<double*> parts(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) parts[t] = k_private[t].data();
    parallel::tree_reduce(pool, parts, nao * nao);
    result.k = std::move(k_private.front());
    linalg::symmetrize(result.k);
    if (want_coulomb) {
      for (std::size_t t = 0; t < nthreads; ++t) parts[t] = j_private[t].data();
      parallel::tree_reduce(pool, parts, nao * nao);
      result.j = std::move(j_private.front());
      linalg::symmetrize(result.j);
    }
  }

  result.stats.screening.quartets_considered =
      registry.counter_total("hfx.quartets_considered");
  result.stats.screening.quartets_schwarz_screened =
      registry.counter_total("hfx.quartets_schwarz_screened");
  result.stats.screening.quartets_density_screened =
      registry.counter_total("hfx.quartets_density_screened");
  result.stats.screening.quartets_computed =
      registry.counter_total("hfx.quartets_computed");
  result.stats.wall_seconds = registry.timer_seconds("hfx.wall_seconds");
  result.stats.reduce_seconds = registry.timer_seconds("hfx.reduce_seconds");
  result.stats.thread_busy_seconds =
      registry.timer_per_thread("hfx.task_seconds");
  result.stats.fault.retries = registry.counter_total("fault.retries");
  result.stats.fault.permanent_failures =
      registry.counter_total("fault.permanent_failures");
  if (injector_) {
    result.stats.fault.injected_failures = injector_->failures() - pre_failures;
    result.stats.fault.injected_stalls = injector_->stalls() - pre_stalls;
    result.stats.fault.injected_corruptions =
        injector_->corruptions() - pre_corruptions;
    result.stats.fault.injected = result.stats.fault.injected_failures +
                                  result.stats.fault.injected_stalls +
                                  result.stats.fault.injected_corruptions;
    registry.counter("fault.injected").add(0, result.stats.fault.injected);
  }
  result.stats.metrics = registry.to_json();
  return result;
}

}  // namespace mthfx::hfx
