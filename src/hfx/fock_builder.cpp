#include "hfx/fock_builder.hpp"

#include <array>
#include <chrono>

#include "hfx/schedulers.hpp"
#include "ints/eri.hpp"
#include "ints/schwarz.hpp"

namespace mthfx::hfx {

using chem::BasisSet;
using linalg::Matrix;

namespace {

// Digest one computed shell quartet into thread-private J/K accumulators.
//
// For a canonical AO quartet (i >= j, k >= l, pair(ij) >= pair(kl)) the
// 8-member permutational orbit collapses according to three coincidence
// flags: e1 = (i == j), e2 = (k == l), e3 = (ij == kl). The update lists
// below enumerate exactly the distinct orbit members for every flag
// combination (verified case-by-case against explicit orbit
// deduplication in the unit tests via the dense reference).
void digest_quartet(const BasisSet& basis, std::uint32_t sa, std::uint32_t sb,
                    std::uint32_t sc, std::uint32_t sd,
                    const ints::EriBlock& block, const Matrix& density,
                    Matrix* j_acc, Matrix& k_acc, bool braket_same) {
  const std::size_t oa = basis.first_function(sa);
  const std::size_t ob = basis.first_function(sb);
  const std::size_t oc = basis.first_function(sc);
  const std::size_t od = basis.first_function(sd);
  const bool ab_same = (sa == sb);
  const bool cd_same = (sc == sd);

  for (std::size_t ia = 0; ia < block.na; ++ia) {
    const std::size_t i = oa + ia;
    for (std::size_t ib = 0; ib < block.nb; ++ib) {
      const std::size_t jj = ob + ib;
      if (ab_same && i < jj) continue;
      const std::size_t ij = i * (i + 1) / 2 + jj;
      for (std::size_t ic = 0; ic < block.nc; ++ic) {
        const std::size_t k = oc + ic;
        const std::size_t klbase = k * (k + 1) / 2;
        for (std::size_t id = 0; id < block.nd; ++id) {
          const std::size_t l = od + id;
          if (cd_same && k < l) continue;
          if (braket_same && ij < klbase + l) continue;
          const double v = block(ia, ib, ic, id);
          if (std::abs(v) < 1e-16) continue;

          const bool e1 = (i == jj);
          const bool e2 = (k == l);
          const bool e3 = (i == k && jj == l);

          if (j_acc) {
            Matrix& j = *j_acc;
            const double jv1 = (e2 ? 1.0 : 2.0) * density(k, l) * v;
            j(i, jj) += jv1;
            if (!e1) j(jj, i) += jv1;
            if (!e3) {
              const double jv2 = (e1 ? 1.0 : 2.0) * density(i, jj) * v;
              j(k, l) += jv2;
              if (!e2) j(l, k) += jv2;
            }
          }

          k_acc(i, k) += density(jj, l) * v;
          if (!e1) k_acc(jj, k) += density(i, l) * v;
          if (!e2) k_acc(i, l) += density(jj, k) * v;
          if (!e1 && !e2) k_acc(jj, l) += density(i, k) * v;
          if (!e3) {
            k_acc(k, i) += density(l, jj) * v;
            if (!e2) k_acc(l, i) += density(k, jj) * v;
            if (!e1) k_acc(k, jj) += density(l, i) * v;
            if (!e1 && !e2) k_acc(l, jj) += density(k, i) * v;
          }
        }
      }
    }
  }
}

}  // namespace

FockBuilder::FockBuilder(const BasisSet& basis, HfxOptions options)
    : basis_(basis),
      options_(options),
      pairs_(basis, ints::schwarz_bounds(basis), options.eps_schwarz),
      tasks_(make_tasks(basis, pairs_, options.target_task_cost)) {
  pair_hermites_.reserve(pairs_.size());
  for (const ShellPair& pr : pairs_.pairs())
    pair_hermites_.emplace_back(basis_.shell(pr.sa), basis_.shell(pr.sb));
}

ExchangeResult FockBuilder::exchange(const Matrix& density) const {
  JkResult jk = build(density, /*want_coulomb=*/false);
  return {std::move(jk.k), std::move(jk.stats)};
}

JkResult FockBuilder::coulomb_exchange(const Matrix& density) const {
  return build(density, /*want_coulomb=*/true);
}

JkResult FockBuilder::build(const Matrix& density, bool want_coulomb) const {
  const std::size_t nao = basis_.num_functions();
  const std::size_t nthreads = resolve_thread_count(options_.num_threads);

  const Matrix block_max = options_.density_screening
                               ? shell_block_max_density(basis_, density)
                               : Matrix();

  std::vector<Matrix> k_private(nthreads, Matrix(nao, nao));
  std::vector<Matrix> j_private;
  if (want_coulomb) j_private.assign(nthreads, Matrix(nao, nao));

  JkResult result;
  result.stats.num_pairs = pairs_.size();
  result.stats.num_pairs_unscreened = pairs_.unscreened_count();
  result.stats.num_tasks = tasks_.size();
  result.stats.thread_busy_seconds.assign(nthreads, 0.0);
  if (options_.record_task_costs)
    result.stats.task_costs.assign(tasks_.size(), TaskCostRecord{});

  std::vector<ScreeningStats> screen_private(nthreads);

  auto run_task = [&](std::size_t task_index, std::size_t tid) {
    const QuartetTask& task = tasks_[task_index];
    const ShellPair& bra = pairs_[task.bra];
    ScreeningStats& stats = screen_private[tid];
    Matrix& k_acc = k_private[tid];
    Matrix* j_acc = want_coulomb ? &j_private[tid] : nullptr;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t kk = task.ket_begin; kk < task.ket_end; ++kk) {
      const ShellPair& ket = pairs_[kk];
      ++stats.quartets_considered;
      const double qq = bra.q * ket.q;
      if (qq < options_.eps_schwarz) {
        ++stats.quartets_schwarz_screened;
        continue;
      }
      if (options_.density_screening) {
        const double pmax = want_coulomb
                                ? std::max(exchange_density_bound(
                                               block_max, bra.sa, bra.sb,
                                               ket.sa, ket.sb),
                                           std::max(block_max(bra.sa, bra.sb),
                                                    block_max(ket.sa, ket.sb)))
                                : exchange_density_bound(block_max, bra.sa,
                                                         bra.sb, ket.sa,
                                                         ket.sb);
        if (qq * pmax < options_.eps_schwarz) {
          ++stats.quartets_density_screened;
          continue;
        }
      }
      ++stats.quartets_computed;
      thread_local ints::EriBlock block;
      ints::eri_shell_quartet(pair_hermites_[task.bra], pair_hermites_[kk],
                              block);
      digest_quartet(basis_, bra.sa, bra.sb, ket.sa, ket.sb, block, density,
                     j_acc, k_acc, /*braket_same=*/kk == task.bra);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    result.stats.thread_busy_seconds[tid] += secs;
    if (options_.record_task_costs)
      result.stats.task_costs[task_index] = {
          static_cast<std::uint32_t>(task_index), task.est_cost, secs};
  };

  const auto wall0 = std::chrono::steady_clock::now();
  execute_tasks(tasks_.size(), nthreads, options_.schedule, run_task);
  const auto wall1 = std::chrono::steady_clock::now();
  result.stats.wall_seconds =
      std::chrono::duration<double>(wall1 - wall0).count();

  for (const auto& s : screen_private) result.stats.screening += s;

  // Reduce the thread-private accumulators (modeled as a torus tree
  // reduction by the bgq simulator at scale).
  result.k = Matrix(nao, nao);
  for (const Matrix& kp : k_private) result.k += kp;
  linalg::symmetrize(result.k);
  if (want_coulomb) {
    result.j = Matrix(nao, nao);
    for (const Matrix& jp : j_private) result.j += jp;
    linalg::symmetrize(result.j);
  }
  return result;
}

}  // namespace mthfx::hfx
