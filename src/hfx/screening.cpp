#include "hfx/screening.hpp"

#include <algorithm>
#include <cmath>

namespace mthfx::hfx {

linalg::Matrix shell_block_max_density(const chem::BasisSet& basis,
                                       const linalg::Matrix& density) {
  const std::size_t ns = basis.num_shells();
  linalg::Matrix bm(ns, ns);
  for (std::size_t sa = 0; sa < ns; ++sa) {
    const std::size_t oa = basis.first_function(sa);
    const std::size_t na = basis.shell(sa).num_functions();
    for (std::size_t sb = 0; sb < ns; ++sb) {
      const std::size_t ob = basis.first_function(sb);
      const std::size_t nb = basis.shell(sb).num_functions();
      double mx = 0.0;
      for (std::size_t i = 0; i < na; ++i)
        for (std::size_t j = 0; j < nb; ++j)
          mx = std::max(mx, std::abs(density(oa + i, ob + j)));
      bm(sa, sb) = mx;
    }
  }
  return bm;
}

double exchange_density_bound(const linalg::Matrix& block_max, std::uint32_t sa,
                              std::uint32_t sb, std::uint32_t sc,
                              std::uint32_t sd) {
  // K_{ac} needs P_{bd}; with the full permutational orbit the digestion
  // also touches P_{ad}, P_{bc}, P_{ac}... The conservative bound is the
  // max over all bra-index x ket-index blocks.
  return std::max(std::max(block_max(sa, sc), block_max(sa, sd)),
                  std::max(block_max(sb, sc), block_max(sb, sd)));
}

}  // namespace mthfx::hfx
