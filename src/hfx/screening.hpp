#pragma once

// Screening stage two: density-weighted Schwarz bounds.
//
// |K contribution of (ab|cd)| <= Q_ab * Q_cd * max relevant |P| block.
// Together with the bare Schwarz prune this is the paper's "highly
// controllable" accuracy mechanism: the threshold eps bounds the error
// of every neglected integral's contribution to the Fock matrix.

#include <cstdint>

#include "chem/basis.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::hfx {

struct ScreeningStats {
  std::uint64_t quartets_considered = 0;
  std::uint64_t quartets_schwarz_screened = 0;
  std::uint64_t quartets_density_screened = 0;
  std::uint64_t quartets_computed = 0;

  ScreeningStats& operator+=(const ScreeningStats& o) {
    quartets_considered += o.quartets_considered;
    quartets_schwarz_screened += o.quartets_schwarz_screened;
    quartets_density_screened += o.quartets_density_screened;
    quartets_computed += o.quartets_computed;
    return *this;
  }
};

/// Per-shell-block max |P_ij|: entry (sa, sb) is the largest density
/// magnitude between AOs of shells sa and sb.
linalg::Matrix shell_block_max_density(const chem::BasisSet& basis,
                                       const linalg::Matrix& density);

/// Largest density bound relevant to the exchange digestion of quartet
/// (sa sb | sc sd): max over the four bra-ket cross blocks.
double exchange_density_bound(const linalg::Matrix& block_max, std::uint32_t sa,
                              std::uint32_t sb, std::uint32_t sc,
                              std::uint32_t sd);

}  // namespace mthfx::hfx
