#pragma once

// Internal: the shared quartet-digestion kernel of the dense task build
// (fock_builder.cpp) and the density-linked blocked build
// (sparse_build.cpp). Both paths must digest an identical surviving
// quartet the same way for dense/blocked agreement to be exact.

#include <cstdint>

#include "chem/basis.hpp"
#include "ints/eri.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::hfx::detail {

/// Digest one computed shell quartet into J/K accumulators.
///
/// For a canonical AO quartet (i >= j, k >= l, pair(ij) >= pair(kl)) the
/// 8-member permutational orbit collapses according to three coincidence
/// flags: e1 = (i == j), e2 = (k == l), e3 = (ij == kl). The update lists
/// enumerate exactly the distinct orbit members for every flag
/// combination (verified case-by-case against explicit orbit
/// deduplication in the unit tests via the dense reference).
/// j_acc may be null (exchange-only build).
void digest_quartet(const chem::BasisSet& basis, std::uint32_t sa,
                    std::uint32_t sb, std::uint32_t sc, std::uint32_t sd,
                    const ints::EriBlock& block,
                    const linalg::Matrix& density, linalg::Matrix* j_acc,
                    linalg::Matrix& k_acc, bool braket_same,
                    double eps_contribution);

}  // namespace mthfx::hfx::detail
