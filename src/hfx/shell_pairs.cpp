#include "hfx/shell_pairs.hpp"

#include <algorithm>

namespace mthfx::hfx {

ShellPairList::ShellPairList(const chem::BasisSet& basis,
                             const linalg::Matrix& schwarz, double eps) {
  const std::size_t ns = basis.num_shells();
  unscreened_ = ns * (ns + 1) / 2;

  double qmax = 0.0;
  for (std::size_t sa = 0; sa < ns; ++sa)
    for (std::size_t sb = 0; sb <= sa; ++sb)
      qmax = std::max(qmax, schwarz(sa, sb));
  max_q_ = qmax;

  for (std::size_t sa = 0; sa < ns; ++sa) {
    for (std::size_t sb = 0; sb <= sa; ++sb) {
      const double q = schwarz(sa, sb);
      if (q * qmax < eps) continue;
      pairs_.push_back({static_cast<std::uint32_t>(sa),
                        static_cast<std::uint32_t>(sb), q});
    }
  }
  // Sorting by descending bound keeps the heaviest bra pairs early: the
  // dynamic bag hands them out first, which shortens the critical path.
  std::sort(pairs_.begin(), pairs_.end(),
            [](const ShellPair& x, const ShellPair& y) { return x.q > y.q; });
}

}  // namespace mthfx::hfx
