#include "hfx/shell_pairs.hpp"

#include <algorithm>

#include "hfx/cell_list.hpp"

namespace mthfx::hfx {

ShellPairList::ShellPairList(const chem::BasisSet& basis,
                             const linalg::Matrix& schwarz, double eps) {
  const std::size_t ns = basis.num_shells();
  unscreened_ = ns * (ns + 1) / 2;

  double qmax = 0.0;
  for (std::size_t sa = 0; sa < ns; ++sa)
    for (std::size_t sb = 0; sb <= sa; ++sb)
      qmax = std::max(qmax, schwarz(sa, sb));
  max_q_ = qmax;

  const std::vector<double> radii = shell_extent_radii(basis);
  for (std::size_t sa = 0; sa < ns; ++sa) {
    for (std::size_t sb = 0; sb <= sa; ++sb) {
      const double q = schwarz(sa, sb);
      if (q * qmax < eps) continue;
      // Beyond summed extent radii the Gaussian-product factor is at
      // least e^{-kExtentLogSlack} below every scale the kernel can
      // resolve, for ANY partner pair — the stored bound is pure noise
      // floor that clears the eps rule on noise alone. Dropping exactly
      // this class keeps the dense sweep pair-for-pair identical to the
      // distance-culled build below, which never enumerates it. A pair
      // that is *in range* but Schwarz-floored stays subject to the
      // plain eps rule: its true diagonal is below the floored value
      // (keeping it is conservative), and its cross quartets (ab|cd)
      // with a strong partner are real at the sqrt(noise)·qmax scale
      // that tight-eps builds must resolve.
      if (!within_extent_range(basis, radii, sa, sb)) continue;
      pairs_.push_back({static_cast<std::uint32_t>(sa),
                        static_cast<std::uint32_t>(sb), q});
    }
  }
  // Sorting by descending bound keeps the heaviest bra pairs early: the
  // dynamic bag hands them out first, which shortens the critical path.
  std::sort(pairs_.begin(), pairs_.end(),
            [](const ShellPair& x, const ShellPair& y) { return x.q > y.q; });
}

ShellPairList ShellPairList::culled(const chem::BasisSet& basis, double eps,
                                    PairCullStats* stats) {
  const std::size_t ns = basis.num_shells();
  ShellPairList list;
  list.unscreened_ = ns * (ns + 1) / 2;
  if (ns == 0) return list;

  const CellList cells(basis, shell_extent_radii(basis));
  PairCullStats st;

  // Pass 1: exact Schwarz bounds on cell-list candidates only. Pairs
  // outside candidate range are below every resolvable scale by
  // construction and are never touched; in-range candidates — including
  // Schwarz-floored ones, whose cross quartets with strong partners are
  // real — go through the same eps rule as the dense sweep.
  std::vector<ShellPair> computed;
  std::vector<std::uint32_t> cand;
  double qmax = 0.0;
  for (std::size_t sa = 0; sa < ns; ++sa) {
    cand.clear();
    cells.candidates(sa, &cand);
    for (const std::uint32_t sb : cand) {
      bool floored = false;
      // Low-index shell first, matching ints::schwarz_bounds — the
      // kernel is symmetric analytically but not bit-for-bit under
      // operand swap, and the culled list must reproduce the dense
      // table exactly.
      const double q =
          ints::schwarz_bound(basis.shell(std::min<std::size_t>(sa, sb)),
                              basis.shell(std::max<std::size_t>(sa, sb)),
                              &floored);
      computed.push_back(
          {static_cast<std::uint32_t>(sa), sb, q});
      if (floored) ++st.floored;
      qmax = std::max(qmax, q);
    }
    st.candidates += cand.size();
  }
  list.max_q_ = qmax;

  // Pass 2: same eps rule as the dense build.
  for (std::size_t i = 0; i < computed.size(); ++i) {
    if (computed[i].q * qmax < eps) continue;
    list.pairs_.push_back(computed[i]);
  }
  std::sort(list.pairs_.begin(), list.pairs_.end(),
            [](const ShellPair& x, const ShellPair& y) { return x.q > y.q; });
  if (stats) *stats = st;
  return list;
}

}  // namespace mthfx::hfx
