#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "hfx/fock_builder.hpp"
#include "hfx/quartet_digest.hpp"
#include "hfx/screening.hpp"
#include "ints/eri_batch.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

// Density-linked blocked J/K build.
//
// The dense build walks, for every bra pair b, the full ket prefix
// [0, live(b)) that survives the bare Schwarz product — Θ(pairs²) visits
// even when the density screen then kills almost all of them. For a large
// insulating box nearly every exchange quartet dies on the density test
// (P decays with distance), so the visit count itself must become
// proportional to the survivors for the build to be near-linear.
//
// This file enumerates candidates through the density instead: a quartet
// (bra | ket) survives the dense path's combined test only if
// q_bra * q_ket * w >= eps for at least one "link weight" w drawn from
//   - the four bra-ket cross blocks max|P| (exchange term), or
//   - max|P| of the bra block or of the ket block (Coulomb term).
// Each such w defines a link list sorted so the condition is monotone,
// letting the walk break at the first failure. The union of link walks is
// therefore a superset of the dense survivor set; every candidate is then
// re-checked with exactly the dense tests in the dense ket order, so the
// computed quartet set — and K and J — match the dense build bitwise
// (single-threaded; the dense path also digests bras and kets in
// ascending order).

namespace mthfx::hfx {

using chem::BasisSet;
using linalg::BlockSparseMatrix;
using linalg::Matrix;

JkResult FockBuilder::build_blocked(const BlockSparseMatrix& density_blk,
                                    bool want_coulomb) const {
  obs::Trace::Scope build_span(obs::global_trace(), "jk.build_blocked");
  const Matrix density = density_blk.to_dense();
  const std::size_t nao = basis_->num_functions();
  const std::size_t ns = basis_->num_shells();
  const std::size_t np = pairs_.size();
  const double eps = options_.eps_schwarz;
  const double eps_contribution = options_.contribution_cutoff();

  obs::Registry registry(1);
  const obs::Timer busy_timer = registry.timer("hfx.task_seconds");
  const obs::Counter c_considered = registry.counter("hfx.quartets_considered");
  const obs::Counter c_schwarz =
      registry.counter("hfx.quartets_schwarz_screened");
  const obs::Counter c_density =
      registry.counter("hfx.quartets_density_screened");
  const obs::Counter c_computed = registry.counter("hfx.quartets_computed");

  JkResult result;
  result.stats.num_pairs = np;
  result.stats.num_pairs_unscreened = pairs_.unscreened_count();
  result.stats.num_tasks = np;  // one enumeration row per bra
  result.k = Matrix(nao, nao);
  if (want_coulomb) result.j = Matrix(nao, nao);
  if (options_.record_task_costs)
    result.stats.task_costs.assign(np, TaskCostRecord{});
  if (np == 0) {
    result.stats.thread_busy_seconds = {0.0};
    result.stats.metrics = registry.to_json();
    return result;
  }

  const bool density_screening = options_.density_screening;
  const Matrix block_max =
      density_screening ? shell_block_max_density(*basis_, density) : Matrix();
  const double qmax = pairs_.max_q();

  // Largest pair q containing each shell: used to skip whole link lists.
  std::vector<double> shell_qmax(ns, 0.0);
  for (std::size_t i = 0; i < np; ++i) {
    shell_qmax[pairs_[i].sa] = std::max(shell_qmax[pairs_[i].sa], pairs_[i].q);
    shell_qmax[pairs_[i].sb] = std::max(shell_qmax[pairs_[i].sb], pairs_[i].q);
  }

  // Exchange link lists: per shell e, partner shells f with block density
  // above the universal floor eps / qmax² (below it no quartet can pass),
  // sorted by descending |P| block so walks break early.
  struct Partner {
    std::uint32_t shell;
    double p;
  };
  std::vector<std::vector<Partner>> partners;
  if (density_screening) {
    const double pfloor = qmax > 0.0 ? eps / (qmax * qmax) : 0.0;
    partners.assign(ns, {});
    for (std::size_t e = 0; e < ns; ++e) {
      for (std::size_t f = 0; f < ns; ++f) {
        const double p = block_max(e, f);
        if (p >= pfloor && shell_qmax[f] > 0.0)
          partners[e].push_back({static_cast<std::uint32_t>(f), p});
      }
      std::sort(partners[e].begin(), partners[e].end(),
                [](const Partner& x, const Partner& y) { return x.p > y.p; });
    }
  }

  // Coulomb ket-side link list: pair indices sorted by descending
  // q_ket * max|P(ket block)| — the weight of the "ket density drives J"
  // term. (The bra-density term instead walks the global pair order,
  // which is already descending in q.)
  std::vector<double> jweight;
  std::vector<std::uint32_t> jorder;
  if (want_coulomb && density_screening) {
    jweight.resize(np);
    for (std::size_t i = 0; i < np; ++i)
      jweight[i] = pairs_[i].q * block_max(pairs_[i].sa, pairs_[i].sb);
    jorder.resize(np);
    for (std::size_t i = 0; i < np; ++i)
      jorder[i] = static_cast<std::uint32_t>(i);
    std::sort(jorder.begin(), jorder.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return jweight[x] > jweight[y];
              });
  }

  // First ket index whose Schwarz product with bra b fails (pairs are
  // sorted by descending q, so this is a binary search); the dense path
  // bulk-accounts everything at and past it as Schwarz-screened.
  const auto live_end = [&](std::size_t b) -> std::size_t {
    if (eps <= 0.0) return b + 1;
    const double qb = pairs_[b].q;
    std::size_t lo = 0, hi = b + 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (qb * pairs_[mid].q >= eps)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  };

  // Stamp-dedupe across the link walks of one bra row.
  std::vector<std::uint32_t> stamp(np, 0);
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> cand;
  std::vector<ints::QuartetRef> stream;
  std::vector<ints::EriBlock> blocks;
  std::vector<std::uint32_t> survivors;

  {
  obs::ScopedTimer wall(registry.timer("hfx.wall_seconds"), 0);
  for (std::size_t b = 0; b < np; ++b) {
    const obs::Stopwatch watch;
    const ShellPair& bra = pairs_[b];
    const double qb = bra.q;
    const std::size_t live = live_end(b);
    std::uint64_t considered = b + 1;
    std::uint64_t schwarz = (b + 1) - live;

    cand.clear();
    ++epoch;
    const auto push = [&](std::uint32_t idx) {
      if (idx > b) return;
      if (stamp[idx] == epoch) return;
      stamp[idx] = epoch;
      cand.push_back(idx);
    };

    if (!density_screening) {
      // No density screen: the survivor set is exactly the live prefix.
      for (std::size_t k = 0; k < live; ++k)
        push(static_cast<std::uint32_t>(k));
    } else {
      // Exchange links: e in the bra, f a density partner of e, kets
      // containing f in descending q. Monotone breaks use upper bounds
      // (qmax >= shell_qmax[f] >= q_ket), skips use the tight per-shell
      // bound — neither can drop a quartet whose own product passes.
      const std::uint32_t bra_shells[2] = {bra.sa, bra.sb};
      const int ne = bra.sa == bra.sb ? 1 : 2;
      for (int ei = 0; ei < ne; ++ei) {
        for (const Partner& pf : partners[bra_shells[ei]]) {
          if (qb * qmax * pf.p < eps) break;
          if (qb * shell_qmax[pf.shell] * pf.p < eps) continue;
          for (const std::uint32_t idx : pairs_by_shell_[pf.shell]) {
            if (qb * pairs_[idx].q * pf.p < eps) break;
            push(idx);
          }
        }
      }
      if (want_coulomb) {
        // Bra-density term: q_b * q_k * max|P(bra block)| >= eps over the
        // global descending-q order.
        const double pbra = block_max(bra.sa, bra.sb);
        if (pbra > 0.0) {
          for (std::size_t idx = 0; idx < np; ++idx) {
            if (qb * pairs_[idx].q * pbra < eps) break;
            push(static_cast<std::uint32_t>(idx));
          }
        }
        // Ket-density term: q_b * (q_k * max|P(ket block)|) >= eps over
        // the descending jweight order.
        for (const std::uint32_t idx : jorder) {
          if (qb * jweight[idx] < eps) break;
          push(idx);
        }
      }
    }

    // Re-check candidates with the dense tests, in the dense (ascending
    // ket index) order; survivors stream through the batched kernel and
    // are digested in that same order.
    std::sort(cand.begin(), cand.end());
    survivors.clear();
    std::uint64_t computed = 0;
    for (const std::uint32_t kk : cand) {
      const ShellPair& ket = pairs_[kk];
      const double qq = qb * ket.q;
      if (qq < eps) continue;  // already bulk-counted as Schwarz-screened
      if (density_screening) {
        const double pmax =
            want_coulomb
                ? std::max(exchange_density_bound(block_max, bra.sa, bra.sb,
                                                  ket.sa, ket.sb),
                           std::max(block_max(bra.sa, bra.sb),
                                    block_max(ket.sa, ket.sb)))
                : exchange_density_bound(block_max, bra.sa, bra.sb, ket.sa,
                                         ket.sb);
        if (qq * pmax < eps) continue;
      }
      ++computed;
      survivors.push_back(kk);
    }
    // Live kets that are not computed failed the density test — whether
    // we visited them or proved it via the link floors.
    const std::uint64_t density_scr = live - computed;

    if (!survivors.empty()) {
      Matrix* j_acc = want_coulomb ? &result.j : nullptr;
      if (options_.eri_kernel == ints::EriKernel::kBatched) {
        stream.clear();
        stream.reserve(survivors.size());
        for (const std::uint32_t kk : survivors)
          stream.push_back({&pair_hermites_[b], &pair_hermites_[kk]});
        if (blocks.size() < survivors.size()) blocks.resize(survivors.size());
        ints::eri_shell_quartet_batched({stream.data(), stream.size()},
                                        blocks.data());
        for (std::size_t i = 0; i < survivors.size(); ++i) {
          const ShellPair& ket = pairs_[survivors[i]];
          detail::digest_quartet(*basis_, bra.sa, bra.sb, ket.sa, ket.sb,
                                 blocks[i], density, j_acc, result.k,
                                 /*braket_same=*/survivors[i] == b,
                                 eps_contribution);
        }
      } else {
        ints::EriBlock block;
        for (const std::uint32_t kk : survivors) {
          const ShellPair& ket = pairs_[kk];
          if (options_.eri_kernel == ints::EriKernel::kDenseReference)
            ints::eri_shell_quartet_dense_reference(pair_hermites_[b],
                                                    pair_hermites_[kk], block);
          else
            ints::eri_shell_quartet(pair_hermites_[b], pair_hermites_[kk],
                                    block);
          detail::digest_quartet(*basis_, bra.sa, bra.sb, ket.sa, ket.sb,
                                 block, density, j_acc, result.k,
                                 /*braket_same=*/kk == b, eps_contribution);
        }
      }
    }

    const double secs = watch.seconds();
    busy_timer.add_seconds(0, secs);
    c_considered.add(0, considered);
    c_schwarz.add(0, schwarz);
    c_density.add(0, density_scr);
    c_computed.add(0, computed);
    if (options_.record_task_costs)
      result.stats.task_costs[b] = {static_cast<std::uint32_t>(b),
                                    static_cast<double>(computed), secs};
  }
  }  // wall timer scope

  linalg::symmetrize(result.k);
  if (want_coulomb) linalg::symmetrize(result.j);

  result.stats.screening.quartets_considered =
      registry.counter_total("hfx.quartets_considered");
  result.stats.screening.quartets_schwarz_screened =
      registry.counter_total("hfx.quartets_schwarz_screened");
  result.stats.screening.quartets_density_screened =
      registry.counter_total("hfx.quartets_density_screened");
  result.stats.screening.quartets_computed =
      registry.counter_total("hfx.quartets_computed");
  result.stats.wall_seconds = registry.timer_seconds("hfx.wall_seconds");
  result.stats.thread_busy_seconds =
      registry.timer_per_thread("hfx.task_seconds");
  result.stats.metrics = registry.to_json();
  return result;
}

ExchangeResult FockBuilder::exchange_blocked(
    const BlockSparseMatrix& density) const {
  JkResult jk = build_blocked(density, /*want_coulomb=*/false);
  return {std::move(jk.k), std::move(jk.stats)};
}

JkResult FockBuilder::coulomb_exchange_blocked(
    const BlockSparseMatrix& density) const {
  return build_blocked(density, /*want_coulomb=*/true);
}

}  // namespace mthfx::hfx
