#include "hfx/tasks.hpp"

#include <algorithm>
#include <cstdint>
#include <iterator>

namespace mthfx::hfx {

namespace {

// Hermite-box volume term of the cost model, by total angular momentum.
double hermite_volume(int lsum) {
  return static_cast<double>((lsum + 1) * (lsum + 2) * (lsum + 3)) / 6.0;
}

// Measured throughput gain of the batched SIMD kernel over the scalar
// sparse kernel by combined quartet angular momentum (bench_a7, 8-lane
// AVX-512 host; ss ~3.6x down to dd|dd ~2.6x — high-L quartets spend
// relatively more time in the scatter/panel bookkeeping that does not
// vectorize). Only the *ratios* matter: dividing each class's cost by
// its speedup keeps batched task chunks time-even across classes.
double batched_speedup(int lsum) {
  constexpr double kByLsum[] = {3.6, 3.4, 3.1, 3.4, 2.6};
  constexpr int kN = static_cast<int>(std::size(kByLsum));
  return kByLsum[std::min(lsum, kN - 1)];
}

}  // namespace

double estimate_quartet_cost(const chem::BasisSet& basis, const ShellPair& bra,
                             const ShellPair& ket) {
  const auto& a = basis.shell(bra.sa);
  const auto& b = basis.shell(bra.sb);
  const auto& c = basis.shell(ket.sa);
  const auto& d = basis.shell(ket.sb);
  const double prim = static_cast<double>(a.num_primitives()) *
                      static_cast<double>(b.num_primitives()) *
                      static_cast<double>(c.num_primitives()) *
                      static_cast<double>(d.num_primitives());
  const double comp = static_cast<double>(a.num_functions()) *
                      static_cast<double>(b.num_functions()) *
                      static_cast<double>(c.num_functions()) *
                      static_cast<double>(d.num_functions());
  // Hermite contraction grows roughly with the volume of the (t,u,v) box.
  return prim * comp * hermite_volume(a.l() + b.l() + c.l() + d.l());
}

std::vector<QuartetTask> make_tasks(const chem::BasisSet& basis,
                                    const ShellPairList& pairs,
                                    double target_cost, double eps_schwarz,
                                    ints::EriKernel kernel) {
  const std::size_t np = pairs.size();
  std::vector<QuartetTask> tasks;
  if (np == 0) return tasks;

  // The quartet cost model is separable per pair up to the Hermite-box
  // term: cost(b, k) = w_b * w_k * volume(l_b + l_k). Factoring it once
  // makes each quartet cost a table lookup and two multiplies, so the
  // O(np^2) sweeps below never re-derive shell data per quartet (the old
  // code called the full shell-level estimator twice per quartet: once
  // in the target-cost pre-pass and again while chunking).
  std::vector<double> weight(np);
  std::vector<int> lsum(np);
  int lmax = 0;
  for (std::size_t i = 0; i < np; ++i) {
    const auto& a = basis.shell(pairs[i].sa);
    const auto& b = basis.shell(pairs[i].sb);
    weight[i] = static_cast<double>(a.num_primitives()) *
                static_cast<double>(b.num_primitives()) *
                static_cast<double>(a.num_functions()) *
                static_cast<double>(b.num_functions());
    lsum[i] = a.l() + b.l();
    lmax = std::max(lmax, lsum[i]);
  }
  std::vector<double> volume(static_cast<std::size_t>(2 * lmax) + 1);
  for (std::size_t l = 0; l < volume.size(); ++l) {
    volume[l] = hermite_volume(static_cast<int>(l));
    if (kernel == ints::EriKernel::kBatched)
      volume[l] /= batched_speedup(static_cast<int>(l));
  }

  // Schwarz-screened quartets cost zero: the builder breaks out of the
  // ket range at the first failing pair (pairs are sorted by descending
  // q), so screened tails are a counter bump, not kernel work. The same
  // descending sort makes "first screened ket of row b" a binary search.
  const auto screened_begin = [&](std::size_t b) -> std::size_t {
    if (eps_schwarz <= 0.0) return b + 1;
    const double qb = pairs[b].q;
    std::size_t lo = 0, hi = b + 1;  // first k with qb * q_k < eps
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (qb * pairs[mid].q >= eps_schwarz)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  };

  // Per-lsum-class prefix sums of the pair weights make any ket-range
  // cost a handful of subtractions: cost(b, [lo, hi)) = w_b * sum_L
  // vol[ls_b + L] * (W_L[hi] - W_L[lo]). Row totals and chunk boundaries
  // then cost O(classes) and O(classes * log np) respectively, so task
  // generation never walks the O(np²) quartet space — the old code
  // re-accumulated every live quartet of every row, which dominated
  // builder setup for distance-culled large-box pair lists.
  const std::size_t nclasses = static_cast<std::size_t>(lmax) + 1;
  std::vector<std::vector<double>> prefix(
      nclasses, std::vector<double>(np + 1, 0.0));
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t l = 0; l < nclasses; ++l) {
      prefix[l][i + 1] =
          prefix[l][i] +
          (static_cast<std::size_t>(lsum[i]) == l ? weight[i] : 0.0);
    }
  }
  const auto range_cost = [&](std::size_t b, std::size_t lo,
                              std::size_t hi) -> double {
    double s = 0.0;
    for (std::size_t l = 0; l < nclasses; ++l)
      s += volume[static_cast<std::size_t>(lsum[b]) + l] *
           (prefix[l][hi] - prefix[l][lo]);
    return weight[b] * s;
  };

  if (target_cost <= 0.0) {
    double total = 0.0;
    for (std::size_t b = 0; b < np; ++b)
      total += range_cost(b, 0, screened_begin(b));
    target_cost = total / (64.0 * static_cast<double>(np));
  }

  for (std::size_t b = 0; b < np; ++b) {
    const std::size_t live = screened_begin(b);
    if (live == 0) {
      // Entire row is Schwarz-screened: one zero-cost task carries the
      // ket range so the builder's bulk tail accounting still sees it.
      tasks.push_back({static_cast<std::uint32_t>(b), 0,
                       static_cast<std::uint32_t>(b + 1), 0.0});
      continue;
    }
    std::size_t begin = 0;
    while (begin < live) {
      // Smallest end in (begin, live] whose chunk cost reaches target.
      std::size_t lo = begin + 1, hi = live;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (range_cost(b, begin, mid) >= target_cost)
          hi = mid;
        else
          lo = mid + 1;
      }
      const double acc = range_cost(b, begin, lo);
      const bool final_chunk = (lo == live);
      // The final chunk absorbs the screened tail [live, b]: the builder
      // breaks at the first failing Schwarz product and bulk-accounts
      // the rest, so the tail costs a counter bump, not kernel work.
      const std::size_t end = final_chunk ? b + 1 : lo;
      tasks.push_back({static_cast<std::uint32_t>(b),
                       static_cast<std::uint32_t>(begin),
                       static_cast<std::uint32_t>(end), acc});
      begin = lo;
    }
  }
  return tasks;
}

double total_cost(const std::vector<QuartetTask>& tasks) {
  double t = 0.0;
  for (const auto& task : tasks) t += task.est_cost;
  return t;
}

}  // namespace mthfx::hfx
