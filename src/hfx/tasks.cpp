#include "hfx/tasks.hpp"

#include <algorithm>

namespace mthfx::hfx {

double estimate_quartet_cost(const chem::BasisSet& basis, const ShellPair& bra,
                             const ShellPair& ket) {
  const auto& a = basis.shell(bra.sa);
  const auto& b = basis.shell(bra.sb);
  const auto& c = basis.shell(ket.sa);
  const auto& d = basis.shell(ket.sb);
  const double prim = static_cast<double>(a.num_primitives()) *
                      static_cast<double>(b.num_primitives()) *
                      static_cast<double>(c.num_primitives()) *
                      static_cast<double>(d.num_primitives());
  const double comp = static_cast<double>(a.num_functions()) *
                      static_cast<double>(b.num_functions()) *
                      static_cast<double>(c.num_functions()) *
                      static_cast<double>(d.num_functions());
  const int lsum = a.l() + b.l() + c.l() + d.l();
  // Hermite contraction grows roughly with the volume of the (t,u,v) box.
  const double herm = static_cast<double>((lsum + 1) * (lsum + 2) * (lsum + 3)) / 6.0;
  return prim * comp * herm;
}

std::vector<QuartetTask> make_tasks(const chem::BasisSet& basis,
                                    const ShellPairList& pairs,
                                    double target_cost) {
  const std::size_t np = pairs.size();
  std::vector<QuartetTask> tasks;
  if (np == 0) return tasks;

  // Per-pair unit costs (cost of pairing with one "average" ket is not
  // separable, so estimate row by row).
  if (target_cost <= 0.0) {
    double total = 0.0;
    for (std::size_t b = 0; b < np; ++b)
      for (std::size_t k = 0; k <= b; ++k)
        total += estimate_quartet_cost(basis, pairs[b], pairs[k]);
    target_cost = total / (64.0 * static_cast<double>(np));
  }

  for (std::size_t b = 0; b < np; ++b) {
    std::uint32_t begin = 0;
    double acc = 0.0;
    for (std::size_t k = 0; k <= b; ++k) {
      acc += estimate_quartet_cost(basis, pairs[b], pairs[k]);
      const bool last = (k == b);
      if (acc >= target_cost || last) {
        tasks.push_back({static_cast<std::uint32_t>(b), begin,
                         static_cast<std::uint32_t>(k + 1), acc});
        begin = static_cast<std::uint32_t>(k + 1);
        acc = 0.0;
      }
    }
  }
  return tasks;
}

double total_cost(const std::vector<QuartetTask>& tasks) {
  double t = 0.0;
  for (const auto& task : tasks) t += task.est_cost;
  return t;
}

}  // namespace mthfx::hfx
