#include "hfx/grad_contraction.hpp"

#include <algorithm>
#include <cmath>

#include "hfx/screening.hpp"
#include "ints/deriv.hpp"
#include "ints/schwarz.hpp"
#include "parallel/thread_pool.hpp"

namespace mthfx::hfx {

using chem::Vec3;
using linalg::Matrix;

std::vector<Vec3> two_electron_gradient(const chem::BasisSet& basis,
                                        const ShellPairList& pairs,
                                        const Matrix& density,
                                        const GradContractionOptions& options) {
  const std::size_t natoms =
      basis.num_shells() == 0
          ? 0
          : 1 + std::max_element(basis.shells().begin(), basis.shells().end(),
                                 [](const chem::Shell& a, const chem::Shell& b) {
                                   return a.atom_index() < b.atom_index();
                                 })->atom_index();
  std::vector<Vec3> grad(natoms, Vec3{0, 0, 0});
  if (pairs.size() == 0) return grad;

  const double ax = options.ax;
  const double eps_grad = options.eps_schwarz * options.safety;
  const Matrix block_max = shell_block_max_density(basis, density);
  double global_pmax = 0.0;
  for (const double v : block_max.flat())
    global_pmax = std::max(global_pmax, v);
  // Upper bound on |Gamma| for the bra-sorted early exit.
  const double gamma_cap = (1.0 + ax) * global_pmax * global_pmax;

  const std::size_t nthreads =
      parallel::resolve_thread_count(options.num_threads);
  std::vector<std::vector<Vec3>> g_private(
      nthreads, std::vector<Vec3>(natoms, Vec3{0, 0, 0}));

  auto run_bra = [&](std::size_t ib, std::size_t tid) {
    std::vector<Vec3>& acc = g_private[tid];
    const ShellPair& bra = pairs[ib];
    const chem::Shell& a = basis.shell(bra.sa);
    const chem::Shell& b = basis.shell(bra.sb);
    const std::size_t oa = basis.first_function(bra.sa);
    const std::size_t ob = basis.first_function(bra.sb);

    // Kets walk the descending-q prefix of the pair list up to the bra,
    // so each unordered pair-of-pairs is visited exactly once and the
    // first ket failing the bare Schwarz product ends the loop.
    for (std::size_t ik = 0; ik <= ib; ++ik) {
      const ShellPair& ket = pairs[ik];
      const double qq = bra.q * ket.q;
      if (qq * gamma_cap < eps_grad) break;

      // Density-weighted bound over every block Gamma touches.
      const double gmax =
          block_max(bra.sa, bra.sb) * block_max(ket.sa, ket.sb) +
          0.5 * ax *
              (block_max(bra.sa, ket.sa) * block_max(bra.sb, ket.sb) +
               block_max(bra.sa, ket.sb) * block_max(bra.sb, ket.sa));
      if (qq * gmax < eps_grad) continue;

      const chem::Shell& c = basis.shell(ket.sa);
      const chem::Shell& dsh = basis.shell(ket.sb);
      const std::size_t oc = basis.first_function(ket.sa);
      const std::size_t od = basis.first_function(ket.sb);

      // Shell-level orbit size of this canonical quartet: the symmetric
      // Gamma absorbs the function-level permutations, so the unique-
      // quartet sum just scales by the count of distinct shell images.
      const double deg = (bra.sa == bra.sb ? 1.0 : 2.0) *
                         (ket.sa == ket.sb ? 1.0 : 2.0) *
                         (ib == ik ? 1.0 : 2.0);

      const ints::EriGradBlocks dblk = ints::eri_gradient_blocks(a, b, c, dsh);
      const std::size_t centers[4] = {a.atom_index(), b.atom_index(),
                                      c.atom_index(), dsh.atom_index()};

      std::size_t idx = 0;
      for (std::size_t i = 0; i < a.num_functions(); ++i)
        for (std::size_t j = 0; j < b.num_functions(); ++j)
          for (std::size_t k = 0; k < c.num_functions(); ++k)
            for (std::size_t l = 0; l < dsh.num_functions(); ++l, ++idx) {
              const double gamma =
                  density(oa + i, ob + j) * density(oc + k, od + l) -
                  0.25 * ax *
                      (density(oa + i, oc + k) * density(ob + j, od + l) +
                       density(oa + i, od + l) * density(ob + j, oc + k));
              if (gamma == 0.0) continue;
              const double pref = 0.5 * deg * gamma;
              for (std::size_t ctr = 0; ctr < 3; ++ctr)
                for (std::size_t d = 0; d < 3; ++d) {
                  const double contrib = pref * dblk.g[ctr][d][idx];
                  acc[centers[ctr]][d] += contrib;
                  // D center by translational invariance.
                  acc[centers[3]][d] -= contrib;
                }
            }
    }
  };

  if (nthreads == 1) {
    for (std::size_t ib = 0; ib < pairs.size(); ++ib) run_bra(ib, 0);
  } else {
    // Round-robin static chunks: deterministic bra->thread assignment
    // (for a fixed thread count) that still balances the triangular
    // ket-count profile across the pool.
    parallel::ThreadPool pool(nthreads);
    pool.parallel_for(0, pairs.size(), run_bra,
                      parallel::Schedule::kStaticCyclic, 1);
  }
  for (std::size_t t = 0; t < nthreads; ++t)
    for (std::size_t at = 0; at < natoms; ++at)
      grad[at] = grad[at] + g_private[t][at];
  return grad;
}

std::vector<Vec3> two_electron_gradient(const chem::BasisSet& basis,
                                        const Matrix& density,
                                        const GradContractionOptions& options) {
  const ShellPairList pairs(basis, ints::schwarz_bounds(basis),
                            options.eps_schwarz);
  return two_electron_gradient(basis, pairs, density, options);
}

}  // namespace mthfx::hfx
