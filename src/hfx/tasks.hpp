#pragma once

// Quartet task generation: the paper's flattened "bag of tasks".
//
// A task is one bra shell-pair combined with a contiguous range of ket
// shell-pairs (ket list position <= bra list position, which realizes the
// 8-fold permutational symmetry at pair level). Heavy bra rows are split
// into multiple tasks so the cost distribution is even enough for the
// dynamic scheduler; the per-task cost estimate drives both the host
// execution order and the BG/Q machine simulator.

#include <cstdint>
#include <vector>

#include "hfx/shell_pairs.hpp"
#include "ints/eri.hpp"

namespace mthfx::hfx {

struct QuartetTask {
  std::uint32_t bra = 0;        ///< index into the ShellPairList
  std::uint32_t ket_begin = 0;  ///< ket range [ket_begin, ket_end)
  std::uint32_t ket_end = 0;
  double est_cost = 0.0;        ///< estimated kernel cost (arbitrary units)
};

/// Primitive-and-angular-momentum flop model for one shell quartet.
/// Units are "primitive Hermite terms"; only relative sizes matter.
double estimate_quartet_cost(const chem::BasisSet& basis, const ShellPair& bra,
                             const ShellPair& ket);

/// Build the task list. `target_cost` bounds the estimated cost per task;
/// 0 selects a heuristic (total cost / (64 * pairs)). With a positive
/// `eps_schwarz`, quartets the builder will Schwarz-screen
/// (bra.q * ket.q < eps) are costed at zero — they are a `break` in the
/// kernel loop, not work — so chunk boundaries track the work that
/// actually runs instead of being skewed toward screened-out regions.
/// `kernel` selects the cost model: the batched SIMD kernel compresses
/// the quartet cost spread between angular classes (low-L classes gain
/// more from vectorization than high-L ones), so its per-class costs are
/// deflated by measured per-class speedups to keep chunks even.
std::vector<QuartetTask> make_tasks(
    const chem::BasisSet& basis, const ShellPairList& pairs,
    double target_cost = 0.0, double eps_schwarz = 0.0,
    ints::EriKernel kernel = ints::EriKernel::kSparse);

/// Total estimated cost of a task list.
double total_cost(const std::vector<QuartetTask>& tasks);

}  // namespace mthfx::hfx
