#include "hfx/cell_list.hpp"

#include <algorithm>
#include <cmath>

namespace mthfx::hfx {

std::vector<double> shell_extent_radii(const chem::BasisSet& basis) {
  const std::size_t ns = basis.num_shells();
  std::vector<double> radii(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    const chem::Shell& sh = basis.shell(s);
    const double l_slack =
        kExtentLogSlack + 4.0 * static_cast<double>(sh.l());
    radii[s] = std::sqrt(l_slack / (2.0 * sh.min_exponent()));
  }
  return radii;
}

bool within_extent_range(const chem::BasisSet& basis,
                         const std::vector<double>& radii, std::size_t s,
                         std::size_t t) {
  const chem::Vec3& c = basis.shell(s).center();
  const chem::Vec3& ct = basis.shell(t).center();
  const double dx = ct.x - c.x;
  const double dy = ct.y - c.y;
  const double dz = ct.z - c.z;
  const double cut = radii[s] + radii[t];
  return dx * dx + dy * dy + dz * dz <= cut * cut;
}

CellList::CellList(const chem::BasisSet& basis, std::vector<double> radii)
    : basis_(&basis), radii_(std::move(radii)) {
  const std::size_t ns = basis.num_shells();
  for (const double r : radii_) max_radius_ = std::max(max_radius_, r);
  // Bounding box of shell centers.
  double lox = 0.0, loy = 0.0, loz = 0.0;
  double hix = 0.0, hiy = 0.0, hiz = 0.0;
  for (std::size_t s = 0; s < ns; ++s) {
    const chem::Vec3& c = basis.shell(s).center();
    if (s == 0) {
      lox = hix = c.x;
      loy = hiy = c.y;
      loz = hiz = c.z;
    } else {
      lox = std::min(lox, c.x);
      hix = std::max(hix, c.x);
      loy = std::min(loy, c.y);
      hiy = std::max(hiy, c.y);
      loz = std::min(loz, c.z);
      hiz = std::max(hiz, c.z);
    }
  }
  ox_ = lox;
  oy_ = loy;
  oz_ = loz;
  cell_size_ = std::max(1.0, max_radius_);
  nx_ = static_cast<std::size_t>((hix - lox) / cell_size_) + 1;
  ny_ = static_cast<std::size_t>((hiy - loy) / cell_size_) + 1;
  nz_ = static_cast<std::size_t>((hiz - loz) / cell_size_) + 1;
  cells_.resize(nx_ * ny_ * nz_);
  for (std::size_t s = 0; s < ns; ++s) {
    const chem::Vec3& c = basis.shell(s).center();
    const std::size_t ix = static_cast<std::size_t>((c.x - ox_) / cell_size_);
    const std::size_t iy = static_cast<std::size_t>((c.y - oy_) / cell_size_);
    const std::size_t iz = static_cast<std::size_t>((c.z - oz_) / cell_size_);
    cells_[(ix * ny_ + iy) * nz_ + iz].push_back(
        static_cast<std::uint32_t>(s));
  }
}

void CellList::candidates(std::size_t s,
                          std::vector<std::uint32_t>* out) const {
  const chem::Vec3& c = basis_->shell(s).center();
  // Any partner within reach lies inside radii[s] + max_radius_ of s.
  const double reach = radii_[s] + max_radius_;
  const auto lo_cell = [&](double v, double o) {
    const double t = (v - o - reach) / cell_size_;
    return t <= 0.0 ? std::size_t{0} : static_cast<std::size_t>(t);
  };
  const auto hi_cell = [&](double v, double o, std::size_t n) {
    const double t = (v - o + reach) / cell_size_;
    const std::size_t i = t <= 0.0 ? 0 : static_cast<std::size_t>(t);
    return std::min(i, n - 1);
  };
  const std::size_t x0 = lo_cell(c.x, ox_), x1 = hi_cell(c.x, ox_, nx_);
  const std::size_t y0 = lo_cell(c.y, oy_), y1 = hi_cell(c.y, oy_, ny_);
  const std::size_t z0 = lo_cell(c.z, oz_), z1 = hi_cell(c.z, oz_, nz_);
  for (std::size_t ix = x0; ix <= x1; ++ix) {
    for (std::size_t iy = y0; iy <= y1; ++iy) {
      for (std::size_t iz = z0; iz <= z1; ++iz) {
        for (const std::uint32_t t : cells_[(ix * ny_ + iy) * nz_ + iz]) {
          if (t > s) continue;
          const chem::Vec3& ct = basis_->shell(t).center();
          const double dx = ct.x - c.x;
          const double dy = ct.y - c.y;
          const double dz = ct.z - c.z;
          const double cut = radii_[s] + radii_[t];
          if (dx * dx + dy * dy + dz * dz <= cut * cut)
            out->push_back(t);
        }
      }
    }
  }
}

}  // namespace mthfx::hfx
