#pragma once

// Significant shell-pair list: the compressed bra/ket space over which
// quartet tasks are generated. A pair (sa >= sb) is significant when its
// Schwarz bound could combine with the best partner pair to exceed the
// screening threshold — everything else can never contribute an integral
// above eps and is dropped up front.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chem/basis.hpp"
#include "ints/schwarz.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::hfx {

struct ShellPair {
  std::uint32_t sa = 0;  ///< shell index, sa >= sb
  std::uint32_t sb = 0;
  double q = 0.0;        ///< Schwarz bound sqrt(max (ab|ab))
};

/// Pair-formation statistics of the distance-culled build (zero for the
/// dense build).
struct PairCullStats {
  std::size_t candidates = 0;  ///< pairs the cell list proposed
  std::size_t floored = 0;     ///< candidates whose (ab|ab) underflowed
                               ///< (kept, subject to the eps rule)
};

class ShellPairList {
 public:
  /// Build from precomputed Schwarz bounds. Pairs with
  /// q(sa,sb) * max_q < eps are discarded, as are pairs beyond summed
  /// extent radii (hfx/cell_list.hpp): past that range the
  /// Gaussian-product factor is e^{-kExtentLogSlack} below every scale
  /// the kernel resolves for any partner, yet the pair's *stored* bound
  /// sits at the underflow noise floor (ints/schwarz.hpp) and would
  /// clear the eps rule on noise alone. In-range pairs whose diagonal
  /// underflowed are kept under the plain eps rule — their cross
  /// quartets with strong partners are real at the sqrt(noise)·max_q
  /// scale, which tight-eps builds must resolve.
  ShellPairList(const chem::BasisSet& basis, const linalg::Matrix& schwarz,
                double eps);

  /// Distance-culled build: enumerate only cell-list candidates (shells
  /// within summed extent radii — hfx/cell_list.hpp), compute the exact
  /// Schwarz bound per candidate, and apply the same q * max_q >= eps
  /// rule as the dense build. The result is pair-for-pair identical to
  /// the dense constructor: both drop exactly the beyond-range pairs
  /// (the dense sweep by the explicit within_extent_range test, this
  /// build by never enumerating them) and both keep in-range candidates
  /// under the eps rule with bounds from the same kernel and operand
  /// order. max_q matches the dense build: beyond-range bounds sit at
  /// the noise scale, far below any compact pair's bound.
  static ShellPairList culled(const chem::BasisSet& basis, double eps,
                              PairCullStats* stats = nullptr);

  const std::vector<ShellPair>& pairs() const { return pairs_; }
  std::size_t size() const { return pairs_.size(); }
  const ShellPair& operator[](std::size_t i) const { return pairs_[i]; }

  /// Largest Schwarz bound over all pairs.
  double max_q() const { return max_q_; }

  /// Number of pairs before screening: nshell*(nshell+1)/2.
  std::size_t unscreened_count() const { return unscreened_; }

 private:
  ShellPairList() = default;

  std::vector<ShellPair> pairs_;
  double max_q_ = 0.0;
  std::size_t unscreened_ = 0;
};

}  // namespace mthfx::hfx
