#pragma once

// Significant shell-pair list: the compressed bra/ket space over which
// quartet tasks are generated. A pair (sa >= sb) is significant when its
// Schwarz bound could combine with the best partner pair to exceed the
// screening threshold — everything else can never contribute an integral
// above eps and is dropped up front.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chem/basis.hpp"
#include "ints/schwarz.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::hfx {

struct ShellPair {
  std::uint32_t sa = 0;  ///< shell index, sa >= sb
  std::uint32_t sb = 0;
  double q = 0.0;        ///< Schwarz bound sqrt(max (ab|ab))
};

class ShellPairList {
 public:
  /// Build from precomputed Schwarz bounds. Pairs with
  /// q(sa,sb) * max_q < eps are discarded.
  ShellPairList(const chem::BasisSet& basis, const linalg::Matrix& schwarz,
                double eps);

  const std::vector<ShellPair>& pairs() const { return pairs_; }
  std::size_t size() const { return pairs_.size(); }
  const ShellPair& operator[](std::size_t i) const { return pairs_[i]; }

  /// Largest Schwarz bound over all pairs.
  double max_q() const { return max_q_; }

  /// Number of pairs before screening: nshell*(nshell+1)/2.
  std::size_t unscreened_count() const { return unscreened_; }

 private:
  std::vector<ShellPair> pairs_;
  double max_q_ = 0.0;
  std::size_t unscreened_ = 0;
};

}  // namespace mthfx::hfx
