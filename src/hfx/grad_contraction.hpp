#pragma once

// Screened contraction of derivative ERIs with the two-particle density —
// the two-electron term of the analytic RHF/RKS nuclear gradient.
//
// dE2/dR = 1/2 sum_{unique quartets} deg * Gamma_{munu,lamsig} *
//          d(mu nu|lam sig)/dR, with the orbit-symmetric two-particle
// density for a hybrid exchange fraction ax:
//     Gamma = P_munu P_lamsig - (ax/4) (P_mulam P_nusig + P_musig P_nulam).
// The quartet stream is the same canonical (bra pair >= ket pair) walk the
// FockBuilder screens: Schwarz bound per pair product, then a density-
// weighted bound, both against a gradient threshold derived from
// eps_schwarz. The derivative blocks for all three independent centers
// come from ints::eri_gradient_blocks; the fourth center follows from
// translational invariance.

#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "hfx/shell_pairs.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::hfx {

struct GradContractionOptions {
  double ax = 1.0;             ///< exact-exchange fraction (1 = RHF, 0.25 = PBE0)
  double eps_schwarz = 1e-12;  ///< quartet neglect threshold (pre-density)
  std::size_t num_threads = 0; ///< 0 selects hardware concurrency
  /// Safety margin applied below eps_schwarz: derivative integrals are not
  /// strictly bounded by the value-integral Schwarz product, so quartets
  /// are kept down to eps_schwarz * safety.
  double safety = 1e-2;
};

/// Two-electron gradient dE2/dR per atom over a prebuilt pair list
/// (reuse the FockBuilder's list across calls when available).
std::vector<chem::Vec3> two_electron_gradient(
    const chem::BasisSet& basis, const ShellPairList& pairs,
    const linalg::Matrix& density, const GradContractionOptions& options);

/// Convenience overload that builds its own Schwarz table and pair list.
std::vector<chem::Vec3> two_electron_gradient(
    const chem::BasisSet& basis, const linalg::Matrix& density,
    const GradContractionOptions& options);

}  // namespace mthfx::hfx
