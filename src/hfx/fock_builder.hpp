#pragma once

// Parallel Hartree–Fock exact-exchange (HFX) builder — the paper's core
// contribution. The quartet list is flattened into cost-estimated tasks
// (tasks.hpp), screened by Schwarz and density bounds (screening.hpp) and
// executed over threads with a pluggable scheduler. Thread-private K
// accumulators are reduced at the end ("replication-free" on the real
// machine; the BG/Q simulator models that reduction at scale).

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "chem/basis.hpp"
#include "fault/injector.hpp"
#include "ints/eri.hpp"
#include "hfx/screening.hpp"
#include "hfx/shell_pairs.hpp"
#include "hfx/tasks.hpp"
#include "linalg/block_sparse.hpp"
#include "linalg/matrix.hpp"
#include "obs/json.hpp"

namespace mthfx::hfx {

/// How tasks are mapped to threads. kDynamicBag is the paper's scheme;
/// kStaticBlock/kStaticCyclic are the "directly comparable" baselines; the
/// work-stealing mode plays the cross-node balancing role.
enum class HfxSchedule {
  kDynamicBag,
  kStaticBlock,
  kStaticCyclic,
  kWorkStealing,
};

/// Sparsity regime of pair formation and J/K builds.
/// kDense keeps the original code paths bitwise intact. kBlocked turns
/// on the distance-culled cell-list pair list plus the density-linked
/// (LinK-style) quartet enumeration that takes blocked densities.
/// kAuto selects kBlocked once the basis crosses auto_nbf_threshold, so
/// small systems never leave the dense path.
enum class SparsityMode { kAuto, kDense, kBlocked };

struct SparsityOptions {
  SparsityMode mode = SparsityMode::kAuto;
  /// kAuto switches to the blocked/culled machinery above this many
  /// basis functions (large electrolyte boxes; every preexisting suite
  /// stays far below it).
  std::size_t auto_nbf_threshold = 768;
  /// Block-matrix drop tolerance used by the sparse SCF side when
  /// re-blocking J/K/density products.
  double drop_tol = 1e-12;
  /// Target block size (basis functions) for blocked partitions —
  /// roughly one solvent molecule per block.
  std::size_t block_nbf = 48;

  bool blocked(std::size_t nbf) const {
    return mode == SparsityMode::kBlocked ||
           (mode == SparsityMode::kAuto && nbf > auto_nbf_threshold);
  }
};

struct HfxOptions {
  double eps_schwarz = 1e-10;     ///< integral-neglect threshold
  /// Quartet kernel. kBatched (default) streams each task's surviving
  /// quartets through the SIMD micro-kernel (ints/eri_batch.hpp) and
  /// digests the returned blocks in the original deterministic ket
  /// order; kSparse computes/digests one quartet at a time with the
  /// scalar kernel; kDenseReference runs the pre-optimization kernel
  /// (baseline / oracle use). All three produce K to within the kernels'
  /// few-ulp agreement, and each is individually run-to-run and
  /// schedule-deterministic.
  ints::EriKernel eri_kernel = ints::EriKernel::kBatched;
  /// Per-element magnitude cutoff inside the digestion kernel: computed
  /// integrals below this skip the J/K updates. 0 derives it from the
  /// screening threshold (eps_schwarz * kContributionCutoffScale), so
  /// tightening eps_schwarz tightens the whole accuracy chain.
  double eps_contribution = 0.0;
  bool density_screening = true;  ///< stage-two |P|-weighted screening
  HfxSchedule schedule = HfxSchedule::kDynamicBag;
  std::size_t num_threads = 0;    ///< 0 selects hardware concurrency
  double target_task_cost = 0.0;  ///< 0 selects a heuristic granularity
  bool record_task_costs = false; ///< collect per-task timings (for bgq sim)

  /// Seeded fault injection (off by default: all rates zero). max_retries
  /// also bounds retries of *genuine* task failures, with or without
  /// injection.
  fault::FaultOptions fault;
  /// Transactional task commit: digest into a per-thread scratch matrix,
  /// sweep it with std::isfinite, and add it to the accumulator only when
  /// clean — a poisoned (NaN/Inf) task throws and is retried instead of
  /// corrupting K. Costs one extra nao^2 zero+add per task.
  bool validate_tasks = false;

  /// Pair-formation / blocked-build regime (see SparsityOptions). The
  /// default (kAuto with a high threshold) keeps every small system on
  /// the dense path.
  SparsityOptions sparsity;

  /// Derived default for eps_contribution: 1e-6 * eps_schwarz reproduces
  /// the historical 1e-16 cutoff at the default eps_schwarz of 1e-10.
  static constexpr double kContributionCutoffScale = 1e-6;
  double contribution_cutoff() const {
    return eps_contribution > 0.0 ? eps_contribution
                                  : eps_schwarz * kContributionCutoffScale;
  }
};

struct TaskCostRecord {
  std::uint32_t task = 0;
  double est_cost = 0.0;
  double seconds = 0.0;
};

/// What the resilience layer did during one build (all zero on a clean,
/// injection-free run).
struct FaultStats {
  std::uint64_t injected = 0;             ///< faults of any kind injected
  std::uint64_t injected_failures = 0;    ///< tasks made to throw
  std::uint64_t injected_stalls = 0;      ///< tasks made to sleep
  std::uint64_t injected_corruptions = 0; ///< tasks NaN-poisoned
  std::uint64_t retries = 0;              ///< re-executions after a failure
  std::uint64_t permanent_failures = 0;   ///< retry budget exhausted
};

struct HfxStats {
  ScreeningStats screening;
  FaultStats fault;
  std::size_t num_pairs = 0;
  std::size_t num_pairs_unscreened = 0;
  std::size_t num_tasks = 0;
  double wall_seconds = 0.0;
  double reduce_seconds = 0.0;               ///< thread-private K/J reduction
  std::vector<double> thread_busy_seconds;   ///< per-thread kernel time
  std::vector<TaskCostRecord> task_costs;    ///< filled if record_task_costs
  obs::Json metrics;  ///< full registry snapshot (counters + timers)

  /// Busiest / mean thread busy time (1.0 when idle or single-threaded).
  double imbalance() const;
};

/// Machine-readable record of one build (screening, timing, imbalance,
/// scheduler metrics) for the BENCH_*.json emitters.
obs::Json to_json(const HfxStats& stats);

struct ExchangeResult {
  linalg::Matrix k;  ///< K_{mu nu} = sum_{lam sig} P_{lam sig} (mu lam|nu sig)
  HfxStats stats;
};

struct JkResult {
  linalg::Matrix j;  ///< J_{mu nu} = sum_{lam sig} P_{lam sig} (mu nu|lam sig)
  linalg::Matrix k;
  HfxStats stats;
};

class FockBuilder {
 public:
  /// Precomputes Schwarz bounds, the significant pair list and the task
  /// list. The basis must outlive the builder.
  FockBuilder(const chem::BasisSet& basis, HfxOptions options = {});

  /// Exchange-only build (the paper's benchmarked kernel).
  ExchangeResult exchange(const linalg::Matrix& density) const;

  /// Combined Coulomb + exchange build for SCF iterations. Both matrices
  /// are digested from one pass over the unique quartets.
  JkResult coulomb_exchange(const linalg::Matrix& density) const;

  /// Blocked-density builds (sparse_build.cpp). The quartet space is
  /// enumerated through density-linked ket lists (LinK-style) instead of
  /// the dense per-bra sweep: only kets reachable through a shell-block
  /// density element large enough to pass the combined Schwarz + density
  /// bound are visited, then every candidate is re-checked with exactly
  /// the dense path's tests in the dense path's order. The surviving
  /// quartet set — and therefore J/K — matches the dense build's. Cost
  /// scales with surviving quartets, not pairs², which is what makes
  /// exchange near-linear on large insulating boxes. Results are dense
  /// matrices; the sparse SCF driver re-blocks them.
  ExchangeResult exchange_blocked(const linalg::BlockSparseMatrix& density) const;
  JkResult coulomb_exchange_blocked(const linalg::BlockSparseMatrix& density) const;

  /// Re-target the builder at a new geometry of the *same* molecule/basis
  /// (identical shell structure, possibly moved centers). Schwarz bounds
  /// and shell-pair Hermite tables are recomputed only for pairs with a
  /// bitwise-moved endpoint; everything touching only unmoved atoms is
  /// carried over exactly. This is the cross-step reuse lever for MD
  /// surfaces and finite-difference sweeps, where most single-geometry
  /// rebuild cost is pair preparation on atoms that did not move.
  /// Throws std::invalid_argument if the shell structure differs. The new
  /// basis must outlive the builder.
  void rebind(const chem::BasisSet& basis);

  /// Pairs carried over unchanged by the most recent rebind (0 before
  /// any rebind) — observability for the reuse tests and the MD bench.
  std::size_t last_rebind_reused_pairs() const { return rebind_reused_; }

  const chem::BasisSet& basis() const { return *basis_; }
  const ShellPairList& pairs() const { return pairs_; }
  const std::vector<QuartetTask>& tasks() const { return tasks_; }
  const HfxOptions& options() const { return options_; }

  /// True when the pair list came from the distance-culled cell-list
  /// build (sparsity engaged) rather than the dense O(ns²) sweep.
  bool culled() const { return culled_; }
  const PairCullStats& cull_stats() const { return cull_stats_; }

  /// Pair indices (into pairs()) containing each shell, descending q —
  /// the per-shell link lists the blocked build walks.
  const std::vector<std::vector<std::uint32_t>>& pairs_by_shell() const {
    return pairs_by_shell_;
  }

 private:
  JkResult build(const linalg::Matrix& density, bool want_coulomb) const;
  JkResult build_blocked(const linalg::BlockSparseMatrix& density,
                         bool want_coulomb) const;
  void index_pairs_by_shell();

  const chem::BasisSet* basis_;
  HfxOptions options_;
  linalg::Matrix schwarz_;  ///< empty in culled mode (never formed)
  bool culled_ = false;
  PairCullStats cull_stats_;
  ShellPairList pairs_;
  std::vector<std::vector<std::uint32_t>> pairs_by_shell_;
  std::vector<QuartetTask> tasks_;
  std::size_t rebind_reused_ = 0;
  /// Precomputed Hermite expansions, aligned with pairs_ — computed once
  /// and amortized over every quartet the pair participates in.
  std::vector<ints::ShellPairHermite> pair_hermites_;
  /// Fault-injection state (engaged only when options_.fault has nonzero
  /// rates). The epoch salts fault sites so each build of an SCF sequence
  /// draws an independent — but still seed-deterministic — fault pattern.
  mutable std::optional<fault::Injector> injector_;
  mutable std::atomic<std::uint64_t> build_epoch_{0};
};

}  // namespace mthfx::hfx
