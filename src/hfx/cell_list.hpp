#pragma once

// Spatial cell-list for distance-culled shell-pair formation.
//
// The dense pair sweep visits all ns(ns+1)/2 shell pairs and computes an
// exact Schwarz diagonal for each — O(np²) work dominated, in a large
// electrolyte box, by pairs so far apart that every primitive
// combination of (ab|ab) underflows the kernel's primitive cutoff
// (ints::kEriPrimitiveCutoff) and the bound collapses to the noise
// floor. The cell list bins shell centers on a uniform grid and
// enumerates only candidate pairs within the sum of the two shells'
// extent radii, so pair-list build touches O(ns · neighbors) pairs.
//
// Extent radii are conservative by construction: r_s = sqrt(L_s / (2
// α_min)) with a log-slack L_s far beyond the primitive cutoff, so the
// pairwise Gaussian-product factor exp(-2 μ R²) of any pair *outside*
// candidate range is at least e^{-min(L_a, L_b)} below every scale the
// kernel can resolve (see shell_extent_radii). Candidates then get the
// exact Schwarz bound; the only pairs culled without evaluation are ones
// the kernel would have floored anyway. The property suite
// (tests/test_property_scaling.cpp) checks this against the dense sweep
// across random geometries and basis sets.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"

namespace mthfx::hfx {

/// Log-slack used by shell_extent_radii; exposed for the property tests.
inline constexpr double kExtentLogSlack = 64.0;

/// Conservative interaction radius per shell. Derived so that for any
/// two shells a, b with |R_ab| > r_a + r_b, the minimum Gaussian-product
/// exponent μ = α_a α_b/(α_a + α_b) satisfies 2 μ R² ≥ min(L_a, L_b),
/// where L_s = kExtentLogSlack + 4·l_s. With the default slack of 64
/// (e^{-64} ≈ 1.6e-28) this leaves ten orders of magnitude of headroom
/// under the 1e-18 primitive cutoff for contraction/prefactor growth.
std::vector<double> shell_extent_radii(const chem::BasisSet& basis);

/// Exact test `|center(s) - center(t)| <= radii[s] + radii[t]` with the
/// same arithmetic CellList::candidates applies. Shared so the dense
/// pair sweep can drop beyond-range pairs bit-identically to the culled
/// build never enumerating them.
bool within_extent_range(const chem::BasisSet& basis,
                         const std::vector<double>& radii, std::size_t s,
                         std::size_t t);

/// Uniform-grid spatial index over shell centers with per-shell reach.
class CellList {
 public:
  /// `radii[s]` is shell s's interaction radius (extent); binning uses a
  /// cell edge of max(radii) so neighbor queries touch ≤ 3³ cell layers
  /// per unit of reach.
  CellList(const chem::BasisSet& basis, std::vector<double> radii);

  /// Append to `out` every shell t ≤ s (canonical pair order, s itself
  /// included) with |center(t) - center(s)| ≤ radii[s] + radii[t].
  void candidates(std::size_t s, std::vector<std::uint32_t>* out) const;

  const std::vector<double>& radii() const { return radii_; }
  std::size_t num_cells() const { return cells_.size(); }

 private:
  const chem::BasisSet* basis_;
  std::vector<double> radii_;
  double cell_size_ = 1.0;
  double max_radius_ = 0.0;
  double ox_ = 0.0, oy_ = 0.0, oz_ = 0.0;  ///< grid origin
  std::size_t nx_ = 1, ny_ = 1, nz_ = 1;
  std::vector<std::vector<std::uint32_t>> cells_;  ///< shell ids per cell
};

}  // namespace mthfx::hfx
