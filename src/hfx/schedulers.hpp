#pragma once

// Mapping of HfxSchedule policies onto the threading runtime. Split out of
// the Fock builder so the scheduler-ablation bench can exercise the
// policies against synthetic task sets without touching integrals.

#include <cstddef>
#include <functional>

#include "hfx/fock_builder.hpp"
#include "obs/registry.hpp"

namespace mthfx::hfx {

/// 0 -> hardware concurrency (delegates to parallel::resolve_thread_count
/// so HFX and ThreadPool always agree).
std::size_t resolve_thread_count(std::size_t requested);

/// Run body(task_index, thread_id) for every task under the policy.
/// Blocks until all tasks are complete. With a registry, records
/// "sched.tasks_executed" per thread, pool occupancy timers, and (for
/// work stealing) the ws.* steal counters; the registry must have slots
/// for resolve_thread_count(num_threads) threads.
void execute_tasks(std::size_t num_tasks, std::size_t num_threads,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   obs::Registry* registry = nullptr);

}  // namespace mthfx::hfx
