#pragma once

// Mapping of HfxSchedule policies onto the threading runtime. Split out of
// the Fock builder so the scheduler-ablation bench can exercise the
// policies against synthetic task sets without touching integrals.

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "hfx/fock_builder.hpp"
#include "obs/registry.hpp"

namespace mthfx::parallel {
class ThreadPool;
}

namespace mthfx::hfx {

/// 0 -> hardware concurrency (delegates to parallel::resolve_thread_count
/// so HFX and ThreadPool always agree).
std::size_t resolve_thread_count(std::size_t requested);

/// Failure policy for execute_tasks. A task whose body throws is caught
/// (never a std::terminate in a pool worker), retried up to max_retries
/// additional attempts, and only counted in "sched.tasks_executed" once
/// it succeeds — so a body that commits results as its last action gets
/// exactly-once commit for free.
struct RetryOptions {
  std::size_t max_retries = 0;    ///< extra attempts after the first
  double backoff_seconds = 0.0;   ///< sleep backoff_seconds * attempt
};

/// Raised by execute_tasks (on the calling thread, after the parallel
/// region has drained) when one or more tasks exhausted their retry
/// budget. Never a hang, never a silently missing contribution.
struct TaskFailure : std::runtime_error {
  struct Failed {
    std::size_t task = 0;
    std::size_t attempts = 0;
    std::string error;
  };
  explicit TaskFailure(std::vector<Failed> failed_tasks);
  std::vector<Failed> failures;
};

/// Run body(task_index, thread_id) for every task under the policy.
/// Blocks until all tasks are complete. With a registry, records
/// "sched.tasks_executed" per thread (successful commits only), pool
/// occupancy timers, "fault.retries" / "fault.permanent_failures" on the
/// failure path, and (for work stealing) the ws.* steal counters; the
/// registry must have slots for resolve_thread_count(num_threads)
/// threads. A throwing task is retried per `retry`; under kWorkStealing
/// the failed task is re-queued through the scheduler, under the
/// parallel_for policies it is retried in place. Exhausted budgets
/// surface as TaskFailure.
void execute_tasks(std::size_t num_tasks, std::size_t num_threads,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   obs::Registry* registry = nullptr,
                   const RetryOptions& retry = {});

/// Same contract, but runs on a caller-owned pool instead of spawning a
/// fresh one — callers with more parallel phases than the task loop (the
/// Fock builder also tree-reduces the accumulators) pay the thread spawn
/// once per build instead of once per phase. The pool's registry
/// attachment is replaced by `registry` for the duration of the call.
void execute_tasks(parallel::ThreadPool& pool, std::size_t num_tasks,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   obs::Registry* registry = nullptr,
                   const RetryOptions& retry = {});

}  // namespace mthfx::hfx
