#pragma once

// Mapping of HfxSchedule policies onto the threading runtime. Split out of
// the Fock builder so the scheduler-ablation bench can exercise the
// policies against synthetic task sets without touching integrals.

#include <cstddef>
#include <functional>

#include "hfx/fock_builder.hpp"

namespace mthfx::hfx {

/// 0 -> hardware concurrency.
std::size_t resolve_thread_count(std::size_t requested);

/// Run body(task_index, thread_id) for every task under the policy.
/// Blocks until all tasks are complete.
void execute_tasks(std::size_t num_tasks, std::size_t num_threads,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace mthfx::hfx
