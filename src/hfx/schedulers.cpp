#include "hfx/schedulers.hpp"

#include <thread>

#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace mthfx::hfx {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void execute_tasks(std::size_t num_tasks, std::size_t num_threads,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body) {
  parallel::ThreadPool pool(num_threads);
  switch (schedule) {
    case HfxSchedule::kDynamicBag:
      pool.parallel_for(0, num_tasks, body, parallel::Schedule::kDynamic);
      break;
    case HfxSchedule::kStaticBlock:
      pool.parallel_for(0, num_tasks, body, parallel::Schedule::kStatic);
      break;
    case HfxSchedule::kStaticCyclic:
      pool.parallel_for(0, num_tasks, body, parallel::Schedule::kStaticCyclic);
      break;
    case HfxSchedule::kWorkStealing: {
      parallel::WorkStealingScheduler ws(num_threads);
      ws.seed(num_tasks);
      pool.parallel_region([&](std::size_t tid) {
        while (auto task = ws.next(tid)) body(*task, tid);
      });
      break;
    }
  }
}

}  // namespace mthfx::hfx
