#include "hfx/schedulers.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace mthfx::hfx {

namespace {

std::string task_failure_message(const std::vector<TaskFailure::Failed>& f) {
  std::string msg = std::to_string(f.size()) +
                    " task(s) exhausted their retry budget";
  if (!f.empty())
    msg += " (first: task " + std::to_string(f.front().task) + " after " +
           std::to_string(f.front().attempts) + " attempts: " +
           f.front().error + ")";
  return msg;
}

void backoff_sleep(double backoff_seconds, std::size_t attempt) {
  if (backoff_seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      backoff_seconds * static_cast<double>(attempt)));
}

/// Mutex-protected sink for permanently failed tasks; drained into a
/// TaskFailure on the calling thread once the region has quiesced.
struct FailureLog {
  void add(std::size_t task, std::size_t attempts, std::string error) {
    std::lock_guard lock(mutex);
    failures.push_back({task, attempts, std::move(error)});
  }
  std::mutex mutex;
  std::vector<TaskFailure::Failed> failures;
};

}  // namespace

TaskFailure::TaskFailure(std::vector<Failed> failed_tasks)
    : std::runtime_error(task_failure_message(failed_tasks)),
      failures(std::move(failed_tasks)) {}

std::size_t resolve_thread_count(std::size_t requested) {
  // Single policy shared with ThreadPool so the HFX layer can never size
  // per-thread buffers against a different count than the pool runs.
  return parallel::resolve_thread_count(requested);
}

void execute_tasks(std::size_t num_tasks, std::size_t num_threads,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   obs::Registry* registry, const RetryOptions& retry) {
  parallel::ThreadPool pool(num_threads);
  execute_tasks(pool, num_tasks, schedule, body, registry, retry);
}

void execute_tasks(parallel::ThreadPool& pool, std::size_t num_tasks,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   obs::Registry* registry, const RetryOptions& retry) {
  pool.set_registry(registry);

  obs::Counter tasks_executed;
  obs::Counter retries;
  obs::Counter permanent_failures;
  if (registry) {
    tasks_executed = registry->counter("sched.tasks_executed");
    retries = registry->counter("fault.retries");
    permanent_failures = registry->counter("fault.permanent_failures");
  }
  // Commit accounting happens *after* the body returns, so a throwing
  // attempt is never counted: one increment == one successful task.
  const auto run = [&](std::size_t i, std::size_t tid) {
    body(i, tid);
    tasks_executed.add(tid);
  };

  FailureLog failure_log;

  switch (schedule) {
    case HfxSchedule::kDynamicBag:
    case HfxSchedule::kStaticBlock:
    case HfxSchedule::kStaticCyclic: {
      // parallel_for policies retry in place: the iteration owns its
      // index, so the failed task cannot migrate anyway.
      const auto with_retry = [&](std::size_t i, std::size_t tid) {
        for (std::size_t attempt = 1;; ++attempt) {
          try {
            run(i, tid);
            return;
          } catch (const std::exception& e) {
            if (attempt > retry.max_retries) {
              permanent_failures.add(tid);
              failure_log.add(i, attempt, e.what());
              return;
            }
          } catch (...) {
            if (attempt > retry.max_retries) {
              permanent_failures.add(tid);
              failure_log.add(i, attempt, "unknown error");
              return;
            }
          }
          retries.add(tid);
          backoff_sleep(retry.backoff_seconds, attempt);
        }
      };
      const parallel::Schedule policy =
          schedule == HfxSchedule::kDynamicBag
              ? parallel::Schedule::kDynamic
              : (schedule == HfxSchedule::kStaticBlock
                     ? parallel::Schedule::kStatic
                     : parallel::Schedule::kStaticCyclic);
      pool.parallel_for(0, num_tasks, with_retry, policy);
      break;
    }
    case HfxSchedule::kWorkStealing: {
      parallel::WorkStealingScheduler ws(pool.num_threads());
      ws.seed(num_tasks);
      // Shared per-task attempt counts: a re-queued task may be stolen
      // and retried by a different thread than the one it failed on.
      auto attempts = std::make_unique<std::atomic<std::uint32_t>[]>(
          num_tasks);
      pool.parallel_region([&](std::size_t tid) {
        while (auto task = ws.next(tid)) {
          const std::size_t i = static_cast<std::size_t>(*task);
          std::string error;
          try {
            run(i, tid);
            continue;
          } catch (const std::exception& e) {
            error = e.what();
          } catch (...) {
            error = "unknown error";
          }
          const std::size_t attempt =
              attempts[i].fetch_add(1, std::memory_order_relaxed) + 1;
          if (attempt > retry.max_retries) {
            permanent_failures.add(tid);
            failure_log.add(i, attempt, std::move(error));
          } else {
            retries.add(tid);
            backoff_sleep(retry.backoff_seconds, attempt);
            ws.requeue(tid, *task);
          }
        }
      });
      if (registry) ws.record(*registry);
      break;
    }
  }

  if (!failure_log.failures.empty())
    throw TaskFailure(std::move(failure_log.failures));
}

}  // namespace mthfx::hfx
