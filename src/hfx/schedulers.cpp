#include "hfx/schedulers.hpp"

#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace mthfx::hfx {

std::size_t resolve_thread_count(std::size_t requested) {
  // Single policy shared with ThreadPool so the HFX layer can never size
  // per-thread buffers against a different count than the pool runs.
  return parallel::resolve_thread_count(requested);
}

void execute_tasks(std::size_t num_tasks, std::size_t num_threads,
                   HfxSchedule schedule,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   obs::Registry* registry) {
  parallel::ThreadPool pool(num_threads);
  pool.set_registry(registry);

  obs::Counter tasks_executed;
  std::function<void(std::size_t, std::size_t)> counted;
  if (registry) {
    tasks_executed = registry->counter("sched.tasks_executed");
    counted = [&](std::size_t i, std::size_t tid) {
      tasks_executed.add(tid);
      body(i, tid);
    };
  }
  const auto& run = registry ? counted : body;

  switch (schedule) {
    case HfxSchedule::kDynamicBag:
      pool.parallel_for(0, num_tasks, run, parallel::Schedule::kDynamic);
      break;
    case HfxSchedule::kStaticBlock:
      pool.parallel_for(0, num_tasks, run, parallel::Schedule::kStatic);
      break;
    case HfxSchedule::kStaticCyclic:
      pool.parallel_for(0, num_tasks, run, parallel::Schedule::kStaticCyclic);
      break;
    case HfxSchedule::kWorkStealing: {
      parallel::WorkStealingScheduler ws(pool.num_threads());
      ws.seed(num_tasks);
      pool.parallel_region([&](std::size_t tid) {
        while (auto task = ws.next(tid)) run(*task, tid);
      });
      if (registry) ws.record(*registry);
      break;
    }
  }
}

}  // namespace mthfx::hfx
