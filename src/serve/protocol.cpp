#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "engine/journal.hpp"

namespace mthfx::serve {

namespace {

std::string opt_string(const obs::Json& j, std::string_view key,
                       const std::string& fallback) {
  const obs::Json* v = j.find(key);
  return v ? v->as_string() : fallback;
}

std::int64_t opt_int(const obs::Json& j, std::string_view key,
                     std::int64_t fallback) {
  const obs::Json* v = j.find(key);
  return v ? v->as_int() : fallback;
}

double opt_double(const obs::Json& j, std::string_view key, double fallback) {
  const obs::Json* v = j.find(key);
  return v ? v->as_double() : fallback;
}

std::uint64_t require_id(const obs::Json& j) {
  const obs::Json* v = j.find("id");
  if (!v) throw std::runtime_error("missing required field 'id'");
  const std::int64_t id = v->as_int();
  if (id <= 0) throw std::runtime_error("'id' must be a positive integer");
  return static_cast<std::uint64_t>(id);
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kSubmit: return "submit";
    case Op::kStatus: return "status";
    case Op::kResult: return "result";
    case Op::kCancel: return "cancel";
    case Op::kStats: return "stats";
    case Op::kDrain: return "drain";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  obs::Json j;
  try {
    j = obs::Json::parse(line);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("malformed JSON: ") + e.what());
  }
  if (!j.is_object()) throw std::runtime_error("request must be an object");

  const obs::Json* op_field = j.find("op");
  if (!op_field) throw std::runtime_error("missing required field 'op'");
  const std::string& op = op_field->as_string();

  Request r;
  if (op == "hello") {
    r.op = Op::kHello;
    r.tenant = opt_string(j, "tenant", "");
    if (r.tenant.empty())
      throw std::runtime_error("hello requires a non-empty 'tenant'");
  } else if (op == "submit") {
    r.op = Op::kSubmit;
    r.name = opt_string(j, "name", "");
    r.priority = static_cast<int>(opt_int(j, "priority", 0));
    r.deadline_s = opt_double(j, "deadline_s", 0.0);
    const obs::Json* input = j.find("input");
    const obs::Json* text = j.find("text");
    if ((input == nullptr) == (text == nullptr))
      throw std::runtime_error(
          "submit requires exactly one of 'input' (engine JSON) or 'text' "
          "(mthfx input format)");
    try {
      r.input = input ? engine::input_from_json(*input)
                      : app::parse_input(text->as_string());
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("bad input: ") + e.what());
    }
  } else if (op == "status") {
    r.op = Op::kStatus;
    r.id = require_id(j);
  } else if (op == "result") {
    r.op = Op::kResult;
    r.id = require_id(j);
    r.timeout_s = opt_double(j, "timeout_s", 0.0);
  } else if (op == "cancel") {
    r.op = Op::kCancel;
    r.id = require_id(j);
    r.note = opt_string(j, "note", "");
  } else if (op == "stats") {
    r.op = Op::kStats;
  } else if (op == "drain") {
    r.op = Op::kDrain;
    r.note = opt_string(j, "reason", "");
  } else {
    throw std::runtime_error("unknown op '" + op + "'");
  }
  return r;
}

obs::Json ok_response(Op op) {
  obs::Json j = obs::Json::object();
  j["ok"] = true;
  j["op"] = to_string(op);
  return j;
}

obs::Json error_response(const std::string& message) {
  obs::Json j = obs::Json::object();
  j["ok"] = false;
  j["error"] = message;
  return j;
}

std::string encode_frame(const obs::Json& message) {
  std::string frame = message.dump();
  frame.push_back('\n');
  return frame;
}

std::optional<std::string> LineReader::read_line() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (buffer_.size() > kMaxFrameBytes)
      throw std::runtime_error("frame exceeds " +
                               std::to_string(kMaxFrameBytes) + " bytes");
    if (eof_) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      eof_ = true;
      if (!buffer_.empty()) {  // unterminated trailing frame: drop it
        buffer_.clear();
      }
    } else {
      if (errno == EINTR) continue;
      eof_ = true;
      buffer_.clear();
    }
  }
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE, not process death.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace mthfx::serve
