#pragma once

// Long-lived multi-tenant screening service: a TCP front-end speaking
// the NDJSON line protocol (serve/protocol.hpp) in front of the
// JobScheduler + FairShareQueue stack. One accept thread, one thread
// per connection, strictly request/response per connection; results are
// delivered by a blocking `result` op against a server-side job table
// that the scheduler's on_record/on_started hooks keep current.
//
// Durability: the engine's write-ahead journal records every tenant
// submission (FairShareQueue journals at admission), so a SIGKILLed
// server restarted with `resume = true` adopts committed records
// (bit-identical energies, zero recomputed SCF work) and resubmits the
// rest under their original ids — reconnecting clients keep polling the
// same ids. A graceful stop drains in-flight work and appends a clean
// `shutdown` journal record.
//
// Shedding policy lives in the tenant layer (per-tenant backlog
// displacement); the core queue runs with shed_lowest forced off so one
// tenant's burst can never displace another tenant's admitted work.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/scheduler.hpp"
#include "engine/tenant.hpp"
#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace mthfx::serve {

/// One tenant's configured quota/weight (ServeOptions::tenants).
struct TenantConfig {
  std::string id;
  engine::TenantOptions options;
};

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (read the bound port from port())
  /// Reject submit/status/result/cancel until the connection sent a
  /// `hello`; stats and drain are always allowed.
  bool require_hello = true;
  /// Engine configuration. `shed_lowest` is forced off (see above);
  /// `on_record`/`on_started` are owned by the server.
  engine::EngineOptions engine;
  /// Quota/weight for tenants not listed in `tenants`.
  engine::TenantOptions tenant_defaults;
  std::vector<TenantConfig> tenants;
  /// Replay engine.journal_path on start(): adopt committed records,
  /// resubmit the rest under their original ids.
  bool resume = false;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start workers, replay the journal when resuming, bind + listen,
  /// and launch the accept thread. Throws std::runtime_error when the
  /// socket cannot be bound.
  void start();

  int port() const { return port_; }

  /// Ask for a graceful stop (signal handler path, or the drain op).
  /// Returns immediately; wait_for_stop()/stop() do the work.
  void request_stop(const std::string& reason);
  bool stop_requested() const { return stop_flag_.load(); }
  /// Block until request_stop is called (the serving thread parks here).
  void wait_for_stop();

  /// Graceful shutdown: refuse new submissions, run every accepted job
  /// to completion, journal a clean `shutdown` record, close the
  /// listener and all connections, join all threads. Idempotent;
  /// returns the full record set (as JobScheduler::drain).
  std::vector<engine::JobRecord> stop();

  engine::JobScheduler& scheduler() { return scheduler_; }
  engine::FairShareQueue& fair_share() { return fair_; }
  std::size_t replayed() const { return replayed_; }
  obs::Json stats_json();

 private:
  struct JobEntry {
    std::string state = "queued";
    bool terminal = false;
    obs::Json record;  ///< full job_record_to_json once terminal
  };
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  engine::EngineOptions engine_options(const ServeOptions& options);
  void on_record(const engine::JobRecord& record);
  void on_started(std::uint64_t id, std::size_t attempt);
  void accept_loop();
  void handle_connection(Connection* conn);
  /// nullopt = no response (connection should close without replying).
  obs::Json handle_request(const Request& request, std::string& conn_tenant);
  obs::Json handle_submit(const Request& request,
                          const std::string& conn_tenant);
  obs::Json handle_result(const Request& request);

  ServeOptions options_;
  engine::JobScheduler scheduler_;
  engine::FairShareQueue fair_;

  // Atomic: stop() closes and clears the fd while accept_loop() reads
  // it into ::accept on another thread.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::list<Connection> connections_;  ///< stable addresses for threads
  bool accepting_ = false;

  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::unordered_map<std::uint64_t, JobEntry> jobs_;
  bool jobs_closing_ = false;  ///< wakes result-waiters during stop()

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_flag_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  std::string stop_reason_;
  bool stopped_ = false;
  std::vector<engine::JobRecord> records_;
  std::size_t replayed_ = 0;
};

}  // namespace mthfx::serve
