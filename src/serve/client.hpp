#pragma once

// Blocking client for the mthfx screening service: one TCP connection,
// strictly request/response. Used by the serve tests and the A9 service
// benchmark; also a reference implementation of the line protocol for
// external clients.

#include <cstdint>
#include <string>

#include "app/input.hpp"
#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace mthfx::serve {

class Client {
 public:
  /// Connect (IPv4). Throws std::runtime_error when the server is not
  /// reachable — callers that expect a mid-restart window catch and
  /// retry.
  Client(const std::string& host, int port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request object, read one response object. Throws
  /// std::runtime_error on a broken connection.
  obs::Json request(const obs::Json& message);

  /// Convenience wrappers. Each returns the raw response object;
  /// check `ok` / read fields per the protocol grammar.
  obs::Json hello(const std::string& tenant);
  obs::Json submit(const std::string& name, const app::Input& input,
                   int priority = 0, double deadline_s = 0.0);
  obs::Json status(std::uint64_t id);
  /// timeout_s 0 = wait forever (until the server finishes or stops).
  obs::Json result(std::uint64_t id, double timeout_s = 0.0);
  obs::Json cancel(std::uint64_t id, const std::string& note = "");
  obs::Json stats();
  obs::Json drain(const std::string& reason = "");

  /// Raw fd, for rude-disconnect tests (close without protocol goodbye).
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
  LineReader reader_;
};

}  // namespace mthfx::serve
