#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "engine/journal.hpp"

namespace mthfx::serve {

namespace {

int connect_fd(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("client: socket: ") +
                             std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("client: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("client: connect: ") +
                             std::strerror(err));
  }
  // Requests are single small frames; don't let Nagle batch them.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::Client(const std::string& host, int port)
    : fd_(connect_fd(host, port)), reader_(fd_) {}

Client::~Client() {
  close();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

obs::Json Client::request(const obs::Json& message) {
  if (fd_ < 0) throw std::runtime_error("client: connection closed");
  if (!send_all(fd_, encode_frame(message)))
    throw std::runtime_error("client: send failed (server gone?)");
  std::optional<std::string> line = reader_.read_line();
  if (!line)
    throw std::runtime_error("client: connection closed by server");
  return obs::Json::parse(*line);
}

obs::Json Client::hello(const std::string& tenant) {
  obs::Json r = obs::Json::object();
  r["op"] = "hello";
  r["tenant"] = tenant;
  return request(r);
}

obs::Json Client::submit(const std::string& name, const app::Input& input,
                         int priority, double deadline_s) {
  obs::Json r = obs::Json::object();
  r["op"] = "submit";
  r["name"] = name;
  if (priority != 0) r["priority"] = priority;
  if (deadline_s > 0.0) r["deadline_s"] = deadline_s;
  r["input"] = engine::input_to_json(input);
  return request(r);
}

obs::Json Client::status(std::uint64_t id) {
  obs::Json r = obs::Json::object();
  r["op"] = "status";
  r["id"] = id;
  return request(r);
}

obs::Json Client::result(std::uint64_t id, double timeout_s) {
  obs::Json r = obs::Json::object();
  r["op"] = "result";
  r["id"] = id;
  if (timeout_s > 0.0) r["timeout_s"] = timeout_s;
  return request(r);
}

obs::Json Client::cancel(std::uint64_t id, const std::string& note) {
  obs::Json r = obs::Json::object();
  r["op"] = "cancel";
  r["id"] = id;
  if (!note.empty()) r["note"] = note;
  return request(r);
}

obs::Json Client::stats() {
  obs::Json r = obs::Json::object();
  r["op"] = "stats";
  return request(r);
}

obs::Json Client::drain(const std::string& reason) {
  obs::Json r = obs::Json::object();
  r["op"] = "drain";
  if (!reason.empty()) r["reason"] = reason;
  return request(r);
}

}  // namespace mthfx::serve
