#pragma once

// Line protocol for the mthfx screening service: newline-delimited JSON
// (NDJSON) over a byte stream, one request object per line in, one
// response object per line out, strictly request/response in order.
//
// Requests ({"op": ..., ...}):
//   hello   {op, tenant}                       — authenticate the connection
//   submit  {op, name?, priority?, deadline_s?, input|text}
//           `input` is the engine's full-fidelity JSON form
//           (engine::input_from_json); `text` is the mthfx input-file
//           format (app::parse_input). Exactly one must be present.
//   status  {op, id}
//   result  {op, id, timeout_s?}               — blocks until terminal
//   cancel  {op, id, note?}
//   stats   {op}
//   drain   {op, reason?}                      — graceful shutdown
//
// Responses: {"ok": true, "op": <echoed>, ...payload} on success,
// {"ok": false, "error": "<reason>"} on failure. A malformed line gets
// an error response; the connection stays open (a client bug should not
// tear down its other in-flight work). Lines longer than kMaxFrameBytes
// are rejected and the connection closed — that is a framing failure,
// not a request.
//
// See docs/engine.md (Service) for the grammar and a session transcript.

#include <cstdint>
#include <optional>
#include <string>

#include "app/input.hpp"
#include "obs/json.hpp"

namespace mthfx::serve {

/// Upper bound on one frame (request or response line). Generous: a
/// condensed-phase geometry is a few KiB; 1 MiB means a lost newline,
/// not a big molecule.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

enum class Op : std::uint8_t {
  kHello,
  kSubmit,
  kStatus,
  kResult,
  kCancel,
  kStats,
  kDrain,
};

const char* to_string(Op op);

/// One parsed request. Fields are meaningful per-op (see the grammar).
struct Request {
  Op op = Op::kStats;
  std::string tenant;      // hello
  std::string name;        // submit
  int priority = 0;        // submit
  double deadline_s = 0.0; // submit
  app::Input input;        // submit (parsed from `input` or `text`)
  std::uint64_t id = 0;    // status / result / cancel
  double timeout_s = 0.0;  // result; 0 = wait forever
  std::string note;        // cancel note / drain reason
};

/// Parse one request line. Throws std::runtime_error with a
/// client-safe message on anything malformed: bad JSON, unknown op,
/// missing/mistyped fields, submit with both or neither of input/text.
Request parse_request(const std::string& line);

obs::Json ok_response(Op op);
obs::Json error_response(const std::string& message);

/// Serialize a response (or request) as one protocol frame: single-line
/// JSON plus the terminating newline.
std::string encode_frame(const obs::Json& message);

/// Buffered line reader over a socket fd. Returns frames without the
/// newline; nullopt on EOF or error. Throws std::runtime_error when a
/// line exceeds kMaxFrameBytes (protocol violation — caller should
/// close).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}
  std::optional<std::string> read_line();

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Write the whole buffer, retrying on short writes and EINTR. Returns
/// false on a hard error (peer gone); never throws or raises SIGPIPE.
bool send_all(int fd, const std::string& data);

}  // namespace mthfx::serve
