#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "engine/journal.hpp"
#include "engine/report.hpp"

namespace mthfx::serve {

engine::EngineOptions Server::engine_options(const ServeOptions& options) {
  engine::EngineOptions e = options.engine;
  e.shed_lowest = false;  // shedding is per-tenant, in the FairShareQueue
  e.on_record = [this](const engine::JobRecord& r) { on_record(r); };
  e.on_started = [this](std::uint64_t id, std::size_t attempt) {
    on_started(id, attempt);
  };
  return e;
}

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      scheduler_(engine_options(options_)),
      fair_(scheduler_, options_.tenant_defaults) {
  for (const TenantConfig& t : options_.tenants)
    fair_.configure(t.id, t.options);
}

Server::~Server() {
  stop();
}

void Server::on_record(const engine::JobRecord& record) {
  fair_.on_terminal(record);
  if (record.id == 0) return;  // core reject without an id: untrackable
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    JobEntry& entry = jobs_[record.id];
    entry.terminal = true;
    entry.state = engine::to_string(record.state);
    entry.record = engine::job_record_to_json(record);
  }
  jobs_cv_.notify_all();
}

void Server::on_started(std::uint64_t id, std::size_t attempt) {
  (void)attempt;
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  JobEntry& entry = jobs_[id];
  if (!entry.terminal) entry.state = "running";
}

void Server::start() {
  scheduler_.start();

  if (options_.resume && !options_.engine.journal_path.empty()) {
    const engine::JournalReplay replay =
        engine::Journal::replay(options_.engine.journal_path);
    fair_.set_next_id(replay.max_id() + 1);
    for (const engine::ReplayedJob& rj : replay.jobs) {
      if (rj.committed) {
        // The on_record hook files it into the job table, so clients
        // polling the old id get the journaled (bit-identical) record.
        scheduler_.adopt(rj.record);
        ++replayed_;
      } else {
        engine::Job job = rj.job;
        job.journaled = true;  // its submitted record is already on disk
        if (!options_.engine.checkpoint_dir.empty()) {
          const std::string ckpt = options_.engine.checkpoint_dir + "/job_" +
                                   std::to_string(job.id) + ".ckpt";
          if (std::ifstream(ckpt).good()) job.input.restore_path = ckpt;
        }
        fair_.submit(job.tenant, std::move(job));
      }
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("serve: bad host '" + options_.host + "'");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0)
    throw std::runtime_error(std::string("serve: bind: ") +
                             std::strerror(errno));
  if (::listen(listen_fd_, 64) < 0)
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(errno));
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accepting_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal: stop accepting
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!accepting_) {
      ::close(fd);
      return;
    }
    connections_.emplace_back();
    Connection* conn = &connections_.back();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { handle_connection(conn); });
  }
}

void Server::handle_connection(Connection* conn) {
  LineReader reader(conn->fd);
  std::string conn_tenant;
  while (true) {
    std::optional<std::string> line;
    try {
      line = reader.read_line();
    } catch (const std::exception& e) {
      // Oversized frame: framing is broken, close after telling why.
      send_all(conn->fd, encode_frame(error_response(e.what())));
      break;
    }
    if (!line) break;  // client disconnected; its jobs keep running
    if (line->empty()) continue;
    obs::Json response;
    try {
      const Request request = parse_request(*line);
      response = handle_request(request, conn_tenant);
    } catch (const std::exception& e) {
      response = error_response(e.what());
    }
    if (!send_all(conn->fd, encode_frame(response))) break;
  }
  std::lock_guard<std::mutex> lock(conn_mutex_);
  ::shutdown(conn->fd, SHUT_RDWR);
  ::close(conn->fd);
  conn->fd = -1;
}

obs::Json Server::handle_request(const Request& request,
                                 std::string& conn_tenant) {
  if (options_.require_hello && conn_tenant.empty() &&
      (request.op == Op::kSubmit || request.op == Op::kStatus ||
       request.op == Op::kResult || request.op == Op::kCancel))
    return error_response("hello required before " +
                          std::string(to_string(request.op)));

  switch (request.op) {
    case Op::kHello: {
      conn_tenant = request.tenant;
      obs::Json r = ok_response(Op::kHello);
      r["tenant"] = conn_tenant;
      return r;
    }
    case Op::kSubmit:
      return handle_submit(request, conn_tenant);
    case Op::kStatus: {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      auto it = jobs_.find(request.id);
      if (it == jobs_.end())
        return error_response("unknown job id " + std::to_string(request.id));
      obs::Json r = ok_response(Op::kStatus);
      r["id"] = request.id;
      r["state"] = it->second.state;
      return r;
    }
    case Op::kResult:
      return handle_result(request);
    case Op::kCancel: {
      std::string error;
      if (!fair_.cancel(request.id, request.note, &error))
        return error_response(error);
      obs::Json r = ok_response(Op::kCancel);
      r["id"] = request.id;
      return r;
    }
    case Op::kStats: {
      obs::Json r = ok_response(Op::kStats);
      r["stats"] = stats_json();
      return r;
    }
    case Op::kDrain: {
      // Refuse new work, wait for everything accepted to finish, then
      // hand the actual teardown to the serving thread (this thread is
      // itself a connection thread and cannot join itself).
      draining_.store(true);
      fair_.wait_idle();
      obs::Json r = ok_response(Op::kDrain);
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        r["jobs"] = jobs_.size();
      }
      request_stop(request.note.empty() ? "drain requested" : request.note);
      return r;
    }
  }
  return error_response("unhandled op");
}

obs::Json Server::handle_submit(const Request& request,
                                const std::string& conn_tenant) {
  if (draining_.load()) return error_response("server draining");
  engine::Job job;
  job.name = request.name;
  job.priority = request.priority;
  job.deadline_seconds = request.deadline_s;
  job.input = request.input;
  const engine::Admission admission =
      fair_.submit(conn_tenant.empty() ? "anonymous" : conn_tenant,
                   std::move(job));
  if (!admission.accepted) return error_response(admission.reason);
  {
    // The worker may already have finished (and filed the terminal
    // entry) by now; try_emplace never clobbers it.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.try_emplace(admission.id);
  }
  obs::Json r = ok_response(Op::kSubmit);
  r["id"] = admission.id;
  return r;
}

obs::Json Server::handle_result(const Request& request) {
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(request.id);
  if (it == jobs_.end())
    return error_response("unknown job id " + std::to_string(request.id));
  auto done = [&] { return jobs_[request.id].terminal || jobs_closing_; };
  if (request.timeout_s > 0.0) {
    if (!jobs_cv_.wait_for(
            lock, std::chrono::duration<double>(request.timeout_s), done))
      return error_response("timeout waiting for job " +
                            std::to_string(request.id));
  } else {
    jobs_cv_.wait(lock, done);
  }
  const JobEntry& entry = jobs_[request.id];
  if (!entry.terminal)
    return error_response("server stopping before job " +
                          std::to_string(request.id) + " finished");
  obs::Json r = ok_response(Op::kResult);
  r["id"] = request.id;
  r["state"] = entry.state;
  r["record"] = entry.record;
  return r;
}

obs::Json Server::stats_json() {
  obs::Json s = obs::Json::object();
  s["draining"] = draining_.load();
  s["replayed"] = replayed_;
  s["tenants"] = fair_.stats_json();

  obs::Json queue = obs::Json::object();
  queue["depth"] = scheduler_.queue().depth();
  queue["capacity"] = scheduler_.queue().capacity();
  queue["accepted"] = scheduler_.queue().accepted();
  queue["rejected"] = scheduler_.queue().rejected();
  queue["high_water"] = scheduler_.queue().high_water();
  queue["tenant_backlog"] = fair_.backlog();
  queue["tenant_in_flight"] = fair_.in_flight();
  s["queue"] = std::move(queue);

  obs::Json cache = obs::Json::object();
  cache["hits"] = scheduler_.store().hits();
  cache["misses"] = scheduler_.store().misses();
  cache["entries"] = scheduler_.store().size();
  s["cache"] = std::move(cache);

  std::size_t tracked = 0, terminal = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    tracked = jobs_.size();
    for (const auto& [id, entry] : jobs_)
      if (entry.terminal) ++terminal;
  }
  obs::Json jobs = obs::Json::object();
  jobs["tracked"] = tracked;
  jobs["terminal"] = terminal;
  s["jobs"] = std::move(jobs);
  return s;
}

void Server::request_stop(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stop_reason_.empty()) stop_reason_ = reason;
  }
  stop_flag_.store(true);
  stop_cv_.notify_all();
}

void Server::wait_for_stop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_flag_.load(); });
}

std::vector<engine::JobRecord> Server::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return records_;
    stopped_ = true;
    if (stop_reason_.empty()) stop_reason_ = "stop";
  }
  stop_flag_.store(true);
  draining_.store(true);

  // Finish everything accepted: tenant backlogs drain through the pump
  // as workers free up, then the core queue runs dry.
  fair_.wait_idle();
  records_ = scheduler_.drain();
  scheduler_.journal().record_shutdown(stop_reason_);
  {
    // Every accepted job is terminal by now; release any straggler
    // still parked in a blocking `result` wait.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_closing_ = true;
  }
  jobs_cv_.notify_all();

  // Tear down the listener (unblocks accept) and every connection
  // (unblocks their reads), then join.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    accepting_ = false;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (Connection& conn : connections_)
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
  }
  for (Connection& conn : connections_)
    if (conn.thread.joinable()) conn.thread.join();
  connections_.clear();
  return records_;
}

}  // namespace mthfx::serve
