#include "md/trajectory.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mthfx::md {

void TrajectoryWriter::add_frame(const chem::Molecule& mol,
                                 const MdFrame& frame) {
  frames_.push_back({mol, frame});
}

std::string TrajectoryWriter::xyz() const {
  std::string out;
  for (const auto& s : frames_) {
    std::ostringstream comment;
    comment.precision(10);
    comment << "t=" << s.frame.time_fs << " fs  E=" << s.frame.total
            << " Ha  T=" << s.frame.temperature_k << " K";
    out += s.mol.to_xyz(comment.str());
  }
  return out;
}

std::string TrajectoryWriter::energy_csv() const {
  std::ostringstream out;
  out.precision(12);
  out << "time_fs,potential_ha,kinetic_ha,total_ha,temperature_k\n";
  for (const auto& s : frames_)
    out << s.frame.time_fs << ',' << s.frame.potential << ','
        << s.frame.kinetic << ',' << s.frame.total << ','
        << s.frame.temperature_k << '\n';
  return out.str();
}

void TrajectoryWriter::write(const std::string& prefix) const {
  std::ofstream xyz_file(prefix + ".xyz");
  std::ofstream csv_file(prefix + ".csv");
  if (!xyz_file || !csv_file)
    throw std::runtime_error("TrajectoryWriter: cannot open output files");
  xyz_file << xyz();
  csv_file << energy_csv();
}

MdResult run_bomd_recorded(const chem::Molecule& initial,
                           const PotentialSurface& surface,
                           const MdOptions& options,
                           TrajectoryWriter& writer) {
  // The integrator callback reports frames but not geometries, so wrap
  // the surface: its energy() sees every post-step geometry just before
  // the frame is recorded.
  chem::Molecule current = initial;
  struct Observer : PotentialSurface {
    const PotentialSurface* inner = nullptr;
    chem::Molecule* slot = nullptr;
    double energy(const chem::Molecule& m) const override {
      *slot = m;
      return inner->energy(m);
    }
    std::vector<chem::Vec3> forces(const chem::Molecule& m) const override {
      return inner->forces(m);
    }
  } observer;
  observer.inner = &surface;
  observer.slot = &current;

  return run_bomd(initial, observer, options, [&](const MdFrame& frame) {
    writer.add_frame(current, frame);
  });
}

}  // namespace mthfx::md
