#pragma once

// Kinetic-energy bookkeeping and the Berendsen weak-coupling thermostat.

#include <vector>

#include "chem/molecule.hpp"

namespace mthfx::md {

/// Kinetic energy (Hartree) of velocities (Bohr / atomic time unit).
double kinetic_energy(const chem::Molecule& mol,
                      const std::vector<chem::Vec3>& velocities);

/// Instantaneous temperature (Kelvin) from the equipartition theorem,
/// 3N degrees of freedom.
double temperature(const chem::Molecule& mol,
                   const std::vector<chem::Vec3>& velocities);

/// Berendsen velocity-scaling factor for one step:
/// lambda = sqrt(1 + dt/tau (T0/T - 1)), clamped to [0.8, 1.25].
double berendsen_lambda(double current_t, double target_t, double dt,
                        double tau);

/// Maxwell–Boltzmann velocities at `target_t` Kelvin (deterministic for a
/// given seed), with the center-of-mass drift removed.
std::vector<chem::Vec3> maxwell_boltzmann_velocities(const chem::Molecule& mol,
                                                     double target_t,
                                                     unsigned seed);

}  // namespace mthfx::md
