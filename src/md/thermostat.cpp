#include "md/thermostat.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "chem/elements.hpp"

namespace mthfx::md {

double kinetic_energy(const chem::Molecule& mol,
                      const std::vector<chem::Vec3>& velocities) {
  double ke = 0.0;
  for (std::size_t i = 0; i < mol.size(); ++i) {
    const double m =
        chem::element(mol.atom(i).z).mass_amu * chem::kAmuToElectronMass;
    ke += 0.5 * m * chem::dot(velocities[i], velocities[i]);
  }
  return ke;
}

double temperature(const chem::Molecule& mol,
                   const std::vector<chem::Vec3>& velocities) {
  const double dof = 3.0 * static_cast<double>(mol.size());
  if (dof == 0.0) return 0.0;
  return 2.0 * kinetic_energy(mol, velocities) /
         (dof * chem::kBoltzmannHaPerK);
}

double berendsen_lambda(double current_t, double target_t, double dt,
                        double tau) {
  if (current_t <= 0.0) return 1.0;
  const double l2 = 1.0 + dt / tau * (target_t / current_t - 1.0);
  return std::clamp(std::sqrt(std::max(0.0, l2)), 0.8, 1.25);
}

std::vector<chem::Vec3> maxwell_boltzmann_velocities(const chem::Molecule& mol,
                                                     double target_t,
                                                     unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<chem::Vec3> v(mol.size());
  chem::Vec3 p_total{0, 0, 0};
  double m_total = 0.0;
  for (std::size_t i = 0; i < mol.size(); ++i) {
    const double m =
        chem::element(mol.atom(i).z).mass_amu * chem::kAmuToElectronMass;
    const double sigma = std::sqrt(chem::kBoltzmannHaPerK * target_t / m);
    v[i] = {sigma * gauss(rng), sigma * gauss(rng), sigma * gauss(rng)};
    p_total = p_total + m * v[i];
    m_total += m;
  }
  // Remove center-of-mass drift.
  if (m_total > 0.0) {
    const chem::Vec3 v_com = (1.0 / m_total) * p_total;
    for (auto& vi : v) vi = vi - v_com;
  }
  return v;
}

}  // namespace mthfx::md
