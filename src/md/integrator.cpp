#include "md/integrator.hpp"

#include <cmath>
#include <stdexcept>

#include "chem/elements.hpp"
#include "md/thermostat.hpp"

namespace mthfx::md {

double MdResult::max_energy_drift() const {
  if (frames.empty()) return 0.0;
  const double e0 = frames.front().total;
  double drift = 0.0;
  for (const MdFrame& f : frames)
    drift = std::max(drift, std::abs(f.total - e0));
  return drift;
}

MdResult run_bomd(const chem::Molecule& initial,
                  const PotentialSurface& surface, const MdOptions& options,
                  const std::function<void(const MdFrame&)>& on_frame) {
  const double dt = options.timestep_fs / chem::kFsPerAtomicTime;
  const std::size_t n = initial.size();

  chem::Molecule mol = initial;
  std::vector<chem::Vec3> v;
  int start_step = 0;
  if (options.resume) {
    const fault::MdCheckpoint& ckpt = *options.resume;
    if (ckpt.geometry.size() != n)
      throw std::invalid_argument(
          "run_bomd: checkpoint atom count does not match system");
    mol = ckpt.geometry;
    v = ckpt.velocities;
    start_step = static_cast<int>(ckpt.frame_index);
  } else {
    v = options.initial_temperature_k > 0.0
            ? maxwell_boltzmann_velocities(mol, options.initial_temperature_k,
                                           options.seed)
            : std::vector<chem::Vec3>(n, chem::Vec3{0, 0, 0});
  }

  std::vector<double> inv_mass(n);
  for (std::size_t i = 0; i < n; ++i)
    inv_mass[i] = 1.0 / (chem::element(mol.atom(i).z).mass_amu *
                         chem::kAmuToElectronMass);

  MdResult result;
  double potential = surface.energy(mol);
  std::vector<chem::Vec3> f = surface.forces(mol);

  auto record = [&](double time_fs) {
    MdFrame frame;
    frame.time_fs = time_fs;
    frame.potential = potential;
    frame.kinetic = kinetic_energy(mol, v);
    frame.total = frame.potential + frame.kinetic;
    frame.temperature_k = temperature(mol, v);
    result.frames.push_back(frame);
    if (on_frame) on_frame(frame);
  };
  // On resume this frame reproduces the checkpointed state, so the
  // resumed trajectory's frames line up with the tail of the
  // uninterrupted one.
  record(start_step * options.timestep_fs);
  const double initial_total = options.resume
                                   ? options.resume->initial_total_energy
                                   : result.frames.front().total;

  auto checkpoint = [&](int completed_step) {
    if (!options.checkpoint_sink || options.checkpoint_every <= 0 ||
        completed_step % options.checkpoint_every != 0)
      return;
    fault::MdCheckpoint ckpt;
    ckpt.frame_index = static_cast<std::size_t>(completed_step);
    ckpt.time_fs = completed_step * options.timestep_fs;
    ckpt.geometry = mol;
    ckpt.velocities = v;
    ckpt.initial_total_energy = initial_total;
    options.checkpoint_sink(ckpt);
  };

  for (int step = start_step; step < options.num_steps; ++step) {
    // Velocity Verlet.
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = v[i] + (0.5 * dt * inv_mass[i]) * f[i];
      mol.set_position(i, mol.atom(i).pos + dt * v[i]);
    }
    potential = surface.energy(mol);
    f = surface.forces(mol);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = v[i] + (0.5 * dt * inv_mass[i]) * f[i];

    if (options.target_temperature_k > 0.0) {
      const double lambda = berendsen_lambda(
          temperature(mol, v), options.target_temperature_k, dt,
          options.berendsen_tau_fs / chem::kFsPerAtomicTime);
      for (auto& vi : v) vi = lambda * vi;
    }
    record((step + 1) * options.timestep_fs);
    checkpoint(step + 1);
  }

  result.final_geometry = mol;
  result.final_velocities = v;
  return result;
}

}  // namespace mthfx::md
