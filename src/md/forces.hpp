#pragma once

// Potential-energy surfaces for Born–Oppenheimer MD. The production
// surface is an SCF (RHF or RKS/PBE0) energy; forces come from central
// finite differences of the converged energy — adequate for the short
// demonstration trajectories of experiment E5 (the paper's CPMD code uses
// analytic gradients; the substitution is documented in DESIGN.md).

#include <memory>
#include <vector>

#include "chem/molecule.hpp"
#include "scf/rks.hpp"

namespace mthfx::md {

class PotentialSurface {
 public:
  virtual ~PotentialSurface() = default;

  /// Potential energy (Hartree) at the given geometry.
  virtual double energy(const chem::Molecule& mol) const = 0;

  /// Forces (-dE/dR, Hartree/Bohr). Default implementation: central
  /// finite differences with step `fd_step` Bohr.
  virtual std::vector<chem::Vec3> forces(const chem::Molecule& mol) const;

  double fd_step = 1e-3;
};

/// SCF-backed surface: "hf" runs RHF-equivalent, "pbe"/"pbe0"/"lda" run
/// RKS. Throws std::runtime_error if any SCF fails to converge.
/// For the "hf" functional, forces use the analytic RHF gradient (one
/// SCF per step); other functionals fall back to central differences.
class ScfPotential : public PotentialSurface {
 public:
  ScfPotential(std::string basis_name, scf::KsOptions options);

  double energy(const chem::Molecule& mol) const override;
  std::vector<chem::Vec3> forces(const chem::Molecule& mol) const override;

 private:
  std::string basis_name_;
  scf::KsOptions options_;
};

/// Analytic harmonic-bond surface for integrator tests: E = sum_b
/// k/2 (r_b - r0_b)^2 over the listed atom pairs.
class HarmonicBondPotential : public PotentialSurface {
 public:
  struct Bond {
    std::size_t i = 0, j = 0;
    double k = 1.0;   ///< Hartree / Bohr^2
    double r0 = 1.0;  ///< Bohr
  };

  explicit HarmonicBondPotential(std::vector<Bond> bonds)
      : bonds_(std::move(bonds)) {}

  double energy(const chem::Molecule& mol) const override;
  std::vector<chem::Vec3> forces(const chem::Molecule& mol) const override;

 private:
  std::vector<Bond> bonds_;
};

}  // namespace mthfx::md
