#pragma once

// Potential-energy surfaces for Born–Oppenheimer MD. The production
// surface is an SCF (RHF or RKS/PBE0) energy whose forces come from the
// analytic nuclear gradient (scf::ks_gradient) for every supported
// functional — hf, lda, pbe and pbe0 — matching the paper's CPMD
// substrate, which uses analytic forces throughout. The base-class
// central-finite-difference fallback is retained only as a test oracle
// (the gradient property suite diffs analytic forces against it) and for
// surfaces that do not implement an analytic gradient.
//
// ScfPotential also carries the cross-step acceleration state for MD
// trajectories: a per-geometry wavefunction cache (energy() + forces()
// at the same geometry cost one SCF, not two), density-matrix
// extrapolation warm starts (mid-trajectory solves converge in a few
// iterations), and a persistent FockBuilder rebound geometry-to-geometry
// so shell-pair Hermite tables on unmoved atoms are reused.

#include <memory>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "hfx/fock_builder.hpp"
#include "obs/registry.hpp"
#include "scf/rks.hpp"

namespace mthfx::md {

class PotentialSurface {
 public:
  virtual ~PotentialSurface() = default;

  /// Potential energy (Hartree) at the given geometry.
  virtual double energy(const chem::Molecule& mol) const = 0;

  /// Forces (-dE/dR, Hartree/Bohr). Default implementation: central
  /// finite differences with step `fd_step` Bohr.
  virtual std::vector<chem::Vec3> forces(const chem::Molecule& mol) const;

  double fd_step = 1e-3;
};

/// SCF-backed surface: "hf" runs RHF-equivalent, "pbe"/"pbe0"/"lda" run
/// RKS. Throws std::runtime_error if any SCF fails to converge.
///
/// Forces are analytic for every functional (one converged SCF plus one
/// gradient contraction per geometry — never the 6N-energy finite
/// difference of the base class). Cross-call acceleration, all
/// individually switchable via SurfaceAccel:
///  - wavefunction cache: a repeated geometry (MD's energy-then-forces
///    pattern) reuses the converged result instead of re-solving;
///  - warm starts: the SCF guess is the linear extrapolation 2 P_{n-1} -
///    P_{n-2} of the previous converged densities (falling back to
///    P_{n-1}, then to the core guess; a non-converged warm solve is
///    retried cold before giving up);
///  - builder reuse: one FockBuilder serves the whole trajectory,
///    rebound per geometry so Schwarz bounds and Hermite tables on
///    unmoved atoms carry over.
/// Counters (metrics(): md.scf_solves, md.surface_cache_hits,
/// md.warm_starts, md.scf_iterations, md.rebind_reused_pairs) expose the
/// machinery to tests and the A8 bench.
/// Switches for ScfPotential's cross-call acceleration machinery. All on
/// by default; tests and the A8 bench toggle them to isolate each lever.
struct SurfaceAccel {
  bool cache_wavefunction = true;  ///< reuse converged result per geometry
  bool warm_start = true;          ///< density extrapolation across solves
  bool reuse_builder = true;       ///< persistent FockBuilder + rebind
};

class ScfPotential : public PotentialSurface {
 public:
  ScfPotential(std::string basis_name, scf::KsOptions options,
               SurfaceAccel accel = {});

  double energy(const chem::Molecule& mol) const override;
  std::vector<chem::Vec3> forces(const chem::Molecule& mol) const override;

  /// Counter registry for the acceleration machinery (see class docs).
  const obs::Registry& metrics() const { return metrics_; }

 private:
  /// Converged solution at `mol`, via cache / warm start / builder reuse.
  const scf::KsResult& solve(const chem::Molecule& mol) const;
  /// KsOptions for this solve/gradient: options_ plus the shared builder.
  scf::KsOptions solve_options() const;

  std::string basis_name_;
  scf::KsOptions options_;
  SurfaceAccel accel_;

  mutable obs::Registry metrics_{1};
  obs::Counter solves_;
  obs::Counter cache_hits_;
  obs::Counter warm_starts_;
  obs::Counter iterations_;
  obs::Counter rebind_reused_;

  // Cross-call state (the surface is logically const to the integrator;
  // everything below is acceleration-only and does not change results
  // beyond SCF-convergence noise).
  mutable std::unique_ptr<chem::BasisSet> basis_;
  mutable std::unique_ptr<hfx::FockBuilder> builder_;
  mutable bool have_cache_ = false;
  mutable chem::Molecule cached_mol_;
  mutable scf::KsResult cached_;
  mutable std::shared_ptr<const linalg::Matrix> p_prev_;   ///< P_{n-1}
  mutable std::shared_ptr<const linalg::Matrix> p_prev2_;  ///< P_{n-2}
};

/// Analytic harmonic-bond surface for integrator tests: E = sum_b
/// k/2 (r_b - r0_b)^2 over the listed atom pairs.
class HarmonicBondPotential : public PotentialSurface {
 public:
  struct Bond {
    std::size_t i = 0, j = 0;
    double k = 1.0;   ///< Hartree / Bohr^2
    double r0 = 1.0;  ///< Bohr
  };

  explicit HarmonicBondPotential(std::vector<Bond> bonds)
      : bonds_(std::move(bonds)) {}

  double energy(const chem::Molecule& mol) const override;
  std::vector<chem::Vec3> forces(const chem::Molecule& mol) const override;

 private:
  std::vector<Bond> bonds_;
};

}  // namespace mthfx::md
