#pragma once

// Trajectory recording: multi-frame XYZ and a CSV energy log, the
// artifacts an MD user keeps.

#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "md/integrator.hpp"

namespace mthfx::md {

class TrajectoryWriter {
 public:
  /// Append one geometry (energies in the XYZ comment line).
  void add_frame(const chem::Molecule& mol, const MdFrame& frame);

  std::size_t num_frames() const { return frames_.size(); }

  /// Multi-frame XYZ text (concatenated standard XYZ blocks).
  std::string xyz() const;

  /// CSV: time_fs,potential,kinetic,total,temperature_k.
  std::string energy_csv() const;

  /// Write both files ("<prefix>.xyz", "<prefix>.csv"). Throws
  /// std::runtime_error when a file cannot be opened.
  void write(const std::string& prefix) const;

 private:
  struct Stored {
    chem::Molecule mol;
    MdFrame frame;
  };
  std::vector<Stored> frames_;
};

/// Convenience: run BOMD while recording every frame.
MdResult run_bomd_recorded(const chem::Molecule& initial,
                           const PotentialSurface& surface,
                           const MdOptions& options,
                           TrajectoryWriter& writer);

}  // namespace mthfx::md
