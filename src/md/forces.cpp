#include "md/forces.hpp"

#include <stdexcept>
#include <utility>

#include "scf/gradient.hpp"

namespace mthfx::md {

std::vector<chem::Vec3> PotentialSurface::forces(
    const chem::Molecule& mol) const {
  std::vector<chem::Vec3> f(mol.size(), chem::Vec3{0, 0, 0});
  chem::Molecule work = mol;
  for (std::size_t a = 0; a < mol.size(); ++a) {
    for (std::size_t d = 0; d < 3; ++d) {
      chem::Vec3 p = mol.atom(a).pos;
      p[d] += fd_step;
      work.set_position(a, p);
      const double ep = energy(work);
      p[d] -= 2.0 * fd_step;
      work.set_position(a, p);
      const double em = energy(work);
      work.set_position(a, mol.atom(a).pos);
      f[a][d] = -(ep - em) / (2.0 * fd_step);
    }
  }
  return f;
}

ScfPotential::ScfPotential(std::string basis_name, scf::KsOptions options,
                           SurfaceAccel accel)
    : basis_name_(std::move(basis_name)),
      options_(std::move(options)),
      accel_(accel),
      solves_(metrics_.counter("md.scf_solves")),
      cache_hits_(metrics_.counter("md.surface_cache_hits")),
      warm_starts_(metrics_.counter("md.warm_starts")),
      iterations_(metrics_.counter("md.scf_iterations")),
      rebind_reused_(metrics_.counter("md.rebind_reused_pairs")) {}

scf::KsOptions ScfPotential::solve_options() const {
  scf::KsOptions opt = options_;
  if (accel_.reuse_builder && builder_) opt.scf.shared_builder = builder_.get();
  return opt;
}

const scf::KsResult& ScfPotential::solve(const chem::Molecule& mol) const {
  if (accel_.cache_wavefunction && have_cache_ && cached_mol_ == mol) {
    cache_hits_.add(0);
    return cached_;
  }

  auto next = std::make_unique<chem::BasisSet>(
      chem::BasisSet::build(mol, basis_name_));
  if (accel_.reuse_builder) {
    if (builder_) {
      try {
        builder_->rebind(*next);
        rebind_reused_.add(0, builder_->last_rebind_reused_pairs());
      } catch (const std::invalid_argument&) {
        // Different shell structure (new molecule on this surface):
        // start a fresh builder rather than refusing the solve.
        builder_ = std::make_unique<hfx::FockBuilder>(*next,
                                                      options_.scf.hfx);
      }
    } else {
      builder_ = std::make_unique<hfx::FockBuilder>(*next, options_.scf.hfx);
    }
  }
  basis_ = std::move(next);

  scf::KsOptions opt = solve_options();
  bool warm = false;
  if (accel_.warm_start && p_prev_ &&
      p_prev_->rows() == basis_->num_functions()) {
    if (p_prev2_ && p_prev2_->rows() == basis_->num_functions()) {
      // Linear extrapolation of the density across the trajectory.
      auto guess = std::make_shared<linalg::Matrix>(
          2.0 * (*p_prev_) - (*p_prev2_));
      opt.scf.initial_density = std::move(guess);
    } else {
      opt.scf.initial_density = p_prev_;
    }
    warm = true;
  }

  auto result = scf::rks(mol, *basis_, opt);
  if (!result.scf.converged && warm) {
    // An extrapolated guess can overshoot through a hard geometry; the
    // core guess is slower but safe. Count only successful warm solves.
    opt.scf.initial_density.reset();
    result = scf::rks(mol, *basis_, opt);
    warm = false;
  }
  if (!result.scf.converged)
    throw std::runtime_error("ScfPotential: SCF did not converge");

  solves_.add(0);
  iterations_.add(0, result.scf.iterations);
  if (warm) warm_starts_.add(0);

  p_prev2_ = p_prev_;
  p_prev_ = std::make_shared<linalg::Matrix>(result.scf.density);
  cached_mol_ = mol;
  cached_ = std::move(result);
  have_cache_ = true;
  return cached_;
}

double ScfPotential::energy(const chem::Molecule& mol) const {
  return solve(mol).scf.energy;
}

std::vector<chem::Vec3> ScfPotential::forces(const chem::Molecule& mol) const {
  const scf::KsResult& result = solve(mol);
  const auto grad = scf::ks_gradient(mol, *basis_, solve_options(), result);
  std::vector<chem::Vec3> f(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) f[i] = -1.0 * grad[i];
  return f;
}

double HarmonicBondPotential::energy(const chem::Molecule& mol) const {
  double e = 0.0;
  for (const Bond& b : bonds_) {
    const double r = chem::distance(mol.atom(b.i).pos, mol.atom(b.j).pos);
    e += 0.5 * b.k * (r - b.r0) * (r - b.r0);
  }
  return e;
}

std::vector<chem::Vec3> HarmonicBondPotential::forces(
    const chem::Molecule& mol) const {
  std::vector<chem::Vec3> f(mol.size(), chem::Vec3{0, 0, 0});
  for (const Bond& b : bonds_) {
    const chem::Vec3 d = mol.atom(b.i).pos - mol.atom(b.j).pos;
    const double r = chem::norm(d);
    if (r < 1e-12) continue;
    const double mag = -b.k * (r - b.r0) / r;
    f[b.i] = f[b.i] + mag * d;
    f[b.j] = f[b.j] - mag * d;
  }
  return f;
}

}  // namespace mthfx::md
