#include "md/forces.hpp"

#include <stdexcept>

#include "chem/basis.hpp"
#include "scf/gradient.hpp"

namespace mthfx::md {

std::vector<chem::Vec3> PotentialSurface::forces(
    const chem::Molecule& mol) const {
  std::vector<chem::Vec3> f(mol.size(), chem::Vec3{0, 0, 0});
  chem::Molecule work = mol;
  for (std::size_t a = 0; a < mol.size(); ++a) {
    for (std::size_t d = 0; d < 3; ++d) {
      chem::Vec3 p = mol.atom(a).pos;
      p[d] += fd_step;
      work.set_position(a, p);
      const double ep = energy(work);
      p[d] -= 2.0 * fd_step;
      work.set_position(a, p);
      const double em = energy(work);
      work.set_position(a, mol.atom(a).pos);
      f[a][d] = -(ep - em) / (2.0 * fd_step);
    }
  }
  return f;
}

ScfPotential::ScfPotential(std::string basis_name, scf::KsOptions options)
    : basis_name_(std::move(basis_name)), options_(std::move(options)) {}

double ScfPotential::energy(const chem::Molecule& mol) const {
  const auto basis = chem::BasisSet::build(mol, basis_name_);
  const auto result = scf::rks(mol, basis, options_);
  if (!result.scf.converged)
    throw std::runtime_error("ScfPotential: SCF did not converge");
  return result.scf.energy;
}

std::vector<chem::Vec3> ScfPotential::forces(const chem::Molecule& mol) const {
  if (options_.functional != "hf") return PotentialSurface::forces(mol);
  // Analytic RHF gradient: one converged SCF instead of 6N.
  const auto basis = chem::BasisSet::build(mol, basis_name_);
  const auto result = scf::rhf(mol, basis, options_.scf);
  if (!result.converged)
    throw std::runtime_error("ScfPotential: SCF did not converge");
  const auto grad = scf::rhf_gradient(mol, basis, result);
  std::vector<chem::Vec3> f(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) f[i] = -1.0 * grad[i];
  return f;
}

double HarmonicBondPotential::energy(const chem::Molecule& mol) const {
  double e = 0.0;
  for (const Bond& b : bonds_) {
    const double r = chem::distance(mol.atom(b.i).pos, mol.atom(b.j).pos);
    e += 0.5 * b.k * (r - b.r0) * (r - b.r0);
  }
  return e;
}

std::vector<chem::Vec3> HarmonicBondPotential::forces(
    const chem::Molecule& mol) const {
  std::vector<chem::Vec3> f(mol.size(), chem::Vec3{0, 0, 0});
  for (const Bond& b : bonds_) {
    const chem::Vec3 d = mol.atom(b.i).pos - mol.atom(b.j).pos;
    const double r = chem::norm(d);
    if (r < 1e-12) continue;
    const double mag = -b.k * (r - b.r0) / r;
    f[b.i] = f[b.i] + mag * d;
    f[b.j] = f[b.j] - mag * d;
  }
  return f;
}

}  // namespace mthfx::md
