#include "md/optimize.hpp"

#include <algorithm>
#include <cmath>

namespace mthfx::md {

namespace {

double max_abs_force(const std::vector<chem::Vec3>& f) {
  double m = 0.0;
  for (const auto& fi : f)
    for (std::size_t d = 0; d < 3; ++d) m = std::max(m, std::abs(fi[d]));
  return m;
}

}  // namespace

OptimizeResult optimize(const chem::Molecule& initial,
                        const PotentialSurface& surface,
                        const OptimizeOptions& options) {
  OptimizeResult result;
  chem::Molecule mol = initial;
  const std::size_t n = mol.size();

  std::vector<chem::Vec3> f = surface.forces(mol);
  std::vector<chem::Vec3> f_prev;
  std::vector<chem::Vec3> dx_prev(n, chem::Vec3{0, 0, 0});
  double step = options.initial_step;

  for (int it = 0; it < options.max_steps; ++it) {
    result.max_force = max_abs_force(f);
    if (result.max_force < options.force_tolerance) {
      result.converged = true;
      break;
    }

    // Barzilai–Borwein step from the previous (dx, dg) pair:
    // step = <dx, dx> / <dx, -df> (falls back to the current step when
    // the curvature estimate is unusable).
    if (!f_prev.empty()) {
      double dxdx = 0.0, dxdg = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < 3; ++d) {
          const double dg = -(f[i][d] - f_prev[i][d]);  // gradient change
          dxdx += dx_prev[i][d] * dx_prev[i][d];
          dxdg += dx_prev[i][d] * dg;
        }
      if (dxdg > 1e-14) step = dxdx / dxdg;
    }

    // Displace along the forces with a per-coordinate trust radius.
    for (std::size_t i = 0; i < n; ++i) {
      chem::Vec3 dx{0, 0, 0};
      for (std::size_t d = 0; d < 3; ++d) {
        dx[d] = std::clamp(step * f[i][d], -options.max_displacement,
                           options.max_displacement);
      }
      dx_prev[i] = dx;
      mol.set_position(i, mol.atom(i).pos + dx);
    }

    f_prev = f;
    f = surface.forces(mol);
    result.energy_trace.push_back(surface.energy(mol));
    ++result.steps;
  }

  result.energy = surface.energy(mol);
  result.geometry = mol;
  return result;
}

}  // namespace mthfx::md
