#pragma once

// Geometry optimization on a PotentialSurface: gradient descent with
// Barzilai–Borwein step control. Used to relax the electrolyte species
// before energetics (E6/E7) and as an end-to-end consumer of the
// analytic RHF gradients.

#include "md/forces.hpp"

namespace mthfx::md {

struct OptimizeOptions {
  int max_steps = 100;
  double force_tolerance = 3e-4;   ///< max |F| component (Ha/Bohr)
  double initial_step = 0.5;       ///< Bohr^2/Ha scaling of first step
  double max_displacement = 0.3;   ///< trust radius per coordinate (Bohr)
};

struct OptimizeResult {
  bool converged = false;
  int steps = 0;
  double energy = 0.0;
  double max_force = 0.0;
  chem::Molecule geometry;
  std::vector<double> energy_trace;  ///< energy after each step
};

/// Minimize the surface starting from `initial`.
OptimizeResult optimize(const chem::Molecule& initial,
                        const PotentialSurface& surface,
                        const OptimizeOptions& options = {});

}  // namespace mthfx::md
