#pragma once

// Velocity-Verlet Born–Oppenheimer MD driver with optional Berendsen
// thermostat — the dynamics layer of the paper's PBE0 electrolyte runs
// (experiment E5).

#include <functional>
#include <memory>
#include <vector>

#include "fault/checkpoint.hpp"
#include "md/forces.hpp"

namespace mthfx::md {

struct MdOptions {
  double timestep_fs = 0.5;
  int num_steps = 10;  ///< total trajectory length, including resumed part
  /// 0 disables the thermostat (NVE).
  double target_temperature_k = 0.0;
  double berendsen_tau_fs = 20.0;
  /// Initial velocities: 0 => start at rest; otherwise Maxwell–Boltzmann.
  double initial_temperature_k = 0.0;
  unsigned seed = 1234;

  /// Resume from a checkpoint: positions/velocities replace the initial
  /// conditions and integration continues at step `frame_index` (the
  /// trajectory still ends at num_steps). The integrator is
  /// deterministic given that state, so a resumed run retraces the
  /// uninterrupted trajectory bit-for-bit.
  std::shared_ptr<const fault::MdCheckpoint> resume;
  /// Called with the post-step state every `checkpoint_every` steps.
  std::function<void(const fault::MdCheckpoint&)> checkpoint_sink;
  int checkpoint_every = 1;
};

struct MdFrame {
  double time_fs = 0.0;
  double potential = 0.0;    ///< Hartree
  double kinetic = 0.0;      ///< Hartree
  double total = 0.0;        ///< Hartree
  double temperature_k = 0.0;
};

struct MdResult {
  std::vector<MdFrame> frames;  ///< one per step, plus the initial frame
  chem::Molecule final_geometry;
  std::vector<chem::Vec3> final_velocities;

  /// Max |E_total(t) - E_total(0)| over the trajectory (drift measure).
  double max_energy_drift() const;
};

/// Run BOMD. The callback (if set) observes each completed frame.
MdResult run_bomd(const chem::Molecule& initial,
                  const PotentialSurface& surface, const MdOptions& options,
                  const std::function<void(const MdFrame&)>& on_frame = {});

}  // namespace mthfx::md
