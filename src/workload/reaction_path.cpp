#include "workload/reaction_path.hpp"

#include <stdexcept>

namespace mthfx::workload {

std::vector<chem::Molecule> linear_path(const chem::Molecule& reactant,
                                        const chem::Molecule& product,
                                        int num_images) {
  if (num_images < 2)
    throw std::invalid_argument("linear_path: need at least two images");
  if (reactant.size() != product.size() ||
      reactant.charge() != product.charge())
    throw std::invalid_argument("linear_path: endpoint mismatch");
  for (std::size_t i = 0; i < reactant.size(); ++i)
    if (reactant.atom(i).z != product.atom(i).z)
      throw std::invalid_argument("linear_path: atom order mismatch");

  std::vector<chem::Molecule> path;
  path.reserve(static_cast<std::size_t>(num_images));
  for (int img = 0; img < num_images; ++img) {
    const double lambda =
        static_cast<double>(img) / static_cast<double>(num_images - 1);
    chem::Molecule m = reactant;
    for (std::size_t i = 0; i < m.size(); ++i) {
      const chem::Vec3 p = (1.0 - lambda) * reactant.atom(i).pos +
                           lambda * product.atom(i).pos;
      m.set_position(i, p);
    }
    path.push_back(std::move(m));
  }
  return path;
}

std::vector<chem::Molecule> approach_path(const chem::Molecule& substrate,
                                          const chem::Molecule& attacker,
                                          const chem::Vec3& far_offset,
                                          const chem::Vec3& near_offset,
                                          int num_images) {
  if (num_images < 2)
    throw std::invalid_argument("approach_path: need at least two images");
  std::vector<chem::Molecule> path;
  path.reserve(static_cast<std::size_t>(num_images));
  for (int img = 0; img < num_images; ++img) {
    const double lambda =
        static_cast<double>(img) / static_cast<double>(num_images - 1);
    chem::Molecule combined = substrate;
    chem::Molecule moved = attacker;
    moved.translate((1.0 - lambda) * far_offset + lambda * near_offset);
    combined.append(moved);
    path.push_back(std::move(combined));
  }
  return path;
}

}  // namespace mthfx::workload
