#include "workload/geometries.hpp"

#include <stdexcept>

namespace mthfx::workload {

using chem::Molecule;

Molecule water() {
  return Molecule::from_xyz(
      "3\nwater (experimental geometry)\n"
      "O 0.000000 0.000000 0.117300\n"
      "H 0.000000 0.757200 -0.469200\n"
      "H 0.000000 -0.757200 -0.469200\n");
}

Molecule propylene_carbonate() {
  // Five-membered cyclic carbonate ring (O1-C2(=O3)-O4-C5-C6) with a
  // methyl on C5. Ring on a pentagon of standard bond lengths; methyl
  // and ring hydrogens at ~1.09 A.
  return Molecule::from_xyz(
      "13\npropylene carbonate C4H6O3\n"
      "C 0.000000 1.190000 0.000000\n"   // C2 carbonyl carbon
      "O 0.000000 2.390000 0.000000\n"   // O3 carbonyl oxygen
      "O 1.132000 0.368000 0.000000\n"   // O4 ring oxygen
      "O -1.132000 0.368000 0.000000\n"  // O1 ring oxygen
      "C 0.699000 -0.963000 0.000000\n"  // C5 methine
      "C -0.699000 -0.963000 0.000000\n" // C6 methylene
      "C 1.550000 -2.150000 0.400000\n"  // C7 methyl carbon
      "H 0.750000 -1.200000 -1.060000\n" // H on C5
      "H -1.100000 -1.350000 0.950000\n" // H on C6
      "H -1.100000 -1.350000 -0.950000\n"
      "H 2.520000 -2.400000 0.100000\n"  // methyl H
      "H 1.100000 -3.050000 0.550000\n"
      "H 1.900000 -1.850000 1.350000\n");
}

Molecule dmso() {
  return Molecule::from_xyz(
      "10\ndimethyl sulfoxide C2H6OS\n"
      "S 0.000000 0.000000 0.000000\n"
      "O 0.000000 0.000000 1.500000\n"
      "C 1.550000 0.000000 -0.910000\n"
      "C -1.550000 0.000000 -0.910000\n"
      "H 2.200000 0.850000 -0.700000\n"
      "H 2.200000 -0.850000 -0.700000\n"
      "H 1.300000 0.000000 -1.950000\n"
      "H -2.200000 0.850000 -0.700000\n"
      "H -2.200000 -0.850000 -0.700000\n"
      "H -1.300000 0.000000 -1.950000\n");
}

Molecule lithium_peroxide() {
  // Planar D2h rhombus: peroxide unit bridged by two lithiums.
  return Molecule::from_xyz(
      "4\nlithium peroxide Li2O2\n"
      "O 0.775000 0.000000 0.000000\n"
      "O -0.775000 0.000000 0.000000\n"
      "Li 0.000000 1.550000 0.000000\n"
      "Li 0.000000 -1.550000 0.000000\n");
}

Molecule lithium_superoxide_anion() {
  // Side-on LiO2^- (singlet closed-shell model of the reactive
  // superoxide species).
  Molecule m = Molecule::from_xyz(
      "3\nlithium superoxide anion LiO2-\n"
      "Li 0.000000 0.000000 0.000000\n"
      "O 1.700000 0.665000 0.000000\n"
      "O 1.700000 -0.665000 0.000000\n");
  m.set_charge(-1);
  return m;
}

Molecule hydroxide() {
  Molecule m = Molecule::from_xyz(
      "2\nhydroxide\n"
      "O 0.000000 0.000000 0.000000\n"
      "H 0.000000 0.000000 0.960000\n");
  m.set_charge(-1);
  return m;
}

Molecule h2() {
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.4});
  return m;
}

Molecule by_name(const std::string& name) {
  if (name == "water") return water();
  if (name == "pc") return propylene_carbonate();
  if (name == "dmso") return dmso();
  if (name == "li2o2") return lithium_peroxide();
  if (name == "lio2-") return lithium_superoxide_anion();
  if (name == "oh-") return hydroxide();
  if (name == "h2") return h2();
  throw std::invalid_argument("workload::by_name: unknown molecule " + name);
}

}  // namespace mthfx::workload
