#pragma once

// Linear-synchronous-transit reaction paths: interpolated geometries
// between a reactant and a product arrangement, used to scan the
// peroxide-attack energetics on propylene carbonate (experiment E7).

#include <vector>

#include "chem/molecule.hpp"

namespace mthfx::workload {

/// `num_images` geometries linearly interpolating atom positions from
/// `reactant` (lambda = 0) to `product` (lambda = 1), endpoints included.
/// The two molecules must have identical atom sequences (same Z order)
/// and the same charge; throws std::invalid_argument otherwise.
std::vector<chem::Molecule> linear_path(const chem::Molecule& reactant,
                                        const chem::Molecule& product,
                                        int num_images);

/// A rigid-approach path: `attacker` moved from `far_offset` to
/// `near_offset` (Bohr, applied to every attacker atom) toward the fixed
/// `substrate`, producing num_images combined geometries.
std::vector<chem::Molecule> approach_path(const chem::Molecule& substrate,
                                          const chem::Molecule& attacker,
                                          const chem::Vec3& far_offset,
                                          const chem::Vec3& near_offset,
                                          int num_images);

}  // namespace mthfx::workload
