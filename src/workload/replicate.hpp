#pragma once

// Condensed-phase-like cluster construction: replicate a solvent molecule
// on a cubic lattice. The paper's scaling runs use condensed-phase boxes;
// lattice replication reproduces the property that matters for the HFX
// workload — quartet-task counts and screening survival growing with the
// number of interacting molecule pairs.

#include <cstdint>

#include "chem/molecule.hpp"

namespace mthfx::workload {

struct LatticeSpec {
  int nx = 1, ny = 1, nz = 1;
  double spacing_bohr = 10.0;  ///< lattice constant
};

/// Replicate `unit` on an nx x ny x nz lattice.
chem::Molecule replicate(const chem::Molecule& unit, const LatticeSpec& spec);

/// Smallest cubic-ish lattice holding at least `count` copies.
LatticeSpec lattice_for_count(int count, double spacing_bohr = 10.0);

/// Exactly `count` copies of `unit`, placed on the first `count` sites of
/// the covering lattice (row-major).
chem::Molecule cluster_of(const chem::Molecule& unit, int count,
                          double spacing_bohr = 10.0);

/// Liquid-like box: `count` copies of `unit` on a jittered cubic lattice
/// whose spacing reproduces the requested mass density (g/cm³ from the
/// unit's standard atomic weights). Jitter displaces each copy by a
/// seeded, reproducible fraction of the spacing; any draw that brings two
/// atoms of different copies closer than min_distance_bohr is re-drawn
/// (the unjittered site is the final candidate). When no draw clears the
/// floor — rigid parallel copies at a true liquid density can leave less
/// room than a generous floor asks for — the draw with the largest
/// separation wins, so the packing degrades gracefully instead of
/// admitting a clash worse than every rejected draw. At spacings with
/// slack (lower densities) the floor is honored exactly. Deterministic
/// in (unit, count, density, seed).
chem::Molecule box_of(const chem::Molecule& unit, int count,
                      double density_g_cm3, std::uint64_t seed = 0,
                      double min_distance_bohr = 3.0);

/// Lattice spacing (Bohr) at which `count` copies of `unit` on a cubic
/// lattice have the given mass density. Exposed for tests and benches.
double box_spacing_bohr(const chem::Molecule& unit, double density_g_cm3);

}  // namespace mthfx::workload
