#pragma once

// Condensed-phase-like cluster construction: replicate a solvent molecule
// on a cubic lattice. The paper's scaling runs use condensed-phase boxes;
// lattice replication reproduces the property that matters for the HFX
// workload — quartet-task counts and screening survival growing with the
// number of interacting molecule pairs.

#include "chem/molecule.hpp"

namespace mthfx::workload {

struct LatticeSpec {
  int nx = 1, ny = 1, nz = 1;
  double spacing_bohr = 10.0;  ///< lattice constant
};

/// Replicate `unit` on an nx x ny x nz lattice.
chem::Molecule replicate(const chem::Molecule& unit, const LatticeSpec& spec);

/// Smallest cubic-ish lattice holding at least `count` copies.
LatticeSpec lattice_for_count(int count, double spacing_bohr = 10.0);

/// Exactly `count` copies of `unit`, placed on the first `count` sites of
/// the covering lattice (row-major).
chem::Molecule cluster_of(const chem::Molecule& unit, int count,
                          double spacing_bohr = 10.0);

}  // namespace mthfx::workload
