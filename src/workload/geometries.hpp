#pragma once

// Built-in molecular geometries for the Li/air electrolyte studies:
// the species the paper's application section revolves around
// (propylene carbonate and its degradation partners, the proposed
// alternative solvent DMSO, lithium peroxide/superoxide) plus water for
// calibration workloads. Geometries are chemically sensible built-up
// structures (standard bond lengths/angles), adequate for benchmark
// workloads and relative energetics; they are not re-optimized minima.

#include "chem/molecule.hpp"

namespace mthfx::workload {

/// Water (experimental geometry).
chem::Molecule water();

/// Propylene carbonate, C4H6O3 — the electrolyte the paper shows degrading.
chem::Molecule propylene_carbonate();

/// Dimethyl sulfoxide, C2H6OS — an alternative solvent candidate.
chem::Molecule dmso();

/// Lithium peroxide Li2O2 (molecular model of the discharge product).
chem::Molecule lithium_peroxide();

/// Lithium superoxide LiO2 (the reactive intermediate), charge -1 overall
/// singlet model (LiO2^-) so the closed-shell SCF applies.
chem::Molecule lithium_superoxide_anion();

/// Hydroxide ion OH- (simple nucleophile used in attack-path tests).
chem::Molecule hydroxide();

/// Molecular hydrogen at R = 1.4 a0.
chem::Molecule h2();

/// Lookup by name ("water", "pc", "dmso", "li2o2", "lio2-", "oh-", "h2").
/// Throws std::invalid_argument for unknown names.
chem::Molecule by_name(const std::string& name);

}  // namespace mthfx::workload
