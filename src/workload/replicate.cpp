#include "workload/replicate.hpp"

#include <cmath>

namespace mthfx::workload {

chem::Molecule replicate(const chem::Molecule& unit, const LatticeSpec& spec) {
  chem::Molecule out;
  for (int ix = 0; ix < spec.nx; ++ix)
    for (int iy = 0; iy < spec.ny; ++iy)
      for (int iz = 0; iz < spec.nz; ++iz) {
        chem::Molecule copy = unit;
        copy.translate({ix * spec.spacing_bohr, iy * spec.spacing_bohr,
                        iz * spec.spacing_bohr});
        out.append(copy);
      }
  return out;
}

LatticeSpec lattice_for_count(int count, double spacing_bohr) {
  LatticeSpec spec;
  spec.spacing_bohr = spacing_bohr;
  int n = 1;
  while (n * n * n < count) ++n;
  spec.nx = n;
  spec.ny = n;
  spec.nz = (count + n * n - 1) / (n * n);
  return spec;
}

chem::Molecule cluster_of(const chem::Molecule& unit, int count,
                          double spacing_bohr) {
  const LatticeSpec spec = lattice_for_count(count, spacing_bohr);
  chem::Molecule out;
  int placed = 0;
  for (int ix = 0; ix < spec.nx && placed < count; ++ix)
    for (int iy = 0; iy < spec.ny && placed < count; ++iy)
      for (int iz = 0; iz < spec.nz && placed < count; ++iz, ++placed) {
        chem::Molecule copy = unit;
        copy.translate({ix * spacing_bohr, iy * spacing_bohr,
                        iz * spacing_bohr});
        out.append(copy);
      }
  return out;
}

}  // namespace mthfx::workload
