#include "workload/replicate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "chem/elements.hpp"

namespace mthfx::workload {

chem::Molecule replicate(const chem::Molecule& unit, const LatticeSpec& spec) {
  chem::Molecule out;
  for (int ix = 0; ix < spec.nx; ++ix)
    for (int iy = 0; iy < spec.ny; ++iy)
      for (int iz = 0; iz < spec.nz; ++iz) {
        chem::Molecule copy = unit;
        copy.translate({ix * spec.spacing_bohr, iy * spec.spacing_bohr,
                        iz * spec.spacing_bohr});
        out.append(copy);
      }
  return out;
}

LatticeSpec lattice_for_count(int count, double spacing_bohr) {
  LatticeSpec spec;
  spec.spacing_bohr = spacing_bohr;
  int n = 1;
  while (n * n * n < count) ++n;
  spec.nx = n;
  spec.ny = n;
  spec.nz = (count + n * n - 1) / (n * n);
  return spec;
}

chem::Molecule cluster_of(const chem::Molecule& unit, int count,
                          double spacing_bohr) {
  const LatticeSpec spec = lattice_for_count(count, spacing_bohr);
  chem::Molecule out;
  int placed = 0;
  for (int ix = 0; ix < spec.nx && placed < count; ++ix)
    for (int iy = 0; iy < spec.ny && placed < count; ++iy)
      for (int iz = 0; iz < spec.nz && placed < count; ++iz, ++placed) {
        chem::Molecule copy = unit;
        copy.translate({ix * spacing_bohr, iy * spacing_bohr,
                        iz * spacing_bohr});
        out.append(copy);
      }
  return out;
}

namespace {

// splitmix64: tiny, seed-deterministic, no <random> engine state to
// worry about across standard libraries.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Uniform double in [-1, 1).
double uniform_pm1(std::uint64_t& state) {
  return 2.0 * (static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53) -
         1.0;
}

constexpr double kGramPerAmu = 1.66053906660e-24;
constexpr double kCmPerBohr = 0.529177210903e-8;
// Jitter amplitude as a fraction of the lattice spacing per axis: large
// enough to break lattice symmetry, small enough that re-draws from the
// min-distance check are rare.
constexpr double kJitterFraction = 0.15;

}  // namespace

double box_spacing_bohr(const chem::Molecule& unit, double density_g_cm3) {
  double mass_amu = 0.0;
  for (const chem::Atom& a : unit.atoms())
    mass_amu += chem::element(a.z).mass_amu;
  const double volume_cm3 = mass_amu * kGramPerAmu / density_g_cm3;
  const double volume_bohr3 = volume_cm3 / (kCmPerBohr * kCmPerBohr *
                                            kCmPerBohr);
  return std::cbrt(volume_bohr3);
}

chem::Molecule box_of(const chem::Molecule& unit, int count,
                      double density_g_cm3, std::uint64_t seed,
                      double min_distance_bohr) {
  const double spacing = box_spacing_bohr(unit, density_g_cm3);
  const LatticeSpec spec = lattice_for_count(count, spacing);
  // Decorrelate seed 0 from seed 1 etc. before the first draw.
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL;

  chem::Molecule out;
  int placed = 0;
  for (int ix = 0; ix < spec.nx && placed < count; ++ix)
    for (int iy = 0; iy < spec.ny && placed < count; ++iy)
      for (int iz = 0; iz < spec.nz && placed < count; ++iz, ++placed) {
        const chem::Vec3 site{ix * spacing, iy * spacing, iz * spacing};
        // Re-draw the jitter while it violates the inter-copy minimum
        // distance; the unjittered site is the last candidate. If no
        // draw clears min_distance_bohr — a rigid parallel lattice at a
        // true liquid density cannot always honor a generous floor —
        // keep the draw with the LARGEST separation seen rather than an
        // unchecked fallback, so the constraint degrades to best-effort
        // instead of silently admitting clashes worse than every
        // rejected draw.
        chem::Molecule best;
        double best_sep = -1.0;
        for (int attempt = 0; attempt <= 8; ++attempt) {
          const double amp = attempt < 8 ? kJitterFraction * spacing : 0.0;
          chem::Molecule copy = unit;
          copy.translate({site.x + amp * uniform_pm1(state),
                          site.y + amp * uniform_pm1(state),
                          site.z + amp * uniform_pm1(state)});
          double sep = std::numeric_limits<double>::infinity();
          for (const chem::Atom& a : copy.atoms())
            for (const chem::Atom& b : out.atoms())
              sep = std::min(sep, chem::distance(a.pos, b.pos));
          if (sep > best_sep) {
            best_sep = sep;
            best = std::move(copy);
          }
          if (best_sep >= min_distance_bohr) break;
        }
        out.append(best);
      }
  return out;
}

}  // namespace mthfx::workload
