#pragma once

// Task driver behind the mthfx CLI and the screening engine: runs the
// requested calculation and returns both a typed result record and a
// human-readable report.

#include <cstddef>
#include <string>
#include <vector>

#include "app/input.hpp"
#include "chem/molecule.hpp"

namespace mthfx::app {

/// Typed outcome of one calculation. The engine serializes this (via
/// engine/report.hpp) into the per-job JSON record; `report` carries the
/// same human-readable text `run` always produced.
struct StructuredResult {
  bool ok = false;          ///< task-level success (SCF converged, MD ran)
  bool converged = false;   ///< SCF convergence flag
  std::string reference;    ///< driver used: "rks" | "uks" | "bomd"
  double energy = 0.0;      ///< final total energy (Ha)
  std::size_t scf_iterations = 0;
  double xc_energy = 0.0;               ///< 0 for method hf
  double exact_exchange_energy = 0.0;   ///< 0 for method hf
  double homo_lumo_gap_ev = 0.0;        ///< closed-shell tasks only
  double dipole_debye = 0.0;            ///< converged closed-shell only
  std::vector<chem::Vec3> gradient;     ///< filled for task gradient (restricted)
  std::size_t md_frames = 0;            ///< task md only
  double md_max_energy_drift = 0.0;     ///< task md only (Ha)
  std::string report;  ///< formatted multi-line summary
};

/// Backwards-compatible summary view (the original CLI contract).
struct RunResult {
  bool ok = false;
  double energy = 0.0;
  std::string report;  ///< formatted multi-line summary
};

/// Execute the input's task. Never throws for chemistry-level failures
/// (they are reported in `report` with ok = false); throws
/// std::runtime_error only for unusable inputs.
StructuredResult run_structured(const Input& input);

/// Thin wrapper over run_structured keeping the original interface.
RunResult run(const Input& input);

}  // namespace mthfx::app
