#pragma once

// Task driver behind the mthfx CLI: runs the requested calculation and
// renders a human-readable report.

#include <string>

#include "app/input.hpp"

namespace mthfx::app {

struct RunResult {
  bool ok = false;
  double energy = 0.0;
  std::string report;  ///< formatted multi-line summary
};

/// Execute the input's task. Never throws for chemistry-level failures
/// (they are reported in `report` with ok = false); throws
/// std::runtime_error only for unusable inputs.
RunResult run(const Input& input);

}  // namespace mthfx::app
