#include "app/input.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "chem/elements.hpp"

namespace mthfx::app {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("input line " + std::to_string(line) + ": " + msg);
}

std::string strip_comment(const std::string& line) {
  const auto pos = line.find('#');
  return pos == std::string::npos ? line : line.substr(0, pos);
}

// A line must be fully consumed once its grammar is satisfied; leftover
// tokens are almost always a typo (e.g. a fourth coordinate, two values
// for one keyword) and silently ignoring them hides the mistake.
void reject_trailing(std::istringstream& line, int lineno,
                     const std::string& context) {
  std::string extra;
  if (line >> extra)
    fail(lineno, "unexpected trailing token '" + extra + "' after " + context);
}

}  // namespace

Input parse_input(const std::string& text) {
  Input input;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  bool in_geometry = false;
  bool saw_geometry = false;
  double unit_scale = chem::kBohrPerAngstrom;
  chem::Molecule mol;
  // Every keyword (geometry included) may appear at most once: "last one
  // wins" silently discards half of a conflicting pair, which in a
  // screening campaign means running the wrong calculation without any
  // hint. Duplicates are rejected by name instead.
  std::set<std::string> seen_keys;
  auto reject_duplicate = [&seen_keys](int at_line, const std::string& key) {
    if (!seen_keys.insert(key).second)
      fail(at_line, "duplicate keyword '" + key +
                        "' (each keyword may appear only once)");
  };

  while (std::getline(in, raw)) {
    ++lineno;
    std::istringstream line(strip_comment(raw));
    std::string key;
    if (!(line >> key)) continue;  // blank line

    if (in_geometry) {
      if (key == "end") {
        reject_trailing(line, lineno, "'end'");
        in_geometry = false;
        continue;
      }
      const auto z = chem::atomic_number(key);
      if (!z) fail(lineno, "unknown element symbol '" + key + "'");
      double xc = 0, yc = 0, zc = 0;
      if (!(line >> xc >> yc >> zc))
        fail(lineno, "expected three coordinates after element symbol");
      reject_trailing(line, lineno, "atom coordinates");
      mol.add_atom(*z, {xc * unit_scale, yc * unit_scale, zc * unit_scale});
      continue;
    }

    if (key == "geometry") {
      reject_duplicate(lineno, key);
      std::string unit = "angstrom";
      line >> unit;
      if (unit == "angstrom")
        unit_scale = chem::kBohrPerAngstrom;
      else if (unit == "bohr")
        unit_scale = 1.0;
      else
        fail(lineno, "geometry unit must be 'angstrom' or 'bohr'");
      reject_trailing(line, lineno, "geometry unit");
      in_geometry = true;
      saw_geometry = true;
      continue;
    }

    std::string value;
    if (!(line >> value)) fail(lineno, "keyword '" + key + "' needs a value");
    reject_trailing(line, lineno, "value for keyword '" + key + "'");
    reject_duplicate(lineno, key);

    if (key == "method") {
      input.method = value;
    } else if (key == "basis") {
      input.basis = value;
    } else if (key == "reference") {
      if (value == "auto")
        input.reference = Reference::kAuto;
      else if (value == "restricted")
        input.reference = Reference::kRestricted;
      else if (value == "unrestricted")
        input.reference = Reference::kUnrestricted;
      else
        fail(lineno, "reference must be auto|restricted|unrestricted");
    } else if (key == "charge") {
      input.charge = std::stoi(value);
    } else if (key == "multiplicity") {
      input.multiplicity = std::stoi(value);
      if (input.multiplicity < 1) fail(lineno, "multiplicity must be >= 1");
    } else if (key == "task") {
      if (value == "energy")
        input.task = Task::kEnergy;
      else if (value == "gradient")
        input.task = Task::kGradient;
      else if (value == "md")
        input.task = Task::kMd;
      else
        fail(lineno, "task must be energy|gradient|md");
    } else if (key == "eps_schwarz") {
      input.eps_schwarz = std::stod(value);
    } else if (key == "sparsity") {
      if (value != "auto" && value != "dense" && value != "blocked")
        fail(lineno, "sparsity must be auto|dense|blocked");
      input.sparsity = value;
    } else if (key == "md_steps") {
      input.md_steps = std::stoi(value);
    } else if (key == "md_timestep_fs") {
      input.md_timestep_fs = std::stod(value);
    } else if (key == "md_temperature_k") {
      input.md_temperature_k = std::stod(value);
    } else if (key == "grid_radial") {
      input.grid_radial = std::stoi(value);
    } else if (key == "grid_angular") {
      input.grid_angular = std::stoi(value);
    } else if (key == "threads") {
      const int n = std::stoi(value);
      if (n < 0) fail(lineno, "threads must be >= 0 (0 = hardware)");
      input.num_threads = static_cast<std::size_t>(n);
    } else if (key == "fault_spec") {
      try {
        input.fault = fault::parse_fault_spec(value);
      } catch (const std::invalid_argument& e) {
        fail(lineno, e.what());
      }
    } else {
      fail(lineno, "unknown keyword '" + key + "'");
    }
  }

  if (in_geometry) throw std::runtime_error("input: geometry block not closed");
  if (!saw_geometry || mol.size() == 0)
    throw std::runtime_error("input: no geometry given");

  mol.set_charge(input.charge);
  input.molecule = mol;

  // The environment wins over the input file, so a failure-injection
  // sweep can reuse one input deck unmodified.
  const fault::FaultOptions env_fault = fault::fault_options_from_env();
  if (env_fault.enabled()) input.fault = env_fault;

  // Consistency: electron count vs. multiplicity parity.
  const int nelec = mol.num_electrons();
  const int nopen = input.multiplicity - 1;
  if (nelec < nopen || (nelec - nopen) % 2 != 0)
    throw std::runtime_error(
        "input: electron count inconsistent with multiplicity");
  return input;
}

Input parse_input_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("input: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_input(buffer.str());
}

}  // namespace mthfx::app
