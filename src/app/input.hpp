#pragma once

// Input-file format for the mthfx command-line driver: simple
// keyword/value lines plus a geometry block.
//
//   method pbe0            # hf | lda | pbe | pbe0
//   reference auto         # auto | restricted | unrestricted
//   basis sto-3g
//   charge 0
//   multiplicity 1
//   task energy            # energy | gradient | md
//   eps_schwarz 1e-10
//   md_steps 20
//   md_timestep_fs 0.2
//   md_temperature_k 300
//   grid_radial 40
//   grid_angular 38
//   threads 0              # HFX thread budget (0 = hardware)
//   fault_spec fail=0.01,seed=42   # seeded fault injection (optional)
//   geometry angstrom      # or: geometry bohr
//   O 0.0 0.0 0.1173
//   H 0.0 0.7572 -0.4692
//   H 0.0 -0.7572 -0.4692
//   end
//
// '#' starts a comment anywhere on a line. Every keyword (geometry
// included) may appear at most once; duplicates are a parse error.

#include <memory>
#include <string>

#include "chem/molecule.hpp"
#include "fault/cancel.hpp"
#include "fault/injector.hpp"

namespace mthfx::app {

enum class Task { kEnergy, kGradient, kMd };
enum class Reference { kAuto, kRestricted, kUnrestricted };

struct Input {
  std::string method = "hf";
  std::string basis = "sto-3g";
  Reference reference = Reference::kAuto;
  int charge = 0;
  int multiplicity = 1;
  Task task = Task::kEnergy;
  double eps_schwarz = 1e-10;
  /// Pair/J-K sparsity regime: "auto" (blocked above the nbf threshold),
  /// "dense" (always the original paths), "blocked" (force the culled
  /// cell-list + purification pipeline).
  std::string sparsity = "auto";
  int md_steps = 10;
  double md_timestep_fs = 0.2;
  double md_temperature_k = 0.0;
  int grid_radial = 40;
  int grid_angular = 38;
  /// Thread budget for the HFX builds of this run (0 = hardware
  /// concurrency, resolved through parallel::resolve_thread_count). The
  /// screening engine caps this per job so a campaign shares one budget.
  std::size_t num_threads = 0;
  /// Fault injection for resilience testing: from the `fault_spec`
  /// keyword, overridden by the MTHFX_FAULT_SPEC environment variable.
  fault::FaultOptions fault;
  /// Set by the CLI (--checkpoint= / --restore=), not the input file.
  std::string checkpoint_path;
  std::string restore_path;
  /// Cooperative cancellation, polled at every SCF iteration. Set by the
  /// engine's deadline watchdog; an execution-policy field like the
  /// paths above, so it never participates in the cache fingerprint.
  std::shared_ptr<const fault::CancelToken> cancel;
  chem::Molecule molecule;
};

/// Parse input text. Throws std::runtime_error with a line-numbered
/// message on malformed input.
Input parse_input(const std::string& text);

/// Read and parse a file. Throws std::runtime_error if unreadable.
Input parse_input_file(const std::string& path);

}  // namespace mthfx::app
