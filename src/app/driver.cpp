#include "app/driver.hpp"

#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "fault/checkpoint.hpp"
#include "md/integrator.hpp"
#include "scf/gradient.hpp"
#include "scf/properties.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"
#include "scf/uks.hpp"

namespace mthfx::app {

namespace {

bool wants_unrestricted(const Input& input) {
  if (input.reference == Reference::kRestricted) return false;
  if (input.reference == Reference::kUnrestricted) return true;
  return input.multiplicity != 1 || input.molecule.num_electrons() % 2 != 0;
}

hfx::SparsityMode sparsity_mode(const Input& input) {
  if (input.sparsity == "dense") return hfx::SparsityMode::kDense;
  if (input.sparsity == "blocked") return hfx::SparsityMode::kBlocked;
  return hfx::SparsityMode::kAuto;
}

void print_geometry(std::ostringstream& out, const chem::Molecule& mol) {
  out << "geometry (" << mol.size() << " atoms, charge " << mol.charge()
      << ", " << mol.num_electrons() << " electrons):\n";
  for (const auto& a : mol.atoms())
    out << "  " << chem::element_symbol(a.z) << "  " << a.pos.x << " "
        << a.pos.y << " " << a.pos.z << "  (bohr)\n";
}

}  // namespace

StructuredResult run_structured(const Input& input) {
  StructuredResult result;
  std::ostringstream out;
  out.precision(10);

  const auto& mol = input.molecule;
  const auto basis = chem::BasisSet::build(mol, input.basis);
  print_geometry(out, mol);
  out << "basis " << input.basis << ": " << basis.num_functions()
      << " AOs in " << basis.num_shells() << " shells\n";
  const bool open_shell = wants_unrestricted(input);

  // Resilience wiring: restore point, checkpoint sinks, fault injection.
  std::shared_ptr<const fault::ScfCheckpoint> scf_resume;
  std::shared_ptr<const fault::MdCheckpoint> md_resume;
  if (!input.restore_path.empty()) {
    const obs::Json ckpt_json =
        fault::load_checkpoint_json(input.restore_path);
    const std::string kind = fault::checkpoint_kind(ckpt_json);
    if (kind == "scf") {
      if (input.task == Task::kMd)
        throw std::runtime_error(
            "restore: SCF checkpoint cannot resume an md task");
      scf_resume = std::make_shared<fault::ScfCheckpoint>(
          fault::scf_checkpoint_from_json(ckpt_json));
      out << "restoring SCF state from " << input.restore_path
          << " (iteration " << scf_resume->iteration << ")\n";
    } else if (kind == "md") {
      if (input.task != Task::kMd)
        throw std::runtime_error(
            "restore: MD checkpoint requires task md");
      md_resume = std::make_shared<fault::MdCheckpoint>(
          fault::md_checkpoint_from_json(ckpt_json));
      out << "restoring MD state from " << input.restore_path << " (frame "
          << md_resume->frame_index << ")\n";
    } else {
      throw std::runtime_error("restore: unrecognized checkpoint kind in " +
                               input.restore_path);
    }
  }
  std::function<void(const fault::ScfCheckpoint&)> scf_sink;
  std::function<void(const fault::MdCheckpoint&)> md_sink;
  if (!input.checkpoint_path.empty()) {
    if (input.task == Task::kMd)
      md_sink = [path = input.checkpoint_path](const fault::MdCheckpoint& c) {
        fault::save_checkpoint(path, c);
      };
    else
      scf_sink = [path = input.checkpoint_path](
                     const fault::ScfCheckpoint& c) {
        fault::save_checkpoint(path, c);
      };
  }
  if (input.fault.enabled()) {
    input.fault.validate();
    out << "fault injection: fail=" << input.fault.fail_rate
        << " stall=" << input.fault.stall_rate
        << " corrupt=" << input.fault.corrupt_rate
        << " seed=" << input.fault.seed
        << " retries=" << input.fault.max_retries << "\n";
  }
  out << "method " << input.method << ", task ";

  if (input.task == Task::kEnergy || input.task == Task::kGradient) {
    out << (input.task == Task::kEnergy ? "energy" : "gradient") << "\n\n";

    if (open_shell) {
      scf::UksOptions opts;
      opts.functional = input.method;
      opts.scf.hfx.eps_schwarz = input.eps_schwarz;
      opts.scf.hfx.num_threads = input.num_threads;
      opts.scf.hfx.sparsity.mode = sparsity_mode(input);
      opts.scf.hfx.fault = input.fault;
      opts.scf.hfx.validate_tasks = input.fault.enabled();
      opts.scf.resume = scf_resume;
      opts.scf.checkpoint_sink = scf_sink;
      opts.scf.cancel = input.cancel;
      opts.grid.radial_points = input.grid_radial;
      opts.grid.angular_points = input.grid_angular;
      const auto r = scf::uks(mol, basis, input.multiplicity, opts);
      result.ok = r.scf.converged;
      result.converged = r.scf.converged;
      result.reference = "uks";
      result.energy = r.scf.energy;
      result.scf_iterations = r.scf.iterations;
      result.xc_energy = r.xc_energy;
      result.exact_exchange_energy = r.exact_exchange_energy;
      out << "UKS(" << input.method << ") energy: " << r.scf.energy
          << " Ha  (converged=" << r.scf.converged << ", iterations "
          << r.scf.iterations << ")\n";
      if (input.method != "hf")
        out << "  E_xc = " << r.xc_energy
            << " Ha, exact exchange = " << r.exact_exchange_energy << " Ha\n";
      if (input.task == Task::kGradient)
        out << "  [gradient for unrestricted references is not implemented; "
               "use task energy]\n";
    } else {
      scf::KsOptions opts;
      opts.functional = input.method;
      opts.scf.hfx.eps_schwarz = input.eps_schwarz;
      opts.scf.hfx.num_threads = input.num_threads;
      opts.scf.hfx.sparsity.mode = sparsity_mode(input);
      opts.scf.hfx.fault = input.fault;
      opts.scf.hfx.validate_tasks = input.fault.enabled();
      opts.scf.resume = scf_resume;
      opts.scf.checkpoint_sink = scf_sink;
      opts.scf.cancel = input.cancel;
      opts.grid.radial_points = input.grid_radial;
      opts.grid.angular_points = input.grid_angular;
      const auto r = scf::rks(mol, basis, opts);
      result.ok = r.scf.converged;
      result.converged = r.scf.converged;
      result.reference = "rks";
      result.energy = r.scf.energy;
      result.scf_iterations = r.scf.iterations;
      result.xc_energy = r.xc_energy;
      result.exact_exchange_energy = r.exact_exchange_energy;
      out << "SCF(" << input.method << ") energy: " << r.scf.energy
          << " Ha  (converged=" << r.scf.converged << ", iterations "
          << r.scf.iterations << ")\n";
      result.homo_lumo_gap_ev =
          scf::homo_lumo_gap(r.scf, mol) * chem::kEvPerHartree;
      out << "  HOMO-LUMO gap: " << result.homo_lumo_gap_ev << " eV\n";
      if (r.scf.converged) {
        result.dipole_debye =
            scf::dipole_moment_debye(mol, basis, r.scf.density);
        out << "  dipole moment: " << result.dipole_debye << " D\n";
      }
      if (input.task == Task::kGradient && r.scf.converged) {
        std::vector<chem::Vec3> g;
        if (input.method == "hf") {
          // Re-run through the RHF driver to get orbital data.
          scf::ScfOptions rhf_opts;
          rhf_opts.hfx.eps_schwarz = input.eps_schwarz;
          rhf_opts.hfx.num_threads = input.num_threads;
          rhf_opts.hfx.sparsity.mode = sparsity_mode(input);
          rhf_opts.hfx.fault = input.fault;
          rhf_opts.hfx.validate_tasks = input.fault.enabled();
          rhf_opts.cancel = input.cancel;
          const auto hf = scf::rhf(mol, basis, rhf_opts);
          g = scf::rhf_gradient(mol, basis, hf);
        } else {
          g = scf::ks_gradient(mol, basis, opts, r);
        }
        result.gradient = g;
        out << "  gradient (Ha/bohr):\n";
        for (std::size_t i = 0; i < g.size(); ++i)
          out << "    " << chem::element_symbol(mol.atom(i).z) << "  "
              << g[i].x << " " << g[i].y << " " << g[i].z << "\n";
      }
    }
  } else {  // Task::kMd
    out << "md\n\n";
    if (open_shell) {
      out << "[BOMD supports closed-shell references only]\n";
      result.ok = false;
      result.reference = "bomd";
      result.report = out.str();
      return result;
    }
    scf::KsOptions ks;
    ks.functional = input.method;
    ks.scf.hfx.eps_schwarz = input.eps_schwarz;
    ks.scf.hfx.num_threads = input.num_threads;
    ks.scf.hfx.sparsity.mode = sparsity_mode(input);
    ks.scf.hfx.fault = input.fault;
    ks.scf.hfx.validate_tasks = input.fault.enabled();
    ks.scf.cancel = input.cancel;
    ks.grid.radial_points = input.grid_radial;
    ks.grid.angular_points = input.grid_angular;
    md::ScfPotential surface(input.basis, ks);

    md::MdOptions opts;
    opts.timestep_fs = input.md_timestep_fs;
    opts.num_steps = input.md_steps;
    opts.target_temperature_k = input.md_temperature_k;
    opts.initial_temperature_k = input.md_temperature_k;
    opts.resume = md_resume;
    opts.checkpoint_sink = md_sink;

    out << "BOMD: " << opts.num_steps << " steps of " << opts.timestep_fs
        << " fs on the " << input.method << " surface\n";
    out << "t/fs      E_total/Ha        T/K\n";
    const auto traj = md::run_bomd(mol, surface, opts,
                                   [&out](const md::MdFrame& f) {
                                     out << f.time_fs << "    " << f.total
                                         << "    " << f.temperature_k << "\n";
                                   });
    out << "max |energy drift|: " << traj.max_energy_drift() << " Ha\n";
    result.ok = true;
    result.converged = true;
    result.reference = "bomd";
    result.energy = traj.frames.back().total;
    result.md_frames = traj.frames.size();
    result.md_max_energy_drift = traj.max_energy_drift();
  }

  result.report = out.str();
  return result;
}

RunResult run(const Input& input) {
  StructuredResult r = run_structured(input);
  return {r.ok, r.energy, std::move(r.report)};
}

}  // namespace mthfx::app
