#include "app/driver.hpp"

#include <cmath>
#include <sstream>

#include "chem/basis.hpp"
#include "chem/elements.hpp"
#include "md/integrator.hpp"
#include "scf/gradient.hpp"
#include "scf/properties.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"
#include "scf/uks.hpp"

namespace mthfx::app {

namespace {

bool wants_unrestricted(const Input& input) {
  if (input.reference == Reference::kRestricted) return false;
  if (input.reference == Reference::kUnrestricted) return true;
  return input.multiplicity != 1 || input.molecule.num_electrons() % 2 != 0;
}

void print_geometry(std::ostringstream& out, const chem::Molecule& mol) {
  out << "geometry (" << mol.size() << " atoms, charge " << mol.charge()
      << ", " << mol.num_electrons() << " electrons):\n";
  for (const auto& a : mol.atoms())
    out << "  " << chem::element_symbol(a.z) << "  " << a.pos.x << " "
        << a.pos.y << " " << a.pos.z << "  (bohr)\n";
}

}  // namespace

RunResult run(const Input& input) {
  RunResult result;
  std::ostringstream out;
  out.precision(10);

  const auto& mol = input.molecule;
  const auto basis = chem::BasisSet::build(mol, input.basis);
  print_geometry(out, mol);
  out << "basis " << input.basis << ": " << basis.num_functions()
      << " AOs in " << basis.num_shells() << " shells\n";
  out << "method " << input.method << ", task ";

  const bool open_shell = wants_unrestricted(input);

  if (input.task == Task::kEnergy || input.task == Task::kGradient) {
    out << (input.task == Task::kEnergy ? "energy" : "gradient") << "\n\n";

    if (open_shell) {
      scf::UksOptions opts;
      opts.functional = input.method;
      opts.scf.hfx.eps_schwarz = input.eps_schwarz;
      opts.grid.radial_points = input.grid_radial;
      opts.grid.angular_points = input.grid_angular;
      const auto r = scf::uks(mol, basis, input.multiplicity, opts);
      result.ok = r.scf.converged;
      result.energy = r.scf.energy;
      out << "UKS(" << input.method << ") energy: " << r.scf.energy
          << " Ha  (converged=" << r.scf.converged << ", iterations "
          << r.scf.iterations << ")\n";
      if (input.method != "hf")
        out << "  E_xc = " << r.xc_energy
            << " Ha, exact exchange = " << r.exact_exchange_energy << " Ha\n";
      if (input.task == Task::kGradient)
        out << "  [gradient for unrestricted references is not implemented; "
               "use task energy]\n";
    } else {
      scf::KsOptions opts;
      opts.functional = input.method;
      opts.scf.hfx.eps_schwarz = input.eps_schwarz;
      opts.grid.radial_points = input.grid_radial;
      opts.grid.angular_points = input.grid_angular;
      const auto r = scf::rks(mol, basis, opts);
      result.ok = r.scf.converged;
      result.energy = r.scf.energy;
      out << "SCF(" << input.method << ") energy: " << r.scf.energy
          << " Ha  (converged=" << r.scf.converged << ", iterations "
          << r.scf.iterations << ")\n";
      out << "  HOMO-LUMO gap: "
          << scf::homo_lumo_gap(r.scf, mol) * chem::kEvPerHartree << " eV\n";
      if (r.scf.converged) {
        out << "  dipole moment: "
            << scf::dipole_moment_debye(mol, basis, r.scf.density) << " D\n";
      }
      if (input.task == Task::kGradient && r.scf.converged) {
        if (input.method != "hf") {
          out << "  [analytic gradients available for method hf only]\n";
        } else {
          // Re-run through the RHF driver to get orbital data.
          scf::ScfOptions rhf_opts;
          rhf_opts.hfx.eps_schwarz = input.eps_schwarz;
          const auto hf = scf::rhf(mol, basis, rhf_opts);
          const auto g = scf::rhf_gradient(mol, basis, hf);
          out << "  gradient (Ha/bohr):\n";
          for (std::size_t i = 0; i < g.size(); ++i)
            out << "    " << chem::element_symbol(mol.atom(i).z) << "  "
                << g[i].x << " " << g[i].y << " " << g[i].z << "\n";
        }
      }
    }
  } else {  // Task::kMd
    out << "md\n\n";
    if (open_shell) {
      out << "[BOMD supports closed-shell references only]\n";
      result.ok = false;
      result.report = out.str();
      return result;
    }
    scf::KsOptions ks;
    ks.functional = input.method;
    ks.scf.hfx.eps_schwarz = input.eps_schwarz;
    ks.grid.radial_points = input.grid_radial;
    ks.grid.angular_points = input.grid_angular;
    md::ScfPotential surface(input.basis, ks);

    md::MdOptions opts;
    opts.timestep_fs = input.md_timestep_fs;
    opts.num_steps = input.md_steps;
    opts.target_temperature_k = input.md_temperature_k;
    opts.initial_temperature_k = input.md_temperature_k;

    out << "BOMD: " << opts.num_steps << " steps of " << opts.timestep_fs
        << " fs on the " << input.method << " surface\n";
    out << "t/fs      E_total/Ha        T/K\n";
    const auto traj = md::run_bomd(mol, surface, opts,
                                   [&out](const md::MdFrame& f) {
                                     out << f.time_fs << "    " << f.total
                                         << "    " << f.temperature_k << "\n";
                                   });
    out << "max |energy drift|: " << traj.max_energy_drift() << " Ha\n";
    result.ok = true;
    result.energy = traj.frames.back().total;
  }

  result.report = out.str();
  return result;
}

}  // namespace mthfx::app
