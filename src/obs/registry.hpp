#pragma once

// Registry of named metrics with lock-free per-thread slots.
//
// Registration (by name) takes a mutex and is expected to happen before a
// parallel region; the hot-path `add` calls are a single relaxed atomic
// on a cache-line-padded slot owned by the calling thread, so recording
// never serializes workers and stays clean under TSan. Aggregation walks
// the slots at (or after) join.
//
// Counters accumulate integer event counts; timers accumulate seconds
// (plus an invocation count). `ScopedTimer` is the RAII front end used by
// the HFX builder for per-task busy time.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/stopwatch.hpp"

namespace mthfx::obs {

namespace detail {

/// One thread's accumulator, padded to avoid false sharing. Relaxed
/// atomics: each slot is written by exactly one thread; readers tolerate
/// (and the API documents) stale mid-run snapshots.
struct alignas(64) Slot {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> seconds{0.0};
};

}  // namespace detail

/// Lightweight handle to a registered counter. Copyable; valid for the
/// lifetime of the owning Registry. A default-constructed handle drops
/// all updates, so instrumentation can be optional at zero branch cost
/// to callers.
class Counter {
 public:
  Counter() = default;

  void add(std::size_t thread_id, std::uint64_t delta = 1) const noexcept {
    if (!slots_) return;
    slots_[thread_id].count.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(detail::Slot* slots) : slots_(slots) {}
  detail::Slot* slots_ = nullptr;
};

/// Handle to a registered timer; accumulates seconds and a sample count.
class Timer {
 public:
  Timer() = default;

  void add_seconds(std::size_t thread_id, double seconds) const noexcept {
    if (!slots_) return;
    detail::Slot& slot = slots_[thread_id];
    slot.seconds.store(slot.seconds.load(std::memory_order_relaxed) + seconds,
                       std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Timer(detail::Slot* slots) : slots_(slots) {}
  detail::Slot* slots_ = nullptr;
};

/// Times its own lifetime into `timer` on behalf of `thread_id`.
class ScopedTimer {
 public:
  ScopedTimer(Timer timer, std::size_t thread_id)
      : timer_(timer), thread_id_(thread_id) {}
  ~ScopedTimer() { timer_.add_seconds(thread_id_, watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer timer_;
  std::size_t thread_id_;
  Stopwatch watch_;
};

class Registry {
 public:
  /// Slots are sized for thread ids in [0, num_threads).
  explicit Registry(std::size_t num_threads);

  /// Register (or look up) a metric by name. Idempotent; a name keeps its
  /// first-registered kind.
  Counter counter(std::string_view name);
  Timer timer(std::string_view name);

  std::size_t num_threads() const { return num_threads_; }

  /// Aggregated views (sum over thread slots). Unknown names read as 0.
  std::uint64_t counter_total(std::string_view name) const;
  double timer_seconds(std::string_view name) const;
  std::uint64_t timer_count(std::string_view name) const;
  std::vector<std::uint64_t> counter_per_thread(std::string_view name) const;
  std::vector<double> timer_per_thread(std::string_view name) const;

  /// {"counters": {name: total}, "timers": {name: {seconds, count,
  /// per_thread_seconds}}} — the shape documented in
  /// docs/observability.md.
  Json to_json() const;

 private:
  struct Entry {
    std::string name;
    bool is_timer = false;
    std::unique_ptr<detail::Slot[]> slots;
  };

  detail::Slot* register_entry(std::string_view name, bool is_timer);
  const Entry* find(std::string_view name) const;

  std::size_t num_threads_;
  mutable std::mutex mutex_;
  // deque: stable Entry addresses across registrations, so handles taken
  // earlier stay valid while new metrics are added.
  std::deque<Entry> entries_;
};

/// Process-wide registry for subsystems with no natural Registry owner
/// (e.g. linalg, which is called from every driver). Sized with a single
/// slot: all threads share slot 0, which stays correct — slot updates are
/// atomic adds — at the cost of cache-line contention, acceptable for the
/// coarse call/sweep counters recorded here.
Registry& global_registry();

}  // namespace mthfx::obs
