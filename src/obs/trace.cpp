#include "obs/trace.hpp"

#include <algorithm>

namespace mthfx::obs {

Trace::Scope::Scope(Trace& trace, std::string name)
    : trace_(trace), name_(std::move(name)) {
  depth_ = trace_.open(&start_);
}

Trace::Scope::~Scope() { trace_.close(std::move(name_), depth_, start_); }

std::uint32_t Trace::open(double* start) {
  std::lock_guard lock(mutex_);
  *start = epoch_.seconds();
  return open_depth_[std::this_thread::get_id()]++;
}

void Trace::close(std::string name, std::uint32_t depth, double start) {
  const double end = epoch_.seconds();
  std::lock_guard lock(mutex_);
  auto it = open_depth_.find(std::this_thread::get_id());
  if (it != open_depth_.end() && it->second > 0 && --it->second == 0)
    open_depth_.erase(it);
  if (finished_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  finished_.push_back({std::move(name), depth, start, end - start});
}

std::vector<SpanRecord> Trace::spans() const {
  std::lock_guard lock(mutex_);
  return finished_;
}

double Trace::total_seconds(std::string_view name) const {
  std::lock_guard lock(mutex_);
  double total = 0.0;
  for (const SpanRecord& s : finished_)
    if (s.name == name) total += s.duration_seconds;
  return total;
}

std::uint64_t Trace::count(std::string_view name) const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const SpanRecord& s : finished_)
    if (s.name == name) ++n;
  return n;
}

std::uint64_t Trace::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void Trace::clear() {
  std::lock_guard lock(mutex_);
  finished_.clear();
  dropped_ = 0;
  epoch_.reset();
}

Json Trace::to_json() const {
  std::vector<SpanRecord> sorted = spans();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_seconds < b.start_seconds;
                   });
  Json arr = Json::array();
  for (const SpanRecord& s : sorted) {
    Json span = Json::object();
    span["name"] = s.name;
    span["depth"] = s.depth;
    span["start_seconds"] = s.start_seconds;
    span["duration_seconds"] = s.duration_seconds;
    arr.push_back(std::move(span));
  }
  Json out = Json::object();
  out["spans"] = std::move(arr);
  out["dropped"] = dropped();
  return out;
}

Trace& global_trace() {
  static Trace trace;
  return trace;
}

}  // namespace mthfx::obs
