#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace mthfx::obs {

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, Json());
  return object_.back().second;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  array_.push_back(std::move(v));
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    default: return 0;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: write_double(out, double_); break;
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        write_escaped(out, object_[i].first);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace mthfx::obs
