#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mthfx::obs {

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

// Recursive-descent parser over the subset dump() emits (which is all of
// standard JSON). Kept deliberately strict: any deviation throws.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("Json::parse: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs unsupported; the emitter
          // only produces \u00xx control escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c != '+' && c != '-') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE)
        return Json(v);
      is_double = true;  // overflow: fall through to double
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, Json());
  return object_.back().second;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  array_.push_back(std::move(v));
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    default: return 0;
  }
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: write_double(out, double_); break;
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        write_escaped(out, object_[i].first);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace mthfx::obs
