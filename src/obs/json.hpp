#pragma once

// Minimal JSON value used by the observability layer to emit
// machine-readable bench/trace records (BENCH_*.json). Objects preserve
// insertion order so emitted records diff cleanly across runs. `parse`
// reads the same dialect back (used by fault/checkpoint restart files);
// doubles round-trip bit-for-bit through dump/parse.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mthfx::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(long v) : kind_(Kind::kInt), int_(v) {}
  Json(long long v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned long v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object access; inserts a null member if absent. A null value
  /// silently becomes an object so `j["a"]["b"] = 1` works.
  Json& operator[](const std::string& key);

  /// Appends to an array (a null value becomes an array).
  void push_back(Json v);

  /// Object member lookup (nullptr when absent or not an object).
  const Json* find(std::string_view key) const;

  std::size_t size() const;
  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// Serialize; `indent` < 0 emits one line, otherwise pretty-prints with
  /// that many spaces per level. Non-finite numbers emit as null.
  std::string dump(int indent = -1) const;

  /// Parse a JSON document. Numbers without '.', 'e', or 'E' become
  /// kInt; all others kDouble (read with strtod, so doubles emitted by
  /// dump() round-trip exactly). Throws std::invalid_argument on
  /// malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace mthfx::obs
