#pragma once

// Span tracing for phase nesting: SCF iteration -> J/K build -> task
// execution -> reduction. A Scope opens a span on construction and
// records it on destruction; depth is tracked per thread, so concurrent
// spans from different threads interleave without corrupting nesting.
//
// Recording takes a mutex, so spans belong at *phase* granularity (an SCF
// iteration, one J/K build), never inside per-quartet loops — those go
// through Registry counters instead.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/stopwatch.hpp"

namespace mthfx::obs {

struct SpanRecord {
  std::string name;
  std::uint32_t depth = 0;        ///< 0 = outermost on its thread
  double start_seconds = 0.0;     ///< offset from the trace epoch
  double duration_seconds = 0.0;
};

class Trace {
 public:
  Trace() = default;

  /// RAII span: opens at construction, records at destruction.
  class Scope {
   public:
    Scope(Trace& trace, std::string name);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Trace& trace_;
    std::string name_;
    std::uint32_t depth_;
    double start_;
  };

  /// Completed spans in completion order (a parent records after its
  /// children). Snapshot under the lock.
  std::vector<SpanRecord> spans() const;

  /// Total recorded seconds / completions across spans named `name`.
  double total_seconds(std::string_view name) const;
  std::uint64_t count(std::string_view name) const;

  /// Spans recorded but discarded because the buffer was full.
  std::uint64_t dropped() const;

  void clear();

  /// {"spans": [{name, depth, start_seconds, duration_seconds}...],
  ///  "dropped": n} with spans sorted by start time.
  Json to_json() const;

 private:
  friend class Scope;

  // Backstop for long-running processes (an MD trajectory records a few
  // spans per SCF iteration; this bound is far above any sane run).
  static constexpr std::size_t kMaxSpans = 1 << 20;

  std::uint32_t open(double* start);
  void close(std::string name, std::uint32_t depth, double start);

  mutable std::mutex mutex_;
  Stopwatch epoch_;
  std::vector<SpanRecord> finished_;
  std::map<std::thread::id, std::uint32_t> open_depth_;
  std::uint64_t dropped_ = 0;
};

/// Process-wide trace: lets the CLI and benches collect the SCF/HFX phase
/// hierarchy without threading a Trace through every API.
Trace& global_trace();

}  // namespace mthfx::obs
