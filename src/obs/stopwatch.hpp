#pragma once

// The one place in the codebase that touches the wall clock for
// instrumentation. Everything above (fock builder, SCF drivers, benches)
// measures through Stopwatch / ScopedTimer / Trace so the clock source
// and the aggregation policy stay in a single layer.

#include <chrono>

namespace mthfx::obs {

/// Monotonic stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mthfx::obs
