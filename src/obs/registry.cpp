#include "obs/registry.hpp"

#include <stdexcept>

namespace mthfx::obs {

Registry::Registry(std::size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {}

detail::Slot* Registry::register_entry(std::string_view name, bool is_timer) {
  std::lock_guard lock(mutex_);
  for (Entry& e : entries_)
    if (e.name == name) return e.slots.get();
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.is_timer = is_timer;
  e.slots = std::make_unique<detail::Slot[]>(num_threads_);
  return e.slots.get();
}

Counter Registry::counter(std::string_view name) {
  return Counter(register_entry(name, /*is_timer=*/false));
}

Timer Registry::timer(std::string_view name) {
  return Timer(register_entry(name, /*is_timer=*/true));
}

const Registry::Entry* Registry::find(std::string_view name) const {
  std::lock_guard lock(mutex_);
  for (const Entry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

std::uint64_t Registry::counter_total(std::string_view name) const {
  const Entry* e = find(name);
  if (!e) return 0;
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < num_threads_; ++t)
    total += e->slots[t].count.load(std::memory_order_relaxed);
  return total;
}

double Registry::timer_seconds(std::string_view name) const {
  const Entry* e = find(name);
  if (!e) return 0.0;
  double total = 0.0;
  for (std::size_t t = 0; t < num_threads_; ++t)
    total += e->slots[t].seconds.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Registry::timer_count(std::string_view name) const {
  return counter_total(name);
}

std::vector<std::uint64_t> Registry::counter_per_thread(
    std::string_view name) const {
  std::vector<std::uint64_t> out(num_threads_, 0);
  const Entry* e = find(name);
  if (!e) return out;
  for (std::size_t t = 0; t < num_threads_; ++t)
    out[t] = e->slots[t].count.load(std::memory_order_relaxed);
  return out;
}

std::vector<double> Registry::timer_per_thread(std::string_view name) const {
  std::vector<double> out(num_threads_, 0.0);
  const Entry* e = find(name);
  if (!e) return out;
  for (std::size_t t = 0; t < num_threads_; ++t)
    out[t] = e->slots[t].seconds.load(std::memory_order_relaxed);
  return out;
}

Json Registry::to_json() const {
  Json counters = Json::object();
  Json timers = Json::object();
  std::lock_guard lock(mutex_);
  for (const Entry& e : entries_) {
    if (!e.is_timer) {
      std::uint64_t total = 0;
      for (std::size_t t = 0; t < num_threads_; ++t)
        total += e.slots[t].count.load(std::memory_order_relaxed);
      counters[e.name] = total;
    } else {
      double secs = 0.0;
      std::uint64_t count = 0;
      Json per_thread = Json::array();
      for (std::size_t t = 0; t < num_threads_; ++t) {
        const double s = e.slots[t].seconds.load(std::memory_order_relaxed);
        secs += s;
        count += e.slots[t].count.load(std::memory_order_relaxed);
        per_thread.push_back(s);
      }
      Json& entry = timers[e.name];
      entry["seconds"] = secs;
      entry["count"] = count;
      entry["per_thread_seconds"] = std::move(per_thread);
    }
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["timers"] = std::move(timers);
  return out;
}

Registry& global_registry() {
  static Registry registry(1);
  return registry;
}

}  // namespace mthfx::obs
