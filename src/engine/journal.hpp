#pragma once

// Write-ahead job journal: the engine's crash-safety backbone. Every
// state transition of every job is appended as one checksummed record
// *before* the engine acts on it, and each append is fsynced, so a
// SIGKILL at any instant loses at most the record being written — which
// replay then detects and skips.
//
// File format (one record per line):
//
//   MTHFXJ1 <fnv1a-hex-of-payload> <payload-json-one-line>
//
// Payload types:
//   submitted      {type, id, name, tenant, priority, deadline_s, input{...}}
//   started        {type, id, attempt}
//   attempt_failed {type, id, attempt, reason, message, backoff_ms}
//   committed      {type, id, record{... full JobRecord ...}}
//   shutdown       {type, reason}   — clean graceful-drain marker
//
// Replay reconstructs the campaign: committed jobs are served straight
// from their journaled records (bit-identical energies — doubles
// round-trip through obs::Json — and zero recomputed SCF work);
// uncommitted jobs are resubmitted, resuming from their per-job
// checkpoint when one exists. A truncated tail or a corrupt record is
// tolerated: the bad record and everything after it is skipped with a
// structured warning, never a crash. See docs/engine.md (Durability).

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "app/driver.hpp"
#include "app/input.hpp"
#include "engine/job.hpp"
#include "obs/json.hpp"

namespace mthfx::engine {

/// Full-fidelity JSON round-trips (unlike report.hpp's summary views,
/// these preserve every field needed to re-execute or re-serve a job;
/// doubles are bit-exact through obs::Json).
obs::Json input_to_json(const app::Input& input);
app::Input input_from_json(const obs::Json& j);
obs::Json structured_result_to_json(const app::StructuredResult& result);
app::StructuredResult structured_result_from_json(const obs::Json& j);
obs::Json job_record_to_json(const JobRecord& record);
JobRecord job_record_from_json(const obs::Json& j);

/// FNV-1a 64-bit over a byte string (the record checksum).
std::uint64_t fnv1a(std::string_view text);

/// One job's reconstructed journal state.
struct ReplayedJob {
  Job job;  ///< from the submitted record (deadline included)
  bool committed = false;
  JobRecord record;             ///< valid when committed
  std::size_t attempts_started = 0;
  std::size_t attempts_failed = 0;
};

/// Outcome of Journal::replay. `jobs` is ordered by job id. `skipped`
/// counts records dropped for bad checksum / truncation / malformed
/// payload; each drop adds a human-readable line to `warnings`.
struct JournalReplay {
  std::vector<ReplayedJob> jobs;
  std::size_t records = 0;   ///< well-formed records applied
  std::size_t skipped = 0;
  std::vector<std::string> warnings;
  /// True when the journal ends in a clean `shutdown` record (graceful
  /// SIGINT/SIGTERM drain): the previous run stopped deliberately, so a
  /// resume is routine rather than crash recovery.
  bool clean_shutdown = false;
  std::string shutdown_reason;

  /// The replayed job with this id, or nullptr.
  const ReplayedJob* find(std::uint64_t id) const;

  /// The largest journaled job id (0 when empty) — a resuming front-end
  /// continues assigning ids after it.
  std::uint64_t max_id() const;
};

class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (create or append to) the journal file. Throws
  /// std::runtime_error on I/O failure.
  void open(const std::string& path);
  bool active() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Append one payload as a checksummed record and fsync it. No-op
  /// when not active. Thread-safe.
  void append(const obs::Json& payload);

  /// Convenience appenders for the four record types.
  void record_submitted(const Job& job);
  void record_started(std::uint64_t id, std::size_t attempt);
  void record_attempt_failed(std::uint64_t id, std::size_t attempt,
                             const std::string& reason,
                             const std::string& message, double backoff_ms);
  void record_committed(const JobRecord& record);
  /// Graceful-shutdown marker (`{"type":"shutdown","reason":…}`): a
  /// drained front-end appends it last, so replay can tell a clean stop
  /// from a crash.
  void record_shutdown(const std::string& reason);

  std::uint64_t appended() const;

  /// Tolerant replay of a journal file. A missing file replays to an
  /// empty state (no error): resuming a campaign that never started is
  /// just starting it.
  static JournalReplay replay(const std::string& path);

 private:
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  std::uint64_t appended_ = 0;
};

}  // namespace mthfx::engine
