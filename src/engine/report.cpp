#include "engine/report.hpp"

#include <sstream>

#include "engine/result_store.hpp"

namespace mthfx::engine {

namespace {

const char* task_name(app::Task task) {
  switch (task) {
    case app::Task::kEnergy: return "energy";
    case app::Task::kGradient: return "gradient";
    case app::Task::kMd: return "md";
  }
  return "?";
}

std::string key_hex(std::uint64_t key) {
  std::ostringstream out;
  out << std::hex << key;
  return out.str();
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
    case JobState::kCanceled: return "canceled";
  }
  return "?";
}

obs::Json result_record(const app::Input& input,
                        const app::StructuredResult& result) {
  obs::Json record = obs::Json::object();
  record["schema"] = "mthfx.result.v1";

  obs::Json in = obs::Json::object();
  in["method"] = input.method;
  in["basis"] = input.basis;
  in["task"] = task_name(input.task);
  in["charge"] = input.charge;
  in["multiplicity"] = input.multiplicity;
  in["num_atoms"] = input.molecule.size();
  in["num_electrons"] = input.molecule.num_electrons();
  in["eps_schwarz"] = input.eps_schwarz;
  in["threads"] = input.num_threads;
  in["fingerprint"] = key_hex(input_key(input));
  record["input"] = std::move(in);

  obs::Json res = obs::Json::object();
  res["ok"] = result.ok;
  res["converged"] = result.converged;
  res["driver"] = result.reference;
  res["energy"] = result.energy;
  res["scf_iterations"] = result.scf_iterations;
  if (result.reference == "rks" || result.reference == "uks") {
    res["xc_energy"] = result.xc_energy;
    res["exact_exchange_energy"] = result.exact_exchange_energy;
  }
  if (result.reference == "rks") {
    res["homo_lumo_gap_ev"] = result.homo_lumo_gap_ev;
    if (result.converged) res["dipole_debye"] = result.dipole_debye;
  }
  if (!result.gradient.empty()) {
    obs::Json grad = obs::Json::array();
    for (const auto& g : result.gradient) {
      obs::Json row = obs::Json::array();
      row.push_back(g.x);
      row.push_back(g.y);
      row.push_back(g.z);
      grad.push_back(std::move(row));
    }
    res["gradient"] = std::move(grad);
  }
  if (input.task == app::Task::kMd) {
    res["md_frames"] = result.md_frames;
    res["md_max_energy_drift"] = result.md_max_energy_drift;
  }
  record["result"] = std::move(res);
  return record;
}

obs::Json job_record(const JobRecord& record) {
  obs::Json job = obs::Json::object();
  job["id"] = record.id;
  job["name"] = record.name;
  if (!record.tenant.empty()) job["tenant"] = record.tenant;
  job["priority"] = record.priority;
  job["state"] = to_string(record.state);
  if (record.state == JobState::kRejected) {
    job["reject_reason"] = record.reject_reason;
    return job;
  }
  if (record.state == JobState::kCanceled) {
    if (!record.error.empty()) job["error"] = record.error;
    return job;
  }
  job["cache_hit"] = record.cache_hit;
  job["attempts"] = record.attempts;
  job["threads"] = record.threads;
  job["wait_seconds"] = record.wait_seconds;
  job["run_seconds"] = record.run_seconds;
  // Durability annotations, emitted only when set so pre-durability
  // consumers see an unchanged record.
  if (record.replayed) job["replayed"] = true;
  if (record.degraded) {
    job["degraded"] = true;
    job["degrade_note"] = record.degrade_note;
  }
  if (record.deadline_hits > 0) job["deadline_hits"] = record.deadline_hits;
  if (record.backoff_ms > 0.0) job["backoff_ms"] = record.backoff_ms;
  if (!record.error.empty()) job["error"] = record.error;
  job["record"] = result_record(record.input, record.result);
  return job;
}

obs::Json campaign_report(const JobScheduler& scheduler,
                          const std::vector<JobRecord>& records) {
  obs::Json report = obs::Json::object();
  report["schema"] = "mthfx.campaign.v1";

  obs::Json engine = obs::Json::object();
  const EngineOptions& opts = scheduler.options();
  engine["concurrency"] = opts.concurrency;
  engine["queue_capacity"] = opts.queue_capacity;
  engine["total_threads"] = scheduler.total_threads();
  engine["per_job_threads"] = scheduler.per_job_threads();
  engine["max_job_retries"] = opts.max_job_retries;
  engine["cache"] = opts.cache;
  engine["shed_lowest"] = opts.shed_lowest;
  if (!opts.journal_path.empty()) {
    engine["journal_path"] = opts.journal_path;
    engine["journal_appends"] = scheduler.journal().appended();
  }
  if (!opts.store_dir.empty()) engine["store_dir"] = opts.store_dir;
  if (opts.default_deadline_seconds > 0.0)
    engine["default_deadline_seconds"] = opts.default_deadline_seconds;
  report["engine"] = std::move(engine);

  obs::Json queue = obs::Json::object();
  queue["accepted"] = scheduler.queue().accepted();
  queue["rejected"] = scheduler.queue().rejected();
  queue["shed"] = scheduler.queue().shed();
  queue["high_water"] = scheduler.queue().high_water();
  report["queue"] = std::move(queue);

  obs::Json cache = obs::Json::object();
  cache["hits"] = scheduler.store().hits();
  cache["misses"] = scheduler.store().misses();
  cache["entries"] = scheduler.store().size();
  if (scheduler.store().disk_attached()) {
    cache["disk_hits"] = scheduler.store().disk_hits();
    cache["disk_entries"] = scheduler.store().disk_entries();
    cache["disk_bytes"] = scheduler.store().disk_bytes();
    cache["corrupt_misses"] = scheduler.store().corrupt_misses();
    cache["evictions"] = scheduler.store().evictions();
    cache["evicted_bytes"] = scheduler.store().evicted_bytes();
  }
  report["cache"] = std::move(cache);

  report["metrics"] = scheduler.registry().to_json();

  std::size_t done = 0, failed = 0, rejected = 0, canceled = 0;
  obs::Json jobs = obs::Json::array();
  for (const JobRecord& record : records) {
    switch (record.state) {
      case JobState::kDone: ++done; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kRejected: ++rejected; break;
      case JobState::kCanceled: ++canceled; break;
      default: break;
    }
    jobs.push_back(job_record(record));
  }
  report["jobs_done"] = done;
  report["jobs_failed"] = failed;
  report["jobs_rejected"] = rejected;
  if (canceled > 0) report["jobs_canceled"] = canceled;
  report["jobs"] = std::move(jobs);
  return report;
}

}  // namespace mthfx::engine
