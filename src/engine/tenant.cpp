#include "engine/tenant.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace mthfx::engine {

FairShareQueue::FairShareQueue(JobScheduler& scheduler, TenantOptions defaults)
    : scheduler_(scheduler),
      defaults_(defaults),
      // Tenant counters share the scheduler's submitter metric slot:
      // updates are relaxed atomic adds, safe from any thread.
      metric_slot_(scheduler.options().concurrency) {
  if (!(defaults_.weight > 0.0))
    throw std::invalid_argument("FairShareQueue: default weight must be > 0");
  if (defaults_.max_queued == 0)
    throw std::invalid_argument(
        "FairShareQueue: default max_queued must be >= 1");
}

FairShareQueue::Tenant& FairShareQueue::ensure_locked(
    const std::string& tenant) {
  auto it = by_name_.find(tenant);
  if (it != by_name_.end()) return *it->second;
  auto owned = std::make_unique<Tenant>();
  Tenant& t = *owned;
  t.id = tenant;
  t.options = defaults_;
  t.totals.options = defaults_;
  obs::Registry& registry = scheduler_.registry();
  const std::string prefix = "engine.tenant." + tenant + ".";
  t.c_submitted = registry.counter(prefix + "submitted");
  t.c_admitted = registry.counter(prefix + "admitted");
  t.c_completed = registry.counter(prefix + "completed");
  t.c_failed = registry.counter(prefix + "failed");
  t.c_rejected = registry.counter(prefix + "rejected");
  t.c_shed = registry.counter(prefix + "shed");
  t.c_canceled = registry.counter(prefix + "canceled");
  tenants_.push_back(std::move(owned));
  by_name_.emplace(tenant, &t);
  return t;
}

void FairShareQueue::configure(const std::string& tenant,
                               TenantOptions options) {
  if (!(options.weight > 0.0))
    throw std::invalid_argument("FairShareQueue: weight must be > 0 (tenant '" +
                                tenant + "')");
  if (options.max_queued == 0)
    throw std::invalid_argument(
        "FairShareQueue: max_queued must be >= 1 (tenant '" + tenant + "')");
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  Tenant& t = ensure_locked(tenant);
  t.options = options;
  t.totals.options = options;
}

std::string FairShareQueue::quota_reason_locked(const Tenant& t) const {
  std::string reason = "tenant quota: '" + t.id + "' queued " +
                       std::to_string(t.pending.size()) + "/" +
                       std::to_string(t.options.max_queued) + " (in-flight " +
                       std::to_string(t.totals.in_flight);
  if (t.options.max_in_flight > 0)
    reason += "/" + std::to_string(t.options.max_in_flight);
  reason += ")";
  return reason;
}

Admission FairShareQueue::submit(const std::string& tenant, Job job) {
  std::optional<Job> shed_victim;
  Admission admission;
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    Tenant& t = ensure_locked(tenant);
    job.tenant = tenant;

    // Mirror the core queue's usability check here so a pump admission
    // can never be rejected (which keeps the pump's accounting simple).
    if (job.input.molecule.size() == 0) {
      ++t.totals.rejected;
      t.c_rejected.add(metric_slot_);
      admission.reason = "job '" + job.name + "' has no geometry";
      JobRecord rejected;
      rejected.name = job.name;
      rejected.tenant = tenant;
      rejected.priority = job.priority;
      rejected.state = JobState::kRejected;
      rejected.reject_reason = admission.reason;
      scheduler_.publish_external(std::move(rejected));
      return admission;
    }

    if (t.pending.size() >= t.options.max_queued) {
      // Backlog full: a strictly-higher-priority newcomer displaces the
      // tenant's own lowest-priority (then youngest) pending job;
      // anything else is rejected with the structured quota reason.
      auto victim = t.pending.end();
      for (auto it = t.pending.begin(); it != t.pending.end(); ++it) {
        if (victim == t.pending.end() || it->priority <= victim->priority)
          victim = it;  // <=: later (younger) entries win the tie
      }
      if (victim != t.pending.end() && job.priority > victim->priority) {
        ++t.totals.shed;
        t.c_shed.add(metric_slot_);
        shed_victim = std::move(*victim);
        pending_ids_.erase(shed_victim->id);
        t.pending.erase(victim);
      } else {
        ++t.totals.rejected;
        t.c_rejected.add(metric_slot_);
        admission.reason = quota_reason_locked(t);
        JobRecord rejected;
        rejected.name = job.name;
        rejected.tenant = tenant;
        rejected.priority = job.priority;
        rejected.state = JobState::kRejected;
        rejected.reject_reason = admission.reason;
        scheduler_.publish_external(std::move(rejected));
        return admission;
      }
    }

    if (job.id == 0) job.id = next_id_++;
    else next_id_ = std::max(next_id_, job.id + 1);
    if (!job.journaled) {
      scheduler_.journal().record_submitted(job);
      job.journaled = true;
    }
    ++t.totals.submitted;
    t.c_submitted.add(metric_slot_);
    admission.accepted = true;
    admission.id = job.id;
    pending_ids_[job.id] = &t;
    t.pending.push_back(std::move(job));
    pump_locked();
  }
  if (shed_victim) {
    JobRecord shed;
    shed.id = shed_victim->id;
    shed.name = shed_victim->name;
    shed.tenant = shed_victim->tenant;
    shed.priority = shed_victim->priority;
    shed.state = JobState::kRejected;
    shed.reject_reason = "shed: tenant '" + shed_victim->tenant +
                         "' backlog full, displaced by higher-priority "
                         "submission (id " +
                         std::to_string(admission.id) + ")";
    shed.input = std::move(shed_victim->input);
    // Journals a committed record (the victim's `submitted` record is
    // already on disk; without this a resume would resurrect it) and
    // announces through on_record.
    scheduler_.finish_external(std::move(shed));
  }
  return admission;
}

bool FairShareQueue::cancel(std::uint64_t id, const std::string& note,
                            std::string* error) {
  JobRecord canceled;
  {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    auto it = pending_ids_.find(id);
    if (it == pending_ids_.end()) {
      if (error) {
        *error = admitted_ids_.count(id)
                     ? "job " + std::to_string(id) +
                           " already admitted to the run queue"
                     : "job " + std::to_string(id) + " is not pending here";
      }
      return false;
    }
    Tenant& t = *it->second;
    auto job = std::find_if(t.pending.begin(), t.pending.end(),
                            [id](const Job& j) { return j.id == id; });
    assert(job != t.pending.end());
    canceled.id = id;
    canceled.name = job->name;
    canceled.tenant = t.id;
    canceled.priority = job->priority;
    canceled.state = JobState::kCanceled;
    canceled.error = note.empty() ? "canceled by client" : note;
    canceled.input = std::move(job->input);
    t.pending.erase(job);
    pending_ids_.erase(it);
    ++t.totals.canceled;
    t.c_canceled.add(metric_slot_);
    idle_cv_.notify_all();
  }
  // Outside the lock: finish_external fsyncs and fires on_record.
  scheduler_.finish_external(std::move(canceled));
  return true;
}

void FairShareQueue::on_terminal(const JobRecord& record) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = admitted_ids_.find(record.id);
  if (it == admitted_ids_.end()) return;  // replayed, canceled, or foreign
  Tenant& t = *it->second;
  admitted_ids_.erase(it);
  if (t.totals.in_flight > 0) --t.totals.in_flight;
  switch (record.state) {
    case JobState::kDone:
      ++t.totals.completed;
      t.c_completed.add(metric_slot_);
      break;
    case JobState::kFailed:
      ++t.totals.failed;
      t.c_failed.add(metric_slot_);
      break;
    default:
      // kRejected here means the core queue closed mid-drain; count it
      // against the tenant so the books still balance.
      ++t.totals.rejected;
      t.c_rejected.add(metric_slot_);
      break;
  }
  pump_locked();
  idle_cv_.notify_all();
}

void FairShareQueue::pump() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  pump_locked();
}

void FairShareQueue::pump_locked() {
  if (pumping_ || tenants_.empty()) return;
  pumping_ = true;
  const std::size_t capacity = scheduler_.queue().capacity();
  auto eligible = [](const Tenant& t) {
    return !t.pending.empty() &&
           (t.options.max_in_flight == 0 ||
            t.totals.in_flight < t.options.max_in_flight);
  };
  // Deficit round-robin, one admission per free core-queue slot: credit
  // every eligible tenant its weight until at least one can afford a
  // whole unit, then admit from the richest. In steady state a pump
  // runs with a single free slot (one per completion), so the crediting
  // must be global-per-slot rather than per-visit — a per-visit scheme
  // lets whichever tenant is scanned first spend its unit every pump
  // and starves the rest no matter their weights. The scan origin
  // rotates past the chosen tenant so equal deficits round-robin
  // instead of favouring registration order.
  while (!scheduler_.queue().closed() &&
         scheduler_.queue().depth() < capacity) {
    bool any = false;
    for (const auto& t : tenants_) {
      if (eligible(*t))
        any = true;
      else if (t->pending.empty())
        t->deficit = 0.0;  // no banking while idle
    }
    if (!any) break;
    Tenant* pick = nullptr;
    while (!pick) {
      std::size_t pick_at = 0;
      for (std::size_t visit = 0; visit < tenants_.size(); ++visit) {
        const std::size_t at = (cursor_ + visit) % tenants_.size();
        Tenant& t = *tenants_[at];
        if (!eligible(t) || t.deficit < 1.0) continue;
        if (!pick || t.deficit > pick->deficit) {
          pick = &t;
          pick_at = at;
        }
      }
      if (pick) {
        cursor_ = pick_at + 1;
        break;
      }
      // Nobody can afford a unit yet: credit and rescan. Terminates
      // because some tenant is eligible and weights are positive.
      for (const auto& t : tenants_)
        if (eligible(*t)) t->deficit += t->options.weight;
    }
    Tenant& t = *pick;
    t.deficit -= 1.0;
    Job job = std::move(t.pending.front());
    t.pending.pop_front();
    pending_ids_.erase(job.id);
    const std::uint64_t id = job.id;
    admitted_ids_[id] = &t;
    ++t.totals.in_flight;
    ++t.totals.admitted;
    t.c_admitted.add(metric_slot_);
    Admission admission = scheduler_.submit(std::move(job));
    if (!admission.accepted) {
      // Only possible when the queue closed between the check and the
      // submit (drain race). The scheduler already published the
      // rejected record; our on_record hook re-entered on_terminal
      // under this recursive mutex with id 0, a no-op, so settle the
      // books here.
      admitted_ids_.erase(id);
      if (t.totals.in_flight > 0) --t.totals.in_flight;
      ++t.totals.rejected;
      t.c_rejected.add(metric_slot_);
    }
    if (t.pending.empty()) t.deficit = 0.0;
  }
  pumping_ = false;
}

void FairShareQueue::wait_idle() {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_ids_.empty() && admitted_ids_.empty();
  });
}

std::size_t FairShareQueue::backlog() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return pending_ids_.size();
}

std::size_t FairShareQueue::in_flight() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return admitted_ids_.size();
}

std::vector<std::pair<std::string, TenantStats>> FairShareQueue::stats()
    const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<std::pair<std::string, TenantStats>> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    TenantStats snapshot = t->totals;
    snapshot.options = t->options;
    snapshot.queued = t->pending.size();
    out.emplace_back(t->id, snapshot);
  }
  return out;
}

obs::Json FairShareQueue::stats_json() const {
  obs::Json tenants = obs::Json::object();
  for (const auto& [id, s] : stats()) {
    obs::Json t = obs::Json::object();
    t["weight"] = s.options.weight;
    t["max_queued"] = s.options.max_queued;
    t["max_in_flight"] = s.options.max_in_flight;
    t["queued"] = s.queued;
    t["in_flight"] = s.in_flight;
    t["submitted"] = s.submitted;
    t["admitted"] = s.admitted;
    t["completed"] = s.completed;
    t["failed"] = s.failed;
    t["rejected"] = s.rejected;
    t["shed"] = s.shed;
    t["canceled"] = s.canceled;
    tenants[id] = std::move(t);
  }
  return tenants;
}

void FairShareQueue::set_next_id(std::uint64_t next_id) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  next_id_ = std::max(next_id_, next_id);
}

}  // namespace mthfx::engine
