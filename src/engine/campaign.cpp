#include "engine/campaign.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "workload/geometries.hpp"
#include "workload/replicate.hpp"

namespace mthfx::engine {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("campaign line " + std::to_string(line) + ": " +
                           msg);
}

std::string strip_comment(const std::string& line) {
  const auto pos = line.find('#');
  return pos == std::string::npos ? line : line.substr(0, pos);
}

std::vector<std::string> rest_of_line(std::istringstream& line, int lineno,
                                      const std::string& key) {
  std::vector<std::string> values;
  std::string token;
  while (line >> token) values.push_back(token);
  if (values.empty()) fail(lineno, "keyword '" + key + "' needs a value");
  return values;
}

std::string single_value(std::istringstream& line, int lineno,
                         const std::string& key) {
  auto values = rest_of_line(line, lineno, key);
  if (values.size() != 1)
    fail(lineno, "keyword '" + key + "' takes exactly one value");
  return values.front();
}

std::vector<int> to_ints(const std::vector<std::string>& values, int lineno,
                         const std::string& key) {
  std::vector<int> out;
  out.reserve(values.size());
  for (const auto& v : values) {
    try {
      out.push_back(std::stoi(v));
    } catch (const std::exception&) {
      fail(lineno, "keyword '" + key + "': '" + v + "' is not an integer");
    }
  }
  return out;
}

}  // namespace

CampaignSpec parse_campaign(const std::string& text) {
  CampaignSpec spec;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  bool in_sweep = false;
  SweepSpec sweep;
  std::set<std::string> seen;  // duplicate-keyword guard, per scope

  auto reject_duplicate = [&seen](int at_line, const std::string& key) {
    if (!seen.insert(key).second)
      fail(at_line, "duplicate keyword '" + key +
                        "' (each keyword may appear only once per scope)");
  };

  while (std::getline(in, raw)) {
    ++lineno;
    std::istringstream line(strip_comment(raw));
    std::string key;
    if (!(line >> key)) continue;  // blank line

    if (!in_sweep) {
      if (key == "sweep") {
        std::string extra;
        if (line >> extra)
          fail(lineno, "unexpected token '" + extra + "' after 'sweep'");
        in_sweep = true;
        sweep = SweepSpec{};
        seen.clear();
        continue;
      }
      reject_duplicate(lineno, key);
      const std::string value = single_value(line, lineno, key);
      try {
        if (key == "concurrency")
          spec.engine.concurrency = static_cast<std::size_t>(std::stoul(value));
        else if (key == "queue_capacity")
          spec.engine.queue_capacity =
              static_cast<std::size_t>(std::stoul(value));
        else if (key == "total_threads")
          spec.engine.total_threads =
              static_cast<std::size_t>(std::stoul(value));
        else if (key == "job_retries")
          spec.engine.max_job_retries =
              static_cast<std::size_t>(std::stoul(value));
        else if (key == "checkpoint_dir")
          spec.engine.checkpoint_dir = value;
        else if (key == "journal")
          spec.engine.journal_path = value;
        else if (key == "store_dir")
          spec.engine.store_dir = value;
        else if (key == "store_max_bytes")
          spec.engine.store_max_bytes = std::stoull(value);
        else if (key == "deadline") {
          spec.engine.default_deadline_seconds = std::stod(value);
          if (spec.engine.default_deadline_seconds < 0.0)
            fail(lineno, "deadline must be >= 0");
        } else if (key == "degrade_depth")
          spec.engine.degrade_depth =
              static_cast<std::size_t>(std::stoul(value));
        else if (key == "backoff_base_ms")
          spec.engine.backoff.base_ms = std::stod(value);
        else if (key == "backoff_max_ms")
          spec.engine.backoff.max_ms = std::stod(value);
        else if (key == "backoff_jitter")
          spec.engine.backoff.jitter = std::stod(value);
        else if (key == "backoff_seed")
          spec.engine.backoff.seed = std::stoull(value);
        else if (key == "shed") {
          if (value == "on")
            spec.engine.shed_lowest = true;
          else if (value == "off")
            spec.engine.shed_lowest = false;
          else
            fail(lineno, "shed must be on|off");
        } else if (key == "cache") {
          if (value == "on")
            spec.engine.cache = true;
          else if (value == "off")
            spec.engine.cache = false;
          else
            fail(lineno, "cache must be on|off");
        } else
          fail(lineno, "unknown engine keyword '" + key + "'");
      } catch (const std::invalid_argument&) {
        fail(lineno, "keyword '" + key + "': bad value '" + value + "'");
      }
      continue;
    }

    // Inside a sweep block.
    if (key == "end") {
      std::string extra;
      if (line >> extra)
        fail(lineno, "unexpected token '" + extra + "' after 'end'");
      if (sweep.repeat < 1) fail(lineno, "repeat must be >= 1");
      spec.sweeps.push_back(sweep);
      in_sweep = false;
      seen.clear();
      continue;
    }
    reject_duplicate(lineno, key);
    if (key == "molecules") {
      sweep.molecules = rest_of_line(line, lineno, key);
    } else if (key == "sizes") {
      sweep.sizes = to_ints(rest_of_line(line, lineno, key), lineno, key);
      for (const int n : sweep.sizes)
        if (n < 1) fail(lineno, "sizes must be >= 1");
    } else if (key == "bases") {
      sweep.bases = rest_of_line(line, lineno, key);
    } else if (key == "methods") {
      sweep.methods = rest_of_line(line, lineno, key);
    } else {
      const std::string value = single_value(line, lineno, key);
      try {
        if (key == "spacing")
          sweep.spacing_bohr = std::stod(value);
        else if (key == "task") {
          if (value == "energy")
            sweep.task = app::Task::kEnergy;
          else if (value == "gradient")
            sweep.task = app::Task::kGradient;
          else if (value == "md")
            sweep.task = app::Task::kMd;
          else
            fail(lineno, "task must be energy|gradient|md");
        } else if (key == "eps_schwarz")
          sweep.eps_schwarz = std::stod(value);
        else if (key == "md_steps")
          sweep.md_steps = std::stoi(value);
        else if (key == "md_timestep_fs")
          sweep.md_timestep_fs = std::stod(value);
        else if (key == "md_temperature_k")
          sweep.md_temperature_k = std::stod(value);
        else if (key == "grid_radial")
          sweep.grid_radial = std::stoi(value);
        else if (key == "grid_angular")
          sweep.grid_angular = std::stoi(value);
        else if (key == "priority")
          sweep.priority = std::stoi(value);
        else if (key == "repeat")
          sweep.repeat = std::stoi(value);
        else if (key == "deadline") {
          sweep.deadline_seconds = std::stod(value);
          if (sweep.deadline_seconds < 0.0)
            fail(lineno, "deadline must be >= 0");
        } else if (key == "fault_spec")
          sweep.fault = fault::parse_fault_spec(value);
        else
          fail(lineno, "unknown sweep keyword '" + key + "'");
      } catch (const std::invalid_argument& e) {
        fail(lineno, key == "fault_spec"
                         ? std::string(e.what())
                         : "keyword '" + key + "': bad value '" + value + "'");
      }
    }
  }
  if (in_sweep)
    throw std::runtime_error("campaign: sweep block not closed with 'end'");
  if (spec.sweeps.empty())
    throw std::runtime_error("campaign: no sweep block given");
  return spec;
}

CampaignSpec parse_campaign_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("campaign: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_campaign(buffer.str());
}

std::vector<Job> CampaignSpec::expand() const {
  std::vector<Job> jobs;
  for (const SweepSpec& sweep : sweeps) {
    for (int rep = 0; rep < sweep.repeat; ++rep) {
      for (const std::string& molecule : sweep.molecules) {
        const chem::Molecule unit = workload::by_name(molecule);
        for (const int size : sweep.sizes) {
          const chem::Molecule cluster =
              workload::cluster_of(unit, size, sweep.spacing_bohr);
          for (const std::string& basis : sweep.bases) {
            for (const std::string& method : sweep.methods) {
              Job job;
              job.name = molecule + ".n" + std::to_string(size) + "." +
                         basis + "." + method;
              if (sweep.repeat > 1)
                job.name += "#r" + std::to_string(rep + 1);
              job.priority = sweep.priority;
              job.deadline_seconds = sweep.deadline_seconds;
              job.input.method = method;
              job.input.basis = basis;
              job.input.task = sweep.task;
              job.input.eps_schwarz = sweep.eps_schwarz;
              job.input.md_steps = sweep.md_steps;
              job.input.md_timestep_fs = sweep.md_timestep_fs;
              job.input.md_temperature_k = sweep.md_temperature_k;
              job.input.grid_radial = sweep.grid_radial;
              job.input.grid_angular = sweep.grid_angular;
              job.input.fault = sweep.fault;
              job.input.charge = cluster.charge();
              // Smallest consistent spin state: singlet for even
              // electron counts, doublet for odd.
              job.input.multiplicity =
                  cluster.num_electrons() % 2 == 0 ? 1 : 2;
              job.input.molecule = cluster;
              jobs.push_back(std::move(job));
            }
          }
        }
      }
    }
  }
  return jobs;
}

}  // namespace mthfx::engine
