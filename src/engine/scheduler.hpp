#pragma once

// Multi-job execution engine: N worker threads drain the JobQueue and
// run each job through app::run_structured under a *shared* thread
// budget. The total budget comes from parallel::resolve_thread_count;
// each concurrent job is capped at budget/concurrency threads, so one
// huge condensed-phase job cannot starve a campaign of small screening
// jobs — it just uses its slice while the others keep flowing.
//
// Each job is its own fault domain: any exception escaping the driver
// (injected faults included) is caught on the worker, retried up to
// `max_job_retries` times — resuming from the job's checkpoint when one
// was written — and finally reported as a failed JobRecord. One job's
// failure never kills the engine.
//
// Metrics land in an obs::Registry under the `engine.*` namespace:
// engine.jobs_submitted / jobs_rejected / jobs_completed / jobs_failed,
// engine.cache_hits / cache_misses, engine.job_retries, and the
// engine.queue_wait_seconds / engine.job_run_seconds timers. Durability
// adds engine.jobs_shed / jobs_degraded / jobs_replayed,
// engine.deadline.expired, and engine.retry.backoff_ms.
//
// Durability (docs/engine.md): with `journal_path` set every job
// transition is written ahead to a checksummed journal, so a killed
// campaign resumes — committed jobs served from their journaled records,
// in-flight jobs from their checkpoints — with bit-identical physics and
// zero duplicated SCF work. With `store_dir` set the ResultStore writes
// through to disk, so a resumed campaign's cache is warm. Per-job
// wall-clock deadlines are enforced by a watchdog thread that cancels
// overdue attempts at the next SCF-iteration cancellation point; the
// attempt is retried after a seeded jittered exponential backoff.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/job.hpp"
#include "engine/journal.hpp"
#include "engine/queue.hpp"
#include "engine/result_store.hpp"
#include "fault/cancel.hpp"
#include "obs/registry.hpp"

namespace mthfx::engine {

/// Seeded jittered exponential backoff: attempt k (1-based) waits
/// base_ms * 2^(k-1) capped at max_ms, scaled into
/// [delay*(1-jitter), delay] by a uniform draw that is a pure hash of
/// (seed, job_id, attempt) — so a fixed seed replays the exact delays.
struct BackoffOptions {
  double base_ms = 10.0;
  double max_ms = 1000.0;
  double jitter = 0.5;  ///< jittered fraction of the delay, in [0, 1]
  std::uint64_t seed = 0;
};

double backoff_delay_ms(const BackoffOptions& options, std::uint64_t job_id,
                        std::size_t attempt);

struct EngineOptions {
  std::size_t concurrency = 2;      ///< concurrent jobs (worker threads)
  std::size_t queue_capacity = 256;
  /// Shared thread budget across all concurrent jobs; 0 resolves to
  /// hardware concurrency via parallel::resolve_thread_count.
  std::size_t total_threads = 0;
  /// Engine-level re-runs of a job whose driver threw (on top of the
  /// per-task retries inside the HFX builder).
  std::size_t max_job_retries = 1;
  bool cache = true;                ///< serve duplicates from ResultStore
  /// When non-empty, each job checkpoints to
  /// <checkpoint_dir>/job_<id>.ckpt and a retried attempt restores from
  /// it, so a re-run resumes instead of starting over.
  std::string checkpoint_dir;
  /// Write-ahead journal file (empty = off). See Journal.
  std::string journal_path;
  /// ResultStore persistence directory (empty = memory only) and its
  /// byte budget (0 = unbounded; LRU eviction above it).
  std::string store_dir;
  std::uint64_t store_max_bytes = 0;
  /// Deadline applied to jobs that don't carry their own
  /// (Job::deadline_seconds); 0 = no deadline.
  double default_deadline_seconds = 0.0;
  /// How often the watchdog scans running attempts for blown deadlines.
  double watchdog_poll_ms = 5.0;
  /// Retry backoff policy (engine-level retries only).
  BackoffOptions backoff;
  /// Load shedding: a strictly-higher-priority submission displaces the
  /// lowest-priority queued job instead of being rejected when full.
  bool shed_lowest = true;
  /// Graceful degradation: when > 0 and the queue is at least this deep
  /// at pickup, DFT jobs run on a coarsened XC grid (flagged in the
  /// record). 0 disables.
  std::size_t degrade_depth = 0;
  /// Scheduler hooks for long-lived fronts (the serve layer): called on
  /// every terminal record — completion, failure, rejection, shed,
  /// cancel, adopt — and at each attempt start. Both may be invoked
  /// concurrently from worker and submitter threads; the callee must be
  /// thread-safe and must not call back into the scheduler's blocking
  /// APIs (drain). Empty = off.
  std::function<void(const JobRecord&)> on_record;
  std::function<void(std::uint64_t id, std::size_t attempt)> on_started;
};

class JobScheduler {
 public:
  explicit JobScheduler(EngineOptions options = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admission-controlled submission. A rejected job still produces a
  /// JobRecord (state kRejected) in the final report, as does a queued
  /// job later displaced by load shedding.
  Admission submit(Job job);

  /// Adopt a journal-replayed record: it joins the final report (flagged
  /// `replayed`), its result warms the cache, and no SCF work runs.
  void adopt(JobRecord record);

  /// Commit a record produced outside the worker path (e.g. a client
  /// cancel of a job that never reached the queue): journaled as
  /// committed, pushed into the final report, and announced through
  /// on_record like any other terminal record.
  void finish_external(JobRecord record);

  /// Like finish_external but without the journal entry — for terminal
  /// records of jobs that were never journaled (admission rejects at a
  /// quota layer), mirroring how the core queue's own rejects are
  /// reported but not journaled.
  void publish_external(JobRecord record);

  /// Launch the worker threads (idempotent; submit works before or
  /// after).
  void start();

  /// Close the queue, run every admitted job to completion, join the
  /// workers, and return all records (rejections included) ordered by
  /// job id (rejected jobs, which never get an id, sort first in
  /// submission order).
  std::vector<JobRecord> drain();

  const EngineOptions& options() const { return options_; }
  /// Resolved shared budget and the per-job cap derived from it.
  std::size_t total_threads() const { return total_threads_; }
  std::size_t per_job_threads() const { return per_job_threads_; }

  JobQueue& queue() { return queue_; }
  const JobQueue& queue() const { return queue_; }
  ResultStore& store() { return store_; }
  const ResultStore& store() const { return store_; }
  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

 private:
  struct ActiveAttempt {
    double deadline_seconds = 0.0;
    std::chrono::steady_clock::time_point started;
    std::shared_ptr<fault::CancelToken> token;
  };

  void worker_loop(std::size_t worker_id);
  JobRecord execute(Job job, double wait_seconds, std::size_t worker_id);
  /// Fire on_record, then append to the final report. The hook runs
  /// outside records_mutex_ so a callee may query the scheduler.
  void publish(JobRecord record);
  void watchdog_loop();
  void stop_watchdog();

  EngineOptions options_;
  std::size_t total_threads_ = 1;
  std::size_t per_job_threads_ = 1;
  JobQueue queue_;
  ResultStore store_;
  Journal journal_;
  obs::Registry registry_;

  obs::Counter c_submitted_, c_rejected_, c_completed_, c_failed_;
  obs::Counter c_cache_hits_, c_cache_misses_, c_retries_;
  obs::Counter c_shed_, c_degraded_, c_replayed_;
  obs::Counter c_deadline_expired_, c_backoff_ms_;
  obs::Timer t_wait_, t_run_;

  std::mutex records_mutex_;
  std::vector<JobRecord> records_;

  // Running attempts, scanned by the watchdog for blown deadlines.
  std::mutex active_mutex_;
  std::unordered_map<std::uint64_t, ActiveAttempt> active_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool stopping_ = false;
  std::thread watchdog_;

  std::vector<std::thread> workers_;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace mthfx::engine
