#pragma once

// Multi-job execution engine: N worker threads drain the JobQueue and
// run each job through app::run_structured under a *shared* thread
// budget. The total budget comes from parallel::resolve_thread_count;
// each concurrent job is capped at budget/concurrency threads, so one
// huge condensed-phase job cannot starve a campaign of small screening
// jobs — it just uses its slice while the others keep flowing.
//
// Each job is its own fault domain: any exception escaping the driver
// (injected faults included) is caught on the worker, retried up to
// `max_job_retries` times — resuming from the job's checkpoint when one
// was written — and finally reported as a failed JobRecord. One job's
// failure never kills the engine.
//
// Metrics land in an obs::Registry under the `engine.*` namespace:
// engine.jobs_submitted / jobs_rejected / jobs_completed / jobs_failed,
// engine.cache_hits / cache_misses, engine.job_retries, and the
// engine.queue_wait_seconds / engine.job_run_seconds timers.

#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/job.hpp"
#include "engine/queue.hpp"
#include "engine/result_store.hpp"
#include "obs/registry.hpp"

namespace mthfx::engine {

struct EngineOptions {
  std::size_t concurrency = 2;      ///< concurrent jobs (worker threads)
  std::size_t queue_capacity = 256;
  /// Shared thread budget across all concurrent jobs; 0 resolves to
  /// hardware concurrency via parallel::resolve_thread_count.
  std::size_t total_threads = 0;
  /// Engine-level re-runs of a job whose driver threw (on top of the
  /// per-task retries inside the HFX builder).
  std::size_t max_job_retries = 1;
  bool cache = true;                ///< serve duplicates from ResultStore
  /// When non-empty, each job checkpoints to
  /// <checkpoint_dir>/job_<id>.ckpt and a retried attempt restores from
  /// it, so a re-run resumes instead of starting over.
  std::string checkpoint_dir;
};

class JobScheduler {
 public:
  explicit JobScheduler(EngineOptions options = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admission-controlled submission. A rejected job still produces a
  /// JobRecord (state kRejected) in the final report.
  Admission submit(Job job);

  /// Launch the worker threads (idempotent; submit works before or
  /// after).
  void start();

  /// Close the queue, run every admitted job to completion, join the
  /// workers, and return all records (rejections included) ordered by
  /// job id (rejected jobs, which never get an id, sort first in
  /// submission order).
  std::vector<JobRecord> drain();

  const EngineOptions& options() const { return options_; }
  /// Resolved shared budget and the per-job cap derived from it.
  std::size_t total_threads() const { return total_threads_; }
  std::size_t per_job_threads() const { return per_job_threads_; }

  JobQueue& queue() { return queue_; }
  const JobQueue& queue() const { return queue_; }
  ResultStore& store() { return store_; }
  const ResultStore& store() const { return store_; }
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

 private:
  void worker_loop(std::size_t worker_id);
  JobRecord execute(Job job, double wait_seconds, std::size_t worker_id);

  EngineOptions options_;
  std::size_t total_threads_ = 1;
  std::size_t per_job_threads_ = 1;
  JobQueue queue_;
  ResultStore store_;
  obs::Registry registry_;

  obs::Counter c_submitted_, c_rejected_, c_completed_, c_failed_;
  obs::Counter c_cache_hits_, c_cache_misses_, c_retries_;
  obs::Timer t_wait_, t_run_;

  std::mutex records_mutex_;
  std::vector<JobRecord> records_;

  std::vector<std::thread> workers_;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace mthfx::engine
