#pragma once

// Content-addressed result cache for the screening engine. Screening
// sweeps resubmit identical geometries constantly (the same solvent at
// the same lattice size shows up in every method column); the store
// serves those from memory instead of re-running the SCF.
//
// The key is a 64-bit FNV-1a hash of a *canonicalized* rendering of the
// Input: only fields that can change the computed numbers participate
// (method, basis, reference, charge, multiplicity, task, eps_schwarz,
// bit-exact atom coordinates; grid settings only when the method has an
// XC grid, md settings only for task md). Execution-policy fields —
// thread count, checkpoint paths, fault injection — are excluded: the
// stack guarantees bit-identical results across schedules and thread
// counts (see docs/validation.md), and injected faults are recovered
// exactly, so those knobs cannot change the answer.

#include <cstdint>
#include <optional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "app/driver.hpp"
#include "app/input.hpp"

namespace mthfx::engine {

/// Canonical text rendering of the result-relevant Input fields. Doubles
/// are rendered as IEEE-754 bit patterns, so two inputs fingerprint
/// equal iff the driver is guaranteed to produce bit-identical results.
std::string canonical_fingerprint(const app::Input& input);

/// FNV-1a 64-bit hash of canonical_fingerprint(input) — the cache key.
std::uint64_t input_key(const app::Input& input);

/// Thread-safe result cache with hit/miss accounting. Only successful
/// (ok) results are worth caching; the scheduler enforces that.
class ResultStore {
 public:
  /// Returns the cached result, counting a hit or a miss.
  std::optional<app::StructuredResult> lookup(std::uint64_t key);

  /// First insert wins (a concurrent duplicate job may finish second
  /// with the same numbers; keeping the first keeps hits stable).
  void insert(std::uint64_t key, app::StructuredResult result);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, app::StructuredResult> results_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mthfx::engine
