#pragma once

// Content-addressed result cache for the screening engine. Screening
// sweeps resubmit identical geometries constantly (the same solvent at
// the same lattice size shows up in every method column); the store
// serves those from memory instead of re-running the SCF.
//
// The key is a 64-bit FNV-1a hash of a *canonicalized* rendering of the
// Input: only fields that can change the computed numbers participate
// (method, basis, reference, charge, multiplicity, task, eps_schwarz,
// bit-exact atom coordinates; grid settings only when the method has an
// XC grid, md settings only for task md). Execution-policy fields —
// thread count, checkpoint paths, fault injection — are excluded: the
// stack guarantees bit-identical results across schedules and thread
// counts (see docs/validation.md), and injected faults are recovered
// exactly, so those knobs cannot change the answer.

#include <cstdint>
#include <list>
#include <optional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "app/driver.hpp"
#include "app/input.hpp"

namespace mthfx::engine {

/// Canonical text rendering of the result-relevant Input fields. Doubles
/// are rendered as IEEE-754 bit patterns, so two inputs fingerprint
/// equal iff the driver is guaranteed to produce bit-identical results.
std::string canonical_fingerprint(const app::Input& input);

/// FNV-1a 64-bit hash of canonical_fingerprint(input) — the cache key.
std::uint64_t input_key(const app::Input& input);

/// Thread-safe result cache with hit/miss accounting. Only successful
/// (ok) results are worth caching; the scheduler enforces that.
///
/// Optionally disk-backed (attach_disk): entries are persisted as
/// checksummed files `<dir>/<key-hex>.entry` written atomically, so a
/// warm store survives a crash and a resumed campaign serves repeats
/// without re-running the SCF. The disk tier is size-bounded: when the
/// byte budget is exceeded the least-recently-used entries are evicted.
/// A corrupt entry (bad magic, checksum mismatch, unparseable payload)
/// is treated as a miss — counted, removed, never a crash.
class ResultStore {
 public:
  /// Returns the cached result, counting a hit or a miss. Falls through
  /// to the disk tier when attached (a disk serve counts as a hit and a
  /// disk_hit, and is promoted into memory).
  std::optional<app::StructuredResult> lookup(std::uint64_t key);

  /// First insert wins (a concurrent duplicate job may finish second
  /// with the same numbers; keeping the first keeps hits stable). With a
  /// disk tier attached the entry is written through (atomically) and
  /// LRU eviction enforces the byte budget.
  void insert(std::uint64_t key, app::StructuredResult result);

  /// Attach a persistence directory (created if needed). Existing
  /// entries are indexed (oldest-modified = least recent) without
  /// validating their contents; validation happens lazily at lookup.
  /// `max_bytes` bounds the on-disk footprint (0 = unbounded). Throws
  /// std::runtime_error when the directory cannot be created.
  void attach_disk(const std::string& dir, std::uint64_t max_bytes = 0);
  bool disk_attached() const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

  /// Disk-tier accounting (all zero when not attached).
  std::uint64_t disk_hits() const;
  std::uint64_t corrupt_misses() const;
  std::uint64_t evictions() const;
  std::uint64_t evicted_bytes() const;
  std::uint64_t disk_bytes() const;
  std::size_t disk_entries() const;

 private:
  struct DiskEntry {
    std::string path;
    std::uint64_t bytes = 0;
    std::list<std::uint64_t>::iterator lru;
  };

  std::optional<app::StructuredResult> disk_lookup_locked(std::uint64_t key);
  void disk_insert_locked(std::uint64_t key,
                          const app::StructuredResult& result);
  void disk_remove_locked(std::uint64_t key);
  void evict_to_budget_locked(std::uint64_t keep_key);
  void touch_locked(std::uint64_t key);

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, app::StructuredResult> results_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;

  // Disk tier.
  std::string dir_;
  bool disk_attached_ = false;
  std::uint64_t max_bytes_ = 0;
  std::uint64_t disk_bytes_ = 0;
  std::list<std::uint64_t> lru_;  ///< front = least recently used
  std::unordered_map<std::uint64_t, DiskEntry> index_;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t corrupt_misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t evicted_bytes_ = 0;
};

}  // namespace mthfx::engine
