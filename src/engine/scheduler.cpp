#include "engine/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"
#include "obs/stopwatch.hpp"
#include "parallel/thread_pool.hpp"

namespace mthfx::engine {

namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

double backoff_delay_ms(const BackoffOptions& options, std::uint64_t job_id,
                        std::size_t attempt) {
  const std::size_t exponent = attempt > 0 ? attempt - 1 : 0;
  double delay = options.base_ms * std::pow(2.0, static_cast<double>(exponent));
  delay = std::min(delay, options.max_ms);
  std::uint64_t h = fault::mix64(options.seed ^ fault::mix64(job_id));
  h = fault::mix64(h ^ static_cast<std::uint64_t>(attempt));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return delay * (1.0 - options.jitter * u);
}

JobScheduler::JobScheduler(EngineOptions options)
    : options_(std::move(options)),
      total_threads_(parallel::resolve_thread_count(options_.total_threads)),
      queue_(options_.queue_capacity == 0 ? 1 : options_.queue_capacity,
             options_.shed_lowest),
      // One metric slot per worker, one shared by submitter threads
      // (slot `concurrency`), one for the watchdog (`concurrency + 1`).
      registry_(std::max<std::size_t>(options_.concurrency, 1) + 2) {
  if (options_.concurrency == 0)
    throw std::invalid_argument("JobScheduler: concurrency must be >= 1");
  if (options_.queue_capacity == 0)
    throw std::invalid_argument("JobScheduler: queue_capacity must be >= 1");
  if (!(options_.backoff.jitter >= 0.0 && options_.backoff.jitter <= 1.0))
    throw std::invalid_argument(
        "JobScheduler: backoff.jitter must be in [0, 1]");
  if (options_.backoff.base_ms < 0.0 || options_.backoff.max_ms < 0.0)
    throw std::invalid_argument(
        "JobScheduler: backoff delays must be >= 0");
  per_job_threads_ =
      std::max<std::size_t>(1, total_threads_ / options_.concurrency);
  c_submitted_ = registry_.counter("engine.jobs_submitted");
  c_rejected_ = registry_.counter("engine.jobs_rejected");
  c_completed_ = registry_.counter("engine.jobs_completed");
  c_failed_ = registry_.counter("engine.jobs_failed");
  c_cache_hits_ = registry_.counter("engine.cache_hits");
  c_cache_misses_ = registry_.counter("engine.cache_misses");
  c_retries_ = registry_.counter("engine.job_retries");
  c_shed_ = registry_.counter("engine.jobs_shed");
  c_degraded_ = registry_.counter("engine.jobs_degraded");
  c_replayed_ = registry_.counter("engine.jobs_replayed");
  c_deadline_expired_ = registry_.counter("engine.deadline.expired");
  c_backoff_ms_ = registry_.counter("engine.retry.backoff_ms");
  t_wait_ = registry_.timer("engine.queue_wait_seconds");
  t_run_ = registry_.timer("engine.job_run_seconds");
  if (!options_.store_dir.empty())
    store_.attach_disk(options_.store_dir, options_.store_max_bytes);
  if (!options_.journal_path.empty()) journal_.open(options_.journal_path);
  if (!options_.checkpoint_dir.empty()) {
    // Jobs checkpoint mid-attempt via atomic_write, which does not
    // create parent directories; a missing directory would fail every
    // job instead of disabling checkpoints.
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
  }
}

JobScheduler::~JobScheduler() {
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  stop_watchdog();
}

void JobScheduler::publish(JobRecord record) {
  if (options_.on_record) options_.on_record(record);
  std::lock_guard<std::mutex> lock(records_mutex_);
  records_.push_back(std::move(record));
}

Admission JobScheduler::submit(Job job) {
  const std::size_t submit_slot = options_.concurrency;  // shared slot
  JobRecord rejected;
  rejected.name = job.name;
  rejected.tenant = job.tenant;
  rejected.priority = job.priority;
  // The journal needs the job's content after the queue takes ownership;
  // copy up front (submission cost is noise next to one SCF iteration).
  Job journaled;
  const bool journaling = journal_.active() && !job.journaled;
  if (journaling) journaled = job;
  Admission admission = queue_.submit(std::move(job));
  if (admission.accepted) {
    c_submitted_.add(submit_slot);
    if (journaling) {
      journaled.id = admission.id;
      journal_.record_submitted(journaled);
    }
    if (admission.displaced) {
      c_shed_.add(submit_slot);
      JobRecord shed;
      shed.id = admission.displaced->id;
      shed.name = admission.displaced->name;
      shed.tenant = admission.displaced->tenant;
      shed.priority = admission.displaced->priority;
      shed.state = JobState::kRejected;
      shed.reject_reason =
          "shed: displaced at capacity " +
          std::to_string(options_.queue_capacity) +
          " by higher-priority submission (id " +
          std::to_string(admission.id) + ")";
      shed.input = std::move(admission.displaced->input);
      if (journaling) journal_.record_committed(shed);
      publish(std::move(shed));
    }
  } else {
    c_rejected_.add(submit_slot);
    rejected.state = JobState::kRejected;
    rejected.reject_reason = admission.reason;
    publish(std::move(rejected));
  }
  return admission;
}

void JobScheduler::adopt(JobRecord record) {
  const std::size_t submit_slot = options_.concurrency;
  record.replayed = true;
  if (record.state == JobState::kDone && options_.cache && record.result.ok)
    store_.insert(input_key(record.input), record.result);
  c_replayed_.add(submit_slot);
  publish(std::move(record));
}

void JobScheduler::finish_external(JobRecord record) {
  journal_.record_committed(record);
  publish(std::move(record));
}

void JobScheduler::publish_external(JobRecord record) {
  publish(std::move(record));
}

void JobScheduler::start() {
  if (started_) return;
  started_ = true;
  watchdog_ = std::thread([this] { watchdog_loop(); });
  workers_.reserve(options_.concurrency);
  for (std::size_t w = 0; w < options_.concurrency; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

std::vector<JobRecord> JobScheduler::drain() {
  start();
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  stop_watchdog();
  drained_ = true;
  std::lock_guard<std::mutex> lock(records_mutex_);
  // Rejected jobs never get an id (0) and sort first, in submission
  // order; executed jobs follow in id order.
  std::stable_sort(records_.begin(), records_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.id < b.id;
                   });
  return records_;
}

void JobScheduler::worker_loop(std::size_t worker_id) {
  while (auto popped = queue_.pop()) {
    t_wait_.add_seconds(worker_id, popped->wait_seconds);
    JobRecord record =
        execute(std::move(popped->job), popped->wait_seconds, worker_id);
    t_run_.add_seconds(worker_id, record.run_seconds);
    publish(std::move(record));
  }
}

void JobScheduler::watchdog_loop() {
  const std::size_t slot = options_.concurrency + 1;
  const auto poll = std::chrono::duration<double, std::milli>(
      std::max(options_.watchdog_poll_ms, 0.5));
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, poll);
    if (stopping_) break;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> active_lock(active_mutex_);
    for (auto& [id, attempt] : active_) {
      if (attempt.deadline_seconds <= 0.0 || attempt.token->cancelled())
        continue;
      const double elapsed =
          std::chrono::duration<double>(now - attempt.started).count();
      if (elapsed > attempt.deadline_seconds) {
        attempt.token->cancel("deadline: exceeded " +
                              std::to_string(attempt.deadline_seconds) +
                              " s (job " + std::to_string(id) + ")");
        c_deadline_expired_.add(slot);
      }
    }
  }
}

void JobScheduler::stop_watchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    stopping_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

JobRecord JobScheduler::execute(Job job, double wait_seconds,
                                std::size_t worker_id) {
  JobRecord record;
  record.id = job.id;
  record.name = job.name;
  record.tenant = job.tenant;
  record.priority = job.priority;
  record.wait_seconds = wait_seconds;

  app::Input input = std::move(job.input);
  // Shared-budget cap: a job may ask for fewer threads than its slice,
  // never more.
  const std::size_t requested =
      input.num_threads == 0 ? per_job_threads_
                             : parallel::resolve_thread_count(input.num_threads);
  input.num_threads = std::min(requested, per_job_threads_);
  record.threads = input.num_threads;

  // Graceful degradation: under sustained saturation, buy queue drain
  // rate by coarsening the XC grid of DFT jobs. The record is flagged so
  // downstream analysis knows these numbers ran at reduced quality.
  if (options_.degrade_depth > 0 &&
      queue_.depth() >= options_.degrade_depth && input.method != "hf" &&
      input.task != app::Task::kMd) {
    const int coarse_radial = std::min(input.grid_radial, 20);
    const int coarse_angular = std::min(input.grid_angular, 26);
    if (coarse_radial != input.grid_radial ||
        coarse_angular != input.grid_angular) {
      record.degraded = true;
      record.degrade_note =
          "queue saturated: XC grid " + std::to_string(input.grid_radial) +
          "x" + std::to_string(input.grid_angular) + " -> " +
          std::to_string(coarse_radial) + "x" +
          std::to_string(coarse_angular);
      input.grid_radial = coarse_radial;
      input.grid_angular = coarse_angular;
      c_degraded_.add(worker_id);
    }
  }

  const std::uint64_t key = input_key(input);
  if (options_.cache) {
    if (auto cached = store_.lookup(key)) {
      c_cache_hits_.add(worker_id);
      record.cache_hit = true;
      record.state = cached->ok ? JobState::kDone : JobState::kFailed;
      record.result = std::move(*cached);
      record.input = std::move(input);
      journal_.record_committed(record);
      return record;
    }
    c_cache_misses_.add(worker_id);
  }

  // Per-job fault domain: checkpoint to a job-private file, restore from
  // it on retry, and give each retry an independent fault draw (the
  // injector is seed-deterministic, so attempt k re-seeds as seed + k;
  // recovered faults cannot change the numbers, see docs/resilience.md).
  if (!options_.checkpoint_dir.empty() && input.checkpoint_path.empty())
    input.checkpoint_path = options_.checkpoint_dir + "/job_" +
                            std::to_string(job.id) + ".ckpt";
  const std::uint64_t base_fault_seed = input.fault.seed;
  const double deadline = job.deadline_seconds > 0.0
                              ? job.deadline_seconds
                              : options_.default_deadline_seconds;

  const std::size_t max_attempts = options_.max_job_retries + 1;
  while (true) {
    ++record.attempts;
    journal_.record_started(job.id, record.attempts);
    if (options_.on_started) options_.on_started(job.id, record.attempts);
    std::string fail_reason = "exception";
    if (deadline > 0.0) {
      auto token = std::make_shared<fault::CancelToken>();
      input.cancel = token;
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_[job.id] = {deadline, std::chrono::steady_clock::now(),
                         std::move(token)};
    }
    obs::Stopwatch attempt_watch;
    try {
      app::StructuredResult result = app::run_structured(input);
      record.run_seconds += attempt_watch.seconds();
      if (deadline > 0.0) {
        std::lock_guard<std::mutex> lock(active_mutex_);
        active_.erase(job.id);
      }
      record.state = result.ok ? JobState::kDone : JobState::kFailed;
      if (!result.ok && record.error.empty())
        record.error = "task reported failure (see report)";
      if (result.ok && options_.cache) store_.insert(key, result);
      if (result.ok)
        c_completed_.add(worker_id);
      else
        c_failed_.add(worker_id);
      record.result = std::move(result);
      input.cancel.reset();
      record.input = std::move(input);
      journal_.record_committed(record);
      return record;
    } catch (const fault::Cancelled& e) {
      record.run_seconds += attempt_watch.seconds();
      record.error = e.what();
      fail_reason = "deadline";
      ++record.deadline_hits;
    } catch (const std::exception& e) {
      record.run_seconds += attempt_watch.seconds();
      record.error = e.what();
    } catch (...) {
      record.run_seconds += attempt_watch.seconds();
      record.error = "unknown exception";
    }
    if (deadline > 0.0) {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_.erase(job.id);
    }
    if (record.attempts >= max_attempts) {
      journal_.record_attempt_failed(job.id, record.attempts, fail_reason,
                                     record.error, 0.0);
      record.state = JobState::kFailed;
      c_failed_.add(worker_id);
      input.cancel.reset();
      record.input = std::move(input);
      journal_.record_committed(record);
      return record;
    }
    c_retries_.add(worker_id);
    const double delay_ms =
        backoff_delay_ms(options_.backoff, job.id, record.attempts);
    record.backoff_ms += delay_ms;
    c_backoff_ms_.add(worker_id,
                      static_cast<std::uint64_t>(std::llround(delay_ms)));
    journal_.record_attempt_failed(job.id, record.attempts, fail_reason,
                                   record.error, delay_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
    if (!input.checkpoint_path.empty() && file_exists(input.checkpoint_path))
      input.restore_path = input.checkpoint_path;
    if (input.fault.enabled())
      input.fault.seed = base_fault_seed + record.attempts;
  }
}

}  // namespace mthfx::engine
