#include "engine/scheduler.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/stopwatch.hpp"
#include "parallel/thread_pool.hpp"

namespace mthfx::engine {

namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

JobScheduler::JobScheduler(EngineOptions options)
    : options_(std::move(options)),
      total_threads_(parallel::resolve_thread_count(options_.total_threads)),
      queue_(options_.queue_capacity == 0 ? 1 : options_.queue_capacity),
      // One metric slot per worker plus one shared by submitter threads.
      registry_(std::max<std::size_t>(options_.concurrency, 1) + 1) {
  if (options_.concurrency == 0)
    throw std::invalid_argument("JobScheduler: concurrency must be >= 1");
  if (options_.queue_capacity == 0)
    throw std::invalid_argument("JobScheduler: queue_capacity must be >= 1");
  per_job_threads_ =
      std::max<std::size_t>(1, total_threads_ / options_.concurrency);
  c_submitted_ = registry_.counter("engine.jobs_submitted");
  c_rejected_ = registry_.counter("engine.jobs_rejected");
  c_completed_ = registry_.counter("engine.jobs_completed");
  c_failed_ = registry_.counter("engine.jobs_failed");
  c_cache_hits_ = registry_.counter("engine.cache_hits");
  c_cache_misses_ = registry_.counter("engine.cache_misses");
  c_retries_ = registry_.counter("engine.job_retries");
  t_wait_ = registry_.timer("engine.queue_wait_seconds");
  t_run_ = registry_.timer("engine.job_run_seconds");
}

JobScheduler::~JobScheduler() {
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
}

Admission JobScheduler::submit(Job job) {
  const std::size_t submit_slot = options_.concurrency;  // shared slot
  JobRecord rejected;
  rejected.name = job.name;
  rejected.priority = job.priority;
  const Admission admission = queue_.submit(std::move(job));
  if (admission.accepted) {
    c_submitted_.add(submit_slot);
  } else {
    c_rejected_.add(submit_slot);
    rejected.state = JobState::kRejected;
    rejected.reject_reason = admission.reason;
    std::lock_guard<std::mutex> lock(records_mutex_);
    records_.push_back(std::move(rejected));
  }
  return admission;
}

void JobScheduler::start() {
  if (started_) return;
  started_ = true;
  workers_.reserve(options_.concurrency);
  for (std::size_t w = 0; w < options_.concurrency; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

std::vector<JobRecord> JobScheduler::drain() {
  start();
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  drained_ = true;
  std::lock_guard<std::mutex> lock(records_mutex_);
  // Rejected jobs never get an id (0) and sort first, in submission
  // order; executed jobs follow in id order.
  std::stable_sort(records_.begin(), records_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.id < b.id;
                   });
  return records_;
}

void JobScheduler::worker_loop(std::size_t worker_id) {
  while (auto popped = queue_.pop()) {
    t_wait_.add_seconds(worker_id, popped->wait_seconds);
    JobRecord record =
        execute(std::move(popped->job), popped->wait_seconds, worker_id);
    t_run_.add_seconds(worker_id, record.run_seconds);
    std::lock_guard<std::mutex> lock(records_mutex_);
    records_.push_back(std::move(record));
  }
}

JobRecord JobScheduler::execute(Job job, double wait_seconds,
                                std::size_t worker_id) {
  JobRecord record;
  record.id = job.id;
  record.name = job.name;
  record.priority = job.priority;
  record.wait_seconds = wait_seconds;

  app::Input input = std::move(job.input);
  // Shared-budget cap: a job may ask for fewer threads than its slice,
  // never more.
  const std::size_t requested =
      input.num_threads == 0 ? per_job_threads_
                             : parallel::resolve_thread_count(input.num_threads);
  input.num_threads = std::min(requested, per_job_threads_);
  record.threads = input.num_threads;

  const std::uint64_t key = input_key(input);
  if (options_.cache) {
    if (auto cached = store_.lookup(key)) {
      c_cache_hits_.add(worker_id);
      record.cache_hit = true;
      record.state = cached->ok ? JobState::kDone : JobState::kFailed;
      record.result = std::move(*cached);
      record.input = std::move(input);
      return record;
    }
    c_cache_misses_.add(worker_id);
  }

  // Per-job fault domain: checkpoint to a job-private file, restore from
  // it on retry, and give each retry an independent fault draw (the
  // injector is seed-deterministic, so attempt k re-seeds as seed + k;
  // recovered faults cannot change the numbers, see docs/resilience.md).
  if (!options_.checkpoint_dir.empty() && input.checkpoint_path.empty())
    input.checkpoint_path = options_.checkpoint_dir + "/job_" +
                            std::to_string(job.id) + ".ckpt";
  const std::uint64_t base_fault_seed = input.fault.seed;

  const std::size_t max_attempts = options_.max_job_retries + 1;
  while (true) {
    ++record.attempts;
    obs::Stopwatch attempt_watch;
    try {
      app::StructuredResult result = app::run_structured(input);
      record.run_seconds += attempt_watch.seconds();
      record.state = result.ok ? JobState::kDone : JobState::kFailed;
      if (!result.ok && record.error.empty())
        record.error = "task reported failure (see report)";
      if (result.ok && options_.cache) store_.insert(key, result);
      if (result.ok)
        c_completed_.add(worker_id);
      else
        c_failed_.add(worker_id);
      record.result = std::move(result);
      record.input = std::move(input);
      return record;
    } catch (const std::exception& e) {
      record.run_seconds += attempt_watch.seconds();
      record.error = e.what();
    } catch (...) {
      record.run_seconds += attempt_watch.seconds();
      record.error = "unknown exception";
    }
    if (record.attempts >= max_attempts) {
      record.state = JobState::kFailed;
      c_failed_.add(worker_id);
      record.input = std::move(input);
      return record;
    }
    c_retries_.add(worker_id);
    if (!input.checkpoint_path.empty() && file_exists(input.checkpoint_path))
      input.restore_path = input.checkpoint_path;
    if (input.fault.enabled())
      input.fault.seed = base_fault_seed + record.attempts;
  }
}

}  // namespace mthfx::engine
