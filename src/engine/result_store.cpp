#include "engine/result_store.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "engine/journal.hpp"
#include "fault/atomic_file.hpp"

namespace mthfx::engine {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kStoreMagic = "MTHFXS1";

std::string key_hex(std::uint64_t key) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[key & 0xF];
    key >>= 4;
  }
  return out;
}

bool parse_key_hex(std::string_view text, std::uint64_t& key) {
  if (text.size() != 16) return false;
  key = 0;
  for (char c : text) {
    key <<= 4;
    if (c >= '0' && c <= '9') key |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      key |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  return true;
}

/// Doubles go in as bit patterns: 0.1 + 0.2 != 0.3 must miss, and two
/// decimal renderings of the same double must hit. Bit patterns are
/// canonicalized first: -0.0 compares equal to +0.0 everywhere physics
/// can see (an atom at coordinate -0.0 *is* the atom at 0.0), yet its
/// sign bit used to split the cache key; likewise any NaN payload
/// collapses to the one quiet NaN.
void put_double(std::ostringstream& out, double v) {
  if (v == 0.0)
    v = 0.0;  // drops the sign of -0.0
  else if (std::isnan(v))
    v = std::numeric_limits<double>::quiet_NaN();
  out << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec;
}

const char* task_name(app::Task task) {
  switch (task) {
    case app::Task::kEnergy: return "energy";
    case app::Task::kGradient: return "gradient";
    case app::Task::kMd: return "md";
  }
  return "?";
}

const char* reference_name(app::Reference ref) {
  switch (ref) {
    case app::Reference::kAuto: return "auto";
    case app::Reference::kRestricted: return "restricted";
    case app::Reference::kUnrestricted: return "unrestricted";
  }
  return "?";
}

}  // namespace

std::string canonical_fingerprint(const app::Input& input) {
  std::ostringstream out;
  out << "method=" << input.method << ";basis=" << input.basis
      << ";reference=" << reference_name(input.reference)
      << ";charge=" << input.charge
      << ";multiplicity=" << input.multiplicity
      << ";task=" << task_name(input.task) << ";eps_schwarz=";
  put_double(out, input.eps_schwarz);
  // The XC grid only exists for DFT functionals; for pure HF the grid
  // resolution is dead configuration and must not split the key.
  if (input.method != "hf") {
    out << ";grid=" << input.grid_radial << "," << input.grid_angular;
  }
  if (input.task == app::Task::kMd) {
    out << ";md=" << input.md_steps << ",";
    put_double(out, input.md_timestep_fs);
    out << ",";
    put_double(out, input.md_temperature_k);
  }
  out << ";atoms=" << input.molecule.size();
  for (const auto& atom : input.molecule.atoms()) {
    out << ";" << atom.z << ":";
    put_double(out, atom.pos.x);
    out << ",";
    put_double(out, atom.pos.y);
    out << ",";
    put_double(out, atom.pos.z);
  }
  return out.str();
}

std::uint64_t input_key(const app::Input& input) {
  const std::string text = canonical_fingerprint(input);
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

std::optional<app::StructuredResult> ResultStore::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  if (it != results_.end()) {
    ++hits_;
    touch_locked(key);
    return it->second;
  }
  if (disk_attached_) {
    auto from_disk = disk_lookup_locked(key);
    if (from_disk) {
      ++hits_;
      ++disk_hits_;
      results_.emplace(key, *from_disk);  // promote into memory
      touch_locked(key);
      return from_disk;
    }
  }
  ++misses_;
  return std::nullopt;
}

void ResultStore::insert(std::uint64_t key, app::StructuredResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool inserted =
      results_.emplace(key, std::move(result)).second;  // first insert wins
  if (inserted && disk_attached_) {
    disk_insert_locked(key, results_.at(key));
    evict_to_budget_locked(key);
  }
}

void ResultStore::attach_disk(const std::string& dir,
                              std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir))
    throw std::runtime_error("result store: cannot create '" + dir +
                             "': " + ec.message());
  dir_ = dir;
  max_bytes_ = max_bytes;
  disk_attached_ = true;
  lru_.clear();
  index_.clear();
  disk_bytes_ = 0;

  // Index existing entries, oldest-modified first, so the LRU order of a
  // reattached store approximates its pre-crash access order.
  struct Found {
    std::uint64_t key;
    std::string path;
    std::uint64_t bytes;
    fs::file_time_type mtime;
  };
  std::vector<Found> found;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".entry") continue;
    std::uint64_t key = 0;
    if (!parse_key_hex(p.stem().string(), key)) continue;
    found.push_back({key, p.string(),
                     static_cast<std::uint64_t>(entry.file_size(ec)),
                     entry.last_write_time(ec)});
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.key < b.key;
  });
  for (const Found& f : found) {
    lru_.push_back(f.key);
    index_[f.key] = {f.path, f.bytes, std::prev(lru_.end())};
    disk_bytes_ += f.bytes;
  }
  evict_to_budget_locked(0);
}

bool ResultStore::disk_attached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_attached_;
}

std::optional<app::StructuredResult> ResultStore::disk_lookup_locked(
    std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  const std::string path = it->second.path;

  auto corrupt = [this, key] {
    ++corrupt_misses_;
    disk_remove_locked(key);
    return std::nullopt;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return corrupt();
  std::string header, payload;
  if (!std::getline(in, header) || !std::getline(in, payload))
    return corrupt();
  if (header.size() != kStoreMagic.size() + 17 ||
      header.compare(0, kStoreMagic.size(), kStoreMagic) != 0 ||
      header[kStoreMagic.size()] != ' ')
    return corrupt();
  std::uint64_t expected = 0;
  if (!parse_key_hex(
          std::string_view(header).substr(kStoreMagic.size() + 1, 16),
          expected))
    return corrupt();
  if (fnv1a(payload) != expected) return corrupt();
  try {
    return structured_result_from_json(obs::Json::parse(payload));
  } catch (const std::exception&) {
    return corrupt();
  }
}

void ResultStore::disk_insert_locked(std::uint64_t key,
                                     const app::StructuredResult& result) {
  if (index_.count(key)) {
    touch_locked(key);
    return;
  }
  const std::string payload = structured_result_to_json(result).dump();
  std::string contents;
  contents.reserve(kStoreMagic.size() + 18 + payload.size() + 1);
  contents.append(kStoreMagic);
  contents.push_back(' ');
  contents.append(key_hex(fnv1a(payload)));
  contents.push_back('\n');
  contents.append(payload);
  contents.push_back('\n');
  const std::string path = dir_ + "/" + key_hex(key) + ".entry";
  try {
    fault::atomic_write_file(path, contents);
  } catch (const std::exception&) {
    return;  // persistence is best-effort; the memory tier still serves
  }
  lru_.push_back(key);
  index_[key] = {path, contents.size(), std::prev(lru_.end())};
  disk_bytes_ += contents.size();
}

void ResultStore::disk_remove_locked(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  std::remove(it->second.path.c_str());
  disk_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  index_.erase(it);
}

void ResultStore::evict_to_budget_locked(std::uint64_t keep_key) {
  if (max_bytes_ == 0) return;
  while (disk_bytes_ > max_bytes_ && !lru_.empty()) {
    std::uint64_t victim = lru_.front();
    if (victim == keep_key) {
      // Never evict the entry being inserted; try the next-least-recent.
      if (lru_.size() == 1) return;
      auto second = std::next(lru_.begin());
      victim = *second;
    }
    const std::uint64_t bytes = index_.at(victim).bytes;
    disk_remove_locked(victim);
    ++evictions_;
    evicted_bytes_ += bytes;
  }
}

void ResultStore::touch_locked(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.splice(lru_.end(), lru_, it->second.lru);
}

std::uint64_t ResultStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

std::uint64_t ResultStore::disk_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_hits_;
}

std::uint64_t ResultStore::corrupt_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_misses_;
}

std::uint64_t ResultStore::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t ResultStore::evicted_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_bytes_;
}

std::uint64_t ResultStore::disk_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_bytes_;
}

std::size_t ResultStore::disk_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

}  // namespace mthfx::engine
