#include "engine/result_store.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace mthfx::engine {

namespace {

/// Doubles go in as bit patterns: 0.1 + 0.2 != 0.3 must miss, and two
/// decimal renderings of the same double must hit. Bit patterns are
/// canonicalized first: -0.0 compares equal to +0.0 everywhere physics
/// can see (an atom at coordinate -0.0 *is* the atom at 0.0), yet its
/// sign bit used to split the cache key; likewise any NaN payload
/// collapses to the one quiet NaN.
void put_double(std::ostringstream& out, double v) {
  if (v == 0.0)
    v = 0.0;  // drops the sign of -0.0
  else if (std::isnan(v))
    v = std::numeric_limits<double>::quiet_NaN();
  out << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec;
}

const char* task_name(app::Task task) {
  switch (task) {
    case app::Task::kEnergy: return "energy";
    case app::Task::kGradient: return "gradient";
    case app::Task::kMd: return "md";
  }
  return "?";
}

const char* reference_name(app::Reference ref) {
  switch (ref) {
    case app::Reference::kAuto: return "auto";
    case app::Reference::kRestricted: return "restricted";
    case app::Reference::kUnrestricted: return "unrestricted";
  }
  return "?";
}

}  // namespace

std::string canonical_fingerprint(const app::Input& input) {
  std::ostringstream out;
  out << "method=" << input.method << ";basis=" << input.basis
      << ";reference=" << reference_name(input.reference)
      << ";charge=" << input.charge
      << ";multiplicity=" << input.multiplicity
      << ";task=" << task_name(input.task) << ";eps_schwarz=";
  put_double(out, input.eps_schwarz);
  // The XC grid only exists for DFT functionals; for pure HF the grid
  // resolution is dead configuration and must not split the key.
  if (input.method != "hf") {
    out << ";grid=" << input.grid_radial << "," << input.grid_angular;
  }
  if (input.task == app::Task::kMd) {
    out << ";md=" << input.md_steps << ",";
    put_double(out, input.md_timestep_fs);
    out << ",";
    put_double(out, input.md_temperature_k);
  }
  out << ";atoms=" << input.molecule.size();
  for (const auto& atom : input.molecule.atoms()) {
    out << ";" << atom.z << ":";
    put_double(out, atom.pos.x);
    out << ",";
    put_double(out, atom.pos.y);
    out << ",";
    put_double(out, atom.pos.z);
  }
  return out.str();
}

std::uint64_t input_key(const app::Input& input) {
  const std::string text = canonical_fingerprint(input);
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

std::optional<app::StructuredResult> ResultStore::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  if (it == results_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ResultStore::insert(std::uint64_t key, app::StructuredResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.emplace(key, std::move(result));  // first insert wins
}

std::uint64_t ResultStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

}  // namespace mthfx::engine
