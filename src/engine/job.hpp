#pragma once

// Job model for the high-throughput screening engine: one Job is one
// complete mthfx calculation (an app::Input) plus queueing metadata. The
// engine turns the single-shot driver into a campaign of such jobs.

#include <cstdint>
#include <string>

#include "app/driver.hpp"
#include "app/input.hpp"

namespace mthfx::engine {

/// What to run. `priority` orders the queue (higher first, FIFO within a
/// level); `name` labels the job in reports ("pc.n2.sto-3g.pbe0").
struct Job {
  std::uint64_t id = 0;  ///< assigned at submission; 0 = unassigned
  std::string name;
  /// Owning tenant (multi-tenant service layer); empty for single-tenant
  /// campaign fronts like mthfx_queue. Carried through journal records
  /// so per-tenant accounting survives a resume.
  std::string tenant;
  int priority = 0;
  /// Wall-clock deadline for one attempt; 0 inherits the engine default
  /// (EngineOptions::default_deadline_seconds, 0 = no deadline). An
  /// overdue attempt is cancelled at the next SCF-iteration cancellation
  /// point and retried with backoff.
  double deadline_seconds = 0.0;
  /// Already written to the write-ahead journal by an upstream layer
  /// (FairShareQueue journals at tenant admission so pending work
  /// survives a crash; journal resume resubmits under existing records).
  /// The scheduler skips its own `submitted` record when set, so a job
  /// is journaled exactly once.
  bool journaled = false;
  app::Input input;
};

enum class JobState : std::uint8_t {
  kQueued,    ///< admitted, waiting for a worker
  kRunning,   ///< executing on a worker
  kDone,      ///< finished with result.ok
  kFailed,    ///< finished without result.ok, or retries exhausted
  kRejected,  ///< refused at admission (queue full / invalid / closed)
  kCanceled,  ///< withdrawn by the client before it reached a worker
};

const char* to_string(JobState state);

/// Final accounting for one job: outcome, where the time went, and the
/// typed result. `attempts` counts executions (> 1 means the per-job
/// fault domain retried); `cache_hit` marks a ResultStore serve.
struct JobRecord {
  std::uint64_t id = 0;
  std::string name;
  std::string tenant;             ///< owning tenant ("" = single-tenant)
  int priority = 0;
  JobState state = JobState::kQueued;
  bool cache_hit = false;
  bool replayed = false;          ///< served from the write-ahead journal
  bool degraded = false;          ///< ran under load-shedding degradation
  std::size_t attempts = 0;
  std::size_t deadline_hits = 0;  ///< attempts cancelled by the watchdog
  std::size_t threads = 0;        ///< per-job thread cap it ran under
  double wait_seconds = 0.0;      ///< submission -> worker pickup
  double run_seconds = 0.0;       ///< worker execution (all attempts)
  double backoff_ms = 0.0;        ///< total retry backoff slept
  std::string error;              ///< last failure message (kFailed)
  std::string reject_reason;      ///< admission refusal (kRejected)
  std::string degrade_note;       ///< what degradation changed (kDone)
  app::Input input;               ///< the input as executed (threads capped)
  app::StructuredResult result;   ///< valid when kDone (or best effort)
};

}  // namespace mthfx::engine
