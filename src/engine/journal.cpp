#include "engine/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/atomic_file.hpp"
#include "fault/checkpoint.hpp"

namespace mthfx::engine {

namespace {

constexpr std::string_view kMagic = "MTHFXJ1";

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

const obs::Json& require(const obs::Json& j, const char* key) {
  const obs::Json* member = j.find(key);
  if (!member)
    throw std::runtime_error(std::string("journal: missing member '") + key +
                             "'");
  return *member;
}

// Optional readers: absent members keep the default, so the journal
// format can grow fields without invalidating older files.
double opt_double(const obs::Json& j, const char* key, double fallback) {
  const obs::Json* m = j.find(key);
  return m ? m->as_double() : fallback;
}

std::int64_t opt_int(const obs::Json& j, const char* key,
                     std::int64_t fallback) {
  const obs::Json* m = j.find(key);
  return m ? m->as_int() : fallback;
}

bool opt_bool(const obs::Json& j, const char* key, bool fallback) {
  const obs::Json* m = j.find(key);
  return m ? m->as_bool() : fallback;
}

std::string opt_string(const obs::Json& j, const char* key,
                       const std::string& fallback) {
  const obs::Json* m = j.find(key);
  return m ? m->as_string() : fallback;
}

const char* task_name(app::Task task) {
  switch (task) {
    case app::Task::kEnergy: return "energy";
    case app::Task::kGradient: return "gradient";
    case app::Task::kMd: return "md";
  }
  return "energy";
}

app::Task task_from_name(const std::string& name) {
  if (name == "energy") return app::Task::kEnergy;
  if (name == "gradient") return app::Task::kGradient;
  if (name == "md") return app::Task::kMd;
  throw std::runtime_error("journal: unknown task '" + name + "'");
}

const char* reference_name(app::Reference ref) {
  switch (ref) {
    case app::Reference::kAuto: return "auto";
    case app::Reference::kRestricted: return "restricted";
    case app::Reference::kUnrestricted: return "unrestricted";
  }
  return "auto";
}

app::Reference reference_from_name(const std::string& name) {
  if (name == "auto") return app::Reference::kAuto;
  if (name == "restricted") return app::Reference::kRestricted;
  if (name == "unrestricted") return app::Reference::kUnrestricted;
  throw std::runtime_error("journal: unknown reference '" + name + "'");
}

JobState job_state_from_name(const std::string& name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "rejected") return JobState::kRejected;
  if (name == "canceled") return JobState::kCanceled;
  throw std::runtime_error("journal: unknown job state '" + name + "'");
}

obs::Json fault_to_json(const fault::FaultOptions& f) {
  obs::Json j = obs::Json::object();
  j["fail_rate"] = f.fail_rate;
  j["stall_rate"] = f.stall_rate;
  j["corrupt_rate"] = f.corrupt_rate;
  j["hang_rate"] = f.hang_rate;
  j["slow_rate"] = f.slow_rate;
  j["stall_seconds"] = f.stall_seconds;
  j["hang_seconds"] = f.hang_seconds;
  j["slow_factor"] = f.slow_factor;
  j["seed"] = f.seed;
  j["max_retries"] = f.max_retries;
  return j;
}

fault::FaultOptions fault_from_json(const obs::Json& j) {
  fault::FaultOptions f;
  f.fail_rate = opt_double(j, "fail_rate", f.fail_rate);
  f.stall_rate = opt_double(j, "stall_rate", f.stall_rate);
  f.corrupt_rate = opt_double(j, "corrupt_rate", f.corrupt_rate);
  f.hang_rate = opt_double(j, "hang_rate", f.hang_rate);
  f.slow_rate = opt_double(j, "slow_rate", f.slow_rate);
  f.stall_seconds = opt_double(j, "stall_seconds", f.stall_seconds);
  f.hang_seconds = opt_double(j, "hang_seconds", f.hang_seconds);
  f.slow_factor = opt_double(j, "slow_factor", f.slow_factor);
  f.seed = static_cast<std::uint64_t>(
      opt_int(j, "seed", static_cast<std::int64_t>(f.seed)));
  f.max_retries = static_cast<std::size_t>(
      opt_int(j, "max_retries", static_cast<std::int64_t>(f.max_retries)));
  return f;
}

}  // namespace

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

obs::Json input_to_json(const app::Input& input) {
  obs::Json j = obs::Json::object();
  j["method"] = input.method;
  j["basis"] = input.basis;
  j["reference"] = reference_name(input.reference);
  j["charge"] = input.charge;
  j["multiplicity"] = input.multiplicity;
  j["task"] = task_name(input.task);
  j["eps_schwarz"] = input.eps_schwarz;
  j["md_steps"] = input.md_steps;
  j["md_timestep_fs"] = input.md_timestep_fs;
  j["md_temperature_k"] = input.md_temperature_k;
  j["grid_radial"] = input.grid_radial;
  j["grid_angular"] = input.grid_angular;
  j["num_threads"] = input.num_threads;
  j["fault"] = fault_to_json(input.fault);
  j["checkpoint_path"] = input.checkpoint_path;
  j["restore_path"] = input.restore_path;
  // `cancel` is an execution-policy handle, never serialized.
  j["molecule"] = fault::molecule_to_json(input.molecule);
  return j;
}

app::Input input_from_json(const obs::Json& j) {
  app::Input input;
  input.method = opt_string(j, "method", input.method);
  input.basis = opt_string(j, "basis", input.basis);
  input.reference =
      reference_from_name(opt_string(j, "reference", "auto"));
  input.charge = static_cast<int>(opt_int(j, "charge", input.charge));
  input.multiplicity =
      static_cast<int>(opt_int(j, "multiplicity", input.multiplicity));
  input.task = task_from_name(opt_string(j, "task", "energy"));
  input.eps_schwarz = opt_double(j, "eps_schwarz", input.eps_schwarz);
  input.md_steps = static_cast<int>(opt_int(j, "md_steps", input.md_steps));
  input.md_timestep_fs =
      opt_double(j, "md_timestep_fs", input.md_timestep_fs);
  input.md_temperature_k =
      opt_double(j, "md_temperature_k", input.md_temperature_k);
  input.grid_radial =
      static_cast<int>(opt_int(j, "grid_radial", input.grid_radial));
  input.grid_angular =
      static_cast<int>(opt_int(j, "grid_angular", input.grid_angular));
  input.num_threads = static_cast<std::size_t>(
      opt_int(j, "num_threads", static_cast<std::int64_t>(input.num_threads)));
  if (const obs::Json* f = j.find("fault")) input.fault = fault_from_json(*f);
  input.checkpoint_path = opt_string(j, "checkpoint_path", "");
  input.restore_path = opt_string(j, "restore_path", "");
  input.molecule = fault::molecule_from_json(require(j, "molecule"));
  return input;
}

obs::Json structured_result_to_json(const app::StructuredResult& result) {
  obs::Json j = obs::Json::object();
  j["ok"] = result.ok;
  j["converged"] = result.converged;
  j["reference"] = result.reference;
  j["energy"] = result.energy;
  j["scf_iterations"] = result.scf_iterations;
  j["xc_energy"] = result.xc_energy;
  j["exact_exchange_energy"] = result.exact_exchange_energy;
  j["homo_lumo_gap_ev"] = result.homo_lumo_gap_ev;
  j["dipole_debye"] = result.dipole_debye;
  obs::Json grad = obs::Json::array();
  for (const auto& g : result.gradient) {
    obs::Json row = obs::Json::array();
    row.push_back(g.x);
    row.push_back(g.y);
    row.push_back(g.z);
    grad.push_back(std::move(row));
  }
  j["gradient"] = std::move(grad);
  j["md_frames"] = result.md_frames;
  j["md_max_energy_drift"] = result.md_max_energy_drift;
  j["report"] = result.report;
  return j;
}

app::StructuredResult structured_result_from_json(const obs::Json& j) {
  app::StructuredResult r;
  r.ok = opt_bool(j, "ok", false);
  r.converged = opt_bool(j, "converged", false);
  r.reference = opt_string(j, "reference", "");
  r.energy = opt_double(j, "energy", 0.0);
  r.scf_iterations =
      static_cast<std::size_t>(opt_int(j, "scf_iterations", 0));
  r.xc_energy = opt_double(j, "xc_energy", 0.0);
  r.exact_exchange_energy = opt_double(j, "exact_exchange_energy", 0.0);
  r.homo_lumo_gap_ev = opt_double(j, "homo_lumo_gap_ev", 0.0);
  r.dipole_debye = opt_double(j, "dipole_debye", 0.0);
  if (const obs::Json* grad = j.find("gradient")) {
    for (const obs::Json& row : grad->items()) {
      if (row.items().size() != 3)
        throw std::runtime_error("journal: gradient row is not a triple");
      r.gradient.push_back({row.items()[0].as_double(),
                            row.items()[1].as_double(),
                            row.items()[2].as_double()});
    }
  }
  r.md_frames = static_cast<std::size_t>(opt_int(j, "md_frames", 0));
  r.md_max_energy_drift = opt_double(j, "md_max_energy_drift", 0.0);
  r.report = opt_string(j, "report", "");
  return r;
}

obs::Json job_record_to_json(const JobRecord& record) {
  obs::Json j = obs::Json::object();
  j["id"] = record.id;
  j["name"] = record.name;
  j["tenant"] = record.tenant;
  j["priority"] = record.priority;
  j["state"] = to_string(record.state);
  j["cache_hit"] = record.cache_hit;
  j["replayed"] = record.replayed;
  j["degraded"] = record.degraded;
  j["attempts"] = record.attempts;
  j["deadline_hits"] = record.deadline_hits;
  j["threads"] = record.threads;
  j["wait_seconds"] = record.wait_seconds;
  j["run_seconds"] = record.run_seconds;
  j["backoff_ms"] = record.backoff_ms;
  j["error"] = record.error;
  j["reject_reason"] = record.reject_reason;
  j["degrade_note"] = record.degrade_note;
  j["input"] = input_to_json(record.input);
  j["result"] = structured_result_to_json(record.result);
  return j;
}

JobRecord job_record_from_json(const obs::Json& j) {
  JobRecord r;
  r.id = static_cast<std::uint64_t>(require(j, "id").as_int());
  r.name = opt_string(j, "name", "");
  r.tenant = opt_string(j, "tenant", "");
  r.priority = static_cast<int>(opt_int(j, "priority", 0));
  r.state = job_state_from_name(require(j, "state").as_string());
  r.cache_hit = opt_bool(j, "cache_hit", false);
  r.replayed = opt_bool(j, "replayed", false);
  r.degraded = opt_bool(j, "degraded", false);
  r.attempts = static_cast<std::size_t>(opt_int(j, "attempts", 0));
  r.deadline_hits =
      static_cast<std::size_t>(opt_int(j, "deadline_hits", 0));
  r.threads = static_cast<std::size_t>(opt_int(j, "threads", 0));
  r.wait_seconds = opt_double(j, "wait_seconds", 0.0);
  r.run_seconds = opt_double(j, "run_seconds", 0.0);
  r.backoff_ms = opt_double(j, "backoff_ms", 0.0);
  r.error = opt_string(j, "error", "");
  r.reject_reason = opt_string(j, "reject_reason", "");
  r.degrade_note = opt_string(j, "degrade_note", "");
  r.input = input_from_json(require(j, "input"));
  r.result = structured_result_from_json(require(j, "result"));
  return r;
}

const ReplayedJob* JournalReplay::find(std::uint64_t id) const {
  for (const ReplayedJob& job : jobs)
    if (job.job.id == id) return &job;
  return nullptr;
}

std::uint64_t JournalReplay::max_id() const {
  std::uint64_t max = 0;
  for (const ReplayedJob& job : jobs) max = std::max(max, job.job.id);
  return max;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    throw std::runtime_error("journal: cannot open '" + path +
                             "': " + std::strerror(errno));
  fd_ = fd;
  path_ = path;
}

void Journal::append(const obs::Json& payload) {
  const std::string body = payload.dump();
  std::string line;
  line.reserve(kMagic.size() + 18 + body.size() + 1);
  line.append(kMagic);
  line.push_back(' ');
  line.append(hex64(fnv1a(body)));
  line.push_back(' ');
  line.append(body);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  fault::durable_append(fd_, line);
  ++appended_;
}

void Journal::record_submitted(const Job& job) {
  if (!active()) return;
  obs::Json j = obs::Json::object();
  j["type"] = "submitted";
  j["id"] = job.id;
  j["name"] = job.name;
  j["tenant"] = job.tenant;
  j["priority"] = job.priority;
  j["deadline_s"] = job.deadline_seconds;
  j["input"] = input_to_json(job.input);
  append(j);
}

void Journal::record_started(std::uint64_t id, std::size_t attempt) {
  if (!active()) return;
  obs::Json j = obs::Json::object();
  j["type"] = "started";
  j["id"] = id;
  j["attempt"] = attempt;
  append(j);
}

void Journal::record_attempt_failed(std::uint64_t id, std::size_t attempt,
                                    const std::string& reason,
                                    const std::string& message,
                                    double backoff_ms) {
  if (!active()) return;
  obs::Json j = obs::Json::object();
  j["type"] = "attempt_failed";
  j["id"] = id;
  j["attempt"] = attempt;
  j["reason"] = reason;
  j["message"] = message;
  j["backoff_ms"] = backoff_ms;
  append(j);
}

void Journal::record_committed(const JobRecord& record) {
  if (!active()) return;
  obs::Json j = obs::Json::object();
  j["type"] = "committed";
  j["id"] = record.id;
  j["record"] = job_record_to_json(record);
  append(j);
}

void Journal::record_shutdown(const std::string& reason) {
  if (!active()) return;
  obs::Json j = obs::Json::object();
  j["type"] = "shutdown";
  j["reason"] = reason;
  append(j);
}

std::uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

JournalReplay Journal::replay(const std::string& path) {
  JournalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return replay;  // never started = empty campaign

  auto warn = [&replay](std::size_t line_no, const std::string& what) {
    ++replay.skipped;
    replay.warnings.push_back("journal line " + std::to_string(line_no) +
                              ": " + what);
  };

  auto job_slot = [&replay](std::uint64_t id) -> ReplayedJob* {
    for (ReplayedJob& job : replay.jobs)
      if (job.job.id == id) return &job;
    return nullptr;
  };

  // Records are checked and parsed in file order, then applied in two
  // passes (submitted first): workers journal concurrently with the
  // submitter, so a job's `started` — or even `committed` — record can
  // legitimately precede its `submitted` record in the file.
  struct Parsed {
    std::size_t line_no;
    obs::Json payload;
  };
  std::vector<Parsed> parsed;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Frame: MTHFXJ1 <16-hex> <json>
    if (line.size() < kMagic.size() + 19 ||
        line.compare(0, kMagic.size(), kMagic) != 0 ||
        line[kMagic.size()] != ' ' || line[kMagic.size() + 17] != ' ') {
      warn(line_no, "malformed frame (skipped)");
      continue;
    }
    const std::string_view hex =
        std::string_view(line).substr(kMagic.size() + 1, 16);
    const std::string_view body =
        std::string_view(line).substr(kMagic.size() + 18);
    std::uint64_t expected = 0;
    bool hex_ok = true;
    for (char c : hex) {
      expected <<= 4;
      if (c >= '0' && c <= '9') expected |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        expected |= static_cast<std::uint64_t>(c - 'a' + 10);
      else { hex_ok = false; break; }
    }
    if (!hex_ok || fnv1a(body) != expected) {
      warn(line_no, "checksum mismatch (torn or corrupt record, skipped)");
      continue;
    }

    try {
      parsed.push_back({line_no, obs::Json::parse(body)});
    } catch (const std::exception& e) {
      warn(line_no, std::string("unparseable payload: ") + e.what());
      continue;
    }
  }

  auto record_type = [](const obs::Json& payload) -> std::string {
    const obs::Json* type = payload.find("type");
    return type ? type->as_string() : std::string();
  };

  // Pass 1: submitted records create the job slots.
  for (const Parsed& item : parsed) {
    if (record_type(item.payload) != "submitted") continue;
    const obs::Json& payload = item.payload;
    try {
      ReplayedJob job;
      job.job.id =
          static_cast<std::uint64_t>(require(payload, "id").as_int());
      job.job.name = opt_string(payload, "name", "");
      job.job.tenant = opt_string(payload, "tenant", "");
      job.job.priority = static_cast<int>(opt_int(payload, "priority", 0));
      job.job.deadline_seconds = opt_double(payload, "deadline_s", 0.0);
      job.job.input = input_from_json(require(payload, "input"));
      if (job_slot(job.job.id)) {
        warn(item.line_no, "duplicate submitted record for job " +
                               std::to_string(job.job.id));
      } else {
        replay.jobs.push_back(std::move(job));
        ++replay.records;
      }
    } catch (const std::exception& e) {
      warn(item.line_no, std::string("bad record: ") + e.what());
    }
  }

  // Pass 2: attempt/commit records attach to their slots. A committed
  // record whose submitted record was lost (torn tail) still counts — it
  // carries the full JobRecord, enough to rebuild the job.
  for (const Parsed& item : parsed) {
    const std::string type = record_type(item.payload);
    if (type == "submitted") continue;
    const obs::Json& payload = item.payload;
    try {
      if (type == "started") {
        const auto id =
            static_cast<std::uint64_t>(require(payload, "id").as_int());
        if (ReplayedJob* job = job_slot(id)) {
          ++job->attempts_started;
          ++replay.records;
        } else {
          warn(item.line_no,
               "started record for unknown job " + std::to_string(id));
        }
      } else if (type == "attempt_failed") {
        const auto id =
            static_cast<std::uint64_t>(require(payload, "id").as_int());
        if (ReplayedJob* job = job_slot(id)) {
          ++job->attempts_failed;
          ++replay.records;
        } else {
          warn(item.line_no, "attempt_failed record for unknown job " +
                                 std::to_string(id));
        }
      } else if (type == "committed") {
        const auto id =
            static_cast<std::uint64_t>(require(payload, "id").as_int());
        JobRecord record = job_record_from_json(require(payload, "record"));
        ReplayedJob* job = job_slot(id);
        if (!job) {
          ReplayedJob rebuilt;
          rebuilt.job.id = id;
          rebuilt.job.name = record.name;
          rebuilt.job.tenant = record.tenant;
          rebuilt.job.priority = record.priority;
          rebuilt.job.input = record.input;
          replay.jobs.push_back(std::move(rebuilt));
          job = &replay.jobs.back();
        }
        job->committed = true;
        job->record = std::move(record);
        ++replay.records;
      } else if (type == "shutdown") {
        // A clean shutdown closed the previous run; resuming after one is
        // routine (drain + restart), not crash recovery.
        replay.clean_shutdown = true;
        replay.shutdown_reason = opt_string(payload, "reason", "");
        ++replay.records;
      } else {
        warn(item.line_no, "unknown record type '" + type + "'");
      }
    } catch (const std::exception& e) {
      warn(item.line_no, std::string("bad record: ") + e.what());
    }
  }

  std::sort(replay.jobs.begin(), replay.jobs.end(),
            [](const ReplayedJob& a, const ReplayedJob& b) {
              return a.job.id < b.job.id;
            });
  return replay;
}

}  // namespace mthfx::engine
