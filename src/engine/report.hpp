#pragma once

// Machine-readable result records. One formatter serves both front-ends:
// `mthfx_cli --json` emits result_record for its single run, and
// `mthfx_queue` emits the same record inside each job_record of its
// campaign report — so downstream tooling parses one schema
// ("mthfx.result.v1", documented in docs/engine.md) regardless of how
// the calculation was driven.

#include <vector>

#include "app/driver.hpp"
#include "app/input.hpp"
#include "engine/job.hpp"
#include "engine/scheduler.hpp"
#include "obs/json.hpp"

namespace mthfx::engine {

/// {"schema": "mthfx.result.v1", "input": {...}, "result": {...}}.
/// `input` includes the cache fingerprint key (hex) so records can be
/// joined against ResultStore behavior.
obs::Json result_record(const app::Input& input,
                        const app::StructuredResult& result);

/// One engine job: queueing metadata (state, attempts, wait/run time,
/// cache_hit) plus the embedded result_record fields for executed jobs.
obs::Json job_record(const JobRecord& record);

/// Full campaign report: engine configuration, aggregate queue/cache
/// statistics from the scheduler, and every job record.
obs::Json campaign_report(const JobScheduler& scheduler,
                          const std::vector<JobRecord>& records);

}  // namespace mthfx::engine
