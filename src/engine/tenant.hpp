#pragma once

// Multi-tenant fair-share admission in front of the JobScheduler. The
// serve layer gives every connection a tenant id; this class gives every
// tenant its own bounded sub-queue and feeds the scheduler's priority
// queue by weighted deficit round-robin, so one flooding tenant cannot
// starve the others no matter how fast it submits.
//
// Flow: submit(tenant, job) -> quota check against the tenant's backlog
// cap (reject-with-reason, or displace the tenant's own lowest-priority
// pending job for a strictly-higher-priority newcomer — shedding never
// crosses tenants) -> tenant sub-queue -> pump. The pump visits tenants
// round-robin; each visit adds `weight` to the tenant's deficit and
// admits one pending job per unit of deficit into the core queue, while
// the core queue has room and the tenant is under its in-flight cap.
// Jobs all cost one unit (one SCF-sized calculation), so deficit
// round-robin reduces to weighted fairness over job counts: tenants at
// weights 2:1 complete work 2:1 under saturation.
//
// Wire `on_terminal` to EngineOptions::on_record: each terminal record
// returns the tenant's in-flight credit and re-pumps, so admission is
// driven by completions once the system saturates — which is exactly
// when the DRR ordering matters.
//
// Per-tenant metrics land in the scheduler's registry as
// engine.tenant.<id>.{submitted,admitted,completed,failed,rejected,
// shed,canceled}.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/job.hpp"
#include "engine/queue.hpp"
#include "engine/scheduler.hpp"
#include "obs/json.hpp"

namespace mthfx::engine {

/// Per-tenant fair-share configuration.
struct TenantOptions {
  /// Relative DRR share; tenants at weights 2:1 are admitted 2:1 under
  /// saturation. Must be > 0 (fractional weights allowed).
  double weight = 1.0;
  /// Backlog cap: pending (not yet admitted) jobs per tenant. Beyond it
  /// submissions are rejected with a structured `tenant quota:` reason
  /// (or shed a lower-priority pending job of the same tenant).
  std::size_t max_queued = 256;
  /// Cap on admitted-but-not-terminal jobs; 0 = unlimited.
  std::size_t max_in_flight = 0;
};

/// Snapshot of one tenant's accounting (see stats()).
struct TenantStats {
  TenantOptions options;
  std::size_t queued = 0;     ///< pending in the tenant sub-queue
  std::size_t in_flight = 0;  ///< admitted to the core queue, not terminal
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t canceled = 0;
};

class FairShareQueue {
 public:
  /// `defaults` configures tenants that were never `configure`d (a
  /// connection may authenticate with a fresh tenant id at any time).
  /// The scheduler must outlive this object, and its core queue should
  /// run with `shed_lowest = false` — shedding policy lives here, per
  /// tenant, so one tenant's burst can never displace another's work.
  explicit FairShareQueue(JobScheduler& scheduler,
                          TenantOptions defaults = {});

  /// Register or reconfigure a tenant. Throws std::invalid_argument for
  /// weight <= 0 or max_queued == 0.
  void configure(const std::string& tenant, TenantOptions options);

  /// Admission-controlled submission under `tenant`'s quota. A job with
  /// id 0 is assigned the next id immediately (clients need it before
  /// the job reaches the core queue); non-zero ids are honored (journal
  /// resume). On success the admission carries the id; the job may still
  /// be pending in the tenant sub-queue.
  Admission submit(const std::string& tenant, Job job);

  /// Withdraw a job that is still pending in its tenant sub-queue. The
  /// canceled record (state kCanceled, `note` in error) is committed
  /// through the scheduler so it survives a resume. Returns false with
  /// `*error` set when the id is unknown here (already admitted, or
  /// never submitted) — the caller decides what that means.
  bool cancel(std::uint64_t id, const std::string& note, std::string* error);

  /// Terminal-record hook: wire to EngineOptions::on_record. Returns the
  /// tenant's in-flight credit and re-pumps the sub-queues.
  void on_terminal(const JobRecord& record);

  /// Try to admit pending work (normally driven by submit/on_terminal;
  /// public for fronts that change core-queue capacity out of band).
  void pump();

  /// Block until no tenant has pending or in-flight work (graceful
  /// drain: stop submitting, then wait_idle, then scheduler.drain()).
  void wait_idle();

  std::size_t backlog() const;  ///< total pending across tenants
  std::size_t in_flight() const;

  /// Tenants in registration order with their accounting snapshots.
  std::vector<std::pair<std::string, TenantStats>> stats() const;
  obs::Json stats_json() const;

  /// Continue id assignment after a journal replay.
  void set_next_id(std::uint64_t next_id);

 private:
  struct Tenant {
    std::string id;
    TenantOptions options;
    std::deque<Job> pending;
    double deficit = 0.0;
    TenantStats totals;  ///< queued/in_flight mirrored on read
    obs::Counter c_submitted, c_admitted, c_completed, c_failed;
    obs::Counter c_rejected, c_shed, c_canceled;
  };

  Tenant& ensure_locked(const std::string& tenant);
  void pump_locked();
  std::string quota_reason_locked(const Tenant& t) const;

  JobScheduler& scheduler_;
  TenantOptions defaults_;
  // Recursive: a pump-admitted submission can synchronously publish a
  // record (queue closed during drain) whose on_record hook re-enters
  // on_terminal on the same thread; `pumping_` stops pump recursion.
  mutable std::recursive_mutex mutex_;
  std::condition_variable_any idle_cv_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  ///< registration order
  std::unordered_map<std::string, Tenant*> by_name_;
  std::unordered_map<std::uint64_t, Tenant*> pending_ids_;
  std::unordered_map<std::uint64_t, Tenant*> admitted_ids_;
  std::size_t cursor_ = 0;  ///< DRR position in tenants_
  std::uint64_t next_id_ = 1;
  bool pumping_ = false;
  std::size_t metric_slot_ = 0;
};

}  // namespace mthfx::engine
