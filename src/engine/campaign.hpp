#pragma once

// Declarative campaign specs for the screening engine: a campaign file
// describes engine settings plus one or more sweep blocks; each sweep is
// a cross product molecule x lattice size x basis x method that expands
// into Jobs (clusters built with workload::cluster_of). Grammar (full
// reference in docs/engine.md):
//
//   # engine settings (each keyword at most once)
//   concurrency 4
//   queue_capacity 256
//   total_threads 0          # shared budget; 0 = hardware
//   job_retries 1
//   cache on                 # on | off
//   checkpoint_dir ckpts     # optional per-job checkpoint directory
//   journal campaign.wal     # write-ahead job journal (crash recovery)
//   store_dir store          # disk-backed ResultStore directory
//   store_max_bytes 1000000  # LRU-evict the store above this (0 = off)
//   deadline 30              # default per-job deadline, seconds (0 = off)
//   shed on                  # displace lowest-priority work when full
//   degrade_depth 0          # coarsen DFT grids at this queue depth
//   backoff_base_ms 10       # retry backoff: base delay
//   backoff_max_ms 1000      #   exponential cap
//   backoff_jitter 0.5       #   jittered fraction, [0, 1]
//   backoff_seed 0           #   deterministic jitter seed
//
//   sweep                    # one or more blocks
//     molecules pc dmso      # workload::by_name names
//     sizes 1 2              # molecules per cluster (cluster_of)
//     bases sto-3g
//     methods hf pbe0
//     spacing 9.0            # lattice spacing (bohr)
//     task energy            # energy | gradient | md
//     eps_schwarz 1e-8
//     md_steps 5             # md task only
//     md_timestep_fs 0.2
//     md_temperature_k 300
//     grid_radial 40
//     grid_angular 38
//     priority 0             # higher runs first
//     repeat 1               # submit the whole block this many times
//     deadline 10            # per-job deadline for this sweep (seconds)
//     fault_spec fail=0.01,seed=42
//   end
//
// '#' starts a comment anywhere. Duplicate keywords within a scope are
// rejected (same policy as the input-file parser).

#include <string>
#include <vector>

#include "engine/job.hpp"
#include "engine/scheduler.hpp"

namespace mthfx::engine {

/// One sweep block. Axes with several values multiply out; `repeat`
/// replays the whole expansion (duplicates exercise the ResultStore).
struct SweepSpec {
  std::vector<std::string> molecules{"water"};
  std::vector<int> sizes{1};
  std::vector<std::string> bases{"sto-3g"};
  std::vector<std::string> methods{"hf"};
  double spacing_bohr = 10.0;
  app::Task task = app::Task::kEnergy;
  double eps_schwarz = 1e-10;
  int md_steps = 10;
  double md_timestep_fs = 0.2;
  double md_temperature_k = 0.0;
  int grid_radial = 40;
  int grid_angular = 38;
  int priority = 0;
  int repeat = 1;
  /// Per-job wall-clock deadline for this sweep's jobs; 0 inherits the
  /// engine default.
  double deadline_seconds = 0.0;
  fault::FaultOptions fault;
};

struct CampaignSpec {
  EngineOptions engine;
  std::vector<SweepSpec> sweeps;

  /// Expand every sweep into jobs (submission order: sweeps in file
  /// order, repeats outermost within a sweep, then molecule, size,
  /// basis, method). Job names are "<molecule>.n<size>.<basis>.<method>"
  /// with "#r<k>" appended for repeats. Throws std::invalid_argument
  /// for unknown molecule names.
  std::vector<Job> expand() const;
};

/// Parse campaign text / file. Throws std::runtime_error with a
/// line-numbered message on malformed input.
CampaignSpec parse_campaign(const std::string& text);
CampaignSpec parse_campaign_file(const std::string& path);

}  // namespace mthfx::engine
