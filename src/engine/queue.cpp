#include "engine/queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mthfx::engine {

JobQueue::JobQueue(std::size_t capacity, bool shed_lowest)
    : capacity_(capacity), shed_lowest_(shed_lowest) {
  if (capacity == 0)
    throw std::invalid_argument("JobQueue: capacity must be >= 1");
}

Admission JobQueue::submit(Job job) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) {
    ++rejected_;
    return {false, "queue closed"};
  }
  if (job.input.molecule.size() == 0) {
    ++rejected_;
    return {false, "job '" + job.name + "' has no geometry"};
  }
  Admission admission;
  if (queued_.size() >= capacity_) {
    // Saturated. Shed the lowest-priority (then youngest) queued job for
    // a strictly-higher-priority newcomer; otherwise reject the arrival.
    auto victim = queued_.empty() ? queued_.end() : std::prev(queued_.end());
    if (!shed_lowest_ || victim == queued_.end() ||
        job.priority <= victim->first.priority) {
      ++rejected_;
      return {false, "queue full (capacity " + std::to_string(capacity_) +
                         ", depth " + std::to_string(queued_.size()) + ")"};
    }
    admission.displaced = std::move(victim->second.job);
    queued_.erase(victim);
    ++shed_;
  }
  if (job.id == 0)
    job.id = next_id_++;
  else
    next_id_ = std::max(next_id_, job.id + 1);
  ++accepted_;
  admission.accepted = true;
  admission.id = job.id;
  const Key key{job.priority, job.id};
  queued_.emplace(key, Entry{std::move(job), epoch_.seconds()});
  high_water_ = std::max(high_water_, queued_.size());
  cv_.notify_one();
  return admission;
}

std::optional<PoppedJob> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queued_.empty(); });
  if (queued_.empty()) return std::nullopt;  // closed and drained
  auto it = queued_.begin();
  PoppedJob popped{std::move(it->second.job),
                   epoch_.seconds() - it->second.submit_seconds};
  queued_.erase(it);
  return popped;
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_.size();
}

std::size_t JobQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

std::uint64_t JobQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

std::uint64_t JobQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::uint64_t JobQueue::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace mthfx::engine
