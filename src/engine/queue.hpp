#pragma once

// Bounded, priority-ordered job queue with admission control. The queue
// is the engine's backpressure point: `submit` never blocks — when the
// queue is at capacity (or closed, or the job is unusable) the job is
// rejected *with a reason*, so a campaign front-end can throttle, shed,
// or report instead of wedging the submitter. Workers block in `pop`.
//
// Ordering: higher priority first; FIFO (submission order) within a
// priority level, so a campaign's job order is deterministic.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "engine/job.hpp"
#include "obs/stopwatch.hpp"

namespace mthfx::engine {

/// Admission verdict. `reason` is empty iff `accepted`. `id` is the
/// admitted job's id. When admission displaced a lower-priority queued
/// job (load shedding), the victim rides along in `displaced` so the
/// engine can record *why* it was shed.
struct Admission {
  bool accepted = false;
  std::string reason;
  std::uint64_t id = 0;
  std::optional<Job> displaced;
};

/// A popped job plus how long it waited in the queue.
struct PoppedJob {
  Job job;
  double wait_seconds = 0.0;
};

class JobQueue {
 public:
  /// `capacity` bounds the number of queued (admitted, not yet popped)
  /// jobs. Must be >= 1. With `shed_lowest`, a submission that finds the
  /// queue full displaces the lowest-priority (then youngest) queued job
  /// when the newcomer's priority is strictly higher — equal-priority
  /// arrivals still reject, so FIFO fairness within a level is kept.
  explicit JobQueue(std::size_t capacity, bool shed_lowest = false);

  /// Admission control: rejects (without blocking) when the queue is
  /// closed, the job has no geometry, or the queue is full (and cannot
  /// shed). A job arriving with id 0 is assigned the next id (submission
  /// order, starting at 1); a non-zero id is honored as-is — journal
  /// replay resubmits surviving jobs under their original ids.
  Admission submit(Job job);

  /// Blocks until a job is available or the queue is closed and
  /// drained (then returns nullopt). Highest priority first.
  std::optional<PoppedJob> pop();

  /// No further admissions; pending jobs still drain through pop().
  void close();

  bool closed() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const;        ///< currently queued
  std::size_t high_water() const;   ///< max depth ever reached
  std::uint64_t accepted() const;   ///< total admitted
  std::uint64_t rejected() const;   ///< total refused
  std::uint64_t shed() const;       ///< queued jobs displaced at capacity

 private:
  struct Key {
    int priority = 0;
    std::uint64_t seq = 0;  ///< admission order, breaks priority ties
    bool operator<(const Key& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq < other.seq;
    }
  };
  struct Entry {
    Job job;
    double submit_seconds = 0.0;  ///< queue-epoch timestamp
  };

  const std::size_t capacity_;
  const bool shed_lowest_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  obs::Stopwatch epoch_;
  std::map<Key, Entry> queued_;
  bool closed_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mthfx::engine
