#include "linalg/block_sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mthfx::linalg {

BlockPartition::BlockPartition(std::vector<std::size_t> offsets)
    : offsets_(std::move(offsets)) {
  if (offsets_.empty() || offsets_.front() != 0)
    throw std::invalid_argument("BlockPartition: offsets must start at 0");
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i)
    if (offsets_[i] >= offsets_[i + 1])
      throw std::invalid_argument(
          "BlockPartition: offsets must be strictly increasing");
}

BlockPartition BlockPartition::uniform(std::size_t dim,
                                       std::size_t target_block) {
  if (dim == 0) return BlockPartition(std::vector<std::size_t>{0});
  if (target_block == 0) target_block = 1;
  const std::size_t nblocks = (dim + target_block - 1) / target_block;
  std::vector<std::size_t> offsets(nblocks + 1);
  for (std::size_t b = 0; b <= nblocks; ++b)
    offsets[b] = b * dim / nblocks;
  return BlockPartition(std::move(offsets));
}

std::size_t BlockPartition::block_of(std::size_t i) const {
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), i);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

BlockSparseMatrix::BlockSparseMatrix(BlockPartition partition)
    : partition_(std::move(partition)), rows_(partition_.num_blocks()) {}

BlockSparseMatrix BlockSparseMatrix::from_dense(const Matrix& dense,
                                                const BlockPartition& partition,
                                                double drop_tol) {
  if (dense.rows() != partition.dim() || dense.cols() != partition.dim())
    throw std::invalid_argument("from_dense: partition/dense shape mismatch");
  BlockSparseMatrix out(partition);
  const std::size_t nb = partition.num_blocks();
  for (std::size_t br = 0; br < nb; ++br) {
    const std::size_t r0 = partition.begin(br), nr = partition.size(br);
    for (std::size_t bc = 0; bc < nb; ++bc) {
      const std::size_t c0 = partition.begin(bc), nc = partition.size(bc);
      double mx = 0.0;
      for (std::size_t i = 0; i < nr; ++i)
        for (std::size_t j = 0; j < nc; ++j)
          mx = std::max(mx, std::abs(dense(r0 + i, c0 + j)));
      if (mx == 0.0 || mx < drop_tol) continue;
      Block blk;
      blk.col = bc;
      blk.data.resize(nr * nc);
      for (std::size_t i = 0; i < nr; ++i)
        for (std::size_t j = 0; j < nc; ++j)
          blk.data[i * nc + j] = dense(r0 + i, c0 + j);
      out.rows_[br].push_back(std::move(blk));
    }
  }
  return out;
}

Matrix BlockSparseMatrix::to_dense() const {
  Matrix out(dim(), dim());
  for (std::size_t br = 0; br < rows_.size(); ++br) {
    const std::size_t r0 = partition_.begin(br), nr = partition_.size(br);
    for (const Block& blk : rows_[br]) {
      const std::size_t c0 = partition_.begin(blk.col);
      const std::size_t nc = partition_.size(blk.col);
      for (std::size_t i = 0; i < nr; ++i)
        for (std::size_t j = 0; j < nc; ++j)
          out(r0 + i, c0 + j) = blk.data[i * nc + j];
    }
  }
  return out;
}

BlockSparseMatrix BlockSparseMatrix::identity(const BlockPartition& partition) {
  BlockSparseMatrix out(partition);
  for (std::size_t b = 0; b < partition.num_blocks(); ++b) {
    const std::size_t n = partition.size(b);
    Block blk;
    blk.col = b;
    blk.data.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) blk.data[i * n + i] = 1.0;
    out.rows_[b].push_back(std::move(blk));
  }
  return out;
}

const double* BlockSparseMatrix::find(std::size_t br, std::size_t bc) const {
  const std::vector<Block>& row = rows_[br];
  const auto it = std::lower_bound(
      row.begin(), row.end(), bc,
      [](const Block& blk, std::size_t c) { return blk.col < c; });
  if (it == row.end() || it->col != bc) return nullptr;
  return it->data.data();
}

void BlockSparseMatrix::set_block(std::size_t br, std::size_t bc,
                                  std::vector<double> data) {
  std::vector<Block>& row = rows_[br];
  const auto it = std::lower_bound(
      row.begin(), row.end(), bc,
      [](const Block& blk, std::size_t c) { return blk.col < c; });
  if (it != row.end() && it->col == bc) {
    it->data = std::move(data);
    return;
  }
  Block blk;
  blk.col = bc;
  blk.data = std::move(data);
  row.insert(it, std::move(blk));
}

std::size_t BlockSparseMatrix::stored_blocks() const {
  std::size_t n = 0;
  for (const std::vector<Block>& row : rows_) n += row.size();
  return n;
}

double BlockSparseMatrix::nnz_fraction() const {
  const double total = static_cast<double>(dim()) * static_cast<double>(dim());
  if (total == 0.0) return 0.0;
  double stored = 0.0;
  for (const std::vector<Block>& row : rows_)
    for (const Block& blk : row) stored += static_cast<double>(blk.data.size());
  return stored / total;
}

double BlockSparseMatrix::trace() const {
  double t = 0.0;
  for (std::size_t br = 0; br < rows_.size(); ++br) {
    const double* d = find(br, br);
    if (!d) continue;
    const std::size_t n = partition_.size(br);
    for (std::size_t i = 0; i < n; ++i) t += d[i * n + i];
  }
  return t;
}

double BlockSparseMatrix::max_abs() const {
  double mx = 0.0;
  for (const std::vector<Block>& row : rows_)
    for (const Block& blk : row)
      for (double v : blk.data) mx = std::max(mx, std::abs(v));
  return mx;
}

void BlockSparseMatrix::scale(double s) {
  for (std::vector<Block>& row : rows_)
    for (Block& blk : row)
      for (double& v : blk.data) v *= s;
}

void BlockSparseMatrix::axpy(double alpha, const BlockSparseMatrix& other) {
  if (!(partition_ == other.partition_))
    throw std::invalid_argument("axpy: partition mismatch");
  for (std::size_t br = 0; br < rows_.size(); ++br) {
    for (const Block& oblk : other.rows_[br]) {
      std::vector<Block>& row = rows_[br];
      const auto it = std::lower_bound(
          row.begin(), row.end(), oblk.col,
          [](const Block& blk, std::size_t c) { return blk.col < c; });
      if (it != row.end() && it->col == oblk.col) {
        for (std::size_t k = 0; k < oblk.data.size(); ++k)
          it->data[k] += alpha * oblk.data[k];
      } else {
        Block blk;
        blk.col = oblk.col;
        blk.data.resize(oblk.data.size());
        for (std::size_t k = 0; k < oblk.data.size(); ++k)
          blk.data[k] = alpha * oblk.data[k];
        row.insert(it, std::move(blk));
      }
    }
  }
}

void BlockSparseMatrix::add_scaled_identity(double alpha) {
  for (std::size_t br = 0; br < rows_.size(); ++br) {
    const std::size_t n = partition_.size(br);
    std::vector<Block>& row = rows_[br];
    const auto it = std::lower_bound(
        row.begin(), row.end(), br,
        [](const Block& blk, std::size_t c) { return blk.col < c; });
    if (it != row.end() && it->col == br) {
      for (std::size_t i = 0; i < n; ++i) it->data[i * n + i] += alpha;
    } else {
      Block blk;
      blk.col = br;
      blk.data.assign(n * n, 0.0);
      for (std::size_t i = 0; i < n; ++i) blk.data[i * n + i] = alpha;
      row.insert(it, std::move(blk));
    }
  }
}

void BlockSparseMatrix::prune(double drop_tol) {
  for (std::vector<Block>& row : rows_) {
    std::erase_if(row, [drop_tol](const Block& blk) {
      double mx = 0.0;
      for (double v : blk.data) mx = std::max(mx, std::abs(v));
      return mx < drop_tol;
    });
  }
}

std::pair<double, double> BlockSparseMatrix::gershgorin() const {
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (std::size_t br = 0; br < rows_.size(); ++br) {
    const std::size_t r0 = partition_.begin(br), nr = partition_.size(br);
    std::vector<double> center(nr, 0.0), radius(nr, 0.0);
    for (const Block& blk : rows_[br]) {
      const std::size_t c0 = partition_.begin(blk.col);
      const std::size_t nc = partition_.size(blk.col);
      for (std::size_t i = 0; i < nr; ++i) {
        for (std::size_t j = 0; j < nc; ++j) {
          const double v = blk.data[i * nc + j];
          if (c0 + j == r0 + i)
            center[i] = v;
          else
            radius[i] += std::abs(v);
        }
      }
    }
    for (std::size_t i = 0; i < nr; ++i) {
      const double l = center[i] - radius[i];
      const double h = center[i] + radius[i];
      if (first || l < lo) lo = l;
      if (first || h > hi) hi = h;
      first = false;
    }
  }
  return {lo, hi};
}

BlockSparseMatrix multiply(const BlockSparseMatrix& a,
                           const BlockSparseMatrix& b, double drop_tol) {
  if (!(a.partition_ == b.partition_))
    throw std::invalid_argument("multiply: partition mismatch");
  const BlockPartition& part = a.partition_;
  const std::size_t nb = part.num_blocks();
  BlockSparseMatrix c(part);

  // Row-panel accumulation: one dense panel of shape size(br) x dim per
  // block row, touched-column tracking, then threshold extraction. The
  // panel is reused across rows, so peak scratch is one thin slab.
  std::vector<double> panel;
  std::vector<char> touched(nb, 0);
  std::vector<std::size_t> touched_cols;
  const std::size_t dim = part.dim();
  for (std::size_t br = 0; br < nb; ++br) {
    if (a.rows_[br].empty()) continue;
    const std::size_t nr = part.size(br);
    panel.assign(nr * dim, 0.0);
    touched_cols.clear();
    for (const BlockSparseMatrix::Block& ablk : a.rows_[br]) {
      const std::size_t bk = ablk.col;
      const std::size_t nk = part.size(bk);
      for (const BlockSparseMatrix::Block& bblk : b.rows_[bk]) {
        const std::size_t bc = bblk.col;
        const std::size_t nc = part.size(bc);
        const std::size_t c0 = part.begin(bc);
        if (!touched[bc]) {
          touched[bc] = 1;
          touched_cols.push_back(bc);
        }
        // panel[0:nr, c0:c0+nc] += ablk (nr x nk) * bblk (nk x nc)
        for (std::size_t i = 0; i < nr; ++i) {
          double* out = panel.data() + i * dim + c0;
          const double* arow = ablk.data.data() + i * nk;
          for (std::size_t k = 0; k < nk; ++k) {
            const double av = arow[k];
            if (av == 0.0) continue;
            const double* brow = bblk.data.data() + k * nc;
            for (std::size_t j = 0; j < nc; ++j) out[j] += av * brow[j];
          }
        }
      }
    }
    std::sort(touched_cols.begin(), touched_cols.end());
    for (const std::size_t bc : touched_cols) {
      touched[bc] = 0;
      const std::size_t nc = part.size(bc);
      const std::size_t c0 = part.begin(bc);
      double mx = 0.0;
      for (std::size_t i = 0; i < nr; ++i)
        for (std::size_t j = 0; j < nc; ++j)
          mx = std::max(mx, std::abs(panel[i * dim + c0 + j]));
      if (mx == 0.0 || mx < drop_tol) continue;
      BlockSparseMatrix::Block blk;
      blk.col = bc;
      blk.data.resize(nr * nc);
      for (std::size_t i = 0; i < nr; ++i)
        for (std::size_t j = 0; j < nc; ++j)
          blk.data[i * nc + j] = panel[i * dim + c0 + j];
      c.rows_[br].push_back(std::move(blk));
    }
  }
  return c;
}

double trace_product(const BlockSparseMatrix& a, const BlockSparseMatrix& b) {
  if (!(a.partition() == b.partition()))
    throw std::invalid_argument("trace_product: partition mismatch");
  const BlockPartition& part = a.partition();
  double t = 0.0;
  for (std::size_t br = 0; br < part.num_blocks(); ++br) {
    const std::size_t nr = part.size(br);
    for (const BlockSparseMatrix::Block& ablk : a.row(br)) {
      const double* bdat = b.find(ablk.col, br);
      if (!bdat) continue;
      const std::size_t nc = part.size(ablk.col);
      // tr contribution: sum_ij A[br,bc](i,j) * B[bc,br](j,i)
      for (std::size_t i = 0; i < nr; ++i)
        for (std::size_t j = 0; j < nc; ++j)
          t += ablk.data[i * nc + j] * bdat[j * nr + i];
    }
  }
  return t;
}

double difference_norm(const BlockSparseMatrix& a, const BlockSparseMatrix& b) {
  if (!(a.partition() == b.partition()))
    throw std::invalid_argument("difference_norm: partition mismatch");
  const BlockPartition& part = a.partition();
  double s = 0.0;
  for (std::size_t br = 0; br < part.num_blocks(); ++br) {
    const std::size_t nr = part.size(br);
    // Walk the union of both rows' sorted column lists.
    const auto& arow = a.row(br);
    const auto& brow = b.row(br);
    std::size_t ia = 0, ib = 0;
    while (ia < arow.size() || ib < brow.size()) {
      const std::size_t ca =
          ia < arow.size() ? arow[ia].col : static_cast<std::size_t>(-1);
      const std::size_t cb =
          ib < brow.size() ? brow[ib].col : static_cast<std::size_t>(-1);
      if (ca < cb) {
        for (double v : arow[ia].data) s += v * v;
        ++ia;
      } else if (cb < ca) {
        for (double v : brow[ib].data) s += v * v;
        ++ib;
      } else {
        const std::size_t nc = part.size(ca);
        for (std::size_t k = 0; k < nr * nc; ++k) {
          const double d = arow[ia].data[k] - brow[ib].data[k];
          s += d * d;
        }
        ++ia;
        ++ib;
      }
    }
  }
  return std::sqrt(s);
}

}  // namespace mthfx::linalg
