#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace mthfx::linalg {

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

namespace {
// Block size tuned for L1-resident panels of doubles.
constexpr std::size_t kBlock = 64;
}  // namespace

void gemm_acc(double alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t ii = 0; ii < m; ii += kBlock) {
    const std::size_t iend = std::min(ii + kBlock, m);
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
      const std::size_t kend = std::min(kk + kBlock, k);
      for (std::size_t i = ii; i < iend; ++i) {
        double* crow = c.data() + i * n;
        const double* arow = a.data() + i * k;
        for (std::size_t p = kk; p < kend; ++p) {
          const double aip = alpha * arow[p];
          const double* brow = b.data() + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_acc(1.0, a, b, c);
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

double frobenius_dot(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double s = 0.0;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) s += fa[i] * fb[i];
  return s;
}

double frobenius_norm(const Matrix& a) { return std::sqrt(frobenius_dot(a, a)); }

double max_abs(const Matrix& a) {
  double m = 0.0;
  for (double v : a.flat()) m = std::max(m, std::abs(v));
  return m;
}

double trace(const Matrix& a) {
  assert(a.rows() == a.cols());
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) s += a(i, i);
  return s;
}

double trace_product(const Matrix& a, const Matrix& b) {
  assert(a.rows() == a.cols() && b.rows() == b.cols() && a.rows() == b.rows());
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * b(j, i);
  return s;
}

void symmetrize(Matrix& a) {
  assert(a.rows() == a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
}

bool is_symmetric(const Matrix& a, double tol) {
  if (a.rows() != a.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      if (std::abs(a(i, j) - a(j, i)) > tol) return false;
  return true;
}

}  // namespace mthfx::linalg
