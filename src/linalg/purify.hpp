#pragma once

// Eigensolver bypass for large basis dimensions: density-matrix
// purification on block-sparse matrices.
//
// The dense SCF diagonalizes F' = S^{-1/2} F S^{-1/2} every iteration —
// O(nbf³) Jacobi work that dominates past ~1000 basis functions. For
// gapped systems (electrolyte boxes are insulators) the density matrix
// can instead be reached by polynomial iteration using only matrix
// multiplies, which stay near-linear on block-sparse operands:
//
//  - `inverse_sqrt_ns`: coupled Newton–Schulz iteration for S^{-1/2}
//    (Y_{k+1} = Y_k T_k, Z_{k+1} = T_k Z_k with T_k = (3I - Z_k Y_k)/2),
//    Gershgorin-scaled so the spectrum lands in the convergence region.
//    Converges to the same SPD inverse square root the Löwdin
//    eigendecomposition produces.
//  - `tc2_density`: trace-correcting purification (Niklasson's TC2).
//    Starting from a Gershgorin-normalized linear map of F', each step
//    applies P² or 2P - P² depending on whether the trace is above or
//    below the electron count, converging to the spectral projector onto
//    the nocc lowest states — no eigenvalues ever computed.
//
// Validated against linalg::eigh to ≤1e-8 in total energy on mid-size
// systems (tests/test_scaling.cpp).

#include <cstddef>

#include "linalg/block_sparse.hpp"

namespace mthfx::linalg {

struct NewtonSchulzResult {
  BlockSparseMatrix inverse_sqrt;
  int iterations = 0;
  double residual = 0.0;  ///< max |(Z·Y - I)| at exit
  bool converged = false;
};

/// S^{-1/2} of an SPD block-sparse matrix via coupled Newton–Schulz.
/// `drop_tol` prunes multiply results (0 disables dropping).
NewtonSchulzResult inverse_sqrt_ns(const BlockSparseMatrix& s,
                                   double drop_tol, double tol = 1e-11,
                                   int max_iter = 100);

struct PurifyStats {
  int iterations = 0;
  double trace_error = 0.0;        ///< |tr(P) - nocc| at exit
  double idempotency_error = 0.0;  ///< |tr(P²) - tr(P)| at exit
  bool converged = false;
};

/// Spectral projector onto the `nocc` lowest eigenstates of the
/// orthonormal-basis Fock matrix `f_ortho` (TC2). The result is the
/// orthonormal-basis one-particle density with trace nocc; the AO-basis
/// closed-shell density is 2 · X·P·Xᵀ.
BlockSparseMatrix tc2_density(const BlockSparseMatrix& f_ortho,
                              std::size_t nocc, double drop_tol,
                              PurifyStats* stats = nullptr,
                              int max_iter = 200);

}  // namespace mthfx::linalg
