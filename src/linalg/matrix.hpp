#pragma once

// Dense row-major matrix/vector types used throughout mthfx.
//
// Quantum-chemistry working sets here are small-to-medium dense matrices
// (basis dimension up to a few thousand), so a simple contiguous row-major
// store with a blocked GEMM is sufficient and keeps the library
// self-contained (no external BLAS/LAPACK dependency).

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace mthfx::linalg {

/// Dense column vector of doubles.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from an initializer-style flat row-major buffer.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  std::span<double> flat() { return {data_.data(), data_.size()}; }
  std::span<const double> flat() const { return {data_.data(), data_.size()}; }

  void fill(double v) { data_.assign(data_.size(), v); }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double s);
Matrix operator*(double s, Matrix rhs);

/// C = A * B (blocked row-major GEMM).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C += alpha * A * B. The workhorse used by the SCF and DIIS code paths.
void gemm_acc(double alpha, const Matrix& a, const Matrix& b, Matrix& c);

/// Transpose.
Matrix transpose(const Matrix& a);

/// Frobenius inner product tr(Aᵀ B).
double frobenius_dot(const Matrix& a, const Matrix& b);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

/// Largest |a_ij|.
double max_abs(const Matrix& a);

/// tr(A).
double trace(const Matrix& a);

/// tr(A * B) without forming the product (A, B square, same size).
double trace_product(const Matrix& a, const Matrix& b);

/// Symmetrize in place: A <- (A + Aᵀ)/2.
void symmetrize(Matrix& a);

/// true when |a_ij - a_ji| <= tol for all i, j.
bool is_symmetric(const Matrix& a, double tol = 1e-12);

}  // namespace mthfx::linalg
