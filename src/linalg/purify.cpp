#include "linalg/purify.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mthfx::linalg {

namespace {

// max |(Z·Y - I)| without forming a dense product: reuse the sparse
// multiply, subtract the identity, take max_abs.
double residual_norm(const BlockSparseMatrix& z, const BlockSparseMatrix& y,
                     double drop_tol) {
  BlockSparseMatrix zy = multiply(z, y, drop_tol);
  zy.add_scaled_identity(-1.0);
  return zy.max_abs();
}

}  // namespace

NewtonSchulzResult inverse_sqrt_ns(const BlockSparseMatrix& s, double drop_tol,
                                   double tol, int max_iter) {
  const auto [lo, hi] = s.gershgorin();
  if (hi <= 0.0)
    throw std::invalid_argument("inverse_sqrt_ns: matrix is not SPD");
  // Scale so the spectrum of B = S/theta sits in (0, 1]; the coupled
  // iteration then contracts monotonically. Z converges to B^{-1/2} =
  // sqrt(theta)·S^{-1/2}.
  const double theta = hi;

  BlockSparseMatrix y = s;
  y.scale(1.0 / theta);
  BlockSparseMatrix z = BlockSparseMatrix::identity(s.partition());

  NewtonSchulzResult out;
  double res = residual_norm(z, y, drop_tol);
  int it = 0;
  for (; it < max_iter && res > tol; ++it) {
    // T = (3I - Z·Y)/2
    BlockSparseMatrix t = multiply(z, y, drop_tol);
    t.scale(-0.5);
    t.add_scaled_identity(1.5);
    y = multiply(y, t, drop_tol);
    z = multiply(t, z, drop_tol);
    res = residual_norm(z, y, drop_tol);
  }
  z.scale(1.0 / std::sqrt(theta));
  out.inverse_sqrt = std::move(z);
  out.iterations = it;
  out.residual = res;
  out.converged = res <= tol;
  return out;
}

BlockSparseMatrix tc2_density(const BlockSparseMatrix& f_ortho,
                              std::size_t nocc, double drop_tol,
                              PurifyStats* stats, int max_iter) {
  const auto [emin, emax] = f_ortho.gershgorin();
  const double span = emax - emin;
  if (span <= 0.0)
    throw std::invalid_argument("tc2_density: degenerate spectrum bounds");

  // P0 = (emax·I - F')/(emax - emin): maps the spectrum into [0, 1] with
  // the occupied (low-energy) states nearest 1.
  BlockSparseMatrix p = f_ortho;
  p.scale(-1.0 / span);
  p.add_scaled_identity(emax / span);

  const double target = static_cast<double>(nocc);
  PurifyStats st;
  double tr = p.trace();
  double tr2 = 0.0;
  for (st.iterations = 0; st.iterations < max_iter; ++st.iterations) {
    BlockSparseMatrix p2 = multiply(p, p, drop_tol);
    tr2 = p2.trace();
    if (std::abs(tr - target) < 1e-10 && std::abs(tr2 - tr) < 1e-10) {
      st.converged = true;
      break;
    }
    if (tr >= target) {
      // Trace too high: P² pushes small eigenvalues toward 0.
      p = std::move(p2);
      tr = tr2;
    } else {
      // Trace too low: 2P - P² pushes large eigenvalues toward 1.
      p.scale(2.0);
      p.axpy(-1.0, p2);
      tr = 2.0 * tr - tr2;
    }
    if (drop_tol > 0.0) p.prune(drop_tol);
  }
  st.trace_error = std::abs(tr - target);
  st.idempotency_error = std::abs(tr2 - tr);
  if (stats) *stats = st;
  return p;
}

}  // namespace mthfx::linalg
