#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/registry.hpp"

namespace mthfx::linalg {

namespace {

// Sum of squares of strict upper-triangle entries: the Jacobi convergence
// measure ("off" norm).
double off_norm2(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  return s;
}

// Cyclic Jacobi on an already-symmetrized matrix; diagonalizes `a` in
// place and accumulates rotations into `v` (which must start as the
// identity). Returns the number of sweeps used.
int jacobi_in_place(Matrix& a, Matrix& v, double tol, int max_sweeps) {
  const std::size_t n = a.rows();
  const double threshold2 = tol * tol * std::max(1.0, frobenius_dot(a, a));

  int sweep = 0;
  for (; sweep < max_sweeps && off_norm2(a) > threshold2; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Rutishauser's stable rotation parameters.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (i != p && i != q) {
            const double aip = a(i, p);
            const double aiq = a(i, q);
            a(i, p) = aip - s * (aiq + tau * aip);
            a(p, i) = a(i, p);
            a(i, q) = aiq + s * (aip - tau * aiq);
            a(q, i) = a(i, q);
          }
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = vip - s * (viq + tau * vip);
          v(i, q) = viq + s * (vip - tau * viq);
        }
      }
    }
  }
  return sweep;
}

// Connected components of the structural sparsity graph (i ~ j when
// a(i, j) != 0). Jacobi rotations never couple indices across components,
// so each component can be diagonalized independently — and a diagonal
// matrix (all-singleton components) needs no rotations at all. Returns a
// label per index; `num_components` gets the component count.
std::vector<std::size_t> sparsity_components(const Matrix& a,
                                             std::size_t* num_components) {
  const std::size_t n = a.rows();
  const std::size_t none = static_cast<std::size_t>(-1);
  std::vector<std::size_t> label(n, none);
  std::vector<std::size_t> stack;
  std::size_t next = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (label[seed] != none) continue;
    label[seed] = next;
    stack.assign(1, seed);
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      for (std::size_t j = 0; j < n; ++j) {
        if (label[j] == none && a(i, j) != 0.0) {
          label[j] = next;
          stack.push_back(j);
        }
      }
    }
    ++next;
  }
  *num_components = next;
  return label;
}

void record_eigh(int sweeps) {
  obs::Registry& reg = obs::global_registry();
  reg.counter("linalg.eigh.calls").add(0);
  reg.counter("linalg.eigh.sweeps").add(0, static_cast<std::uint64_t>(sweeps));
}

}  // namespace

EigenResult eigh(const Matrix& a_in, double tol, int max_sweeps) {
  if (a_in.rows() != a_in.cols())
    throw std::invalid_argument("eigh: matrix must be square");
  const std::size_t n = a_in.rows();

  Matrix a = a_in;
  symmetrize(a);

  // Cheap pre-check: if the sparsity graph is disconnected, solve each
  // component on its own gathered submatrix. A diagonal input returns
  // immediately (0 sweeps); block-diagonal inputs — e.g. Fock matrices of
  // well-separated fragments — pay O(sum of block cubes) instead of
  // O(n³). Fully connected inputs (one component) take the exact original
  // Jacobi path, bitwise unchanged.
  std::size_t num_components = 1;
  const std::vector<std::size_t> label =
      n > 1 ? sparsity_components(a, &num_components)
            : std::vector<std::size_t>(n, 0);

  EigenResult r;
  r.values.resize(n);
  r.vectors = Matrix(n, n);

  if (num_components <= 1) {
    Matrix v = Matrix::identity(n);
    r.sweeps = jacobi_in_place(a, v, tol, max_sweeps);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });
    for (std::size_t k = 0; k < n; ++k) {
      r.values[k] = a(order[k], order[k]);
      for (std::size_t i = 0; i < n; ++i) r.vectors(i, k) = v(i, order[k]);
    }
    record_eigh(r.sweeps);
    return r;
  }

  // Gather each component's indices in ascending order (stable relative
  // to the input), diagonalize the submatrix, and scatter values plus
  // eigenvector columns back into global positions.
  std::vector<std::vector<std::size_t>> members(num_components);
  for (std::size_t i = 0; i < n; ++i) members[label[i]].push_back(i);

  Matrix vectors_unsorted(n, n);
  Vector values_unsorted(n);
  int max_block_sweeps = 0;
  std::size_t out = 0;
  for (const std::vector<std::size_t>& idx : members) {
    const std::size_t m = idx.size();
    if (m == 1) {
      values_unsorted[out] = a(idx[0], idx[0]);
      vectors_unsorted(idx[0], out) = 1.0;
      ++out;
      continue;
    }
    Matrix sub(m, m);
    for (std::size_t bi = 0; bi < m; ++bi)
      for (std::size_t bj = 0; bj < m; ++bj) sub(bi, bj) = a(idx[bi], idx[bj]);
    Matrix v = Matrix::identity(m);
    max_block_sweeps =
        std::max(max_block_sweeps, jacobi_in_place(sub, v, tol, max_sweeps));
    for (std::size_t k = 0; k < m; ++k) {
      values_unsorted[out] = sub(k, k);
      for (std::size_t bi = 0; bi < m; ++bi)
        vectors_unsorted(idx[bi], out) = v(bi, k);
      ++out;
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return values_unsorted[i] < values_unsorted[j];
  });
  for (std::size_t k = 0; k < n; ++k) {
    r.values[k] = values_unsorted[order[k]];
    for (std::size_t i = 0; i < n; ++i)
      r.vectors(i, k) = vectors_unsorted(i, order[k]);
  }
  r.sweeps = max_block_sweeps;
  record_eigh(r.sweeps);
  return r;
}

Matrix inverse_sqrt(const Matrix& s, double lindep_tol) {
  const EigenResult e = eigh(s);
  const std::size_t n = s.rows();
  Matrix x(n, n);
  // X = U diag(1/sqrt(l)) Uᵀ, skipping near-null directions.
  for (std::size_t k = 0; k < n; ++k) {
    if (e.values[k] < lindep_tol) continue;
    const double w = 1.0 / std::sqrt(e.values[k]);
    for (std::size_t i = 0; i < n; ++i) {
      const double uikw = e.vectors(i, k) * w;
      for (std::size_t j = 0; j < n; ++j) x(i, j) += uikw * e.vectors(j, k);
    }
  }
  return x;
}

Matrix sqrt_sym(const Matrix& s) {
  const EigenResult e = eigh(s);
  const std::size_t n = s.rows();
  Matrix x(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double w = std::sqrt(std::max(0.0, e.values[k]));
    for (std::size_t i = 0; i < n; ++i) {
      const double uikw = e.vectors(i, k) * w;
      for (std::size_t j = 0; j < n; ++j) x(i, j) += uikw * e.vectors(j, k);
    }
  }
  return x;
}

}  // namespace mthfx::linalg
