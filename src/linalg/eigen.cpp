#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mthfx::linalg {

namespace {

// Sum of squares of strict upper-triangle entries: the Jacobi convergence
// measure ("off" norm).
double off_norm2(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  return s;
}

}  // namespace

EigenResult eigh(const Matrix& a_in, double tol, int max_sweeps) {
  if (a_in.rows() != a_in.cols())
    throw std::invalid_argument("eigh: matrix must be square");
  const std::size_t n = a_in.rows();

  Matrix a = a_in;
  symmetrize(a);
  Matrix v = Matrix::identity(n);

  const double threshold2 = tol * tol * std::max(1.0, frobenius_dot(a, a));

  int sweep = 0;
  for (; sweep < max_sweeps && off_norm2(a) > threshold2; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Rutishauser's stable rotation parameters.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (i != p && i != q) {
            const double aip = a(i, p);
            const double aiq = a(i, q);
            a(i, p) = aip - s * (aiq + tau * aip);
            a(p, i) = a(i, p);
            a(i, q) = aiq + s * (aip - tau * aiq);
            a(q, i) = a(i, q);
          }
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = vip - s * (viq + tau * vip);
          v(i, q) = viq + s * (vip - tau * viq);
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

  EigenResult r;
  r.values.resize(n);
  r.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    r.values[k] = a(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) r.vectors(i, k) = v(i, order[k]);
  }
  r.sweeps = sweep;
  return r;
}

Matrix inverse_sqrt(const Matrix& s, double lindep_tol) {
  const EigenResult e = eigh(s);
  const std::size_t n = s.rows();
  Matrix x(n, n);
  // X = U diag(1/sqrt(l)) Uᵀ, skipping near-null directions.
  for (std::size_t k = 0; k < n; ++k) {
    if (e.values[k] < lindep_tol) continue;
    const double w = 1.0 / std::sqrt(e.values[k]);
    for (std::size_t i = 0; i < n; ++i) {
      const double uikw = e.vectors(i, k) * w;
      for (std::size_t j = 0; j < n; ++j) x(i, j) += uikw * e.vectors(j, k);
    }
  }
  return x;
}

Matrix sqrt_sym(const Matrix& s) {
  const EigenResult e = eigh(s);
  const std::size_t n = s.rows();
  Matrix x(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double w = std::sqrt(std::max(0.0, e.values[k]));
    for (std::size_t i = 0; i < n; ++i) {
      const double uikw = e.vectors(i, k) * w;
      for (std::size_t j = 0; j < n; ++j) x(i, j) += uikw * e.vectors(j, k);
    }
  }
  return x;
}

}  // namespace mthfx::linalg
