#pragma once

// Symmetric eigensolver (cyclic Jacobi) and derived transforms.
//
// SCF needs the full eigen-decomposition of F' = S^{-1/2} F S^{-1/2}.
// Basis dimensions in this reproduction stay in the low hundreds, where a
// well-implemented Jacobi sweep is robust, embarrassingly simple to verify,
// and has no external dependencies.

#include "linalg/matrix.hpp"

namespace mthfx::linalg {

struct EigenResult {
  Vector values;        ///< ascending eigenvalues
  Matrix vectors;       ///< column i is the eigenvector for values[i]
  int sweeps = 0;       ///< Jacobi sweeps used
};

/// Full eigen-decomposition of a symmetric matrix.
/// Throws std::invalid_argument when `a` is not square.
///
/// A structural pre-check first partitions the sparsity graph into
/// connected components: diagonal inputs return immediately and
/// block-diagonal inputs are solved per block (O(sum of block cubes));
/// fully connected inputs take the plain Jacobi path unchanged. Records
/// `linalg.eigh.calls` and `linalg.eigh.sweeps` in obs::global_registry()
/// so benches can attribute diagonalization cost.
EigenResult eigh(const Matrix& a, double tol = 1e-12, int max_sweeps = 100);

/// S^{-1/2} via eigen-decomposition (Löwdin symmetric orthogonalization).
/// Eigenvalues below `lindep_tol` are projected out (canonical
/// orthogonalization fallback for near-linear-dependent basis sets).
Matrix inverse_sqrt(const Matrix& s, double lindep_tol = 1e-10);

/// S^{+1/2} via eigen-decomposition.
Matrix sqrt_sym(const Matrix& s);

}  // namespace mthfx::linalg
