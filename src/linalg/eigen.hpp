#pragma once

// Symmetric eigensolver (cyclic Jacobi) and derived transforms.
//
// SCF needs the full eigen-decomposition of F' = S^{-1/2} F S^{-1/2}.
// Basis dimensions in this reproduction stay in the low hundreds, where a
// well-implemented Jacobi sweep is robust, embarrassingly simple to verify,
// and has no external dependencies.

#include "linalg/matrix.hpp"

namespace mthfx::linalg {

struct EigenResult {
  Vector values;        ///< ascending eigenvalues
  Matrix vectors;       ///< column i is the eigenvector for values[i]
  int sweeps = 0;       ///< Jacobi sweeps used
};

/// Full eigen-decomposition of a symmetric matrix.
/// Throws std::invalid_argument when `a` is not square.
EigenResult eigh(const Matrix& a, double tol = 1e-12, int max_sweeps = 100);

/// S^{-1/2} via eigen-decomposition (Löwdin symmetric orthogonalization).
/// Eigenvalues below `lindep_tol` are projected out (canonical
/// orthogonalization fallback for near-linear-dependent basis sets).
Matrix inverse_sqrt(const Matrix& s, double lindep_tol = 1e-10);

/// S^{+1/2} via eigen-decomposition.
Matrix sqrt_sym(const Matrix& s);

}  // namespace mthfx::linalg
