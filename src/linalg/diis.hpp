#pragma once

// DIIS (direct inversion in the iterative subspace; Pulay mixing).
//
// Accelerates SCF convergence by extrapolating the Fock matrix from a
// short history of (F, error) pairs, where the error vector is the
// commutator e = F P S − S P F expressed in the orthonormal basis.

#include <cstddef>
#include <deque>

#include "linalg/matrix.hpp"

namespace mthfx::linalg {

class Diis {
 public:
  /// `max_history`: number of (F, e) pairs retained. 6–8 is typical.
  explicit Diis(std::size_t max_history = 8) : max_history_(max_history) {}

  /// Record a Fock/error pair and return the DIIS-extrapolated Fock
  /// matrix. Falls back to returning `fock` unchanged while the history
  /// holds fewer than two pairs or when the B-system is singular.
  Matrix extrapolate(const Matrix& fock, const Matrix& error);

  std::size_t history_size() const { return focks_.size(); }
  void reset();

  /// Checkpoint access: the retained (F, e) pairs, oldest first.
  const std::deque<Matrix>& fock_history() const { return focks_; }
  const std::deque<Matrix>& error_history() const { return errors_; }

  /// Restart from a serialized history (oldest first); keeps at most the
  /// newest max_history pairs. Sizes must match.
  void restore_history(const std::vector<Matrix>& focks,
                       const std::vector<Matrix>& errors) {
    focks_.assign(focks.begin(), focks.end());
    errors_.assign(errors.begin(), errors.end());
    while (focks_.size() > max_history_) focks_.pop_front();
    while (errors_.size() > max_history_) errors_.pop_front();
  }

  /// Largest |e_ij| of the most recent error matrix; the usual SCF
  /// convergence measure.
  double last_error_norm() const { return last_error_norm_; }

 private:
  std::size_t max_history_;
  std::deque<Matrix> focks_;
  std::deque<Matrix> errors_;
  double last_error_norm_ = 0.0;
};

}  // namespace mthfx::linalg
