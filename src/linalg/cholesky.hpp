#pragma once

// Cholesky factorization and dense linear solves.
//
// Used by the DIIS extrapolation (solving the B-matrix system) and by
// tests that need a general SPD solve.

#include <optional>

#include "linalg/matrix.hpp"

namespace mthfx::linalg {

/// Lower-triangular L with A = L Lᵀ. Returns std::nullopt when `a` is not
/// positive definite (a non-positive pivot is encountered).
std::optional<Matrix> cholesky(const Matrix& a);

/// Solve A x = b for SPD A via Cholesky. Returns std::nullopt when the
/// factorization fails.
std::optional<Vector> cholesky_solve(const Matrix& a, const Vector& b);

/// Solve a general square system A x = b with partially pivoted Gaussian
/// elimination. Returns std::nullopt when A is singular to working
/// precision. DIIS B-matrices are symmetric but often indefinite, so this
/// is the solver DIIS actually uses.
std::optional<Vector> lu_solve(Matrix a, Vector b);

}  // namespace mthfx::linalg
