#pragma once

// Block-sparse symmetric-matrix support for large, spatially local
// systems.
//
// A BlockPartition splits the basis dimension into contiguous blocks
// (typically one block per molecule in an electrolyte box, ~40-60 basis
// functions). A BlockSparseMatrix stores only the dense blocks whose
// magnitude survives a drop threshold, in CSR-of-dense-blocks form: for
// overlap/Fock/density matrices of well-separated molecules the retained
// fraction falls off linearly with box size, which turns the O(N³) dense
// matmuls in the SCF (DIIS error, purification) into near-linear work.
//
// Small systems never pay for this machinery: the dense SCF path is
// untouched, and dense↔blocked converters (`from_dense`/`to_dense`) are
// exact at drop_tol = 0.

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace mthfx::linalg {

/// Partition of [0, dim) into contiguous index blocks.
class BlockPartition {
 public:
  BlockPartition() = default;
  /// `offsets` must start at 0, end at dim, and be strictly increasing.
  explicit BlockPartition(std::vector<std::size_t> offsets);

  /// dim split into ceil(dim / target) blocks of near-equal size.
  static BlockPartition uniform(std::size_t dim, std::size_t target_block);

  std::size_t num_blocks() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t dim() const { return offsets_.empty() ? 0 : offsets_.back(); }
  std::size_t begin(std::size_t b) const { return offsets_[b]; }
  std::size_t end(std::size_t b) const { return offsets_[b + 1]; }
  std::size_t size(std::size_t b) const {
    return offsets_[b + 1] - offsets_[b];
  }
  /// Block containing global index i (binary search).
  std::size_t block_of(std::size_t i) const;

  const std::vector<std::size_t>& offsets() const { return offsets_; }

  friend bool operator==(const BlockPartition&,
                         const BlockPartition&) = default;

 private:
  std::vector<std::size_t> offsets_;
};

/// Sparse matrix stored as dense blocks on a BlockPartition, row-sorted.
class BlockSparseMatrix {
 public:
  /// One stored block: column-block index plus a row-major dense tile of
  /// shape partition.size(row) x partition.size(col).
  struct Block {
    std::size_t col = 0;
    std::vector<double> data;
  };

  BlockSparseMatrix() = default;
  explicit BlockSparseMatrix(BlockPartition partition);

  /// Exact converters. `from_dense` drops blocks whose max |entry| is
  /// below drop_tol (0 keeps everything, including all-zero blocks'
  /// absence — an absent block reads as zero).
  static BlockSparseMatrix from_dense(const Matrix& dense,
                                      const BlockPartition& partition,
                                      double drop_tol = 0.0);
  Matrix to_dense() const;
  static BlockSparseMatrix identity(const BlockPartition& partition);

  const BlockPartition& partition() const { return partition_; }
  std::size_t dim() const { return partition_.dim(); }
  std::size_t num_block_rows() const { return rows_.size(); }
  const std::vector<Block>& row(std::size_t br) const { return rows_[br]; }

  /// Pointer to the tile at (br, bc), or nullptr when absent.
  const double* find(std::size_t br, std::size_t bc) const;

  /// Insert-or-overwrite the tile at (br, bc) with `data` (row-major,
  /// size(br) x size(bc) values). Keeps the row sorted by column.
  void set_block(std::size_t br, std::size_t bc, std::vector<double> data);

  std::size_t stored_blocks() const;
  /// Stored elements / dim², the bench's nnz metric.
  double nnz_fraction() const;

  double trace() const;
  double max_abs() const;
  void scale(double s);
  /// this += alpha * other (same partition; pattern union).
  void axpy(double alpha, const BlockSparseMatrix& other);
  /// this += alpha * I.
  void add_scaled_identity(double alpha);
  /// Drop blocks whose max |entry| fell below drop_tol.
  void prune(double drop_tol);

  /// Gershgorin eigenvalue bounds {min, max} over all rows.
  std::pair<double, double> gershgorin() const;

 private:
  friend BlockSparseMatrix multiply(const BlockSparseMatrix&,
                                    const BlockSparseMatrix&, double);
  BlockPartition partition_;
  std::vector<std::vector<Block>> rows_;  ///< per block row, sorted by col
};

/// C = A·B with blocks below drop_tol discarded. Row-panel accumulation:
/// each block row of A is expanded against B's rows once, so cost scales
/// with the number of (br, bk, bc) block triples present, not dim³.
BlockSparseMatrix multiply(const BlockSparseMatrix& a,
                           const BlockSparseMatrix& b, double drop_tol);

/// tr(A·B) without forming the product.
double trace_product(const BlockSparseMatrix& a, const BlockSparseMatrix& b);

/// Frobenius norm of A - B (same partition; absent blocks read as zero).
double difference_norm(const BlockSparseMatrix& a, const BlockSparseMatrix& b);

}  // namespace mthfx::linalg
