#include "linalg/cholesky.hpp"

#include <cmath>

namespace mthfx::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  return l;
}

std::optional<Vector> cholesky_solve(const Matrix& a, const Vector& b) {
  const auto lopt = cholesky(a);
  if (!lopt || b.size() != a.rows()) return std::nullopt;
  const Matrix& l = *lopt;
  const std::size_t n = b.size();

  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l(k, ii) * x[k];
    x[ii] = v / l(ii, ii);
  }
  return x;
}

std::optional<Vector> lu_solve(Matrix a, Vector b) {
  if (a.rows() != a.cols() || b.size() != a.rows()) return std::nullopt;
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t piv = col;
    for (std::size_t i = col + 1; i < n; ++i)
      if (std::abs(a(i, col)) > std::abs(a(piv, col))) piv = i;
    if (std::abs(a(piv, col)) < 1e-14) return std::nullopt;
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(piv, j));
      std::swap(b[col], b[piv]);
    }
    for (std::size_t i = col + 1; i < n; ++i) {
      const double f = a(i, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a(i, j) -= f * a(col, j);
      b[i] -= f * b[col];
    }
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) v -= a(ii, j) * x[j];
    x[ii] = v / a(ii, ii);
  }
  return x;
}

}  // namespace mthfx::linalg
