#include "linalg/diis.hpp"

#include "linalg/cholesky.hpp"

namespace mthfx::linalg {

void Diis::reset() {
  focks_.clear();
  errors_.clear();
  last_error_norm_ = 0.0;
}

Matrix Diis::extrapolate(const Matrix& fock, const Matrix& error) {
  focks_.push_back(fock);
  errors_.push_back(error);
  if (focks_.size() > max_history_) {
    focks_.pop_front();
    errors_.pop_front();
  }
  last_error_norm_ = max_abs(error);

  const std::size_t m = focks_.size();
  if (m < 2) return fock;

  // Augmented Pulay system:
  //   [ B   -1 ] [ c ]   [ 0 ]
  //   [ -1ᵀ  0 ] [ λ ] = [ -1 ],   B_ij = <e_i, e_j>.
  Matrix b(m + 1, m + 1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      const double v = frobenius_dot(errors_[i], errors_[j]);
      b(i, j) = v;
      b(j, i) = v;
    }
    b(i, m) = -1.0;
    b(m, i) = -1.0;
  }
  Vector rhs(m + 1, 0.0);
  rhs[m] = -1.0;

  const auto sol = lu_solve(b, rhs);
  if (!sol) {
    // Singular B (e.g. two identical error vectors): drop the oldest pair
    // and use the raw Fock this iteration.
    focks_.pop_front();
    errors_.pop_front();
    return fock;
  }

  Matrix mixed(fock.rows(), fock.cols());
  for (std::size_t i = 0; i < m; ++i) {
    const double ci = (*sol)[i];
    const auto fi = focks_[i].flat();
    auto out = mixed.flat();
    for (std::size_t k = 0; k < out.size(); ++k) out[k] += ci * fi[k];
  }
  return mixed;
}

}  // namespace mthfx::linalg
