#include "testing/property.hpp"

#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>

namespace mthfx::testing {

namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 0);
  if (end == raw || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::size_t property_iterations(std::size_t fallback) {
  if (const auto v = env_u64("MTHFX_PROPERTY_ITERS"))
    return static_cast<std::size_t>(*v);
  return fallback;
}

std::uint64_t iteration_seed(std::uint64_t base_seed, std::size_t iteration) {
  // SplitMix64 finalizer over base+iteration: well-spread, stateless.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    (static_cast<std::uint64_t>(iteration) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string repro_command(const std::string& name, std::uint64_t seed) {
  std::ostringstream os;
  os << "MTHFX_PROPERTY_SEED=" << seed
     << " ctest --test-dir build -R '" << name << "' --output-on-failure";
  return os.str();
}

std::optional<PropertyFailure> run_property(const std::string& name,
                                            std::size_t iterations,
                                            const Property& property) {
  const auto replay_seed = env_u64("MTHFX_PROPERTY_SEED");

  auto run_case = [&](std::uint64_t seed,
                      std::size_t index) -> std::optional<PropertyFailure> {
    Rng rng(seed);
    std::string message;
    try {
      message = property(rng, index);
    } catch (const std::exception& e) {
      message = std::string("exception: ") + e.what();
    } catch (...) {
      message = "unknown exception";
    }
    if (message.empty()) return std::nullopt;
    PropertyFailure failure;
    failure.property = name;
    failure.seed = seed;
    failure.iteration = index;
    failure.message = std::move(message);
    failure.repro = repro_command(name, seed);
    return failure;
  };

  if (replay_seed) return run_case(*replay_seed, 0);

  for (std::size_t i = 0; i < iterations; ++i)
    if (auto failure = run_case(iteration_seed(kDefaultBaseSeed, i), i))
      return failure;
  return std::nullopt;
}

}  // namespace mthfx::testing
