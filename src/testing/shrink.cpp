#include "testing/shrink.hpp"

#include <sstream>
#include <vector>

#include "chem/elements.hpp"

namespace mthfx::testing {

using chem::Molecule;

namespace {

bool fails_safely(const FailingPredicate& fails, const Molecule& mol,
                  const std::string& basis, std::size_t& evaluations) {
  ++evaluations;
  try {
    return fails(mol, basis);
  } catch (...) {
    return false;  // invalid shrunk case: not a failure witness
  }
}

Molecule without_atom(const Molecule& mol, std::size_t drop) {
  Molecule out;
  out.set_charge(mol.charge());
  for (std::size_t i = 0; i < mol.size(); ++i)
    if (i != drop) out.add_atom(mol.atom(i).z, mol.atom(i).pos);
  return out;
}

}  // namespace

ShrinkResult shrink_failing_case(const Molecule& molecule,
                                 const std::string& basis,
                                 const FailingPredicate& fails,
                                 std::size_t max_evaluations) {
  static const std::vector<std::string> ladder = {"6-31g*", "6-31g", "sto-3g"};
  ShrinkResult res;
  res.molecule = molecule;
  res.basis = basis;
  bool progressed = true;
  while (progressed && res.evaluations < max_evaluations) {
    progressed = false;
    // Try dropping each atom (keep at least one).
    for (std::size_t i = 0;
         res.molecule.size() > 1 && i < res.molecule.size() &&
         res.evaluations < max_evaluations;
         ++i) {
      const Molecule candidate = without_atom(res.molecule, i);
      if (fails_safely(fails, candidate, res.basis, res.evaluations)) {
        res.molecule = candidate;
        ++res.steps;
        progressed = true;
        i = static_cast<std::size_t>(-1);  // restart over the smaller molecule
      }
    }
    // Try each strictly smaller basis on the ladder.
    for (std::size_t b = 0; b < ladder.size(); ++b) {
      if (ladder[b] == res.basis) {
        for (std::size_t smaller = b + 1;
             smaller < ladder.size() && res.evaluations < max_evaluations;
             ++smaller)
          if (fails_safely(fails, res.molecule, ladder[smaller],
                           res.evaluations)) {
            res.basis = ladder[smaller];
            res.steps += 1;
            progressed = true;
            break;
          }
        break;
      }
    }
  }
  return res;
}

std::string describe_case(const Molecule& molecule, const std::string& basis) {
  std::ostringstream os;
  os << molecule.size() << " atoms [";
  for (std::size_t i = 0; i < molecule.size(); ++i)
    os << (i ? " " : "") << chem::element_symbol(molecule.atom(i).z);
  os << "] basis " << basis << " charge " << molecule.charge() << " xyz(A):";
  const std::string xyz = molecule.to_xyz();
  // Inline the coordinate lines (skip the count + comment header).
  std::istringstream lines(xyz);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line))
    if (++lineno > 2 && !line.empty()) os << " {" << line << "}";
  return os.str();
}

}  // namespace mthfx::testing
