#pragma once

// Seeded property-test runner. Each property runs `iterations` cases;
// case i gets an Rng forked deterministically from the base seed, so the
// whole suite's verdict is a pure function of (code, seed, iterations).
//
// Environment knobs (read once per call, no global state):
//   MTHFX_PROPERTY_ITERS — iteration count override (tiers: quick CI
//     runs set it low, nightly sets it high; default 50).
//   MTHFX_PROPERTY_SEED  — replay exactly one case: the runner executes
//     only the iteration whose derived seed matches, which is what the
//     printed repro line sets.
//
// The runner is gtest-agnostic (this is src/, not tests/); the gtest
// glue macro lives in tests/support/property_gtest.hpp.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "testing/rng.hpp"

namespace mthfx::testing {

/// Default iteration count when MTHFX_PROPERTY_ITERS is unset.
inline constexpr std::size_t kDefaultPropertyIters = 50;

/// Base seed when MTHFX_PROPERTY_SEED is unset. Arbitrary but fixed:
/// CI verdicts must be reproducible, not freshly random.
inline constexpr std::uint64_t kDefaultBaseSeed = 0x6d746866782d7062ULL;

/// Iteration count from MTHFX_PROPERTY_ITERS, else `fallback`.
std::size_t property_iterations(std::size_t fallback = kDefaultPropertyIters);

/// One failing case, with everything needed to replay it.
struct PropertyFailure {
  std::string property;     ///< the name passed to run_property
  std::uint64_t seed = 0;   ///< derived seed of the failing iteration
  std::size_t iteration = 0;
  std::string message;      ///< property's own description of the failure
  std::string repro;        ///< one-line shell command replaying this case
};

/// A property receives the iteration's Rng and its index, and returns an
/// empty string on success or a failure description. Throwing counts as
/// a failure with the exception text as the message.
using Property = std::function<std::string(Rng& rng, std::size_t iteration)>;

/// Run `property` for `iterations` seeded cases (first failure stops the
/// run). `name` should match the gtest filter for the calling test so
/// the repro line re-runs the right thing. Honors MTHFX_PROPERTY_SEED by
/// running only the matching case.
std::optional<PropertyFailure> run_property(const std::string& name,
                                            std::size_t iterations,
                                            const Property& property);

/// The derived per-iteration seed (exposed so tests can assert
/// determinism and tools can precompute replay commands).
std::uint64_t iteration_seed(std::uint64_t base_seed, std::size_t iteration);

/// "MTHFX_PROPERTY_SEED=<seed> ctest -R <name> ..." one-liner.
std::string repro_command(const std::string& name, std::uint64_t seed);

}  // namespace mthfx::testing
