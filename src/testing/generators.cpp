#include "testing/generators.hpp"

#include <cmath>
#include <stdexcept>

namespace mthfx::testing {

using chem::Molecule;
using chem::Vec3;
using linalg::Matrix;

Molecule random_molecule(Rng& rng, const MoleculeSpec& spec) {
  if (spec.elements.empty() || spec.min_atoms == 0 ||
      spec.max_atoms < spec.min_atoms)
    throw std::invalid_argument("random_molecule: bad MoleculeSpec");
  const std::size_t natoms =
      spec.min_atoms + rng.index(spec.max_atoms - spec.min_atoms + 1);
  Molecule mol;
  for (std::size_t i = 0; i < natoms; ++i) {
    const int z = spec.elements[rng.index(spec.elements.size())];
    // Rejection-sample a position far enough from every placed atom. The
    // attempt cap keeps generation total even for absurd specs; on
    // exhaustion the last candidate is accepted (still a valid molecule,
    // just a close contact).
    Vec3 pos{};
    for (int attempt = 0; attempt < 200; ++attempt) {
      pos = {rng.uniform(0.0, spec.box), rng.uniform(0.0, spec.box),
             rng.uniform(0.0, spec.box)};
      bool ok = true;
      for (const auto& a : mol.atoms())
        if (distance(a.pos, pos) < spec.min_separation) {
          ok = false;
          break;
        }
      if (ok) break;
    }
    mol.add_atom(z, pos);
  }
  if (spec.even_electrons && mol.num_electrons() % 2 != 0)
    mol.set_charge(mol.charge() + (rng.bernoulli(0.5) ? 1 : -1));
  return mol;
}

Molecule jittered(Rng& rng, const Molecule& mol, double max_jitter) {
  Molecule out = mol;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Vec3& p = out.atom(i).pos;
    out.set_position(i, {p.x + rng.uniform(-max_jitter, max_jitter),
                         p.y + rng.uniform(-max_jitter, max_jitter),
                         p.z + rng.uniform(-max_jitter, max_jitter)});
  }
  return out;
}

Matrix random_rotation(Rng& rng) {
  // Uniform unit quaternion (Marsaglia) -> rotation matrix.
  double q0, q1, q2, q3;
  for (;;) {
    const double x1 = rng.uniform(-1.0, 1.0), y1 = rng.uniform(-1.0, 1.0);
    const double s1 = x1 * x1 + y1 * y1;
    if (s1 >= 1.0) continue;
    const double x2 = rng.uniform(-1.0, 1.0), y2 = rng.uniform(-1.0, 1.0);
    const double s2 = x2 * x2 + y2 * y2;
    if (s2 >= 1.0) continue;
    const double scale = std::sqrt((1.0 - s1) / s2);
    q0 = x1;
    q1 = y1;
    q2 = x2 * scale;
    q3 = y2 * scale;
    break;
  }
  Matrix r(3, 3);
  r(0, 0) = 1 - 2 * (q2 * q2 + q3 * q3);
  r(0, 1) = 2 * (q1 * q2 - q0 * q3);
  r(0, 2) = 2 * (q1 * q3 + q0 * q2);
  r(1, 0) = 2 * (q1 * q2 + q0 * q3);
  r(1, 1) = 1 - 2 * (q1 * q1 + q3 * q3);
  r(1, 2) = 2 * (q2 * q3 - q0 * q1);
  r(2, 0) = 2 * (q1 * q3 - q0 * q2);
  r(2, 1) = 2 * (q2 * q3 + q0 * q1);
  r(2, 2) = 1 - 2 * (q1 * q1 + q2 * q2);
  return r;
}

Molecule rotated(const Molecule& mol, const Matrix& rot) {
  Molecule out = mol;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Vec3& p = out.atom(i).pos;
    out.set_position(i, {rot(0, 0) * p.x + rot(0, 1) * p.y + rot(0, 2) * p.z,
                         rot(1, 0) * p.x + rot(1, 1) * p.y + rot(1, 2) * p.z,
                         rot(2, 0) * p.x + rot(2, 1) * p.y + rot(2, 2) * p.z});
  }
  return out;
}

Molecule randomly_translated(Rng& rng, const Molecule& mol, double max_shift) {
  Molecule out = mol;
  out.translate({rng.uniform(-max_shift, max_shift),
                 rng.uniform(-max_shift, max_shift),
                 rng.uniform(-max_shift, max_shift)});
  return out;
}

std::string random_basis_name(Rng& rng, const Molecule& mol) {
  // 6-31g here covers H, Li, C, N, O; everything tabulated has sto-3g.
  bool split_valence_ok = true;
  for (const auto& a : mol.atoms())
    if (a.z != 1 && a.z != 3 && (a.z < 6 || a.z > 8)) {
      split_valence_ok = false;
      break;
    }
  if (split_valence_ok && rng.bernoulli(0.25)) return "6-31g";
  return "sto-3g";
}

Matrix random_symmetric_density(Rng& rng, std::size_t n, double scale) {
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-scale, scale);
      p(i, j) = v;
      p(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;
  return p;
}

const std::vector<hfx::HfxSchedule>& all_schedules() {
  static const std::vector<hfx::HfxSchedule> schedules = {
      hfx::HfxSchedule::kDynamicBag, hfx::HfxSchedule::kStaticBlock,
      hfx::HfxSchedule::kStaticCyclic, hfx::HfxSchedule::kWorkStealing};
  return schedules;
}

hfx::HfxOptions random_hfx_options(Rng& rng) {
  hfx::HfxOptions opts;
  opts.eps_schwarz = std::pow(10.0, rng.uniform(-12.0, -6.0));
  opts.density_screening = rng.bernoulli(0.5);
  opts.schedule = all_schedules()[rng.index(all_schedules().size())];
  opts.num_threads = static_cast<std::size_t>(1) << rng.index(4);  // 1,2,4,8
  if (rng.bernoulli(0.3)) opts.target_task_cost = rng.uniform(1.0, 1e4);
  return opts;
}

scf::ScfOptions random_scf_options(Rng& rng) {
  scf::ScfOptions opts;
  opts.energy_tolerance = 1e-10;
  opts.diis_tolerance = 1e-8;
  opts.max_iterations = 200;
  opts.incremental_fock = rng.bernoulli(0.5);
  opts.full_rebuild_every = static_cast<std::size_t>(rng.uniform_int(3, 30));
  opts.hfx.eps_schwarz = 1e-12;
  // Single-threaded static execution keeps the floating-point reduction
  // order fixed, so equivalent configs must agree to tight tolerances.
  opts.hfx.num_threads = 1;
  opts.hfx.schedule = rng.bernoulli(0.5) ? hfx::HfxSchedule::kStaticBlock
                                         : hfx::HfxSchedule::kDynamicBag;
  opts.hfx.density_screening = rng.bernoulli(0.5);
  return opts;
}

}  // namespace mthfx::testing
