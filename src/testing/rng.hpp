#pragma once

// Deterministic, platform-independent random source for the property
// harness. std::mt19937 is reproducible but the standard *distributions*
// are not (their algorithms are implementation-defined), so a failing
// seed printed on one machine would not replay on another. SplitMix64
// plus hand-rolled uniform mappings gives bit-identical streams on every
// platform, which is what makes "same seed -> same verdict" a promise
// instead of a hope.

#include <cstdint>
#include <cstddef>

namespace mthfx::testing {

/// SplitMix64 generator (Steele, Lea & Flood). Tiny state, full 64-bit
/// output, and any seed — including 0 — is a valid starting point.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform index in [0, n). n must be nonzero. The tiny modulo bias
  /// (n << 2^64 always here) is irrelevant for test-case generation.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(next_u64() % n);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Independent child stream: mixes `stream` into the current state so
  /// per-iteration RNGs derived from one base seed do not overlap.
  Rng fork(std::uint64_t stream) const {
    Rng child(state_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    child.next_u64();  // decorrelate from a raw xor of the parent state
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mthfx::testing
