#pragma once

// Metamorphic invariant checks for generated inputs. Each check returns
// an InvariantResult: ok plus a human-readable detail string naming the
// first violation, so property-test failures print what broke, not just
// that something did.

#include <cstddef>
#include <string>
#include <vector>

#include "chem/basis.hpp"
#include "hfx/fock_builder.hpp"
#include "linalg/matrix.hpp"
#include "testing/rng.hpp"

namespace mthfx::testing {

struct InvariantResult {
  bool ok = true;
  std::string detail;  ///< empty when ok
};

/// ERI 8-fold permutational symmetry, checked through the *shell-level*
/// API on `samples` randomly drawn shell quartets (each permuted block
/// is an independent evaluation, so bra/ket and in-pair swaps are all
/// exercised, not just index relabeling of one tensor).
InvariantResult check_eri_permutation_symmetry(const chem::BasisSet& basis,
                                               Rng& rng, std::size_t samples,
                                               double tol = 1e-11);

/// Schwarz inequality max|(ab|cd)| <= Q_ab * Q_cd over every shell
/// quartet (full sweep; intended for the small generated systems), up
/// to the ERI kernel's primitive-truncation noise: each pair's computed
/// diagonal (ab|ab) may sit below the true one by as much as
/// (nprim_a*nprim_b)^2 * kEriPrimitiveCutoff, and the cross integral
/// may exceed its true value by the combos the kernel skipped, so the
/// check compares against sqrt(Q_ab^2 + noise_ab) * sqrt(Q_cd^2 +
/// noise_cd) + cross-truncation — a bound derived from the cutoff, not
/// tuned. `rel_slack` absorbs last-ulp rounding in the product.
InvariantResult check_schwarz_bound(const chem::BasisSet& basis,
                                    double rel_slack = 1e-12);

/// Hermiticity: max |A - A^T| <= tol.
InvariantResult check_hermitian(const linalg::Matrix& a, double tol,
                                const std::string& label);

/// Rigorous bound on the K (or J) error introduced by screening: every
/// neglected shell quartet contributes at most eps_schwarz (bare prune)
/// or eps_schwarz (density prune, by construction Q*Q*pmax < eps) to any
/// single matrix element, and each element can receive at most one
/// contribution per neglected quartet per orbit member (8). The
/// contribution cutoff adds computed * block^2 * cutoff * pmax on top.
double screening_error_bound(const hfx::HfxStats& stats,
                             const hfx::HfxOptions& options, double pmax,
                             std::size_t max_block = 16);

}  // namespace mthfx::testing
