#pragma once

// Failing-case shrinker. Given a molecule/basis pair on which a property
// fails, greedily minimize it: drop atoms one at a time and downgrade
// the basis, keeping every change that still reproduces the failure.
// The shrunk case plus the original seed is what gets printed in the
// one-line repro, so debugging starts from the smallest witness rather
// than the random blob the generator happened to draw.

#include <functional>
#include <string>

#include "chem/molecule.hpp"

namespace mthfx::testing {

/// Returns true when the property FAILS on (molecule, basis). A throwing
/// predicate is treated as "does not fail" so shrinking never escapes
/// into invalid cases (e.g. a basis that doesn't cover an element).
using FailingPredicate =
    std::function<bool(const chem::Molecule&, const std::string& basis)>;

struct ShrinkResult {
  chem::Molecule molecule;  ///< smallest failing molecule found
  std::string basis;        ///< smallest failing basis found
  std::size_t steps = 0;    ///< accepted shrink steps
  std::size_t evaluations = 0;  ///< predicate calls spent
};

/// Greedy fixpoint shrink: repeatedly try removing each atom and
/// downgrading the basis (6-31g* -> 6-31g -> sto-3g); accept any change
/// on which `fails` still returns true; stop when no single change
/// reproduces the failure or `max_evaluations` is spent. The input case
/// must itself be failing (it is returned unchanged otherwise).
ShrinkResult shrink_failing_case(const chem::Molecule& molecule,
                                 const std::string& basis,
                                 const FailingPredicate& fails,
                                 std::size_t max_evaluations = 200);

/// One-line human-readable description of a case:
/// "3 atoms [O H H] basis sto-3g charge 0" plus inline XYZ coordinates.
std::string describe_case(const chem::Molecule& molecule,
                          const std::string& basis);

}  // namespace mthfx::testing
