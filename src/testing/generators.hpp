#pragma once

// Seeded generators for random test inputs: molecules, geometric
// transforms, basis assignments, density matrices and HFX/SCF
// configurations. Everything is driven by testing::Rng only, so a case
// is fully reproducible from its 64-bit seed.

#include <cstddef>
#include <string>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "hfx/fock_builder.hpp"
#include "linalg/matrix.hpp"
#include "scf/rhf.hpp"
#include "testing/rng.hpp"

namespace mthfx::testing {

/// Knobs for random_molecule. Defaults give small Li/air-flavored
/// clusters (H/Li/O, H-weighted) that every shipped basis covers and the
/// dense O(N^4) oracles can afford.
struct MoleculeSpec {
  std::size_t min_atoms = 2;
  std::size_t max_atoms = 4;
  /// Element pool, sampled uniformly (repeat an entry to weight it).
  std::vector<int> elements = {1, 1, 1, 3, 8};
  double min_separation = 1.8;  ///< Bohr, keeps integrals well-conditioned
  double box = 7.0;             ///< Bohr edge of the placement cube
  bool even_electrons = false;  ///< adjust charge so RHF applies
};

/// Random geometry drawn from `spec`: atoms placed uniformly in a cube,
/// rejection-sampled to respect min_separation.
chem::Molecule random_molecule(Rng& rng, const MoleculeSpec& spec = {});

/// A jittered copy of a known-good geometry (every coordinate perturbed
/// by up to +-max_jitter Bohr) — random enough to explore, tame enough
/// that SCF still converges.
chem::Molecule jittered(Rng& rng, const chem::Molecule& mol,
                        double max_jitter = 0.08);

/// Random proper rotation matrix (3x3, det +1), uniform over SO(3).
linalg::Matrix random_rotation(Rng& rng);

/// Copy of `mol` with every position mapped through the 3x3 matrix `rot`.
chem::Molecule rotated(const chem::Molecule& mol, const linalg::Matrix& rot);

/// Copy of `mol` translated by a random shift of magnitude up to
/// `max_shift` Bohr per axis.
chem::Molecule randomly_translated(Rng& rng, const chem::Molecule& mol,
                                   double max_shift = 5.0);

/// Basis name the molecule's elements are all covered by. Prefers the
/// smaller sto-3g (cheap oracles) but mixes in 6-31g when every element
/// supports it.
std::string random_basis_name(Rng& rng, const chem::Molecule& mol);

/// Random symmetric "density-like" matrix: uniform entries in
/// [-scale, scale], symmetrized, plus a unit diagonal shift.
linalg::Matrix random_symmetric_density(Rng& rng, std::size_t n,
                                        double scale = 0.5);

/// Random HfxOptions: eps_schwarz log-uniform in [1e-12, 1e-6], any
/// schedule, 1-8 threads, density screening on/off, occasionally an
/// explicit target_task_cost.
hfx::HfxOptions random_hfx_options(Rng& rng);

/// Random ScfOptions varying the redundant degrees of freedom
/// (incremental vs full Fock builds, rebuild period, DIIS history use,
/// schedule) while holding convergence thresholds tight, so any two
/// draws must agree on the converged energy.
scf::ScfOptions random_scf_options(Rng& rng);

/// All four schedules, for exhaustive sweeps.
const std::vector<hfx::HfxSchedule>& all_schedules();

}  // namespace mthfx::testing
