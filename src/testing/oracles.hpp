#pragma once

// Slow-but-obviously-correct reference implementations ("oracles") the
// production screened/threaded paths are differentially tested against.
// Nothing here screens, threads, or exploits permutational symmetry —
// each oracle is a direct transcription of the defining equations, which
// is exactly what makes disagreement with the fast path meaningful.

#include <cstddef>
#include <vector>

#include "chem/basis.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::testing {

struct DenseJk {
  linalg::Matrix j;
  linalg::Matrix k;
};

/// Naive one-pass ERI tensor: every one of the ns^4 shell quartets is
/// evaluated independently through the shell-level API (no pair-data
/// reuse, no canonical-quartet shortcut). Index ((mu*n+nu)*n+lam)*n+sig,
/// chemists' notation.
std::vector<double> naive_eri_tensor(const chem::BasisSet& basis);

/// Unscreened O(N^4) J/K contraction of a full ERI tensor:
///   J_mn = sum_ls P_ls (mn|ls),   K_mn = sum_ls P_ls (ml|ns).
/// `tensor` must be an nao^4 chemists'-notation tensor for `basis`.
DenseJk contract_jk(const chem::BasisSet& basis,
                    const std::vector<double>& tensor,
                    const linalg::Matrix& density);

/// Convenience: naive tensor + dense contraction in one call.
DenseJk dense_jk_reference(const chem::BasisSet& basis,
                           const linalg::Matrix& density);

/// Serial canonical-quartet J/K with *explicit* orbit deduplication: for
/// each canonical AO quartet the 8 index permutations are enumerated,
/// duplicates removed with a set, and the plain per-permutation update
/// applied. Cross-checks the coincidence-flag logic in digest_quartet
/// without sharing any of it. `tensor` as in contract_jk.
DenseJk orbit_jk_reference(const chem::BasisSet& basis,
                           const std::vector<double>& tensor,
                           const linalg::Matrix& density);

/// Serial in-order reduction of per-thread partial matrices — the
/// reference for any tree/parallel reduction of accumulators.
linalg::Matrix serial_reduce(const std::vector<linalg::Matrix>& parts);

/// Independent Coulomb energy 0.5 * sum_{mnls} P_mn P_ls (mn|ls) straight
/// from the tensor (no J matrix formed) — scalar anchor for trace
/// identities.
double coulomb_energy_from_tensor(const chem::BasisSet& basis,
                                  const std::vector<double>& tensor,
                                  const linalg::Matrix& density);

/// Independent exchange contraction 0.5 * sum_{mnls} P_mn P_ls (ml|ns)
/// from the tensor (no K matrix formed). Equals 0.5 * tr(P K).
double exchange_energy_from_tensor(const chem::BasisSet& basis,
                                   const std::vector<double>& tensor,
                                   const linalg::Matrix& density);

}  // namespace mthfx::testing
