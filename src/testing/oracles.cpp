#include "testing/oracles.hpp"

#include <array>
#include <stdexcept>

#include "ints/eri.hpp"

namespace mthfx::testing {

using chem::BasisSet;
using linalg::Matrix;

std::vector<double> naive_eri_tensor(const BasisSet& basis) {
  const std::size_t n = basis.num_functions();
  const std::size_t ns = basis.num_shells();
  std::vector<double> tensor(n * n * n * n, 0.0);
  for (std::size_t sa = 0; sa < ns; ++sa)
    for (std::size_t sb = 0; sb < ns; ++sb)
      for (std::size_t sc = 0; sc < ns; ++sc)
        for (std::size_t sd = 0; sd < ns; ++sd) {
          const ints::EriBlock block = ints::eri_shell_quartet(
              basis.shell(sa), basis.shell(sb), basis.shell(sc),
              basis.shell(sd));
          const std::size_t oa = basis.first_function(sa);
          const std::size_t ob = basis.first_function(sb);
          const std::size_t oc = basis.first_function(sc);
          const std::size_t od = basis.first_function(sd);
          for (std::size_t i = 0; i < block.na; ++i)
            for (std::size_t j = 0; j < block.nb; ++j)
              for (std::size_t k = 0; k < block.nc; ++k)
                for (std::size_t l = 0; l < block.nd; ++l)
                  tensor[(((oa + i) * n + (ob + j)) * n + (oc + k)) * n +
                         (od + l)] = block(i, j, k, l);
        }
  return tensor;
}

DenseJk contract_jk(const BasisSet& basis, const std::vector<double>& tensor,
                    const Matrix& density) {
  const std::size_t n = basis.num_functions();
  if (tensor.size() != n * n * n * n)
    throw std::invalid_argument("contract_jk: tensor/basis size mismatch");
  DenseJk out{Matrix(n, n), Matrix(n, n)};
  for (std::size_t mu = 0; mu < n; ++mu)
    for (std::size_t nu = 0; nu < n; ++nu)
      for (std::size_t lam = 0; lam < n; ++lam)
        for (std::size_t sig = 0; sig < n; ++sig) {
          const double p = density(lam, sig);
          out.j(mu, nu) += p * tensor[((mu * n + nu) * n + lam) * n + sig];
          out.k(mu, nu) += p * tensor[((mu * n + lam) * n + nu) * n + sig];
        }
  return out;
}

DenseJk dense_jk_reference(const BasisSet& basis, const Matrix& density) {
  return contract_jk(basis, naive_eri_tensor(basis), density);
}

DenseJk orbit_jk_reference(const BasisSet& basis,
                           const std::vector<double>& tensor,
                           const Matrix& density) {
  const std::size_t n = basis.num_functions();
  if (tensor.size() != n * n * n * n)
    throw std::invalid_argument("orbit_jk_reference: size mismatch");
  DenseJk out{Matrix(n, n), Matrix(n, n)};
  using Quad = std::array<std::size_t, 4>;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      for (std::size_t k = 0; k <= i; ++k)
        for (std::size_t l = 0; l <= k; ++l) {
          // Canonical quartet: i >= j, k >= l, pair(ij) >= pair(kl).
          if (i * (i + 1) / 2 + j < k * (k + 1) / 2 + l) continue;
          const double v = tensor[((i * n + j) * n + k) * n + l];
          // Enumerate the full 8-member permutational orbit and apply
          // the plain update once per *distinct* member.
          const Quad orbit[8] = {{i, j, k, l}, {j, i, k, l}, {i, j, l, k},
                                 {j, i, l, k}, {k, l, i, j}, {l, k, i, j},
                                 {k, l, j, i}, {l, k, j, i}};
          Quad seen[8];
          std::size_t nseen = 0;
          for (const Quad& q : orbit) {
            bool dup = false;
            for (std::size_t s = 0; s < nseen; ++s)
              if (seen[s] == q) {
                dup = true;
                break;
              }
            if (dup) continue;
            seen[nseen++] = q;
            const auto [a, b, c, d] = q;
            out.j(a, b) += density(c, d) * v;
            out.k(a, c) += density(b, d) * v;
          }
        }
  return out;
}

Matrix serial_reduce(const std::vector<Matrix>& parts) {
  if (parts.empty()) return Matrix();
  Matrix sum(parts.front().rows(), parts.front().cols());
  for (const Matrix& p : parts) sum += p;
  return sum;
}

double coulomb_energy_from_tensor(const BasisSet& basis,
                                  const std::vector<double>& tensor,
                                  const Matrix& density) {
  const std::size_t n = basis.num_functions();
  double e = 0.0;
  for (std::size_t mu = 0; mu < n; ++mu)
    for (std::size_t nu = 0; nu < n; ++nu)
      for (std::size_t lam = 0; lam < n; ++lam)
        for (std::size_t sig = 0; sig < n; ++sig)
          e += density(mu, nu) * density(lam, sig) *
               tensor[((mu * n + nu) * n + lam) * n + sig];
  return 0.5 * e;
}

double exchange_energy_from_tensor(const BasisSet& basis,
                                   const std::vector<double>& tensor,
                                   const Matrix& density) {
  const std::size_t n = basis.num_functions();
  double e = 0.0;
  for (std::size_t mu = 0; mu < n; ++mu)
    for (std::size_t nu = 0; nu < n; ++nu)
      for (std::size_t lam = 0; lam < n; ++lam)
        for (std::size_t sig = 0; sig < n; ++sig)
          e += density(mu, nu) * density(lam, sig) *
               tensor[((mu * n + lam) * n + nu) * n + sig];
  return 0.5 * e;
}

}  // namespace mthfx::testing
