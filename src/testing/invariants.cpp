#include "testing/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ints/eri.hpp"
#include "ints/schwarz.hpp"

namespace mthfx::testing {

using chem::BasisSet;
using linalg::Matrix;

namespace {

std::string format_quartet(std::size_t a, std::size_t b, std::size_t c,
                           std::size_t d) {
  std::ostringstream os;
  os << "(" << a << " " << b << "|" << c << " " << d << ")";
  return os.str();
}

}  // namespace

InvariantResult check_eri_permutation_symmetry(const BasisSet& basis, Rng& rng,
                                               std::size_t samples,
                                               double tol) {
  const std::size_t ns = basis.num_shells();
  for (std::size_t sample = 0; sample < samples; ++sample) {
    const std::size_t sa = rng.index(ns), sb = rng.index(ns),
                      sc = rng.index(ns), sd = rng.index(ns);
    const auto ref = ints::eri_shell_quartet(basis.shell(sa), basis.shell(sb),
                                             basis.shell(sc), basis.shell(sd));
    // The 7 nontrivial orbit members, each as a fresh shell-level
    // evaluation. perm maps reference indices (i,j,k,l) to the permuted
    // block's index order.
    struct Perm {
      std::size_t s[4];
      std::size_t map[4];  // permuted block index -> reference index slot
      const char* name;
    };
    const Perm perms[] = {
        {{sb, sa, sc, sd}, {1, 0, 2, 3}, "(ba|cd)"},
        {{sa, sb, sd, sc}, {0, 1, 3, 2}, "(ab|dc)"},
        {{sb, sa, sd, sc}, {1, 0, 3, 2}, "(ba|dc)"},
        {{sc, sd, sa, sb}, {2, 3, 0, 1}, "(cd|ab)"},
        {{sd, sc, sa, sb}, {3, 2, 0, 1}, "(dc|ab)"},
        {{sc, sd, sb, sa}, {2, 3, 1, 0}, "(cd|ba)"},
        {{sd, sc, sb, sa}, {3, 2, 1, 0}, "(dc|ba)"},
    };
    for (const Perm& perm : perms) {
      const auto blk = ints::eri_shell_quartet(
          basis.shell(perm.s[0]), basis.shell(perm.s[1]),
          basis.shell(perm.s[2]), basis.shell(perm.s[3]));
      std::size_t idx[4];
      const std::size_t dims[4] = {blk.na, blk.nb, blk.nc, blk.nd};
      for (idx[0] = 0; idx[0] < dims[0]; ++idx[0])
        for (idx[1] = 0; idx[1] < dims[1]; ++idx[1])
          for (idx[2] = 0; idx[2] < dims[2]; ++idx[2])
            for (idx[3] = 0; idx[3] < dims[3]; ++idx[3]) {
              std::size_t r[4];  // reference (i,j,k,l) for this element
              for (int axis = 0; axis < 4; ++axis)
                r[perm.map[axis]] = idx[axis];
              const double want = ref(r[0], r[1], r[2], r[3]);
              const double got = blk(idx[0], idx[1], idx[2], idx[3]);
              if (std::abs(got - want) > tol) {
                InvariantResult res;
                res.ok = false;
                std::ostringstream os;
                os << "ERI permutation symmetry violated: shells "
                   << format_quartet(sa, sb, sc, sd) << " vs " << perm.name
                   << ": " << want << " != " << got << " (|diff| "
                   << std::abs(got - want) << " > " << tol << ")";
                res.detail = os.str();
                return res;
              }
            }
    }
  }
  return {};
}

InvariantResult check_schwarz_bound(const BasisSet& basis, double rel_slack) {
  const Matrix q = ints::schwarz_bounds(basis);
  const std::size_t ns = basis.num_shells();
  for (std::size_t sa = 0; sa < ns; ++sa)
    for (std::size_t sb = 0; sb < ns; ++sb)
      for (std::size_t sc = 0; sc < ns; ++sc)
        for (std::size_t sd = 0; sd < ns; ++sd) {
          const auto blk = ints::eri_shell_quartet(
              basis.shell(sa), basis.shell(sb), basis.shell(sc),
              basis.shell(sd));
          double vmax = 0.0;
          for (const double v : blk.values) vmax = std::max(vmax, std::abs(v));
          const double bound = q(sa, sb) * q(sc, sd);
          // Truncation-noise allowance (see header): the kernel may have
          // under-computed each diagonal by up to noise_xy and skipped
          // cross-integral primitive combos worth up to nab*ncd*cutoff.
          const double nab =
              static_cast<double>(basis.shell(sa).num_primitives() *
                                  basis.shell(sb).num_primitives());
          const double ncd =
              static_cast<double>(basis.shell(sc).num_primitives() *
                                  basis.shell(sd).num_primitives());
          const double qa = std::sqrt(q(sa, sb) * q(sa, sb) +
                                      nab * nab * ints::kEriPrimitiveCutoff);
          const double qc = std::sqrt(q(sc, sd) * q(sc, sd) +
                                      ncd * ncd * ints::kEriPrimitiveCutoff);
          const double allowed =
              qa * qc + nab * ncd * ints::kEriPrimitiveCutoff;
          if (vmax > allowed * (1.0 + rel_slack) + 1e-300) {
            InvariantResult res;
            res.ok = false;
            std::ostringstream os;
            os << "Schwarz bound violated on shells "
               << format_quartet(sa, sb, sc, sd) << ": max|(ab|cd)| = " << vmax
               << " > Q_ab*Q_cd = " << bound;
            res.detail = os.str();
            return res;
          }
        }
  return {};
}

InvariantResult check_hermitian(const Matrix& a, double tol,
                                const std::string& label) {
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      if (std::abs(a(i, j) - a(j, i)) > tol) {
        InvariantResult res;
        res.ok = false;
        std::ostringstream os;
        os << label << " not hermitian at (" << i << "," << j
           << "): |a_ij - a_ji| = " << std::abs(a(i, j) - a(j, i)) << " > "
           << tol;
        res.detail = os.str();
        return res;
      }
  return {};
}

double screening_error_bound(const hfx::HfxStats& stats,
                             const hfx::HfxOptions& options, double pmax,
                             std::size_t max_shell) {
  // Quartets never enumerated because a shell pair was dropped outright:
  // total canonical pair-quartets minus those over surviving pairs. Each
  // dropped pair satisfies Q_ab * max_Q < eps, so any quartet touching
  // it is below eps too.
  const auto canonical = [](std::size_t npairs) {
    return npairs * (npairs + 1) / 2;
  };
  const double lost_pair_quartets = static_cast<double>(
      canonical(stats.num_pairs_unscreened) - canonical(stats.num_pairs));
  const double neglected =
      lost_pair_quartets +
      static_cast<double>(stats.screening.quartets_schwarz_screened) +
      static_cast<double>(stats.screening.quartets_density_screened);
  // Per neglected shell quartet, one matrix element receives at most
  // 8 (orbit members) x max_shell^2 (AO quartets mapping to it)
  // contributions, each bounded by eps * pmax (bare Schwarz / dropped
  // pair) or eps alone (density prune — the density factor is already in
  // the prune test). Folding everything under max(pmax, 1) keeps the
  // bound rigorous for both.
  const double per_quartet = 8.0 * static_cast<double>(max_shell * max_shell) *
                             std::max(pmax, 1.0) * options.eps_schwarz;
  // Computed quartets can still drop individual values below the
  // contribution cutoff inside the digestion kernel.
  const double cutoff_term =
      static_cast<double>(stats.screening.quartets_computed) * 8.0 *
      static_cast<double>(max_shell * max_shell) * std::max(pmax, 1.0) *
      options.contribution_cutoff();
  return neglected * per_quartet + cutoff_term + 1e-14;
}

}  // namespace mthfx::testing
