#include "fault/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mthfx::fault {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write to", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  // The temporary lives in the target's directory so the final rename()
  // stays within one filesystem (rename across filesystems is a copy,
  // not atomic).
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open", tmp);
  try {
    write_all(fd, contents.data(), contents.size(), tmp);
    if (::fsync(fd) != 0) fail("fsync", tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename to", path);
  }
  // Persist the rename itself: without the directory fsync a crash can
  // forget the new directory entry even though the data blocks are safe.
  const std::string dir = parent_dir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    (void)::fsync(dfd);  // best effort; some filesystems refuse dir fsync
    ::close(dfd);
  }
}

void durable_append(int fd, std::string_view data) {
  write_all(fd, data.data(), data.size(), "<journal>");
  if (::fsync(fd) != 0)
    throw std::runtime_error(std::string("atomic_write: fsync journal: ") +
                             std::strerror(errno));
}

}  // namespace mthfx::fault
