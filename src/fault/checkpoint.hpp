#pragma once

// Checkpoint/restart state for the SCF drivers and the BOMD integrator,
// serialized to JSON through obs::Json. Doubles round-trip bit-for-bit
// (the emitter writes shortest-round-trip decimals, the parser reads
// them back with strtod), so a resumed deterministic run reproduces the
// uninterrupted run's trajectory exactly. Format: docs/resilience.md.

#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"
#include "obs/json.hpp"

namespace mthfx::fault {

/// SCF restart state. `density` (+ the alpha/beta split for open-shell)
/// and the DIIS history are enough to resume the fixed-point iteration
/// mid-flight; `j`/`k`/`density_prev` carry the incremental-Fock state
/// so an RHF resume stays bit-for-bit with the uninterrupted run.
struct ScfCheckpoint {
  std::string method;  ///< "rhf" | "uhf" | "rks" | "uks"
  std::size_t iteration = 0;
  double energy = 0.0;
  linalg::Matrix density;
  linalg::Matrix density_beta;  ///< open-shell only (empty otherwise)
  // Incremental-Fock state (rhf/rks; empty when not in use).
  linalg::Matrix density_prev;
  linalg::Matrix j;
  linalg::Matrix k;
  /// RHF's near-convergence switch to full builds (see rhf.cpp); must
  /// survive a restart or the resumed run re-enters incremental mode and
  /// diverges bit-wise from the uninterrupted one.
  bool force_full_builds = false;
  // DIIS history (parallel vectors of Fock and error matrices); the
  // *_beta lists carry the second spin channel for uhf/uks.
  std::vector<linalg::Matrix> diis_focks;
  std::vector<linalg::Matrix> diis_errors;
  std::vector<linalg::Matrix> diis_focks_beta;
  std::vector<linalg::Matrix> diis_errors_beta;

  friend bool operator==(const ScfCheckpoint&, const ScfCheckpoint&) =
      default;
};

/// BOMD restart state: positions, velocities, and the frame index are
/// the full dynamical state of a velocity-Verlet trajectory.
struct MdCheckpoint {
  std::size_t frame_index = 0;  ///< frames [0, frame_index] already done
  double time_fs = 0.0;
  chem::Molecule geometry;
  std::vector<chem::Vec3> velocities;
  double initial_total_energy = 0.0;  ///< drift reference from frame 0

  friend bool operator==(const MdCheckpoint&, const MdCheckpoint&) = default;
};

obs::Json to_json(const ScfCheckpoint& ckpt);
obs::Json to_json(const MdCheckpoint& ckpt);

/// Geometry round-trip ({"charge", "atoms": [{"z", "pos"}]}) shared with
/// the engine's write-ahead journal, which must persist full job inputs.
/// Doubles survive bit-for-bit through obs::Json.
obs::Json molecule_to_json(const chem::Molecule& mol);
chem::Molecule molecule_from_json(const obs::Json& j);

/// Throws std::invalid_argument on schema mismatch (wrong "kind",
/// missing fields, inconsistent dimensions).
ScfCheckpoint scf_checkpoint_from_json(const obs::Json& j);
MdCheckpoint md_checkpoint_from_json(const obs::Json& j);

/// File helpers; save writes atomically-ish (truncate+write+flush) and
/// throws std::runtime_error on I/O failure. load dispatches on the
/// checkpoint's "kind" field via the accessors below.
void save_checkpoint(const std::string& path, const ScfCheckpoint& ckpt);
void save_checkpoint(const std::string& path, const MdCheckpoint& ckpt);

/// Reads the file and returns the parsed JSON document (callers inspect
/// `kind` then call the matching *_from_json).
obs::Json load_checkpoint_json(const std::string& path);

/// "scf", "md", or "" when the document has no kind member.
std::string checkpoint_kind(const obs::Json& j);

}  // namespace mthfx::fault
