#pragma once

// Cooperative cancellation for long-running solves. A CancelToken is
// armed by an external observer (the engine's deadline watchdog); the
// SCF drivers poll it once per iteration — the natural cancellation
// point, since an iteration is the smallest unit after which the
// checkpoint machinery can resume — and raise Cancelled, which unwinds
// like any other job failure (caught by the per-job fault domain, never
// by the numerics).

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

namespace mthfx::fault {

/// Thrown from a cancellation point after the token was armed. Carries
/// the canceller's reason (e.g. "deadline 0.05s exceeded").
struct Cancelled : std::runtime_error {
  explicit Cancelled(const std::string& reason)
      : std::runtime_error("cancelled: " + reason) {}
};

class CancelToken {
 public:
  /// Arm the token (idempotent; the first reason wins). Thread-safe.
  void cancel(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (reason_.empty()) reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  std::string reason() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reason_;
  }

  /// Cancellation point: throws Cancelled once the token is armed. The
  /// fast path is one relaxed-ish atomic load.
  void check() const {
    if (cancelled()) throw Cancelled(reason());
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mutex_;
  std::string reason_;
};

}  // namespace mthfx::fault
