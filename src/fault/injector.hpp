#pragma once

// Seeded fault injection for resilience testing. An Injector is a
// deterministic per-site fault source: given a site id (e.g. a quartet
// task index) and an attempt number it decides — via a stateless hash of
// (seed, site, attempt) — whether that execution fails (throws), stalls
// (straggler sleep), or corrupts its output (NaN poisoning). Because the
// decision is a pure function, a failure run replays identically under
// the same seed, and a retried attempt sees a fresh, independent draw.
//
// Configure programmatically via FaultOptions or through the
// MTHFX_FAULT_SPEC environment variable, a comma-separated key=value
// spec (grammar in docs/resilience.md):
//
//   MTHFX_FAULT_SPEC="fail=0.01,corrupt=0.005,stall=0.001,stall_ms=2,seed=42,retries=4"
//
// Two straggler-class kinds make deadline/watchdog paths testable:
// `hang` (the task sleeps hang_ms — long enough to blow a wall-clock
// deadline) and `slow` (the task sleeps slow_factor x stall_ms — a
// multiplicative slowdown rather than a fixed blip):
//
//   MTHFX_FAULT_SPEC="hang=1,hang_ms=200,seed=7"
//   MTHFX_FAULT_SPEC="slow=0.05,slow_factor=20,stall_ms=2"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mthfx::fault {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kFail,
  kStall,
  kCorrupt,
  kHang,  ///< task sleeps hang_seconds (deadline/watchdog testing)
  kSlow,  ///< task sleeps slow_factor * stall_seconds (straggler)
};

const char* to_string(FaultKind kind);

struct FaultOptions {
  double fail_rate = 0.0;     ///< P(task throws InjectedFault)
  double stall_rate = 0.0;    ///< P(task sleeps stall_seconds first)
  double corrupt_rate = 0.0;  ///< P(task output is NaN-poisoned)
  double hang_rate = 0.0;     ///< P(task sleeps hang_seconds — a hang)
  double slow_rate = 0.0;     ///< P(task sleeps slow_factor*stall_seconds)
  double stall_seconds = 1e-3;
  double hang_seconds = 0.1;  ///< hang duration (spec key hang_ms)
  double slow_factor = 10.0;  ///< straggler slowdown multiplier
  std::uint64_t seed = 0x6d746866'78ULL;  // "mthfx"
  std::size_t max_retries = 3;            ///< retry budget per task

  bool enabled() const {
    return fail_rate > 0.0 || stall_rate > 0.0 || corrupt_rate > 0.0 ||
           hang_rate > 0.0 || slow_rate > 0.0;
  }
  /// Throws std::invalid_argument if any rate is outside [0, 1] or the
  /// combined rate exceeds 1.
  void validate() const;
};

/// The exception thrown by injected kFail faults (and nothing else), so
/// tests can distinguish injected failures from genuine errors.
struct InjectedFault : std::runtime_error {
  InjectedFault(std::uint64_t site, std::uint32_t attempt);
  std::uint64_t site;
  std::uint32_t attempt;
};

class Injector {
 public:
  explicit Injector(FaultOptions options);

  const FaultOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled(); }

  /// Pure decision: which fault (if any) hits `site` on `attempt`.
  /// Thread-safe, no state mutation.
  FaultKind decide(std::uint64_t site, std::uint32_t attempt) const;

  /// decide() plus statistics accounting. kStall sleeps here; kFail and
  /// kCorrupt are returned for the caller to act on (throw / poison) so
  /// the injector stays agnostic of the task's data.
  FaultKind sample(std::uint64_t site, std::uint32_t attempt);

  /// Throws InjectedFault when decide() says kFail; applies the stall
  /// when it says kStall; returns true when the caller must poison its
  /// output (kCorrupt). Convenience wrapper over sample().
  bool apply(std::uint64_t site, std::uint32_t attempt);

  std::uint64_t injected() const {
    return failures() + stalls() + corruptions() + hangs() + slowdowns();
  }
  std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t corruptions() const {
    return corruptions_.load(std::memory_order_relaxed);
  }
  std::uint64_t hangs() const {
    return hangs_.load(std::memory_order_relaxed);
  }
  std::uint64_t slowdowns() const {
    return slowdowns_.load(std::memory_order_relaxed);
  }
  void reset_stats();

 private:
  FaultOptions options_;
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> hangs_{0};
  std::atomic<std::uint64_t> slowdowns_{0};
};

/// Parses the MTHFX_FAULT_SPEC grammar:
///   spec    := pair ("," pair)*  |  ""          (empty spec = disabled)
///   pair    := key "=" value
///   key     := fail | stall | corrupt | hang | slow | stall_ms
///            | hang_ms | slow_factor | seed | retries
/// Unknown keys, malformed values, and out-of-range rates throw
/// std::invalid_argument.
FaultOptions parse_fault_spec(std::string_view spec);

/// FaultOptions from the MTHFX_FAULT_SPEC environment variable, or
/// all-zero (disabled) defaults when unset/empty.
FaultOptions fault_options_from_env();

/// splitmix64 mixing step — the stateless hash behind decide(), exposed
/// for other seeded-deterministic policies (the engine's jittered
/// retry backoff draws from it).
std::uint64_t mix64(std::uint64_t x);

}  // namespace mthfx::fault
