#include "fault/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/atomic_file.hpp"

namespace mthfx::fault {

namespace {

obs::Json matrix_to_json(const linalg::Matrix& m) {
  obs::Json j = obs::Json::object();
  j["rows"] = m.rows();
  j["cols"] = m.cols();
  obs::Json data = obs::Json::array();
  for (const double v : m.flat()) data.push_back(v);
  j["data"] = std::move(data);
  return j;
}

const obs::Json& require(const obs::Json& j, const char* key) {
  const obs::Json* member = j.find(key);
  if (!member)
    throw std::invalid_argument(std::string("checkpoint: missing '") + key +
                                "'");
  return *member;
}

linalg::Matrix matrix_from_json(const obs::Json& j) {
  const auto rows = static_cast<std::size_t>(require(j, "rows").as_int());
  const auto cols = static_cast<std::size_t>(require(j, "cols").as_int());
  const obs::Json& data = require(j, "data");
  if (data.size() != rows * cols)
    throw std::invalid_argument("checkpoint: matrix data size mismatch");
  std::vector<double> flat;
  flat.reserve(data.size());
  for (const obs::Json& v : data.items()) flat.push_back(v.as_double());
  return linalg::Matrix(rows, cols, std::move(flat));
}

obs::Json matrices_to_json(const std::vector<linalg::Matrix>& ms) {
  obs::Json arr = obs::Json::array();
  for (const auto& m : ms) arr.push_back(matrix_to_json(m));
  return arr;
}

std::vector<linalg::Matrix> matrices_from_json(const obs::Json& j) {
  std::vector<linalg::Matrix> out;
  out.reserve(j.size());
  for (const obs::Json& m : j.items()) out.push_back(matrix_from_json(m));
  return out;
}

}  // namespace

obs::Json molecule_to_json(const chem::Molecule& mol) {
  obs::Json j = obs::Json::object();
  j["charge"] = mol.charge();
  obs::Json atoms = obs::Json::array();
  for (const auto& atom : mol.atoms()) {
    obs::Json a = obs::Json::object();
    a["z"] = atom.z;
    obs::Json pos = obs::Json::array();
    pos.push_back(atom.pos.x);
    pos.push_back(atom.pos.y);
    pos.push_back(atom.pos.z);
    a["pos"] = std::move(pos);
    atoms.push_back(std::move(a));
  }
  j["atoms"] = std::move(atoms);
  return j;
}

chem::Molecule molecule_from_json(const obs::Json& j) {
  chem::Molecule mol;
  mol.set_charge(static_cast<int>(require(j, "charge").as_int()));
  for (const obs::Json& a : require(j, "atoms").items()) {
    const obs::Json& pos = require(a, "pos");
    if (pos.size() != 3)
      throw std::invalid_argument("checkpoint: atom position must have 3 "
                                  "components");
    mol.add_atom(static_cast<int>(require(a, "z").as_int()),
                 {pos.items()[0].as_double(), pos.items()[1].as_double(),
                  pos.items()[2].as_double()});
  }
  return mol;
}

namespace {

// Checkpoints are replaced atomically (temp file + rename + fsync): a
// crash mid-save can no longer leave a torn half-written checkpoint
// that poisons the next restart.
void write_file(const std::string& path, const obs::Json& j) {
  atomic_write_file(path, j.dump(2) + "\n");
}

}  // namespace

obs::Json to_json(const ScfCheckpoint& ckpt) {
  obs::Json j = obs::Json::object();
  j["kind"] = "scf";
  j["method"] = ckpt.method;
  j["iteration"] = ckpt.iteration;
  j["energy"] = ckpt.energy;
  j["density"] = matrix_to_json(ckpt.density);
  j["density_beta"] = matrix_to_json(ckpt.density_beta);
  j["density_prev"] = matrix_to_json(ckpt.density_prev);
  j["j"] = matrix_to_json(ckpt.j);
  j["k"] = matrix_to_json(ckpt.k);
  j["force_full_builds"] = ckpt.force_full_builds;
  j["diis_focks"] = matrices_to_json(ckpt.diis_focks);
  j["diis_errors"] = matrices_to_json(ckpt.diis_errors);
  j["diis_focks_beta"] = matrices_to_json(ckpt.diis_focks_beta);
  j["diis_errors_beta"] = matrices_to_json(ckpt.diis_errors_beta);
  return j;
}

obs::Json to_json(const MdCheckpoint& ckpt) {
  obs::Json j = obs::Json::object();
  j["kind"] = "md";
  j["frame_index"] = ckpt.frame_index;
  j["time_fs"] = ckpt.time_fs;
  j["geometry"] = molecule_to_json(ckpt.geometry);
  obs::Json vels = obs::Json::array();
  for (const auto& v : ckpt.velocities) {
    obs::Json vec = obs::Json::array();
    vec.push_back(v.x);
    vec.push_back(v.y);
    vec.push_back(v.z);
    vels.push_back(std::move(vec));
  }
  j["velocities"] = std::move(vels);
  j["initial_total_energy"] = ckpt.initial_total_energy;
  return j;
}

ScfCheckpoint scf_checkpoint_from_json(const obs::Json& j) {
  if (checkpoint_kind(j) != "scf")
    throw std::invalid_argument("checkpoint: not an SCF checkpoint");
  ScfCheckpoint ckpt;
  ckpt.method = require(j, "method").as_string();
  ckpt.iteration = static_cast<std::size_t>(require(j, "iteration").as_int());
  ckpt.energy = require(j, "energy").as_double();
  ckpt.density = matrix_from_json(require(j, "density"));
  ckpt.density_beta = matrix_from_json(require(j, "density_beta"));
  ckpt.density_prev = matrix_from_json(require(j, "density_prev"));
  ckpt.j = matrix_from_json(require(j, "j"));
  ckpt.k = matrix_from_json(require(j, "k"));
  // Optional for compatibility with checkpoints written before the
  // near-convergence full-build switch existed.
  if (const obs::Json* ff = j.find("force_full_builds"))
    ckpt.force_full_builds = ff->as_bool();
  ckpt.diis_focks = matrices_from_json(require(j, "diis_focks"));
  ckpt.diis_errors = matrices_from_json(require(j, "diis_errors"));
  ckpt.diis_focks_beta = matrices_from_json(require(j, "diis_focks_beta"));
  ckpt.diis_errors_beta = matrices_from_json(require(j, "diis_errors_beta"));
  if (ckpt.diis_focks.size() != ckpt.diis_errors.size() ||
      ckpt.diis_focks_beta.size() != ckpt.diis_errors_beta.size())
    throw std::invalid_argument(
        "checkpoint: DIIS fock/error history size mismatch");
  return ckpt;
}

MdCheckpoint md_checkpoint_from_json(const obs::Json& j) {
  if (checkpoint_kind(j) != "md")
    throw std::invalid_argument("checkpoint: not an MD checkpoint");
  MdCheckpoint ckpt;
  ckpt.frame_index =
      static_cast<std::size_t>(require(j, "frame_index").as_int());
  ckpt.time_fs = require(j, "time_fs").as_double();
  ckpt.geometry = molecule_from_json(require(j, "geometry"));
  for (const obs::Json& v : require(j, "velocities").items()) {
    if (v.size() != 3)
      throw std::invalid_argument("checkpoint: velocity must have 3 "
                                  "components");
    ckpt.velocities.push_back({v.items()[0].as_double(),
                               v.items()[1].as_double(),
                               v.items()[2].as_double()});
  }
  if (ckpt.velocities.size() != ckpt.geometry.size())
    throw std::invalid_argument(
        "checkpoint: velocity count does not match atom count");
  ckpt.initial_total_energy = require(j, "initial_total_energy").as_double();
  return ckpt;
}

void save_checkpoint(const std::string& path, const ScfCheckpoint& ckpt) {
  write_file(path, to_json(ckpt));
}

void save_checkpoint(const std::string& path, const MdCheckpoint& ckpt) {
  write_file(path, to_json(ckpt));
}

obs::Json load_checkpoint_json(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return obs::Json::parse(buf.str());
}

std::string checkpoint_kind(const obs::Json& j) {
  const obs::Json* kind = j.find("kind");
  return kind ? kind->as_string() : std::string();
}

}  // namespace mthfx::fault
