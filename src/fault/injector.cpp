#include "fault/injector.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace mthfx::fault {

// splitmix64: well-mixed stateless hash, the standard choice for turning
// a counter into an independent-looking stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

namespace {

double uniform01(std::uint64_t bits) {
  // 53 high-quality mantissa bits -> [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kFail: return "fail";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kHang: return "hang";
    case FaultKind::kSlow: return "slow";
  }
  return "?";
}

void FaultOptions::validate() const {
  auto check01 = [](double v, const char* name) {
    if (!(v >= 0.0 && v <= 1.0))
      throw std::invalid_argument(std::string("FaultOptions: ") + name +
                                  " must be in [0, 1]");
  };
  check01(fail_rate, "fail_rate");
  check01(stall_rate, "stall_rate");
  check01(corrupt_rate, "corrupt_rate");
  check01(hang_rate, "hang_rate");
  check01(slow_rate, "slow_rate");
  if (fail_rate + stall_rate + corrupt_rate + hang_rate + slow_rate > 1.0)
    throw std::invalid_argument(
        "FaultOptions: combined fault rates exceed 1");
  if (stall_seconds < 0.0)
    throw std::invalid_argument("FaultOptions: stall_seconds must be >= 0");
  if (hang_seconds < 0.0)
    throw std::invalid_argument("FaultOptions: hang_seconds must be >= 0");
  if (slow_factor < 0.0)
    throw std::invalid_argument("FaultOptions: slow_factor must be >= 0");
}

InjectedFault::InjectedFault(std::uint64_t site_in, std::uint32_t attempt_in)
    : std::runtime_error("injected fault at site " + std::to_string(site_in) +
                         " attempt " + std::to_string(attempt_in)),
      site(site_in),
      attempt(attempt_in) {}

Injector::Injector(FaultOptions options) : options_(options) {
  options_.validate();
}

FaultKind Injector::decide(std::uint64_t site, std::uint32_t attempt) const {
  if (!options_.enabled()) return FaultKind::kNone;
  std::uint64_t h = mix64(options_.seed);
  h = mix64(h ^ site);
  h = mix64(h ^ attempt);
  double u = uniform01(h);
  if (u < options_.fail_rate) return FaultKind::kFail;
  u -= options_.fail_rate;
  if (u < options_.stall_rate) return FaultKind::kStall;
  u -= options_.stall_rate;
  if (u < options_.corrupt_rate) return FaultKind::kCorrupt;
  u -= options_.corrupt_rate;
  if (u < options_.hang_rate) return FaultKind::kHang;
  u -= options_.hang_rate;
  if (u < options_.slow_rate) return FaultKind::kSlow;
  return FaultKind::kNone;
}

FaultKind Injector::sample(std::uint64_t site, std::uint32_t attempt) {
  const FaultKind kind = decide(site, attempt);
  switch (kind) {
    case FaultKind::kNone: break;
    case FaultKind::kFail:
      failures_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kStall:
      stalls_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.stall_seconds));
      break;
    case FaultKind::kCorrupt:
      corruptions_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kHang:
      hangs_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.hang_seconds));
      break;
    case FaultKind::kSlow:
      slowdowns_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.slow_factor * options_.stall_seconds));
      break;
  }
  return kind;
}

bool Injector::apply(std::uint64_t site, std::uint32_t attempt) {
  const FaultKind kind = sample(site, attempt);
  if (kind == FaultKind::kFail) throw InjectedFault(site, attempt);
  return kind == FaultKind::kCorrupt;
}

void Injector::reset_stats() {
  failures_.store(0, std::memory_order_relaxed);
  stalls_.store(0, std::memory_order_relaxed);
  corruptions_.store(0, std::memory_order_relaxed);
  hangs_.store(0, std::memory_order_relaxed);
  slowdowns_.store(0, std::memory_order_relaxed);
}

FaultOptions parse_fault_spec(std::string_view spec) {
  FaultOptions options;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view pair = spec.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  std::string(pair) + "'");
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    char* parse_end = nullptr;
    const double num = std::strtod(value.c_str(), &parse_end);
    if (value.empty() || parse_end != value.c_str() + value.size())
      throw std::invalid_argument("fault spec: bad value for '" +
                                  std::string(key) + "': '" + value + "'");
    if (key == "fail") {
      options.fail_rate = num;
    } else if (key == "stall") {
      options.stall_rate = num;
    } else if (key == "corrupt") {
      options.corrupt_rate = num;
    } else if (key == "hang") {
      options.hang_rate = num;
    } else if (key == "slow") {
      options.slow_rate = num;
    } else if (key == "stall_ms") {
      options.stall_seconds = num * 1e-3;
    } else if (key == "hang_ms") {
      options.hang_seconds = num * 1e-3;
    } else if (key == "slow_factor") {
      options.slow_factor = num;
    } else if (key == "seed") {
      options.seed = static_cast<std::uint64_t>(num);
    } else if (key == "retries") {
      if (num < 0.0)
        throw std::invalid_argument("fault spec: retries must be >= 0");
      options.max_retries = static_cast<std::size_t>(num);
    } else {
      throw std::invalid_argument("fault spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  options.validate();
  return options;
}

FaultOptions fault_options_from_env() {
  const char* spec = std::getenv("MTHFX_FAULT_SPEC");
  if (!spec || !*spec) return FaultOptions{};
  return parse_fault_spec(spec);
}

}  // namespace mthfx::fault
