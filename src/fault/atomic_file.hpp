#pragma once

// Crash-safe file replacement shared by checkpoints, journal segments,
// and the disk-backed result store: write to a temporary file in the
// same directory, fsync it, rename() over the target, then fsync the
// directory. A reader therefore sees either the old contents or the new
// contents in full — never a torn write — and the data survives the
// process being SIGKILLed at any instant after the call returns.

#include <string>
#include <string_view>

namespace mthfx::fault {

/// Atomically replace `path` with `contents`. Throws std::runtime_error
/// (with the errno message) on any I/O failure; on failure the original
/// file, if any, is untouched and the temporary is unlinked.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Durably append `data` to the file descriptor: write everything, then
/// fsync. Used by the write-ahead journal, whose records must be on
/// stable storage before the engine acts on them. Throws
/// std::runtime_error on failure.
void durable_append(int fd, std::string_view data);

}  // namespace mthfx::fault
