#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <memory>

namespace mthfx::parallel {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = resolve_thread_count(num_threads);
  workers_.reserve(n - 1);
  for (std::size_t t = 1; t < n; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    ++epoch_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t thread_id) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    if (!job) continue;
    job->per_thread(thread_id);
    if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(mutex_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::set_registry(obs::Registry* registry) {
  registry_ = registry;
  if (registry) {
    region_timer_ = registry->timer("pool.thread_seconds");
    region_counter_ = registry->counter("pool.regions");
  } else {
    region_timer_ = obs::Timer();
    region_counter_ = obs::Counter();
  }
}

void ThreadPool::parallel_region(const std::function<void(std::size_t)>& fn) {
  const std::size_t n = num_threads();
  std::function<void(std::size_t)> instrumented;
  if (registry_) {
    region_counter_.add(0);
    instrumented = [this, &fn](std::size_t tid) {
      obs::ScopedTimer timer(region_timer_, tid);
      fn(tid);
    };
  }
  const auto& run = registry_ ? instrumented : fn;
  if (n == 1) {
    run(0);
    return;
  }
  auto job = std::make_shared<Job>();
  job->per_thread = run;
  job->remaining.store(n - 1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    job_ = job;
    ++epoch_;
  }
  cv_start_.notify_all();
  run(0);  // calling thread participates as thread 0
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
  job_.reset();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    Schedule schedule, std::size_t chunk) {
  if (end <= begin) return;
  const std::size_t n_threads = num_threads();
  const std::size_t count = end - begin;
  chunk = std::max<std::size_t>(1, chunk);

  switch (schedule) {
    case Schedule::kDynamic: {
      auto counter = std::make_shared<std::atomic<std::size_t>>(begin);
      parallel_region([&, counter](std::size_t tid) {
        while (true) {
          const std::size_t i0 =
              counter->fetch_add(chunk, std::memory_order_relaxed);
          if (i0 >= end) break;
          const std::size_t i1 = std::min(i0 + chunk, end);
          for (std::size_t i = i0; i < i1; ++i) body(i, tid);
        }
      });
      break;
    }
    case Schedule::kStatic: {
      const std::size_t block = (count + n_threads - 1) / n_threads;
      parallel_region([&](std::size_t tid) {
        const std::size_t i0 = begin + tid * block;
        const std::size_t i1 = std::min(i0 + block, end);
        for (std::size_t i = i0; i < i1; ++i) body(i, tid);
      });
      break;
    }
    case Schedule::kStaticCyclic: {
      parallel_region([&](std::size_t tid) {
        const std::size_t num_chunks = (count + chunk - 1) / chunk;
        for (std::size_t c = tid; c < num_chunks; c += n_threads) {
          const std::size_t i0 = begin + c * chunk;
          const std::size_t i1 = std::min(i0 + chunk, end);
          for (std::size_t i = i0; i < i1; ++i) body(i, tid);
        }
      });
      break;
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mthfx::parallel
