#include "parallel/reduce.hpp"

#include <algorithm>
#include <utility>

namespace mthfx::parallel {

void tree_reduce(ThreadPool& pool, const std::vector<double*>& parts,
                 std::size_t len) {
  const std::size_t nparts = parts.size();
  if (nparts <= 1 || len == 0) return;

  const std::size_t nblocks = pool.num_threads();
  const std::size_t block = (len + nblocks - 1) / nblocks;

  for (std::size_t gap = 1; gap < nparts; gap *= 2) {
    // This round's pairwise adds: parts[i] += parts[i + gap] for every
    // surviving root i. Distinct pairs touch disjoint buffers and
    // distinct row blocks touch disjoint ranges, so all (pair x block)
    // work items are independent.
    std::vector<std::pair<double*, const double*>> ops;
    for (std::size_t i = 0; i + gap < nparts; i += 2 * gap)
      ops.push_back({parts[i], parts[i + gap]});
    if (ops.empty()) continue;
    pool.parallel_for(
        0, ops.size() * nblocks,
        [&](std::size_t w, std::size_t) {
          double* dst = ops[w / nblocks].first;
          const double* src = ops[w / nblocks].second;
          const std::size_t i0 = (w % nblocks) * block;
          const std::size_t i1 = std::min(i0 + block, len);
          for (std::size_t i = i0; i < i1; ++i) dst[i] += src[i];
        },
        Schedule::kStatic);
  }
}

}  // namespace mthfx::parallel
