#include "parallel/team.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace mthfx::parallel {

Team::Team(std::size_t num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks_ == 0) throw std::invalid_argument("Team: zero ranks");
  contrib_.resize(num_ranks_);
  scalar_contrib_.resize(num_ranks_, 0.0);
}

void Team::barrier() {
  std::unique_lock lock(mutex_);
  const std::uint64_t gen = generation_;
  if (++arrived_ == num_ranks_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen; });
  }
}

void Team::run(const std::function<void(RankContext&)>& body) {
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(num_ranks_);
  for (std::size_t r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([&, r] {
      RankContext ctx(*this, r);
      try {
        body(ctx);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t RankContext::size() const { return team_.num_ranks_; }

void RankContext::barrier() { team_.barrier(); }

void RankContext::allreduce_sum(std::span<double> data) {
  team_.contrib_[rank_] = data;
  team_.barrier();
  if (rank_ == 0) {
    // Accumulate every other rank's buffer into rank 0's.
    for (std::size_t r = 1; r < team_.num_ranks_; ++r) {
      const auto src = team_.contrib_[r];
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
    }
  }
  team_.barrier();
  if (rank_ != 0) {
    const auto root = team_.contrib_[0];
    std::copy(root.begin(), root.end(), data.begin());
  }
  team_.barrier();
}

double RankContext::allreduce_sum(double value) {
  team_.scalar_contrib_[rank_] = value;
  team_.barrier();
  double total = 0.0;
  for (std::size_t r = 0; r < team_.num_ranks_; ++r)
    total += team_.scalar_contrib_[r];
  team_.barrier();
  return total;
}

double RankContext::allreduce_max(double value) {
  team_.scalar_contrib_[rank_] = value;
  team_.barrier();
  double mx = team_.scalar_contrib_[0];
  for (std::size_t r = 1; r < team_.num_ranks_; ++r)
    mx = std::max(mx, team_.scalar_contrib_[r]);
  team_.barrier();
  return mx;
}

void RankContext::broadcast(std::span<double> data, std::size_t root) {
  team_.contrib_[rank_] = data;
  team_.barrier();
  if (rank_ != root) {
    const auto src = team_.contrib_[root];
    std::copy(src.begin(), src.end(), data.begin());
  }
  team_.barrier();
}

}  // namespace mthfx::parallel
