#pragma once

// Row-blocked pairwise tree reduction of per-thread accumulators — the
// host-side analogue of the torus tree reduction the BG/Q model assumes
// for K-matrix assembly (bgq/collectives.cpp).
//
// The serial alternative (`for (p : parts) total += p`) is
// O(nparts * len) on one thread: it grows linearly with thread count and
// becomes the build's tail once the task loop itself scales. The tree
// runs ceil(log2(nparts)) rounds of pairwise adds, each round split into
// row blocks across the pool, so wall time is O(len * log2(nparts) /
// nthreads) — sub-linear in thread count for the fixed-output reduction.

#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mthfx::parallel {

/// Reduce `parts` (equal-length buffers of `len` doubles) into parts[0],
/// in place, using pairwise tree rounds (gap doubling: parts[i] +=
/// parts[i+gap]) with each round row-blocked across the pool.
///
/// The combination tree is fixed by parts.size() alone, so the result is
/// bit-for-bit deterministic regardless of the pool's thread count or
/// scheduling — a reduction with N partials always produces the same
/// floating-point sum.  Buffers other than parts[0] are clobbered.
void tree_reduce(ThreadPool& pool, const std::vector<double*>& parts,
                 std::size_t len);

}  // namespace mthfx::parallel
