#pragma once

// Work-stealing deque (Chase–Lev style, mutex-protected steal side) plus a
// multi-queue scheduler used by the HFX "guided" mode: each thread owns a
// deque seeded with a slice of the task list; when a deque runs dry the
// thread steals half of a random victim's remaining work.
//
// On the real BG/Q the paper's scheme uses a shared atomic counter within
// a node and work requests across nodes; the stealing scheduler here plays
// the cross-node role in the host-side execution and the machine simulator
// models its cost at scale.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/registry.hpp"

namespace mthfx::parallel {

/// Owner pushes/pops at the bottom; thieves steal from the top.
class TaskDeque {
 public:
  void push(std::uint64_t task);
  /// Owner-side pop (LIFO). Empty deque -> nullopt.
  std::optional<std::uint64_t> pop();
  /// Thief-side steal of up to half the remaining tasks (FIFO end).
  std::vector<std::uint64_t> steal_half();
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::uint64_t> tasks_;
};

/// Statistics from one work-stealing run, surfaced by the ablation bench.
struct StealStats {
  std::size_t steals_attempted = 0;
  std::size_t steals_successful = 0;
  std::size_t tasks_migrated = 0;
};

/// A set of per-thread deques with victim selection.
class WorkStealingScheduler {
 public:
  explicit WorkStealingScheduler(std::size_t num_threads);

  /// Distribute tasks [0, num_tasks) round-robin across the deques.
  void seed(std::size_t num_tasks);

  /// Next task for `thread_id`: own deque first, then steal.
  /// Returns nullopt when all deques are empty.
  std::optional<std::uint64_t> next(std::size_t thread_id);

  /// Failure path: put a task back on `thread_id`'s own deque so it is
  /// retried (possibly by a thief). Safe to call concurrently from
  /// inside a parallel region.
  void requeue(std::size_t thread_id, std::uint64_t task);

  StealStats stats() const;

  /// One thread's counters (valid after that thread has quiesced).
  const StealStats& stats(std::size_t thread_id) const {
    return per_thread_stats_[thread_id];
  }

  /// Record the aggregated steal statistics as `ws.*` counters.
  void record(obs::Registry& registry) const;

 private:
  std::optional<std::uint64_t> try_steal(std::size_t thread_id,
                                         std::size_t victim);

  std::vector<TaskDeque> deques_;
  std::vector<std::uint32_t> rng_state_;
  std::vector<StealStats> per_thread_stats_;
};

}  // namespace mthfx::parallel
