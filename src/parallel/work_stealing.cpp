#include "parallel/work_stealing.hpp"

namespace mthfx::parallel {

void TaskDeque::push(std::uint64_t task) {
  std::lock_guard lock(mutex_);
  tasks_.push_back(task);
}

std::optional<std::uint64_t> TaskDeque::pop() {
  std::lock_guard lock(mutex_);
  if (tasks_.empty()) return std::nullopt;
  const std::uint64_t t = tasks_.back();
  tasks_.pop_back();
  return t;
}

std::vector<std::uint64_t> TaskDeque::steal_half() {
  std::lock_guard lock(mutex_);
  const std::size_t take = (tasks_.size() + 1) / 2;
  std::vector<std::uint64_t> stolen;
  stolen.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    stolen.push_back(tasks_.front());
    tasks_.pop_front();
  }
  return stolen;
}

std::size_t TaskDeque::size() const {
  std::lock_guard lock(mutex_);
  return tasks_.size();
}

WorkStealingScheduler::WorkStealingScheduler(std::size_t num_threads)
    : deques_(num_threads),
      rng_state_(num_threads),
      per_thread_stats_(num_threads) {
  for (std::size_t t = 0; t < num_threads; ++t)
    rng_state_[t] = static_cast<std::uint32_t>(0x9e3779b9u * (t + 1) | 1u);
}

void WorkStealingScheduler::seed(std::size_t num_tasks) {
  for (std::size_t i = 0; i < num_tasks; ++i)
    deques_[i % deques_.size()].push(i);
}

std::optional<std::uint64_t> WorkStealingScheduler::try_steal(
    std::size_t thread_id, std::size_t victim) {
  StealStats& stats = per_thread_stats_[thread_id];
  ++stats.steals_attempted;
  auto stolen = deques_[victim].steal_half();
  if (stolen.empty()) return std::nullopt;
  ++stats.steals_successful;
  stats.tasks_migrated += stolen.size();
  const std::uint64_t mine = stolen.front();
  for (std::size_t i = 1; i < stolen.size(); ++i)
    deques_[thread_id].push(stolen[i]);
  return mine;
}

std::optional<std::uint64_t> WorkStealingScheduler::next(
    std::size_t thread_id) {
  if (auto t = deques_[thread_id].pop()) return t;

  // Steal: try random victims, then a deterministic sweep so termination
  // detection is exact (all deques observed empty). Both paths go through
  // try_steal so the attempted/successful/migrated counters stay
  // consistent regardless of which path served the steal.
  auto& rng = rng_state_[thread_id];
  const std::size_t n = deques_.size();
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    rng ^= rng << 13;
    rng ^= rng >> 17;
    rng ^= rng << 5;
    const std::size_t victim = rng % n;
    if (victim == thread_id) continue;
    if (auto t = try_steal(thread_id, victim)) return t;
  }
  for (std::size_t victim = 0; victim < n; ++victim) {
    if (victim == thread_id) continue;
    if (auto t = try_steal(thread_id, victim)) return t;
  }
  return std::nullopt;
}

void WorkStealingScheduler::requeue(std::size_t thread_id,
                                    std::uint64_t task) {
  // Back onto the failing thread's own deque: the thread is still inside
  // its drain loop, so the task is guaranteed to be picked up again (by
  // the owner's pop or by a late thief) — never lost to the termination
  // sweep.
  deques_[thread_id].push(task);
}

StealStats WorkStealingScheduler::stats() const {
  StealStats total;
  for (const auto& s : per_thread_stats_) {
    total.steals_attempted += s.steals_attempted;
    total.steals_successful += s.steals_successful;
    total.tasks_migrated += s.tasks_migrated;
  }
  return total;
}

void WorkStealingScheduler::record(obs::Registry& registry) const {
  const StealStats total = stats();
  registry.counter("ws.steals_attempted").add(0, total.steals_attempted);
  registry.counter("ws.steals_successful").add(0, total.steals_successful);
  registry.counter("ws.tasks_migrated").add(0, total.tasks_migrated);
}

}  // namespace mthfx::parallel
