#pragma once

// Persistent thread pool with OpenMP-style parallel loops.
//
// The HFX builder uses `parallel_for` in its dynamic "task bag" mode
// (atomic chunk counter — the scheme the paper scales to millions of BG/Q
// threads) and in a static block-cyclic mode (the baseline the paper
// compares against).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace mthfx::parallel {

/// The one thread-count policy for the whole stack: 0 requests hardware
/// concurrency (never less than 1). ThreadPool and the HFX layer both
/// resolve through this, so per-thread buffers (k_private,
/// thread_busy_seconds, registry slots) can never be sized against a
/// different count than the pool actually runs.
std::size_t resolve_thread_count(std::size_t requested);

enum class Schedule {
  kDynamic,      ///< atomic chunk counter — self-balancing task bag
  kStatic,       ///< contiguous blocks, one per thread
  kStaticCyclic  ///< round-robin chunks (block-cyclic)
};

class ThreadPool {
 public:
  /// `num_threads` == 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Attach a metrics registry (sized for >= num_threads() slots): each
  /// parallel_region then records per-thread occupancy into the
  /// "pool.thread_seconds" timer and counts "pool.regions". Pass nullptr
  /// to detach. The registry must outlive the attachment; swap only
  /// between regions.
  void set_registry(obs::Registry* registry);

  /// Run body(i, thread_id) for i in [begin, end) across the pool
  /// (the calling thread participates as thread 0). Blocks until done.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    Schedule schedule = Schedule::kDynamic,
                    std::size_t chunk = 1);

  /// Run fn(thread_id) once on every thread (SPMD region). Blocks.
  void parallel_region(const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::function<void(std::size_t)> per_thread;  // arg: thread id
    std::atomic<std::size_t> remaining{0};
  };

  void worker_loop(std::size_t thread_id);

  std::vector<std::thread> workers_;
  obs::Registry* registry_ = nullptr;
  obs::Timer region_timer_;
  obs::Counter region_counter_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

/// Process-wide pool sized to the hardware (lazily constructed).
ThreadPool& default_pool();

}  // namespace mthfx::parallel
