#pragma once

// SPMD "team" abstraction: an MPI-like rank/collective interface executed
// over threads of one process. The toolchain in this reproduction has no
// MPI, so the Team provides the rank-decomposed style of the paper's
// two-level (rank x thread) scheme; the BG/Q machine simulator models the
// network cost of the same collectives at full-machine scale.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace mthfx::parallel {

class Team;

/// Per-rank handle passed to the SPMD body.
class RankContext {
 public:
  RankContext(Team& team, std::size_t rank) : team_(team), rank_(rank) {}

  std::size_t rank() const { return rank_; }
  std::size_t size() const;

  /// Synchronize all ranks.
  void barrier();

  /// In-place sum-allreduce over all ranks of this team.
  void allreduce_sum(std::span<double> data);
  double allreduce_sum(double value);

  /// Max-allreduce of a scalar.
  double allreduce_max(double value);

  /// Broadcast `data` from `root` to all ranks.
  void broadcast(std::span<double> data, std::size_t root);

 private:
  Team& team_;
  std::size_t rank_;
};

/// Fixed-size SPMD team. `run` launches one thread per rank and joins.
class Team {
 public:
  explicit Team(std::size_t num_ranks);

  std::size_t size() const { return num_ranks_; }

  /// Execute body(ctx) on every rank concurrently; blocks until all done.
  /// Exceptions thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(RankContext&)>& body);

 private:
  friend class RankContext;

  void barrier();
  // Collectives use a rendezvous buffer guarded by the barrier generation.
  std::size_t num_ranks_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;

  std::vector<std::span<double>> contrib_;
  std::vector<double> scalar_contrib_;
};

}  // namespace mthfx::parallel
