#include "bgq/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "bgq/torus.hpp"

namespace mthfx::bgq {

double tree_allreduce_seconds(const MachineConfig& machine,
                              std::int64_t bytes) {
  // The BG/Q collective network embeds a spanning tree in the torus; the
  // latency term scales with the torus diameter and the payload streams
  // once at collective bandwidth (reduce) and once back (broadcast).
  const int depth = torus_diameter(machine.torus);
  return 2.0 * (depth * machine.hop_latency + machine.mpi_latency) +
         2.0 * static_cast<double>(bytes) / machine.collective_bandwidth;
}

double distributed_reduce_seconds(const MachineConfig& machine,
                                  std::int64_t bytes, double overlap) {
  const auto p = static_cast<double>(machine.num_nodes());
  const double node_bw =
      links_per_node(machine.torus) * machine.link_bandwidth;
  const double traffic = overlap * static_cast<double>(bytes) / p;
  const int depth = torus_diameter(machine.torus);
  return traffic / node_bw + depth * machine.hop_latency +
         machine.mpi_latency;
}

double replicated_allreduce_seconds(const MachineConfig& machine,
                                    std::int64_t bytes) {
  const auto ranks = static_cast<double>(machine.num_threads());
  const double per_rank_bw = links_per_node(machine.torus) *
                             machine.link_bandwidth /
                             static_cast<double>(kThreadsPerNode);
  const double steps = std::ceil(std::log2(std::max(2.0, ranks)));
  // Rabenseifner reduce-scatter + allgather: 2x the payload per rank.
  return 2.0 * static_cast<double>(bytes) / per_rank_bw +
         2.0 * steps * machine.mpi_latency;
}

double tree_broadcast_seconds(const MachineConfig& machine,
                              std::int64_t bytes) {
  const int depth = torus_diameter(machine.torus);
  return depth * machine.hop_latency + machine.mpi_latency +
         static_cast<double>(bytes) / machine.collective_bandwidth;
}

double work_fetch_seconds(const MachineConfig& machine,
                          std::int64_t concurrent_nodes) {
  // Distributed counters are spread over nodes; contention adds a term
  // logarithmic in the number of simultaneously requesting nodes.
  const double contention =
      std::log2(static_cast<double>(std::max<std::int64_t>(2, concurrent_nodes)));
  return machine.mpi_latency * (1.0 + 0.1 * contention);
}

}  // namespace mthfx::bgq
