#pragma once

// Cost models for the communication the HFX step performs at machine
// scale. The architectural contrast the paper exploits:
//
//   * paper's scheme — hybrid (one rank per node, 64 threads inside),
//     exchange matrix block-distributed across nodes; assembly is a
//     reduce-scatter of partial blocks to their owners, plus tree
//     collectives on the torus for the small control payloads;
//   * comparable approaches of the era — flat MPI (one rank per hardware
//     thread) with a *replicated* exchange matrix combined by a software
//     allreduce; bandwidth-optimal (Rabenseifner) but over 64x more
//     ranks sharing each node's links, and O(full matrix) per node.

#include "bgq/machine.hpp"

namespace mthfx::bgq {

/// Pipelined tree allreduce over the torus collective network: full
/// payload streamed at collective bandwidth; latency from the diameter.
double tree_allreduce_seconds(const MachineConfig& machine,
                              std::int64_t bytes);

/// Block-distributed result assembly (the paper's scheme): each node owns
/// bytes/P of the result and receives partial blocks from the `overlap`
/// nodes that touched it; traffic per node = overlap * bytes / P through
/// its torus links.
double distributed_reduce_seconds(const MachineConfig& machine,
                                  std::int64_t bytes, double overlap = 64.0);

/// Replicated-matrix software allreduce over flat-MPI ranks (the
/// "directly comparable approach"): bandwidth-optimal 2*bytes volume per
/// rank, with 64 ranks per node sharing the links.
double replicated_allreduce_seconds(const MachineConfig& machine,
                                    std::int64_t bytes);

/// Broadcast of `bytes` from one node via the spanning tree.
double tree_broadcast_seconds(const MachineConfig& machine,
                              std::int64_t bytes);

/// Amortized per-chunk cost of fetching work from the distributed bag:
/// an MPI round trip to the (distributed) counter plus counter contention
/// that grows with the number of concurrently requesting nodes.
double work_fetch_seconds(const MachineConfig& machine,
                          std::int64_t concurrent_nodes);

}  // namespace mthfx::bgq
