#pragma once

// IBM Blue Gene/Q machine model.
//
// Hardware hierarchy (per the BG/Q system architecture): a rack holds 2
// midplanes; a midplane holds 16 node boards; a node board holds 32
// compute nodes; a node is a 16-core A2 chip running 4 hardware threads
// per core = 64 threads. 96 racks = 98,304 nodes = 6,291,456 threads —
// the scale of the paper's headline result.
//
// This model drives the discrete-event simulator that substitutes for the
// physical machine in this reproduction (see DESIGN.md): per-task compute
// costs are measured on the host with the real integral kernel, and this
// model supplies the topology, bandwidths and latencies.

#include <array>
#include <cstddef>
#include <cstdint>

namespace mthfx::bgq {

inline constexpr int kMidplanesPerRack = 2;
inline constexpr int kNodeBoardsPerMidplane = 16;
inline constexpr int kNodesPerNodeBoard = 32;
inline constexpr int kNodesPerMidplane =
    kNodeBoardsPerMidplane * kNodesPerNodeBoard;  // 512
inline constexpr int kCoresPerNode = 16;
inline constexpr int kThreadsPerCore = 4;
inline constexpr int kThreadsPerNode = kCoresPerNode * kThreadsPerCore;  // 64

/// 5-D torus shape (A, B, C, D, E).
using TorusShape = std::array<int, 5>;

struct MachineConfig {
  int racks = 1;
  TorusShape torus{};

  /// Per-link nearest-neighbor bandwidth (bytes/s). BG/Q raw link rate is
  /// 2 GB/s; ~1.8 GB/s is available to user payloads.
  double link_bandwidth = 1.8e9;
  /// Per-hop latency on the torus (seconds).
  double hop_latency = 40e-9;
  /// Software MPI-level point-to-point latency (seconds).
  double mpi_latency = 2.5e-6;
  /// Collective-network effective bandwidth for hardware-accelerated
  /// reductions (bytes/s).
  double collective_bandwidth = 1.5e9;
  /// Intra-node atomic work-counter fetch cost (seconds).
  double atomic_fetch = 1.0e-7;
  /// Relative per-thread compute throughput vs. the measurement host
  /// (cost units per second scale factor; 1.0 = identical to host thread).
  double thread_rate = 1.0;

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(racks) * kMidplanesPerRack *
           kNodesPerMidplane;
  }
  std::int64_t num_threads() const { return num_nodes() * kThreadsPerNode; }
};

/// Machine for a rack count in {1,2,4,8,16,32,48,64,96}; torus shape from
/// the standard BG/Q partition table. Throws std::invalid_argument for
/// unsupported counts.
MachineConfig machine_for_racks(int racks);

/// The rack counts with tabulated torus shapes.
std::array<int, 9> supported_rack_counts();

}  // namespace mthfx::bgq
