#include "bgq/torus.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace mthfx::bgq {

TorusCoord torus_coord(const TorusShape& shape, std::int64_t index) {
  std::int64_t vol = 1;
  for (int d : shape) vol *= d;
  if (index < 0 || index >= vol)
    throw std::out_of_range("torus_coord: node index outside torus");
  TorusCoord out;
  for (int dim = 4; dim >= 0; --dim) {
    out.c[static_cast<std::size_t>(dim)] =
        static_cast<int>(index % shape[static_cast<std::size_t>(dim)]);
    index /= shape[static_cast<std::size_t>(dim)];
  }
  return out;
}

std::int64_t torus_index(const TorusShape& shape, const TorusCoord& coord) {
  std::int64_t idx = 0;
  for (std::size_t dim = 0; dim < 5; ++dim) {
    if (coord.c[dim] < 0 || coord.c[dim] >= shape[dim])
      throw std::out_of_range("torus_index: coordinate outside torus");
    idx = idx * shape[dim] + coord.c[dim];
  }
  return idx;
}

int torus_hops(const TorusShape& shape, const TorusCoord& a,
               const TorusCoord& b) {
  int hops = 0;
  for (std::size_t dim = 0; dim < 5; ++dim) {
    const int n = shape[dim];
    const int d = std::abs(a.c[dim] - b.c[dim]);
    hops += std::min(d, n - d);
  }
  return hops;
}

int torus_diameter(const TorusShape& shape) {
  int d = 0;
  for (int n : shape) d += n / 2;
  return d;
}

int links_per_node(const TorusShape& shape) {
  int links = 0;
  for (int n : shape) links += (n > 1) ? 2 : 0;
  return links;
}

}  // namespace mthfx::bgq
