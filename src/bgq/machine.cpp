#include "bgq/machine.hpp"

#include <stdexcept>

namespace mthfx::bgq {

namespace {

// BG/Q partition shapes (A, B, C, D, E). A midplane is 4x4x4x4x2; larger
// partitions extend the A/B/C/D dimensions. The 96-rack shape is the
// Sequoia full-system 16x16x16x12x2 = 98,304 nodes.
TorusShape shape_for_racks(int racks) {
  switch (racks) {
    case 1:  return {4, 4, 4, 8, 2};     // 1,024 nodes
    case 2:  return {4, 4, 4, 16, 2};    // 2,048
    case 4:  return {4, 8, 4, 16, 2};    // 4,096
    case 8:  return {8, 8, 4, 16, 2};    // 8,192
    case 16: return {8, 8, 8, 16, 2};    // 16,384
    case 32: return {8, 16, 8, 16, 2};   // 32,768
    case 48: return {8, 16, 12, 16, 2};  // 49,152
    case 64: return {16, 16, 8, 16, 2};  // 65,536
    case 96: return {16, 16, 16, 12, 2}; // 98,304 (Sequoia)
    default:
      throw std::invalid_argument("machine_for_racks: unsupported rack count");
  }
}

}  // namespace

MachineConfig machine_for_racks(int racks) {
  MachineConfig m;
  m.racks = racks;
  m.torus = shape_for_racks(racks);
  // Consistency: torus volume must equal the node count.
  std::int64_t vol = 1;
  for (int d : m.torus) vol *= d;
  if (vol != m.num_nodes())
    throw std::logic_error("machine_for_racks: torus/node count mismatch");
  return m;
}

std::array<int, 9> supported_rack_counts() {
  return {1, 2, 4, 8, 16, 32, 48, 64, 96};
}

}  // namespace mthfx::bgq
