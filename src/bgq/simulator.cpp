#include "bgq/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "bgq/collectives.hpp"

namespace mthfx::bgq {

namespace {

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double hash_uniform01(std::uint64_t x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

// Per-node fate, a pure function of (seed, node) so both schemes see
// the same fault pattern.
struct NodeFault {
  bool dead = false;
  double death_fraction = 1.0;  ///< fraction of its step work done at death
  double rate_factor = 1.0;     ///< service-time multiplier (straggler)
};

NodeFault draw_node_fault(const SimOptions& o, std::int64_t node) {
  NodeFault nf;
  if (o.node_failure_rate <= 0.0 && o.straggler_rate <= 0.0) return nf;
  const std::uint64_t base =
      splitmix64(o.seed ^ (0xfa01700dull + static_cast<std::uint64_t>(node)));
  const double u = hash_uniform01(base);
  if (u < o.node_failure_rate) {
    nf.dead = true;
    nf.death_fraction = hash_uniform01(base + 1);
  } else if (u < o.node_failure_rate + o.straggler_rate) {
    nf.rate_factor = std::max(1.0, o.straggler_slowdown);
  }
  return nf;
}

// Event-count cap: beyond this, chunks are aggregated so machine-scale
// workloads (10^9+ tasks) stay simulable. Sampling stays statistical —
// at most kMaxSamples draws represent a block, scaled to its true size —
// which preserves means and (approximately) the heavy tail.
constexpr std::int64_t kMaxEvents = 1'000'000;
constexpr std::int64_t kMaxSamples = 64;

struct BlockCost {
  double sum = 0.0;
  double max = 0.0;
};

BlockCost sample_block(const EmpiricalCostDistribution& costs,
                       std::uint64_t& rng, std::int64_t n) {
  BlockCost b;
  const std::int64_t draws = std::min(n, kMaxSamples);
  for (std::int64_t i = 0; i < draws; ++i) {
    const double s = costs.sample(rng);
    b.sum += s;
    b.max = std::max(b.max, s);
  }
  b.sum *= static_cast<double>(n) / static_cast<double>(draws);
  return b;
}

}  // namespace

EmpiricalCostDistribution::EmpiricalCostDistribution(std::vector<double> costs)
    : sorted_(std::move(costs)) {
  if (sorted_.empty())
    throw std::invalid_argument("EmpiricalCostDistribution: no samples");
  std::sort(sorted_.begin(), sorted_.end());
  double s = 0.0;
  for (double c : sorted_) s += c;
  mean_ = s / static_cast<double>(sorted_.size());
}

EmpiricalCostDistribution EmpiricalCostDistribution::from_records(
    const std::vector<hfx::TaskCostRecord>& records) {
  if (records.empty())
    throw std::invalid_argument(
        "EmpiricalCostDistribution: no task cost records (was "
        "HfxOptions::record_task_costs enabled?)");
  // Timer resolution on fast tasks can yield zero wall seconds; rescale
  // est_cost into the measured time scale for those.
  double total_secs = 0.0, total_est = 0.0;
  for (const auto& r : records) {
    total_secs += r.seconds;
    total_est += r.est_cost;
  }
  const double rate = (total_secs > 0.0 && total_est > 0.0)
                          ? total_secs / total_est
                          : 1e-9;
  std::vector<double> costs;
  costs.reserve(records.size());
  for (const auto& r : records)
    costs.push_back(r.seconds > 0.0 ? r.seconds : r.est_cost * rate);
  return EmpiricalCostDistribution(std::move(costs));
}

double EmpiricalCostDistribution::sample(std::uint64_t& rng_state) const {
  const std::uint64_t r = xorshift64(rng_state);
  return sorted_[static_cast<std::size_t>(r % sorted_.size())];
}

SimResult simulate_step(const MachineConfig& machine,
                        const SimWorkload& workload,
                        const EmpiricalCostDistribution& costs,
                        const SimOptions& options) {
  SimResult result;
  result.threads = machine.num_threads();
  const auto nodes = machine.num_nodes();
  const double node_rate =
      machine.thread_rate * static_cast<double>(kThreadsPerNode);
  std::uint64_t rng = options.seed;

  if (options.scheme == SimScheme::kDynamicHierarchical) {
    // Chunk-level greedy assignment to the earliest-available node: the
    // behaviour of a distributed bag with per-node 64-thread pools.
    // Beyond kMaxEvents chunks, consecutive chunks are aggregated into
    // one event (statistically equivalent for i.i.d. task costs).
    std::int64_t chunk = std::max<std::int64_t>(1, options.tasks_per_fetch);
    std::int64_t num_chunks = (workload.num_tasks + chunk - 1) / chunk;
    if (num_chunks > kMaxEvents) {
      const std::int64_t agg = (num_chunks + kMaxEvents - 1) / kMaxEvents;
      chunk *= agg;
      num_chunks = (workload.num_tasks + chunk - 1) / chunk;
    }
    const double fetch = work_fetch_seconds(
        machine, std::min<std::int64_t>(nodes, num_chunks));

    // Min-heap of (available-time, node) pairs (only nodes that receive
    // work). Per-node fault draws are shared with the static scheme.
    const std::int64_t active =
        std::min<std::int64_t>(nodes, std::max<std::int64_t>(1, num_chunks));
    std::vector<NodeFault> fate(static_cast<std::size_t>(active));
    bool any_alive = false;
    for (std::int64_t n = 0; n < active; ++n) {
      fate[static_cast<std::size_t>(n)] = draw_node_fault(options, n);
      any_alive = any_alive || !fate[static_cast<std::size_t>(n)].dead;
    }
    if (!any_alive) fate[0] = NodeFault{};  // keep the step finishable
    // A failed node dies after completing `death_fraction` of the
    // *expected* per-node share of the step.
    const double t_est = costs.mean() * static_cast<double>(workload.num_tasks) /
                         (node_rate * static_cast<double>(active));
    std::vector<double> death_time(static_cast<std::size_t>(active));
    for (std::int64_t n = 0; n < active; ++n) {
      const auto& nf = fate[static_cast<std::size_t>(n)];
      death_time[static_cast<std::size_t>(n)] =
          nf.dead ? nf.death_fraction * t_est
                  : std::numeric_limits<double>::infinity();
      if (nf.dead) ++result.failed_nodes;
      if (nf.rate_factor > 1.0) ++result.straggler_nodes;
    }

    using Slot = std::pair<double, std::int64_t>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
    for (std::int64_t n = 0; n < active; ++n) heap.push({0.0, n});

    double busy_total = 0.0;
    double makespan = 0.0;
    double max_task = 0.0;
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::int64_t in_chunk =
          std::min<std::int64_t>(chunk, workload.num_tasks - c * chunk);
      const BlockCost bc = sample_block(costs, rng, in_chunk);
      max_task = std::max(max_task, bc.max);
      // Service time on a 64-thread node with intra-node dynamic
      // sharing: the chunk drains at node rate (long tasks overlap other
      // work; the one-task-per-thread floor is applied once, globally,
      // below as the tail correction).
      const double base_service =
          bc.sum / node_rate + fetch +
          static_cast<double>(in_chunk) * machine.atomic_fetch /
              static_cast<double>(kThreadsPerNode);
      // The bag naturally re-dispatches: if the earliest node is dead
      // (or dies mid-chunk), the chunk goes to the next survivor. Dead
      // nodes are popped and never re-queued, so this terminates. The
      // detection delay rides on the re-dispatched chunk only — the rest
      // of the machine keeps draining the bag meanwhile.
      double penalty = 0.0;
      for (;;) {
        const auto [start, node] = heap.top();
        heap.pop();
        const auto ni = static_cast<std::size_t>(node);
        if (start >= death_time[ni]) continue;  // died while idle
        const double service =
            base_service * fate[ni].rate_factor + penalty;
        const double finish = start + service;
        if (finish > death_time[ni]) {
          // Node dies mid-chunk: the partial work is lost and the chunk
          // is re-fetched by a survivor after detection.
          result.lost_compute_seconds += death_time[ni] - start;
          result.recovery_seconds += options.failure_detection_seconds;
          penalty = options.failure_detection_seconds;
          makespan = std::max(makespan, death_time[ni]);
          continue;
        }
        heap.push({finish, node});
        busy_total += service;
        makespan = std::max(makespan, finish);
        break;
      }
    }
    result.compute_seconds = makespan;
    result.mean_compute_seconds =
        busy_total / static_cast<double>(active);
    // Tail correction: the last tasks drain through each node's 64
    // threads, leaving at most one task per thread of residual skew.
    result.compute_seconds += max_task / machine.thread_rate;

    const double reduction =
        distributed_reduce_seconds(machine, workload.reduction_bytes);
    result.comm_seconds =
        reduction + fetch * static_cast<double>(num_chunks) /
                        static_cast<double>(std::max<std::int64_t>(1, active));
    result.makespan_seconds = result.compute_seconds + reduction;
  } else {
    // Static block-cyclic over *threads* without cost knowledge.
    const std::int64_t threads = machine.num_threads();
    const std::int64_t chunk =
        std::max<std::int64_t>(1, options.tasks_per_fetch);
    const std::int64_t num_chunks = (workload.num_tasks + chunk - 1) / chunk;

    if (num_chunks <= kMaxEvents) {
      // Exact per-chunk assignment: chunk c goes to thread c mod N.
      std::vector<double> load(static_cast<std::size_t>(std::min<std::int64_t>(
          threads, std::max<std::int64_t>(1, num_chunks))));
      for (std::int64_t c = 0; c < num_chunks; ++c) {
        const std::int64_t in_chunk =
            std::min<std::int64_t>(chunk, workload.num_tasks - c * chunk);
        load[static_cast<std::size_t>(
            c % static_cast<std::int64_t>(load.size()))] +=
            sample_block(costs, rng, in_chunk).sum / machine.thread_rate;
      }
      // Apply node faults: a straggler node's threads run slower; a dead
      // node's block has no other taker, so after `death_fraction` of it
      // is wasted the whole block is redone from scratch — the step
      // stalls behind the worst such thread.
      const std::int64_t hosted_nodes =
          (static_cast<std::int64_t>(load.size()) + kThreadsPerNode - 1) /
          kThreadsPerNode;
      std::vector<NodeFault> fate(static_cast<std::size_t>(hosted_nodes));
      for (std::int64_t n = 0; n < hosted_nodes; ++n) {
        fate[static_cast<std::size_t>(n)] = draw_node_fault(options, n);
        const auto& nf = fate[static_cast<std::size_t>(n)];
        if (nf.dead) {
          ++result.failed_nodes;
          result.recovery_seconds += options.failure_detection_seconds;
        }
        if (nf.rate_factor > 1.0) ++result.straggler_nodes;
      }
      double mx = 0.0, total = 0.0;
      for (std::size_t t = 0; t < load.size(); ++t) {
        const auto& nf =
            fate[t / static_cast<std::size_t>(kThreadsPerNode)];
        const double slowed = load[t] * nf.rate_factor;
        double completion = slowed;
        if (nf.dead) {
          const double lost = nf.death_fraction * slowed;
          result.lost_compute_seconds += lost;
          completion = lost + options.failure_detection_seconds + load[t];
        }
        mx = std::max(mx, completion);
        total += load[t];
      }
      result.compute_seconds = mx;
      result.mean_compute_seconds = total / static_cast<double>(threads);
    } else {
      // Machine-scale path: thread loads are sums of many i.i.d. task
      // costs, so the busiest of N threads follows extreme-value
      // statistics: max ~ mean + std * sqrt(2 ln N). Moments come from a
      // large sample; the single-task max floors the estimate (a thread
      // that drew the heaviest task cannot finish before it).
      const std::int64_t probe = 100'000;
      double m1 = 0.0, m2 = 0.0, mx_task = 0.0;
      for (std::int64_t i = 0; i < probe; ++i) {
        const double s = costs.sample(rng);
        m1 += s;
        m2 += s * s;
        mx_task = std::max(mx_task, s);
      }
      m1 /= static_cast<double>(probe);
      m2 /= static_cast<double>(probe);
      const double task_std = std::sqrt(std::max(0.0, m2 - m1 * m1));
      const double tpt = static_cast<double>(workload.num_tasks) /
                         static_cast<double>(threads);
      const double load_mean = m1 * tpt;
      const double load_std = task_std * std::sqrt(std::max(1.0, tpt));
      const double evt =
          load_mean +
          load_std * std::sqrt(2.0 * std::log(static_cast<double>(threads)));
      double compute =
          std::max(evt, load_mean + mx_task) / machine.thread_rate;

      // Fault corrections via the same extreme-value form, restricted to
      // the affected node populations.
      double f_worst = 0.0;
      for (std::int64_t n = 0; n < nodes; ++n) {
        const NodeFault nf = draw_node_fault(options, n);
        if (nf.dead) {
          ++result.failed_nodes;
          result.recovery_seconds += options.failure_detection_seconds;
          result.lost_compute_seconds +=
              nf.death_fraction * load_mean *
              static_cast<double>(kThreadsPerNode) / machine.thread_rate;
          f_worst = std::max(f_worst, nf.death_fraction);
        }
        if (nf.rate_factor > 1.0) ++result.straggler_nodes;
      }
      const auto evt_over = [&](std::int64_t n_threads) {
        return load_mean +
               load_std * std::sqrt(2.0 * std::log(std::max(
                              2.0, static_cast<double>(n_threads))));
      };
      if (result.straggler_nodes > 0) {
        const double slow = std::max(1.0, options.straggler_slowdown);
        compute = std::max(
            compute, slow * evt_over(result.straggler_nodes * kThreadsPerNode) /
                         machine.thread_rate);
      }
      if (result.failed_nodes > 0) {
        const double block =
            evt_over(result.failed_nodes * kThreadsPerNode) /
            machine.thread_rate;
        compute = std::max(compute, (f_worst + 1.0) * block +
                                        options.failure_detection_seconds);
      }
      result.compute_seconds = compute;
      result.mean_compute_seconds = load_mean / machine.thread_rate;
    }

    const double reduction =
        replicated_allreduce_seconds(machine, workload.reduction_bytes);
    result.comm_seconds = reduction;
    result.makespan_seconds = result.compute_seconds + reduction;
  }

  result.imbalance = result.mean_compute_seconds > 0.0
                         ? result.compute_seconds / result.mean_compute_seconds
                         : 1.0;
  return result;
}

obs::Json to_json(const SimResult& result) {
  obs::Json out = obs::Json::object();
  out["threads"] = result.threads;
  out["makespan_seconds"] = result.makespan_seconds;
  out["compute_seconds"] = result.compute_seconds;
  out["mean_compute_seconds"] = result.mean_compute_seconds;
  out["comm_seconds"] = result.comm_seconds;
  out["comm_fraction"] = result.makespan_seconds > 0.0
                             ? result.comm_seconds / result.makespan_seconds
                             : 0.0;
  out["imbalance"] = result.imbalance;
  out["failed_nodes"] = result.failed_nodes;
  out["straggler_nodes"] = result.straggler_nodes;
  out["lost_compute_seconds"] = result.lost_compute_seconds;
  out["recovery_seconds"] = result.recovery_seconds;
  return out;
}

double parallel_efficiency(const SimResult& base, const SimResult& scaled) {
  const double work_base =
      base.makespan_seconds * static_cast<double>(base.threads);
  const double work_scaled =
      scaled.makespan_seconds * static_cast<double>(scaled.threads);
  return work_scaled > 0.0 ? work_base / work_scaled : 0.0;
}

}  // namespace mthfx::bgq
